// The million-flow control plane: the resizable reader-safe cuckoo table
// (cls level), the cuckoo template's selection/re-selection inside Eswitch,
// and the once-per-batch recompile/fusion schedule it feeds.
//
// Scale knob: ESW_CUCKOO_CHURN_KEYS sets the churn test's target entry count
// (default 200'000; the CI TSan leg runs it at 1'000'000 under 4 readers).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cls/cuckoo.hpp"
#include "common/epoch.hpp"
#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "test_util.hpp"
#include "testing/seed.hpp"

namespace esw {
namespace {

using namespace esw::core;
using namespace esw::flow;
using cls::CuckooTable;
using test::make_packet;

std::string key_of(uint64_t x, uint32_t len = 8) {
  std::string k(len, '\0');
  std::memcpy(k.data(), &x, std::min<uint32_t>(len, 8));
  return k;
}

const uint8_t* bytes(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

// The value a reader expects for key `x` — derived, so readers verify hits
// without any shared reference structure.
uint64_t value_of(uint64_t x) { return mix64(x ^ 0xE511ULL); }

TEST(Cuckoo, InsertLookupEraseReplace) {
  CuckooTable t;
  const auto k1 = key_of(111), k2 = key_of(222);
  EXPECT_FALSE(t.lookup(bytes(k1), 8).has_value());
  t.insert(bytes(k1), 8, 1, 10);
  t.insert(bytes(k2), 8, 2, 20);
  EXPECT_EQ(t.size(), 2u);
  auto v1 = t.lookup(bytes(k1), 8);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->value, 1u);
  EXPECT_EQ(v1->aux, 10u);

  t.insert(bytes(k1), 8, 99, 11);  // same-key replace: single-word swap
  v1 = t.lookup(bytes(k1), 8);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->value, 99u);
  EXPECT_EQ(v1->aux, 11u);
  EXPECT_EQ(t.size(), 2u);

  EXPECT_TRUE(t.erase(bytes(k1), 8));
  EXPECT_FALSE(t.erase(bytes(k1), 8));
  EXPECT_FALSE(t.lookup(bytes(k1), 8).has_value());
  ASSERT_TRUE(t.lookup(bytes(k2), 8).has_value());
  EXPECT_EQ(t.lookup(bytes(k2), 8)->value, 2u);
}

TEST(Cuckoo, DistinguishesKeyLengths) {
  CuckooTable t;
  const std::string a("\x01\x02", 2), b("\x01\x02\x00", 3);
  t.insert(bytes(a), 2, 1);
  t.insert(bytes(b), 3, 2);
  ASSERT_TRUE(t.lookup(bytes(a), 2).has_value());
  EXPECT_EQ(t.lookup(bytes(a), 2)->value, 1u);
  ASSERT_TRUE(t.lookup(bytes(b), 3).has_value());
  EXPECT_EQ(t.lookup(bytes(b), 3)->value, 2u);
}

TEST(Cuckoo, ChurnMatchesReference) {
  const uint64_t seed = testing::test_seed(0xC0C0ACULL, "cuckoo reference churn");
  CuckooTable::Config cfg;
  cfg.initial_buckets = 4;  // every growth/migration path exercised
  CuckooTable t(cfg);
  Rng rng(seed);
  std::unordered_map<uint64_t, uint64_t> ref;
  for (int op = 0; op < 60000; ++op) {
    const uint64_t k = rng.below(3000);  // small key space: heavy churn
    const auto key = key_of(k, 4 + (k % 9));  // lengths 4..12
    if (rng.chance(1, 3) && !ref.empty()) {
      const bool had = ref.erase(k) > 0;
      EXPECT_EQ(t.erase(bytes(key), 4 + static_cast<uint32_t>(k % 9)), had);
    } else {
      const uint64_t v = rng.below(1'000'000);
      ref[k] = v;
      t.insert(bytes(key), 4 + static_cast<uint32_t>(k % 9), v);
    }
  }
  EXPECT_EQ(t.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const auto key = key_of(k, 4 + (k % 9));
    const auto got = t.lookup(bytes(key), 4 + static_cast<uint32_t>(k % 9));
    ASSERT_TRUE(got.has_value()) << k;
    ASSERT_EQ(got->value, v) << k;
  }
  for (uint64_t k = 0; k < 3000; ++k) {
    if (ref.count(k)) continue;
    const auto key = key_of(k, 4 + (k % 9));
    ASSERT_FALSE(t.lookup(bytes(key), 4 + static_cast<uint32_t>(k % 9)).has_value())
        << k;
  }
  EXPECT_GT(t.grows(), 0u);
}

TEST(Cuckoo, BurstLookupMatchesScalar) {
  const uint64_t seed = testing::test_seed(0xB0057ULL, "cuckoo burst parity");
  CuckooTable::Config cfg;
  cfg.initial_buckets = 4;
  cfg.migrate_per_mutation = 1;  // keep a back view live during the bursts
  CuckooTable t(cfg);
  Rng rng(seed);
  std::vector<std::string> keys;
  for (uint64_t x = 0; x < 3000; ++x) {
    keys.push_back(key_of(x, 4 + static_cast<uint32_t>(x % 9)));
    t.insert(bytes(keys.back()), static_cast<uint32_t>(keys.back().size()),
             value_of(x));
    if (x % 64 != 0) continue;
    // Mixed present/absent probe burst mid-growth: element-wise identical
    // to scalar lookups, including keys still sitting in the back view.
    constexpr uint32_t kN = 96;
    std::vector<std::string> probe;
    std::vector<const uint8_t*> ptrs(kN);
    std::vector<uint32_t> lens(kN);
    std::vector<CuckooTable::Value> vals(kN);
    bool hits[kN];
    for (uint32_t i = 0; i < kN; ++i) {
      const uint64_t px = rng.below(2 * (x + 1));  // ~half absent
      probe.push_back(key_of(px, 4 + static_cast<uint32_t>(px % 9)));
    }
    for (uint32_t i = 0; i < kN; ++i) {
      ptrs[i] = bytes(probe[i]);
      lens[i] = static_cast<uint32_t>(probe[i].size());
    }
    const uint32_t n_hits = t.lookup_burst(ptrs.data(), lens.data(), kN,
                                           vals.data(), hits);
    uint32_t expect_hits = 0;
    for (uint32_t i = 0; i < kN; ++i) {
      const auto scalar = t.lookup(ptrs[i], lens[i]);
      ASSERT_EQ(hits[i], scalar.has_value()) << "probe " << i << " at x=" << x;
      if (scalar.has_value()) {
        ++expect_hits;
        EXPECT_EQ(vals[i].value, scalar->value);
      }
    }
    EXPECT_EQ(n_hits, expect_hits);
  }
}

TEST(Cuckoo, IncrementalRehashOldOrNewVisibility) {
  // Slowest possible drain (one back-view bucket per write) with a tiny
  // initial table: most inserts land while a grow is mid-migration, so every
  // verification probe crosses the front/back split — a present key must be
  // found in exactly one of the two views, whichever side of the drain it is
  // on.
  CuckooTable::Config cfg;
  cfg.initial_buckets = 4;
  cfg.migrate_per_mutation = 1;
  CuckooTable t(cfg);
  constexpr uint64_t kKeys = 3000;
  for (uint64_t i = 0; i < kKeys; ++i) {
    const auto k = key_of(i);
    t.insert(bytes(k), 8, value_of(i));
    // All recent keys plus a sample of old ones, after every insert.
    const uint64_t lo = i >= 16 ? i - 16 : 0;
    for (uint64_t j = lo; j <= i; ++j) {
      const auto kj = key_of(j);
      const auto got = t.lookup(bytes(kj), 8);
      ASSERT_TRUE(got.has_value()) << "key " << j << " lost at insert " << i;
      ASSERT_EQ(got->value, value_of(j));
    }
    for (uint64_t j = i % 8; j < i; j += 97) {
      const auto kj = key_of(j);
      ASSERT_TRUE(t.lookup(bytes(kj), 8).has_value())
          << "key " << j << " lost at insert " << i;
    }
  }
  EXPECT_EQ(t.size(), kKeys);
  EXPECT_GE(t.grows(), 5u);
  EXPECT_GT(t.migrated(), 0u);
}

TEST(Cuckoo, ReseedThenGrow) {
  // Mine keys whose two candidate buckets coincide on bucket 0 (the bucket
  // derivation is public arithmetic: mix64(hash ^ salt)).  Five such keys
  // overflow the 4-slot bucket with no displacement possible — at load well
  // under 0.5 the table must *reseed* (new salt, same capacity) rather than
  // grow.  Afterwards, bulk inserts past grow_load force a real grow.
  CuckooTable::Config cfg;
  cfg.initial_buckets = 64;
  CuckooTable t(cfg);
  std::vector<uint64_t> colliders;
  const uint32_t mask = cfg.initial_buckets - 1;
  // Replicates the table's derivation: the first view's salt is one
  // next_salt() step past cfg.salt, and buckets come from mix64(hash ^ salt).
  constexpr uint64_t kHashSeed = 0xC6A4A7935BD1E995ULL;
  const uint64_t view_salt = mix64(cfg.salt + kHashSeed);
  for (uint64_t x = 0; colliders.size() < 5; ++x) {
    const auto k = key_of(x);
    const uint64_t hs = mix64(hash_bytes(bytes(k), 8, kHashSeed) ^ view_salt);
    if ((static_cast<uint32_t>(hs) & mask) == 0 &&
        (static_cast<uint32_t>(hs >> 32) & mask) == 0)
      colliders.push_back(x);
  }
  for (const uint64_t x : colliders) {
    const auto k = key_of(x);
    t.insert(bytes(k), 8, value_of(x));
  }
  EXPECT_GE(t.reseeds(), 1u);
  EXPECT_EQ(t.grows(), 0u);  // load was far below 0.5: reseed, not grow
  for (const uint64_t x : colliders) {
    const auto k = key_of(x);
    const auto got = t.lookup(bytes(k), 8);
    ASSERT_TRUE(got.has_value()) << x;
    ASSERT_EQ(got->value, value_of(x));
  }

  // Bulk keys from a disjoint range (colliders were mined from small x).
  const uint64_t base = uint64_t{1} << 32;
  for (uint64_t i = base; i < base + 300; ++i) {
    const auto k = key_of(i);
    t.insert(bytes(k), 8, value_of(i));
  }
  EXPECT_GE(t.grows(), 1u);
  for (uint64_t i = base; i < base + 300; ++i) {
    const auto k = key_of(i);
    ASSERT_TRUE(t.lookup(bytes(k), 8).has_value()) << i;
  }
  EXPECT_EQ(t.size(), colliders.size() + 300u);
}

TEST(Cuckoo, SeededChurnWithConcurrentReaders) {
  // The tentpole's reader-safety claim, at scale: four packet-worker threads
  // hammer lookups of a stable key set while the control-plane writer churns
  // the table through every structural transition — incremental grows, bucket
  // migration, displacement chains, erase/reinsert — with epoch-based
  // retirement live the whole time.  A stable key observed absent, or with a
  // torn value, is an anomaly.  ESW_CUCKOO_CHURN_KEYS=1000000 is the CI TSan
  // leg's million-entry setting.
  const uint64_t seed = testing::test_seed(0xC0C0C0ULL, "cuckoo reader churn");
  size_t target = 200'000;
  if (const char* env = std::getenv("ESW_CUCKOO_CHURN_KEYS");
      env != nullptr && *env != '\0')
    target = std::strtoull(env, nullptr, 0);
  const size_t n_stable = std::min<size_t>(target / 4, 50'000);

  common::EpochDomain domain;
  CuckooTable t;
  t.set_domain(&domain);
  for (uint64_t i = 0; i < n_stable; ++i) {
    const auto k = key_of(i);
    t.insert(bytes(k), 8, value_of(i), static_cast<uint16_t>(i));
  }

  constexpr int kReaders = 4;
  common::EpochDomain::WorkerSlot* slots[kReaders];
  for (int r = 0; r < kReaders; ++r) {
    slots[r] = domain.register_worker();
    ASSERT_NE(slots[r], nullptr);
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> anomalies{0};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(seed + 1000 + static_cast<uint64_t>(r));
      while (!stop.load(std::memory_order_relaxed)) {
        for (int burst = 0; burst < 64; ++burst) {
          const uint64_t i = rng.below(n_stable);
          const auto k = key_of(i);
          t.prefetch(bytes(k), 8);
          const auto got = t.lookup(bytes(k), 8);
          if (!got.has_value() || got->value != value_of(i) ||
              got->aux != static_cast<uint16_t>(i))
            anomalies.fetch_add(1, std::memory_order_relaxed);
        }
        domain.quiescent(*slots[r]);  // burst boundary: holds no pointers
        reads.fetch_add(64, std::memory_order_relaxed);
      }
    });
  }
  while (reads.load(std::memory_order_relaxed) == 0) std::this_thread::yield();

  // Writer: grow to the target with volatile keys, churn a sliding window,
  // then shrink back — reclaiming retired entries/views as grace elapses.
  Rng rng(seed);
  uint64_t ops = 0;
  const auto maybe_reclaim = [&] {
    if (++ops % 1024 == 0) t.epoch_reclaim(domain.advance_and_horizon());
  };
  for (uint64_t i = n_stable; i < target; ++i) {
    const auto k = key_of(i);
    t.insert(bytes(k), 8, value_of(i));
    maybe_reclaim();
    if (i % 7 == 0) {  // same-key replace on a stable key (value unchanged)
      const uint64_t s = rng.below(n_stable);
      const auto ks = key_of(s);
      t.insert(bytes(ks), 8, value_of(s), static_cast<uint16_t>(s));
      maybe_reclaim();
    }
    if (i % 5 == 0 && i > n_stable + 64) {  // delete/reinsert a volatile key
      const uint64_t d = n_stable + rng.below(i - n_stable);
      const auto kd = key_of(d);
      t.erase(bytes(kd), 8);
      maybe_reclaim();
      t.insert(bytes(kd), 8, value_of(d));
      maybe_reclaim();
    }
    if (i % 4096 == 0) std::this_thread::yield();
  }
  EXPECT_EQ(t.size(), target);
  for (uint64_t i = n_stable; i < target; ++i) {
    const auto k = key_of(i);
    t.erase(bytes(k), 8);
    maybe_reclaim();
    if (i % 4096 == 0) std::this_thread::yield();
  }

  stop = true;
  for (auto& th : readers) th.join();
  for (int r = 0; r < kReaders; ++r) domain.unregister_worker(slots[r]);

  EXPECT_EQ(anomalies.load(), 0u);
  EXPECT_EQ(t.size(), n_stable);
  EXPECT_GT(t.grows(), 0u);
  for (uint64_t i = 0; i < n_stable; ++i) {
    const auto k = key_of(i);
    const auto got = t.lookup(bytes(k), 8);
    ASSERT_TRUE(got.has_value()) << i;
    ASSERT_EQ(got->value, value_of(i)) << i;
  }
  // With every worker unregistered the grace period is trivially satisfied:
  // one reclaim pass must drain the whole retire backlog.
  t.epoch_reclaim(domain.advance_and_horizon());
  EXPECT_EQ(t.retired_pending(), 0u);
}

// ---------------------------------------------------------------------------
// The cuckoo template inside Eswitch
// ---------------------------------------------------------------------------

FlowMod add_mod(uint8_t table, uint16_t dport, uint32_t out_port) {
  FlowMod fm;
  fm.table_id = table;
  fm.priority = 10;
  fm.match.set(FieldId::kUdpDst, dport);
  fm.actions = {Action::output(out_port)};
  return fm;
}

Pipeline udp_fanout(size_t n) {
  Pipeline pl;
  for (size_t i = 0; i < n; ++i) {
    FlowEntry e;
    e.priority = 10;
    e.match.set(FieldId::kUdpDst, static_cast<uint16_t>(i));
    e.actions = {Action::output(static_cast<uint32_t>(1 + i % 7))};
    pl.table(0).add(e);
  }
  return pl;
}

TEST(CuckooTemplate, Tab02ScaleParityWithLinkedList) {
  // The tab02 methodology at test scale: identical traffic through the same
  // program compiled under the cuckoo template and under the linked-list
  // reference; verdicts must agree on every packet, through churn.
  const uint64_t seed = testing::test_seed(0x7AB02ULL, "cuckoo parity");
  const Pipeline pl = udp_fanout(2048);

  CompilerConfig cuckoo_cfg;
  cuckoo_cfg.cuckoo_min_entries = 16;  // well under 2048: analysis picks cuckoo
  Eswitch cuckoo(cuckoo_cfg);
  cuckoo.install(pl);
  ASSERT_EQ(cuckoo.table_template(0), TableTemplate::kCuckooHash);

  CompilerConfig list_cfg;
  list_cfg.force_template = TableTemplate::kLinkedList;
  Eswitch list(list_cfg);
  list.install(pl);
  ASSERT_EQ(list.table_template(0), TableTemplate::kLinkedList);

  Rng rng(seed);
  const auto compare = [&](int probes) {
    for (int q = 0; q < probes; ++q) {
      // Half the probes hit, half miss (dports past the rule range).
      const uint16_t dport = static_cast<uint16_t>(rng.below(4096));
      auto spec = test::udp_spec(static_cast<uint32_t>(rng.below(5)), 2, 9, dport);
      auto p1 = make_packet(spec);
      auto p2 = make_packet(spec);
      ASSERT_EQ(cuckoo.process(p1), list.process(p2)) << "dport " << dport;
    }
  };
  compare(1000);

  // Churn both the same way: delete a third, add a fresh range, re-verify.
  for (uint16_t i = 0; i < 2048; i += 3) {
    FlowMod fm = add_mod(0, i, 0);
    fm.command = FlowMod::Cmd::kDelete;
    fm.actions.clear();
    cuckoo.apply(fm);
    list.apply(fm);
  }
  for (uint16_t i = 3000; i < 3200; ++i) {
    const FlowMod fm = add_mod(0, i, 1 + i % 7);
    cuckoo.apply(fm);
    list.apply(fm);
  }
  compare(1000);
  // The cuckoo template absorbed the churn in place: no wholesale rebuilds
  // beyond the install-time compile.
  EXPECT_GT(cuckoo.update_stats().incremental, 0u);
}

TEST(CuckooTemplate, GrowthReselectsCompoundHashToCuckoo) {
  CompilerConfig cfg;
  cfg.cuckoo_min_entries = 64;
  Eswitch sw(cfg);
  sw.install(udp_fanout(20));
  ASSERT_EQ(sw.table_template(0), TableTemplate::kCompoundHash);
  ASSERT_EQ(sw.update_stats().template_reselections, 0u);

  for (uint16_t i = 20; i < 200; ++i) sw.apply(add_mod(0, i, 1 + i % 7));

  EXPECT_EQ(sw.table_template(0), TableTemplate::kCuckooHash);
  EXPECT_GE(sw.update_stats().template_reselections, 1u);
  for (uint16_t i : {0u, 19u, 20u, 64u, 199u}) {
    auto p = make_packet(test::udp_spec(1, 2, 9, static_cast<uint16_t>(i)));
    EXPECT_EQ(sw.process(p), Verdict::output(1 + i % 7)) << i;
  }
  auto miss = make_packet(test::udp_spec(1, 2, 9, 999));
  EXPECT_EQ(sw.process(miss), Verdict::drop());

  // Once on the cuckoo template, further churn is incremental — no rebuilds.
  const auto rebuilds = sw.update_stats().table_rebuilds;
  for (uint16_t i = 200; i < 400; ++i) sw.apply(add_mod(0, i, 2));
  EXPECT_EQ(sw.update_stats().table_rebuilds, rebuilds);
  auto p = make_packet(test::udp_spec(1, 2, 9, 333));
  EXPECT_EQ(sw.process(p), Verdict::output(2));
}

TEST(CuckooTemplate, BatchReselectsOnceNotPerMod) {
  // A churn burst crossing the re-selection threshold mid-batch must produce
  // exactly one re-selecting rebuild at commit, not one per remaining mod.
  CompilerConfig cfg;
  cfg.cuckoo_min_entries = 64;
  Eswitch sw(cfg);
  sw.install(udp_fanout(20));
  ASSERT_EQ(sw.table_template(0), TableTemplate::kCompoundHash);
  const auto rebuilds_before = sw.update_stats().table_rebuilds;

  std::vector<FlowMod> batch;
  for (uint16_t i = 20; i < 220; ++i) batch.push_back(add_mod(0, i, 1 + i % 7));
  sw.apply_batch(batch);

  EXPECT_EQ(sw.table_template(0), TableTemplate::kCuckooHash);
  EXPECT_EQ(sw.update_stats().table_rebuilds, rebuilds_before + 1);
  EXPECT_EQ(sw.update_stats().template_reselections, 1u);
  for (uint16_t i : {0u, 21u, 219u}) {
    auto p = make_packet(test::udp_spec(1, 2, 9, static_cast<uint16_t>(i)));
    EXPECT_EQ(sw.process(p), Verdict::output(1 + i % 7)) << i;
  }
}

TEST(CuckooTemplate, BatchRepublishesFusionOnce) {
  // Satellite: one fused-plan republish per batch, however many mods changed
  // impls — vs one per mod on the single-mod path.
  CompilerConfig cfg;
  cfg.direct_code_max_entries = 64;  // keep rebuilds coming: every add swaps
  Eswitch sw(cfg);
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=5,udp_dst=1,actions=output:1"));
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), TableTemplate::kDirectCode);
  ASSERT_TRUE(sw.fused_active());

  const auto before = sw.update_stats().fusion_republishes;
  std::vector<FlowMod> batch;
  for (uint16_t i = 100; i < 108; ++i) batch.push_back(add_mod(0, i, 2));
  sw.apply_batch(batch);
  EXPECT_EQ(sw.update_stats().fusion_republishes, before + 1);

  const auto before_single = sw.update_stats().fusion_republishes;
  for (uint16_t i = 200; i < 204; ++i) sw.apply(add_mod(0, i, 3));
  EXPECT_EQ(sw.update_stats().fusion_republishes, before_single + 4);

  for (uint16_t i : {1u, 100u, 107u, 203u}) {
    auto p = make_packet(test::udp_spec(1, 2, 9, static_cast<uint16_t>(i)));
    EXPECT_NE(sw.process(p), Verdict::drop()) << i;
  }
}

TEST(CuckooTemplate, ApplyBatchPartialRefusesPerMod) {
  CompilerConfig cfg;
  cfg.table_capacity = 5;
  Eswitch sw(cfg);
  sw.install(Pipeline{});

  std::vector<FlowMod> batch;
  for (uint16_t i = 0; i < 8; ++i) batch.push_back(add_mod(0, i, 1));
  const std::vector<ModStatus> st = sw.apply_batch_partial(batch);
  ASSERT_EQ(st.size(), 8u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(st[i], ModStatus::kApplied) << i;
  for (size_t i = 5; i < 8; ++i) EXPECT_EQ(st[i], ModStatus::kRefusedTableFull) << i;
  EXPECT_EQ(sw.pipeline().find_table(0)->size(), 5u);
  EXPECT_EQ(sw.degradation_stats().mods_refused_table_full, 3u);

  // The applied prefix is live; the refused tail is not.
  auto hit = make_packet(test::udp_spec(1, 2, 9, 4));
  EXPECT_EQ(sw.process(hit), Verdict::output(1));
  auto refused = make_packet(test::udp_spec(1, 2, 9, 6));
  EXPECT_EQ(sw.process(refused), Verdict::drop());

  // Invalid mods refuse individually too, without poisoning the rest.
  std::vector<FlowMod> mixed;
  FlowMod del = add_mod(0, 0, 1);
  del.command = FlowMod::Cmd::kDelete;
  del.actions.clear();
  mixed.push_back(del);  // frees one capacity slot
  FlowMod bad = add_mod(0, 50, 1);
  bad.goto_table = 99;  // goto to a non-existent table
  mixed.push_back(bad);
  mixed.push_back(add_mod(0, 60, 2));  // takes the freed slot
  const std::vector<ModStatus> st2 = sw.apply_batch_partial(mixed);
  ASSERT_EQ(st2.size(), 3u);
  EXPECT_EQ(st2[0], ModStatus::kApplied);
  EXPECT_EQ(st2[1], ModStatus::kRefusedInvalid);
  EXPECT_EQ(st2[2], ModStatus::kApplied);
  auto p60 = make_packet(test::udp_spec(1, 2, 9, 60));
  EXPECT_EQ(sw.process(p60), Verdict::output(2));
  auto p0 = make_packet(test::udp_spec(1, 2, 9, 0));
  EXPECT_EQ(sw.process(p0), Verdict::drop());
}

}  // namespace
}  // namespace esw
