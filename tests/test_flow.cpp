#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "flow/pipeline.hpp"
#include "proto/checksum.hpp"
#include "proto/headers.hpp"
#include "test_util.hpp"
#include "testing/seed.hpp"

namespace esw {
namespace {

using namespace esw::flow;
using test::ip;
using test::make_packet;
using test::parse_packet;

// ---------- field extraction --------------------------------------------------

struct FieldCase {
  FieldId field;
  uint64_t expected;
};

class ExtractTest : public ::testing::TestWithParam<FieldCase> {};

TEST_P(ExtractTest, ExtractsBuiltValue) {
  proto::PacketSpec s = test::tcp_spec(ip("192.168.1.1"), ip("10.9.8.7"), 4242, 80);
  s.eth_dst = 0x0A0B0C0D0E0F;
  s.eth_src = 0x010203040506;
  s.vlan_vid = 99;
  s.vlan_pcp = 3;
  s.ip_ttl = 17;
  s.ip_dscp = 11;
  auto p = make_packet(s, /*in_port=*/7);
  auto pi = parse_packet(p);
  ASSERT_TRUE(field_present(GetParam().field, pi));
  EXPECT_EQ(extract_field(GetParam().field, p.data(), pi), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllFields, ExtractTest,
    ::testing::Values(FieldCase{FieldId::kInPort, 7}, FieldCase{FieldId::kEthDst, 0x0A0B0C0D0E0F},
                      FieldCase{FieldId::kEthSrc, 0x010203040506},
                      FieldCase{FieldId::kEthType, 0x0800}, FieldCase{FieldId::kVlanVid, 99},
                      FieldCase{FieldId::kVlanPcp, 3},
                      FieldCase{FieldId::kIpSrc, 0xC0A80101},
                      FieldCase{FieldId::kIpDst, 0x0A090807},
                      FieldCase{FieldId::kIpProto, 6}, FieldCase{FieldId::kIpTtl, 17},
                      FieldCase{FieldId::kIpDscp, 11}, FieldCase{FieldId::kTcpSrc, 4242},
                      FieldCase{FieldId::kTcpDst, 80}));

TEST(Fields, PresenceRespectsProtocol) {
  auto p = make_packet(test::udp_spec(1, 2, 3, 4));
  auto pi = parse_packet(p);
  EXPECT_TRUE(field_present(FieldId::kUdpDst, pi));
  EXPECT_FALSE(field_present(FieldId::kTcpDst, pi));
  EXPECT_FALSE(field_present(FieldId::kVlanVid, pi));
  EXPECT_FALSE(field_present(FieldId::kArpOp, pi));
}

TEST(Fields, StoreFieldMaintainsChecksums) {
  auto p = make_packet(test::tcp_spec(ip("10.0.0.1"), ip("10.0.0.2"), 1000, 80));
  auto pi = parse_packet(p);

  ASSERT_TRUE(store_field(FieldId::kIpSrc, ip("99.98.97.96"), p.data(), pi));
  ASSERT_TRUE(store_field(FieldId::kTcpDst, 8080, p.data(), pi));
  ASSERT_TRUE(store_field(FieldId::kIpTtl, 9, p.data(), pi));

  EXPECT_EQ(extract_field(FieldId::kIpSrc, p.data(), pi), ip("99.98.97.96"));
  EXPECT_EQ(extract_field(FieldId::kTcpDst, p.data(), pi), 8080u);
  EXPECT_EQ(extract_field(FieldId::kIpTtl, p.data(), pi), 9u);

  // Both checksums must still verify after incremental updates.
  const uint8_t* iph = p.data() + pi.l3_off;
  EXPECT_EQ(proto::checksum(iph, 20), 0);
  const uint32_t l4_len = load_be16(iph + proto::kIpv4TotalLenOff) - 20;
  EXPECT_EQ(proto::l4_checksum_ipv4(ip("99.98.97.96"), ip("10.0.0.2"),
                                    proto::kIpProtoTcp, p.data() + pi.l4_off, l4_len),
            0);
}

TEST(Fields, InPortIsReadOnly) {
  auto p = make_packet(test::udp_spec(1, 2, 3, 4));
  auto pi = parse_packet(p);
  EXPECT_FALSE(store_field(FieldId::kInPort, 5, p.data(), pi));
}

// ---------- match ------------------------------------------------------------

TEST(Match, MaskedMatching) {
  Match m;
  m.set(FieldId::kIpDst, ip("192.0.2.0"), 0xFFFFFF00);
  m.set(FieldId::kTcpDst, 80);

  auto hit = make_packet(test::tcp_spec(1, ip("192.0.2.77"), 5, 80));
  auto miss_port = make_packet(test::tcp_spec(1, ip("192.0.2.77"), 5, 81));
  auto miss_net = make_packet(test::tcp_spec(1, ip("192.0.3.77"), 5, 80));
  auto udp = make_packet(test::udp_spec(1, ip("192.0.2.77"), 5, 80));

  EXPECT_TRUE(m.matches_packet(hit.data(), parse_packet(hit)));
  EXPECT_FALSE(m.matches_packet(miss_port.data(), parse_packet(miss_port)));
  EXPECT_FALSE(m.matches_packet(miss_net.data(), parse_packet(miss_net)));
  // Protocol prerequisite: tcp_dst on a UDP packet can never match.
  EXPECT_FALSE(m.matches_packet(udp.data(), parse_packet(udp)));
}

TEST(Match, SubsumptionAndOverlap) {
  Match broad;
  broad.set(FieldId::kIpDst, ip("192.0.2.0"), 0xFFFFFF00);
  Match narrow;
  narrow.set(FieldId::kIpDst, ip("192.0.2.12"), 0xFFFFFFFC);
  Match other;
  other.set(FieldId::kIpDst, ip("192.0.3.0"), 0xFFFFFF00);
  Match all;  // catch-all

  EXPECT_TRUE(narrow.subsumed_by(broad));
  EXPECT_FALSE(broad.subsumed_by(narrow));
  EXPECT_TRUE(broad.subsumed_by(all));
  EXPECT_TRUE(broad.overlaps(narrow));
  EXPECT_FALSE(broad.overlaps(other));
  EXPECT_TRUE(all.overlaps(other));  // different field sets always may overlap

  Match two_fields = broad;
  two_fields.set(FieldId::kTcpDst, 80);
  EXPECT_TRUE(two_fields.subsumed_by(broad));
  EXPECT_FALSE(broad.same_mask_set(two_fields));
  EXPECT_TRUE(broad.same_mask_set(other));
}

TEST(Match, CanonicalizesValueUnderMask) {
  Match m;
  m.set(FieldId::kIpDst, 0xC0000299, 0xFFFFFF00);
  EXPECT_EQ(m.value(FieldId::kIpDst), 0xC0000200u);
  EXPECT_THROW(m.set(FieldId::kTcpDst, 1, 0), CheckError);
}

// ---------- actions ------------------------------------------------------------

TEST(Actions, SetMergeSemantics) {
  ActionSetBuilder b;
  b.merge({Action::output(1)});
  b.merge({Action::set_field(FieldId::kIpTtl, 5), Action::output(2)});  // override
  auto p = make_packet(test::udp_spec(1, 2, 3, 4));
  auto pi = parse_packet(p);
  const Verdict v = b.execute(p, pi);
  EXPECT_EQ(v, Verdict::output(2));
  EXPECT_EQ(extract_field(FieldId::kIpTtl, p.data(), pi), 5u);
}

TEST(Actions, EmptySetDrops) {
  ActionSetBuilder b;
  auto p = make_packet(test::udp_spec(1, 2, 3, 4));
  auto pi = parse_packet(p);
  EXPECT_EQ(b.execute(p, pi), Verdict::drop());
}

TEST(Actions, PushAndPopVlan) {
  // Push onto untagged.
  ActionSetBuilder push;
  push.merge({Action::push_vlan(123), Action::output(1)});
  auto p = make_packet(test::udp_spec(1, 2, 3, 4));
  auto pi = parse_packet(p);
  const uint32_t orig_len = p.len();
  EXPECT_EQ(push.execute(p, pi), Verdict::output(1));
  EXPECT_EQ(p.len(), orig_len + 4);
  auto pi2 = parse_packet(p);
  EXPECT_TRUE(pi2.has(proto::kProtoVlan));
  EXPECT_EQ(extract_field(FieldId::kVlanVid, p.data(), pi2), 123u);
  EXPECT_TRUE(pi2.has(proto::kProtoUdp));  // payload intact

  // Pop it back off.
  ActionSetBuilder pop;
  pop.merge({Action::pop_vlan(), Action::output(2)});
  EXPECT_EQ(pop.execute(p, pi2), Verdict::output(2));
  EXPECT_EQ(p.len(), orig_len);
  auto pi3 = parse_packet(p);
  EXPECT_FALSE(pi3.has(proto::kProtoVlan));
  EXPECT_EQ(extract_field(FieldId::kUdpDst, p.data(), pi3), 4u);
}

TEST(Actions, DecTtlDropsExpired) {
  ActionSetBuilder b;
  b.merge({Action::dec_ttl(), Action::output(1)});
  auto spec = test::udp_spec(1, 2, 3, 4);
  spec.ip_ttl = 1;
  auto p = make_packet(spec);
  auto pi = parse_packet(p);
  EXPECT_EQ(b.execute(p, pi), Verdict::drop());

  spec.ip_ttl = 64;
  p = make_packet(spec);
  pi = parse_packet(p);
  EXPECT_EQ(b.execute(p, pi), Verdict::output(1));
  EXPECT_EQ(extract_field(FieldId::kIpTtl, p.data(), pi), 63u);
  EXPECT_EQ(proto::checksum(p.data() + pi.l3_off, 20), 0);
}

TEST(Actions, RegistryInternsIdenticalLists) {
  ActionSetRegistry reg;
  const uint32_t a = reg.intern({Action::output(3), Action::dec_ttl()});
  const uint32_t b = reg.intern({Action::output(3), Action::dec_ttl()});
  const uint32_t c = reg.intern({Action::output(4)});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(reg.size(), 2u);
}

// ---------- table & pipeline ------------------------------------------------------

TEST(FlowTable, PriorityOrderAndReplace) {
  FlowTable t(0);
  t.add(parse_rule("priority=10,tcp_dst=80,actions=output:1"));
  t.add(parse_rule("priority=200,tcp_dst=80,tcp_src=5,actions=output:2"));
  t.add(parse_rule("priority=10,tcp_dst=81,actions=output:3"));
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.entries()[0].priority, 200);

  auto p = make_packet(test::tcp_spec(1, 2, 5, 80));
  auto pi = parse_packet(p);
  const FlowEntry* e = t.lookup(p.data(), pi);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->priority, 200);

  // Replacement keeps counters.
  e->n_packets = 42;
  t.add(parse_rule("priority=200,tcp_dst=80,tcp_src=5,actions=output:9"));
  EXPECT_EQ(t.size(), 3u);
  const FlowEntry* e2 = t.lookup(p.data(), pi);
  EXPECT_EQ(e2->n_packets, 42u);
  EXPECT_EQ(e2->actions[0].value, 9u);

  EXPECT_TRUE(t.remove(e2->match, 200));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_FALSE(t.remove(e2->match, 200));
}

// The indexed add/remove must keep exactly the semantics of the scan they
// replaced: priority-descending order, stable within a band (new entries
// after existing ones), replace-preserves-counters.  Differential check
// against a naive reference over a randomized same-priority-heavy churn —
// the band shape that motivated the index.
TEST(FlowTable, IndexedMutationMatchesNaiveScan) {
  struct Ref {  // the pre-index implementation, verbatim semantics
    std::vector<FlowEntry> entries;
    void add(FlowEntry e) {
      auto it = entries.begin();
      while (it != entries.end() && it->priority >= e.priority) {
        if (it->priority == e.priority && it->match == e.match) {
          e.n_packets = it->n_packets;
          *it = std::move(e);
          return;
        }
        ++it;
      }
      entries.insert(it, std::move(e));
    }
    bool remove(const Match& m, uint16_t priority) {
      for (auto it = entries.begin(); it != entries.end(); ++it) {
        if (it->priority == priority && it->match == m) {
          entries.erase(it);
          return true;
        }
      }
      return false;
    }
  };

  Rng rng(testing::test_seed(0xF10Bu, "flow table index"));
  FlowTable t(0);
  Ref ref;
  for (uint32_t step = 0; step < 4000; ++step) {
    Match m;
    m.set(FieldId::kEthDst, 0x0200'0000'0000ULL | rng.below(256));
    // Three priorities, heavily skewed to one band; half the adds are
    // replacements of live entries, removes target live and absent alike.
    const uint16_t prio = rng.chance(3, 4) ? 10 : (rng.chance(1, 2) ? 5 : 20);
    if (rng.chance(2, 3)) {
      FlowEntry e;
      e.match = m;
      e.priority = prio;
      e.actions.push_back(Action::output(1 + rng.below(4)));
      e.n_packets = step;  // sentinel: replace must preserve the old one
      FlowEntry e2 = e;
      t.add(std::move(e));
      ref.add(std::move(e2));
    } else {
      EXPECT_EQ(t.remove(m, prio), ref.remove(m, prio)) << "step " << step;
    }
    ASSERT_EQ(t.size(), ref.entries.size()) << "step " << step;
  }
  for (size_t i = 0; i < ref.entries.size(); ++i) {
    EXPECT_EQ(t.entries()[i].priority, ref.entries[i].priority) << "slot " << i;
    EXPECT_TRUE(t.entries()[i].match == ref.entries[i].match) << "slot " << i;
    EXPECT_EQ(t.entries()[i].n_packets, ref.entries[i].n_packets) << "slot " << i;
    EXPECT_EQ(t.entries()[i].actions[0].value, ref.entries[i].actions[0].value)
        << "slot " << i;
  }
}

// The paper's Fig. 1 firewall, single-stage variant.
Pipeline fig1a_firewall() {
  Pipeline pl;
  auto& t = pl.table(0);
  t.add(parse_rule("priority=30,in_port=1,actions=output:2"));
  t.add(parse_rule(
      "priority=20,in_port=2,ip_dst=192.0.2.1,tcp_dst=80,actions=output:1"));
  t.add(parse_rule("priority=10,actions=drop"));
  return pl;
}

// Fig. 1b: equivalent two-stage pipeline.
Pipeline fig1b_firewall() {
  Pipeline pl;
  auto& t0 = pl.table(0);
  t0.add(parse_rule("priority=30,in_port=1,actions=output:2"));
  t0.add(parse_rule("priority=20,in_port=2,actions=,goto:1"));
  auto& t1 = pl.table(1);
  t1.add(parse_rule("priority=20,ip_dst=192.0.2.1,tcp_dst=80,actions=output:1"));
  t1.add(parse_rule("priority=10,actions=drop"));
  return pl;
}

TEST(Pipeline, FirewallSingleStage) {
  auto pl = fig1a_firewall();
  ASSERT_FALSE(pl.validate().has_value());

  auto internal = make_packet(test::tcp_spec(ip("192.0.2.1"), 9, 80, 7777), 1);
  auto http = make_packet(test::tcp_spec(9, ip("192.0.2.1"), 7777, 80), 2);
  auto ssh = make_packet(test::tcp_spec(9, ip("192.0.2.1"), 7777, 22), 2);

  EXPECT_EQ(pl.run(internal), Verdict::output(2));
  EXPECT_EQ(pl.run(http), Verdict::output(1));
  EXPECT_EQ(pl.run(ssh), Verdict::drop());
}

TEST(Pipeline, MultiStageEquivalentToSingleStage) {
  auto a = fig1a_firewall();
  auto b = fig1b_firewall();
  ASSERT_FALSE(b.validate().has_value());

  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const uint32_t port = 1 + rng.below(2);
    auto spec = test::tcp_spec(rng.next() & 0xFFFFFFFF,
                               rng.chance(1, 2) ? ip("192.0.2.1") : ip("192.0.2.2"),
                               static_cast<uint16_t>(rng.below(65536)),
                               rng.chance(1, 2) ? 80 : static_cast<uint16_t>(rng.below(65536)));
    auto p1 = make_packet(spec, port);
    auto p2 = make_packet(spec, port);
    EXPECT_EQ(a.run(p1), b.run(p2)) << "packet " << i;
  }
}

TEST(Pipeline, ValidateRejectsBadGoto) {
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=1,actions=,goto:5"));
  EXPECT_TRUE(pl.validate().has_value());

  Pipeline pl2;
  pl2.table(1).add(parse_rule("priority=1,actions=,goto:1"));
  EXPECT_TRUE(pl2.validate().has_value());
}

TEST(Pipeline, MissPolicyController) {
  Pipeline pl;
  pl.table(0).set_miss_policy(FlowTable::MissPolicy::kController);
  auto p = make_packet(test::udp_spec(1, 2, 3, 4));
  EXPECT_EQ(pl.run(p), Verdict::controller());
}

TEST(Pipeline, CountersAdvance) {
  auto pl = fig1a_firewall();
  auto p = make_packet(test::tcp_spec(1, 2, 3, 4), 1);
  pl.run(p);
  EXPECT_EQ(pl.find_table(0)->entries()[0].n_packets, 1u);
  EXPECT_EQ(pl.find_table(0)->entries()[0].n_bytes, p.len());
}

TEST(Pipeline, TraceRecordsVisits) {
  auto pl = fig1b_firewall();
  auto p = make_packet(test::tcp_spec(9, ip("192.0.2.1"), 7, 80), 2);
  auto pi = parse_packet(p);
  std::vector<TraceStep> trace;
  pl.process(p, pi, &trace);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].table_id, 0);
  EXPECT_EQ(trace[1].table_id, 1);
  EXPECT_NE(trace[1].entry, nullptr);
}

}  // namespace
}  // namespace esw
