#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/compiler.hpp"
#include "core/lowering.hpp"
#include "jit/direct_code.hpp"
#include "test_util.hpp"
#include "testing/seed.hpp"

namespace esw {
namespace {

using namespace esw::jit;
using flow::FieldId;
using test::ip;
using test::make_packet;
using test::parse_packet;

TEST(ExecMem, Supported) { EXPECT_TRUE(ExecBuffer::supported()); }

TEST(Jit, EmptyTableAlwaysMisses) {
  auto fn = DirectCodeFn::compile({});
  ASSERT_TRUE(fn.has_value());
  auto p = make_packet(test::udp_spec(1, 2, 3, 4));
  auto pi = parse_packet(p);
  EXPECT_EQ((*fn)(p.data(), pi), kMissResult);
}

TEST(Jit, PackedResultRoundTrip) {
  for (int32_t a : {-1, 0, 7, 1 << 20}) {
    for (int32_t n : {-1, 0, 255, 70000}) {
      int32_t a2, n2;
      unpack_result(pack_result(a, n), a2, n2);
      EXPECT_EQ(a2, a);
      EXPECT_EQ(n2, n);
    }
  }
  EXPECT_NE(pack_result(-1, -1), kMissResult);  // no-action/no-goto is a hit
}

// One lowered entry per field: JIT must agree with hit and near-miss packets.
TEST(Jit, SingleFieldMatchers) {
  proto::PacketSpec s = test::tcp_spec(ip("192.168.1.1"), ip("10.9.8.7"), 4242, 80);
  s.eth_dst = 0x0A0B0C0D0E0F;
  s.eth_src = 0x010203040506;
  s.vlan_vid = 99;
  s.vlan_pcp = 3;
  s.ip_ttl = 17;
  s.ip_dscp = 11;
  auto p = make_packet(s, 7);
  auto pi = parse_packet(p);

  for (unsigned i = 0; i < flow::kNumFields; ++i) {
    const FieldId f = static_cast<FieldId>(i);
    if (!flow::field_present(f, pi)) continue;
    const uint64_t v = flow::extract_field(f, p.data(), pi);

    LoweredEntry e;
    e.proto_required = flow::field_info(f).proto_required;
    e.tests.push_back(core::lower_field_test(f, v, flow::field_full_mask(f)));
    e.result = pack_result(5, -1);
    auto fn = DirectCodeFn::compile({e});
    ASSERT_TRUE(fn.has_value());
    EXPECT_EQ((*fn)(p.data(), pi), e.result) << flow::field_info(f).name;

    // Flip the value: must miss.
    LoweredEntry miss = e;
    miss.tests[0] = core::lower_field_test(f, v ^ 1, flow::field_full_mask(f));
    auto fn2 = DirectCodeFn::compile({miss});
    EXPECT_EQ((*fn2)(p.data(), pi), kMissResult) << flow::field_info(f).name;
  }
}

TEST(Jit, ProtocolGuardRejectsWrongProtocol) {
  // tcp_dst matcher must not fire on a UDP packet even though the bytes at
  // the L4 offset would compare equal.
  LoweredEntry e;
  e.proto_required = proto::kProtoIpv4 | proto::kProtoTcp;
  e.tests.push_back(core::lower_field_test(FieldId::kTcpDst, 80, 0xFFFF));
  e.result = pack_result(1, -1);
  auto fn = DirectCodeFn::compile({e});
  ASSERT_TRUE(fn.has_value());

  auto tcp = make_packet(test::tcp_spec(1, 2, 9, 80));
  auto udp = make_packet(test::udp_spec(1, 2, 9, 80));
  auto pit = parse_packet(tcp);
  auto piu = parse_packet(udp);
  EXPECT_EQ((*fn)(tcp.data(), pit), e.result);
  EXPECT_EQ((*fn)(udp.data(), piu), kMissResult);
}

TEST(Jit, MultiBitProtocolGuard) {
  LoweredEntry e;
  e.proto_required = proto::kProtoIpv4 | proto::kProtoVlan | proto::kProtoUdp;
  e.result = pack_result(0, -1);
  auto fn = DirectCodeFn::compile({e});
  ASSERT_TRUE(fn.has_value());

  auto spec = test::udp_spec(1, 2, 3, 4);
  auto plain = make_packet(spec);
  spec.vlan_vid = 5;
  auto tagged = make_packet(spec);
  auto pi1 = parse_packet(plain);
  auto pi2 = parse_packet(tagged);
  EXPECT_EQ((*fn)(plain.data(), pi1), kMissResult);
  EXPECT_EQ((*fn)(tagged.data(), pi2), e.result);
}

TEST(Jit, PriorityOrderFirstEntryWins) {
  LoweredEntry hi, lo;
  hi.proto_required = proto::kProtoIpv4;
  hi.tests.push_back(core::lower_field_test(FieldId::kIpDst, 0x0A000002, 0xFFFFFFFF));
  hi.result = pack_result(1, -1);
  lo.proto_required = proto::kProtoIpv4;
  lo.tests.push_back(core::lower_field_test(FieldId::kIpDst, 0x0A000002, 0xFFFFFF00));
  lo.result = pack_result(2, -1);
  auto fn = DirectCodeFn::compile({hi, lo});
  ASSERT_TRUE(fn.has_value());

  auto exact = make_packet(test::udp_spec(1, 0x0A000002, 3, 4));
  auto other = make_packet(test::udp_spec(1, 0x0A000099, 3, 4));
  auto pi1 = parse_packet(exact);
  auto pi2 = parse_packet(other);
  EXPECT_EQ((*fn)(exact.data(), pi1), hi.result);
  EXPECT_EQ((*fn)(other.data(), pi2), lo.result);
}

TEST(Jit, CalleeSavedRegistersPreserved) {
  LoweredEntry e;
  e.proto_required = proto::kProtoEth;
  e.result = pack_result(3, 9);
  auto fn = DirectCodeFn::compile({e});
  ASSERT_TRUE(fn.has_value());
  auto p = make_packet(test::udp_spec(1, 2, 3, 4));
  auto pi = parse_packet(p);

  // Hammer the function amid live register pressure; miscompiled prologues
  // corrupt the loop counters.
  uint64_t acc = 0;
  for (uint64_t i = 0; i < 100000; ++i) acc += (*fn)(p.data(), pi) + i;
  uint64_t expect = 0;
  for (uint64_t i = 0; i < 100000; ++i) expect += e.result + i;
  EXPECT_EQ(acc, expect);
}

// The big one: random rule tables, random packets — JIT output must equal the
// portable interpreter bit for bit.
TEST(Jit, DifferentialAgainstInterpreter) {
  Rng rng(esw::testing::test_seed(0xD1FF, "Jit.DifferentialAgainstInterpreter"));
  const FieldId fields[] = {FieldId::kInPort, FieldId::kEthDst,  FieldId::kEthType,
                            FieldId::kVlanVid, FieldId::kIpSrc,  FieldId::kIpDst,
                            FieldId::kIpProto, FieldId::kTcpDst, FieldId::kUdpSrc,
                            FieldId::kIpTtl};

  for (int round = 0; round < 40; ++round) {
    std::vector<LoweredEntry> entries;
    const int n = 1 + static_cast<int>(rng.below(8));
    for (int i = 0; i < n; ++i) {
      LoweredEntry e;
      uint32_t req = 0;
      const int nf = 1 + static_cast<int>(rng.below(3));
      for (int k = 0; k < nf; ++k) {
        const FieldId f = fields[rng.below(std::size(fields))];
        const uint64_t full = flow::field_full_mask(f);
        const uint64_t value = rng.next() & full;
        // Random mask, biased toward full.
        const uint64_t mask = rng.chance(2, 3) ? full : (rng.next() & full) | 1;
        e.tests.push_back(core::lower_field_test(f, value, mask));
        req |= flow::field_info(f).proto_required;
      }
      e.proto_required = req;
      e.result = pack_result(i, rng.chance(1, 4) ? static_cast<int32_t>(rng.below(4)) : -1);
      entries.push_back(std::move(e));
    }
    auto fn = DirectCodeFn::compile(entries);
    ASSERT_TRUE(fn.has_value());

    for (int q = 0; q < 200; ++q) {
      proto::PacketSpec s;
      const int kind = static_cast<int>(rng.below(4));
      s.kind = kind == 0   ? proto::PacketKind::kTcp
               : kind == 1 ? proto::PacketKind::kUdp
               : kind == 2 ? proto::PacketKind::kIcmp
                           : proto::PacketKind::kArp;
      if (rng.chance(1, 3)) s.vlan_vid = static_cast<uint16_t>(rng.below(4096));
      s.eth_dst = rng.next() & 0xFFFFFFFFFFFF;
      s.ip_src = static_cast<uint32_t>(rng.next());
      s.ip_dst = static_cast<uint32_t>(rng.next());
      s.sport = static_cast<uint16_t>(rng.next());
      s.dport = static_cast<uint16_t>(rng.next());
      s.ip_ttl = static_cast<uint8_t>(1 + rng.below(255));
      auto p = make_packet(s, static_cast<uint32_t>(rng.below(8)));
      auto pi = parse_packet(p);

      const uint64_t want = interpret(entries.data(), entries.size(), p.data(), pi);
      const uint64_t got = (*fn)(p.data(), pi);
      ASSERT_EQ(got, want) << "round " << round << " query " << q;
    }
  }
}

/// Arms the ExecBuffer failure hook for one scope.
struct ExecFailGuard {
  ExecFailGuard() { ExecBuffer::force_failure_for_testing(true); }
  ~ExecFailGuard() { ExecBuffer::force_failure_for_testing(false); }
};

// The compile-failure fallback: when executable memory is refused (hardened
// kernels — forced here via the test hook), DirectCodeFn::compile reports
// failure and the direct-code *table* silently runs the same lowered IR
// through the portable interpreter with identical results.
TEST(Jit, CompileFailureFallsBackToInterpreter) {
  Rng rng(esw::testing::test_seed(0xFA11BACC, "Jit.CompileFailureFallsBackToInterpreter"));

  for (int round = 0; round < 10; ++round) {
    // A small random control-plane table (the direct-code-eligible shape).
    std::vector<core::BuildEntry> entries;
    const int n = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < n; ++i) {
      core::BuildEntry e;
      const int nf = static_cast<int>(rng.below(3));
      for (int k = 0; k < nf; ++k) {
        const FieldId f = static_cast<FieldId>(rng.below(flow::kNumFields));
        const uint64_t full = flow::field_full_mask(f);
        e.match.set(f, rng.next() & full, rng.chance(1, 2) ? full : (rng.next() & full) | 1);
      }
      e.priority = static_cast<uint16_t>(100 - i);
      e.actions.push_back(flow::Action::output(1 + static_cast<uint32_t>(rng.below(4))));
      entries.push_back(std::move(e));
    }

    flow::ActionSetRegistry reg_jit, reg_int;
    const core::GotoMap gmap(256, -1);
    core::BuildCtx ctx_jit{reg_jit, gmap};
    core::BuildCtx ctx_int{reg_int, gmap};

    const auto jitted = core::DirectCodeTable::build(entries, ctx_jit, true);
    ASSERT_TRUE(jitted->jitted());

    std::unique_ptr<core::DirectCodeTable> fallback;
    {
      ExecFailGuard guard;
      EXPECT_FALSE(DirectCodeFn::compile({}).has_value())
          << "hook did not force compile failure";
      fallback = core::DirectCodeTable::build(entries, ctx_int, true);
    }
    ASSERT_FALSE(fallback->jitted()) << "fallback table still claims JIT code";

    for (int q = 0; q < 100; ++q) {
      proto::PacketSpec s;
      s.kind = rng.chance(1, 2) ? proto::PacketKind::kTcp : proto::PacketKind::kUdp;
      s.eth_dst = rng.next() & 0xFFFFFFFFFFFF;
      s.ip_src = static_cast<uint32_t>(rng.next());
      s.ip_dst = static_cast<uint32_t>(rng.next());
      s.sport = static_cast<uint16_t>(rng.next());
      s.dport = static_cast<uint16_t>(rng.next());
      auto p = make_packet(s, static_cast<uint32_t>(rng.below(8)));
      auto pi = parse_packet(p);
      ASSERT_EQ(jitted->lookup(p.data(), pi, nullptr),
                fallback->lookup(p.data(), pi, nullptr))
          << "round " << round << " query " << q;
    }
  }
}

// Randomized LoweredEntry sets straight through DirectCodeFn::compile vs the
// interpreter, with the failure hook cycling mid-test: arming it must fail
// compilation, disarming must restore it, and interpreter results are the
// ground truth throughout.
TEST(Jit, FailureHookCyclesCleanly) {
  LoweredEntry e;
  e.proto_required = proto::kProtoIpv4;
  e.tests.push_back(core::lower_field_test(FieldId::kIpDst, 0x01020304, 0xFFFFFFFF));
  e.result = pack_result(2, -1);

  ASSERT_TRUE(DirectCodeFn::compile({e}).has_value());
  {
    ExecFailGuard guard;
    EXPECT_FALSE(DirectCodeFn::compile({e}).has_value());
  }
  auto fn = DirectCodeFn::compile({e});
  ASSERT_TRUE(fn.has_value());

  auto hit = make_packet(test::udp_spec(9, 0x01020304, 1, 2));
  auto pi = parse_packet(hit);
  EXPECT_EQ((*fn)(hit.data(), pi), e.result);
  EXPECT_EQ(interpret(&e, 1, hit.data(), pi), e.result);
}

TEST(Jit, CodeSizeScalesWithEntries) {
  std::vector<LoweredEntry> entries;
  LoweredEntry e;
  e.proto_required = proto::kProtoIpv4;
  e.tests.push_back(core::lower_field_test(FieldId::kIpDst, 1, 0xFFFFFFFF));
  e.result = pack_result(0, -1);
  entries.push_back(e);
  auto one = DirectCodeFn::compile(entries);
  for (int i = 0; i < 9; ++i) entries.push_back(e);
  auto ten = DirectCodeFn::compile(entries);
  ASSERT_TRUE(one && ten);
  EXPECT_GT(ten->code_size(), one->code_size());
  EXPECT_LT(ten->code_size(), 4096u);  // stays compact
}

}  // namespace
}  // namespace esw
