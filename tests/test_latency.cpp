// perf/latency.hpp — the HDR-style histogram behind every latency percentile
// this repo reports.  The load-bearing property: for any recorded
// distribution, value_at_percentile() stays within the quantization budget of
// the exact sorted-sample answer, so a reported p99.9 is trustworthy to ~1%.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/tsc.hpp"
#include "perf/latency.hpp"

namespace {

using esw::Rng;
using esw::perf::LatencyHistogram;
using esw::perf::LatencyPercentiles;

// ---------------------------------------------------------------------------
// Bucket geometry
// ---------------------------------------------------------------------------

TEST(LatencyBuckets, LinearRegionIsExact) {
  // Below kSubCount every value gets its own bucket and represents itself.
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{17},
                     LatencyHistogram::kSubCount - 1}) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_value(LatencyHistogram::bucket_index(v)), v);
  }
}

TEST(LatencyBuckets, IndexIsMonotoneAcrossBoundaries) {
  // Indexes never decrease as values grow, and octave boundaries (powers of
  // two and their neighbors) land in strictly ordered buckets.
  size_t prev = 0;
  uint64_t prev_v = 0;
  for (uint32_t e = 0; e <= LatencyHistogram::kMaxExp; ++e) {
    for (const int64_t off : {-1, 0, 1}) {
      const int64_t sv = (int64_t{1} << e) + off;
      // Small octaves overlap (2^1 - 1 == 2^0 + 1); only compare when the
      // probe value actually grew.
      if (sv < 0 || static_cast<uint64_t>(sv) <= prev_v) continue;
      const uint64_t v = static_cast<uint64_t>(sv);
      const size_t idx = LatencyHistogram::bucket_index(v);
      EXPECT_GE(idx, prev) << "value " << v;
      prev = idx;
      prev_v = v;
      EXPECT_LT(idx, LatencyHistogram::kNumBuckets);
    }
  }
}

TEST(LatencyBuckets, RepresentativeStaysInBucket) {
  // The representative of a value's bucket is within the log-bucket width
  // (value/128) of the value, for values across the whole tracked range.
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.range(1, LatencyHistogram::kMaxTrackable);
    const uint64_t rep =
        LatencyHistogram::bucket_value(LatencyHistogram::bucket_index(v));
    const double err = std::abs(static_cast<double>(rep) - static_cast<double>(v));
    EXPECT_LE(err, static_cast<double>(v) / 128.0 + 1.0)
        << "value " << v << " rep " << rep;
  }
}

TEST(LatencyBuckets, SaturationAboveMaxTrackable) {
  EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::kMaxTrackable + 1),
            LatencyHistogram::kOverflowBucket);
  EXPECT_EQ(LatencyHistogram::bucket_index(UINT64_MAX),
            LatencyHistogram::kOverflowBucket);

  LatencyHistogram h;
  h.record(LatencyHistogram::kMaxTrackable + 12345);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kOverflowBucket), 1u);
  // The percentile saturates at kMaxTrackable but max() stays exact.
  EXPECT_EQ(h.value_at_percentile(50), LatencyHistogram::kMaxTrackable + 12345);
  EXPECT_EQ(h.max(), LatencyHistogram::kMaxTrackable + 12345);
}

// ---------------------------------------------------------------------------
// Degenerate inputs
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, EmptyIsAllZero) {
  const LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.value_at_percentile(50), 0u);
  const LatencyPercentiles p = h.percentiles();
  EXPECT_EQ(p.samples, 0u);
  EXPECT_EQ(p.p999, 0.0);
}

TEST(LatencyHistogramTest, SingleSampleIsEveryPercentile) {
  LatencyHistogram h;
  h.record(7777);
  EXPECT_EQ(h.count(), 1u);
  for (const double pct : {0.0, 1.0, 50.0, 99.0, 99.9, 100.0})
    EXPECT_EQ(h.value_at_percentile(pct), 7777u) << pct;
  EXPECT_EQ(h.min(), 7777u);
  EXPECT_EQ(h.max(), 7777u);
  EXPECT_EQ(h.mean(), 7777.0);
}

TEST(LatencyHistogramTest, RecordNWeightsLikeNRecords) {
  LatencyHistogram a, b;
  a.record_n(500, 32);
  a.record_n(0, 3);
  for (int i = 0; i < 32; ++i) b.record(500);
  for (int i = 0; i < 3; ++i) b.record(0);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  for (const double pct : {10.0, 50.0, 99.0})
    EXPECT_EQ(a.value_at_percentile(pct), b.value_at_percentile(pct)) << pct;
}

TEST(LatencyHistogramTest, ClearResets) {
  LatencyHistogram h;
  h.record(123);
  h.record(456789);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.value_at_percentile(99), 0u);
  h.record(42);  // usable again after clear
  EXPECT_EQ(h.value_at_percentile(50), 42u);
}

// ---------------------------------------------------------------------------
// Percentile accuracy vs the exact sorted-sample reference
// ---------------------------------------------------------------------------

/// Records `samples` and asserts every interesting percentile is within
/// `rel_budget` of the exact order statistic (plus one bucket of slack at the
/// tiny end where the integer grid dominates).
void check_against_reference(std::vector<uint64_t> samples, double rel_budget) {
  LatencyHistogram h;
  for (const uint64_t s : samples) h.record(s);
  std::sort(samples.begin(), samples.end());
  for (const double pct : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    // Same rank convention as the histogram: sample of rank ceil(pct% * n).
    size_t rank = static_cast<size_t>(
        std::ceil(pct / 100.0 * static_cast<double>(samples.size())));
    rank = std::min(std::max<size_t>(rank, 1), samples.size());
    const double exact = static_cast<double>(samples[rank - 1]);
    const double got = static_cast<double>(h.value_at_percentile(pct));
    EXPECT_NEAR(got, exact, exact * rel_budget + 1.0)
        << "p" << pct << " exact=" << exact << " got=" << got;
  }
}

TEST(LatencyAccuracy, Uniform) {
  Rng rng(1);
  std::vector<uint64_t> s;
  s.reserve(200000);
  for (int i = 0; i < 200000; ++i) s.push_back(rng.range(50, 5000));
  check_against_reference(std::move(s), 0.01);
}

TEST(LatencyAccuracy, LogNormal) {
  // The realistic latency shape: tight body, heavy tail over ~4 octaves.
  Rng rng(2);
  std::vector<uint64_t> s;
  s.reserve(200000);
  for (int i = 0; i < 200000; ++i) {
    // Box-Muller from two uniforms; exp() gives the log-normal.
    const double u1 = rng.uniform01(), u2 = rng.uniform01();
    const double z =
        std::sqrt(-2.0 * std::log(u1 + 1e-12)) * std::cos(6.283185307179586 * u2);
    s.push_back(static_cast<uint64_t>(std::exp(7.0 + 0.8 * z)) + 1);
  }
  check_against_reference(std::move(s), 0.01);
}

TEST(LatencyAccuracy, Bimodal) {
  // Fast path vs slow path: 95% around 300 cycles, 5% around 40k cycles —
  // the shape where a mean is a lie and p99/p99.9 is the story.
  Rng rng(3);
  std::vector<uint64_t> s;
  s.reserve(200000);
  for (int i = 0; i < 200000; ++i) {
    if (rng.chance(95, 100))
      s.push_back(rng.range(250, 350));
    else
      s.push_back(rng.range(30000, 50000));
  }
  check_against_reference(std::move(s), 0.01);
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

TEST(LatencyMerge, MergeEqualsSingleRecorder) {
  // Shard a stream across 4 histograms (the per-worker shape), merge, and
  // compare every percentile against one histogram that saw everything.
  Rng rng(4);
  LatencyHistogram whole;
  LatencyHistogram shard[4];
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = rng.range(1, 1u << 20);
    whole.record(v);
    shard[i % 4].record(v);
  }
  LatencyHistogram merged;
  for (auto& s : shard) merged.merge(s);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
  EXPECT_EQ(merged.mean(), whole.mean());
  for (const double pct : {50.0, 90.0, 99.0, 99.9})
    EXPECT_EQ(merged.value_at_percentile(pct), whole.value_at_percentile(pct));
}

TEST(LatencyMerge, Associative) {
  Rng rng(5);
  LatencyHistogram a, b, c;
  for (int i = 0; i < 5000; ++i) {
    a.record(rng.range(1, 1000));
    b.record(rng.range(1000, 100000));
    c.record(rng.range(1, 1u << 30));
  }
  // (a + b) + c  ==  a + (b + c)
  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram abc1 = ab;
  abc1.merge(c);
  LatencyHistogram bc = b;
  bc.merge(c);
  LatencyHistogram abc2 = a;
  abc2.merge(bc);
  EXPECT_EQ(abc1.count(), abc2.count());
  EXPECT_EQ(abc1.mean(), abc2.mean());
  for (const double pct : {50.0, 99.0, 99.9, 100.0})
    EXPECT_EQ(abc1.value_at_percentile(pct), abc2.value_at_percentile(pct));
  for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i)
    ASSERT_EQ(abc1.bucket_count(i), abc2.bucket_count(i)) << i;
}

TEST(LatencyMerge, MergingEmptyIsIdentity) {
  LatencyHistogram h, empty;
  h.record(99);
  h.merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 99u);  // an empty min() must not clobber a real one
  EXPECT_EQ(h.max(), 99u);
}

// ---------------------------------------------------------------------------
// Time sources
// ---------------------------------------------------------------------------

TEST(Tsc, SerializedReadIsMonotone) {
  // 1M back-to-back serialized reads: never decreasing, and the pair around
  // any gap stays sane.  Plain rdtsc can reorder; rdtscp+lfence must not.
  uint64_t prev = esw::rdtsc_serialized();
  for (int i = 0; i < 1000000; ++i) {
    const uint64_t now = esw::rdtsc_serialized();
    ASSERT_GE(now, prev) << "at read " << i;
    prev = now;
  }
}

TEST(Tsc, CyclesToNsCalibrationSane) {
  // The calibrated frequency is in a plausible range (0.5-6 GHz on x86;
  // ~1 "GHz" on the steady_clock fallback), and the conversion inverts it.
  const double ghz = esw::tsc_ghz();
  EXPECT_GT(ghz, 0.1);
  EXPECT_LT(ghz, 10.0);
  EXPECT_NEAR(esw::perf::cycles_to_ns(1000.0), 1000.0 / ghz, 1e-9);
  // One second of cycles converts to ~1e9 ns.
  EXPECT_NEAR(esw::perf::cycles_to_ns(ghz * 1e9), 1e9, 1.0);
}

TEST(Tsc, SerializedAgreesWithWallClock) {
  // A 20ms sleep measured with serialized reads lands within 50% of wall
  // time — generous, but catches a broken calibration or a wild TSC.
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t c0 = esw::rdtsc_serialized();
  while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(20)) {
  }
  const uint64_t c1 = esw::rdtsc_serialized();
  const double ns = esw::perf::cycles_to_ns(static_cast<double>(c1 - c0));
  EXPECT_GT(ns, 10e6);
  EXPECT_LT(ns, 60e6);
}

}  // namespace
