// Whole-pipeline JIT fusion (jit/fusion.hpp, core::fuse_pipeline): the fused
// burst fast path must be observably identical to the staged per-table walk —
// same verdicts, same packet mutations, same per-table and global stats — for
// every template shape, goto chains, both miss policies, and under churn.
// The degradation story is covered too: an exec-map refusal during the fused
// compile degrades bursts to the staged walk, is accounted in the fusion
// ledger, and heals through the bounded-backoff retry; pathological goto
// graphs (cycles hand-wired below the control-plane validator) terminate in
// the shared loop-bound drop instead of hanging the walk.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "core/compiler.hpp"
#include "core/eswitch.hpp"
#include "flow/dsl.hpp"
#include "jit/exec_mem.hpp"
#include "netio/pktgen.hpp"
#include "test_util.hpp"
#include "usecases/usecases.hpp"

namespace {

using namespace esw;
using core::CompiledDatapath;
using core::CompilerConfig;
using core::Eswitch;
using core::FusedPipeline;
using core::TableTemplate;
using flow::FieldId;
using flow::FlowMod;
using flow::parse_rule;
using flow::Pipeline;
using flow::Verdict;

uint64_t packet_digest(const net::Packet& p) {
  return hash_bytes(p.data(), p.len(), uint64_t{p.len()} << 32 | p.in_port());
}

FlowMod add_mod(uint8_t table, const std::string& rule) {
  const flow::FlowEntry e = parse_rule(rule);
  FlowMod fm;
  fm.command = FlowMod::Cmd::kAdd;
  fm.table_id = table;
  fm.priority = e.priority;
  fm.match = e.match;
  fm.actions = e.actions;
  fm.goto_table = e.goto_table;
  return fm;
}

std::vector<net::FlowSpec> random_traffic(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<net::FlowSpec> flows;
  flows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    net::FlowSpec f;
    const uint64_t k = rng.below(100);
    if (k < 45) {
      f.pkt = test::udp_spec(static_cast<uint32_t>(rng.next()),
                             static_cast<uint32_t>(rng.next()),
                             static_cast<uint16_t>(rng.below(0x10000)),
                             static_cast<uint16_t>(rng.below(0x400)));
    } else if (k < 90) {
      f.pkt = test::tcp_spec(0x0A000000 | static_cast<uint32_t>(rng.below(256)),
                             0xC0000200 | static_cast<uint32_t>(rng.below(256)),
                             static_cast<uint16_t>(rng.below(0x10000)),
                             static_cast<uint16_t>(rng.below(128)));
    } else if (k < 95) {
      f.pkt.kind = proto::PacketKind::kArp;
    } else {
      f.pkt.kind = proto::PacketKind::kRawEth;
    }
    f.in_port = static_cast<uint32_t>(rng.below(4));
    flows.push_back(f);
  }
  return flows;
}

struct RunResult {
  std::vector<Verdict> verdicts;
  std::vector<uint64_t> digests;
};

/// Replays the sequence in deterministic irregular bursts (singletons,
/// partial bursts, > kBurstSize chunked calls) through process_burst.
RunResult run_bursts(Eswitch& sw, const net::TrafficSet& ts, size_t n) {
  RunResult r;
  Rng rng(0xF5D);
  std::vector<net::Packet> bufs(2 * net::kBurstSize);
  std::vector<net::Packet*> ptrs(bufs.size());
  std::vector<Verdict> verdicts(bufs.size());
  for (size_t b = 0; b < bufs.size(); ++b) ptrs[b] = &bufs[b];

  size_t i = 0;
  while (i < n) {
    const uint32_t want = static_cast<uint32_t>(rng.range(1, bufs.size()));
    const uint32_t burst = static_cast<uint32_t>(std::min<size_t>(want, n - i));
    for (uint32_t b = 0; b < burst; ++b) ts.load(i + b, bufs[b]);
    sw.process_burst(ptrs.data(), burst, verdicts.data());
    for (uint32_t b = 0; b < burst; ++b) {
      r.verdicts.push_back(verdicts[b]);
      r.digests.push_back(packet_digest(bufs[b]));
    }
    i += burst;
  }
  return r;
}

void expect_stats_equal(const Eswitch& a, const Eswitch& b) {
  const auto sa = a.datapath().stats();
  const auto sb = b.datapath().stats();
  EXPECT_EQ(sa.packets, sb.packets);
  EXPECT_EQ(sa.outputs, sb.outputs);
  EXPECT_EQ(sa.drops, sb.drops);
  EXPECT_EQ(sa.to_controller, sb.to_controller);
  ASSERT_EQ(a.datapath().num_slots(), b.datapath().num_slots());
  for (int32_t s = 0; s < a.datapath().num_slots(); ++s) {
    const auto ta = a.datapath().table_stats(s);
    const auto tb = b.datapath().table_stats(s);
    EXPECT_EQ(ta.lookups, tb.lookups) << "slot " << s;
    EXPECT_EQ(ta.hits, tb.hits) << "slot " << s;
    EXPECT_EQ(ta.misses, tb.misses) << "slot " << s;
  }
}

/// Same pipeline into a fused and a fusion-disabled switch, same burst
/// sequence: verdicts, frame mutations, verdict-level and per-slot stats must
/// agree packet for packet.
void expect_fused_parity(const Pipeline& pl,
                         const std::vector<net::FlowSpec>& flows,
                         CompilerConfig cfg = {}, size_t n_packets = 3000) {
  CompilerConfig fused_cfg = cfg, staged_cfg = cfg;
  fused_cfg.enable_fusion = true;
  staged_cfg.enable_fusion = false;
  Eswitch fused_sw(fused_cfg), staged_sw(staged_cfg);
  fused_sw.install(pl);
  staged_sw.install(pl);
  ASSERT_TRUE(fused_sw.fused_active()) << "plan was not published";
  ASSERT_FALSE(staged_sw.fused_active());
  const auto ts = net::TrafficSet::from_flows(flows);

  const RunResult f = run_bursts(fused_sw, ts, n_packets);
  const RunResult s = run_bursts(staged_sw, ts, n_packets);
  ASSERT_EQ(f.verdicts.size(), s.verdicts.size());
  for (size_t i = 0; i < f.verdicts.size(); ++i) {
    ASSERT_EQ(f.verdicts[i], s.verdicts[i]) << "packet " << i;
    ASSERT_EQ(f.digests[i], s.digests[i]) << "packet " << i;
  }
  expect_stats_equal(fused_sw, staged_sw);
}

// --- fusability ------------------------------------------------------------

TEST(Fusion, ActiveForEveryTemplateShape) {
  struct Case {
    TableTemplate expect;
    Pipeline pl;
    CompilerConfig cfg;
  };
  std::vector<Case> cases;
  {
    Case c;
    c.expect = TableTemplate::kDirectCode;
    c.pl.table(0).add(parse_rule("priority=10,udp_dst=53,actions=output:1"));
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.expect = TableTemplate::kCompoundHash;
    c.pl = uc::make_l2(64).pipeline;
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.expect = TableTemplate::kLpm;
    c.pl = uc::make_l3(100).pipeline;
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.expect = TableTemplate::kRange;
    c.pl.table(0).add(parse_rule("priority=100,udp_dst=0x100/0xFF00,actions=output:1"));
    c.pl.table(0).add(parse_rule("priority=20,udp_dst=0x140/0xFFC0,actions=output:2"));
    c.pl.table(0).add(parse_rule("priority=90,udp_dst=0x200/0xFF00,actions=output:3"));
    c.cfg.direct_code_max_entries = 2;
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.expect = TableTemplate::kLinkedList;
    const flow::FlowTable acls = uc::make_snort_like_acls(24);
    for (const flow::FlowEntry& e : acls.entries()) c.pl.table(0).add(e);
    cases.push_back(std::move(c));
  }

  for (const Case& c : cases) {
    Eswitch sw(c.cfg);
    sw.install(c.pl);
    ASSERT_EQ(sw.table_template(c.pl.tables().front().id()), c.expect);
    EXPECT_TRUE(sw.fused_active())
        << "template " << static_cast<int>(c.expect) << " blocked fusion";
    const FusedPipeline* fp = sw.datapath().fused();
    ASSERT_NE(fp, nullptr);
    EXPECT_EQ(fp->stages.size(), 1u);
    // Only direct-code members get machine code; the rest is a pinned plan.
    if (c.expect == TableTemplate::kDirectCode && jit::ExecBuffer::supported()) {
      EXPECT_NE(fp->program, nullptr);
    }
  }
}

TEST(Fusion, NotFusedWhenDisabledOrDecomposed) {
  {
    CompilerConfig cfg;
    cfg.enable_fusion = false;
    Eswitch sw(cfg);
    sw.install(uc::make_l2(64).pipeline);
    EXPECT_FALSE(sw.fused_active());
  }
  {
    CompilerConfig cfg;
    cfg.enable_decomposition = true;
    Eswitch sw(cfg);
    const auto uc = uc::make_load_balancer(20);
    sw.install(uc.pipeline);
    ASSERT_TRUE(sw.is_decomposed(0));
    EXPECT_FALSE(sw.fused_active());
    // The staged walk still serves the decomposed pipeline correctly.
    net::Packet p = test::make_packet(uc.traffic(4, 5)[0].pkt);
    net::Packet* pp = &p;
    Verdict v;
    sw.process_burst(&pp, 1, &v);
    EXPECT_EQ(sw.datapath().stats().packets, 1u);
  }
}

// --- fused/staged parity ----------------------------------------------------

TEST(Fusion, ParityDirectCodeGotoChainWithMutationsAndControllerMiss) {
  // Three direct-code tables chained by gotos; the middle one's miss goes to
  // the controller and the chain mutates the frame twice (dec_ttl) — packet
  // bytes, action accumulation across stages and both miss policies in one
  // machine-fused graph.
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=30,eth_type=0x0800,actions=dec_ttl,goto:1"));
  pl.table(0).add(parse_rule("priority=10,eth_type=0x0806,actions=controller"));
  pl.table(1).add(parse_rule("priority=20,tcp_dst=80,actions=dec_ttl,goto:2"));
  pl.table(1).add(parse_rule("priority=15,udp_dst=53,actions=goto:2"));
  pl.table(1).set_miss_policy(flow::FlowTable::MissPolicy::kController);
  pl.table(2).add(parse_rule("priority=10,ip_dst=10.0.0.0/8,actions=output:3"));
  pl.table(2).add(parse_rule("priority=1,actions=output:9"));

  Eswitch probe;
  probe.install(pl);
  for (uint8_t t : {0, 1, 2})
    ASSERT_EQ(probe.table_template(t), TableTemplate::kDirectCode);
  if (jit::ExecBuffer::supported()) {
    ASSERT_TRUE(probe.fused_active());
    EXPECT_NE(probe.datapath().fused()->program, nullptr);
  }
  expect_fused_parity(pl, random_traffic(600, 0xFC1));
}

TEST(Fusion, ParityHashL2) {
  const auto uc = uc::make_l2(256);
  expect_fused_parity(uc.pipeline, uc.traffic(1000, 7));
}

TEST(Fusion, ParityLpmL3) {
  const auto uc = uc::make_l3(500);
  expect_fused_parity(uc.pipeline, uc.traffic(1500, 11));
}

TEST(Fusion, ParityRangeTemplate) {
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=100,udp_dst=0x100/0xFF00,actions=output:1"));
  pl.table(0).add(parse_rule("priority=20,udp_dst=0x140/0xFFC0,actions=output:2"));
  pl.table(0).add(parse_rule("priority=90,udp_dst=0x200/0xFF00,actions=output:3"));
  pl.table(0).add(parse_rule("priority=95,udp_dst=0x240/0xFFC0,actions=output:4"));
  pl.table(0).add(parse_rule("priority=1,actions=drop"));
  CompilerConfig cfg;
  cfg.direct_code_max_entries = 2;
  expect_fused_parity(pl, random_traffic(600, 0x4A), cfg);
}

TEST(Fusion, ParityLinkedListAcls) {
  Pipeline pl;
  const flow::FlowTable acls = uc::make_snort_like_acls(48);
  for (const flow::FlowEntry& e : acls.entries()) pl.table(0).add(e);
  expect_fused_parity(pl, random_traffic(800, 0x11));
}

TEST(Fusion, ParityGatewayMultiTable) {
  const auto uc = uc::make_gateway(4, 8, 200);
  expect_fused_parity(uc.pipeline, uc.traffic(1500, 31));
}

// --- churn: republish, fingerprint skip, program reuse ----------------------

TEST(Fusion, InPlaceUpdateKeepsPublishedPlan) {
  // Without registered workers an incremental add mutates the impl in place:
  // the (slot, impl, miss) fingerprint is unchanged, so refresh_fusion must
  // skip the republish and the plan pointer must not move.
  Pipeline pl;
  for (int i = 0; i < 20; ++i)
    pl.table(0).add(parse_rule("priority=5,udp_dst=" + std::to_string(i) +
                               ",actions=output:1"));
  Eswitch sw;
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), TableTemplate::kCompoundHash);
  ASSERT_TRUE(sw.fused_active());
  const FusedPipeline* before = sw.datapath().fused();
  const auto rebuilds = sw.update_stats().table_rebuilds;

  sw.apply(add_mod(0, "priority=5,udp_dst=1000,actions=output:7"));
  ASSERT_EQ(sw.update_stats().table_rebuilds, rebuilds);  // in place indeed
  EXPECT_EQ(sw.datapath().fused(), before) << "unchanged fingerprint republished";

  // The live plan serves the new rule through the pinned impl.
  net::Packet p = test::make_packet(test::udp_spec(1, 2, 9, 1000));
  net::Packet* pp = &p;
  Verdict v;
  sw.process_burst(&pp, 1, &v);
  EXPECT_EQ(v, Verdict::output(7));
}

TEST(Fusion, CloneSwapChurnReusesMachineProgram) {
  // Mixed pipeline: a direct-code stage chained into a hash stage.  With a
  // worker registered, a hash add becomes a clone-update-swap — the impl
  // pointer changes, so the plan must republish (new fingerprint), but the
  // direct-code member set is untouched (same program_key), so the previous
  // machine program must be reused, not re-emitted.  A direct-code mod then
  // changes the member set and must produce a fresh program.
  if (!jit::ExecBuffer::supported()) GTEST_SKIP() << "no executable memory";
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=10,eth_type=0x0800,actions=goto:1"));
  for (int i = 0; i < 20; ++i)
    pl.table(1).add(parse_rule("priority=5,udp_dst=" + std::to_string(i) +
                               ",actions=output:1"));
  Eswitch sw;
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), TableTemplate::kDirectCode);
  ASSERT_EQ(sw.table_template(1), TableTemplate::kCompoundHash);
  ASSERT_TRUE(sw.fused_active());

  Eswitch::Worker* w = sw.register_worker();
  ASSERT_NE(w, nullptr);

  const FusedPipeline* plan0 = sw.datapath().fused();
  ASSERT_NE(plan0, nullptr);
  ASSERT_NE(plan0->program, nullptr);
  const jit::FusedProgram* prog0 = plan0->program.get();

  sw.apply(add_mod(1, "priority=5,udp_dst=2000,actions=output:7"));
  const FusedPipeline* plan1 = sw.datapath().fused();
  ASSERT_NE(plan1, nullptr);
  EXPECT_NE(plan1, plan0) << "clone-swap churn did not republish";
  EXPECT_EQ(plan1->program.get(), prog0) << "unchanged member set re-emitted";

  sw.apply(add_mod(0, "priority=9,eth_type=0x0806,actions=controller"));
  const FusedPipeline* plan2 = sw.datapath().fused();
  ASSERT_NE(plan2, nullptr);
  ASSERT_NE(plan2->program, nullptr);
  EXPECT_NE(plan2->program.get(), prog0) << "stale machine code kept after dc rebuild";

  sw.unregister_worker(w);
  sw.datapath().reclaim();
  EXPECT_EQ(sw.datapath().reclaim_stats().pending, 0u);
}

// --- degradation: exec-map refusal, bounded retry, recovery -----------------

/// Arms the ExecBuffer failure hook for one scope (the jit.exec_map site).
struct ExecFailGuard {
  ExecFailGuard() { jit::ExecBuffer::force_failure_for_testing(true); }
  ~ExecFailGuard() { jit::ExecBuffer::force_failure_for_testing(false); }
};

TEST(Fusion, ExecMapFailureFallsBackThenRecovers) {
  if (!jit::ExecBuffer::supported()) GTEST_SKIP() << "no executable memory";
  CompilerConfig cfg;
  cfg.jit_retry_base_updates = 2;  // short windows so the test sees recovery
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=10,udp_dst=53,actions=goto:1"));
  pl.table(0).add(parse_rule("priority=0,actions=goto:1"));  // catch-all
  pl.table(1).add(parse_rule("priority=10,udp_dst=53,actions=output:4"));
  Eswitch sw(cfg);
  sw.install(pl);
  ASSERT_TRUE(sw.fused_active());
  ASSERT_NE(sw.datapath().fused()->program, nullptr);

  {
    ExecFailGuard guard;
    // The rebuild degrades the table to the interpreter AND refuses the
    // fused re-compile: the plan must be cleared, not left stale.
    sw.apply(add_mod(1, "priority=9,udp_dst=99,actions=output:5"));
  }
  EXPECT_FALSE(sw.fused_active()) << "refused compile left a plan published";
  EXPECT_EQ(sw.degradation_stats().fusion_fallbacks, 1u);
  EXPECT_EQ(sw.degradation_stats().fusion_recoveries, 0u);

  // Degraded bursts still process correctly through the staged walk.
  net::Packet p = test::make_packet(test::udp_spec(1, 2, 9, 99));
  net::Packet* pp = &p;
  Verdict v;
  sw.process_burst(&pp, 1, &v);
  EXPECT_EQ(v, Verdict::output(5));

  // Two healthy updates elapse the retry window; the re-fusion must land and
  // be accounted as a recovery.
  sw.apply(add_mod(1, "priority=8,udp_dst=100,actions=output:6"));
  sw.apply(add_mod(1, "priority=7,udp_dst=101,actions=output:7"));
  EXPECT_TRUE(sw.fused_active()) << "retry window elapsed without re-fusing";
  EXPECT_GE(sw.degradation_stats().fusion_retries, 1u);
  EXPECT_EQ(sw.degradation_stats().fusion_recoveries, 1u);

  net::Packet p2 = test::make_packet(test::udp_spec(1, 2, 9, 53));
  net::Packet* pp2 = &p2;
  sw.process_burst(&pp2, 1, &v);
  EXPECT_EQ(v, Verdict::output(4));
}

// --- pathological goto graphs (shared loop-bound policy) --------------------

TEST(Fusion, GotoCycleTerminatesInBoundedDrop) {
  // Two interpreter tables hand-wired into a cycle via raw internal_next slot
  // ids — below the control-plane validator (which enforces forward gotos).
  // Both walk flavors must terminate in kMaxHops drops, with the stats
  // windows flushed mid-walk (the hoisted lap guard), not hang.
  CompiledDatapath dp;
  const core::GotoMap gmap(256, -1);
  core::BuildCtx ctx{dp.actions(), gmap};
  const int32_t s0 = dp.add_slot(flow::FlowTable::MissPolicy::kDrop);
  const int32_t s1 = dp.add_slot(flow::FlowTable::MissPolicy::kDrop);
  core::BuildEntry e;  // match-all, no actions
  e.priority = 1;
  e.internal_next = s1;
  dp.set_impl(s0, core::DirectCodeTable::build({e}, ctx, false));
  e.internal_next = s0;
  dp.set_impl(s1, core::DirectCodeTable::build({e}, ctx, false));
  dp.set_start(s0);

  net::Packet p = test::make_packet(test::udp_spec(1, 2, 3, 4));
  EXPECT_EQ(dp.process(p), Verdict::drop());  // scalar walk

  net::Packet* pp = &p;
  Verdict v = Verdict::output(9);
  dp.process_burst(&pp, 1, &v);  // staged burst walk
  EXPECT_EQ(v, Verdict::drop());
  EXPECT_EQ(dp.stats().packets, 2u);
  EXPECT_EQ(dp.stats().drops, 2u);
  // Every hop was counted before the guard dropped the packet.
  const auto ts0 = dp.table_stats(s0);
  const auto ts1 = dp.table_stats(s1);
  EXPECT_EQ(ts0.lookups + ts1.lookups,
            2u * static_cast<uint64_t>(CompiledDatapath::kMaxHops));

  // A hand-built fused plan with the same backward edge: the fused walk's
  // monotone-stage guard must drop at the first backward transition.
  auto fp = std::make_unique<FusedPipeline>();
  fp->stage_of_slot.assign(static_cast<size_t>(dp.num_slots()), -1);
  fp->stages.push_back({s0, dp.impl(s0), flow::FlowTable::MissPolicy::kDrop,
                        false, nullptr});
  fp->stages.push_back({s1, dp.impl(s1), flow::FlowTable::MissPolicy::kDrop,
                        false, nullptr});
  fp->stage_of_slot[static_cast<size_t>(s0)] = 0;
  fp->stage_of_slot[static_cast<size_t>(s1)] = 1;
  dp.set_fused(std::move(fp));
  dp.process_burst(&pp, 1, &v);
  EXPECT_EQ(v, Verdict::drop());
  EXPECT_EQ(dp.stats().drops, 3u);
}

// --- concurrent churn: epoch-safe republish ---------------------------------

TEST(Fusion, ConcurrentChurnRepublishesEpochSafely) {
  // One packet worker runs fused bursts while the control thread churns the
  // MAC table (clone-update-swap per mod => a plan republish per mod).  The
  // run must stay crash-free with exact verdict accounting, and every retired
  // plan/impl must drain once the worker is gone.
  const auto uc = uc::make_l2(2000);
  Eswitch sw;
  sw.install(uc.pipeline);
  ASSERT_TRUE(sw.fused_active());
  Eswitch::Worker* w = sw.register_worker();
  ASSERT_NE(w, nullptr);

  const auto ts = net::TrafficSet::from_flows(uc.traffic(512, 99));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> processed{0};
  std::thread worker([&] {
    std::vector<net::Packet> bufs(net::kBurstSize);
    std::vector<net::Packet*> ptrs(bufs.size());
    Verdict verdicts[net::kBurstSize];
    for (size_t b = 0; b < bufs.size(); ++b) ptrs[b] = &bufs[b];
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (uint32_t b = 0; b < net::kBurstSize; ++b)
        ts.load((i + b) % 512, bufs[b]);
      sw.process_burst(*w, ptrs.data(), net::kBurstSize, verdicts);
      processed.fetch_add(net::kBurstSize, std::memory_order_relaxed);
      i += net::kBurstSize;
    }
  });

  for (int k = 0; k < 300; ++k) {
    FlowMod fm;
    fm.command = FlowMod::Cmd::kAdd;
    fm.table_id = 0;
    fm.priority = 5;
    fm.match.set(FieldId::kEthDst, 0x020000000000ull | static_cast<uint64_t>(k),
                 0xFFFFFFFFFFFFull);
    fm.actions.push_back(flow::Action::output(2));
    sw.apply(fm);
  }
  stop.store(true);
  worker.join();
  sw.unregister_worker(w);

  EXPECT_TRUE(sw.fused_active()) << "churn ended with the fast path lost";
  const auto st = sw.datapath().stats();
  EXPECT_EQ(st.packets, processed.load());
  EXPECT_EQ(st.packets, st.outputs + st.drops + st.to_controller);
  sw.datapath().reclaim();
  EXPECT_EQ(sw.datapath().reclaim_stats().pending, 0u)
      << "retired plans/impls stuck after the last worker left";
}

}  // namespace
