#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/analysis.hpp"
#include "core/decompose.hpp"
#include "core/eswitch.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using namespace esw::core;
using namespace esw::flow;
using test::ip;
using test::make_packet;

// The paper's Fig. 5 example: four-ish column table over (ip_dst, tcp_dst).
// tcp_dst has diversity 2 and must be picked as the pivot, giving 4 tables.
TEST(Decompose, Fig5PicksMinimalDiversityColumn) {
  FlowTable t(0);
  t.add(parse_rule("priority=60,ip_dst=1.0.0.1,tcp_dst=80,actions=output:1"));
  t.add(parse_rule("priority=50,ip_dst=1.0.0.2,tcp_dst=80,actions=output:2"));
  t.add(parse_rule("priority=40,ip_dst=1.0.0.3,tcp_dst=80,actions=output:3"));
  t.add(parse_rule("priority=30,ip_dst=1.0.0.1,tcp_dst=22,actions=output:4"));
  t.add(parse_rule("priority=20,ip_dst=1.0.0.2,tcp_dst=22,actions=output:5"));
  t.add(parse_rule("priority=10,ip_dst=1.0.0.3,tcp_dst=22,actions=output:6"));

  const auto d = decompose(t);
  // Optimal: router over tcp_dst {80, 22} + one ip_dst table per key.
  // (Fig. 5c: 4 tables; pivoting on ip_dst would give 1 + 3 = more.)
  EXPECT_EQ(d.tables.size(), 3u);  // router + 2 residuals (no wildcard rules)
  ASSERT_FALSE(d.tables[0].entries.empty());
  EXPECT_TRUE(d.tables[0].entries[0].match.has(FieldId::kTcpDst));
  // Residual tables are single-field exact -> hash-template compliant.
  for (size_t i = 1; i < d.tables.size(); ++i) {
    const AnalysisEntries& sub = d.tables[i].entries;
    EXPECT_TRUE(hash_prerequisite(sub, nullptr, nullptr));
  }
}

TEST(Decompose, WildcardRulesReplicateIntoBranches) {
  FlowTable t(0);
  t.add(parse_rule("priority=60,in_port=1,tcp_dst=80,actions=output:1"));
  t.add(parse_rule("priority=50,in_port=2,tcp_dst=80,actions=output:2"));
  t.add(parse_rule("priority=40,tcp_dst=80,actions=output:3"));  // wildcard in_port
  t.add(parse_rule("priority=30,in_port=1,tcp_dst=22,actions=output:4"));

  const auto d = decompose(t);
  EXPECT_GT(d.tables.size(), 1u);
  // Router + branch tables exist; the wildcard rule must appear in a
  // catch-all branch too.
  bool found_catch_all_route = false;
  for (const auto& e : d.tables[0].entries)
    if (e.match.is_catch_all() && e.internal_next >= 0) found_catch_all_route = true;
  EXPECT_TRUE(found_catch_all_route);
}

TEST(Decompose, SingleFieldTableReturnedIntact) {
  // The paper: "in essentially all cases our decomposer simply returned its
  // input intact" for already-decomposed (single-field) stages.
  FlowTable t(0);
  for (int i = 0; i < 10; ++i)
    t.add(parse_rule("priority=5,eth_dst=00:00:00:00:01:0" + std::to_string(i % 10) +
                     ",actions=output:" + std::to_string(i)));
  const auto d = decompose(t);
  EXPECT_TRUE(d.unchanged());
  EXPECT_EQ(d.tables[0].entries.size(), t.size());
}

TEST(Decompose, MaskedPivotNotEligible) {
  // Masked fields may not serve as pivots; a table with only masked fields
  // stays whole.
  FlowTable t(0);
  t.add(parse_rule("priority=5,ip_dst=10.0.0.0/8,ip_src=1.0.0.0/8,actions=drop"));
  t.add(parse_rule("priority=4,ip_dst=11.0.0.0/8,ip_src=2.0.0.0/8,actions=drop"));
  const auto d = decompose(t);
  EXPECT_TRUE(d.unchanged());
}

TEST(Decompose, TableBudgetOverflowReturnsInput) {
  FlowTable t(0);
  for (int i = 0; i < 8; ++i)
    t.add(parse_rule("priority=5,in_port=" + std::to_string(i) + ",udp_dst=" +
                     std::to_string(i) + ",eth_type=0x800,actions=output:1"));
  const auto d = decompose(t, /*max_tables=*/2);
  EXPECT_TRUE(d.unchanged());
}

TEST(Decompose, SharedResidualTablesCollapse) {
  // Two pivot keys with identical residual rules must share one sub-table.
  FlowTable t(0);
  t.add(parse_rule("priority=6,tcp_dst=80,ip_src=1.1.1.1,actions=output:1"));
  t.add(parse_rule("priority=5,tcp_dst=81,ip_src=1.1.1.1,actions=output:1"));
  const auto d = decompose(t);
  // Router + ONE shared residual (same fingerprint), not two.
  EXPECT_EQ(d.tables.size(), 2u);
}

// Property: the decomposed pipeline is semantically equivalent to the input
// (paper's definition) — verified by running both through ESWITCH and the
// reference interpreter on random packets.
TEST(Decompose, PropertyEquivalence) {
  Rng rng(99);
  for (int round = 0; round < 15; ++round) {
    FlowTable t(0);
    Pipeline ref_pl;
    FlowTable& ref_t = ref_pl.table(0);
    const int n = 2 + static_cast<int>(rng.below(12));
    for (int i = 0; i < n; ++i) {
      Match m;
      if (rng.chance(2, 3)) m.set(FieldId::kInPort, rng.below(3));
      if (rng.chance(2, 3)) m.set(FieldId::kUdpDst, 50 + rng.below(4));
      if (rng.chance(1, 3)) m.set(FieldId::kIpSrc, rng.below(3));
      if (rng.chance(1, 4)) m.set(FieldId::kIpDst, rng.below(3) << 8, 0xFFFFFF00);
      FlowEntry e;
      e.match = m;
      e.priority = static_cast<uint16_t>(1000 - i);  // unique priorities
      e.actions = {Action::output(static_cast<uint32_t>(i + 1))};
      t.add(e);
      ref_t.add(e);
    }

    CompilerConfig cfg;
    cfg.enable_decomposition = true;
    cfg.direct_code_max_entries = 1;  // force template pressure
    Eswitch sw(cfg);
    Pipeline pl;
    pl.table(0) = t;
    sw.install(pl);

    for (int q = 0; q < 300; ++q) {
      auto spec = test::udp_spec(static_cast<uint32_t>(rng.below(4)),
                                 static_cast<uint32_t>((rng.below(4) << 8) | rng.below(2)),
                                 9, static_cast<uint16_t>(50 + rng.below(6)));
      auto p1 = make_packet(spec, static_cast<uint32_t>(rng.below(4)));
      auto p2 = make_packet(spec, p1.in_port());
      const Verdict got = sw.process(p1);
      const Verdict want = ref_pl.run(p2);
      ASSERT_EQ(got, want) << "round " << round << " q " << q;
    }
  }
}

// The §3.2 stress experiment shape: snort-like ACLs decompose into fewer
// tables than rules, and ESWITCH promotes the linked list away.
TEST(Decompose, AclTableDecomposesBelowRuleCount) {
  // Snort-community-style structure: almost everything is TCP toward one
  // HOME_NET address, classified by a small set of destination ports, with
  // occasional source-port or source-host qualifiers.
  Rng rng(4242);
  FlowTable t(0);
  const int n_rules = 72;
  const uint16_t kPorts[] = {80, 21, 25, 53, 110, 143, 443, 445, 1433, 3306, 8080, 139};
  for (int i = 0; i < n_rules; ++i) {
    Match m;
    m.set(FieldId::kIpProto, rng.chance(9, 10) ? 6 : 17);
    m.set(FieldId::kIpDst, rng.chance(4, 5) ? 0x0A000001 : 0x0A000002);  // HOME_NET
    if (rng.chance(9, 10))
      m.set(FieldId::kTcpDst, kPorts[rng.below(std::size(kPorts))]);
    if (rng.chance(1, 8)) m.set(FieldId::kTcpSrc, 1024 + rng.below(4));
    if (rng.chance(1, 8)) m.set(FieldId::kIpSrc, rng.below(3), 0xFFFFFFFF);
    FlowEntry e;
    e.match = m;
    e.priority = static_cast<uint16_t>(n_rules - i);
    e.actions = {rng.chance(1, 3) ? Action::drop() : Action::output(1)};
    t.add(e);
  }
  const auto d = decompose(t);
  EXPECT_GT(d.tables.size(), 1u);
  // The paper's shape: 72 active snort ACLs decomposed into ~50 tables,
  // i.e. strictly fewer tables than rules.
  EXPECT_LT(d.tables.size(), static_cast<size_t>(n_rules));
}

}  // namespace
}  // namespace esw
