// Burst/scalar parity: process_burst() must be observably identical to n
// process() calls — same verdicts, same packet mutations, same per-table and
// global stats — for every template the compiler can pick (direct code, hash,
// LPM, range, linked list), for decomposed pipelines, and for the OVS-model
// baseline (whose cache hierarchy evolves packet by packet, so parity also
// pins the in-order processing of a burst).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "flow/dsl.hpp"
#include "netio/pktgen.hpp"
#include "ovs/ovs_switch.hpp"
#include "test_util.hpp"
#include "usecases/usecases.hpp"

namespace {

using namespace esw;
using core::Eswitch;
using core::TableTemplate;
using flow::Action;
using flow::FieldId;
using flow::parse_rule;
using flow::Pipeline;
using flow::Verdict;

/// Digest of a packet's observable state after processing (mutations from
/// set-field/dec-TTL/VLAN actions included).
uint64_t packet_digest(const net::Packet& p) {
  return hash_bytes(p.data(), p.len(), uint64_t{p.len()} << 32 | p.in_port());
}

struct RunResult {
  std::vector<Verdict> verdicts;
  std::vector<uint64_t> digests;
};

RunResult run_scalar(Eswitch& sw, const net::TrafficSet& ts, size_t n) {
  RunResult r;
  net::Packet pkt;
  for (size_t i = 0; i < n; ++i) {
    ts.load(i, pkt);
    r.verdicts.push_back(sw.process(pkt));
    r.digests.push_back(packet_digest(pkt));
  }
  return r;
}

/// Replays the same packet sequence in deterministic irregular bursts
/// (including singletons, partial bursts and > kBurstSize chunked calls).
RunResult run_burst(Eswitch& sw, const net::TrafficSet& ts, size_t n) {
  RunResult r;
  Rng rng(0xB57);
  std::vector<net::Packet> bufs(2 * net::kBurstSize);
  std::vector<net::Packet*> ptrs(bufs.size());
  std::vector<Verdict> verdicts(bufs.size());
  for (size_t b = 0; b < bufs.size(); ++b) ptrs[b] = &bufs[b];

  size_t i = 0;
  while (i < n) {
    const uint32_t want = static_cast<uint32_t>(rng.range(1, bufs.size()));
    const uint32_t burst = static_cast<uint32_t>(std::min<size_t>(want, n - i));
    for (uint32_t b = 0; b < burst; ++b) ts.load(i + b, bufs[b]);
    sw.process_burst(ptrs.data(), burst, verdicts.data());
    for (uint32_t b = 0; b < burst; ++b) {
      r.verdicts.push_back(verdicts[b]);
      r.digests.push_back(packet_digest(bufs[b]));
    }
    i += burst;
  }
  return r;
}

void expect_stats_equal(const Eswitch& a, const Eswitch& b) {
  const auto& sa = a.datapath().stats();
  const auto& sb = b.datapath().stats();
  EXPECT_EQ(sa.packets, sb.packets);
  EXPECT_EQ(sa.outputs, sb.outputs);
  EXPECT_EQ(sa.drops, sb.drops);
  EXPECT_EQ(sa.to_controller, sb.to_controller);
  ASSERT_EQ(a.datapath().num_slots(), b.datapath().num_slots());
  for (int32_t s = 0; s < a.datapath().num_slots(); ++s) {
    const auto& ta = a.datapath().table_stats(s);
    const auto& tb = b.datapath().table_stats(s);
    EXPECT_EQ(ta.lookups, tb.lookups) << "slot " << s;
    EXPECT_EQ(ta.hits, tb.hits) << "slot " << s;
    EXPECT_EQ(ta.misses, tb.misses) << "slot " << s;
  }
}

/// Full parity check: same pipeline into two switches, scalar vs burst over
/// the same packet sequence.
void expect_parity(const Pipeline& pl, const std::vector<net::FlowSpec>& flows,
                   const core::CompilerConfig& cfg = {}, size_t n_packets = 3000) {
  Eswitch scalar_sw(cfg), burst_sw(cfg);
  scalar_sw.install(pl);
  burst_sw.install(pl);
  const auto ts = net::TrafficSet::from_flows(flows);

  const RunResult s = run_scalar(scalar_sw, ts, n_packets);
  const RunResult b = run_burst(burst_sw, ts, n_packets);
  ASSERT_EQ(s.verdicts.size(), b.verdicts.size());
  for (size_t i = 0; i < s.verdicts.size(); ++i) {
    ASSERT_EQ(s.verdicts[i], b.verdicts[i]) << "packet " << i;
    ASSERT_EQ(s.digests[i], b.digests[i]) << "packet " << i;
  }
  expect_stats_equal(scalar_sw, burst_sw);
}

/// Random mix of traffic for hand-built tables: UDP/TCP with clustered and
/// random tuples, plus ARP/raw junk that exercises proto-guard misses.
std::vector<net::FlowSpec> random_traffic(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<net::FlowSpec> flows;
  flows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    net::FlowSpec f;
    const uint64_t k = rng.below(100);
    if (k < 45) {
      f.pkt = test::udp_spec(static_cast<uint32_t>(rng.next()),
                             static_cast<uint32_t>(rng.next()),
                             static_cast<uint16_t>(rng.below(0x10000)),
                             static_cast<uint16_t>(rng.below(0x400)));
    } else if (k < 90) {
      f.pkt = test::tcp_spec(0x0A000000 | static_cast<uint32_t>(rng.below(256)),
                             0xC0000200 | static_cast<uint32_t>(rng.below(256)),
                             static_cast<uint16_t>(rng.below(0x10000)),
                             static_cast<uint16_t>(rng.below(128)));
    } else if (k < 95) {
      f.pkt.kind = proto::PacketKind::kArp;
    } else {
      f.pkt.kind = proto::PacketKind::kRawEth;
    }
    f.in_port = static_cast<uint32_t>(rng.below(4));
    flows.push_back(f);
  }
  return flows;
}

TEST(BurstParity, DirectCodeTemplate) {
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=30,udp_dst=53,actions=output:1"));
  pl.table(0).add(parse_rule("priority=20,tcp_dst=80,actions=dec_ttl,output:2"));
  pl.table(0).add(parse_rule("priority=10,eth_type=0x0806,actions=controller"));

  Eswitch probe;
  probe.install(pl);
  ASSERT_EQ(probe.table_template(0), TableTemplate::kDirectCode);
  expect_parity(pl, random_traffic(400, 0xD1));
}

TEST(BurstParity, HashTemplateL2) {
  const auto uc = uc::make_l2(256);
  Eswitch probe;
  probe.install(uc.pipeline);
  ASSERT_EQ(probe.table_template(0), TableTemplate::kCompoundHash);
  expect_parity(uc.pipeline, uc.traffic(1000, 7));
}

TEST(BurstParity, LpmTemplateL3) {
  const auto uc = uc::make_l3(500);
  Eswitch probe;
  probe.install(uc.pipeline);
  ASSERT_EQ(probe.table_template(0), TableTemplate::kLpm);
  expect_parity(uc.pipeline, uc.traffic(1500, 11));
}

TEST(BurstParity, RangeTemplate) {
  // Priority-inverted single-field prefix table: LPM refuses, range takes it.
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=100,udp_dst=0x100/0xFF00,actions=output:1"));
  pl.table(0).add(parse_rule("priority=20,udp_dst=0x140/0xFFC0,actions=output:2"));
  pl.table(0).add(parse_rule("priority=90,udp_dst=0x200/0xFF00,actions=output:3"));
  pl.table(0).add(parse_rule("priority=95,udp_dst=0x240/0xFFC0,actions=output:4"));
  pl.table(0).add(parse_rule("priority=1,actions=drop"));

  core::CompilerConfig cfg;
  cfg.direct_code_max_entries = 2;
  Eswitch probe(cfg);
  probe.install(pl);
  ASSERT_EQ(probe.table_template(0), TableTemplate::kRange);
  expect_parity(pl, random_traffic(600, 0x4A), cfg);
}

TEST(BurstParity, LinkedListTemplate) {
  Pipeline pl;
  const flow::FlowTable acls = uc::make_snort_like_acls(48);
  for (const flow::FlowEntry& e : acls.entries()) pl.table(0).add(e);

  Eswitch probe;
  probe.install(pl);
  ASSERT_EQ(probe.table_template(0), TableTemplate::kLinkedList);
  expect_parity(pl, random_traffic(800, 0x11));
}

TEST(BurstParity, DecomposedLoadBalancerMultiHop) {
  const auto uc = uc::make_load_balancer(20);
  core::CompilerConfig cfg;
  cfg.enable_decomposition = true;
  Eswitch probe(cfg);
  probe.install(uc.pipeline);
  ASSERT_TRUE(probe.is_decomposed(0));
  expect_parity(uc.pipeline, uc.traffic(2000, 23), cfg);
}

TEST(BurstParity, BigHashTableCrossesPrefetchGate) {
  // A MAC table big enough that the burst walker's prefetch gating
  // (kPrefetchMinBytes) turns the hash template's bucket prefetch ON, so the
  // key-recompute hint path runs under the parity check (the LPM hint is
  // always on — tbl24 alone is 64 MiB — and is covered by LpmTemplateL3).
  // Cuckoo re-selection is disabled: 50K entries would otherwise cross
  // cuckoo_min_entries, and this test exists to cover the compound hash.
  const auto uc = uc::make_l2(50000);
  core::CompilerConfig cfg;
  cfg.cuckoo_min_entries = 0;
  Eswitch probe(cfg);
  probe.install(uc.pipeline);
  ASSERT_EQ(probe.table_template(0), TableTemplate::kCompoundHash);
  ASSERT_GE(probe.datapath().memory_bytes(), size_t{1} << 20);
  expect_parity(uc.pipeline, uc.traffic(4000, 13), cfg, 4000);
}

TEST(BurstParity, PrefetchHintIsPureForEveryTemplate) {
  // prefetch() must have no observable effect: lookup before and after the
  // hint agree, for each template kind (covers the hash/tuple-space hints
  // that small tables keep gated off in the burst walker).
  struct Case {
    TableTemplate expect;
    Pipeline pl;
    core::CompilerConfig cfg;
  };
  std::vector<Case> cases;
  {
    Case c;
    c.expect = TableTemplate::kDirectCode;
    c.pl.table(0).add(parse_rule("priority=10,udp_dst=53,actions=output:1"));
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.expect = TableTemplate::kCompoundHash;
    c.pl = uc::make_l2(64).pipeline;
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.expect = TableTemplate::kLpm;
    c.pl = uc::make_l3(100).pipeline;
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.expect = TableTemplate::kRange;
    c.pl.table(0).add(parse_rule("priority=100,udp_dst=0x100/0xFF00,actions=output:1"));
    c.pl.table(0).add(parse_rule("priority=20,udp_dst=0x140/0xFFC0,actions=output:2"));
    c.pl.table(0).add(parse_rule("priority=90,udp_dst=0x200/0xFF00,actions=output:3"));
    c.cfg.direct_code_max_entries = 2;
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.expect = TableTemplate::kLinkedList;
    const flow::FlowTable acls = uc::make_snort_like_acls(24);
    for (const flow::FlowEntry& e : acls.entries()) c.pl.table(0).add(e);
    cases.push_back(std::move(c));
  }

  for (const Case& c : cases) {
    Eswitch sw(c.cfg);
    sw.install(c.pl);
    ASSERT_EQ(sw.table_template(c.pl.tables().front().id()), c.expect);
    const core::CompiledTable* impl = sw.datapath().impl(sw.datapath().start());
    ASSERT_NE(impl, nullptr);
    for (const net::FlowSpec& f : random_traffic(64, 0x9E)) {
      const net::Packet p = test::make_packet(f.pkt, f.in_port);
      const proto::ParseInfo pi = test::parse_packet(p);
      const uint64_t before = impl->lookup(p.data(), pi);
      impl->prefetch(p.data(), pi);
      EXPECT_EQ(impl->lookup(p.data(), pi), before);
    }
  }
}

TEST(BurstParity, GatewayMultiTablePipeline) {
  const auto uc = uc::make_gateway(4, 8, 200);
  expect_parity(uc.pipeline, uc.traffic(1500, 31));
}

TEST(BurstParity, EmptyDatapathAndZeroBurst) {
  Eswitch sw;  // nothing installed: start slot < 0, every packet drops
  auto flows = random_traffic(64, 0xE0);
  const auto ts = net::TrafficSet::from_flows(flows);
  net::Packet pkt;
  ts.load(0, pkt);
  net::Packet* one = &pkt;
  Verdict v = Verdict::output(9);
  sw.process_burst(&one, 1, &v);
  EXPECT_EQ(v, Verdict::drop());
  EXPECT_EQ(sw.datapath().stats().packets, 1u);
  EXPECT_EQ(sw.datapath().stats().drops, 1u);

  sw.process_burst(&one, 0, &v);  // zero-length burst: no effect
  EXPECT_EQ(sw.datapath().stats().packets, 1u);
}

TEST(BurstParity, OvsBaselineVerdictsAndCacheStats) {
  const auto uc = uc::make_l2(128);
  // Enough flows to churn the microflow cache so burst order matters.
  ovs::OvsSwitch::Config cfg;
  cfg.microflow_capacity = 256;
  ovs::OvsSwitch scalar_sw(cfg), burst_sw(cfg);
  scalar_sw.install(uc.pipeline);
  burst_sw.install(uc.pipeline);
  const auto ts = net::TrafficSet::from_flows(uc.traffic(700, 3));

  const size_t n = 2500;
  std::vector<Verdict> sv;
  net::Packet pkt;
  for (size_t i = 0; i < n; ++i) {
    ts.load(i, pkt);
    sv.push_back(scalar_sw.process(pkt));
  }

  std::vector<net::Packet> bufs(net::kBurstSize);
  std::vector<net::Packet*> ptrs(bufs.size());
  for (size_t b = 0; b < bufs.size(); ++b) ptrs[b] = &bufs[b];
  Verdict verdicts[net::kBurstSize];
  size_t i = 0;
  while (i < n) {
    const uint32_t burst =
        static_cast<uint32_t>(std::min<size_t>(net::kBurstSize, n - i));
    for (uint32_t b = 0; b < burst; ++b) ts.load(i + b, bufs[b]);
    burst_sw.process_burst(ptrs.data(), burst, verdicts);
    for (uint32_t b = 0; b < burst; ++b)
      ASSERT_EQ(sv[i + b], verdicts[b]) << "packet " << i + b;
    i += burst;
  }

  const auto& sa = scalar_sw.cache_stats();
  const auto& sb = burst_sw.cache_stats();
  EXPECT_EQ(sa.packets, sb.packets);
  EXPECT_EQ(sa.microflow_hits, sb.microflow_hits);
  EXPECT_EQ(sa.megaflow_hits, sb.megaflow_hits);
  EXPECT_EQ(sa.upcalls, sb.upcalls);
}

}  // namespace
