// Failure injection and fuzzing: malformed wire messages, mangled packets,
// hostile rule text — nothing may crash, corrupt state, or mis-handle memory;
// errors surface as CheckError or as clean parse failures.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "flow/dsl.hpp"
#include "flow/wire.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using namespace esw::flow;

TEST(Fuzz, WireDecoderSurvivesRandomBytes) {
  Rng rng(0xF022);
  for (int i = 0; i < 20000; ++i) {
    uint8_t buf[128];
    const size_t len = 8 + rng.below(sizeof buf - 8);
    for (size_t k = 0; k < len; ++k) buf[k] = static_cast<uint8_t>(rng.next());
    // Make a fraction look like plausible FLOW_MODs to reach deeper code.
    if (rng.chance(1, 2)) {
      buf[0] = 0x04;
      buf[1] = 14;
      buf[2] = 0;
      buf[3] = static_cast<uint8_t>(len);
    }
    try {
      (void)decode_flow_mod(buf, len);
    } catch (const CheckError&) {
      // expected for garbage
    }
  }
}

TEST(Fuzz, WireDecoderSurvivesTruncatedValidMessages) {
  FlowMod fm;
  fm.table_id = 1;
  fm.priority = 9;
  fm.match.set(FieldId::kIpDst, 0x0A000000, 0xFF000000);
  fm.match.set(FieldId::kTcpDst, 80);
  fm.actions = {Action::set_field(FieldId::kIpSrc, 1), Action::output(2)};
  fm.goto_table = 3;
  const auto bytes = encode_flow_mod(fm);
  for (size_t len = 0; len < bytes.size(); ++len) {
    try {
      (void)decode_flow_mod(bytes.data(), len);
    } catch (const CheckError&) {
    }
  }
  // Bit flips.
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    auto mutated = bytes;
    mutated[rng.below(mutated.size())] ^= static_cast<uint8_t>(1 + rng.below(255));
    try {
      (void)decode_flow_mod(mutated.data(), mutated.size());
    } catch (const CheckError&) {
    }
  }
}

TEST(Fuzz, DslSurvivesHostileRuleText) {
  Rng rng(0xD51);
  const char charset[] = "abcdefgipst_=,.:/0123456789xABCDEF priorityactons";
  for (int i = 0; i < 20000; ++i) {
    std::string s;
    const size_t len = rng.below(80);
    for (size_t k = 0; k < len; ++k) s.push_back(charset[rng.below(sizeof charset - 1)]);
    try {
      (void)parse_rule(s);
    } catch (const CheckError&) {
    }
  }
}

TEST(Fuzz, DatapathSurvivesMangledPackets) {
  // A pipeline matching on every layer, fed truncated/corrupted frames:
  // protocol-bitmask guards must keep all loads inside the parsed layers.
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=9,vlan_vid=7,tcp_dst=80,actions=output:1"));
  pl.table(0).add(parse_rule("priority=8,ip_dst=10.0.0.0/8,udp_src=5,actions=output:2"));
  pl.table(0).add(parse_rule("priority=7,icmp_type=8,actions=output:3"));
  pl.table(0).add(parse_rule("priority=6,arp_op=1,actions=output:4"));
  pl.table(0).add(parse_rule("priority=5,eth_dst=ff:ff:ff:ff:ff:ff,actions=flood"));
  pl.table(0).add(parse_rule("priority=1,actions=drop"));

  for (const bool jit : {true, false}) {
    core::CompilerConfig cfg;
    cfg.enable_jit = jit;
    core::Eswitch sw(cfg);
    sw.install(pl);
    Rng rng(0xBAD);
    for (int i = 0; i < 30000; ++i) {
      net::Packet p;
      const uint32_t len = static_cast<uint32_t>(rng.below(96));
      for (uint32_t k = 0; k < len; ++k)
        p.data()[k] = static_cast<uint8_t>(rng.next());
      // Half the time, seed a real header prefix then truncate/corrupt.
      if (rng.chance(1, 2)) {
        auto spec = test::tcp_spec(1, 2, 3, 80);
        if (rng.chance(1, 3)) spec.vlan_vid = 7;
        uint8_t buf[128];
        const uint32_t full = proto::build_packet(spec, buf, sizeof buf);
        const uint32_t cut = static_cast<uint32_t>(rng.below(full + 1));
        std::memcpy(p.data(), buf, cut);
        p.set_len(cut);
      } else {
        p.set_len(len);
      }
      p.set_in_port(static_cast<uint32_t>(rng.below(4)));
      (void)sw.process(p);  // must not crash
    }
  }
}

TEST(Fuzz, InterpreterAndJitAgreeOnMangledPackets) {
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=9,vlan_vid=7,tcp_dst=80,actions=output:1"));
  pl.table(0).add(parse_rule("priority=8,ip_src=1.2.3.4,actions=output:2"));
  pl.table(0).add(parse_rule("priority=1,eth_type=0x800,actions=output:3"));

  core::CompilerConfig jit_cfg, interp_cfg;
  jit_cfg.enable_jit = true;
  interp_cfg.enable_jit = false;
  core::Eswitch a(jit_cfg), b(interp_cfg);
  a.install(pl);
  b.install(pl);

  Rng rng(0xC0DE);
  for (int i = 0; i < 30000; ++i) {
    net::Packet p1;
    const uint32_t len = 14 + static_cast<uint32_t>(rng.below(80));
    for (uint32_t k = 0; k < len; ++k) p1.data()[k] = static_cast<uint8_t>(rng.next());
    p1.set_len(len);
    net::Packet p2 = p1;
    ASSERT_EQ(a.process(p1), b.process(p2)) << i;
  }
}

TEST(Robustness, EmptyAndDegeneratePipelines) {
  core::Eswitch sw;
  sw.install(Pipeline{});  // no tables at all
  auto p = test::make_packet(test::udp_spec(1, 2, 3, 4));
  EXPECT_EQ(sw.process(p), Verdict::drop());

  Pipeline empty_table;
  empty_table.table(0);  // table exists but is empty
  sw.install(empty_table);
  auto p2 = test::make_packet(test::udp_spec(1, 2, 3, 4));
  EXPECT_EQ(sw.process(p2), Verdict::drop());

  // Max-size frame and minimum frame.
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=1,actions=output:1"));
  sw.install(pl);
  net::Packet big;
  big.set_len(net::Packet::kMaxFrame);
  EXPECT_EQ(sw.process(big).kind, Verdict::Kind::kOutput);
  net::Packet tiny;
  tiny.set_len(0);
  EXPECT_EQ(sw.process(tiny).kind, Verdict::Kind::kOutput);  // catch-all matches
}

}  // namespace
}  // namespace esw
