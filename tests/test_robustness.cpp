// Failure injection and fuzzing: malformed wire messages, mangled packets,
// hostile rule text, and armed failpoints at every resource edge — nothing
// may crash, corrupt state, or mis-handle memory; faults surface as
// CheckError, clean parse failures, or an accounted degradation (the
// docs/ROBUSTNESS.md policy table, exercised point by point below).
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "core/switch_runtime.hpp"
#include "flow/dsl.hpp"
#include "flow/wire.hpp"
#include "jit/exec_mem.hpp"
#include "netio/mbuf_pool.hpp"
#include "netio/ring.hpp"
#include "test_util.hpp"
#include "usecases/of_agent.hpp"

namespace esw {
namespace {

using namespace esw::flow;

TEST(Fuzz, WireDecoderSurvivesRandomBytes) {
  Rng rng(0xF022);
  for (int i = 0; i < 20000; ++i) {
    uint8_t buf[128];
    const size_t len = 8 + rng.below(sizeof buf - 8);
    for (size_t k = 0; k < len; ++k) buf[k] = static_cast<uint8_t>(rng.next());
    // Make a fraction look like plausible FLOW_MODs to reach deeper code.
    if (rng.chance(1, 2)) {
      buf[0] = 0x04;
      buf[1] = 14;
      buf[2] = 0;
      buf[3] = static_cast<uint8_t>(len);
    }
    try {
      (void)decode_flow_mod(buf, len);
    } catch (const CheckError&) {
      // expected for garbage
    }
  }
}

TEST(Fuzz, WireDecoderSurvivesTruncatedValidMessages) {
  FlowMod fm;
  fm.table_id = 1;
  fm.priority = 9;
  fm.match.set(FieldId::kIpDst, 0x0A000000, 0xFF000000);
  fm.match.set(FieldId::kTcpDst, 80);
  fm.actions = {Action::set_field(FieldId::kIpSrc, 1), Action::output(2)};
  fm.goto_table = 3;
  const auto bytes = encode_flow_mod(fm);
  for (size_t len = 0; len < bytes.size(); ++len) {
    try {
      (void)decode_flow_mod(bytes.data(), len);
    } catch (const CheckError&) {
    }
  }
  // Bit flips.
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    auto mutated = bytes;
    mutated[rng.below(mutated.size())] ^= static_cast<uint8_t>(1 + rng.below(255));
    try {
      (void)decode_flow_mod(mutated.data(), mutated.size());
    } catch (const CheckError&) {
    }
  }
}

TEST(Fuzz, DslSurvivesHostileRuleText) {
  Rng rng(0xD51);
  const char charset[] = "abcdefgipst_=,.:/0123456789xABCDEF priorityactons";
  for (int i = 0; i < 20000; ++i) {
    std::string s;
    const size_t len = rng.below(80);
    for (size_t k = 0; k < len; ++k) s.push_back(charset[rng.below(sizeof charset - 1)]);
    try {
      (void)parse_rule(s);
    } catch (const CheckError&) {
    }
  }
}

TEST(Fuzz, DatapathSurvivesMangledPackets) {
  // A pipeline matching on every layer, fed truncated/corrupted frames:
  // protocol-bitmask guards must keep all loads inside the parsed layers.
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=9,vlan_vid=7,tcp_dst=80,actions=output:1"));
  pl.table(0).add(parse_rule("priority=8,ip_dst=10.0.0.0/8,udp_src=5,actions=output:2"));
  pl.table(0).add(parse_rule("priority=7,icmp_type=8,actions=output:3"));
  pl.table(0).add(parse_rule("priority=6,arp_op=1,actions=output:4"));
  pl.table(0).add(parse_rule("priority=5,eth_dst=ff:ff:ff:ff:ff:ff,actions=flood"));
  pl.table(0).add(parse_rule("priority=1,actions=drop"));

  for (const bool jit : {true, false}) {
    core::CompilerConfig cfg;
    cfg.enable_jit = jit;
    core::Eswitch sw(cfg);
    sw.install(pl);
    Rng rng(0xBAD);
    for (int i = 0; i < 30000; ++i) {
      net::Packet p;
      const uint32_t len = static_cast<uint32_t>(rng.below(96));
      for (uint32_t k = 0; k < len; ++k)
        p.data()[k] = static_cast<uint8_t>(rng.next());
      // Half the time, seed a real header prefix then truncate/corrupt.
      if (rng.chance(1, 2)) {
        auto spec = test::tcp_spec(1, 2, 3, 80);
        if (rng.chance(1, 3)) spec.vlan_vid = 7;
        uint8_t buf[128];
        const uint32_t full = proto::build_packet(spec, buf, sizeof buf);
        const uint32_t cut = static_cast<uint32_t>(rng.below(full + 1));
        std::memcpy(p.data(), buf, cut);
        p.set_len(cut);
      } else {
        p.set_len(len);
      }
      p.set_in_port(static_cast<uint32_t>(rng.below(4)));
      (void)sw.process(p);  // must not crash
    }
  }
}

TEST(Fuzz, InterpreterAndJitAgreeOnMangledPackets) {
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=9,vlan_vid=7,tcp_dst=80,actions=output:1"));
  pl.table(0).add(parse_rule("priority=8,ip_src=1.2.3.4,actions=output:2"));
  pl.table(0).add(parse_rule("priority=1,eth_type=0x800,actions=output:3"));

  core::CompilerConfig jit_cfg, interp_cfg;
  jit_cfg.enable_jit = true;
  interp_cfg.enable_jit = false;
  core::Eswitch a(jit_cfg), b(interp_cfg);
  a.install(pl);
  b.install(pl);

  Rng rng(0xC0DE);
  for (int i = 0; i < 30000; ++i) {
    net::Packet p1;
    const uint32_t len = 14 + static_cast<uint32_t>(rng.below(80));
    for (uint32_t k = 0; k < len; ++k) p1.data()[k] = static_cast<uint8_t>(rng.next());
    p1.set_len(len);
    net::Packet p2 = p1;
    ASSERT_EQ(a.process(p1), b.process(p2)) << i;
  }
}

TEST(Robustness, EmptyAndDegeneratePipelines) {
  core::Eswitch sw;
  sw.install(Pipeline{});  // no tables at all
  auto p = test::make_packet(test::udp_spec(1, 2, 3, 4));
  EXPECT_EQ(sw.process(p), Verdict::drop());

  Pipeline empty_table;
  empty_table.table(0);  // table exists but is empty
  sw.install(empty_table);
  auto p2 = test::make_packet(test::udp_spec(1, 2, 3, 4));
  EXPECT_EQ(sw.process(p2), Verdict::drop());

  // Max-size frame and minimum frame.
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=1,actions=output:1"));
  sw.install(pl);
  net::Packet big;
  big.set_len(net::Packet::kMaxFrame);
  EXPECT_EQ(sw.process(big).kind, Verdict::Kind::kOutput);
  net::Packet tiny;
  tiny.set_len(0);
  EXPECT_EQ(sw.process(tiny).kind, Verdict::Kind::kOutput);  // catch-all matches
}

// ---------------------------------------------------------------------------
// Failpoint framework + per-site graceful degradation.  The registry is
// process-global, so every test disarms on the way out.
// ---------------------------------------------------------------------------

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fpr_.disarm_all(); }
  void TearDown() override { fpr_.disarm_all(); }

  common::FailpointRegistry& fpr_ = common::FailpointRegistry::instance();
};

FlowMod add_mod(uint8_t table, const std::string& rule) {
  const FlowEntry e = parse_rule(rule);
  FlowMod fm;
  fm.table_id = table;
  fm.priority = e.priority;
  fm.match = e.match;
  fm.actions = e.actions;
  fm.goto_table = e.goto_table;
  return fm;
}

FlowMod del_mod(uint8_t table, const std::string& rule) {
  FlowMod fm = add_mod(table, rule);
  fm.command = FlowMod::Cmd::kDelete;
  fm.actions.clear();
  return fm;
}

FlowMod udp_forward_mod(uint16_t dport, uint32_t out_port) {
  FlowMod fm;
  fm.table_id = 0;
  fm.priority = 10;
  fm.match.set(FieldId::kUdpDst, dport);
  fm.actions = {Action::output(out_port)};
  return fm;
}

TEST_F(FailpointTest, SpecParsingAndModes) {
  // Bad specs are refused without arming anything.
  EXPECT_FALSE(fpr_.arm("test.spec", ""));
  EXPECT_FALSE(fpr_.arm("test.spec", "nth:0"));
  EXPECT_FALSE(fpr_.arm("test.spec", "prob:0"));
  EXPECT_FALSE(fpr_.arm("test.spec", "prob:1.5"));
  EXPECT_FALSE(fpr_.arm("test.spec", "bogus"));
  EXPECT_FALSE(fpr_.point("test.spec").armed());

  // always: every evaluation fires.
  ASSERT_TRUE(fpr_.arm("test.always", "always"));
  common::Failpoint& always = fpr_.point("test.always");
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(always.should_fire());
  EXPECT_EQ(always.hits(), 5u);
  EXPECT_EQ(always.fires(), 5u);

  // nth:N: exactly the Nth evaluation since arming, one-shot.
  ASSERT_TRUE(fpr_.arm("test.nth", "nth:3"));
  common::Failpoint& nth = fpr_.point("test.nth");
  EXPECT_FALSE(nth.should_fire());
  EXPECT_FALSE(nth.should_fire());
  EXPECT_TRUE(nth.should_fire());
  EXPECT_FALSE(nth.should_fire());
  EXPECT_EQ(nth.fires(), 1u);
  // Re-arming resets the hit counter (nth counts since arming); the fire
  // total accumulates across arms.
  ASSERT_TRUE(fpr_.arm("test.nth", "nth:1"));
  EXPECT_EQ(nth.hits(), 0u);
  EXPECT_TRUE(nth.should_fire());
  EXPECT_EQ(nth.fires(), 2u);

  // prob:1 is a valid edge: certain fire, seeded variant included.
  ASSERT_TRUE(fpr_.arm("test.prob", "prob:1:42"));
  common::Failpoint& prob = fpr_.point("test.prob");
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(prob.should_fire());

  // disarm_all returns every point to the zero-cost state.
  fpr_.disarm_all();
  EXPECT_FALSE(common::FailpointRegistry::any_armed());
  EXPECT_FALSE(always.should_fire());
  EXPECT_FALSE(fpr_.point("test.always").armed());
}

TEST_F(FailpointTest, EnvArmingSkipsBadEntries) {
  ::setenv("ESW_FAILPOINTS", "test.enva=always,test.envb=nth:2,test.bad=wat", 1);
  EXPECT_EQ(fpr_.arm_from_env(), 2u);
  ::unsetenv("ESW_FAILPOINTS");
  EXPECT_TRUE(fpr_.point("test.enva").armed());
  EXPECT_TRUE(fpr_.point("test.envb").armed());
  EXPECT_FALSE(fpr_.point("test.bad").armed());

  bool found = false;
  for (const auto& s : fpr_.snapshot())
    if (s.name == "test.enva") found = s.armed;
  EXPECT_TRUE(found);
}

TEST_F(FailpointTest, MacroShortCircuitsWhenNothingArmed) {
  // Disarmed process: the macro must not even touch the registry.
  EXPECT_FALSE(ESW_FAILPOINT("test.macro"));
  EXPECT_EQ(fpr_.point("test.macro").hits(), 0u);

  ASSERT_TRUE(fpr_.arm("test.macro", "always"));
  EXPECT_TRUE(ESW_FAILPOINT("test.macro"));
  EXPECT_EQ(fpr_.fires("test.macro"), 1u);

  fpr_.disarm_all();
  EXPECT_FALSE(ESW_FAILPOINT("test.macro"));
}

TEST_F(FailpointTest, MbufPoolAllocFailsAsIfExhausted) {
  net::MbufPool pool(8);
  ASSERT_TRUE(fpr_.arm("mbuf.alloc", "always"));
  EXPECT_EQ(pool.alloc(), nullptr);
  net::Packet* out[4];
  EXPECT_EQ(pool.alloc_bulk(out, 4), 0u);
  EXPECT_GE(pool.alloc_failures(), 2u);  // injected failures are accounted
  EXPECT_EQ(pool.available(), pool.capacity());  // nothing actually left

  fpr_.disarm_all();
  net::Packet* p = pool.alloc();
  ASSERT_NE(p, nullptr);
  pool.free(p);
  EXPECT_EQ(pool.available(), pool.capacity());
}

TEST_F(FailpointTest, RingEnqueueRejectsWithoutLosingState) {
  net::Ring ring(8);
  net::Packet pkt;
  net::Packet* in[1] = {&pkt};
  ASSERT_TRUE(fpr_.arm("ring.enqueue_mp", "always"));
  EXPECT_EQ(ring.enqueue_burst_mp(in, 1), 0u);  // caller keeps ownership

  fpr_.disarm_all();
  EXPECT_EQ(ring.enqueue_burst_mp(in, 1), 1u);
  net::Packet* out[1];
  ASSERT_EQ(ring.dequeue_burst(out, 1), 1u);
  EXPECT_EQ(out[0], &pkt);
}

TEST_F(FailpointTest, JitMapFailureFallsBackToInterpreterAndRecovers) {
  if (!jit::ExecBuffer::supported()) GTEST_SKIP() << "no executable memory";

  core::CompilerConfig cfg;
  cfg.jit_retry_base_updates = 2;
  cfg.jit_retry_max_updates = 8;
  core::Eswitch sw(cfg);
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=5,udp_dst=1,actions=output:1"));
  pl.table(0).add(parse_rule("priority=5,udp_dst=2,actions=output:2"));

  ASSERT_TRUE(fpr_.arm("jit.exec_map", "always"));
  sw.install(pl);  // direct-code build lands on the interpreter
  ASSERT_EQ(sw.table_template(0), core::TableTemplate::kDirectCode);
  EXPECT_GE(sw.degradation_stats().jit_fallbacks, 1u);
  EXPECT_EQ(sw.degraded_jit_tables(), 1u);
  // The platform probe answers the genuine capability, not the failpoint.
  EXPECT_TRUE(jit::ExecBuffer::supported());

  // Degraded, not broken: the interpreter serves identical verdicts.
  auto p1 = test::make_packet(test::udp_spec(1, 2, 9, 1));
  EXPECT_EQ(sw.process(p1), Verdict::output(1));

  // Mapping works again: the next rebuild regains machine code.
  fpr_.disarm_all();
  sw.apply(add_mod(0, "priority=5,udp_dst=3,actions=output:3"));
  EXPECT_GE(sw.degradation_stats().jit_recoveries, 1u);
  EXPECT_EQ(sw.degraded_jit_tables(), 0u);
  auto p3 = test::make_packet(test::udp_spec(1, 2, 9, 3));
  EXPECT_EQ(sw.process(p3), Verdict::output(3));
}

TEST_F(FailpointTest, LpmTbl8ExhaustionDemotesToLinkedList) {
  // The mixed-prefix RIB shape that analysis compiles as LPM.
  Pipeline pl;
  for (int i = 0; i < 32; ++i) {
    FlowEntry e;
    e.match.set(FieldId::kIpDst, static_cast<uint32_t>(i) << 24, 0xFF000000);
    e.priority = 8;
    e.actions = {Action::output(1)};
    pl.table(0).add(e);
  }
  for (int i = 0; i < 8; ++i) {
    FlowEntry e;
    e.match.set(FieldId::kIpDst, (40u << 24) | (static_cast<uint32_t>(i) << 16),
                0xFFFF0000);
    e.priority = 16;
    e.actions = {Action::output(3)};
    pl.table(0).add(e);
  }
  core::Eswitch sw;
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), core::TableTemplate::kLpm);

  // tbl8 groups "exhausted": the >/24 add cannot extend the trie, the LPM
  // rebuild cannot either, so the table demotes to the infallible fallback.
  ASSERT_TRUE(fpr_.arm("lpm.tbl8", "always"));
  FlowMod fm;
  fm.table_id = 0;
  fm.priority = 30;
  fm.match.set(FieldId::kIpDst, (9u << 24) | 4u, 0xFFFFFFFC);
  fm.actions = {Action::output(9)};
  sw.apply(fm);  // must not throw out of the session
  EXPECT_GE(sw.degradation_stats().template_fallbacks, 1u);
  EXPECT_EQ(sw.table_template(0), core::TableTemplate::kLinkedList);

  // No rule lost across the demotion, the new one included.
  auto in_30 = test::make_packet(test::udp_spec(1, (9u << 24) | 5u, 4, 4));
  EXPECT_EQ(sw.process(in_30), Verdict::output(9));
  auto in_8 = test::make_packet(test::udp_spec(1, (9u << 24) | (1u << 16), 4, 4));
  EXPECT_EQ(sw.process(in_8), Verdict::output(1));
}

TEST_F(FailpointTest, HashInsertRefusalFallsBackToRebuild) {
  Pipeline pl;
  for (int i = 0; i < 20; ++i)
    pl.table(0).add(parse_rule("priority=5,udp_dst=" + std::to_string(i) +
                               ",actions=output:1"));
  core::Eswitch sw;
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), core::TableTemplate::kCompoundHash);
  const auto rebuilds_before = sw.update_stats().table_rebuilds;

  ASSERT_TRUE(fpr_.arm("hash.insert", "always"));
  sw.apply(add_mod(0, "priority=5,udp_dst=999,actions=output:7"));
  EXPECT_GT(sw.update_stats().table_rebuilds, rebuilds_before);
  auto p = test::make_packet(test::udp_spec(1, 2, 9, 999));
  EXPECT_EQ(sw.process(p), Verdict::output(7));
}

TEST_F(FailpointTest, TupleInsertRefusalFallsBackToRebuild) {
  // Masked rules land on the linked-list (tuple-space) template.
  Pipeline pl;
  for (int i = 0; i < 20; ++i)
    pl.table(0).add(parse_rule("priority=5,udp_dst=" + std::to_string(i) +
                               ",actions=output:1"));
  pl.table(0).add(parse_rule("priority=9,udp_dst=0x100/0x100,actions=output:2"));
  core::Eswitch sw;
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), core::TableTemplate::kLinkedList);
  const auto rebuilds_before = sw.update_stats().table_rebuilds;

  ASSERT_TRUE(fpr_.arm("tuple.insert", "always"));
  // try_add refuses; the rebuild's build() path is deliberately failpoint-free
  // (the last resort of the fallback chain must stay infallible).
  sw.apply(add_mod(0, "priority=5,udp_dst=99,actions=output:7"));
  EXPECT_GT(sw.update_stats().table_rebuilds, rebuilds_before);
  auto p = test::make_packet(test::udp_spec(1, 2, 9, 99));
  EXPECT_EQ(sw.process(p), Verdict::output(7));
}

TEST_F(FailpointTest, EpochReclaimStallGrowsBacklogThenDrains) {
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=5,udp_dst=1,actions=output:1"));
  core::Eswitch sw;
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), core::TableTemplate::kDirectCode);

  // Reclamation "stuck": every rebuild retires, nothing matures.
  ASSERT_TRUE(fpr_.arm("epoch.reclaim", "always"));
  const auto reclaimed_before = sw.reclaim_stats().reclaimed;
  for (int i = 0; i < 6; ++i) {
    const std::string rule =
        "priority=5,udp_dst=" + std::to_string(100 + i) + ",actions=output:2";
    sw.apply(add_mod(0, rule));
    sw.apply(del_mod(0, rule));
  }
  EXPECT_GT(sw.reclaim_stats().pending, 0u);
  EXPECT_EQ(sw.reclaim_stats().reclaimed, reclaimed_before);

  // Unstuck: the next update's reclaim drains the whole backlog.
  fpr_.disarm_all();
  sw.apply(add_mod(0, "priority=5,udp_dst=200,actions=output:2"));
  EXPECT_EQ(sw.reclaim_stats().pending, 0u);
  EXPECT_GT(sw.reclaim_stats().reclaimed, reclaimed_before);
}

TEST_F(FailpointTest, TableFullRefusalKeepsSessionAndDataplaneUp) {
  core::CompilerConfig cfg;
  cfg.table_capacity = 2;
  core::Eswitch sw(cfg);
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  ctrl.send_flow_mod(udp_forward_mod(1, 1));
  ctrl.send_flow_mod(udp_forward_mod(2, 2));
  ctrl.send_flow_mod(udp_forward_mod(3, 3));  // over capacity
  agent.poll();
  ctrl.poll();

  // The overflowing add is refused with OFPFMFC_TABLE_FULL — the canonical
  // wire-visible degradation — and nothing else is disturbed.
  const auto errors = ctrl.take_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].type, kErrTypeFlowModFailed);
  EXPECT_EQ(errors[0].code, kErrCodeTableFull);
  EXPECT_TRUE(agent.session_open());
  EXPECT_EQ(sw.pipeline().find_table(0)->size(), 2u);
  EXPECT_EQ(sw.degradation_stats().mods_refused_table_full, 1u);
  auto p = test::make_packet(test::udp_spec(1, 2, 9, 1));
  EXPECT_EQ(sw.process(p), Verdict::output(1));

  // Replacing an existing (match, priority) does not consume capacity.
  ctrl.send_flow_mod(udp_forward_mod(2, 9));
  agent.poll();
  ctrl.poll();
  EXPECT_TRUE(ctrl.take_errors().empty());
  auto p2 = test::make_packet(test::udp_spec(1, 2, 9, 2));
  EXPECT_EQ(sw.process(p2), Verdict::output(9));

  // A delete frees room for the next add.
  FlowMod del = udp_forward_mod(1, 1);
  del.command = FlowMod::Cmd::kDelete;
  del.actions.clear();
  ctrl.send_flow_mod(del);
  ctrl.send_flow_mod(udp_forward_mod(7, 7));
  agent.poll();
  ctrl.poll();
  EXPECT_TRUE(ctrl.take_errors().empty());
  EXPECT_EQ(sw.pipeline().find_table(0)->size(), 2u);
}

TEST_F(FailpointTest, OfAgentSurvivesInjectedShortIoAndEintr) {
  ASSERT_TRUE(fpr_.arm("ofagent.write", "nth:1"));
  ASSERT_TRUE(fpr_.arm("ofagent.write_short", "always"));
  ASSERT_TRUE(fpr_.arm("ofagent.read", "nth:1"));

  core::Eswitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));  // HELLO rides the faults
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);
  EXPECT_TRUE(agent.session_open());

  ctrl.send_flow_mod(udp_forward_mod(53, 2));
  ctrl.send_barrier();
  agent.poll();
  ctrl.poll();
  EXPECT_EQ(ctrl.take_barrier_replies().size(), 1u);
  EXPECT_EQ(sw.pipeline().find_table(0)->size(), 1u);
  EXPECT_GT(agent.stats().io_retries, 0u);  // the continuations are accounted
}

TEST_F(FailpointTest, OfAgentReconnectsAfterPeerLoss) {
  core::Eswitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  {
    uc::OfController ctrl(agent.controller_fd());
    uc::run_handshake(agent, ctrl);
  }
  EXPECT_TRUE(agent.session_open());

  // Sever the channel: the agent must notice, back off, and re-open.
  ::shutdown(agent.controller_fd(), SHUT_RDWR);
  for (int i = 0; i < 10 && agent.stats().reconnects == 0; ++i) agent.poll();
  EXPECT_EQ(agent.stats().reconnects, 1u);
  EXPECT_FALSE(agent.channel_down());
  EXPECT_FALSE(agent.session_open());  // fresh channel, fresh handshake

  // The replacement channel carries a full session again.
  uc::OfController ctrl2(agent.controller_fd());
  uc::run_handshake(agent, ctrl2);
  EXPECT_TRUE(agent.session_open());
  ctrl2.send_flow_mod(udp_forward_mod(53, 2));
  agent.poll();
  EXPECT_EQ(sw.pipeline().find_table(0)->size(), 1u);
}

TEST_F(FailpointTest, RuntimeBackpressureOnPoolExhaustion) {
  core::SwitchRuntime<core::Eswitch>::Config cfg;
  cfg.n_workers = 1;
  cfg.n_ports = 2;
  cfg.pool_capacity = 64;
  cfg.worker_cache = 16;
  cfg.backpressure_pause_us = 100;
  core::SwitchRuntime<core::Eswitch> rt(cfg);
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=1,actions=drop"));
  rt.backend().install(pl);
  const net::Packet frame = test::make_packet(test::udp_spec(1, 2, 9, 5));
  rt.set_source([&](uint32_t, net::Packet** bufs, uint32_t n) {
    for (uint32_t i = 0; i < n; ++i) bufs[i]->assign(frame.data(), frame.len());
    return n;
  });

  // As-if exhausted pool: the worker must pause (bounded), not spin or crash.
  ASSERT_TRUE(fpr_.arm("mbuf.alloc", "always"));
  rt.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fpr_.disarm_all();
  // Recovery: buffers "return" and the pipeline moves again.
  const auto t_end = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rt.counters().processed == 0 && std::chrono::steady_clock::now() < t_end)
    std::this_thread::yield();
  rt.stop();

  const auto c = rt.counters();
  EXPECT_GT(c.pool_exhausted, 0u);
  EXPECT_GT(c.backpressure_events, 0u);
  EXPECT_GT(c.processed, 0u);  // forwarding resumed after the fault cleared
}

TEST_F(FailpointTest, WatchdogRecoversStalledParkedWorker) {
  core::SwitchRuntime<core::Eswitch>::Config cfg;
  cfg.n_workers = 1;
  cfg.n_ports = 2;
  core::SwitchRuntime<core::Eswitch> rt(cfg);
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=1,actions=drop"));
  rt.backend().install(pl);

  // A wedged worker parks without ticking its epoch slot; only the watchdog's
  // quiesce-on-parked recovery unpins the reclamation horizon.
  ASSERT_TRUE(fpr_.arm("runtime.worker_stall", "always"));
  rt.start();
  uint32_t stalled = 0, recovered = 0;
  for (int i = 0; i < 400 && recovered == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    const auto rep = rt.watchdog_scan();
    stalled += rep.stalled;
    recovered += rep.recovered;
  }
  fpr_.disarm_all();
  rt.stop();

  EXPECT_GT(stalled, 0u);
  EXPECT_GT(recovered, 0u);
  EXPECT_EQ(rt.watchdog_recovered_total(), recovered);
  EXPECT_GE(rt.watchdog_stalled_total(), rt.watchdog_recovered_total());
}

}  // namespace
}  // namespace esw
