#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using namespace esw::core;
using namespace esw::flow;
using test::ip;
using test::make_packet;

Pipeline firewall_pipeline() {
  Pipeline pl;
  auto& t0 = pl.table(0);
  t0.add(parse_rule("priority=30,in_port=1,actions=output:2"));
  t0.add(parse_rule("priority=20,in_port=2,actions=,goto:1"));
  auto& t1 = pl.table(1);
  t1.add(parse_rule("priority=20,ip_dst=192.0.2.1,tcp_dst=80,actions=output:1"));
  t1.add(parse_rule("priority=10,actions=drop"));
  return pl;
}

TEST(Compiler, FirewallEndToEnd) {
  for (const bool jit : {true, false}) {
    CompilerConfig cfg;
    cfg.enable_jit = jit;
    Eswitch sw(cfg);
    sw.install(firewall_pipeline());
    EXPECT_EQ(sw.table_template(0), TableTemplate::kDirectCode);

    auto internal = make_packet(test::tcp_spec(ip("192.0.2.1"), 9, 80, 7777), 1);
    auto http = make_packet(test::tcp_spec(9, ip("192.0.2.1"), 7777, 80), 2);
    auto ssh = make_packet(test::tcp_spec(9, ip("192.0.2.1"), 7777, 22), 2);
    EXPECT_EQ(sw.process(internal), Verdict::output(2)) << "jit=" << jit;
    EXPECT_EQ(sw.process(http), Verdict::output(1)) << "jit=" << jit;
    EXPECT_EQ(sw.process(ssh), Verdict::drop()) << "jit=" << jit;
  }
}

TEST(Compiler, TemplateSelectionPerUseCase) {
  // L2 MAC table -> compound hash ("effectively reducing into a conventional
  // Ethernet software switch").
  Pipeline l2;
  for (int i = 0; i < 100; ++i) {
    FlowEntry e;
    e.match.set(FieldId::kEthDst, 0x020000000000ULL + i);
    e.priority = 5;
    e.actions = {Action::output(static_cast<uint32_t>(i % 4))};
    l2.table(0).add(e);
  }
  Eswitch sw_l2;
  sw_l2.install(l2);
  EXPECT_EQ(sw_l2.table_template(0), TableTemplate::kCompoundHash);

  // L3 routing table -> LPM ("a datapath identical to that of an IP
  // softrouter").
  Pipeline l3;
  for (int i = 0; i < 64; ++i) {
    FlowEntry e;
    e.match.set(FieldId::kIpDst, static_cast<uint32_t>(i) << 24, 0xFF000000);
    e.priority = 8;
    e.actions = {Action::output(1)};
    l3.table(0).add(e);
  }
  for (int i = 0; i < 64; ++i) {
    FlowEntry e;
    e.match.set(FieldId::kIpDst, (10u << 24) | (static_cast<uint32_t>(i) << 8),
                0xFFFFFF00);
    e.priority = 24;
    e.actions = {Action::output(2)};
    l3.table(0).add(e);
  }
  Eswitch sw_l3;
  sw_l3.install(l3);
  EXPECT_EQ(sw_l3.table_template(0), TableTemplate::kLpm);

  auto deep = make_packet(test::udp_spec(1, (10u << 24) | (3u << 8) | 9, 5, 5));
  auto shallow = make_packet(test::udp_spec(1, (11u << 24) | 123, 5, 5));
  EXPECT_EQ(sw_l3.process(deep), Verdict::output(2));
  EXPECT_EQ(sw_l3.process(shallow), Verdict::output(1));
}

TEST(Compiler, MissPolicyPerTable) {
  Pipeline pl;
  pl.table(0).set_miss_policy(FlowTable::MissPolicy::kController);
  pl.table(0).add(parse_rule("priority=5,udp_dst=53,actions=output:1"));
  Eswitch sw;
  sw.install(pl);
  auto dns = make_packet(test::udp_spec(1, 2, 9, 53));
  auto other = make_packet(test::udp_spec(1, 2, 9, 54));
  EXPECT_EQ(sw.process(dns), Verdict::output(1));
  EXPECT_EQ(sw.process(other), Verdict::controller());
  EXPECT_EQ(sw.datapath().stats().to_controller, 1u);
}

TEST(Compiler, ParserPlanSpecialization) {
  // Pure L2 pipeline: parser must skip L3/L4 entirely.
  Pipeline l2;
  FlowEntry e;
  e.match.set(FieldId::kEthDst, 0x0A);
  e.actions = {Action::output(1)};
  l2.table(0).add(e);
  Eswitch sw;
  sw.install(l2);
  EXPECT_FALSE(sw.datapath().plan().need_l3);
  EXPECT_FALSE(sw.datapath().plan().need_l4);

  // Adding an L4-matching rule widens the plan.
  FlowMod fm;
  fm.table_id = 0;
  fm.priority = 9;
  fm.match.set(FieldId::kTcpDst, 80);
  fm.actions = {Action::drop()};
  sw.apply(fm);
  EXPECT_TRUE(sw.datapath().plan().need_l3);
  EXPECT_TRUE(sw.datapath().plan().need_l4);

  // Combined-parser mode never specializes.
  CompilerConfig cfg;
  cfg.specialize_parser = false;
  Eswitch sw2(cfg);
  sw2.install(l2);
  EXPECT_TRUE(sw2.datapath().plan().need_l4);
}

TEST(Compiler, SetFieldActionWidensPlan) {
  Pipeline pl;
  FlowEntry e;  // L2 match but NAT-style action needs L3 parsed
  e.match.set(FieldId::kInPort, 1);
  e.actions = {Action::set_field(FieldId::kIpSrc, ip("10.0.0.9")), Action::output(2)};
  pl.table(0).add(e);
  Eswitch sw;
  sw.install(pl);
  EXPECT_TRUE(sw.datapath().plan().need_l3);

  auto p = make_packet(test::udp_spec(ip("10.9.9.9"), ip("10.0.0.1"), 5, 6), 1);
  EXPECT_EQ(sw.process(p), Verdict::output(2));
  auto pi = test::parse_packet(p);
  EXPECT_EQ(extract_field(FieldId::kIpSrc, p.data(), pi), ip("10.0.0.9"));
}

TEST(Compiler, ActionSetsSharedAcrossFlows) {
  Pipeline pl;
  for (int i = 0; i < 50; ++i) {
    FlowEntry e;
    e.match.set(FieldId::kUdpDst, static_cast<uint64_t>(i));
    e.priority = 5;
    e.actions = {Action::output(1)};  // identical for all flows
    pl.table(0).add(e);
  }
  Eswitch sw;
  sw.install(pl);
  EXPECT_EQ(sw.datapath().actions().size(), 1u);
}

TEST(Compiler, GotoChainsAcrossManyTables) {
  Pipeline pl;
  const int kStages = 12;  // NVP-style deep pipeline (§2: "more than a dozen")
  for (int t = 0; t < kStages; ++t) {
    FlowEntry e;
    e.match.set(FieldId::kInPort, 1);
    e.priority = 5;
    if (t < kStages - 1)
      e.goto_table = static_cast<int16_t>(t + 1);
    else
      e.actions = {Action::output(42)};
    pl.table(static_cast<uint8_t>(t)).add(e);
  }
  Eswitch sw;
  sw.install(pl);
  auto p = make_packet(test::udp_spec(1, 2, 3, 4), 1);
  EXPECT_EQ(sw.process(p), Verdict::output(42));
  // Every stage consulted exactly once.
  for (int t = 0; t < kStages; ++t)
    EXPECT_EQ(sw.datapath().table_stats(sw.root_slot(static_cast<uint8_t>(t))).lookups, 1u);
}

TEST(Compiler, WriteActionsMergeAcrossStages) {
  Pipeline pl;
  FlowEntry a;
  a.match.set(FieldId::kInPort, 1);
  a.actions = {Action::output(1), Action::set_field(FieldId::kIpTtl, 7)};
  a.goto_table = 1;
  pl.table(0).add(a);
  FlowEntry b;  // later stage overrides the output, keeps the set-field
  b.actions = {Action::output(9)};
  pl.table(1).add(b);

  Eswitch sw;
  sw.install(pl);
  auto p = make_packet(test::udp_spec(1, 2, 3, 4), 1);
  EXPECT_EQ(sw.process(p), Verdict::output(9));
  auto pi = test::parse_packet(p);
  EXPECT_EQ(extract_field(FieldId::kIpTtl, p.data(), pi), 7u);
}

// The global differential test: random multi-table pipelines, random traffic,
// ESWITCH (all templates, JIT on/off) must equal the reference interpreter.
TEST(Compiler, PropertyDatapathEquivalentToInterpreter) {
  Rng rng(0xE5A);
  for (int round = 0; round < 12; ++round) {
    Pipeline pl;
    const int n_tables = 1 + static_cast<int>(rng.below(3));
    for (int t = 0; t < n_tables; ++t) {
      const int n_entries = 1 + static_cast<int>(rng.below(14));
      for (int i = 0; i < n_entries; ++i) {
        Match m;
        if (rng.chance(1, 2)) m.set(FieldId::kInPort, rng.below(3));
        if (rng.chance(1, 2)) m.set(FieldId::kUdpDst, 40 + rng.below(5));
        if (rng.chance(1, 3)) m.set(FieldId::kIpDst, rng.below(4) << 8, 0xFFFFFF00);
        if (rng.chance(1, 4)) m.set(FieldId::kEthDst, rng.below(3));
        if (rng.chance(1, 5)) m.set(FieldId::kIpProto, 17);
        FlowEntry e;
        e.match = m;
        e.priority = static_cast<uint16_t>(2000 - i * 2);  // unique per table
        if (t + 1 < n_tables && rng.chance(1, 3))
          e.goto_table = static_cast<int16_t>(t + 1);
        else
          e.actions = {Action::output(static_cast<uint32_t>(rng.below(5)))};
        pl.table(static_cast<uint8_t>(t)).add(e);
      }
      if (rng.chance(1, 3))
        pl.table(static_cast<uint8_t>(t))
            .set_miss_policy(FlowTable::MissPolicy::kController);
    }

    CompilerConfig cfg;
    cfg.enable_jit = rng.chance(1, 2);
    cfg.enable_decomposition = rng.chance(1, 2);
    cfg.direct_code_max_entries = 1 + static_cast<uint32_t>(rng.below(6));
    Eswitch sw(cfg);
    sw.install(pl);

    for (int q = 0; q < 400; ++q) {
      auto spec = test::udp_spec(static_cast<uint32_t>(rng.next()),
                                 static_cast<uint32_t>((rng.below(4) << 8) | rng.below(3)),
                                 static_cast<uint16_t>(rng.next()),
                                 static_cast<uint16_t>(40 + rng.below(7)));
      spec.eth_dst = rng.below(4);
      auto p1 = make_packet(spec, static_cast<uint32_t>(rng.below(4)));
      auto p2 = make_packet(spec, p1.in_port());
      const Verdict got = sw.process(p1);
      const Verdict want = pl.run(p2);
      ASSERT_EQ(got, want) << "round " << round << " q " << q << " jit "
                           << cfg.enable_jit << " dec " << cfg.enable_decomposition;
      // Packet mutations must match too.
      ASSERT_EQ(p1.len(), p2.len());
      ASSERT_EQ(std::memcmp(p1.data(), p2.data(), p1.len()), 0);
    }
  }
}

}  // namespace
}  // namespace esw
