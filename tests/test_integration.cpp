// End-to-end integration: full use-case pipelines, both switch
// implementations, generated traffic at scale, differential verdict checks,
// and the measurement loop plumbing benches rely on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "netio/mbuf_pool.hpp"
#include "netio/nfpa.hpp"
#include "netio/port.hpp"
#include "ovs/ovs_switch.hpp"
#include "test_util.hpp"
#include "usecases/usecases.hpp"

namespace esw {
namespace {

using namespace esw::flow;
using core::Eswitch;

// For every use case: ESWITCH, the OVS model and the reference interpreter
// must agree verdict-for-verdict over thousands of generated packets.
struct Scenario {
  const char* name;
  std::function<uc::UseCase()> make;
};

class UseCaseDifferential : public ::testing::TestWithParam<int> {};

const Scenario kScenarios[] = {
    {"l2", [] { return uc::make_l2(100); }},
    {"l3", [] { return uc::make_l3(500); }},
    {"lb", [] { return uc::make_load_balancer(20); }},
    {"gw", [] { return uc::make_gateway(4, 10, 300); }},
};

TEST_P(UseCaseDifferential, AllDatapathsAgree) {
  const Scenario& sc = kScenarios[GetParam()];
  const auto uc = sc.make();

  core::CompilerConfig cfg;
  cfg.enable_decomposition = true;
  Eswitch es(cfg);
  es.install(uc.pipeline);
  ovs::OvsSwitch ovs_sw;
  ovs_sw.install(uc.pipeline);

  const auto ts = net::TrafficSet::from_flows(uc.traffic(512, 99));
  net::Packet a, b, c;
  for (size_t i = 0; i < 3000; ++i) {
    ts.load(i, a);
    ts.load(i, b);
    ts.load(i, c);
    const Verdict ve = es.process(a);
    const Verdict vo = ovs_sw.process(b);
    const Verdict vr = uc.pipeline.run(c);
    ASSERT_EQ(ve, vr) << sc.name << " pkt " << i;
    ASSERT_EQ(vo, vr) << sc.name << " pkt " << i;
    // Packet mutations (NAT, VLAN) must be identical too.
    ASSERT_EQ(a.len(), c.len()) << sc.name;
    ASSERT_EQ(std::memcmp(a.data(), c.data(), a.len()), 0) << sc.name;
    ASSERT_EQ(b.len(), c.len()) << sc.name;
    ASSERT_EQ(std::memcmp(b.data(), c.data(), b.len()), 0) << sc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllUseCases, UseCaseDifferential, ::testing::Range(0, 4),
                         [](const auto& info) {
                           return std::string(kScenarios[info.param].name);
                         });

TEST(Integration, EswitchOutpacesOvsOnGatewayWithManyFlows) {
  // The headline claim, miniaturized: with many active flows the compiled
  // datapath sustains its rate while the flow-caching baseline collapses.
  const auto uc = uc::make_gateway(10, 20, 1000);
  Eswitch es;
  es.install(uc.pipeline);
  ovs::OvsSwitch::Config ocfg;
  ocfg.megaflow_flow_limit = 2000;
  ovs::OvsSwitch ovs_sw(ocfg);
  ovs_sw.install(uc.pipeline);

  const auto ts = net::TrafficSet::from_flows(uc.traffic(20000, 1));
  net::RunOpts opts;
  opts.min_seconds = 0.05;
  opts.min_packets = 5000;
  opts.warmup_packets = 2000;

  const auto es_stats = net::run_loop(ts, [&](net::Packet& p) { es.process(p); }, opts);
  const auto ovs_stats =
      net::run_loop(ts, [&](net::Packet& p) { ovs_sw.process(p); }, opts);
  EXPECT_GT(es_stats.pps, 2.0 * ovs_stats.pps)
      << "ES " << es_stats.pps << " vs OVS " << ovs_stats.pps;
}

TEST(Integration, EswitchThroughputRobustToFlowCount) {
  // Fig. 13 shape for ESWITCH alone: rate varies little from 100 to 100K
  // active flows.
  const auto uc = uc::make_gateway(10, 20, 1000);
  Eswitch es;
  es.install(uc.pipeline);

  net::RunOpts opts;
  opts.min_seconds = 0.05;
  opts.min_packets = 5000;

  const auto few = net::run_loop(net::TrafficSet::from_flows(uc.traffic(100, 1)),
                                 [&](net::Packet& p) { es.process(p); }, opts);
  const auto many = net::run_loop(net::TrafficSet::from_flows(uc.traffic(100000, 1)),
                                  [&](net::Packet& p) { es.process(p); }, opts);
  EXPECT_GT(many.pps, few.pps * 0.4);
}

TEST(Integration, PortPathCarriesTraffic) {
  // RX -> switch -> TX through the netio substrate with mbuf accounting.
  const auto uc = uc::make_l2(16);
  Eswitch es;
  es.install(uc.pipeline);

  net::MbufPool pool(64);
  net::Port in_port, out_port;
  const auto ts = net::TrafficSet::from_flows(uc.traffic(64, 3));

  uint64_t forwarded = 0;
  for (size_t i = 0; i < 256; ++i) {
    net::Packet* pkt = pool.alloc();
    ASSERT_NE(pkt, nullptr);
    ts.load(i, *pkt);
    net::Packet* burst[1] = {pkt};
    ASSERT_EQ(in_port.inject_rx(burst, 1), 1u);

    net::Packet* rx[net::kBurstSize];
    const uint32_t n = in_port.rx_burst(rx, net::kBurstSize);
    for (uint32_t k = 0; k < n; ++k) {
      const Verdict v = es.process(*rx[k]);
      if (v.kind == Verdict::Kind::kOutput) {
        out_port.tx_burst(&rx[k], 1);
        ++forwarded;
      }
      pool.free(rx[k]);
    }
    net::Packet* drain[net::kBurstSize];
    while (out_port.drain_tx(drain, net::kBurstSize) > 0) {
    }
  }
  EXPECT_EQ(forwarded, 256u);
  EXPECT_EQ(pool.available(), 64u);  // no leaks
  EXPECT_EQ(out_port.counters().tx_packets, 256u);
}

TEST(Integration, MemTraceProducesDifferentiatedWorkingSets) {
  // ES's traced working set per packet must be far smaller than OVS's
  // slow-path working set on a cold cache — the Fig. 15 mechanism.
  const auto uc = uc::make_gateway(4, 10, 500);
  Eswitch es;
  es.install(uc.pipeline);
  ovs::OvsSwitch::Config ocfg;
  ocfg.megaflow_flow_limit = 64;  // force slow-path recurrence
  ovs::OvsSwitch ovs_sw(ocfg);
  ovs_sw.install(uc.pipeline);

  const auto ts = net::TrafficSet::from_flows(uc.traffic(5000, 1));
  net::Packet p;
  MemTrace et, ot;
  for (size_t i = 0; i < 2000; ++i) {
    ts.load(i, p);
    es.process(p, &et);
    ts.load(i, p);
    ovs_sw.process(p, &ot);
  }
  EXPECT_LT(et.lines().size() * 5, ot.lines().size());
}

}  // namespace
}  // namespace esw
