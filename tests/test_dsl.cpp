#include <gtest/gtest.h>

#include "common/check.hpp"
#include "flow/dsl.hpp"

namespace esw {
namespace {

using namespace esw::flow;

TEST(Dsl, ParsesFullRule) {
  const FlowEntry e = parse_rule(
      "priority=100, in_port=1, ip_dst=192.0.2.0/24, tcp_dst=80, "
      "actions=set_field:ip_src=10.0.0.1, dec_ttl, output:2, goto:3");
  EXPECT_EQ(e.priority, 100);
  EXPECT_EQ(e.match.value(FieldId::kInPort), 1u);
  EXPECT_EQ(e.match.value(FieldId::kIpDst), 0xC0000200u);
  EXPECT_EQ(e.match.mask(FieldId::kIpDst), 0xFFFFFF00u);
  EXPECT_EQ(e.match.value(FieldId::kTcpDst), 80u);
  ASSERT_EQ(e.actions.size(), 3u);
  EXPECT_EQ(e.actions[0], Action::set_field(FieldId::kIpSrc, 0x0A000001));
  EXPECT_EQ(e.actions[1], Action::dec_ttl());
  EXPECT_EQ(e.actions[2], Action::output(2));
  EXPECT_EQ(e.goto_table, 3);
}

TEST(Dsl, ParsesMacAndHex) {
  const FlowEntry e =
      parse_rule("priority=5,eth_dst=aa:bb:cc:dd:ee:ff,eth_type=0x0806,actions=flood");
  EXPECT_EQ(e.match.value(FieldId::kEthDst), 0xAABBCCDDEEFFu);
  EXPECT_EQ(e.match.value(FieldId::kEthType), 0x0806u);
  EXPECT_EQ(e.actions[0], Action::flood());
}

TEST(Dsl, ParsesDottedMask) {
  const FlowEntry e =
      parse_rule("ip_src=10.0.0.0/255.255.0.0,actions=drop");
  EXPECT_EQ(e.match.mask(FieldId::kIpSrc), 0xFFFF0000u);
  EXPECT_EQ(e.actions[0], Action::drop());
}

TEST(Dsl, CatchAllRule) {
  const FlowEntry e = parse_rule("priority=0,actions=controller");
  EXPECT_TRUE(e.match.is_catch_all());
  EXPECT_EQ(e.actions[0], Action::to_controller());
}

TEST(Dsl, Ipv4Helpers) {
  EXPECT_EQ(parse_ipv4("192.168.2.1"), 0xC0A80201u);
  EXPECT_EQ(format_ipv4(0xC0A80201u), "192.168.2.1");
  EXPECT_THROW(parse_ipv4("192.168.2"), CheckError);
  EXPECT_THROW(parse_ipv4("192.168.2.300"), CheckError);
}

TEST(Dsl, FormatParsesBack) {
  const FlowEntry e = parse_rule(
      "priority=7,vlan_vid=9,udp_dst=53,actions=pop_vlan,output:4,goto:2");
  const FlowEntry back = parse_rule(format_rule(e));
  EXPECT_EQ(back.priority, e.priority);
  EXPECT_TRUE(back.match == e.match);
  EXPECT_EQ(back.actions, e.actions);
  EXPECT_EQ(back.goto_table, e.goto_table);
}

TEST(Dsl, Errors) {
  EXPECT_THROW(parse_rule("bogus_field=1,actions=drop"), CheckError);
  EXPECT_THROW(parse_rule("priority=1,actions=launch_missiles"), CheckError);
  EXPECT_THROW(parse_rule("priority=1,tcp_dst,actions=drop"), CheckError);
  EXPECT_THROW(parse_rule("ip_dst=1.2.3.4/33,actions=drop"), CheckError);
}

}  // namespace
}  // namespace esw
