#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "flow/dsl.hpp"
#include "testing/seed.hpp"

namespace esw {
namespace {

using namespace esw::flow;

TEST(Dsl, ParsesFullRule) {
  const FlowEntry e = parse_rule(
      "priority=100, in_port=1, ip_dst=192.0.2.0/24, tcp_dst=80, "
      "actions=set_field:ip_src=10.0.0.1, dec_ttl, output:2, goto:3");
  EXPECT_EQ(e.priority, 100);
  EXPECT_EQ(e.match.value(FieldId::kInPort), 1u);
  EXPECT_EQ(e.match.value(FieldId::kIpDst), 0xC0000200u);
  EXPECT_EQ(e.match.mask(FieldId::kIpDst), 0xFFFFFF00u);
  EXPECT_EQ(e.match.value(FieldId::kTcpDst), 80u);
  ASSERT_EQ(e.actions.size(), 3u);
  EXPECT_EQ(e.actions[0], Action::set_field(FieldId::kIpSrc, 0x0A000001));
  EXPECT_EQ(e.actions[1], Action::dec_ttl());
  EXPECT_EQ(e.actions[2], Action::output(2));
  EXPECT_EQ(e.goto_table, 3);
}

TEST(Dsl, ParsesMacAndHex) {
  const FlowEntry e =
      parse_rule("priority=5,eth_dst=aa:bb:cc:dd:ee:ff,eth_type=0x0806,actions=flood");
  EXPECT_EQ(e.match.value(FieldId::kEthDst), 0xAABBCCDDEEFFu);
  EXPECT_EQ(e.match.value(FieldId::kEthType), 0x0806u);
  EXPECT_EQ(e.actions[0], Action::flood());
}

TEST(Dsl, ParsesDottedMask) {
  const FlowEntry e =
      parse_rule("ip_src=10.0.0.0/255.255.0.0,actions=drop");
  EXPECT_EQ(e.match.mask(FieldId::kIpSrc), 0xFFFF0000u);
  EXPECT_EQ(e.actions[0], Action::drop());
}

TEST(Dsl, CatchAllRule) {
  const FlowEntry e = parse_rule("priority=0,actions=controller");
  EXPECT_TRUE(e.match.is_catch_all());
  EXPECT_EQ(e.actions[0], Action::to_controller());
}

TEST(Dsl, Ipv4Helpers) {
  EXPECT_EQ(parse_ipv4("192.168.2.1"), 0xC0A80201u);
  EXPECT_EQ(format_ipv4(0xC0A80201u), "192.168.2.1");
  EXPECT_THROW(parse_ipv4("192.168.2"), CheckError);
  EXPECT_THROW(parse_ipv4("192.168.2.300"), CheckError);
}

TEST(Dsl, FormatParsesBack) {
  const FlowEntry e = parse_rule(
      "priority=7,vlan_vid=9,udp_dst=53,actions=pop_vlan,output:4,goto:2");
  const FlowEntry back = parse_rule(format_rule(e));
  EXPECT_EQ(back.priority, e.priority);
  EXPECT_TRUE(back.match == e.match);
  EXPECT_EQ(back.actions, e.actions);
  EXPECT_EQ(back.goto_table, e.goto_table);
}

TEST(Dsl, Errors) {
  EXPECT_THROW(parse_rule("bogus_field=1,actions=drop"), CheckError);
  EXPECT_THROW(parse_rule("priority=1,actions=launch_missiles"), CheckError);
  EXPECT_THROW(parse_rule("priority=1,tcp_dst,actions=drop"), CheckError);
  EXPECT_THROW(parse_rule("ip_dst=1.2.3.4/33,actions=drop"), CheckError);
}

// --- round-trip property: parse_rule(format_rule(e)) == e -------------------

void expect_round_trip(const FlowEntry& e) {
  const std::string text = format_rule(e);
  const FlowEntry back = parse_rule(text);
  EXPECT_TRUE(back.match == e.match) << text;
  EXPECT_EQ(back.priority, e.priority) << text;
  EXPECT_EQ(back.actions, e.actions) << text;
  EXPECT_EQ(back.goto_table, e.goto_table) << text;
  EXPECT_EQ(back.cookie, e.cookie) << text;
}

Action random_action(Rng& rng) {
  switch (static_cast<ActionType>(rng.below(9))) {
    case ActionType::kOutput:
      return Action::output(static_cast<uint32_t>(rng.next()));
    case ActionType::kDrop:
      return Action::drop();
    case ActionType::kController:
      return Action::to_controller();
    case ActionType::kFlood:
      return Action::flood();
    case ActionType::kSetField: {
      const FieldId f = static_cast<FieldId>(rng.below(kNumFields));
      return Action::set_field(f, rng.next() & field_full_mask(f));
    }
    case ActionType::kPushVlan:
      return Action::push_vlan(static_cast<uint16_t>(rng.below(0x1000)));
    case ActionType::kPopVlan:
      return Action::pop_vlan();
    case ActionType::kCtCommit:
      return Action::ct_commit(static_cast<uint32_t>(rng.below(4)));
    default:
      return Action::dec_ttl();
  }
}

FlowEntry random_entry(Rng& rng) {
  FlowEntry e;
  e.priority = static_cast<uint16_t>(rng.below(0x10000));
  if (rng.below(2) != 0) e.cookie = rng.next();
  for (unsigned i = 0; i < kNumFields; ++i) {
    if (rng.below(4) != 0) continue;  // each field present w.p. 1/4
    const FieldId f = static_cast<FieldId>(i);
    const uint64_t full = field_full_mask(f);
    const unsigned width = field_info(f).width_bits;
    uint64_t mask;
    switch (rng.below(3)) {  // exact / prefix / arbitrary sparse mask shapes
      case 0:
        mask = full;
        break;
      case 1: {
        const unsigned len = static_cast<unsigned>(rng.range(1, width));
        mask = (full >> (width - len)) << (width - len);
        break;
      }
      default:
        mask = rng.next() & full;
        if (mask == 0) mask = full;
        break;
    }
    e.match.set(f, rng.next() & full, mask);
  }
  const size_t n_actions = 1 + rng.below(3);
  for (size_t i = 0; i < n_actions; ++i) e.actions.push_back(random_action(rng));
  if (rng.below(2) != 0) e.goto_table = static_cast<int16_t>(rng.below(256));
  return e;
}

TEST(Dsl, RoundTripEveryActionType) {
  for (unsigned i = 0; i < 9; ++i) {
    FlowEntry e;
    e.priority = 42;
    switch (static_cast<ActionType>(i)) {
      case ActionType::kOutput:    e.actions = {Action::output(7)}; break;
      case ActionType::kDrop:      e.actions = {Action::drop()}; break;
      case ActionType::kController:e.actions = {Action::to_controller()}; break;
      case ActionType::kFlood:     e.actions = {Action::flood()}; break;
      case ActionType::kSetField:
        e.actions = {Action::set_field(FieldId::kIpSrc, 0x0A010203)};
        break;
      case ActionType::kPushVlan:  e.actions = {Action::push_vlan(99)}; break;
      case ActionType::kPopVlan:   e.actions = {Action::pop_vlan()}; break;
      case ActionType::kDecTtl:    e.actions = {Action::dec_ttl()}; break;
      case ActionType::kCtCommit:  e.actions = {Action::ct_commit(2)}; break;
    }
    expect_round_trip(e);
  }
}

TEST(Dsl, RoundTripMaskShapes) {
  FlowEntry e;
  e.actions = {Action::output(1)};
  e.match.set(FieldId::kIpSrc, 0x0A000000, 0xFF000000);      // prefix
  e.match.set(FieldId::kEthDst, 0x010000000000, 0x010000000000);  // single bit
  e.match.set(FieldId::kMetadata, 0x12340000, 0xFFFF00FF);   // sparse
  e.match.set(FieldId::kTcpDst, 0x80, 0xFF80);               // sparse 16-bit
  expect_round_trip(e);
}

TEST(Dsl, RoundTripGotoAndCookie) {
  FlowEntry e;
  e.actions = {Action::dec_ttl(), Action::output(3)};
  e.goto_table = 200;
  e.cookie = 0xDEADBEEFCAFEBABEULL;
  expect_round_trip(e);
}

TEST(Dsl, RoundTripProperty) {
  Rng rng(esw::testing::test_seed(0xD51, "Dsl.RoundTripProperty"));
  for (int i = 0; i < 2000; ++i) expect_round_trip(random_entry(rng));
}

}  // namespace
}  // namespace esw
