#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using namespace esw::core;
using namespace esw::flow;
using test::ip;

FlowTable table_from(std::initializer_list<const char*> rules) {
  FlowTable t(0);
  for (const char* r : rules) t.add(parse_rule(r));
  return t;
}

AnalysisEntries analyze_helper(const FlowTable& t) {
  AnalysisEntries out;
  for (const FlowEntry& e : t.entries())
    out.push_back({e.match, e.priority, {}, e.goto_table, -1});
  return out;
}

TEST(Analysis, SmallTablesCompileDirect) {
  const auto t = table_from({
      "priority=3,ip_dst=1.2.3.4,tcp_dst=80,actions=output:1",
      "priority=2,ip_dst=1.2.3.0/24,actions=output:2",
      "priority=1,actions=drop",
  });
  EXPECT_EQ(analyze_table(t, {}).chosen, TableTemplate::kDirectCode);
}

TEST(Analysis, DirectCodeThresholdBoundary) {
  CompilerConfig cfg;
  cfg.direct_code_max_entries = 4;
  FlowTable t(0);
  for (int i = 0; i < 4; ++i)
    t.add(parse_rule("priority=5,eth_dst=00:00:00:00:00:0" + std::to_string(i) +
                     ",actions=output:1"));
  EXPECT_EQ(analyze_table(t, cfg).chosen, TableTemplate::kDirectCode);
  t.add(parse_rule("priority=5,eth_dst=00:00:00:00:00:09,actions=output:1"));
  // Fifth entry crosses the Fig. 9 constant: falls to the hash template.
  EXPECT_EQ(analyze_table(t, cfg).chosen, TableTemplate::kCompoundHash);
}

TEST(Analysis, HashPrerequisiteGlobalMask) {
  // The paper's §3.1 example: ip_dst/24 + exact tcp_dst in both entries works…
  FlowTable good(0);
  for (int i = 0; i < 6; ++i)
    good.add(parse_rule("priority=5,ip_dst=192.0." + std::to_string(i) +
                        ".0/24,tcp_dst=80,actions=output:1"));
  Match mask;
  bool has_catch_all = true;
  EXPECT_TRUE(hash_prerequisite(analyze_helper(good), &mask, &has_catch_all));
  EXPECT_EQ(mask.mask(FieldId::kIpDst), 0xFFFFFF00u);
  EXPECT_EQ(mask.mask(FieldId::kTcpDst), 0xFFFFu);
  EXPECT_FALSE(has_catch_all);

  // …but adding an entry that drops tcp_dst violates the prerequisite.
  FlowTable bad = good;
  bad.add(parse_rule("priority=5,ip_dst=203.0.113.0/24,actions=output:3"));
  EXPECT_FALSE(hash_prerequisite(analyze_helper(bad), nullptr, nullptr));
  EXPECT_EQ(analyze_table(bad, {}).chosen, TableTemplate::kLinkedList);
}

TEST(Analysis, HashAllowsOneLowestPriorityCatchAll) {
  FlowTable t(0);
  for (int i = 0; i < 6; ++i)
    t.add(parse_rule("priority=5,udp_dst=" + std::to_string(i) + ",actions=output:1"));
  t.add(parse_rule("priority=1,actions=drop"));
  EXPECT_EQ(analyze_table(t, {}).chosen, TableTemplate::kCompoundHash);

  // A catch-all that outranks a specific entry breaks the prerequisite.
  t.add(parse_rule("priority=9,actions=drop"));
  EXPECT_EQ(analyze_table(t, {}).chosen, TableTemplate::kLinkedList);
}

TEST(Analysis, LpmPrerequisite) {
  FlowTable t(0);
  t.add(parse_rule("priority=24,ip_dst=10.1.0.0/24,actions=output:1"));
  t.add(parse_rule("priority=16,ip_dst=10.0.0.0/16,actions=output:2"));
  t.add(parse_rule("priority=8,ip_dst=10.0.0.0/8,actions=output:3"));
  t.add(parse_rule("priority=30,ip_dst=10.1.0.0/30,actions=output:4"));
  t.add(parse_rule("priority=0,actions=drop"));  // default route
  FieldId f = FieldId::kCount;
  EXPECT_TRUE(lpm_prerequisite(analyze_helper(t), &f));
  EXPECT_EQ(f, FieldId::kIpDst);
  CompilerConfig cfg;
  cfg.direct_code_max_entries = 2;
  EXPECT_EQ(analyze_table(t, cfg).chosen, TableTemplate::kLpm);
}

TEST(Analysis, LpmRejectsPriorityInversion) {
  // The paper's §3.1 counterexample: /24 at priority 100 above /30 at 20.
  FlowTable t(0);
  t.add(parse_rule("priority=100,ip_dst=192.0.2.0/24,actions=output:1"));
  t.add(parse_rule("priority=20,ip_dst=192.0.2.12/30,actions=output:2"));
  t.add(parse_rule("priority=10,ip_dst=10.0.0.0/8,actions=output:3"));
  EXPECT_FALSE(lpm_prerequisite(analyze_helper(t), nullptr));
  CompilerConfig cfg;
  cfg.direct_code_max_entries = 2;
  // Falls through LPM to the range extension template (single field, prefix
  // masks, priorities resolved by interval flattening).
  EXPECT_EQ(analyze_table(t, cfg).chosen, TableTemplate::kRange);
  cfg.enable_range_template = false;
  EXPECT_EQ(analyze_table(t, cfg).chosen, TableTemplate::kLinkedList);
}

TEST(Analysis, LpmRejectsNonPrefixMasksAndMixedFields) {
  FlowTable t(0);
  t.add(parse_rule("priority=5,ip_dst=10.0.0.0/255.0.255.0,actions=drop"));
  for (int i = 0; i < 5; ++i)
    t.add(parse_rule("priority=24,ip_dst=10.1." + std::to_string(i) +
                     ".0/24,actions=output:1"));
  EXPECT_FALSE(lpm_prerequisite(analyze_helper(t), nullptr));

  FlowTable t2(0);
  for (int i = 0; i < 5; ++i)
    t2.add(parse_rule("priority=24,ip_dst=10.1." + std::to_string(i) +
                      ".0/24,actions=output:1"));
  t2.add(parse_rule("priority=16,ip_src=10.0.0.0/16,actions=output:2"));
  EXPECT_FALSE(lpm_prerequisite(analyze_helper(t2), nullptr));
}

TEST(Analysis, ForceTemplateOverrides) {
  CompilerConfig cfg;
  cfg.force_template = TableTemplate::kLinkedList;
  const auto t = table_from({"priority=1,actions=drop"});
  EXPECT_EQ(analyze_table(t, cfg).chosen, TableTemplate::kLinkedList);
}

TEST(Analysis, FallbackChainShape) {
  EXPECT_EQ(fallback_of(TableTemplate::kDirectCode), TableTemplate::kCompoundHash);
  EXPECT_EQ(fallback_of(TableTemplate::kCompoundHash), TableTemplate::kLpm);
  EXPECT_EQ(fallback_of(TableTemplate::kLpm), TableTemplate::kRange);
  EXPECT_EQ(fallback_of(TableTemplate::kRange), TableTemplate::kLinkedList);
  EXPECT_EQ(fallback_of(TableTemplate::kLinkedList), TableTemplate::kLinkedList);
}

}  // namespace
}  // namespace esw
