// Shared helpers for the test suite: quick packet construction and parsing.
#pragma once

#include <cstdint>

#include "flow/dsl.hpp"
#include "netio/packet.hpp"
#include "proto/build.hpp"
#include "proto/parse.hpp"

namespace esw::test {

inline net::Packet make_packet(const proto::PacketSpec& spec, uint32_t in_port = 0) {
  net::Packet p;
  const uint32_t len = proto::build_packet(spec, p.data(), net::Packet::kMaxFrame);
  p.set_len(len);
  p.set_in_port(in_port);
  return p;
}

inline proto::PacketSpec udp_spec(uint32_t ip_src, uint32_t ip_dst, uint16_t sport,
                                  uint16_t dport) {
  proto::PacketSpec s;
  s.kind = proto::PacketKind::kUdp;
  s.ip_src = ip_src;
  s.ip_dst = ip_dst;
  s.sport = sport;
  s.dport = dport;
  return s;
}

inline proto::PacketSpec tcp_spec(uint32_t ip_src, uint32_t ip_dst, uint16_t sport,
                                  uint16_t dport) {
  proto::PacketSpec s;
  s.kind = proto::PacketKind::kTcp;
  s.ip_src = ip_src;
  s.ip_dst = ip_dst;
  s.sport = sport;
  s.dport = dport;
  return s;
}

inline proto::ParseInfo parse_packet(const net::Packet& p) {
  proto::ParseInfo pi;
  proto::parse(p.data(), p.len(), proto::ParserPlan::full(), pi);
  pi.in_port = p.in_port();
  return pi;
}

inline uint32_t ip(const char* dotted) { return flow::parse_ipv4(dotted); }

}  // namespace esw::test
