#include <gtest/gtest.h>

#include <map>

#include "cls/lpm.hpp"
#include "common/check.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"

namespace esw {
namespace {

using cls::LpmTable;

// Brute-force reference.
class RefLpm {
 public:
  void add(uint32_t p, uint8_t len, uint32_t v) { rules_[{len, norm(p, len)}] = v; }
  void remove(uint32_t p, uint8_t len) { rules_.erase({len, norm(p, len)}); }
  std::optional<uint32_t> lookup(uint32_t a) const {
    for (int len = 32; len >= 0; --len) {
      const auto it = rules_.find({static_cast<uint8_t>(len), norm(a, len)});
      if (it != rules_.end()) return it->second;
    }
    return std::nullopt;
  }

 private:
  static uint32_t norm(uint32_t p, int len) {
    return len == 0 ? 0 : p & static_cast<uint32_t>(low_bits(len) << (32 - len));
  }
  std::map<std::pair<uint8_t, uint32_t>, uint32_t> rules_;
};

TEST(Lpm, BasicLongestPrefixWins) {
  LpmTable t;
  t.add(0x0A000000, 8, 1);    // 10/8
  t.add(0x0A010000, 16, 2);   // 10.1/16
  t.add(0x0A010100, 24, 3);   // 10.1.1/24
  t.add(0x0A010101, 32, 4);   // 10.1.1.1/32

  EXPECT_EQ(t.lookup(0x0A020202), std::optional<uint32_t>(1));
  EXPECT_EQ(t.lookup(0x0A010202), std::optional<uint32_t>(2));
  EXPECT_EQ(t.lookup(0x0A010102), std::optional<uint32_t>(3));
  EXPECT_EQ(t.lookup(0x0A010101), std::optional<uint32_t>(4));
  EXPECT_FALSE(t.lookup(0x0B000000).has_value());
}

TEST(Lpm, DefaultRoute) {
  LpmTable t;
  t.add(0, 0, 42);
  EXPECT_EQ(t.lookup(0xFFFFFFFF), std::optional<uint32_t>(42));
  t.add(0xC0000200, 24, 7);
  EXPECT_EQ(t.lookup(0xC0000203), std::optional<uint32_t>(7));
  EXPECT_EQ(t.lookup(0xC0000300), std::optional<uint32_t>(42));
}

TEST(Lpm, RemoveRestoresAncestor) {
  LpmTable t;
  t.add(0x0A000000, 8, 1);
  t.add(0x0A010000, 16, 2);
  EXPECT_EQ(t.lookup(0x0A010101), std::optional<uint32_t>(2));
  EXPECT_TRUE(t.remove(0x0A010000, 16));
  EXPECT_EQ(t.lookup(0x0A010101), std::optional<uint32_t>(1));
  EXPECT_TRUE(t.remove(0x0A000000, 8));
  EXPECT_FALSE(t.lookup(0x0A010101).has_value());
  EXPECT_FALSE(t.remove(0x0A000000, 8));
}

TEST(Lpm, DeepPrefixesUseTbl8) {
  LpmTable t(8);
  t.add(0x0A010100, 24, 1);
  EXPECT_EQ(t.tbl8_groups_used(), 0u);
  t.add(0x0A010180, 25, 2);
  EXPECT_EQ(t.tbl8_groups_used(), 1u);
  EXPECT_EQ(t.lookup(0x0A010101), std::optional<uint32_t>(1));
  EXPECT_EQ(t.lookup(0x0A0101FE), std::optional<uint32_t>(2));

  // Removing the /25 folds the group back; it is reused afterwards.
  EXPECT_TRUE(t.remove(0x0A010180, 25));
  EXPECT_EQ(t.lookup(0x0A0101FE), std::optional<uint32_t>(1));
  t.add(0x14000040, 26, 3);
  EXPECT_EQ(t.tbl8_groups_used(), 1u);  // recycled, not grown
  EXPECT_EQ(t.lookup(0x14000041), std::optional<uint32_t>(3));
}

TEST(Lpm, Tbl8Exhaustion) {
  LpmTable t(2);
  t.add(0x01000080, 25, 1);
  t.add(0x02000080, 25, 2);
  EXPECT_THROW(t.add(0x03000080, 25, 3), CheckError);
}

TEST(Lpm, RejectsOversizedValue) {
  LpmTable t;
  EXPECT_THROW(t.add(0, 0, 1u << 24), CheckError);
}

TEST(Lpm, PropertyMatchesBruteForce) {
  LpmTable t(1024);
  RefLpm ref;
  Rng rng(11);

  struct Rule {
    uint32_t p;
    uint8_t len;
  };
  std::vector<Rule> live;

  // Insert 400 random prefixes biased toward realistic lengths.
  for (int i = 0; i < 400; ++i) {
    static const uint8_t lens[] = {8, 12, 16, 20, 22, 24, 24, 24, 26, 28, 30, 32};
    const uint8_t len = lens[rng.below(sizeof lens)];
    const uint32_t p = static_cast<uint32_t>(rng.next());
    const uint32_t v = static_cast<uint32_t>(rng.below(1 << 20));
    t.add(p, len, v);
    ref.add(p, len, v);
    live.push_back({p, len});
  }
  auto verify = [&](int n) {
    for (int i = 0; i < n; ++i) {
      // Mix of pure-random addresses and addresses near the rules.
      uint32_t a = static_cast<uint32_t>(rng.next());
      if (rng.chance(1, 2) && !live.empty()) {
        const Rule& r = live[rng.below(live.size())];
        a = r.p ^ static_cast<uint32_t>(rng.below(256));
      }
      ASSERT_EQ(t.lookup(a), ref.lookup(a)) << std::hex << a;
    }
  };
  verify(3000);

  // Delete half and re-verify.
  for (size_t i = 0; i < live.size(); i += 2) {
    t.remove(live[i].p, live[i].len);
    ref.remove(live[i].p, live[i].len);
  }
  verify(3000);
}

}  // namespace
}  // namespace esw
