#include <gtest/gtest.h>

#include "cls/tuple_space.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using namespace esw::flow;
using cls::TupleSpace;
using cls::TupleVisitStats;
using test::ip;
using test::make_packet;
using test::parse_packet;

Match m_ipdst24(uint32_t net) {
  Match m;
  m.set(FieldId::kIpDst, net, 0xFFFFFF00);
  return m;
}

Match m_port(uint16_t port) {
  Match m;
  m.set(FieldId::kTcpDst, port);
  return m;
}

TEST(TupleSpace, GroupsByMaskSignature) {
  TupleSpace<int> ts;
  ts.add(m_ipdst24(0x0A000100), 1, 10);
  ts.add(m_ipdst24(0x0A000200), 2, 20);
  ts.add(m_port(80), 3, 30);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.num_tuples(), 2u);
}

TEST(TupleSpace, LowestRankWinsAcrossTuples) {
  TupleSpace<int> ts;
  ts.add(m_port(80), 5, 100);        // less specific but better rank
  ts.add(m_ipdst24(0x0A000100), 9, 200);

  auto p = make_packet(test::tcp_spec(1, 0x0A000142, 7, 80));
  auto pi = parse_packet(p);
  const auto* e = ts.lookup(p.data(), pi);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 100);
  EXPECT_EQ(e->rank, 5u);
}

TEST(TupleSpace, EarlyExitSkipsWorseTuples) {
  TupleSpace<int> ts;
  ts.add(m_port(80), 1, 1);
  for (uint32_t i = 0; i < 10; ++i) ts.add(m_ipdst24(i << 8), 100 + i, 0);

  auto p = make_packet(test::tcp_spec(1, 0x00000505, 7, 80));
  auto pi = parse_packet(p);
  TupleVisitStats visit;
  const auto* e = ts.lookup(p.data(), pi, &visit);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 1);
  // The port tuple has min_rank 1; after matching there, the ip tuple
  // (min_rank 100) is never visited.
  EXPECT_EQ(visit.tuples_visited, 1u);
}

TEST(TupleSpace, VisitStatsUnionMasks) {
  TupleSpace<int> ts;
  ts.add(m_ipdst24(0x0A000100), 1, 10);
  ts.add(m_port(80), 2, 20);

  // Packet missing both: all tuples visited, masks unioned.
  auto p = make_packet(test::tcp_spec(1, 0x0B000001, 7, 443));
  auto pi = parse_packet(p);
  TupleVisitStats visit;
  EXPECT_EQ(ts.lookup(p.data(), pi, &visit), nullptr);
  EXPECT_EQ(visit.tuples_visited, 2u);
  EXPECT_TRUE(visit.fields_union & (1u << unsigned(FieldId::kIpDst)));
  EXPECT_TRUE(visit.fields_union & (1u << unsigned(FieldId::kTcpDst)));
  EXPECT_EQ(visit.mask_union[unsigned(FieldId::kIpDst)], 0xFFFFFF00u);
  EXPECT_EQ(visit.mask_union[unsigned(FieldId::kTcpDst)], 0xFFFFu);
}

TEST(TupleSpace, SameKeyDifferentRankChains) {
  TupleSpace<int> ts;
  const Match m = m_port(80);
  ts.add(m, 50, 1);
  ts.add(m, 10, 2);  // better rank, same key
  ts.add(m, 90, 3);

  auto p = make_packet(test::tcp_spec(1, 2, 7, 80));
  auto pi = parse_packet(p);
  EXPECT_EQ(ts.lookup(p.data(), pi)->value, 2);

  EXPECT_TRUE(ts.remove(m, 10));
  EXPECT_EQ(ts.lookup(p.data(), pi)->value, 1);
  EXPECT_TRUE(ts.remove(m, 50));
  EXPECT_EQ(ts.lookup(p.data(), pi)->value, 3);
  EXPECT_TRUE(ts.remove(m, 90));
  EXPECT_EQ(ts.lookup(p.data(), pi), nullptr);
  EXPECT_EQ(ts.num_tuples(), 0u);
  EXPECT_FALSE(ts.remove(m, 90));
}

TEST(TupleSpace, ProtocolPrerequisiteSkipsTuple) {
  TupleSpace<int> ts;
  ts.add(m_port(80), 1, 1);  // tcp tuple
  auto p = make_packet(test::udp_spec(1, 2, 7, 80));
  auto pi = parse_packet(p);
  EXPECT_EQ(ts.lookup(p.data(), pi), nullptr);
}

// Property: TSS result equals a priority-ordered linear scan.
TEST(TupleSpace, PropertyMatchesLinearScan) {
  Rng rng(21);
  for (int round = 0; round < 20; ++round) {
    TupleSpace<int> ts;
    struct Ref {
      Match m;
      uint32_t rank;
      int value;
    };
    std::vector<Ref> ref;

    const int n = 1 + static_cast<int>(rng.below(30));
    for (int i = 0; i < n; ++i) {
      Match m;
      if (rng.chance(1, 3)) m.set(FieldId::kIpDst, rng.below(4) << 8, 0xFFFFFF00);
      if (rng.chance(1, 3)) m.set(FieldId::kIpSrc, rng.below(4));
      if (rng.chance(1, 2)) m.set(FieldId::kTcpDst, 80 + rng.below(3));
      if (rng.chance(1, 4)) m.set(FieldId::kInPort, rng.below(2));
      // Unique ranks keep the comparison deterministic.
      const uint32_t rank = static_cast<uint32_t>(i);
      bool dup = false;
      for (const auto& r : ref)
        if (r.m == m) dup = true;
      if (dup) continue;
      ts.add(m, rank, i);
      ref.push_back({m, rank, i});
    }

    for (int q = 0; q < 200; ++q) {
      auto p = make_packet(
          test::tcp_spec(static_cast<uint32_t>(rng.below(5)),
                         static_cast<uint32_t>(rng.below(4) << 8 | rng.below(4)),
                         static_cast<uint16_t>(rng.below(4)),
                         static_cast<uint16_t>(80 + rng.below(4))),
          static_cast<uint32_t>(rng.below(3)));
      auto pi = parse_packet(p);

      const Ref* best = nullptr;
      for (const auto& r : ref)
        if (r.m.matches_packet(p.data(), pi) && (best == nullptr || r.rank < best->rank))
          best = &r;

      const auto* got = ts.lookup(p.data(), pi);
      if (best == nullptr) {
        ASSERT_EQ(got, nullptr);
      } else {
        ASSERT_NE(got, nullptr);
        ASSERT_EQ(got->value, best->value);
      }
    }
  }
}

}  // namespace
}  // namespace esw
