#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <unordered_map>

#include "cls/exact_match.hpp"
#include "common/rng.hpp"

namespace esw {
namespace {

using cls::ExactMatchTable;

std::string key_of(uint64_t x, uint32_t len = 8) {
  std::string k(len, '\0');
  std::memcpy(k.data(), &x, std::min<uint32_t>(len, 8));
  return k;
}

const uint8_t* bytes(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

TEST(ExactMatch, InsertLookupErase) {
  ExactMatchTable t;
  const auto k1 = key_of(111), k2 = key_of(222);
  EXPECT_FALSE(t.lookup(bytes(k1), 8).has_value());
  t.insert(bytes(k1), 8, 1);
  t.insert(bytes(k2), 8, 2);
  EXPECT_EQ(t.lookup(bytes(k1), 8), std::optional<uint32_t>(1));
  EXPECT_EQ(t.lookup(bytes(k2), 8), std::optional<uint32_t>(2));
  EXPECT_EQ(t.size(), 2u);

  t.insert(bytes(k1), 8, 99);  // overwrite
  EXPECT_EQ(t.lookup(bytes(k1), 8), std::optional<uint32_t>(99));
  EXPECT_EQ(t.size(), 2u);

  EXPECT_TRUE(t.erase(bytes(k1), 8));
  EXPECT_FALSE(t.erase(bytes(k1), 8));
  EXPECT_FALSE(t.lookup(bytes(k1), 8).has_value());
  EXPECT_EQ(t.lookup(bytes(k2), 8), std::optional<uint32_t>(2));
}

TEST(ExactMatch, DistinguishesKeyLengths) {
  ExactMatchTable t;
  const std::string a("\x01\x02", 2), b("\x01\x02\x00", 3);
  t.insert(bytes(a), 2, 1);
  t.insert(bytes(b), 3, 2);
  EXPECT_EQ(t.lookup(bytes(a), 2), std::optional<uint32_t>(1));
  EXPECT_EQ(t.lookup(bytes(b), 3), std::optional<uint32_t>(2));
}

TEST(ExactMatch, TenThousandKeysShortProbes) {
  ExactMatchTable t;
  for (uint64_t i = 0; i < 10000; ++i) {
    const auto k = key_of(i * 2654435761u);
    t.insert(bytes(k), 8, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(t.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) {
    const auto k = key_of(i * 2654435761u);
    ASSERT_EQ(t.lookup(bytes(k), 8), std::optional<uint32_t>(i)) << i;
  }
  // The "perfect hash" rebuild policy keeps chains at or below max_probe.
  EXPECT_LE(t.longest_probe(), 4u);
  EXPECT_GT(t.rebuilds(), 0u);
}

TEST(ExactMatch, SurvivesHeavyChurn) {
  ExactMatchTable t;
  Rng rng(3);
  std::unordered_map<uint64_t, uint32_t> ref;
  for (int op = 0; op < 30000; ++op) {
    const uint64_t k = rng.below(500);  // small key space forces collisions/churn
    const auto key = key_of(k);
    if (rng.chance(1, 3) && !ref.empty()) {
      const bool had = ref.erase(k) > 0;
      EXPECT_EQ(t.erase(bytes(key), 8), had);
    } else {
      const uint32_t v = static_cast<uint32_t>(rng.below(1'000'000));
      ref[k] = v;
      t.insert(bytes(key), 8, v);
    }
  }
  EXPECT_EQ(t.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const auto key = key_of(k);
    ASSERT_EQ(t.lookup(bytes(key), 8), std::optional<uint32_t>(v)) << k;
  }
  for (uint64_t k = 0; k < 500; ++k) {
    if (ref.count(k)) continue;
    const auto key = key_of(k);
    ASSERT_FALSE(t.lookup(bytes(key), 8).has_value()) << k;
  }
}

TEST(ExactMatch, TraceReportsTouchedLines) {
  ExactMatchTable t;
  const auto k = key_of(42);
  t.insert(bytes(k), 8, 7);
  MemTrace trace;
  t.lookup(bytes(k), 8, &trace);
  EXPECT_GE(trace.lines().size(), 1u);
}

}  // namespace
}  // namespace esw
