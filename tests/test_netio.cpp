#include <gtest/gtest.h>

#include "netio/mbuf_pool.hpp"
#include "netio/nfpa.hpp"
#include "netio/pktgen.hpp"
#include "netio/port.hpp"
#include "netio/ring.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using namespace esw::net;

TEST(Ring, BasicAndWraparound) {
  Ring ring(8);
  Packet pkts[16];
  Packet* in[16];
  Packet* out[16];
  for (int i = 0; i < 16; ++i) in[i] = &pkts[i];

  EXPECT_EQ(ring.enqueue_burst(in, 5), 5u);
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dequeue_burst(out, 3), 3u);
  EXPECT_EQ(out[0], &pkts[0]);
  EXPECT_EQ(out[2], &pkts[2]);

  // Fill over the wrap point.
  EXPECT_EQ(ring.enqueue_burst(in + 5, 6), 6u);
  EXPECT_EQ(ring.size(), 8u);
  // Full: no more room.
  EXPECT_EQ(ring.enqueue_burst(in, 4), 0u);
  EXPECT_EQ(ring.dequeue_burst(out, 16), 8u);
  EXPECT_EQ(out[0], &pkts[3]);
  EXPECT_EQ(out[7], &pkts[10]);
  EXPECT_TRUE(ring.empty());
}

TEST(Ring, RejectsNonPowerOfTwo) { EXPECT_THROW(Ring(10), CheckError); }

TEST(MbufPool, ExhaustionAndReuse) {
  MbufPool pool(4);
  Packet* got[5];
  for (int i = 0; i < 4; ++i) {
    got[i] = pool.alloc();
    ASSERT_NE(got[i], nullptr);
  }
  EXPECT_EQ(pool.alloc(), nullptr);
  EXPECT_EQ(pool.alloc_failures(), 1u);
  pool.free(got[2]);
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_EQ(pool.alloc(), got[2]);
}

TEST(Port, Counters) {
  Port port;
  auto p = test::make_packet(test::udp_spec(1, 2, 3, 4));
  Packet* pp = &p;
  EXPECT_EQ(port.inject_rx(&pp, 1), 1u);
  Packet* out[4];
  EXPECT_EQ(port.rx_burst(out, 4), 1u);
  EXPECT_EQ(port.counters().rx_packets, 1u);
  EXPECT_EQ(port.counters().rx_bytes, p.len());
  EXPECT_EQ(port.tx_burst(&pp, 1), 1u);
  EXPECT_EQ(port.counters().tx_packets, 1u);
}

TEST(Port, RateCapDropsExcess) {
  Port::Config cfg;
  cfg.max_tx_pps = 1e6;  // 1 Mpps
  Port port(cfg);
  auto p = test::make_packet(test::udp_spec(1, 2, 3, 4));
  Packet* burst[kBurstSize];
  for (auto& b : burst) b = &p;

  // At t=1ms, exactly 1000 packets of credit accrued (minus burst cap).
  uint64_t sent = 0;
  uint64_t t = 0;
  for (int i = 0; i < 100; ++i) {
    t += 100'000;  // 100 us steps
    sent += port.tx_burst(burst, kBurstSize, t);
    Packet* drain[kBurstSize];
    while (port.drain_tx(drain, kBurstSize) > 0) {
    }
  }
  // 10 ms at 1 Mpps = ~10K packets; we offered 100*32=3200, under the cap.
  EXPECT_EQ(sent, 3200u);

  // Now offer far more than the cap allows within 1 ms.
  sent = 0;
  for (int i = 0; i < 1000; ++i) {
    t += 1'000;  // 1 us steps -> 1 credit per step
    sent += port.tx_burst(burst, kBurstSize, t);
    Packet* drain[kBurstSize];
    while (port.drain_tx(drain, kBurstSize) > 0) {
    }
  }
  // ~1ms at 1 Mpps ≈ 1000 packets (+ small initial credit), well below offered 32000.
  EXPECT_LT(sent, 1500u);
  EXPECT_GT(sent, 800u);
  EXPECT_GT(port.counters().tx_drops, 0u);
}

TEST(TrafficSet, RoundRobinLoad) {
  std::vector<FlowSpec> flows;
  for (int i = 0; i < 3; ++i) {
    FlowSpec fs;
    fs.pkt = test::udp_spec(i + 1, 100, 1000 + i, 53);
    fs.in_port = i;
    flows.push_back(fs);
  }
  auto ts = TrafficSet::from_flows(flows);
  EXPECT_EQ(ts.size(), 3u);
  Packet p;
  ts.load(4, p);  // 4 % 3 == 1
  EXPECT_EQ(p.in_port(), 1u);
  auto pi = test::parse_packet(p);
  EXPECT_EQ(flow::extract_field(flow::FieldId::kIpSrc, p.data(), pi), 2u);
}

TEST(TrafficSet, LoadNextMatchesLoad) {
  std::vector<FlowSpec> flows;
  for (int i = 0; i < 5; ++i) {
    FlowSpec fs;
    fs.pkt = test::udp_spec(i + 1, 100, 1000 + i, 53);
    fs.in_port = i;
    flows.push_back(fs);
  }
  auto ts = TrafficSet::from_flows(flows);
  size_t cursor = 0;
  Packet a, b;
  for (size_t i = 0; i < 13; ++i) {  // wraps the 5-frame set twice
    ts.load(i, a);
    ts.load_next(cursor, b);
    ASSERT_EQ(a.len(), b.len()) << i;
    ASSERT_EQ(a.in_port(), b.in_port()) << i;
    ASSERT_EQ(std::memcmp(a.data(), b.data(), a.len()), 0) << i;
  }
  EXPECT_EQ(cursor, 13 % 5);
}

TEST(RunLoopBurst, ReportsSaneStats) {
  std::vector<FlowSpec> flows(3);
  for (auto& f : flows) f.pkt = test::udp_spec(1, 2, 3, 4);
  auto ts = TrafficSet::from_flows(flows);
  uint64_t count = 0;
  RunOpts opts;
  opts.min_seconds = 0.01;
  opts.min_packets = 1000;
  opts.warmup_packets = 10;
  auto st = run_loop_burst(
      ts,
      [&](Packet* const* pkts, uint32_t n) {
        EXPECT_LE(n, kBurstSize);
        for (uint32_t b = 0; b < n; ++b) count += pkts[b]->len() > 0 ? 1 : 0;
      },
      opts);
  EXPECT_GT(st.pps, 0.0);
  EXPECT_GT(st.packets, 1000u);
  EXPECT_GT(st.cycles_per_pkt, 0.0);
  EXPECT_GE(st.latency_p99_cycles, st.latency_p50_cycles);
  EXPECT_EQ(count, st.packets + 32 /* warmup rounds up to one burst */);
}

TEST(RunLoop, ReportsSaneStats) {
  std::vector<FlowSpec> flows(1);
  flows[0].pkt = test::udp_spec(1, 2, 3, 4);
  auto ts = TrafficSet::from_flows(flows);
  uint64_t count = 0;
  RunOpts opts;
  opts.min_seconds = 0.01;
  opts.min_packets = 1000;
  opts.warmup_packets = 10;
  auto st = run_loop(
      ts, [&](Packet& p) { count += p.len(); }, opts);
  EXPECT_GT(st.pps, 0.0);
  EXPECT_GT(st.packets, 1000u);
  EXPECT_GT(st.cycles_per_pkt, 0.0);
  EXPECT_GE(st.latency_p99_cycles, st.latency_p50_cycles);
  EXPECT_GT(count, 0u);
}

}  // namespace
}  // namespace esw
