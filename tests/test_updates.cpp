#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using namespace esw::core;
using namespace esw::flow;
using test::ip;
using test::make_packet;

FlowMod add_mod(uint8_t table, const char* rule) {
  const FlowEntry e = parse_rule(rule);
  FlowMod fm;
  fm.command = FlowMod::Cmd::kAdd;
  fm.table_id = table;
  fm.priority = e.priority;
  fm.match = e.match;
  fm.actions = e.actions;
  fm.goto_table = e.goto_table;
  return fm;
}

FlowMod del_mod(uint8_t table, const char* rule) {
  FlowMod fm = add_mod(table, rule);
  fm.command = FlowMod::Cmd::kDelete;
  fm.actions.clear();
  return fm;
}

TEST(Updates, HashTemplateIncrementalAddRemove) {
  Pipeline pl;
  for (int i = 0; i < 20; ++i)
    pl.table(0).add(parse_rule("priority=5,udp_dst=" + std::to_string(i) +
                               ",actions=output:1"));
  Eswitch sw;
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), TableTemplate::kCompoundHash);
  const auto rebuilds_before = sw.update_stats().table_rebuilds;

  sw.apply(add_mod(0, "priority=5,udp_dst=1000,actions=output:7"));
  auto p = make_packet(test::udp_spec(1, 2, 9, 1000));
  EXPECT_EQ(sw.process(p), Verdict::output(7));
  // Non-destructive: same template object updated, no rebuild (§3.4).
  EXPECT_EQ(sw.update_stats().table_rebuilds, rebuilds_before);
  EXPECT_GE(sw.update_stats().incremental, 1u);

  sw.apply(del_mod(0, "priority=5,udp_dst=1000,actions=output:7"));
  auto p2 = make_packet(test::udp_spec(1, 2, 9, 1000));
  EXPECT_EQ(sw.process(p2), Verdict::drop());
  EXPECT_EQ(sw.update_stats().table_rebuilds, rebuilds_before);
}

TEST(Updates, PrerequisiteViolationFallsBack) {
  Pipeline pl;
  for (int i = 0; i < 20; ++i)
    pl.table(0).add(parse_rule("priority=5,udp_dst=" + std::to_string(i) +
                               ",actions=output:1"));
  Eswitch sw;
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), TableTemplate::kCompoundHash);

  // A masked rule breaks the global-mask prerequisite: the table must be
  // rebuilt under a fallback template, atomically, without losing rules.
  sw.apply(add_mod(0, "priority=9,udp_dst=0x100/0x100,actions=output:2"));
  EXPECT_EQ(sw.table_template(0), TableTemplate::kLinkedList);

  auto old_rule = make_packet(test::udp_spec(1, 2, 9, 3));
  auto new_rule = make_packet(test::udp_spec(1, 2, 9, 0x1F0));
  EXPECT_EQ(sw.process(old_rule), Verdict::output(1));
  EXPECT_EQ(sw.process(new_rule), Verdict::output(2));
}

TEST(Updates, DirectCodeAlwaysRebuilds) {
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=5,udp_dst=1,actions=output:1"));
  Eswitch sw;
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), TableTemplate::kDirectCode);
  const auto before = sw.update_stats().table_rebuilds;
  sw.apply(add_mod(0, "priority=5,udp_dst=2,actions=output:2"));
  EXPECT_GT(sw.update_stats().table_rebuilds, before);
  auto p = make_packet(test::udp_spec(1, 2, 9, 2));
  EXPECT_EQ(sw.process(p), Verdict::output(2));
}

TEST(Updates, GrowthPromotesDirectCodeToHash) {
  Eswitch sw;
  sw.install(Pipeline{});
  for (int i = 0; i < 10; ++i)
    sw.apply(add_mod(0, ("priority=5,udp_dst=" + std::to_string(i) +
                         ",actions=output:1").c_str()));
  EXPECT_EQ(sw.table_template(0), TableTemplate::kCompoundHash);
  for (int i = 0; i < 10; ++i) {
    auto p = make_packet(test::udp_spec(1, 2, 9, static_cast<uint16_t>(i)));
    EXPECT_EQ(sw.process(p), Verdict::output(1));
  }
}

TEST(Updates, LpmIncrementalChurn) {
  Pipeline pl;
  for (int i = 0; i < 32; ++i) {
    FlowEntry e;
    e.match.set(FieldId::kIpDst, static_cast<uint32_t>(i) << 24, 0xFF000000);
    e.priority = 8;
    e.actions = {Action::output(1)};
    pl.table(0).add(e);
  }
  for (int i = 0; i < 8; ++i) {
    // Mixed prefix lengths: breaks the (faster) global-mask hash prerequisite
    // so analysis lands on LPM, as in a real RIB.
    FlowEntry e;
    e.match.set(FieldId::kIpDst, (40u << 24) | (static_cast<uint32_t>(i) << 16),
                0xFFFF0000);
    e.priority = 16;
    e.actions = {Action::output(3)};
    pl.table(0).add(e);
  }
  Eswitch sw;
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), TableTemplate::kLpm);
  const auto rebuilds_before = sw.update_stats().table_rebuilds;

  // Route churn: add/remove more-specific prefixes (priority-consistent).
  for (int i = 0; i < 200; ++i) {
    FlowMod fm;
    fm.table_id = 0;
    fm.priority = 24;
    fm.match.set(FieldId::kIpDst, (5u << 24) | (static_cast<uint32_t>(i) << 8),
                 0xFFFFFF00);
    fm.actions = {Action::output(2)};
    sw.apply(fm);
  }
  auto p = make_packet(test::udp_spec(1, (5u << 24) | (77u << 8) | 3, 4, 4));
  EXPECT_EQ(sw.process(p), Verdict::output(2));
  EXPECT_EQ(sw.update_stats().table_rebuilds, rebuilds_before);

  for (int i = 0; i < 200; ++i) {
    FlowMod fm;
    fm.command = FlowMod::Cmd::kDelete;
    fm.table_id = 0;
    fm.priority = 24;
    fm.match.set(FieldId::kIpDst, (5u << 24) | (static_cast<uint32_t>(i) << 8),
                 0xFFFFFF00);
    sw.apply(fm);
  }
  auto p2 = make_packet(test::udp_spec(1, (5u << 24) | (77u << 8) | 3, 4, 4));
  EXPECT_EQ(sw.process(p2), Verdict::output(1));
  EXPECT_EQ(sw.update_stats().table_rebuilds, rebuilds_before);
}

TEST(Updates, LpmPriorityInversionFallsBack) {
  Pipeline pl;
  for (int i = 0; i < 32; ++i) {
    FlowEntry e;
    e.match.set(FieldId::kIpDst, static_cast<uint32_t>(i) << 24, 0xFF000000);
    e.priority = 8;
    e.actions = {Action::output(1)};
    pl.table(0).add(e);
  }
  for (int i = 0; i < 8; ++i) {
    // Mixed prefix lengths: breaks the (faster) global-mask hash prerequisite
    // so analysis lands on LPM, as in a real RIB.
    FlowEntry e;
    e.match.set(FieldId::kIpDst, (40u << 24) | (static_cast<uint32_t>(i) << 16),
                0xFFFF0000);
    e.priority = 16;
    e.actions = {Action::output(3)};
    pl.table(0).add(e);
  }
  Eswitch sw;
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), TableTemplate::kLpm);

  // A /24 *below* the /8s in priority violates the LPM ordering prerequisite.
  FlowMod fm;
  fm.table_id = 0;
  fm.priority = 2;
  fm.match.set(FieldId::kIpDst, 3u << 24 | 5u << 8, 0xFFFFFF00);
  fm.actions = {Action::output(9)};
  sw.apply(fm);
  // The priority-inverted prefix table fails LPM's prerequisite but fits the
  // range extension template (which bakes priorities into the intervals).
  EXPECT_EQ(sw.table_template(0), TableTemplate::kRange);
  // Reference semantics: the /8 still wins (higher priority).
  auto p = make_packet(test::udp_spec(1, 3u << 24 | 5u << 8 | 1, 4, 4));
  EXPECT_EQ(sw.process(p), Verdict::output(1));
}

TEST(Updates, BatchIsTransactional) {
  Eswitch sw;
  sw.install(Pipeline{});
  sw.apply(add_mod(0, "priority=5,udp_dst=1,actions=output:1"));

  // Second mod is invalid (goto to non-existent table): nothing may change.
  std::vector<FlowMod> batch;
  batch.push_back(add_mod(0, "priority=6,udp_dst=2,actions=output:2"));
  batch.push_back(add_mod(0, "priority=7,udp_dst=3,actions=,goto:99"));
  EXPECT_THROW(sw.apply_batch(batch), CheckError);

  auto p = make_packet(test::udp_spec(1, 2, 9, 2));
  EXPECT_EQ(sw.process(p), Verdict::drop());  // mod 1 was rolled back
  EXPECT_EQ(sw.pipeline().find_table(0)->size(), 1u);

  // Valid batch applies atomically.
  batch.pop_back();
  batch.push_back(add_mod(0, "priority=7,udp_dst=3,actions=output:3"));
  sw.apply_batch(batch);
  auto p2 = make_packet(test::udp_spec(1, 2, 9, 2));
  auto p3 = make_packet(test::udp_spec(1, 2, 9, 3));
  EXPECT_EQ(sw.process(p2), Verdict::output(2));
  EXPECT_EQ(sw.process(p3), Verdict::output(3));
}

TEST(Updates, InvalidGotoRejectedCleanly) {
  Eswitch sw;
  sw.install(Pipeline{});
  EXPECT_THROW(sw.apply(add_mod(0, "priority=5,udp_dst=1,actions=,goto:0")), CheckError);
  EXPECT_THROW(sw.apply(add_mod(5, "priority=5,udp_dst=1,actions=,goto:3")), CheckError);
  EXPECT_TRUE(sw.pipeline().empty());
}

TEST(Updates, ConcurrentReadersSurviveTableSwaps) {
  // A registered worker hammers the datapath while the control plane rebuilds
  // the table via trampoline swaps; every lookup must see either the old or
  // the new table, never garbage.  Retired tables are freed by the epoch
  // layer only after the worker ticks past the retirement — with the worker
  // live the whole time, reclamation itself is part of what is under test.
  Pipeline pl;
  for (int i = 0; i < 10; ++i)
    pl.table(0).add(parse_rule("priority=5,udp_dst=" + std::to_string(i) +
                               ",actions=output:1"));
  CompilerConfig cfg;
  cfg.direct_code_max_entries = 64;  // keep the table direct-code: every
                                     // update is a rebuild + trampoline swap
  Eswitch sw(cfg);
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), TableTemplate::kDirectCode);

  Eswitch::Worker* worker = sw.register_worker();
  ASSERT_NE(worker, nullptr);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> anomalies{0};
  std::atomic<uint64_t> ticks{0};
  std::thread reader([&] {
    auto p = make_packet(test::udp_spec(1, 2, 9, 3));
    while (!stop.load(std::memory_order_relaxed)) {
      net::Packet copy = p;
      const Verdict v = sw.process(*worker, copy);
      if (!(v == Verdict::output(1))) anomalies.fetch_add(1);
      ticks.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Progress-driven (a fixed churn count can finish before the reader thread
  // is ever scheduled on a loaded single-core machine): wait for the reader,
  // then churn until the epoch layer has reclaimed with the reader live.
  while (ticks.load(std::memory_order_relaxed) == 0) std::this_thread::yield();

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  int applied = 0;
  for (; (applied < 300 || sw.reclaim_stats().reclaimed == 0) &&
         std::chrono::steady_clock::now() < deadline;
       ++applied) {
    FlowMod fm;
    fm.table_id = 0;
    fm.priority = static_cast<uint16_t>(100 + applied % 7);
    fm.match.set(FieldId::kUdpDst, 0x8000 + applied % 7);
    fm.actions = {Action::output(2)};
    sw.apply(fm);
    fm.command = FlowMod::Cmd::kDelete;
    sw.apply(fm);
    if (applied % 16 == 15) std::this_thread::yield();
  }
  const auto reclaimed_live = sw.reclaim_stats().reclaimed;
  stop = true;
  reader.join();
  sw.unregister_worker(worker);
  EXPECT_EQ(anomalies.load(), 0u);
  EXPECT_GE(sw.update_stats().table_rebuilds, static_cast<uint64_t>(2 * applied));
  // Grace periods elapsed while the reader was running: the epoch layer
  // reclaimed rebuilt tables without any quiescence from the caller.
  EXPECT_GT(reclaimed_live, 0u);
}

TEST(Updates, RandomChurnStaysEquivalent) {
  Rng rng(31337);
  Eswitch sw;
  sw.install(Pipeline{});
  Pipeline ref;

  std::vector<FlowEntry> live;
  for (int op = 0; op < 400; ++op) {
    if (!live.empty() && rng.chance(1, 3)) {
      const size_t k = rng.below(live.size());
      FlowMod fm;
      fm.command = FlowMod::Cmd::kDelete;
      fm.table_id = 0;
      fm.priority = live[k].priority;
      fm.match = live[k].match;
      sw.apply(fm);
      ref.table(0).remove(live[k].match, live[k].priority);
      live[k] = live.back();
      live.pop_back();
    } else {
      Match m;
      if (rng.chance(2, 3)) m.set(FieldId::kUdpDst, rng.below(40));
      if (rng.chance(1, 4)) m.set(FieldId::kIpSrc, rng.below(4));
      FlowMod fm;
      fm.table_id = 0;
      fm.priority = static_cast<uint16_t>(rng.below(1000));
      fm.match = m;
      fm.actions = {Action::output(static_cast<uint32_t>(rng.below(6)))};
      sw.apply(fm);
      FlowEntry e;
      e.match = fm.match;
      e.priority = fm.priority;
      e.actions = fm.actions;
      ref.table(0).add(e);
      live.push_back(e);
    }

    if (op % 20 == 0) {
      for (int q = 0; q < 40; ++q) {
        auto spec = test::udp_spec(static_cast<uint32_t>(rng.below(5)), 2, 9,
                                   static_cast<uint16_t>(rng.below(42)));
        auto p1 = make_packet(spec);
        auto p2 = make_packet(spec);
        ASSERT_EQ(sw.process(p1), ref.run(p2)) << "op " << op;
      }
    }
  }
}

}  // namespace
}  // namespace esw
