#include <gtest/gtest.h>

#include "perf/cachesim.hpp"
#include "perf/costmodel.hpp"
#include "perf/replay.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using namespace esw::perf;

TEST(CacheSim, HitAfterFill) {
  CacheSim sim;
  EXPECT_EQ(sim.access(0x1000), 4);  // cold: memory
  EXPECT_EQ(sim.access(0x1000), 1);  // now L1
  EXPECT_EQ(sim.counters().mem_accesses, 1u);
  EXPECT_EQ(sim.counters().l1_hits, 1u);
}

TEST(CacheSim, LruEvictionWithinSet) {
  // Tiny L1: 2 sets x 2 ways.
  CacheHierarchyConfig cfg;
  cfg.l1 = {2 * 2 * 64, 2, 4};
  cfg.l2 = {4 * 4 * 64, 4, 12};
  cfg.l3 = {16 * 8 * 64, 8, 29};
  CacheSim sim(cfg);

  // Three lines mapping to set 0 (line % 2 == 0): A, B, C.
  sim.access(0);  // A mem
  sim.access(2);  // B mem
  sim.access(0);  // A L1 (refreshes LRU)
  sim.access(4);  // C: evicts B (LRU)
  EXPECT_EQ(sim.access(0), 1);  // A still L1
  EXPECT_EQ(sim.access(2), 2);  // B fell to L2
}

TEST(CacheSim, WorkingSetDrivesLevel) {
  // A working set larger than L1 but within L2 settles at L2 hit latency.
  CacheSim sim;  // Table 1 defaults: L1 = 512 lines
  const uint64_t kLines = 4096;  // 256 KB = L2-sized
  for (int pass = 0; pass < 4; ++pass)
    for (uint64_t i = 0; i < kLines; ++i) sim.access(i * 7919);
  sim.clear_counters();
  uint64_t l2_or_better = 0;
  for (uint64_t i = 0; i < kLines; ++i)
    if (sim.access(i * 7919) <= 2) ++l2_or_better;
  EXPECT_GT(l2_or_better, kLines * 7 / 10);
}

TEST(CostModel, GatewayReproducesPaperNumbers) {
  // §4.4: 166 + 3·Lx -> 178 / 202 / 253 cycles; 11.2 / 9.9 / 7.9 Mpps @ 2GHz.
  const CostModel m = CostModel::gateway_model();
  EXPECT_EQ(m.fixed_cycles(), 166u);
  EXPECT_EQ(m.variable_accesses(), 3u);
  EXPECT_EQ(m.cycles(4), 178u);
  EXPECT_EQ(m.cycles(12), 202u);
  EXPECT_EQ(m.cycles(29), 253u);
  EXPECT_NEAR(m.pps(2.0, 4) / 1e6, 11.2, 0.05);
  EXPECT_NEAR(m.pps(2.0, 12) / 1e6, 9.9, 0.05);
  EXPECT_NEAR(m.pps(2.0, 29) / 1e6, 7.9, 0.05);
}

TEST(CostModel, BoundsAreOrdered) {
  CostModel m;
  m.add_pkt_io();
  m.add_parser();
  m.add_hash_stage("t0");
  m.add_lpm_stage("rib");
  m.add_action_stage();
  EXPECT_LT(m.cycles(4), m.cycles(12));
  EXPECT_LT(m.cycles(12), m.cycles(29));
  EXPECT_GT(m.pps(2.0, 4), m.pps(2.0, 29));
  EXPECT_EQ(m.stages().size(), 6u);
}

TEST(CostModel, DirectCodeChargesNoDataAccesses) {
  CostModel m;
  m.add_direct_stage("acl", 4);
  EXPECT_EQ(m.variable_accesses(), 0u);
  EXPECT_GT(m.fixed_cycles(), 0u);
}

TEST(Replay, CountsLlcMisses) {
  std::vector<net::FlowSpec> flows(1);
  flows[0].pkt = test::udp_spec(1, 2, 3, 4);
  const auto traffic = net::TrafficSet::from_flows(flows);

  // A function that touches a huge strided region every packet: the cache
  // simulator must report sustained LLC misses.
  uint64_t i = 0;
  auto thrash = [&](net::Packet&, MemTrace* trace) {
    for (int k = 0; k < 8; ++k)
      trace->touch(reinterpret_cast<void*>(((i * 8 + k) % 3000000) * 6400), 8);
    ++i;
  };
  const auto bad = run_cache_replay(thrash, traffic, 2000, 100, 100);
  EXPECT_GT(bad.llc_misses_per_pkt, 4.0);

  // A function that touches one line: everything lands in L1.
  static uint64_t sink;
  auto tight = [&](net::Packet&, MemTrace* trace) { trace->touch(&sink, 8); };
  const auto good = run_cache_replay(tight, traffic, 2000, 100, 100);
  EXPECT_LT(good.llc_misses_per_pkt, 0.01);
  EXPECT_GT(good.l1_hit_fraction, 0.99);
  EXPECT_LT(good.est_cycles_per_pkt, bad.est_cycles_per_pkt);
}

}  // namespace
}  // namespace esw
