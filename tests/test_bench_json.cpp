// The BENCH_*.json emitter must stay machine-readable: emit -> parse ->
// field-identical, and the google-benchmark digest must survive real output
// shapes (ArgNames suffixes, aggregate rows, flattened counters).
#include <gtest/gtest.h>

#include "perf/bench_json.hpp"

namespace esw::perf {
namespace {

// ---------- generic Json value ----------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_EQ(Json::parse("null")->kind(), Json::Kind::kNull);
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2")->as_number(), -1250.0);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParsesEscapesAndUnicode) {
  const auto j = Json::parse(R"("a\"b\\c\n\tAé")");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->as_string(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(Json, ParsesNestedStructures) {
  const auto j = Json::parse(R"({"a": [1, 2, {"b": true}], "c": {}})");
  ASSERT_TRUE(j.has_value());
  const Json* a = j->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[0].as_number(), 1.0);
  EXPECT_TRUE(a->items()[2].find("b")->as_bool());
  EXPECT_EQ(j->find("c")->members().size(), 0u);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::parse("tru").has_value());
  EXPECT_FALSE(Json::parse("1 trailing").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
}

TEST(Json, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Json::parse(deep).has_value());
}

TEST(Json, DumpParsesBackIdentically) {
  const char* src = R"({"name": "BM_X/flows:10", "pps": 1234567.5, "ok": true})";
  const auto j = Json::parse(src);
  ASSERT_TRUE(j.has_value());
  const auto j2 = Json::parse(j->dump());
  ASSERT_TRUE(j2.has_value());
  EXPECT_EQ(j2->string_or("name", ""), "BM_X/flows:10");
  EXPECT_DOUBLE_EQ(j2->number_or("pps", 0), 1234567.5);
  EXPECT_TRUE(j2->find("ok")->as_bool());
}

// ---------- esw-bench-v1 round trip -----------------------------------------

BenchReport sample_report() {
  BenchReport r;
  r.figure = "fig10";
  r.title = "l2";
  r.git_sha = "deadbeefcafe";
  BenchSeries s;
  s.name = "BM_Fig10_L2";
  BenchPoint p1;
  p1.label = "size:1000/flows:100/es:1";
  p1.x = 1;
  p1.pps = 12.5e6;
  p1.cycles_per_pkt = 240.25;
  p1.counters = {{"pps", 12.5e6}, {"cycles_per_pkt", 240.25}, {"real_time", 0.05}};
  BenchPoint p2;
  p2.label = "size:1000/flows:100/es:0";
  p2.x = 0;
  p2.pps = 1.9e6;
  p2.cycles_per_pkt = 1571.0;
  s.points = {p1, p2};
  r.series = {s};
  return r;
}

TEST(BenchReport, EmitParseRoundTrip) {
  const BenchReport orig = sample_report();
  const std::string json = report_to_json(orig);
  const auto parsed = report_from_json(json);
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->figure, orig.figure);
  EXPECT_EQ(parsed->title, orig.title);
  EXPECT_EQ(parsed->git_sha, orig.git_sha);
  ASSERT_EQ(parsed->series.size(), 1u);
  EXPECT_EQ(parsed->series[0].name, "BM_Fig10_L2");
  ASSERT_EQ(parsed->series[0].points.size(), 2u);

  const BenchPoint& p = parsed->series[0].points[0];
  EXPECT_EQ(p.label, "size:1000/flows:100/es:1");
  EXPECT_DOUBLE_EQ(p.x, 1);
  EXPECT_DOUBLE_EQ(p.pps, 12.5e6);
  EXPECT_DOUBLE_EQ(p.cycles_per_pkt, 240.25);
  ASSERT_EQ(p.counters.size(), 3u);
  EXPECT_DOUBLE_EQ(p.counters.at("real_time"), 0.05);
  EXPECT_DOUBLE_EQ(parsed->series[0].points[1].pps, 1.9e6);
}

TEST(BenchReport, EmitsSchemaIdAndStableFields) {
  const std::string json = report_to_json(sample_report());
  const auto doc = Json::parse(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("schema", ""), kBenchSchemaId);
  EXPECT_EQ(doc->string_or("figure", ""), "fig10");
  EXPECT_EQ(doc->string_or("git_sha", ""), "deadbeefcafe");
  const Json* series = doc->find("series");
  ASSERT_NE(series, nullptr);
  const Json* point = &series->items()[0].find("points")->items()[0];
  // Every point must carry the stable quartet the trajectory diffs.
  EXPECT_NE(point->find("label"), nullptr);
  EXPECT_NE(point->find("x"), nullptr);
  EXPECT_NE(point->find("pps"), nullptr);
  EXPECT_NE(point->find("cycles_per_pkt"), nullptr);
}

TEST(BenchReport, RejectsWrongSchemaOrShape) {
  EXPECT_FALSE(report_from_json("{}").has_value());
  EXPECT_FALSE(report_from_json(R"({"schema": "other", "series": []})").has_value());
  EXPECT_FALSE(
      report_from_json(R"({"schema": "esw-bench-v1", "series": 7})").has_value());
  EXPECT_FALSE(report_from_json("not json at all").has_value());
}

// ---------- google-benchmark digestion ---------------------------------------

TEST(BenchReport, DigestsGoogleBenchmarkOutput) {
  const char* gb = R"({
    "context": {"date": "2026-07-29", "host_name": "ci"},
    "benchmarks": [
      {"name": "BM_Fig10_L2/size:1/flows:10/es:1/iterations:1",
       "run_type": "iteration",
       "iterations": 1, "real_time": 5.1e7, "time_unit": "ns",
       "pps": 1.25e7, "cycles_per_pkt": 240.5},
      {"name": "BM_Fig10_L2/size:1/flows:10/es:0", "run_type": "iteration",
       "iterations": 1, "real_time": 6.0e7, "time_unit": "ns",
       "pps": 2.0e6, "cycles_per_pkt": 1500.0},
      {"name": "BM_Fig10_L2/size:1/flows:10/es:1", "run_type": "aggregate",
       "aggregate_name": "mean", "pps": 1.25e7},
      {"name": "BM_Other", "run_type": "iteration", "iterations": 3,
       "real_time": 100.0}
    ]
  })";
  const auto r = report_from_google_benchmark(gb, "fig10", "l2", "abc123");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->figure, "fig10");
  EXPECT_EQ(r->git_sha, "abc123");
  ASSERT_EQ(r->series.size(), 2u);

  const BenchSeries& s = r->series[0];
  EXPECT_EQ(s.name, "BM_Fig10_L2");
  ASSERT_EQ(s.points.size(), 2u);  // aggregate row dropped
  EXPECT_EQ(s.points[0].label, "size:1/flows:10/es:1/iterations:1");
  EXPECT_DOUBLE_EQ(s.points[0].x, 1);  // last sweep arg (es:1); modifiers skipped
  EXPECT_DOUBLE_EQ(s.points[0].pps, 1.25e7);
  EXPECT_DOUBLE_EQ(s.points[0].cycles_per_pkt, 240.5);
  EXPECT_DOUBLE_EQ(s.points[0].counters.at("real_time"), 5.1e7);

  EXPECT_EQ(r->series[1].name, "BM_Other");
  EXPECT_EQ(r->series[1].points[0].label, "");
  EXPECT_DOUBLE_EQ(r->series[1].points[0].pps, 0);

  // The digest must itself round-trip through the stable schema.
  const auto r2 = report_from_json(report_to_json(*r));
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->series.size(), r->series.size());
  EXPECT_DOUBLE_EQ(r2->series[0].points[1].cycles_per_pkt, 1500.0);
}

TEST(BenchReport, RejectsNonBenchmarkInput) {
  EXPECT_FALSE(report_from_google_benchmark("[]", "f", "t", "s").has_value());
  EXPECT_FALSE(report_from_google_benchmark("{\"benchmarks\": 1}", "f", "t", "s")
                   .has_value());
}

// ---------- latency_ns block (additive schema extension) ---------------------

std::map<std::string, double> full_latency_block() {
  return {{"p50", 100.0}, {"p90", 200.0}, {"p99", 400.0},
          {"p999", 900.0}, {"max", 2500.0}};
}

TEST(BenchReport, LatencyBlockRoundTrips) {
  BenchReport r = sample_report();
  r.series[0].points[0].latency_ns = full_latency_block();
  const auto parsed = report_from_json(report_to_json(r));
  ASSERT_TRUE(parsed.has_value());
  const BenchPoint& p = parsed->series[0].points[0];
  ASSERT_EQ(p.latency_ns.size(), 5u);
  EXPECT_DOUBLE_EQ(p.latency_ns.at("p999"), 900.0);
  EXPECT_DOUBLE_EQ(p.latency_ns.at("max"), 2500.0);
  // The block is optional: a point without one parses back without one.
  EXPECT_TRUE(parsed->series[0].points[1].latency_ns.empty());
}

TEST(BenchReport, DigestLiftsLatencyCountersIntoBlock) {
  const char* gb = R"({
    "context": {"date": "2026-08-08"},
    "benchmarks": [
      {"name": "BM_Fig16_Latency/flows:10/es:1", "run_type": "iteration",
       "iterations": 1, "real_time": 1.0e6, "time_unit": "ns",
       "pps": 3.0e6, "latency_ns_p50": 110.0, "latency_ns_p90": 210.0,
       "latency_ns_p99": 410.0, "latency_ns_p999": 910.0,
       "latency_ns_max": 5000.0, "latency_samples": 123456.0}
    ]
  })";
  const auto r = report_from_google_benchmark(gb, "fig16", "latency", "sha");
  ASSERT_TRUE(r.has_value());
  const BenchPoint& p = r->series[0].points[0];
  // Lifted into the structured block...
  ASSERT_EQ(p.latency_ns.size(), 5u);
  EXPECT_DOUBLE_EQ(p.latency_ns.at("p50"), 110.0);
  EXPECT_DOUBLE_EQ(p.latency_ns.at("p999"), 910.0);
  // ...while the flat counters stay (additive schema: nothing removed).
  EXPECT_DOUBLE_EQ(p.counters.at("latency_ns_p999"), 910.0);
  EXPECT_DOUBLE_EQ(p.counters.at("latency_samples"), 123456.0);
  // And the lifted block survives the stable-schema round trip.
  const auto r2 = report_from_json(report_to_json(*r));
  ASSERT_TRUE(r2.has_value());
  EXPECT_DOUBLE_EQ(r2->series[0].points[0].latency_ns.at("max"), 5000.0);
}

// ---------- validate_report (the `run_all --check` contracts) ----------------

TEST(ValidateReport, AcceptsCleanReportAndLatencyBlock) {
  BenchReport r = sample_report();
  r.series[0].points[0].counters["trace"] = 0;
  r.series[0].points[1].counters["trace"] = 1;
  r.series[0].points[0].latency_ns = full_latency_block();
  EXPECT_TRUE(validate_report(r).empty());
}

TEST(ValidateReport, RejectsIncompleteLatencyBlock) {
  BenchReport r = sample_report();
  r.figure = "fig16";  // not trace-gated; isolates the latency contract
  r.series[0].points[0].latency_ns = full_latency_block();
  r.series[0].points[0].latency_ns.erase("p999");
  const auto errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("p999"), std::string::npos);
}

TEST(ValidateReport, RejectsNonMonotoneLatencyBlock) {
  BenchReport r = sample_report();
  r.figure = "fig16";
  r.series[0].points[0].latency_ns = full_latency_block();
  r.series[0].points[0].latency_ns["p99"] = 150.0;  // below p90
  const auto errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("non-monotone"), std::string::npos);
}

TEST(ValidateReport, RejectsFlatCountersWithoutBlock) {
  // A digester that drops the block while the flat counters exist would
  // silently lose the percentile data downstream.
  BenchReport r = sample_report();
  r.figure = "fig16";
  r.series[0].points[0].counters["latency_ns_p50"] = 100.0;
  const auto errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("block missing"), std::string::npos);
}

TEST(ValidateReport, ChaosPointRequiresDegradationCounters) {
  // A chaos-marked point (failpoints armed during the measurement) must carry
  // the full degradation quartet; losing one would blind the chaos legs.
  BenchReport r = sample_report();
  r.figure = "fig16";
  auto& c = r.series[0].points[0].counters;
  c["chaos"] = 1;
  c["pool_exhausted"] = 0;
  c["jit_fallbacks"] = 3;
  c["mods_refused_table_full"] = 0;
  // backpressure_events deliberately missing
  const auto errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("backpressure_events"), std::string::npos);

  c["backpressure_events"] = 2;
  EXPECT_TRUE(validate_report(r).empty());
}

TEST(ValidateReport, NonChaosPointNeedsNoDegradationCounters) {
  BenchReport r = sample_report();
  r.figure = "fig16";
  r.series[0].points[0].counters["chaos"] = 0;  // marked, not armed
  EXPECT_TRUE(validate_report(r).empty());      // second point: unmarked
}

BenchReport fig19_report() {
  BenchReport r;
  r.figure = "fig19";
  r.title = "multicore";
  r.git_sha = "sha";
  BenchSeries s;
  s.name = "BM_Fig19_MultiCore";
  BenchPoint p;
  p.label = "workers:2/flows:100/es:1/churn:1";
  p.pps = 10e6;
  p.counters = {{"threads", 2}, {"pps_w0", 5e6}, {"pps_w1", 5e6}};
  p.latency_ns = full_latency_block();
  s.points = {p};
  r.series = {s};
  return r;
}

TEST(ValidateReport, AcceptsWellFormedFig19) {
  EXPECT_TRUE(validate_report(fig19_report()).empty());
}

TEST(ValidateReport, RejectsFig19MissingWorkerRate) {
  BenchReport r = fig19_report();
  r.series[0].points[0].counters.erase("pps_w1");
  const auto errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("pps_w1"), std::string::npos);
}

TEST(ValidateReport, RejectsFig19WorkerSumMismatch) {
  BenchReport r = fig19_report();
  r.series[0].points[0].counters["pps_w1"] = 1e6;  // sum 6e6 vs aggregate 10e6
  const auto errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("aggregate"), std::string::npos);
}

TEST(ValidateReport, RejectsFig19ChurnPointWithoutLatency) {
  BenchReport r = fig19_report();
  r.series[0].points[0].latency_ns.clear();
  const auto errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("latency_ns"), std::string::npos);
  // The same point without churn is fine: the block is only required where
  // tail-under-update-load is the figure's claim.
  r.series[0].points[0].label = "workers:2/flows:100/es:1/churn:0";
  EXPECT_TRUE(validate_report(r).empty());
}

TEST(ValidateReport, RejectsMalformedFusionPoint) {
  // The fusion figure's CI gate divides a fused point's pps by a staged
  // point's; a point without the boolean `fused` tag (or without throughput)
  // makes the ratio meaningless, so --check must refuse the report.
  BenchReport r = sample_report();
  r.figure = "fusion";
  r.series[0].points[0].counters["fused"] = 1;
  // points[1] carries no fused counter at all
  auto errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("fused"), std::string::npos);
  // A non-boolean tag is rejected too.
  r.series[0].points[1].counters["fused"] = 2;
  errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("0 or 1"), std::string::npos);
  // Well-formed: both points tagged.
  r.series[0].points[1].counters["fused"] = 0;
  EXPECT_TRUE(validate_report(r).empty());
  // A fusion point with no throughput is dead weight for the ratio gate.
  r.series[0].points[0].pps = 0;
  errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("throughput"), std::string::npos);
}

BenchReport scale_report() {
  BenchReport r;
  r.figure = "scale";
  r.title = "cuckoo";
  r.git_sha = "sha";
  BenchSeries s;
  s.name = "BM_Scale_CuckooMillionFlow";
  BenchPoint p;
  p.label = "entries:1000000";
  p.counters = {{"entries", 1e6},       {"build_seconds", 2.5},
                {"lookups_per_s", 8e6},  {"lines_per_lookup", 2.5},
                {"lookup_misses", 0},    {"memory_bytes", 9e7},
                {"grows", 10}};
  s.points = {p};
  r.series = {s};
  return r;
}

TEST(ValidateReport, RejectsMalformedScalePoint) {
  EXPECT_TRUE(validate_report(scale_report()).empty());
  // A point without the probe rate can't feed the 1M/100K ratio gate.
  BenchReport r = scale_report();
  r.series[0].points[0].counters.erase("lookups_per_s");
  auto errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("lookups_per_s"), std::string::npos);
  // Probe misses mean the table lost entries while growing.
  r = scale_report();
  r.series[0].points[0].counters["lookup_misses"] = 3;
  errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("misses"), std::string::npos);
  // An empty table measured nothing.
  r = scale_report();
  r.series[0].points[0].counters["entries"] = 0;
  errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("entries"), std::string::npos);
}

BenchReport churn_report() {
  BenchReport r;
  r.figure = "churn";
  r.title = "flowmods";
  r.git_sha = "sha";
  BenchSeries s;
  s.name = "BM_Churn_BatchedFlowMods";
  BenchPoint p;
  p.label = "mods_per_s:100000";
  p.pps = 10e6;
  p.counters = {{"threads", 2},
                {"pps_w0", 5e6},
                {"pps_w1", 5e6},
                {"churn_target", 100000},
                {"churn_mods_per_s", 99000}};
  p.latency_ns = full_latency_block();
  s.points = {p};
  r.series = {s};
  return r;
}

TEST(ValidateReport, RejectsMalformedChurnPoint) {
  EXPECT_TRUE(validate_report(churn_report()).empty());
  // The fig19 worker discipline applies: every worker's rate must be there.
  BenchReport r = churn_report();
  r.series[0].points[0].counters.erase("pps_w1");
  auto errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("pps_w1"), std::string::npos);
  // A nonzero target that applied no mods measured the wrong thing.
  r = churn_report();
  r.series[0].points[0].counters["churn_mods_per_s"] = 0;
  errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("no mods"), std::string::npos);
  // Tail-under-update-load is the claim: the percentile block is mandatory.
  r = churn_report();
  r.series[0].points[0].latency_ns.clear();
  errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("latency_ns"), std::string::npos);
}

TEST(ValidateReport, RejectsMissingTraceMarker) {
  BenchReport r = sample_report();  // fig10
  r.series[0].points[0].counters["trace"] = 0;
  // points[1] carries no trace counter at all
  auto errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("trace"), std::string::npos);
  // A non-0/1 marker is rejected too.
  r.series[0].points[1].counters["trace"] = 2;
  errs = validate_report(r);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("0 or 1"), std::string::npos);
}

}  // namespace
}  // namespace esw::perf
