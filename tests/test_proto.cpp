#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "proto/build.hpp"
#include "proto/checksum.hpp"
#include "proto/headers.hpp"
#include "proto/parse.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using namespace esw::proto;
using test::make_packet;

TEST(Parse, UntaggedUdp) {
  auto p = make_packet(test::udp_spec(0x0A000001, 0x0A000002, 1111, 53));
  ParseInfo pi;
  parse(p.data(), p.len(), ParserPlan::full(), pi);
  EXPECT_TRUE(pi.has(kProtoEth));
  EXPECT_TRUE(pi.has(kProtoIpv4));
  EXPECT_TRUE(pi.has(kProtoUdp));
  EXPECT_FALSE(pi.has(kProtoVlan));
  EXPECT_FALSE(pi.has(kProtoTcp));
  EXPECT_EQ(pi.l2_off, 0);
  EXPECT_EQ(pi.l3_off, 14);
  EXPECT_EQ(pi.l4_off, 34);
  EXPECT_EQ(pi.payload_off, 42);
}

TEST(Parse, VlanShiftsOffsets) {
  auto spec = test::tcp_spec(1, 2, 10, 80);
  spec.vlan_vid = 42;
  spec.vlan_pcp = 5;
  auto p = make_packet(spec);
  ParseInfo pi;
  parse(p.data(), p.len(), ParserPlan::full(), pi);
  EXPECT_TRUE(pi.has(kProtoVlan));
  EXPECT_TRUE(pi.has(kProtoTcp));
  EXPECT_EQ(pi.l3_off, 18);
  EXPECT_EQ(pi.l4_off, 38);
  // Effective ethertype is always 2 bytes before L3.
  EXPECT_EQ(load_be16(p.data() + pi.l3_off - 2), kEtherTypeIpv4);
  // TCI is 4 bytes before L3.
  const uint16_t tci = load_be16(p.data() + pi.l3_off - 4);
  EXPECT_EQ(tci & kVlanVidMask, 42);
  EXPECT_EQ(tci >> kVlanPcpShift, 5);
}

TEST(Parse, Arp) {
  PacketSpec s;
  s.kind = PacketKind::kArp;
  s.arp_op = 2;
  auto p = make_packet(s);
  ParseInfo pi;
  parse(p.data(), p.len(), ParserPlan::full(), pi);
  EXPECT_TRUE(pi.has(kProtoArp));
  EXPECT_FALSE(pi.has(kProtoIpv4));
  EXPECT_EQ(load_be16(p.data() + pi.l3_off + kArpOpOff), 2);
}

TEST(Parse, Icmp) {
  PacketSpec s;
  s.kind = PacketKind::kIcmp;
  s.icmp_type = 8;
  auto p = make_packet(s);
  ParseInfo pi;
  parse(p.data(), p.len(), ParserPlan::full(), pi);
  EXPECT_TRUE(pi.has(kProtoIcmp));
}

TEST(Parse, PlanStopsAtRequestedLayer) {
  auto p = make_packet(test::udp_spec(1, 2, 3, 4));
  ParseInfo pi;
  parse(p.data(), p.len(), ParserPlan::l2_only(), pi);
  EXPECT_TRUE(pi.has(kProtoEth));
  EXPECT_FALSE(pi.has(kProtoIpv4));
  parse(p.data(), p.len(), ParserPlan::up_to_l3(), pi);
  EXPECT_TRUE(pi.has(kProtoIpv4));
  EXPECT_FALSE(pi.has(kProtoUdp));
}

TEST(Parse, TruncatedFramesAreSafe) {
  auto p = make_packet(test::tcp_spec(1, 2, 3, 4));
  for (uint32_t len = 0; len < p.len(); ++len) {
    ParseInfo pi;
    parse(p.data(), len, ParserPlan::full(), pi);  // must not crash
    if (len < 14) {
      EXPECT_EQ(pi.proto_mask, 0u);
    }
  }
}

TEST(Parse, FragmentHasNoL4) {
  auto p = make_packet(test::udp_spec(1, 2, 3, 4));
  ParseInfo pi;
  // Set fragment offset to 100 and fix the checksum.
  uint8_t* iph = p.data() + 14;
  store_be16(iph + kIpv4FlagsFragOff, 100);
  store_be16(iph + kIpv4ChecksumOff, 0);
  store_be16(iph + kIpv4ChecksumOff, ipv4_header_checksum(iph, 20));
  parse(p.data(), p.len(), ParserPlan::full(), pi);
  EXPECT_TRUE(pi.has(kProtoIpv4));
  EXPECT_FALSE(pi.has(kProtoUdp));
}

TEST(Checksum, BuilderEmitsValidChecksums) {
  for (auto kind : {PacketKind::kTcp, PacketKind::kUdp, PacketKind::kIcmp}) {
    PacketSpec s;
    s.kind = kind;
    s.ip_src = 0xC0A80101;
    s.ip_dst = 0x08080808;
    auto p = make_packet(s);
    ParseInfo pi;
    parse(p.data(), p.len(), ParserPlan::full(), pi);
    const uint8_t* iph = p.data() + pi.l3_off;
    // Recomputing over the header including the checksum field must give 0.
    EXPECT_EQ(checksum(iph, 20), 0) << "kind " << int(kind);
    const uint32_t l4_len = load_be16(iph + kIpv4TotalLenOff) - 20;
    if (kind == PacketKind::kIcmp) {
      EXPECT_EQ(checksum(p.data() + pi.l4_off, l4_len), 0);
    } else {
      // Pseudo-header sum including stored checksum must be zero.
      const uint16_t stored = kind == PacketKind::kTcp
                                  ? load_be16(p.data() + pi.l4_off + kTcpChecksumOff)
                                  : load_be16(p.data() + pi.l4_off + kUdpChecksumOff);
      ASSERT_NE(stored, 0);
      EXPECT_EQ(l4_checksum_ipv4(s.ip_src, s.ip_dst,
                                 kind == PacketKind::kTcp ? kIpProtoTcp : kIpProtoUdp,
                                 p.data() + pi.l4_off, l4_len),
                0);
    }
  }
}

TEST(Checksum, IncrementalUpdateMatchesRecompute) {
  auto p = make_packet(test::udp_spec(0x0A000001, 0x0A000002, 5, 6));
  uint8_t* iph = p.data() + 14;
  const uint16_t old_csum = load_be16(iph + kIpv4ChecksumOff);
  const uint32_t old_src = load_be32(iph + kIpv4SrcOff);
  const uint32_t new_src = 0xC0000201;
  store_be32(iph + kIpv4SrcOff, new_src);
  const uint16_t incr = checksum_update32(old_csum, old_src, new_src);
  store_be16(iph + kIpv4ChecksumOff, 0);
  const uint16_t full = ipv4_header_checksum(iph, 20);
  EXPECT_EQ(incr, full);
}

TEST(Checksum, Rfc1071Example) {
  // Canonical example from RFC 1071 §3.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(checksum_finish(checksum_partial(data, sizeof data)),
            static_cast<uint16_t>(~0xddf2 & 0xFFFF));
}

TEST(Build, RejectsOversizedPacket) {
  PacketSpec s;
  s.payload_len = 60000;
  uint8_t buf[128];
  EXPECT_EQ(build_packet(s, buf, sizeof buf), 0u);
}

TEST(Build, VlanRoundTrip) {
  auto spec = test::udp_spec(7, 8, 9, 10);
  spec.vlan_vid = 100;
  auto p = make_packet(spec);
  ParseInfo pi;
  parse(p.data(), p.len(), ParserPlan::full(), pi);
  EXPECT_TRUE(pi.has(kProtoVlan));
  EXPECT_EQ(load_be16(p.data() + kEthTypeOff), kEtherTypeVlan);
}

}  // namespace
}  // namespace esw
