// The differential oracle end to end: seeded campaigns prove the three
// execution paths (ES with JIT, ES interpreted, the OVS-model baseline) agree
// on arbitrary pipelines and traffic; a planted fault proves the minimizer
// finds the shortest failing prefix and emits a replayable pcap+DSL artifact.
//
// Scale knobs (all env-overridable so CI legs can size the run):
//   ESW_DIFF_CAMPAIGNS  seeded campaigns            (default 10)
//   ESW_DIFF_PIPELINES  pipelines per campaign      (default 6 -> 60 total)
//   ESW_DIFF_PACKETS    packets per pipeline        (default 10000)
//   ESW_TEST_SEED       base seed override (see testing/seed.hpp)
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "testing/diff_runner.hpp"
#include "testing/pipeline_gen.hpp"
#include "testing/seed.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using esw::testing::DiffOptions;
using esw::testing::DiffRunner;
using esw::testing::DiffTrace;
using esw::testing::GeneratedWorkload;
using esw::testing::GenOptions;
using esw::testing::PipelineGen;

uint32_t env_u32(const char* name, uint32_t def) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return def;
  const unsigned long v = std::strtoul(s, nullptr, 0);
  return v > 0 ? static_cast<uint32_t>(v) : def;
}

// The acceptance gate: N seeded campaigns, zero divergences across all three
// paths.  Defaults satisfy "10 campaigns, >= 50 pipelines, >= 10K packets
// per pipeline".
TEST(DiffOracle, SeededCampaignsFindNoDivergence) {
  const uint64_t base_seed =
      esw::testing::test_seed(0xD1FF04AC1Eull, "diff-oracle campaigns");
  const uint32_t campaigns = env_u32("ESW_DIFF_CAMPAIGNS", 10);
  const uint32_t pipelines = env_u32("ESW_DIFF_PIPELINES", 6);
  const uint32_t packets = env_u32("ESW_DIFF_PACKETS", 10000);

  const std::string artifacts = ::testing::TempDir() + "esw_diff_artifacts";
  DiffOptions opts;
  opts.artifact_dir = artifacts;
  DiffRunner runner(opts);

  uint64_t total_pipelines = 0, total_packets = 0;
  for (uint32_t c = 0; c < campaigns; ++c) {
    DiffRunner::CampaignStats cs;
    const auto d = runner.campaign(base_seed + c, pipelines, packets, {}, &cs);
    total_pipelines += cs.pipelines;
    total_packets += cs.packets;
    ASSERT_FALSE(d.has_value())
        << "campaign seed=" << base_seed + c << " diverged on " << d->description
        << "\n  kind=" << d->kind << " prefix=" << d->prefix_len
        << "\n  detail: " << d->detail << "\n  repro: " << d->rules_path << " + "
        << d->pcap_path;
  }
  std::printf("[diff-oracle] %llu pipelines, %llu packets x 3 paths, 0 divergences\n",
              static_cast<unsigned long long>(total_pipelines),
              static_cast<unsigned long long>(total_packets));
  // Acceptance floor — only meaningful when nothing scaled the run down.
  const bool default_scale = std::getenv("ESW_DIFF_CAMPAIGNS") == nullptr &&
                             std::getenv("ESW_DIFF_PIPELINES") == nullptr &&
                             std::getenv("ESW_DIFF_PACKETS") == nullptr;
  if (default_scale) {
    EXPECT_GE(total_pipelines, 50u);
    EXPECT_GE(total_packets, total_pipelines * 10000u);
  }
}

// Generator sanity: deterministic under a fixed seed, and a modest draw
// covers every table shape the template space has.
TEST(DiffOracle, GeneratorIsSeedDeterministicAndCoversShapes) {
  PipelineGen a(123), b(123);
  std::string shapes;
  for (int i = 0; i < 20; ++i) {
    const GeneratedWorkload wa = a.next_pipeline();
    const GeneratedWorkload wb = b.next_pipeline();
    EXPECT_EQ(wa.description, wb.description);
    ASSERT_FALSE(wa.pipeline.validate().has_value()) << *wa.pipeline.validate();
    const auto fa = a.traffic(wa, 64, 16);
    const auto fb = b.traffic(wb, 64, 16);
    ASSERT_EQ(fa.size(), fb.size());
    for (size_t j = 0; j < fa.size(); ++j) {
      EXPECT_EQ(fa[j].in_port, fb[j].in_port);
      EXPECT_EQ(fa[j].pkt.ip_dst, fb[j].pkt.ip_dst);
    }
    shapes += wa.description;
  }
  for (const char* shape : {"hash:", "lpm:", "range:", "direct:", "tuple:", "acl:"})
    EXPECT_NE(shapes.find(shape), std::string::npos)
        << "20 pipelines never drew shape " << shape;
}

// spec_for_match must actually satisfy satisfiable matches: synthesize a
// packet from each entry of a hash-shaped table and check it matches.
TEST(DiffOracle, SpecForMatchSatisfiesExactMatches) {
  Rng rng(7);
  flow::Match m;
  m.set(flow::FieldId::kIpDst, 0x0A0B0C0D);
  m.set(flow::FieldId::kUdpDst, 4789);
  for (int i = 0; i < 32; ++i) {
    const net::FlowSpec fs = esw::testing::spec_for_match(m, rng);
    const net::Packet p = test::make_packet(fs.pkt, fs.in_port);
    const proto::ParseInfo pi = test::parse_packet(p);
    EXPECT_TRUE(m.matches_packet(p.data(), pi));
  }
}

// A planted fault in the ES-JIT verdict stream must be (a) detected, (b)
// minimized to exactly the faulty packet's prefix via the binary search, and
// (c) dumped as a pcap+DSL artifact that loads back and reproduces the
// divergence under the same fault — the repro workflow, end to end.
TEST(DiffOracle, InjectedFaultMinimizesToReproArtifact) {
  const uint64_t seed =
      esw::testing::test_seed(0xFA17ull, "diff-oracle fault injection");
  PipelineGen gen(seed);
  const GeneratedWorkload wl = gen.next_pipeline();
  const DiffTrace trace = DiffTrace::from_flows(gen.traffic(wl, 5000, 64));

  // Clean run first: the workload itself must agree.
  {
    DiffRunner clean;
    const auto d = clean.run(wl.pipeline, wl.cfg, trace);
    ASSERT_FALSE(d.has_value()) << d->detail;
  }

  const size_t fault_at = 3123;
  const std::string dir = ::testing::TempDir() + "esw_fault_artifacts";
  std::filesystem::remove_all(dir);
  DiffOptions opts;
  opts.artifact_dir = dir;
  opts.fault = [fault_at](size_t idx, flow::Verdict v) {
    if (idx != fault_at) return v;
    return v.kind == flow::Verdict::Kind::kDrop ? flow::Verdict::output(7)
                                                : flow::Verdict::drop();
  };
  DiffRunner faulty(opts);
  const auto d = faulty.run(wl.pipeline, wl.cfg, trace, "planted");
  ASSERT_TRUE(d.has_value()) << "planted fault not detected";
  EXPECT_EQ(d->prefix_len, fault_at + 1) << "minimizer missed the faulty packet";
  EXPECT_EQ(d->kind, "verdict") << d->detail;
  ASSERT_FALSE(d->pcap_path.empty());
  ASSERT_FALSE(d->rules_path.empty());

  // The artifact loads back...
  std::string err;
  const auto art = esw::testing::load_repro(d->rules_path, d->pcap_path, &err);
  ASSERT_TRUE(art.has_value()) << err;
  EXPECT_EQ(art->trace.size(), fault_at + 1);
  EXPECT_EQ(art->cfg.enable_decomposition, wl.cfg.enable_decomposition);
  EXPECT_EQ(art->cfg.specialize_parser, wl.cfg.specialize_parser);
  ASSERT_EQ(art->pipeline.tables().size(), wl.pipeline.tables().size());
  for (size_t t = 0; t < art->pipeline.tables().size(); ++t)
    EXPECT_EQ(art->pipeline.tables()[t].size(), wl.pipeline.tables()[t].size());
  for (size_t i = 0; i < art->trace.size(); ++i) {
    ASSERT_EQ(art->trace.items[i].frame, trace.items[i].frame) << "frame " << i;
    ASSERT_EQ(art->trace.items[i].in_port, trace.items[i].in_port);
  }

  // ...and reproduces: under the same fault the replay diverges at the same
  // prefix; without the fault it is clean (the planted bug, not the dump, is
  // the divergence).
  DiffRunner replay_faulty(opts);
  const auto d2 = replay_faulty.run(art->pipeline, art->cfg, art->trace, "replay");
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->prefix_len, fault_at + 1);
  DiffRunner replay_clean;
  EXPECT_FALSE(replay_clean.run(art->pipeline, art->cfg, art->trace).has_value());
}

TEST(DiffOracle, EmptyTraceAgreesTrivially) {
  PipelineGen gen(5);
  const GeneratedWorkload wl = gen.next_pipeline();
  DiffRunner runner;
  EXPECT_FALSE(runner.run(wl.pipeline, wl.cfg, DiffTrace{}).has_value());
}

TEST(DiffOracle, LoadReproRejectsMalformedInputs) {
  std::string err;
  EXPECT_FALSE(esw::testing::load_repro("/nonexistent.rules", "/nonexistent.pcap", &err)
                   .has_value());
  EXPECT_FALSE(err.empty());

  const std::string dir = ::testing::TempDir();
  const std::string rules = dir + "esw_bad.rules";
  {
    std::FILE* f = std::fopen(rules.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("priority=1, actions=drop\n", f);  // rule before a table header
    std::fclose(f);
  }
  err.clear();
  EXPECT_FALSE(esw::testing::load_repro(rules, "/nonexistent.pcap", &err).has_value());
  EXPECT_NE(err.find("table header"), std::string::npos) << err;
  std::remove(rules.c_str());
}

}  // namespace
}  // namespace esw
