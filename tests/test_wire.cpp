#include <gtest/gtest.h>

#include "flow/wire.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using namespace esw::flow;

FlowMod sample_mod() {
  FlowMod fm;
  fm.command = FlowMod::Cmd::kAdd;
  fm.table_id = 3;
  fm.priority = 1234;
  fm.cookie = 0xDEADBEEFCAFEBABE;
  fm.xid = 77;
  fm.match.set(FieldId::kInPort, 2);
  fm.match.set(FieldId::kEthDst, 0x0A0B0C0D0E0F);
  fm.match.set(FieldId::kIpDst, test::ip("192.0.2.0"), 0xFFFFFF00);
  fm.match.set(FieldId::kVlanVid, 55);
  fm.match.set(FieldId::kTcpDst, 80);
  fm.actions = {Action::set_field(FieldId::kIpSrc, test::ip("10.1.1.1")),
                Action::dec_ttl(), Action::output(7)};
  fm.goto_table = 9;
  return fm;
}

TEST(Wire, FlowModRoundTrip) {
  const FlowMod fm = sample_mod();
  const auto bytes = encode_flow_mod(fm);
  ASSERT_GT(bytes.size(), 8u);
  EXPECT_EQ(openflow_frame_len(bytes.data(), bytes.size()), bytes.size());

  const FlowMod back = decode_flow_mod(bytes.data(), bytes.size());
  EXPECT_EQ(back.command, fm.command);
  EXPECT_EQ(back.table_id, fm.table_id);
  EXPECT_EQ(back.priority, fm.priority);
  EXPECT_EQ(back.cookie, fm.cookie);
  EXPECT_EQ(back.xid, fm.xid);
  EXPECT_TRUE(back.match == fm.match);
  EXPECT_EQ(back.actions, fm.actions);
  EXPECT_EQ(back.goto_table, fm.goto_table);
}

TEST(Wire, EncodesEveryField) {
  // Every field must survive a round trip individually.
  for (unsigned i = 0; i < kNumFields; ++i) {
    const FieldId f = static_cast<FieldId>(i);
    FlowMod fm;
    const uint64_t v = 1 + (i * 3) % 100;
    fm.match.set(f, v);
    const auto bytes = encode_flow_mod(fm);
    const FlowMod back = decode_flow_mod(bytes.data(), bytes.size());
    ASSERT_TRUE(back.match.has(f)) << field_info(f).name;
    EXPECT_EQ(back.match.value(f), v & field_full_mask(f)) << field_info(f).name;
  }
}

TEST(Wire, MaskedFieldsRoundTrip) {
  FlowMod fm;
  fm.match.set(FieldId::kIpSrc, 0x0A000000, 0xFF000000);
  fm.match.set(FieldId::kEthDst, 0x010000000000, 0x010000000000);  // multicast bit
  fm.match.set(FieldId::kMetadata, 0x12340000, 0xFFFF0000);
  const auto bytes = encode_flow_mod(fm);
  const FlowMod back = decode_flow_mod(bytes.data(), bytes.size());
  EXPECT_TRUE(back.match == fm.match);
}

TEST(Wire, ControllerAndFloodPorts) {
  FlowMod fm;
  fm.actions = {Action::to_controller()};
  auto back = decode_flow_mod(encode_flow_mod(fm).data(), encode_flow_mod(fm).size());
  ASSERT_EQ(back.actions.size(), 1u);
  EXPECT_EQ(back.actions[0].type, ActionType::kController);

  fm.actions = {Action::flood()};
  const auto bytes = encode_flow_mod(fm);
  back = decode_flow_mod(bytes.data(), bytes.size());
  EXPECT_EQ(back.actions[0].type, ActionType::kFlood);
}

TEST(Wire, PushVlanCarriesVidViaSetField) {
  FlowMod fm;
  fm.actions = {Action::push_vlan(42), Action::output(1)};
  const auto bytes = encode_flow_mod(fm);
  const FlowMod back = decode_flow_mod(bytes.data(), bytes.size());
  // push_vlan(42) decodes as push_vlan + set_field(vlan_vid=42).
  ASSERT_EQ(back.actions.size(), 3u);
  EXPECT_EQ(back.actions[0].type, ActionType::kPushVlan);
  EXPECT_EQ(back.actions[1], Action::set_field(FieldId::kVlanVid, 42));
  EXPECT_EQ(back.actions[2], Action::output(1));
}

TEST(Wire, DeleteCommand) {
  FlowMod fm;
  fm.command = FlowMod::Cmd::kDelete;
  fm.match.set(FieldId::kUdpDst, 53);
  const auto bytes = encode_flow_mod(fm);
  EXPECT_EQ(decode_flow_mod(bytes.data(), bytes.size()).command, FlowMod::Cmd::kDelete);
}

TEST(Wire, RejectsMalformedInput) {
  const FlowMod fm = sample_mod();
  auto bytes = encode_flow_mod(fm);
  EXPECT_THROW(decode_flow_mod(bytes.data(), 10), CheckError);
  bytes[0] = 0x01;  // wrong version
  EXPECT_THROW(decode_flow_mod(bytes.data(), bytes.size()), CheckError);
  EXPECT_EQ(openflow_frame_len(bytes.data(), 4), 0u);
}

TEST(Wire, FlowModFlagsRoundTrip) {
  FlowMod fm;
  fm.command = FlowMod::Cmd::kDelete;
  fm.flags = FlowMod::kFlagSendFlowRem;
  fm.match.set(FieldId::kEthDst, 0x0A0B0C0D0E0F);
  const auto bytes = encode_flow_mod(fm);
  const FlowMod back = decode_flow_mod(bytes.data(), bytes.size());
  EXPECT_EQ(back.flags, FlowMod::kFlagSendFlowRem);
  EXPECT_EQ(back.command, FlowMod::Cmd::kDelete);
}

// --- the full session message set: round trips through encode/decode --------

TEST(Wire, HelloEchoFeaturesBarrierRoundTrip) {
  const auto hello = encode_hello({7});
  EXPECT_EQ(std::get<Hello>(decode_message(hello.data(), hello.size())).xid, 7u);

  const EchoRequest echo{9, {0xAA, 0xBB, 0xCC}};
  const auto ebytes = encode_echo_request(echo);
  const auto eback = std::get<EchoRequest>(decode_message(ebytes.data(), ebytes.size()));
  EXPECT_EQ(eback.xid, 9u);
  EXPECT_EQ(eback.payload, echo.payload);

  const EchoReply erep{9, {0x01}};
  const auto rbytes = encode_echo_reply(erep);
  EXPECT_EQ(std::get<EchoReply>(decode_message(rbytes.data(), rbytes.size())).payload,
            erep.payload);

  FeaturesReply fr;
  fr.xid = 11;
  fr.datapath_id = 0xAABBCCDDEEFF0011ULL;
  fr.n_buffers = 256;
  fr.n_tables = 254;
  fr.capabilities = 0x47;
  const auto fbytes = encode_features_reply(fr);
  const auto fback =
      std::get<FeaturesReply>(decode_message(fbytes.data(), fbytes.size()));
  EXPECT_EQ(fback.datapath_id, fr.datapath_id);
  EXPECT_EQ(fback.n_buffers, fr.n_buffers);
  EXPECT_EQ(fback.n_tables, fr.n_tables);
  EXPECT_EQ(fback.capabilities, fr.capabilities);

  const auto freq = encode_features_request({13});
  EXPECT_EQ(std::get<FeaturesRequest>(decode_message(freq.data(), freq.size())).xid, 13u);
  const auto breq = encode_barrier_request({15});
  EXPECT_EQ(std::get<BarrierRequest>(decode_message(breq.data(), breq.size())).xid, 15u);
  const auto brep = encode_barrier_reply({15});
  EXPECT_EQ(std::get<BarrierReply>(decode_message(brep.data(), brep.size())).xid, 15u);
}

TEST(Wire, PacketInRoundTrip) {
  PacketIn pin;
  pin.xid = 21;
  pin.reason = PacketIn::Reason::kAction;
  pin.table_id = 5;
  pin.cookie = 0x1234;
  pin.in_port = 3;
  for (int i = 0; i < 64; ++i) pin.frame.push_back(static_cast<uint8_t>(i));
  const auto bytes = encode_packet_in(pin);
  const auto back = std::get<PacketIn>(decode_message(bytes.data(), bytes.size()));
  EXPECT_EQ(back.xid, pin.xid);
  EXPECT_EQ(back.reason, pin.reason);
  EXPECT_EQ(back.table_id, pin.table_id);
  EXPECT_EQ(back.cookie, pin.cookie);
  EXPECT_EQ(back.in_port, pin.in_port);
  EXPECT_EQ(back.frame, pin.frame);
}

TEST(Wire, PacketOutRoundTrip) {
  PacketOut po;
  po.xid = 23;
  po.in_port = 9;
  po.actions = {Action::set_field(FieldId::kIpTtl, 9), Action::flood()};
  po.frame = {1, 2, 3, 4, 5};
  const auto bytes = encode_packet_out(po);
  const auto back = std::get<PacketOut>(decode_message(bytes.data(), bytes.size()));
  EXPECT_EQ(back.in_port, po.in_port);
  EXPECT_EQ(back.actions, po.actions);
  EXPECT_EQ(back.frame, po.frame);
}

TEST(Wire, FlowRemovedRoundTrip) {
  FlowRemoved fr;
  fr.xid = 27;
  fr.cookie = 0xFEED;
  fr.priority = 77;
  fr.reason = FlowRemoved::Reason::kDelete;
  fr.table_id = 4;
  fr.packet_count = 1000;
  fr.byte_count = 64000;
  fr.match.set(FieldId::kUdpDst, 53);
  const auto bytes = encode_flow_removed(fr);
  const auto back = std::get<FlowRemoved>(decode_message(bytes.data(), bytes.size()));
  EXPECT_EQ(back.cookie, fr.cookie);
  EXPECT_EQ(back.priority, fr.priority);
  EXPECT_EQ(back.reason, fr.reason);
  EXPECT_EQ(back.table_id, fr.table_id);
  EXPECT_EQ(back.packet_count, fr.packet_count);
  EXPECT_EQ(back.byte_count, fr.byte_count);
  EXPECT_TRUE(back.match == fr.match);
}

TEST(Wire, FlowStatsRoundTrip) {
  FlowStatsRequest req;
  req.xid = 31;
  req.table_id = 2;
  req.match.set(FieldId::kIpDst, test::ip("192.0.2.0"), 0xFFFFFF00);
  const auto rbytes = encode_flow_stats_request(req);
  const auto rback =
      std::get<FlowStatsRequest>(decode_message(rbytes.data(), rbytes.size()));
  EXPECT_EQ(rback.table_id, req.table_id);
  EXPECT_TRUE(rback.match == req.match);

  FlowStatsReply reply;
  reply.xid = 31;
  FlowStatsEntry e1;
  e1.table_id = 2;
  e1.priority = 10;
  e1.cookie = 0xAB;
  e1.packet_count = 5;
  e1.byte_count = 320;
  e1.match.set(FieldId::kTcpDst, 80);
  e1.actions = {Action::dec_ttl(), Action::output(2)};
  e1.goto_table = 9;
  FlowStatsEntry e2;  // catch-all entry, explicit drop, no goto
  e2.table_id = 3;
  e2.actions = {Action::drop()};
  reply.entries = {e1, e2};
  const auto bytes = encode_flow_stats_reply(reply);
  const auto back =
      std::get<FlowStatsReply>(decode_message(bytes.data(), bytes.size()));
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].priority, e1.priority);
  EXPECT_EQ(back.entries[0].cookie, e1.cookie);
  EXPECT_EQ(back.entries[0].packet_count, e1.packet_count);
  EXPECT_EQ(back.entries[0].byte_count, e1.byte_count);
  EXPECT_TRUE(back.entries[0].match == e1.match);
  EXPECT_EQ(back.entries[0].actions, e1.actions);
  EXPECT_EQ(back.entries[0].goto_table, e1.goto_table);
  EXPECT_EQ(back.entries[1].table_id, 3);
  // An explicit drop encodes as an empty write-actions set, which decodes to
  // an empty list (OpenFlow has no drop action).
  EXPECT_TRUE(back.entries[1].actions.empty());
  EXPECT_EQ(back.entries[1].goto_table, kNoGoto);
}

TEST(Wire, TableStatsRoundTrip) {
  const auto req = encode_table_stats_request({37});
  EXPECT_EQ(std::get<TableStatsRequest>(decode_message(req.data(), req.size())).xid,
            37u);

  TableStatsReply reply;
  reply.xid = 37;
  reply.entries = {{0, 12, 1000, 900}, {1, 1, 50, 50}};
  const auto bytes = encode_table_stats_reply(reply);
  const auto back =
      std::get<TableStatsReply>(decode_message(bytes.data(), bytes.size()));
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].active_count, 12u);
  EXPECT_EQ(back.entries[0].lookup_count, 1000u);
  EXPECT_EQ(back.entries[1].matched_count, 50u);
}

TEST(Wire, ErrorRoundTrip) {
  Error err;
  err.xid = 41;
  err.type = kErrTypeBadRequest;
  err.code = kErrCodeBadType;
  err.data = {0xDE, 0xAD};
  const auto bytes = encode_error(err);
  const auto back = std::get<Error>(decode_message(bytes.data(), bytes.size()));
  EXPECT_EQ(back.type, err.type);
  EXPECT_EQ(back.code, err.code);
  EXPECT_EQ(back.data, err.data);
}

TEST(Wire, EncodeMessageMatchesPerTypeEncoders) {
  const FlowMod fm = sample_mod();
  EXPECT_EQ(encode_message(OfMsg{fm}), encode_flow_mod(fm));
  EXPECT_EQ(encode_message(OfMsg{Hello{3}}), encode_hello({3}));
  EXPECT_EQ(encode_message(OfMsg{BarrierReply{4}}), encode_barrier_reply({4}));
}

// --- robustness: every message type rejects malformed frames ----------------

/// One encoded sample of every message type the session speaks.
std::vector<std::vector<uint8_t>> sample_frames() {
  PacketIn pin;
  pin.in_port = 1;
  pin.frame = {1, 2, 3, 4, 5, 6, 7, 8};
  PacketOut po;
  po.actions = {Action::output(2)};
  po.frame = {9, 9, 9};
  FlowRemoved fr;
  fr.match.set(FieldId::kUdpDst, 53);
  FlowStatsRequest fsr;
  fsr.match.set(FieldId::kIpDst, 0x0A000000, 0xFF000000);
  FlowStatsReply fsp;
  FlowStatsEntry fse;
  fse.match.set(FieldId::kTcpDst, 80);
  fse.actions = {Action::output(1)};
  fsp.entries = {fse};
  TableStatsReply tsp;
  tsp.entries = {{0, 1, 2, 3}};
  return {
      encode_hello({1}),
      encode_echo_request({2, {0xAB}}),
      encode_echo_reply({3, {0xCD}}),
      encode_features_request({4}),
      encode_features_reply({}),
      encode_barrier_request({5}),
      encode_barrier_reply({6}),
      encode_flow_mod(sample_mod()),
      encode_packet_in(pin),
      encode_packet_out(po),
      encode_flow_removed(fr),
      encode_flow_stats_request(fsr),
      encode_flow_stats_reply(fsp),
      encode_table_stats_request({7}),
      encode_table_stats_reply(tsp),
      encode_error({8, 1, 1, {0xFF}}),
  };
}

TEST(Wire, EverySampleDecodes) {
  for (const auto& frame : sample_frames())
    EXPECT_NO_THROW(decode_message(frame.data(), frame.size()))
        << "type " << int(frame[1]);
}

TEST(Wire, EveryTypeRejectsTruncation) {
  for (const auto& frame : sample_frames()) {
    // Every strict prefix of the buffer must throw, never read past the end,
    // and never return partial state.  (Frames whose trailing bytes are an
    // optional payload — echo, error, hello elements — still throw below the
    // 8-byte header or mid-fixed-part; the payload tail is legitimately
    // variable, so truncate against the *claimed* length instead.)
    EXPECT_THROW(decode_message(frame.data(), 4), CheckError) << int(frame[1]);
    EXPECT_THROW(decode_message(frame.data(), 7), CheckError) << int(frame[1]);
    // Header claims frame.size() bytes but fewer are available.
    if (frame.size() > 8) {
      EXPECT_THROW(decode_message(frame.data(), frame.size() - 1), CheckError)
          << int(frame[1]);
    }
  }
}

TEST(Wire, EveryTypeRejectsBadVersion) {
  for (auto frame : sample_frames()) {
    frame[0] = 0x01;  // OpenFlow 1.0
    EXPECT_THROW(decode_message(frame.data(), frame.size()), CheckError)
        << int(frame[1]);
    frame[0] = 0x05;  // OpenFlow 1.4
    EXPECT_THROW(decode_message(frame.data(), frame.size()), CheckError)
        << int(frame[1]);
  }
}

TEST(Wire, EveryTypeRejectsOversizedLengthField) {
  for (auto frame : sample_frames()) {
    // The header claims more bytes than the caller has: must throw, not read
    // beyond the buffer.
    const uint16_t bogus = static_cast<uint16_t>(frame.size() + 8);
    frame[2] = static_cast<uint8_t>(bogus >> 8);
    frame[3] = static_cast<uint8_t>(bogus);
    EXPECT_THROW(decode_message(frame.data(), frame.size()), CheckError)
        << int(frame[1]);
  }
}

TEST(Wire, EveryTypeRejectsUndersizedLengthField) {
  for (auto frame : sample_frames()) {
    frame[2] = 0;
    frame[3] = 4;  // below the 8-byte header minimum
    EXPECT_THROW(decode_message(frame.data(), frame.size()), CheckError)
        << int(frame[1]);
  }
}

/// Corrupts the first OXM TLV length byte inside a match-bearing message.
void corrupt_oxm_len(std::vector<uint8_t>& frame, size_t match_off) {
  // match_off points at the OFPMT_OXM type; TLV starts at +4, its length byte
  // is TLV[3].
  frame[match_off + 4 + 3] = 0xFF;
}

TEST(Wire, MatchBearingTypesRejectBadOxmLength) {
  // Offsets of the ofp_match in each fixed layout (OF 1.3 spec).
  auto fm = encode_flow_mod(sample_mod());
  corrupt_oxm_len(fm, 48);
  EXPECT_THROW(decode_message(fm.data(), fm.size()), CheckError);

  PacketIn pin;
  pin.in_port = 1;
  pin.frame = {1, 2, 3};
  auto pb = encode_packet_in(pin);
  corrupt_oxm_len(pb, 24);
  EXPECT_THROW(decode_message(pb.data(), pb.size()), CheckError);

  FlowRemoved fr;
  fr.match.set(FieldId::kUdpDst, 53);
  auto fb = encode_flow_removed(fr);
  corrupt_oxm_len(fb, 48);
  EXPECT_THROW(decode_message(fb.data(), fb.size()), CheckError);

  FlowStatsRequest fsr;
  fsr.match.set(FieldId::kIpDst, 0x0A000000, 0xFF000000);
  auto sb = encode_flow_stats_request(fsr);
  corrupt_oxm_len(sb, 48);
  EXPECT_THROW(decode_message(sb.data(), sb.size()), CheckError);
}

TEST(Wire, RejectsNonCanonicalActionLength) {
  // ofp_packet_out: header(8) buffer(4) in_port(4) actions_len(2) pad(6);
  // the first action's length field sits at offset 26.
  PacketOut po;
  po.actions = {Action::output(2)};
  po.frame = {1, 2, 3, 4, 5, 6, 7, 8};
  auto bytes = encode_packet_out(po);
  bytes[26] = 0;
  bytes[27] = 8;  // OUTPUT must be 16 bytes; a lying 8 would desync the frame
  EXPECT_THROW(decode_message(bytes.data(), bytes.size()), CheckError);

  PacketOut po2;
  po2.actions = {Action::pop_vlan()};
  auto bytes2 = encode_packet_out(po2);
  bytes2[27] = 16;  // POP_VLAN must be 8; 16 would swallow payload bytes
  EXPECT_THROW(decode_message(bytes2.data(), bytes2.size()), CheckError);
}

TEST(Wire, RejectsUnknownMessageType) {
  auto frame = encode_hello({1});
  frame[1] = 99;  // not a known OFPT_*
  EXPECT_THROW(decode_message(frame.data(), frame.size()), CheckError);
  frame[1] = 4;  // EXPERIMENTER — real but outside the session's set
  EXPECT_THROW(decode_message(frame.data(), frame.size()), CheckError);
}

TEST(Wire, RejectsTypeMismatchAgainstPerTypeDecoder) {
  const auto hello = encode_hello({1});
  EXPECT_THROW(decode_flow_mod(hello.data(), hello.size()), CheckError);
}

TEST(Wire, BoundedToOwnFrameInBackToBackStream) {
  // Two frames concatenated: decoding the first must not consume the second.
  auto a = encode_flow_mod(sample_mod());
  const auto b = encode_barrier_request({77});
  const size_t a_len = a.size();
  a.insert(a.end(), b.begin(), b.end());
  const FlowMod fm = decode_flow_mod(a.data(), a.size());
  EXPECT_EQ(fm.priority, sample_mod().priority);
  EXPECT_EQ(openflow_frame_len(a.data(), a.size()), a_len);
  // The second frame is intact where the first one ends.
  const auto second = decode_message(a.data() + a_len, a.size() - a_len);
  EXPECT_EQ(std::get<BarrierRequest>(second).xid, 77u);
}

}  // namespace
}  // namespace esw
