#include <gtest/gtest.h>

#include "flow/wire.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using namespace esw::flow;

FlowMod sample_mod() {
  FlowMod fm;
  fm.command = FlowMod::Cmd::kAdd;
  fm.table_id = 3;
  fm.priority = 1234;
  fm.cookie = 0xDEADBEEFCAFEBABE;
  fm.xid = 77;
  fm.match.set(FieldId::kInPort, 2);
  fm.match.set(FieldId::kEthDst, 0x0A0B0C0D0E0F);
  fm.match.set(FieldId::kIpDst, test::ip("192.0.2.0"), 0xFFFFFF00);
  fm.match.set(FieldId::kVlanVid, 55);
  fm.match.set(FieldId::kTcpDst, 80);
  fm.actions = {Action::set_field(FieldId::kIpSrc, test::ip("10.1.1.1")),
                Action::dec_ttl(), Action::output(7)};
  fm.goto_table = 9;
  return fm;
}

TEST(Wire, FlowModRoundTrip) {
  const FlowMod fm = sample_mod();
  const auto bytes = encode_flow_mod(fm);
  ASSERT_GT(bytes.size(), 8u);
  EXPECT_EQ(openflow_frame_len(bytes.data(), bytes.size()), bytes.size());

  const FlowMod back = decode_flow_mod(bytes.data(), bytes.size());
  EXPECT_EQ(back.command, fm.command);
  EXPECT_EQ(back.table_id, fm.table_id);
  EXPECT_EQ(back.priority, fm.priority);
  EXPECT_EQ(back.cookie, fm.cookie);
  EXPECT_EQ(back.xid, fm.xid);
  EXPECT_TRUE(back.match == fm.match);
  EXPECT_EQ(back.actions, fm.actions);
  EXPECT_EQ(back.goto_table, fm.goto_table);
}

TEST(Wire, EncodesEveryField) {
  // Every field must survive a round trip individually.
  for (unsigned i = 0; i < kNumFields; ++i) {
    const FieldId f = static_cast<FieldId>(i);
    FlowMod fm;
    const uint64_t v = 1 + (i * 3) % 100;
    fm.match.set(f, v);
    const auto bytes = encode_flow_mod(fm);
    const FlowMod back = decode_flow_mod(bytes.data(), bytes.size());
    ASSERT_TRUE(back.match.has(f)) << field_info(f).name;
    EXPECT_EQ(back.match.value(f), v & field_full_mask(f)) << field_info(f).name;
  }
}

TEST(Wire, MaskedFieldsRoundTrip) {
  FlowMod fm;
  fm.match.set(FieldId::kIpSrc, 0x0A000000, 0xFF000000);
  fm.match.set(FieldId::kEthDst, 0x010000000000, 0x010000000000);  // multicast bit
  fm.match.set(FieldId::kMetadata, 0x12340000, 0xFFFF0000);
  const auto bytes = encode_flow_mod(fm);
  const FlowMod back = decode_flow_mod(bytes.data(), bytes.size());
  EXPECT_TRUE(back.match == fm.match);
}

TEST(Wire, ControllerAndFloodPorts) {
  FlowMod fm;
  fm.actions = {Action::to_controller()};
  auto back = decode_flow_mod(encode_flow_mod(fm).data(), encode_flow_mod(fm).size());
  ASSERT_EQ(back.actions.size(), 1u);
  EXPECT_EQ(back.actions[0].type, ActionType::kController);

  fm.actions = {Action::flood()};
  const auto bytes = encode_flow_mod(fm);
  back = decode_flow_mod(bytes.data(), bytes.size());
  EXPECT_EQ(back.actions[0].type, ActionType::kFlood);
}

TEST(Wire, PushVlanCarriesVidViaSetField) {
  FlowMod fm;
  fm.actions = {Action::push_vlan(42), Action::output(1)};
  const auto bytes = encode_flow_mod(fm);
  const FlowMod back = decode_flow_mod(bytes.data(), bytes.size());
  // push_vlan(42) decodes as push_vlan + set_field(vlan_vid=42).
  ASSERT_EQ(back.actions.size(), 3u);
  EXPECT_EQ(back.actions[0].type, ActionType::kPushVlan);
  EXPECT_EQ(back.actions[1], Action::set_field(FieldId::kVlanVid, 42));
  EXPECT_EQ(back.actions[2], Action::output(1));
}

TEST(Wire, DeleteCommand) {
  FlowMod fm;
  fm.command = FlowMod::Cmd::kDelete;
  fm.match.set(FieldId::kUdpDst, 53);
  const auto bytes = encode_flow_mod(fm);
  EXPECT_EQ(decode_flow_mod(bytes.data(), bytes.size()).command, FlowMod::Cmd::kDelete);
}

TEST(Wire, RejectsMalformedInput) {
  const FlowMod fm = sample_mod();
  auto bytes = encode_flow_mod(fm);
  EXPECT_THROW(decode_flow_mod(bytes.data(), 10), CheckError);
  bytes[0] = 0x01;  // wrong version
  EXPECT_THROW(decode_flow_mod(bytes.data(), bytes.size()), CheckError);
  EXPECT_EQ(openflow_frame_len(bytes.data(), 4), 0u);
}

}  // namespace
}  // namespace esw
