// The range extension template: interval flattening substrate and its
// integration into analysis, compilation and the update/fallback machinery.
#include <gtest/gtest.h>

#include "cls/range_tree.hpp"
#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using namespace esw::flow;
using cls::RangeTree;
using core::Eswitch;
using core::TableTemplate;
using test::make_packet;

TEST(RangeTree, BasicOverlapResolution) {
  RangeTree t;
  t.build({
      {0, 65535, /*rank=*/2, /*value=*/100},  // catch-all range, worse rank
      {80, 89, 1, 200},                       // overlapping, better rank
      {1000, 1999, 3, 300},
  });
  EXPECT_EQ(t.lookup(50), std::optional<uint32_t>(100));
  EXPECT_EQ(t.lookup(80), std::optional<uint32_t>(200));
  EXPECT_EQ(t.lookup(89), std::optional<uint32_t>(200));
  EXPECT_EQ(t.lookup(90), std::optional<uint32_t>(100));
  EXPECT_EQ(t.lookup(1500), std::optional<uint32_t>(100));  // rank 2 beats 3
}

TEST(RangeTree, GapsMiss) {
  RangeTree t;
  t.build({{10, 19, 1, 1}, {30, 39, 2, 2}});
  EXPECT_FALSE(t.lookup(5).has_value());
  EXPECT_EQ(t.lookup(15), std::optional<uint32_t>(1));
  EXPECT_FALSE(t.lookup(25).has_value());
  EXPECT_EQ(t.lookup(35), std::optional<uint32_t>(2));
  EXPECT_FALSE(t.lookup(100).has_value());
}

TEST(RangeTree, EmptyAndAdjacentMerge) {
  RangeTree empty;
  empty.build({});
  EXPECT_FALSE(empty.lookup(0).has_value());

  RangeTree t;  // adjacent same-value intervals merge
  t.build({{0, 9, 1, 7}, {10, 19, 2, 7}});
  EXPECT_LE(t.num_intervals(), 2u);
  EXPECT_EQ(t.lookup(9), std::optional<uint32_t>(7));
  EXPECT_EQ(t.lookup(10), std::optional<uint32_t>(7));
}

TEST(RangeTree, PropertyMatchesLinearScan) {
  Rng rng(77);
  for (int round = 0; round < 30; ++round) {
    std::vector<RangeTree::Rule> rules;
    const int n = 1 + static_cast<int>(rng.below(20));
    for (int i = 0; i < n; ++i) {
      const uint64_t lo = rng.below(1000);
      rules.push_back({lo, lo + rng.below(200), static_cast<uint32_t>(i),
                       static_cast<uint32_t>(i + 1)});
    }
    RangeTree t;
    t.build(rules);
    for (uint64_t key = 0; key < 1300; ++key) {
      const RangeTree::Rule* best = nullptr;
      for (const auto& r : rules)
        if (r.lo <= key && key <= r.hi && (best == nullptr || r.rank < best->rank))
          best = &r;
      const auto got = t.lookup(key);
      if (best == nullptr) {
        ASSERT_FALSE(got.has_value()) << round << ":" << key;
      } else {
        ASSERT_EQ(got, std::optional<uint32_t>(best->value)) << round << ":" << key;
      }
    }
  }
}

// A priority-inverted single-field prefix table: LPM must refuse it, the
// range template takes it, and semantics stay exact.
TEST(RangeTemplate, CompilesPriorityInvertedPrefixTable) {
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=100,udp_dst=0x100/0xFF00,actions=output:1"));
  pl.table(0).add(parse_rule("priority=20,udp_dst=0x140/0xFFC0,actions=output:2"));
  pl.table(0).add(parse_rule("priority=90,udp_dst=0x200/0xFF00,actions=output:3"));
  pl.table(0).add(parse_rule("priority=95,udp_dst=0x240/0xFFC0,actions=output:4"));
  pl.table(0).add(parse_rule("priority=1,actions=drop"));

  core::CompilerConfig cfg;
  cfg.direct_code_max_entries = 2;
  Eswitch sw(cfg);
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), TableTemplate::kRange);

  // Differential against the reference interpreter across the whole field.
  for (uint32_t port = 0; port < 0x400; ++port) {
    auto p1 = make_packet(test::udp_spec(1, 2, 9, static_cast<uint16_t>(port)));
    auto p2 = make_packet(test::udp_spec(1, 2, 9, static_cast<uint16_t>(port)));
    ASSERT_EQ(sw.process(p1), pl.run(p2)) << port;
  }
}

TEST(RangeTemplate, UpdateRebuildsAndStaysCorrect) {
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=100,udp_dst=0x100/0xFF00,actions=output:1"));
  pl.table(0).add(parse_rule("priority=20,udp_dst=0x140/0xFFC0,actions=output:2"));
  for (int i = 0; i < 6; ++i)
    pl.table(0).add(parse_rule("priority=50,udp_dst=" + std::to_string(0x300 + i * 64) +
                               "/0xFFC0,actions=output:5"));
  core::CompilerConfig cfg;
  cfg.direct_code_max_entries = 2;
  Eswitch sw(cfg);
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), TableTemplate::kRange);

  // No incremental path: every add is a rebuild + swap, semantics preserved.
  const auto rebuilds = sw.update_stats().table_rebuilds;
  flow::FlowMod fm;
  fm.table_id = 0;
  fm.priority = 200;
  fm.match.set(FieldId::kUdpDst, 0x120, 0xFFF0);
  fm.actions = {Action::output(9)};
  sw.apply(fm);
  EXPECT_GT(sw.update_stats().table_rebuilds, rebuilds);
  EXPECT_EQ(sw.table_template(0), TableTemplate::kRange);

  auto p = make_packet(test::udp_spec(1, 2, 9, 0x125));
  EXPECT_EQ(sw.process(p), Verdict::output(9));
  auto p2 = make_packet(test::udp_spec(1, 2, 9, 0x150));
  EXPECT_EQ(sw.process(p2), Verdict::output(1));  // prio 100 beats prio 20

  // A multi-field rule breaks the prerequisite: fall back to linked list.
  flow::FlowMod bad;
  bad.table_id = 0;
  bad.priority = 300;
  bad.match.set(FieldId::kUdpDst, 7);
  bad.match.set(FieldId::kIpSrc, 1);
  bad.actions = {Action::output(3)};
  sw.apply(bad);
  EXPECT_EQ(sw.table_template(0), TableTemplate::kLinkedList);
  auto p3 = make_packet(test::udp_spec(1, 2, 9, 0x125));
  EXPECT_EQ(sw.process(p3), Verdict::output(9));  // old rules intact
}

TEST(RangeTemplate, RandomPrefixTablesPropertyEquivalent) {
  Rng rng(0xA17);
  for (int round = 0; round < 15; ++round) {
    Pipeline pl;
    const int n = 6 + static_cast<int>(rng.below(20));
    for (int i = 0; i < n; ++i) {
      const unsigned len = 4 + rng.below(13);  // /4../16 of the 16-bit field
      const uint64_t mask = low_bits(len) << (16 - len);
      FlowEntry e;
      e.match.set(FieldId::kUdpDst, rng.below(0x10000) & mask, mask);
      e.priority = static_cast<uint16_t>(rng.below(1000));  // arbitrary order
      e.actions = {Action::output(static_cast<uint32_t>(i + 1))};
      pl.table(0).add(e);
    }
    core::CompilerConfig cfg;
    cfg.direct_code_max_entries = 2;
    Eswitch sw(cfg);
    sw.install(pl);
    if (sw.table_template(0) != TableTemplate::kRange) continue;  // duplicate rules

    for (int q = 0; q < 500; ++q) {
      const uint16_t port = static_cast<uint16_t>(rng.below(0x10000));
      auto p1 = make_packet(test::udp_spec(1, 2, 9, port));
      auto p2 = make_packet(test::udp_spec(1, 2, 9, port));
      ASSERT_EQ(sw.process(p1), pl.run(p2)) << round << ":" << port;
    }
  }
}

}  // namespace
}  // namespace esw
