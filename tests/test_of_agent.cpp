#include <gtest/gtest.h>

#include <sys/socket.h>

#include "core/eswitch.hpp"
#include "core/switch_host.hpp"
#include "ovs/ovs_switch.hpp"
#include "test_util.hpp"
#include "usecases/of_agent.hpp"

namespace esw {
namespace {

using namespace esw::flow;

FlowMod udp_forward_mod(uint16_t dport, uint32_t out_port) {
  FlowMod fm;
  fm.table_id = 0;
  fm.priority = 10;
  fm.match.set(FieldId::kUdpDst, dport);
  fm.actions = {Action::output(out_port)};
  return fm;
}

TEST(OfAgent, HandshakeOpensSession) {
  core::Eswitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw), 0xABCD);
  uc::OfController ctrl(agent.controller_fd());

  EXPECT_FALSE(agent.session_open());
  ctrl.send_hello();
  agent.poll();
  EXPECT_TRUE(agent.session_open());
  ctrl.poll();
  EXPECT_TRUE(ctrl.hello_seen());

  const uint32_t xid = ctrl.send_features_request();
  agent.poll();
  ctrl.poll();
  ASSERT_TRUE(ctrl.features().has_value());
  EXPECT_EQ(ctrl.features()->xid, xid);  // reply carries the request xid
  EXPECT_EQ(ctrl.features()->datapath_id, 0xABCDu);
  EXPECT_EQ(ctrl.outstanding(), 0u);
}

TEST(OfAgent, RejectsFlowModBeforeHello) {
  core::Eswitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());

  ctrl.send_flow_mod(udp_forward_mod(53, 2));  // no HELLO yet
  agent.poll();
  ctrl.poll();
  const auto errors = ctrl.take_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].type, kErrTypeBadRequest);
  EXPECT_EQ(agent.stats().flow_mods, 0u);
  EXPECT_TRUE(sw.pipeline().empty());  // nothing was applied
}

TEST(OfAgent, EchoRoundTripKeepsXid) {
  core::Eswitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  ctrl.send_echo({1, 2, 3});
  agent.poll();
  ctrl.poll();
  EXPECT_EQ(agent.stats().echoes, 1u);
  EXPECT_EQ(ctrl.outstanding(), 0u);  // reply settled the xid
}

TEST(OfAgent, BarrierConfirmsEarlierMods) {
  core::Eswitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  ctrl.send_flow_mod(udp_forward_mod(53, 2));
  ctrl.send_flow_mod(udp_forward_mod(54, 3));
  const uint32_t bxid = ctrl.send_barrier();
  agent.poll();  // one poll dispatches all three, in order
  ctrl.poll();

  const auto replies = ctrl.take_barrier_replies();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0], bxid);
  EXPECT_TRUE(ctrl.take_barrier_replies().empty());
  // Barrier semantics: by reply time both mods are live in the datapath.
  auto p = test::make_packet(test::udp_spec(1, 2, 9, 53));
  EXPECT_EQ(sw.process(p), Verdict::output(2));
  auto q = test::make_packet(test::udp_spec(1, 2, 9, 54));
  EXPECT_EQ(sw.process(q), Verdict::output(3));
}

TEST(OfAgent, GarbageFrameAnswersErrorAndSessionSurvives) {
  core::Eswitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  // A frame with a valid header (type FLOW_MOD) but a garbage body.
  uint8_t bad[16] = {0x04, 14, 0, 16, 0, 0, 0, 99, 0xFF, 0xFF, 0xFF, 0xFF,
                     0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::send(agent.controller_fd(), bad, sizeof bad, 0),
            static_cast<ssize_t>(sizeof bad));
  agent.poll();
  ctrl.poll();
  ASSERT_EQ(ctrl.take_errors().size(), 1u);

  // The session still works afterwards.
  ctrl.send_flow_mod(udp_forward_mod(53, 2));
  agent.poll();
  EXPECT_EQ(agent.stats().flow_mods, 1u);
}

TEST(OfAgent, SemanticallyInvalidFlowModAnswersErrorAndSessionSurvives) {
  core::Eswitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  // Wire-valid, semantically invalid: goto must go forward.
  FlowMod bad = udp_forward_mod(53, 2);
  bad.table_id = 1;
  bad.goto_table = 0;
  ctrl.send_flow_mod(bad);
  EXPECT_NO_THROW(agent.poll());  // the session must survive
  ctrl.poll();
  const auto errors = ctrl.take_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].type, kErrTypeFlowModFailed);
  EXPECT_TRUE(sw.pipeline().empty());  // refused, nothing applied

  // And it still processes good mods afterwards.
  ctrl.send_flow_mod(udp_forward_mod(53, 2));
  agent.poll();
  auto p = test::make_packet(test::udp_spec(1, 2, 9, 53));
  EXPECT_EQ(sw.process(p), Verdict::output(2));
}

TEST(OfAgent, PacketInBackpressureDropsInsteadOfBlocking) {
  core::Eswitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  // Flood the channel without the controller draining: the agent must never
  // block — excess punts are dropped and counted.
  std::vector<uint8_t> frame(1400, 0xAB);
  for (int i = 0; i < 2000; ++i)
    agent.send_packet_in(frame.data(), frame.size(), 1);
  EXPECT_GT(agent.stats().tx_dropped, 0u);
  EXPECT_GT(agent.stats().packet_ins_sent, 0u);
  EXPECT_EQ(agent.stats().packet_ins_sent + agent.stats().tx_dropped, 2000u);
  // What did ship is intact and decodable.
  EXPECT_GT(ctrl.poll(), 0u);
  EXPECT_FALSE(ctrl.take_packet_ins().empty());
}

TEST(OfAgent, ControllerBoundTypesAtSwitchAreRejected) {
  core::Eswitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  // A PACKET_IN arriving at the *switch* is protocol misuse.
  PacketIn pin;
  pin.in_port = 1;
  pin.frame = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  const auto bytes = encode_packet_in(pin);
  ASSERT_EQ(::send(agent.controller_fd(), bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  agent.poll();
  ctrl.poll();
  ASSERT_EQ(ctrl.take_errors().size(), 1u);
}

TEST(OfAgent, ControllerDoesNotReplayFramesAfterBadReply) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  uc::OfController ctrl(fds[0]);

  // Peer sends a valid HELLO followed by a reply with an unknown xid.
  auto stream = encode_hello({1});
  const auto bogus = encode_barrier_reply({0xDEAD});
  stream.insert(stream.end(), bogus.begin(), bogus.end());
  ASSERT_EQ(::send(fds[1], stream.data(), stream.size(), 0),
            static_cast<ssize_t>(stream.size()));

  EXPECT_THROW(ctrl.poll(), CheckError);  // xid discipline rejects the reply
  EXPECT_TRUE(ctrl.hello_seen());         // ...but the HELLO was processed
  // Both frames were consumed: nothing replays, the session can continue.
  EXPECT_EQ(ctrl.poll(), 0u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(OfAgent, PacketInReachesController) {
  core::Eswitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  const uint8_t frame[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 0x08, 0x00};
  agent.send_packet_in(frame, sizeof frame, 7, 3, PacketIn::Reason::kNoMatch);
  ctrl.poll();
  const auto pins = ctrl.take_packet_ins();
  ASSERT_EQ(pins.size(), 1u);
  EXPECT_EQ(pins[0].in_port, 7u);
  EXPECT_EQ(pins[0].table_id, 3u);
  EXPECT_EQ(pins[0].reason, PacketIn::Reason::kNoMatch);
  ASSERT_EQ(pins[0].frame.size(), sizeof frame);
  EXPECT_EQ(std::memcmp(pins[0].frame.data(), frame, sizeof frame), 0);
}

TEST(OfAgent, FlowAndTableStatsOverSession) {
  core::Eswitch sw;
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=10, udp_dst=53, actions=output:2, goto:1"));
  pl.table(0).add(parse_rule("priority=5, tcp_dst=80, actions=output:3"));
  pl.table(1).add(parse_rule("priority=1, actions=drop"));
  sw.install(pl);
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  // All tables.
  ctrl.send_flow_stats_request();
  agent.poll();
  ctrl.poll();
  auto replies = ctrl.take_flow_stats();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].entries.size(), 3u);

  // Filtered by table and match.
  FlowStatsRequest req;
  req.table_id = 0;
  req.match.set(FieldId::kUdpDst, 53);
  ctrl.send_flow_stats_request(req);
  agent.poll();
  ctrl.poll();
  replies = ctrl.take_flow_stats();
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0].entries.size(), 1u);
  EXPECT_EQ(replies[0].entries[0].priority, 10);
  EXPECT_EQ(replies[0].entries[0].goto_table, 1);
  EXPECT_EQ(replies[0].entries[0].actions, ActionList{Action::output(2)});

  ctrl.send_table_stats_request();
  agent.poll();
  ctrl.poll();
  const auto tstats = ctrl.take_table_stats();
  ASSERT_EQ(tstats.size(), 1u);
  ASSERT_EQ(tstats[0].entries.size(), 2u);
  EXPECT_EQ(tstats[0].entries[0].table_id, 0);
  EXPECT_EQ(tstats[0].entries[0].active_count, 2u);
  EXPECT_EQ(tstats[0].entries[1].table_id, 1);
  EXPECT_EQ(tstats[0].entries[1].active_count, 1u);
}

TEST(OfAgent, FlowRemovedOnFlaggedDeleteOnly) {
  core::Eswitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  FlowMod add = udp_forward_mod(53, 2);
  add.cookie = 0xC00C1E;
  ctrl.send_flow_mod(add);
  FlowMod add2 = udp_forward_mod(54, 3);
  ctrl.send_flow_mod(add2);
  agent.poll();

  // Delete without the flag: silent.
  FlowMod del2 = add2;
  del2.command = FlowMod::Cmd::kDelete;
  del2.actions.clear();
  ctrl.send_flow_mod(del2);
  agent.poll();
  ctrl.poll();
  EXPECT_TRUE(ctrl.take_flow_removed().empty());

  // Delete with OFPFF_SEND_FLOW_REM: FLOW_REMOVED arrives with the flow's
  // identity (cookie, priority, match, reason).
  FlowMod del = add;
  del.command = FlowMod::Cmd::kDelete;
  del.flags = FlowMod::kFlagSendFlowRem;
  del.actions.clear();
  ctrl.send_flow_mod(del);
  agent.poll();
  ctrl.poll();
  const auto removed = ctrl.take_flow_removed();
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].cookie, 0xC00C1Eu);
  EXPECT_EQ(removed[0].priority, add.priority);
  EXPECT_EQ(removed[0].reason, FlowRemoved::Reason::kDelete);
  EXPECT_TRUE(removed[0].match == add.match);
  // And the flow is gone.
  auto p = test::make_packet(test::udp_spec(1, 2, 9, 53));
  EXPECT_EQ(sw.process(p), Verdict::drop());
}

TEST(OfAgent, DrivesOvsBackendThroughSameCallbacks) {
  ovs::OvsSwitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  ctrl.send_flow_mod(udp_forward_mod(53, 2));
  agent.poll();
  auto p = test::make_packet(test::udp_spec(1, 2, 9, 53));
  EXPECT_EQ(sw.process(p), Verdict::output(2));

  ctrl.send_flow_stats_request();
  agent.poll();
  ctrl.poll();
  const auto replies = ctrl.take_flow_stats();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].entries.size(), 1u);
}

TEST(OfAgent, BatchedModsOneRecompilePerModErrors) {
  // A run of FLOW_MODs in one poll lands as a single best-effort datapath
  // batch: one fused-plan republish for the whole run, one TABLE_FULL error
  // per refused mod, the rest applied — and the barrier still certifies the
  // batch landed before its reply.
  core::CompilerConfig cfg;
  cfg.table_capacity = 3;
  core::Eswitch sw(cfg);
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  const auto republishes_before = sw.update_stats().fusion_republishes;
  std::vector<uint32_t> xids;
  for (uint16_t i = 0; i < 5; ++i)
    xids.push_back(ctrl.send_flow_mod(udp_forward_mod(100 + i, 2)));
  const uint32_t bxid = ctrl.send_barrier();
  agent.poll();  // one poll: the whole run is one batch
  ctrl.poll();

  // One refusal per over-capacity mod (the 4th and 5th), not a batch abort.
  const auto errors = ctrl.take_errors();
  ASSERT_EQ(errors.size(), 2u);
  for (const auto& e : errors) {
    EXPECT_EQ(e.type, kErrTypeFlowModFailed);
    EXPECT_EQ(e.code, kErrCodeTableFull);
  }
  EXPECT_EQ(errors[0].xid, xids[3]);
  EXPECT_EQ(errors[1].xid, xids[4]);
  const auto replies = ctrl.take_barrier_replies();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0], bxid);

  // The applied prefix is live; the refused tail is not; the whole run cost
  // one recompile + fused republish.
  EXPECT_EQ(sw.pipeline().find_table(0)->size(), 3u);
  EXPECT_EQ(sw.update_stats().fusion_republishes, republishes_before + 1);
  auto hit = test::make_packet(test::udp_spec(1, 2, 9, 102));
  EXPECT_EQ(sw.process(hit), Verdict::output(2));
  auto refused = test::make_packet(test::udp_spec(1, 2, 9, 104));
  EXPECT_EQ(sw.process(refused), Verdict::drop());
  EXPECT_EQ(agent.stats().flow_mods, 5u);
  EXPECT_EQ(agent.stats().errors_sent, 2u);
}

TEST(OfAgent, BatchedDeleteStillEmitsFlowRemoved) {
  core::Eswitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  FlowMod add = udp_forward_mod(53, 2);
  add.cookie = 0xBA7C4;
  ctrl.send_flow_mod(add);
  agent.poll();

  // One run: flagged delete + unrelated add + barrier.  The FLOW_REMOVED for
  // the applied delete must still reach the controller, and the add lands.
  FlowMod del = add;
  del.command = FlowMod::Cmd::kDelete;
  del.flags = FlowMod::kFlagSendFlowRem;
  del.actions.clear();
  ctrl.send_flow_mod(del);
  ctrl.send_flow_mod(udp_forward_mod(54, 3));
  ctrl.send_barrier();
  agent.poll();
  ctrl.poll();

  const auto removed = ctrl.take_flow_removed();
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].cookie, 0xBA7C4u);
  EXPECT_EQ(ctrl.take_barrier_replies().size(), 1u);
  auto gone = test::make_packet(test::udp_spec(1, 2, 9, 53));
  EXPECT_EQ(sw.process(gone), Verdict::drop());
  auto live = test::make_packet(test::udp_spec(1, 2, 9, 54));
  EXPECT_EQ(sw.process(live), Verdict::output(3));
}

// The acceptance scenario: a reactive learning switch over the full stack —
// SwitchHost executes verdicts, OfAgent speaks the session, the controller
// reacts to PACKET_IN with FLOW_MOD + PACKET_OUT, and traffic migrates to the
// compiled fast path.
TEST(OfAgent, ReactiveLearningSwitchEndToEnd) {
  using Host = core::SwitchHost<core::Eswitch>;
  Host::Config cfg;
  cfg.n_ports = 4;
  Host host(cfg);
  Pipeline pl;
  pl.table(0).set_miss_policy(FlowTable::MissPolicy::kController);
  host.backend().install(pl);

  uc::OfAgent::Callbacks cbs = uc::make_dataplane_callbacks(host.backend());
  cbs.on_packet_out = [&host](const PacketOut& po) {
    host.packet_out(po.frame.data(), static_cast<uint32_t>(po.frame.size()),
                    po.in_port, po.actions);
  };
  uc::OfAgent agent(std::move(cbs));
  host.set_packet_in_sink([&agent](const core::PacketInEvent& ev) {
    agent.send_packet_in(ev.frame.data(), ev.frame.size(), ev.in_port);
  });
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  const uint64_t mac_b = 0x020000000002ULL;
  proto::PacketSpec a_to_b = test::udp_spec(1, 2, 3, 4);
  a_to_b.eth_src = 0x020000000001ULL;
  a_to_b.eth_dst = mac_b;
  uint8_t frame[256];
  const uint32_t len = proto::build_packet(a_to_b, frame, sizeof frame);

  // Packet 1: miss -> PACKET_IN; the controller floods it via PACKET_OUT and
  // installs the eth_dst flow (it has "learned" B@2 out of band here).
  ASSERT_TRUE(host.inject(1, frame, len));
  host.poll();
  ctrl.poll();
  auto pins = ctrl.take_packet_ins();
  ASSERT_EQ(pins.size(), 1u);
  EXPECT_EQ(pins[0].in_port, 1u);

  FlowMod fm;
  fm.table_id = 0;
  fm.priority = 10;
  fm.match.set(FieldId::kEthDst, mac_b);
  fm.actions = {Action::output(2)};
  ctrl.send_flow_mod(fm);
  PacketOut po;
  po.in_port = pins[0].in_port;
  po.frame = pins[0].frame;
  po.actions = {Action::flood()};
  ctrl.send_packet_out(po);
  agent.poll();  // applies the mod, executes the packet-out

  // The buffered frame flooded to every port but the ingress.
  EXPECT_EQ(host.drain_and_release_tx(2), 1u);
  EXPECT_EQ(host.drain_and_release_tx(3), 1u);
  EXPECT_EQ(host.drain_and_release_tx(4), 1u);
  EXPECT_EQ(host.drain_and_release_tx(1), 0u);

  // Packet 2: forwarded by the compiled fast path, controller silent.
  const auto pins_before = agent.stats().packet_ins_sent;
  ASSERT_TRUE(host.inject(1, frame, len));
  host.poll();
  EXPECT_EQ(agent.stats().packet_ins_sent, pins_before);
  EXPECT_EQ(host.drain_and_release_tx(2), 1u);
  const core::DataplaneStats st = host.backend().stats();
  EXPECT_EQ(st.packets, 2u);
  EXPECT_EQ(st.outputs, 1u);
  EXPECT_EQ(st.to_controller, 1u);
}

}  // namespace
}  // namespace esw