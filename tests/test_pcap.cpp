// pcap I/O and trace plumbing: writer→reader byte-exact round trips in all
// four header variants, every malformed-capture corner case the reader must
// survive, and the TraceSource/PcapPort/SwitchHost path that runs a switch
// entirely from/to capture files.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/eswitch.hpp"
#include "core/switch_host.hpp"
#include "netio/pcap.hpp"
#include "netio/trace_source.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using namespace esw::net;
using test::make_packet;

std::vector<uint8_t> frame_of(uint8_t fill, uint32_t len) {
  std::vector<uint8_t> f(len);
  for (uint32_t i = 0; i < len; ++i) f[i] = static_cast<uint8_t>(fill + i);
  return f;
}

TEST(Pcap, RoundTripAllHeaderVariants) {
  const std::vector<std::vector<uint8_t>> frames = {
      frame_of(1, 60), frame_of(2, 64), frame_of(3, 1514)};
  for (const bool nanos : {false, true}) {
    for (const bool swapped : {false, true}) {
      PcapWriter::Options wo;
      wo.nanosecond = nanos;
      wo.swapped = swapped;
      PcapWriter w(wo);
      uint64_t ts = 1'700'000'000ull * 1'000'000'000ull;
      for (const auto& f : frames) {
        w.add(f.data(), static_cast<uint32_t>(f.size()), ts);
        ts += nanos ? 1 : 1000;  // µs captures can't hold sub-µs steps
      }
      const PcapReader r = PcapReader::from_buffer(w.buffer());
      ASSERT_TRUE(r.ok()) << r.error();
      EXPECT_EQ(r.nanosecond(), nanos);
      EXPECT_EQ(r.swapped(), swapped);
      EXPECT_EQ(r.linktype(), 1u);
      ASSERT_EQ(r.size(), frames.size());
      ts = 1'700'000'000ull * 1'000'000'000ull;
      for (size_t i = 0; i < frames.size(); ++i) {
        const PcapPacket p = r.packet(i);
        EXPECT_EQ(p.ts_ns, ts) << "variant nanos=" << nanos << " swap=" << swapped;
        ASSERT_EQ(p.len, frames[i].size());
        EXPECT_EQ(p.orig_len, frames[i].size());
        EXPECT_EQ(std::vector<uint8_t>(p.data, p.data + p.len), frames[i]);
        ts += nanos ? 1 : 1000;
      }
    }
  }
}

TEST(Pcap, FileRoundTripByteEquality) {
  PcapWriter w;
  const auto f1 = frame_of(7, 100), f2 = frame_of(9, 400);
  w.add(f1.data(), static_cast<uint32_t>(f1.size()), 42'000);
  w.add(f2.data(), static_cast<uint32_t>(f2.size()), 43'000);
  const std::string path = ::testing::TempDir() + "esw_roundtrip.pcap";
  ASSERT_TRUE(w.save(path));
  const PcapReader r = PcapReader::from_file(path);
  ASSERT_TRUE(r.ok()) << r.error();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(std::vector<uint8_t>(r.packet(0).data, r.packet(0).data + r.packet(0).len),
            f1);
  EXPECT_EQ(std::vector<uint8_t>(r.packet(1).data, r.packet(1).data + r.packet(1).len),
            f2);
  // And the re-serialized capture is byte-identical to what was written.
  PcapWriter w2;
  for (size_t i = 0; i < r.size(); ++i) {
    const PcapPacket p = r.packet(i);
    w2.add(p.data, p.len, p.ts_ns);
  }
  EXPECT_EQ(w.buffer(), w2.buffer());
  std::remove(path.c_str());
}

TEST(Pcap, ZeroPacketFile) {
  const PcapWriter w;
  const PcapReader r = PcapReader::from_buffer(w.buffer());
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.empty());
}

TEST(Pcap, TruncatedGlobalHeader) {
  PcapWriter w;
  std::vector<uint8_t> buf = w.buffer();
  buf.resize(17);
  const PcapReader r = PcapReader::from_buffer(buf);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("global header"), std::string::npos) << r.error();
}

TEST(Pcap, BadMagic) {
  std::vector<uint8_t> buf(24, 0xEE);
  const PcapReader r = PcapReader::from_buffer(buf);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("magic"), std::string::npos) << r.error();
}

TEST(Pcap, TruncatedRecordHeaderKeepsCompleteRecords) {
  PcapWriter w;
  const auto f = frame_of(1, 80);
  w.add(f.data(), static_cast<uint32_t>(f.size()), 1000);
  std::vector<uint8_t> buf = w.buffer();
  buf.resize(buf.size() + 7, 0);  // 7 bytes of a 16-byte record header
  const PcapReader r = PcapReader::from_buffer(buf);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.size(), 1u);  // the complete record survives
  EXPECT_EQ(r.packet(0).len, 80u);
}

TEST(Pcap, TruncatedRecordBody) {
  PcapWriter w;
  const auto f1 = frame_of(1, 80), f2 = frame_of(2, 90);
  w.add(f1.data(), static_cast<uint32_t>(f1.size()), 0);
  w.add(f2.data(), static_cast<uint32_t>(f2.size()), 0);
  std::vector<uint8_t> buf = w.buffer();
  buf.resize(buf.size() - 30);  // chop into the second record's body
  const PcapReader r = PcapReader::from_buffer(buf);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("truncated"), std::string::npos) << r.error();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.packet(0).len, 80u);
}

TEST(Pcap, SnaplenSmallerThanWireLength) {
  PcapWriter::Options wo;
  wo.snaplen = 96;
  PcapWriter w(wo);
  const auto f = frame_of(5, 300);
  w.add(f.data(), static_cast<uint32_t>(f.size()), 0);
  const PcapReader r = PcapReader::from_buffer(w.buffer());
  ASSERT_TRUE(r.ok()) << r.error();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.packet(0).len, 96u);        // captured bytes
  EXPECT_EQ(r.packet(0).orig_len, 300u);  // wire length preserved
  // The truncated record is not a replayable frame: TraceSource skips it.
  const TraceSource src(r);
  EXPECT_EQ(src.size(), 0u);
  EXPECT_EQ(src.skipped(), 1u);
}

TEST(Pcap, CapturedLengthBeyondSnaplenRejected) {
  PcapWriter w;  // default snaplen 65535
  const auto f = frame_of(5, 60);
  w.add(f.data(), static_cast<uint32_t>(f.size()), 0);
  std::vector<uint8_t> buf = w.buffer();
  // Corrupt the global snaplen below the record's captured length.
  buf[16] = 8;
  buf[17] = buf[18] = buf[19] = 0;
  const PcapReader r = PcapReader::from_buffer(buf);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("snaplen"), std::string::npos) << r.error();
}

TEST(TraceSource, BurstsAndTrafficSet) {
  std::vector<std::vector<uint8_t>> frames;
  PcapWriter w;
  for (int i = 0; i < 5; ++i) {
    const net::Packet p = make_packet(test::udp_spec(0x0A000001, 0x0A000002, 1000, 80 + i));
    frames.push_back({p.data(), p.data() + p.len()});
    w.add(p.data(), p.len(), i);
  }
  const PcapReader r = PcapReader::from_buffer(w.buffer());
  ASSERT_TRUE(r.ok());
  TraceSource::Options so;
  so.in_port = 3;
  TraceSource src(r, so);
  ASSERT_EQ(src.size(), 5u);

  net::Packet scratch[4];
  net::Packet* bufs[4] = {&scratch[0], &scratch[1], &scratch[2], &scratch[3]};
  EXPECT_EQ(src.next_burst(bufs, 4), 4u);
  EXPECT_EQ(scratch[0].in_port(), 3u);
  EXPECT_EQ(scratch[0].len(), frames[0].size());
  EXPECT_EQ(src.next_burst(bufs, 4), 1u);  // tail
  EXPECT_TRUE(src.exhausted());
  EXPECT_EQ(src.next_burst(bufs, 4), 0u);
  src.rewind();
  EXPECT_EQ(src.next_burst(bufs, 2), 2u);

  const TrafficSet ts = src.to_traffic_set();
  ASSERT_EQ(ts.size(), 5u);
  net::Packet out;
  ts.load(2, out);
  EXPECT_EQ(out.in_port(), 3u);
  ASSERT_EQ(out.len(), frames[2].size());
  EXPECT_EQ(0, std::memcmp(out.data(), frames[2].data(), out.len()));
}

TEST(TraceSource, LoopingRewinds) {
  const net::Packet p = make_packet(test::udp_spec(1, 2, 3, 4));
  TraceSource::Options so;
  so.loop = true;
  TraceSource src({{p.data(), p.data() + p.len()}}, so);
  net::Packet scratch[3];
  net::Packet* bufs[3] = {&scratch[0], &scratch[1], &scratch[2]};
  EXPECT_EQ(src.next_burst(bufs, 3), 3u);  // 1-frame trace loops forever
  EXPECT_FALSE(src.exhausted());
}

TEST(PcapPort, RxFromTraceTxToCapture) {
  MbufPool pool(64);
  PcapWriter in_writer;
  for (int i = 0; i < 3; ++i) {
    const net::Packet p = make_packet(test::udp_spec(10, 20, 30, 40 + i));
    in_writer.add(p.data(), p.len(), i);
  }
  const PcapReader in = PcapReader::from_buffer(in_writer.buffer());
  ASSERT_TRUE(in.ok());
  TraceSource src(in);
  PcapWriter out;
  PcapPort port(pool, &src, &out);

  net::Packet* burst[kBurstSize];
  const uint32_t n = port.rx_burst(burst, kBurstSize);
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(pool.available(), 64u - 3u);
  EXPECT_EQ(port.tx_burst(burst, n), 3u);  // consumed: written + recycled
  EXPECT_EQ(pool.available(), 64u);
  EXPECT_EQ(out.packets(), 3u);
  EXPECT_EQ(port.counters().rx_packets, 3u);
  EXPECT_EQ(port.counters().tx_packets, 3u);

  const PcapReader echoed = PcapReader::from_buffer(out.buffer());
  ASSERT_TRUE(echoed.ok());
  ASSERT_EQ(echoed.size(), 3u);
  for (size_t i = 0; i < 3; ++i)
    EXPECT_EQ(echoed.packet(i).len, in.packet(i).len);
}

TEST(PcapPort, SwitchHostRunsEntirelyFromCaptureFiles) {
  // A one-rule forwarder: everything from port 1 goes out port 2.  The whole
  // run is capture-file to capture-file.
  PcapWriter in_writer;
  std::vector<std::vector<uint8_t>> sent;
  for (int i = 0; i < 40; ++i) {
    const net::Packet p =
        make_packet(test::udp_spec(0x0A000001 + i, 0x0A000002, 5000, 53), 1);
    sent.push_back({p.data(), p.data() + p.len()});
    in_writer.add(p.data(), p.len(), static_cast<uint64_t>(i) * 1000);
  }
  const PcapReader in = PcapReader::from_buffer(in_writer.buffer());
  ASSERT_TRUE(in.ok());
  TraceSource src(in);

  core::SwitchHost<core::Eswitch> host;
  flow::Pipeline pl;
  pl.table(0).add(flow::parse_rule("priority=10, in_port=1, actions=output:2"));
  host.backend().install(pl);

  PcapWriter captured;
  const PcapRunStats st = run_pcap_through_host(host, src, &captured);
  EXPECT_EQ(st.injected, 40u);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_EQ(st.processed, 40u);
  EXPECT_EQ(st.captured, 40u);
  EXPECT_EQ(host.counters().tx_packets, 40u);
  EXPECT_EQ(host.pool().available(), host.pool().capacity());

  const PcapReader out = PcapReader::from_buffer(captured.buffer());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.size(), 40u);
  for (size_t i = 0; i < out.size(); ++i) {
    const PcapPacket p = out.packet(i);
    ASSERT_EQ(p.len, sent[i].size());
    EXPECT_EQ(0, std::memcmp(p.data, sent[i].data(), p.len))
        << "frame " << i << " mutated in a forward-only pipeline";
  }
}

}  // namespace
}  // namespace esw
