// Connection-tracking subsystem tests: the TCP state machine, expiry and
// eviction, NAT/LB rewrite semantics, the established-only firewall, and
// JIT-vs-interpreter parity over the stateful use cases.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/epoch.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "proto/headers.hpp"
#include "state/conntrack.hpp"
#include "test_util.hpp"
#include "testing/seed.hpp"
#include "usecases/usecases.hpp"

namespace esw {
namespace {

using namespace esw::state;
using core::CompilerConfig;
using core::Eswitch;
using flow::Verdict;
using test::make_packet;

// --- direct-API harness ------------------------------------------------------

struct CtHarness {
  common::EpochDomain domain;
  Conntrack ct;

  explicit CtHarness(CtConfig cfg = manual_cfg()) : ct(cfg, &domain) {}

  static CtConfig manual_cfg() {
    CtConfig cfg;
    cfg.enabled = true;
    cfg.capacity = 1024;
    cfg.manual_clock = true;
    return cfg;
  }

  /// Runs the full pre/post pair the datapath would, with `commit` as the
  /// matched rule's ct:commit decision.  Returns the stamped ct_state.
  uint32_t feed(net::Packet& p, bool commit, uint32_t profile = 0) {
    proto::ParseInfo pi = test::parse_packet(p);
    const uint64_t now = ct.now_ms();
    Conntrack::Hit hit = ct.pre(p.data(), pi, now);
    ct.post(hit, commit, profile, p.data(), pi, now);
    return pi.ct_state;
  }
};

proto::PacketSpec tcp_with_flags(uint32_t src, uint32_t dst, uint16_t sport,
                                 uint16_t dport, uint8_t flags) {
  proto::PacketSpec s = test::tcp_spec(src, dst, sport, dport);
  s.tcp_flags = flags;
  return s;
}

constexpr uint32_t kClient = 0x0A000001;  // 10.0.0.1
constexpr uint32_t kServer = 0xCB007105;  // 203.0.113.5

TcpState tcp_state_of(Conntrack& ct, const FiveTuple& t) {
  Conntrack::Entry* e = ct.find(t);
  EXPECT_NE(e, nullptr);
  return e == nullptr ? TcpState::kClosed
                      : static_cast<TcpState>(e->tcp_state.load());
}

TEST(ConntrackTcp, HandshakeStateMachine) {
  CtHarness h;
  const FiveTuple orig{kClient, kServer, 40000, 443, proto::kIpProtoTcp};

  auto syn = make_packet(tcp_with_flags(kClient, kServer, 40000, 443,
                                        proto::kTcpFlagSyn));
  const uint32_t st_syn = h.feed(syn, /*commit=*/true);
  EXPECT_EQ(st_syn, kCtTracked | kCtNew);  // stamped pre-commit: miss, SYN
  EXPECT_EQ(tcp_state_of(h.ct, orig), TcpState::kSynSent);

  auto synack = make_packet(tcp_with_flags(
      kServer, kClient, 443, 40000,
      proto::kTcpFlagSyn | proto::kTcpFlagAck));
  const uint32_t st_synack = h.feed(synack, false);
  // The SYN-ACK must carry established (iptables semantics: an established-
  // only rule admits the handshake) plus reply and new.
  EXPECT_EQ(st_synack, kCtTracked | kCtEstablished | kCtNew | kCtReply);
  EXPECT_EQ(tcp_state_of(h.ct, orig), TcpState::kSynRecv);

  auto ack = make_packet(tcp_with_flags(kClient, kServer, 40000, 443,
                                        proto::kTcpFlagAck));
  const uint32_t st_ack = h.feed(ack, false);
  // Bits stamp after the transition the packet itself causes: the handshake
  // ACK completes the connection and reads as plain established.
  EXPECT_EQ(st_ack, kCtTracked | kCtEstablished);
  EXPECT_EQ(tcp_state_of(h.ct, orig), TcpState::kEstablished);

  auto data = make_packet(tcp_with_flags(kClient, kServer, 40000, 443,
                                         proto::kTcpFlagAck));
  EXPECT_EQ(h.feed(data, false), kCtTracked | kCtEstablished);

  auto fin1 = make_packet(tcp_with_flags(kClient, kServer, 40000, 443,
                                         proto::kTcpFlagFin | proto::kTcpFlagAck));
  h.feed(fin1, false);
  EXPECT_EQ(tcp_state_of(h.ct, orig), TcpState::kFinWait);
  auto fin2 = make_packet(tcp_with_flags(kServer, kClient, 443, 40000,
                                         proto::kTcpFlagFin | proto::kTcpFlagAck));
  h.feed(fin2, false);
  EXPECT_EQ(tcp_state_of(h.ct, orig), TcpState::kClosed);

  // Late packets on a closed connection stamp invalid.
  auto late = make_packet(tcp_with_flags(kClient, kServer, 40000, 443,
                                         proto::kTcpFlagAck));
  EXPECT_EQ(h.feed(late, false), kCtTracked | kCtInvalid);
}

TEST(ConntrackTcp, SimultaneousOpen) {
  CtHarness h;
  const FiveTuple orig{kClient, kServer, 41000, 7777, proto::kIpProtoTcp};

  auto syn_a = make_packet(tcp_with_flags(kClient, kServer, 41000, 7777,
                                          proto::kTcpFlagSyn));
  h.feed(syn_a, true);
  // The crossing SYN (no ACK) from the other side.
  auto syn_b = make_packet(tcp_with_flags(kServer, kClient, 7777, 41000,
                                          proto::kTcpFlagSyn));
  h.feed(syn_b, false);
  EXPECT_EQ(tcp_state_of(h.ct, orig), TcpState::kSynRecv);

  auto ack = make_packet(tcp_with_flags(kClient, kServer, 41000, 7777,
                                        proto::kTcpFlagAck));
  h.feed(ack, false);
  EXPECT_EQ(tcp_state_of(h.ct, orig), TcpState::kEstablished);
}

TEST(ConntrackTcp, RstTeardown) {
  CtHarness h;
  const FiveTuple orig{kClient, kServer, 42000, 443, proto::kIpProtoTcp};
  auto syn = make_packet(tcp_with_flags(kClient, kServer, 42000, 443,
                                        proto::kTcpFlagSyn));
  h.feed(syn, true);
  auto rst = make_packet(tcp_with_flags(kServer, kClient, 443, 42000,
                                        proto::kTcpFlagRst));
  h.feed(rst, false);
  EXPECT_EQ(tcp_state_of(h.ct, orig), TcpState::kClosed);
  auto late = make_packet(tcp_with_flags(kClient, kServer, 42000, 443,
                                         proto::kTcpFlagAck));
  EXPECT_EQ(h.feed(late, false), kCtTracked | kCtInvalid);
}

TEST(ConntrackTcp, MidstreamPickup) {
  // Off (default): a non-SYN packet stamps invalid and its commit is refused.
  {
    CtHarness h;
    auto ack = make_packet(tcp_with_flags(kClient, kServer, 43000, 443,
                                          proto::kTcpFlagAck));
    EXPECT_EQ(h.feed(ack, true), kCtTracked | kCtInvalid);
    EXPECT_EQ(h.ct.find({kClient, kServer, 43000, 443, proto::kIpProtoTcp}),
              nullptr);
    EXPECT_EQ(h.ct.stats().commits, 0u);
  }
  // On: the same packet commits straight to Established.
  {
    CtConfig cfg = CtHarness::manual_cfg();
    cfg.midstream_pickup = true;
    CtHarness h(cfg);
    auto ack = make_packet(tcp_with_flags(kClient, kServer, 43000, 443,
                                          proto::kTcpFlagAck));
    EXPECT_EQ(h.feed(ack, true), kCtTracked | kCtNew);
    EXPECT_EQ(tcp_state_of(h.ct, {kClient, kServer, 43000, 443, proto::kIpProtoTcp}),
              TcpState::kEstablished);
  }
}

TEST(Conntrack, NonTcpStatesAndIcmpKeying) {
  CtHarness h;
  auto req = make_packet(test::udp_spec(kClient, kServer, 5000, 53));
  EXPECT_EQ(h.feed(req, true), kCtTracked | kCtNew);
  // UDP replies map onto the entry and count as established.
  auto rep = make_packet(test::udp_spec(kServer, kClient, 53, 5000));
  EXPECT_EQ(h.feed(rep, false), kCtTracked | kCtEstablished | kCtReply);
}

TEST(Conntrack, ExpiryUnderManualClock) {
  CtConfig cfg = CtHarness::manual_cfg();
  cfg.udp_timeout_ms = 5'000;
  CtHarness h(cfg);
  h.ct.set_now_ms(1'000);

  auto p = make_packet(test::udp_spec(kClient, kServer, 6000, 53));
  h.feed(p, true);
  ASSERT_NE(h.ct.find({kClient, kServer, 6000, 53, proto::kIpProtoUdp}), nullptr);

  // Refresh half-way: the wheel item re-schedules instead of expiring.
  h.ct.set_now_ms(4'000);
  h.feed(p, false);

  // Before the refreshed deadline nothing expires.
  h.ct.set_now_ms(8'000);
  for (uint32_t i = 0; i < 64; ++i) h.ct.poll(h.ct.now_ms());
  EXPECT_EQ(h.ct.stats().expired, 0u);

  // Past it the wheel removes the entry.
  h.ct.set_now_ms(12'000);
  for (uint32_t i = 0; i < 64; ++i) h.ct.poll(h.ct.now_ms());
  EXPECT_EQ(h.ct.stats().expired, 1u);
  EXPECT_EQ(h.ct.find({kClient, kServer, 6000, 53, proto::kIpProtoUdp}), nullptr);
  EXPECT_EQ(h.ct.stats().live, 0u);
}

TEST(Conntrack, EvictionAtCapacity) {
  CtConfig cfg = CtHarness::manual_cfg();
  cfg.capacity = 16;
  CtHarness h(cfg);

  for (uint32_t i = 0; i < 16; ++i) {
    auto p = make_packet(test::udp_spec(kClient + i, kServer, 7000, 53));
    h.feed(p, true);
  }
  ASSERT_EQ(h.ct.stats().live, 16u);

  // Commit 17: forced eviction + accounted drop (the victim's slot waits out
  // its grace period, so this commit cannot use it).
  auto p17 = make_packet(test::udp_spec(kClient + 100, kServer, 7000, 53));
  h.feed(p17, true);
  Conntrack::Stats s = h.ct.stats();
  EXPECT_EQ(s.evictions_forced, 1u);
  EXPECT_EQ(s.commit_drops, 1u);
  EXPECT_EQ(s.live, 15u);

  // After reclaim (no workers registered: grace is immediate) the table has
  // room again.
  h.ct.flush_reclaim();
  auto p18 = make_packet(test::udp_spec(kClient + 101, kServer, 7000, 53));
  h.feed(p18, true);
  s = h.ct.stats();
  EXPECT_EQ(s.live, 16u);
  EXPECT_EQ(s.commit_drops, 1u);

  // Conservation: every commit is live, expired or evicted.
  EXPECT_EQ(s.commits, s.live + s.expired + s.evictions_forced);
}

TEST(Conntrack, InsertFailpointForcesAccountedEviction) {
  CtHarness h;
  auto p1 = make_packet(test::udp_spec(kClient, kServer, 8000, 53));
  h.feed(p1, true);

  ASSERT_TRUE(common::FailpointRegistry::instance().arm("ct.insert", "nth:1"));
  auto p2 = make_packet(test::udp_spec(kClient + 1, kServer, 8000, 53));
  h.feed(p2, true);
  common::FailpointRegistry::instance().disarm("ct.insert");

  // The fire evicted exactly one healthy entry, then the commit proceeded.
  Conntrack::Stats s = h.ct.stats();
  EXPECT_EQ(s.evictions_forced, 1u);
  EXPECT_EQ(s.commit_drops, 0u);
  EXPECT_EQ(s.commits, 2u);
  EXPECT_EQ(s.live, 1u);
  EXPECT_EQ(s.commits, s.live + s.expired + s.evictions_forced);
}

// --- use cases through the full switch --------------------------------------

CompilerConfig cfg_for(const uc::CtUseCase& c, bool jit = true) {
  CompilerConfig cfg;
  cfg.enable_jit = jit;
  cfg.ct = c.ct;
  return cfg;
}

TEST(CtFirewall, EstablishedOnly) {
  uc::CtUseCase c = uc::make_ct_firewall();
  Eswitch sw(cfg_for(c));
  sw.install(c.pipeline);

  // Unsolicited outside packet: dropped, no state.
  auto probe = make_packet(tcp_with_flags(kServer, kClient, 443, 50000,
                                          proto::kTcpFlagAck),
                           uc::kCtOutsidePort);
  EXPECT_EQ(sw.process(probe).kind, Verdict::Kind::kDrop);
  // Even an outside SYN must not open state through the established-only rule.
  auto osyn = make_packet(tcp_with_flags(kServer, kClient, 443, 50001,
                                         proto::kTcpFlagSyn),
                          uc::kCtOutsidePort);
  EXPECT_EQ(sw.process(osyn).kind, Verdict::Kind::kDrop);

  // Inside SYN commits and forwards out.
  auto syn = make_packet(tcp_with_flags(kClient, kServer, 50000, 443,
                                        proto::kTcpFlagSyn),
                         uc::kCtInsidePort);
  EXPECT_EQ(sw.process(syn), Verdict::output(uc::kCtOutsidePort));

  // Now the server's SYN-ACK is established traffic and passes.
  auto synack = make_packet(tcp_with_flags(
                                kServer, kClient, 443, 50000,
                                proto::kTcpFlagSyn | proto::kTcpFlagAck),
                            uc::kCtOutsidePort);
  EXPECT_EQ(sw.process(synack), Verdict::output(uc::kCtInsidePort));

  // A different outside tuple still drops.
  auto other = make_packet(tcp_with_flags(kServer, kClient, 443, 50999,
                                          proto::kTcpFlagAck),
                           uc::kCtOutsidePort);
  EXPECT_EQ(sw.process(other).kind, Verdict::Kind::kDrop);
}

TEST(CtNat, SnatRewriteAndReverse) {
  uc::CtUseCase c = uc::make_ct_nat(uc::kCtNatDefaultIp);
  Eswitch sw(cfg_for(c));
  sw.install(c.pipeline);

  auto syn = make_packet(tcp_with_flags(kClient, kServer, 51000, 443,
                                        proto::kTcpFlagSyn),
                         uc::kCtInsidePort);
  EXPECT_EQ(sw.process(syn), Verdict::output(uc::kCtOutsidePort));

  // Egress packet carries the translated source.
  proto::ParseInfo pi = test::parse_packet(syn);
  EXPECT_EQ(flow::extract_field(flow::FieldId::kIpSrc, syn.data(), pi),
            uc::kCtNatDefaultIp);
  const uint16_t nat_port = static_cast<uint16_t>(
      flow::extract_field(flow::FieldId::kTcpSrc, syn.data(), pi));
  EXPECT_NE(nat_port, 51000);  // allocated from the profile's range
  // Destination untouched.
  EXPECT_EQ(flow::extract_field(flow::FieldId::kIpDst, syn.data(), pi), kServer);

  // The reply arrives addressed to the NAT ip/port and must be un-NATed back
  // to the inside client.
  auto rep = make_packet(tcp_with_flags(kServer, uc::kCtNatDefaultIp, 443,
                                        nat_port,
                                        proto::kTcpFlagSyn | proto::kTcpFlagAck),
                         uc::kCtOutsidePort);
  EXPECT_EQ(sw.process(rep), Verdict::output(uc::kCtInsidePort));
  proto::ParseInfo rpi = test::parse_packet(rep);
  EXPECT_EQ(flow::extract_field(flow::FieldId::kIpDst, rep.data(), rpi), kClient);
  EXPECT_EQ(flow::extract_field(flow::FieldId::kTcpDst, rep.data(), rpi), 51000u);
  EXPECT_EQ(flow::extract_field(flow::FieldId::kIpSrc, rep.data(), rpi), kServer);
}

TEST(CtLb, AffinityAcrossBackendChurn) {
  uc::CtUseCase c = uc::make_ct_lb(4);
  Eswitch sw(cfg_for(c));
  sw.install(c.pipeline);

  auto backend_of = [&](net::Packet& p) {
    proto::ParseInfo pi = test::parse_packet(p);
    return static_cast<uint32_t>(
        flow::extract_field(flow::FieldId::kIpDst, p.data(), pi));
  };

  auto syn = make_packet(tcp_with_flags(kClient, uc::kCtLbVip, 52000,
                                        uc::kCtLbVipPort, proto::kTcpFlagSyn),
                         uc::kCtInsidePort);
  EXPECT_EQ(sw.process(syn), Verdict::output(uc::kCtOutsidePort));
  const uint32_t chosen = backend_of(syn);
  EXPECT_GE(chosen, uc::kCtLbBackendBase);
  EXPECT_LT(chosen, uc::kCtLbBackendBase + 4);

  // Follow-up packet of the same connection: same backend (affinity).
  auto ack = make_packet(tcp_with_flags(kClient, uc::kCtLbVip, 52000,
                                        uc::kCtLbVipPort, proto::kTcpFlagAck),
                         uc::kCtInsidePort);
  EXPECT_EQ(sw.process(ack), Verdict::output(uc::kCtOutsidePort));
  EXPECT_EQ(backend_of(ack), chosen);

  // Disable the chosen backend: the committed connection keeps its affinity…
  const uint32_t chosen_idx = chosen - uc::kCtLbBackendBase;
  sw.conntrack()->set_backend_enabled(1, chosen_idx, false);
  auto ack2 = make_packet(tcp_with_flags(kClient, uc::kCtLbVip, 52000,
                                         uc::kCtLbVipPort, proto::kTcpFlagAck),
                          uc::kCtInsidePort);
  sw.process(ack2);
  EXPECT_EQ(backend_of(ack2), chosen);

  // …while new connections avoid the disabled backend entirely.
  for (uint32_t i = 0; i < 64; ++i) {
    auto nsyn = make_packet(tcp_with_flags(kClient + 1 + i, uc::kCtLbVip, 53000,
                                           uc::kCtLbVipPort, proto::kTcpFlagSyn),
                            uc::kCtInsidePort);
    ASSERT_EQ(sw.process(nsyn), Verdict::output(uc::kCtOutsidePort));
    EXPECT_NE(backend_of(nsyn), chosen);
  }

  // Backend replies un-NAT back to the VIP.
  Conntrack::Entry* e =
      sw.conntrack()->find({kClient, uc::kCtLbVip, 52000, uc::kCtLbVipPort,
                            proto::kIpProtoTcp});
  ASSERT_NE(e, nullptr);
  auto rep = make_packet(tcp_with_flags(e->reply.src_ip, e->reply.dst_ip,
                                        e->reply.src_port, e->reply.dst_port,
                                        proto::kTcpFlagSyn | proto::kTcpFlagAck),
                         uc::kCtOutsidePort);
  EXPECT_EQ(sw.process(rep), Verdict::output(uc::kCtInsidePort));
  proto::ParseInfo rpi = test::parse_packet(rep);
  EXPECT_EQ(flow::extract_field(flow::FieldId::kIpSrc, rep.data(), rpi),
            uc::kCtLbVip);
  EXPECT_EQ(flow::extract_field(flow::FieldId::kTcpSrc, rep.data(), rpi),
            uc::kCtLbVipPort);
}

// --- JIT vs interpreter parity over the stateful use cases -------------------

void expect_parity(uc::CtUseCase c, size_t n_flows, size_t n_packets,
                   uint64_t seed) {
  Eswitch sw_jit(cfg_for(c, /*jit=*/true));
  Eswitch sw_int(cfg_for(c, /*jit=*/false));
  sw_jit.install(c.pipeline);
  sw_int.install(c.pipeline);

  const auto flows = c.traffic(n_flows, seed);
  ASSERT_FALSE(flows.empty());
  for (size_t i = 0; i < n_packets; ++i) {
    const net::FlowSpec& fs = flows[i % flows.size()];
    auto pa = make_packet(fs.pkt, fs.in_port);
    auto pb = make_packet(fs.pkt, fs.in_port);
    const Verdict va = sw_jit.process(pa);
    const Verdict vb = sw_int.process(pb);
    ASSERT_EQ(va, vb) << "packet " << i;
    ASSERT_EQ(pa.len(), pb.len()) << "packet " << i;
    ASSERT_EQ(std::memcmp(pa.data(), pb.data(), pa.len()), 0)
        << "post-NAT bytes diverge at packet " << i;
  }
  // The two switches also evolved identical connection tables.
  const Conntrack::Stats sa = sw_jit.conntrack()->stats();
  const Conntrack::Stats sb = sw_int.conntrack()->stats();
  EXPECT_EQ(sa.commits, sb.commits);
  EXPECT_EQ(sa.live, sb.live);
  EXPECT_EQ(sa.hits, sb.hits);
}

TEST(CtParity, FirewallJitVsInterpreter) {
  const uint64_t seed = testing::test_seed(0xC7F1, "CtParity.Firewall");
  expect_parity(uc::make_ct_firewall(), 256, 2048, seed);
}

TEST(CtParity, NatJitVsInterpreter) {
  const uint64_t seed = testing::test_seed(0xC7F2, "CtParity.Nat");
  expect_parity(uc::make_ct_nat(uc::kCtNatDefaultIp), 256, 2048, seed);
}

TEST(CtParity, LbJitVsInterpreter) {
  const uint64_t seed = testing::test_seed(0xC7F3, "CtParity.Lb");
  expect_parity(uc::make_ct_lb(4), 256, 2048, seed);
}

// --- concurrent churn --------------------------------------------------------

// Workers hammer a small table with short-timeout flows while expiry,
// eviction and epoch reclamation run underneath.  The assertions are the
// conservation laws; TSan owns the data-race half of this test.
TEST(CtConcurrency, ChurnConservation) {
  const uint64_t seed = testing::test_seed(0xC7C0, "CtConcurrency.Churn");
  const int scale = [] {
    const char* s = std::getenv("ESW_CONC_SCALE");
    return s != nullptr ? std::max(1, std::atoi(s)) : 4;
  }();

  uc::CtUseCase c = uc::make_ct_firewall(/*capacity=*/512);
  c.ct.auto_commit = true;         // every miss inserts: maximal churn
  c.ct.udp_timeout_ms = 1;         // immediate expiry pressure
  c.ct.tcp_syn_timeout_ms = 1;
  c.ct.tcp_est_timeout_ms = 1;
  CompilerConfig cfg = cfg_for(c);
  Eswitch sw(cfg);
  sw.install(c.pipeline);

  constexpr int kWorkers = 3;
  const int bursts = 200 * scale;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    Eswitch::Worker* ctx = sw.register_worker();
    ASSERT_NE(ctx, nullptr);
    threads.emplace_back([&, ctx, w] {
      Rng rng(seed ^ (w * 0x9E3779B97F4A7C15ULL));
      const auto flows = c.traffic(2048, seed + w);
      std::vector<net::Packet> storage(net::kBurstSize);
      net::Packet* pkts[net::kBurstSize];
      flow::Verdict verdicts[net::kBurstSize];
      for (int b = 0; b < bursts; ++b) {
        for (uint32_t i = 0; i < net::kBurstSize; ++i) {
          const net::FlowSpec& fs = flows[rng.below(flows.size())];
          storage[i] = make_packet(fs.pkt, fs.in_port);
          pkts[i] = &storage[i];
        }
        sw.process_burst(*ctx, pkts, net::kBurstSize, verdicts);
      }
    });
  }
  for (auto& t : threads) t.join();

  Conntrack& ct = *sw.conntrack();
  ct.flush_reclaim();
  const Conntrack::Stats s = ct.stats();
  EXPECT_GT(s.commits, 0u);
  // Conservation: every committed entry is live, expired or evicted; every
  // retirement is pending or reclaimed.
  EXPECT_EQ(s.commits, s.live + s.expired + s.evictions_forced);
  EXPECT_EQ(s.retired_total, s.retire_pending + s.reclaimed_total);
  EXPECT_LE(s.live, 512u);
}

}  // namespace
}  // namespace esw
