#include <gtest/gtest.h>

#include "core/eswitch.hpp"
#include "test_util.hpp"
#include "usecases/of_agent.hpp"
#include "usecases/usecases.hpp"

namespace esw {
namespace {

using namespace esw::flow;
using core::Eswitch;
using core::TableTemplate;
using test::ip;
using test::make_packet;

TEST(UseCases, L2CompilesToHashAndForwards) {
  const auto uc = uc::make_l2(100);
  Eswitch sw;
  sw.install(uc.pipeline);
  EXPECT_EQ(sw.table_template(0), TableTemplate::kCompoundHash);

  const auto flows = uc.traffic(1000, 7);
  ASSERT_EQ(flows.size(), 1000u);
  const auto ts = net::TrafficSet::from_flows(flows);
  net::Packet p;
  for (size_t i = 0; i < 1000; ++i) {
    ts.load(i, p);
    const Verdict v = sw.process(p);
    ASSERT_EQ(v.kind, Verdict::Kind::kOutput) << i;  // aligned: no misses
  }
}

TEST(UseCases, L3CompilesToLpmAndForwards) {
  const auto uc = uc::make_l3(1000);
  Eswitch sw;
  sw.install(uc.pipeline);
  EXPECT_EQ(sw.table_template(0), TableTemplate::kLpm);

  const auto ts = net::TrafficSet::from_flows(uc.traffic(500, 3));
  net::Packet p;
  for (size_t i = 0; i < 500; ++i) {
    ts.load(i, p);
    ASSERT_EQ(sw.process(p).kind, Verdict::Kind::kOutput) << i;
  }
  // ESWITCH verdicts equal the reference interpreter's.
  for (size_t i = 0; i < 200; ++i) {
    net::Packet a, b;
    ts.load(i, a);
    ts.load(i, b);
    ASSERT_EQ(sw.process(a), uc.pipeline.run(b));
  }
}

TEST(UseCases, LoadBalancerSplitsOnSourceBit) {
  const auto uc = uc::make_load_balancer(10);
  Eswitch sw;
  sw.install(uc.pipeline);

  auto low = make_packet(test::tcp_spec(0x10000001, 0x0A010003, 5, 80), 1);
  auto high = make_packet(test::tcp_spec(0x90000001, 0x0A010003, 5, 80), 1);
  auto junk = make_packet(test::tcp_spec(0x10000001, 0x0A010003, 5, 81), 1);
  auto reverse = make_packet(test::tcp_spec(0x0A010003, 0x10000001, 80, 5), 16);
  EXPECT_EQ(sw.process(low), Verdict::output(10 + 2 * 3));
  EXPECT_EQ(sw.process(high), Verdict::output(11 + 2 * 3));
  EXPECT_EQ(sw.process(junk), Verdict::drop());
  EXPECT_EQ(sw.process(reverse), Verdict::output(1));
}

TEST(UseCases, LoadBalancerDecompositionPromotesTemplates) {
  // A naive compiler would put the single-stage LB table into the linked
  // list; decomposition promotes it to direct-code/hash stages (§4.1).
  const auto uc = uc::make_load_balancer(50);
  core::CompilerConfig plain;
  Eswitch naive(plain);
  naive.install(uc.pipeline);
  EXPECT_EQ(naive.table_template(0), TableTemplate::kLinkedList);
  EXPECT_FALSE(naive.is_decomposed(0));

  core::CompilerConfig cfg;
  cfg.enable_decomposition = true;
  Eswitch sw(cfg);
  sw.install(uc.pipeline);
  EXPECT_TRUE(sw.is_decomposed(0));
  EXPECT_NE(sw.table_template(0), TableTemplate::kLinkedList);

  // Same behavior under both compilations.
  const auto ts = net::TrafficSet::from_flows(uc.traffic(300, 5));
  net::Packet a, b;
  for (size_t i = 0; i < 300; ++i) {
    ts.load(i, a);
    ts.load(i, b);
    ASSERT_EQ(sw.process(a), naive.process(b)) << i;
  }
}

TEST(UseCases, GatewayNatsAndRoutes) {
  const auto uc = uc::make_gateway(10, 20, 1000);
  Eswitch sw;
  sw.install(uc.pipeline);
  // Table 0 & per-CE & downstream tables are hash templates; the routing
  // table is LPM — the compilation the paper describes for this use case.
  EXPECT_EQ(sw.table_template(0), TableTemplate::kCompoundHash);
  EXPECT_EQ(sw.table_template(1), TableTemplate::kCompoundHash);
  EXPECT_EQ(sw.table_template(uc::kGatewayRoutingTable), TableTemplate::kLpm);
  EXPECT_EQ(sw.table_template(uc::kGatewayDownstreamTable),
            TableTemplate::kCompoundHash);

  // Upstream: user 3 behind CE 2 sends to the Internet.
  proto::PacketSpec spec = test::udp_spec(0x0A000002 + 3, ip("93.184.216.34"), 777, 53);
  spec.vlan_vid = 102;
  auto p = make_packet(spec, 3);
  const Verdict v = sw.process(p);
  EXPECT_EQ(v.kind, Verdict::Kind::kOutput);
  auto pi = test::parse_packet(p);
  EXPECT_FALSE(pi.has(proto::kProtoVlan));  // tag stripped
  EXPECT_EQ(extract_field(FieldId::kIpSrc, p.data(), pi),
            0x64400000u | (2u << 8) | 3u);  // NAT applied

  // Downstream: reply to the public address maps back.
  auto r = make_packet(
      test::udp_spec(ip("93.184.216.34"), 0x64400000u | (2u << 8) | 3u, 53, 777),
      uc::kGatewayNetPort);
  const Verdict rv = sw.process(r);
  EXPECT_EQ(rv, Verdict::output(1 + 2));
  auto rpi = test::parse_packet(r);
  EXPECT_TRUE(rpi.has(proto::kProtoVlan));
  EXPECT_EQ(extract_field(FieldId::kVlanVid, r.data(), rpi), 102u);
  EXPECT_EQ(extract_field(FieldId::kIpDst, r.data(), rpi), 0x0A000002u + 3);

  // Unknown user: admission control -> controller.
  proto::PacketSpec bad = test::udp_spec(0x0A0000FF, ip("1.1.1.1"), 7, 7);
  bad.vlan_vid = 101;
  auto pb = make_packet(bad, 2);
  EXPECT_EQ(sw.process(pb), Verdict::controller());
}

TEST(UseCases, GatewayTrafficDiversity) {
  const auto uc = uc::make_gateway(10, 20, 100);
  const auto flows = uc.traffic(1000, 1);
  ASSERT_EQ(flows.size(), 1000u);
  // Flows must cover all CEs and users.
  std::set<uint32_t> ports;
  for (const auto& f : flows) ports.insert(f.in_port);
  EXPECT_EQ(ports.size(), 10u);
}

TEST(UseCases, FirewallVariantsEquivalent) {
  Eswitch a, b;
  a.install(uc::make_firewall_fig1a());
  b.install(uc::make_firewall_fig1b());
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    auto spec = test::tcp_spec(static_cast<uint32_t>(rng.next()),
                               rng.chance(1, 2) ? ip("192.0.2.1") : ip("9.9.9.9"),
                               static_cast<uint16_t>(rng.next()),
                               rng.chance(1, 2) ? 80 : 22);
    auto p1 = make_packet(spec, 1 + rng.below(2));
    auto p2 = make_packet(spec, p1.in_port());
    ASSERT_EQ(a.process(p1), b.process(p2));
  }
}

TEST(UseCases, SnortAclsDecomposeBelowRuleCount) {
  // §3.2: "with the active 72 rules we obtained only 50 separate tables",
  // 369 -> 197.  Shape: tables < rules at both scales.
  for (const size_t n : {size_t{72}, size_t{369}}) {
    const auto acls = uc::make_snort_like_acls(n);
    const auto d = core::decompose(acls);
    EXPECT_GT(d.tables.size(), 1u) << n;
    EXPECT_LT(d.tables.size(), n) << n;
  }
}

TEST(UseCases, AgentSessionDeliversFlowMods) {
  Eswitch sw;
  sw.install(Pipeline{});
  uc::OfAgent agent(uc::make_dataplane_callbacks(sw));
  uc::OfController ctrl(agent.controller_fd());
  uc::run_handshake(agent, ctrl);

  FlowMod fm;
  fm.table_id = 0;
  fm.priority = 5;
  fm.match.set(FieldId::kUdpDst, 53);
  fm.actions = {Action::output(2)};
  ctrl.send_flow_mod(fm);
  agent.poll();
  EXPECT_EQ(agent.stats().flow_mods, 1u);
  EXPECT_GT(ctrl.bytes(), 0u);

  auto p = make_packet(test::udp_spec(1, 2, 9, 53));
  EXPECT_EQ(sw.process(p), Verdict::output(2));
}

}  // namespace
}  // namespace esw
