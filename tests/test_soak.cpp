// perf/soak.hpp — the long-haul harness at ctest scale: a clean short soak
// passes every check, and each planted fault makes exactly its check fire.
// A soak that cannot fail is a no-op; these tests are the proof it can.
//
// Sizes scale via env (same pattern as ESW_DIFF_*): ESW_SOAK_TEST_PACKETS
// bounds each run (default 60k — seconds on one core), ESW_SOAK_TEST_WORKERS
// the thread count (default 2).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/failpoint.hpp"
#include "perf/bench_json.hpp"
#include "perf/soak.hpp"

namespace {

using esw::perf::Json;
using esw::perf::run_soak;
using esw::perf::SoakOptions;
using esw::perf::SoakReport;

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' ? std::strtoull(s, nullptr, 0) : fallback;
}

SoakOptions test_opts() {
  SoakOptions o;
  o.target_packets = env_u64("ESW_SOAK_TEST_PACKETS", 60000);
  o.max_seconds = 60;  // backstop so a wedged runtime fails fast, not at ctest timeout
  o.workers = static_cast<uint32_t>(env_u64("ESW_SOAK_TEST_WORKERS", 2));
  o.n_prefixes = 500;
  o.n_flows = 2000;
  o.churn_rate = 4000;  // both update shapes must see traffic (see churn_chunk)
  o.checkpoint_every_ms = 20;
  return o;
}

bool has_check(const SoakReport& r, const std::string& name, bool* ok_out) {
  for (const auto& c : r.checks)
    if (c.name == name) {
      *ok_out = c.ok;
      return true;
    }
  return false;
}

/// Asserts the fault run failed overall and that `expect_failed` is the ONE
/// check that fired — a planted fault tripping a neighbouring check would
/// mean the checks alias each other.
void expect_only_failure(const SoakReport& r, const std::string& expect_failed) {
  EXPECT_FALSE(r.ok());
  for (const auto& c : r.checks)
    EXPECT_EQ(c.ok, c.name != expect_failed) << c.name << ": " << c.detail;
}

TEST(Soak, CleanRunPassesEveryCheck) {
  const SoakReport r = run_soak(test_opts());
  EXPECT_GE(r.packets, env_u64("ESW_SOAK_TEST_PACKETS", 60000));
  EXPECT_GT(r.pps, 0);
  EXPECT_GT(r.churn_mods, 0u);
  EXPECT_GE(r.checks.size(), 6u);
  for (const auto& c : r.checks) EXPECT_TRUE(c.ok) << c.name << ": " << c.detail;
  // The percentile block is populated and ordered.
  EXPECT_EQ(r.latency_ns.samples, r.packets);
  EXPECT_GT(r.latency_ns.p50, 0);
  EXPECT_LE(r.latency_ns.p50, r.latency_ns.p99);
  EXPECT_LE(r.latency_ns.p99, r.latency_ns.p999);
  EXPECT_LE(r.latency_ns.p999, r.latency_ns.max);
}

TEST(Soak, ChurnExercisesReclamation) {
  // The soak is only a reclamation test if churn actually retires objects:
  // the clone-and-swap stream must show up in the reclaim check's detail.
  const SoakReport r = run_soak(test_opts());
  bool ok = false;
  ASSERT_TRUE(has_check(r, "reclaim", &ok));
  EXPECT_TRUE(ok);
  for (const auto& c : r.checks) {
    if (c.name == "reclaim") {
      EXPECT_EQ(c.detail.find("retired=0 "), std::string::npos)
          << "churn retired nothing — the reclaim check is vacuous: " << c.detail;
    }
  }
}

TEST(Soak, PlantedBufferLeakFires) {
  SoakOptions o = test_opts();
  o.fault = SoakOptions::Fault::kLeakBuffer;
  expect_only_failure(run_soak(o), "buffer-pool");
}

TEST(Soak, PlantedStuckWorkerFires) {
  SoakOptions o = test_opts();
  o.fault = SoakOptions::Fault::kStuckWorker;
  expect_only_failure(run_soak(o), "reclaim");
}

TEST(Soak, PlantedCounterDriftFires) {
  SoakOptions o = test_opts();
  o.fault = SoakOptions::Fault::kCounterDrift;
  expect_only_failure(run_soak(o), "counter-drift");
}

TEST(Soak, LatencyFloorFailsOnAbsurdCeiling) {
  // A 1ns ceiling no real run can meet: the latency-floor check must fire
  // (and only it).
  const std::string path = ::testing::TempDir() + "soak_floor_absurd.json";
  {
    std::ofstream f(path);
    f << "{\"p50\": 1, \"p999\": 1}";
  }
  SoakOptions o = test_opts();
  o.floor_file = path;
  expect_only_failure(run_soak(o), "latency-floor");
  std::remove(path.c_str());
}

TEST(Soak, LatencyFloorPassesOnGenerousCeiling) {
  const std::string path = ::testing::TempDir() + "soak_floor_generous.json";
  {
    std::ofstream f(path);
    // A second per packet: unreachable by orders of magnitude.
    f << "{\"p50\": 1e9, \"p90\": 1e9, \"p99\": 1e9, \"p999\": 1e9, \"max\": 1e9}";
  }
  SoakOptions o = test_opts();
  o.floor_file = path;
  const SoakReport r = run_soak(o);
  bool ok = false;
  ASSERT_TRUE(has_check(r, "latency-floor", &ok));
  EXPECT_TRUE(ok);
  std::remove(path.c_str());
}

TEST(Soak, FaultNamesParse) {
  EXPECT_EQ(esw::perf::soak_fault_from_name("none"), SoakOptions::Fault::kNone);
  EXPECT_EQ(esw::perf::soak_fault_from_name("leak-buffer"),
            SoakOptions::Fault::kLeakBuffer);
  EXPECT_EQ(esw::perf::soak_fault_from_name("stuck-worker"),
            SoakOptions::Fault::kStuckWorker);
  EXPECT_EQ(esw::perf::soak_fault_from_name("counter-drift"),
            SoakOptions::Fault::kCounterDrift);
  EXPECT_FALSE(esw::perf::soak_fault_from_name("frobnicate").has_value());
}

TEST(Soak, ReportJsonRoundTrips) {
  SoakOptions o = test_opts();
  o.target_packets = env_u64("ESW_SOAK_TEST_PACKETS", 60000) / 4;
  const SoakReport r = run_soak(o);
  const auto doc = Json::parse(r.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("schema", ""), esw::perf::kSoakSchemaId);
  EXPECT_EQ(doc->number_or("packets", -1), static_cast<double>(r.packets));
  const Json* checks = doc->find("checks");
  ASSERT_NE(checks, nullptr);
  EXPECT_EQ(checks->items().size(), r.checks.size());
  for (size_t i = 0; i < r.checks.size(); ++i) {
    EXPECT_EQ(checks->items()[i].string_or("name", ""), r.checks[i].name);
    EXPECT_EQ(checks->items()[i].find("ok")->as_bool(), r.checks[i].ok);
  }
  const Json* lat = doc->find("latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->number_or("p999", -1), r.latency_ns.p999);
  EXPECT_EQ(doc->find("ok")->as_bool(), r.ok());
}

TEST(Soak, ChaosRunPassesAllChecks) {
  // The full failpoint schedule rotates through the run; every injected fault
  // must land in a degradation counter and every standard check still hold.
  SoakOptions o = test_opts();
  o.chaos = true;
  o.chaos_period_ms = 50;
  o.target_packets = 0;  // pure time bound: the window count is what matters
  o.max_seconds = 2.0;   // long enough that every slot sees churn, twice over
  const SoakReport r = run_soak(o);
  EXPECT_TRUE(r.chaos);
  for (const auto& c : r.checks) EXPECT_TRUE(c.ok) << c.name << ": " << c.detail;
  // At least one full rotation of the 6-slot schedule...
  EXPECT_GE(r.chaos_windows, 6u);
  // ...and the faults genuinely fired at distinct points (>= 5 of them).
  size_t fired = 0;
  for (const auto& fp : r.failpoints) fired += fp.fires > 0;
  EXPECT_GE(fired, 5u);
  // Nothing stays armed after the run.
  EXPECT_FALSE(esw::common::FailpointRegistry::any_armed());
}

TEST(Soak, ChaosPlantedUnhandledLeakTrips) {
  // A fault with NO degradation path (a stolen pool buffer) must still trip
  // the conservation checks under chaos — proof the chaos run cannot mask a
  // real bug behind "expected" injected faults.
  ASSERT_TRUE(esw::common::FailpointRegistry::instance().arm("soak.leak_buffer",
                                                             "nth:1"));
  SoakOptions o = test_opts();
  o.chaos = true;
  o.chaos_period_ms = 50;
  o.target_packets = 0;
  o.max_seconds = 0.5;
  const SoakReport r = run_soak(o);  // disarms everything on its way out
  EXPECT_FALSE(r.ok());
  bool ok = true;
  ASSERT_TRUE(has_check(r, "buffer-pool", &ok));
  EXPECT_FALSE(ok);
  EXPECT_FALSE(esw::common::FailpointRegistry::any_armed());
}

TEST(Soak, ChaosReportJsonCarriesDegradation) {
  SoakOptions o = test_opts();
  o.chaos = true;
  o.chaos_period_ms = 50;
  o.target_packets = 0;
  o.max_seconds = 0.5;
  const SoakReport r = run_soak(o);
  const auto doc = Json::parse(r.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("chaos")->as_bool(), true);
  EXPECT_EQ(doc->number_or("chaos_windows", -1),
            static_cast<double>(r.chaos_windows));
  const Json* deg = doc->find("degradation");
  ASSERT_NE(deg, nullptr);
  for (const char* key :
       {"pool_exhausted", "backpressure_events", "jit_fallbacks",
        "template_fallbacks", "mods_refused_table_full", "watchdog_stalled",
        "watchdog_recovered"})
    EXPECT_NE(deg->find(key), nullptr) << key;
  const Json* fps = doc->find("failpoints");
  ASSERT_NE(fps, nullptr);
  EXPECT_EQ(fps->items().size(), r.failpoints.size());
  EXPECT_FALSE(fps->items().empty());
}

TEST(Soak, TimeBoundedRunStops) {
  SoakOptions o = test_opts();
  o.target_packets = 0;  // pure time bound
  o.max_seconds = 0.2;
  const SoakReport r = run_soak(o);
  EXPECT_GT(r.packets, 0u);
  EXPECT_GE(r.seconds, 0.2);
  EXPECT_LT(r.seconds, 30.0);
  for (const auto& c : r.checks) EXPECT_TRUE(c.ok) << c.name << ": " << c.detail;
}

}  // namespace
