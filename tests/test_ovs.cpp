#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ovs/ovs_switch.hpp"
#include "test_util.hpp"
#include "usecases/usecases.hpp"

namespace esw {
namespace {

using namespace esw::flow;
using ovs::MegaflowMode;
using ovs::OvsSwitch;
using test::ip;
using test::make_packet;

Pipeline simple_pipeline() {
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=20,tcp_dst=80,actions=output:1"));
  pl.table(0).add(parse_rule("priority=10,ip_dst=10.0.0.0/8,actions=output:2"));
  pl.table(0).add(parse_rule("priority=1,actions=drop"));
  return pl;
}

TEST(Ovs, CacheHierarchyProgression) {
  OvsSwitch sw;
  sw.install(simple_pipeline());

  auto p1 = make_packet(test::tcp_spec(1, 2, 1000, 80));
  EXPECT_EQ(sw.process(p1), Verdict::output(1));
  EXPECT_EQ(sw.cache_stats().upcalls, 1u);  // first packet: slow path

  // Same flow again: microflow hit.
  auto p2 = make_packet(test::tcp_spec(1, 2, 1000, 80));
  EXPECT_EQ(sw.process(p2), Verdict::output(1));
  EXPECT_EQ(sw.cache_stats().microflow_hits, 1u);

  // Same megaflow, different microflow (source port differs): megaflow hit.
  auto p3 = make_packet(test::tcp_spec(1, 2, 2000, 80));
  EXPECT_EQ(sw.process(p3), Verdict::output(1));
  EXPECT_EQ(sw.cache_stats().megaflow_hits, 1u);
  EXPECT_EQ(sw.cache_stats().upcalls, 1u);
}

TEST(Ovs, TtlChangeMissesMicroflow) {
  // §2.2: "essentially any change in the packet header inside an established
  // flow (e.g., the IP TTL field) results in a cache miss" at the microflow
  // level.
  OvsSwitch sw;
  sw.install(simple_pipeline());
  auto spec = test::tcp_spec(1, 2, 1000, 80);
  spec.ip_ttl = 64;
  auto p1 = make_packet(spec);
  sw.process(p1);
  auto p2 = make_packet(spec);
  sw.process(p2);
  EXPECT_EQ(sw.cache_stats().microflow_hits, 1u);

  spec.ip_ttl = 63;  // TTL changed: same megaflow, microflow miss
  auto p3 = make_packet(spec);
  sw.process(p3);
  EXPECT_EQ(sw.cache_stats().microflow_hits, 1u);
  EXPECT_EQ(sw.cache_stats().megaflow_hits, 1u);
}

TEST(Ovs, MegaflowAggregatesHighPortEntropy) {
  // The pipeline does not match on tcp_src, so one megaflow covers all
  // source ports of the same service flow.
  OvsSwitch::Config cfg;
  cfg.enable_microflow = false;
  OvsSwitch sw(cfg);
  sw.install(simple_pipeline());
  for (uint16_t sport = 1; sport <= 100; ++sport) {
    auto p = make_packet(test::tcp_spec(7, 8, sport, 80));
    ASSERT_EQ(sw.process(p), Verdict::output(1));
  }
  EXPECT_EQ(sw.cache_stats().upcalls, 1u);
  EXPECT_EQ(sw.megaflow().size(), 1u);
}

TEST(Ovs, HighPriorityRuleUnwildcardsConsidered) {
  // A fine-grained higher-priority rule "punches a hole" in the aggregates:
  // packets that don't match it still carry its fields in their megaflow.
  OvsSwitch::Config cfg;
  cfg.enable_microflow = false;
  OvsSwitch sw(cfg);
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=20,tcp_src=666,tcp_dst=80,actions=drop"));
  pl.table(0).add(parse_rule("priority=10,tcp_dst=80,actions=output:1"));
  pl.table(0).add(parse_rule("priority=1,actions=drop"));
  sw.install(pl);

  // 50 source ports now need 50 megaflows (tcp_src was considered).
  for (uint16_t sport = 1; sport <= 50; ++sport) {
    auto p = make_packet(test::tcp_spec(7, 8, sport, 80));
    ASSERT_EQ(sw.process(p), Verdict::output(1));
  }
  EXPECT_EQ(sw.megaflow().size(), 50u);
  EXPECT_EQ(sw.cache_stats().upcalls, 50u);
}

TEST(Ovs, UpdateInvalidatesWholeCache) {
  OvsSwitch sw;
  sw.install(simple_pipeline());
  for (uint16_t sport = 1; sport <= 20; ++sport) {
    auto p = make_packet(test::tcp_spec(7, 8, sport, 80));
    sw.process(p);
  }
  EXPECT_GT(sw.megaflow().size(), 0u);

  sw.add_flow(0, parse_rule("priority=30,tcp_dst=81,actions=output:3"));
  EXPECT_EQ(sw.megaflow().size(), 0u);  // brute-force invalidation

  // Old traffic must repopulate through the slow path (and stay correct).
  auto p = make_packet(test::tcp_spec(7, 8, 1, 80));
  const auto upcalls_before = sw.cache_stats().upcalls;
  EXPECT_EQ(sw.process(p), Verdict::output(1));
  EXPECT_EQ(sw.cache_stats().upcalls, upcalls_before + 1);
}

TEST(Ovs, FlowLimitEvictsAndStampsProtectMicroflow) {
  OvsSwitch::Config cfg;
  cfg.megaflow_flow_limit = 8;
  OvsSwitch sw(cfg);
  Pipeline pl;  // an exact tcp_src rule unwildcards the port: one megaflow
  pl.table(0).add(parse_rule("priority=10,tcp_src=9999,actions=output:1"));  // per flow
  pl.table(0).add(parse_rule("priority=5,actions=output:2"));
  sw.install(pl);

  for (uint16_t sport = 0; sport < 64; ++sport) {
    auto p = make_packet(test::tcp_spec(7, 8, sport, 80));
    ASSERT_EQ(sw.process(p), Verdict::output(2));
  }
  EXPECT_LE(sw.megaflow().size(), 8u);
  EXPECT_GT(sw.megaflow().evictions(), 0u);

  // Revisit the earliest flow: its megaflow was evicted; the stale microflow
  // pointer must not resurrect it.
  auto p = make_packet(test::tcp_spec(7, 8, 0, 80));
  EXPECT_EQ(sw.process(p), Verdict::output(2));
}

TEST(Ovs, MissCachesDropMegaflow) {
  OvsSwitch::Config cfg;
  cfg.enable_microflow = false;
  OvsSwitch sw(cfg);
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=10,tcp_dst=80,actions=output:1"));
  sw.install(pl);

  auto p1 = make_packet(test::tcp_spec(1, 2, 3, 81));
  EXPECT_EQ(sw.process(p1), Verdict::drop());
  auto p2 = make_packet(test::tcp_spec(1, 2, 3, 81));
  EXPECT_EQ(sw.process(p2), Verdict::drop());
  EXPECT_EQ(sw.cache_stats().upcalls, 1u);  // the drop decision was cached

  // Non-IP traffic must not be swallowed by the drop megaflow's wildcard:
  // protocol fields are always unwildcarded in union mode.
  proto::PacketSpec arp;
  arp.kind = proto::PacketKind::kArp;
  auto p3 = make_packet(arp);
  EXPECT_EQ(sw.process(p3), Verdict::drop());
  EXPECT_EQ(sw.cache_stats().upcalls, 2u);  // distinct megaflow, not a false hit
}

TEST(Ovs, Fig3OrderDependence) {
  // The paper's Fig. 3: same table, same 7 packets — 7 megaflow entries under
  // arrival sequence 1, a single entry under sequence 2.
  for (const bool seq2_first : {false, true}) {
    OvsSwitch::Config cfg;
    cfg.enable_microflow = false;
    cfg.megaflow_mode = MegaflowMode::kMinimal;
    OvsSwitch sw(cfg);
    sw.install(uc::make_fig3_pipeline());

    const auto seq = seq2_first ? uc::fig3_sequence_2() : uc::fig3_sequence_1();
    for (const auto& fs : seq) {
      auto p = test::make_packet(fs.pkt, fs.in_port);
      ASSERT_EQ(sw.process(p), Verdict::output(1));
    }
    if (seq2_first)
      EXPECT_EQ(sw.megaflow().size(), 1u);  // "only a single entry arises"
    else
      EXPECT_EQ(sw.megaflow().size(), 7u);  // "yields 7 megaflow cache entries"
  }
}

TEST(Ovs, NatActionsReplayFromCache) {
  // Cached megaflows must replay packet mutations, not just the verdict.
  OvsSwitch sw;
  Pipeline pl;
  pl.table(0).add(parse_rule(
      "priority=10,ip_src=10.0.0.2,actions=set_field:ip_src=100.64.0.1,output:1"));
  sw.install(pl);

  for (int i = 0; i < 3; ++i) {
    auto p = make_packet(test::udp_spec(ip("10.0.0.2"), ip("8.8.8.8"), 5, 6));
    EXPECT_EQ(sw.process(p), Verdict::output(1));
    auto pi = test::parse_packet(p);
    EXPECT_EQ(extract_field(FieldId::kIpSrc, p.data(), pi), ip("100.64.0.1"));
  }
  EXPECT_EQ(sw.cache_stats().upcalls, 1u);
  EXPECT_EQ(sw.cache_stats().microflow_hits, 2u);
}

// Property: whatever the cache state, OVS-model verdicts equal the reference
// interpreter's on random pipelines and random traffic.
TEST(Ovs, PropertyEquivalentToInterpreter) {
  Rng rng(0x0755);
  for (int round = 0; round < 10; ++round) {
    Pipeline pl;
    const int n_tables = 1 + static_cast<int>(rng.below(2));
    for (int t = 0; t < n_tables; ++t) {
      const int n = 1 + static_cast<int>(rng.below(10));
      for (int i = 0; i < n; ++i) {
        Match m;
        if (rng.chance(1, 2)) m.set(FieldId::kUdpDst, 40 + rng.below(5));
        if (rng.chance(1, 3)) m.set(FieldId::kIpDst, rng.below(3) << 8, 0xFFFFFF00);
        if (rng.chance(1, 3)) m.set(FieldId::kTcpDst, 80 + rng.below(2));
        if (rng.chance(1, 4)) m.set(FieldId::kInPort, rng.below(2));
        FlowEntry e;
        e.match = m;
        e.priority = static_cast<uint16_t>(500 - i);
        if (t + 1 < n_tables && rng.chance(1, 4))
          e.goto_table = static_cast<int16_t>(t + 1);
        else
          e.actions = {Action::output(static_cast<uint32_t>(rng.below(4)))};
        pl.table(static_cast<uint8_t>(t)).add(e);
      }
    }
    OvsSwitch::Config cfg;
    cfg.megaflow_flow_limit = 16;  // stress eviction paths
    cfg.enable_microflow = rng.chance(1, 2);
    OvsSwitch sw(cfg);
    sw.install(pl);

    for (int q = 0; q < 500; ++q) {
      proto::PacketSpec spec;
      spec.kind = rng.chance(1, 2) ? proto::PacketKind::kUdp : proto::PacketKind::kTcp;
      spec.ip_dst = static_cast<uint32_t>((rng.below(4) << 8) | rng.below(2));
      spec.sport = static_cast<uint16_t>(rng.below(3));
      spec.dport = static_cast<uint16_t>(40 + rng.below(45));
      auto p1 = make_packet(spec, static_cast<uint32_t>(rng.below(3)));
      auto p2 = make_packet(spec, p1.in_port());
      ASSERT_EQ(sw.process(p1), pl.run(p2)) << "round " << round << " q " << q;
      ASSERT_EQ(std::memcmp(p1.data(), p2.data(), p1.len()), 0);
    }
  }
}

}  // namespace
}  // namespace esw
