#include <gtest/gtest.h>

#include <cstring>

#include "core/eswitch.hpp"
#include "core/switch_host.hpp"
#include "flow/dsl.hpp"
#include "ovs/ovs_switch.hpp"
#include "test_util.hpp"

namespace esw {
namespace {

using namespace esw::flow;

// ---------------------------------------------------------------------------
// PortSet
// ---------------------------------------------------------------------------

TEST(PortSet, NumbersPortsFromOne) {
  net::PortSet ps(3);
  EXPECT_EQ(ps.size(), 3u);
  EXPECT_FALSE(ps.valid(0));  // OpenFlow reserves port 0
  EXPECT_TRUE(ps.valid(1));
  EXPECT_TRUE(ps.valid(3));
  EXPECT_FALSE(ps.valid(4));
  EXPECT_EQ(ps.port(1).name(), "port-1");
  EXPECT_EQ(ps.port(3).name(), "port-3");
}

TEST(PortSet, AddPortExtends) {
  net::PortSet ps(1);
  net::Port::Config cfg;
  cfg.name = "uplink";
  const uint32_t no = ps.add_port(cfg);
  EXPECT_EQ(no, 2u);
  EXPECT_EQ(ps.port(2).name(), "uplink-2");
  EXPECT_TRUE(ps.valid(2));
}

TEST(PortSet, InvalidPortThrows) {
  net::PortSet ps(2);
  EXPECT_THROW(ps.port(0), CheckError);
  EXPECT_THROW(ps.port(3), CheckError);
}

TEST(PortSet, ForEachExceptSkipsIngress) {
  net::PortSet ps(4);
  std::vector<uint32_t> visited;
  ps.for_each_except(2, [&](uint32_t no, net::Port&) { visited.push_back(no); });
  EXPECT_EQ(visited, (std::vector<uint32_t>{1, 3, 4}));
  visited.clear();
  ps.for_each_except(0, [&](uint32_t no, net::Port&) { visited.push_back(no); });
  EXPECT_EQ(visited, (std::vector<uint32_t>{1, 2, 3, 4}));
}

TEST(PortSet, TotalsAggregate) {
  net::PortSet ps(2);
  net::Packet a = test::make_packet(test::udp_spec(1, 2, 3, 4));
  net::Packet* pa = &a;
  ps.port(1).inject_rx(&pa, 1);
  ps.port(2).tx_burst(&pa, 1);
  const net::PortCounters t = ps.totals();
  EXPECT_EQ(t.rx_packets, 1u);
  EXPECT_EQ(t.tx_packets, 1u);
  EXPECT_EQ(t.rx_bytes, a.len());
  EXPECT_EQ(t.tx_bytes, a.len());
}

// ---------------------------------------------------------------------------
// SwitchHost over both backends (the unified Dataplane interface)
// ---------------------------------------------------------------------------

template <typename Backend>
class SwitchHostTest : public ::testing::Test {
 protected:
  using Host = core::SwitchHost<Backend>;

  static typename Host::Config small_config() {
    typename Host::Config cfg;
    cfg.n_ports = 4;
    cfg.pool_capacity = 64;
    return cfg;
  }

  /// in_port=1 HTTP -> output:2; broadcast dst -> flood; udp_dst=99 ->
  /// output to a port that does not exist; everything else in table 0 drops;
  /// table 1 (port-4 traffic) punts to the controller.
  static Pipeline pipeline() {
    Pipeline pl;
    pl.table(0).add(parse_rule(
        "priority=100, in_port=1, ip_dst=192.0.2.7, tcp_dst=80, actions=output:2"));
    pl.table(0).add(
        parse_rule("priority=90, eth_dst=ff:ff:ff:ff:ff:ff, actions=flood"));
    pl.table(0).add(parse_rule("priority=80, udp_dst=99, actions=output:200"));
    pl.table(0).add(parse_rule("priority=70, in_port=4, actions=,goto:1"));
    pl.table(0).add(parse_rule("priority=1, actions=drop"));
    pl.table(1).add(parse_rule("priority=1, actions=controller"));
    return pl;
  }

  static uint32_t inject_spec(Host& host, const proto::PacketSpec& spec,
                              uint32_t in_port) {
    uint8_t frame[256];
    const uint32_t len = proto::build_packet(spec, frame, sizeof frame);
    EXPECT_TRUE(host.inject(in_port, frame, len));
    return len;
  }

  static proto::PacketSpec http_spec() {
    proto::PacketSpec s = test::tcp_spec(test::ip("10.0.0.1"), test::ip("192.0.2.7"),
                                         4000, 80);
    return s;
  }
};

using Backends = ::testing::Types<core::Eswitch, ovs::OvsSwitch>;
TYPED_TEST_SUITE(SwitchHostTest, Backends);

TYPED_TEST(SwitchHostTest, OutputLandsOnEgressPort) {
  typename TestFixture::Host host(TestFixture::small_config());
  host.backend().install(TestFixture::pipeline());

  const uint32_t len = TestFixture::inject_spec(host, TestFixture::http_spec(), 1);
  EXPECT_EQ(host.poll(), 1u);

  net::Packet* out[net::kBurstSize];
  ASSERT_EQ(host.drain_tx(2, out, net::kBurstSize), 1u);
  EXPECT_EQ(out[0]->len(), len);
  EXPECT_EQ(out[0]->in_port(), 1u);
  host.release(out[0]);
  EXPECT_EQ(host.counters().tx_packets, 1u);
  EXPECT_EQ(host.ports().port(2).counters().tx_packets, 1u);
  // Verdict-level stats flow through the unified interface.
  const core::DataplaneStats st = host.backend().stats();
  EXPECT_EQ(st.packets, 1u);
  EXPECT_EQ(st.outputs, 1u);
}

TYPED_TEST(SwitchHostTest, FloodFansOutToAllPortsExceptIngress) {
  typename TestFixture::Host host(TestFixture::small_config());
  host.backend().install(TestFixture::pipeline());

  proto::PacketSpec bcast = test::udp_spec(1, 2, 3, 4);
  bcast.eth_dst = 0xFFFFFFFFFFFF;
  TestFixture::inject_spec(host, bcast, 3);
  host.poll();

  // Copies on every port except ingress port 3 — and nothing on 3.
  net::Packet* out[net::kBurstSize];
  for (const uint32_t no : {1u, 2u, 4u}) {
    ASSERT_EQ(host.drain_tx(no, out, net::kBurstSize), 1u) << "port " << no;
    EXPECT_EQ(out[0]->in_port(), 3u);
    host.release(out[0]);
  }
  EXPECT_EQ(host.drain_tx(3, out, net::kBurstSize), 0u);
  EXPECT_EQ(host.counters().flood_copies, 3u);
  // All buffers (original + copies) are back in the pool.
  EXPECT_EQ(host.pool().available(), host.pool().capacity());
}

TYPED_TEST(SwitchHostTest, ControllerVerdictBecomesPacketInEvent) {
  typename TestFixture::Host host(TestFixture::small_config());
  host.backend().install(TestFixture::pipeline());

  const proto::PacketSpec spec = test::udp_spec(5, 6, 7, 8);
  uint8_t frame[256];
  const uint32_t len = proto::build_packet(spec, frame, sizeof frame);
  ASSERT_TRUE(host.inject(4, frame, len));
  host.poll();

  const auto events = host.drain_packet_ins();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].in_port, 4u);
  ASSERT_EQ(events[0].frame.size(), len);
  EXPECT_EQ(std::memcmp(events[0].frame.data(), frame, len), 0);
  EXPECT_EQ(host.counters().packet_ins, 1u);
  EXPECT_EQ(host.pool().available(), host.pool().capacity());
  // Drained once: the queue is consumed.
  EXPECT_TRUE(host.drain_packet_ins().empty());
}

TYPED_TEST(SwitchHostTest, PacketInSinkBypassesBuffering) {
  typename TestFixture::Host host(TestFixture::small_config());
  host.backend().install(TestFixture::pipeline());
  std::vector<core::PacketInEvent> seen;
  host.set_packet_in_sink([&](const core::PacketInEvent& ev) { seen.push_back(ev); });

  TestFixture::inject_spec(host, test::udp_spec(5, 6, 7, 8), 4);
  host.poll();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].in_port, 4u);
  EXPECT_TRUE(host.drain_packet_ins().empty());
}

TYPED_TEST(SwitchHostTest, DropAndBadPortRecycleBuffers) {
  typename TestFixture::Host host(TestFixture::small_config());
  host.backend().install(TestFixture::pipeline());

  TestFixture::inject_spec(host, test::udp_spec(1, 2, 3, 9999), 2);  // drop rule
  TestFixture::inject_spec(host, test::udp_spec(1, 2, 3, 99), 2);    // output:200
  host.poll();

  EXPECT_EQ(host.counters().drops, 1u);
  EXPECT_EQ(host.counters().bad_port, 1u);
  EXPECT_EQ(host.counters().tx_packets, 0u);
  EXPECT_EQ(host.pool().available(), host.pool().capacity());
}

TYPED_TEST(SwitchHostTest, PacketOutExecutesActionList) {
  typename TestFixture::Host host(TestFixture::small_config());
  host.backend().install(TestFixture::pipeline());

  uint8_t frame[256];
  const uint32_t len = proto::build_packet(test::udp_spec(1, 2, 3, 4), frame, sizeof frame);

  // Unicast PACKET_OUT.
  ASSERT_TRUE(host.packet_out(frame, len, 1, {Action::output(3)}));
  EXPECT_EQ(host.drain_and_release_tx(3), 1u);

  // Flood PACKET_OUT honors the ingress exclusion.
  ASSERT_TRUE(host.packet_out(frame, len, 2, {Action::flood()}));
  EXPECT_EQ(host.drain_and_release_tx(1), 1u);
  EXPECT_EQ(host.drain_and_release_tx(2), 0u);
  EXPECT_EQ(host.drain_and_release_tx(3), 1u);
  EXPECT_EQ(host.drain_and_release_tx(4), 1u);
  EXPECT_EQ(host.pool().available(), host.pool().capacity());
}

TYPED_TEST(SwitchHostTest, BurstOfMixedVerdicts) {
  typename TestFixture::Host host(TestFixture::small_config());
  host.backend().install(TestFixture::pipeline());

  // A full burst's worth of interleaved traffic on one port.
  const proto::PacketSpec fwd = TestFixture::http_spec();
  const proto::PacketSpec dropped = test::udp_spec(1, 2, 3, 9999);
  for (uint32_t i = 0; i < net::kBurstSize; ++i)
    TestFixture::inject_spec(host, (i % 2 == 0) ? fwd : dropped, 1);

  EXPECT_EQ(host.poll(), net::kBurstSize);
  EXPECT_EQ(host.counters().tx_packets, net::kBurstSize / 2);
  EXPECT_EQ(host.counters().drops, net::kBurstSize / 2);
  EXPECT_EQ(host.drain_and_release_tx(2), net::kBurstSize / 2);
  EXPECT_EQ(host.pool().available(), host.pool().capacity());
}

TYPED_TEST(SwitchHostTest, RuntimeFlowModsThroughUnifiedApply) {
  typename TestFixture::Host host(TestFixture::small_config());
  host.backend().install(TestFixture::pipeline());

  // Redirect the HTTP flow 2 -> 4 via the unified apply().
  FlowMod fm;
  fm.table_id = 0;
  fm.priority = 110;
  fm.match.set(FieldId::kInPort, 1);
  fm.match.set(FieldId::kIpDst, test::ip("192.0.2.7"));
  fm.match.set(FieldId::kTcpDst, 80);
  fm.actions = {Action::output(4)};
  host.backend().apply(fm);

  TestFixture::inject_spec(host, TestFixture::http_spec(), 1);
  host.poll();
  EXPECT_EQ(host.drain_and_release_tx(2), 0u);
  EXPECT_EQ(host.drain_and_release_tx(4), 1u);

  // And batch-delete it again.
  FlowMod del = fm;
  del.command = FlowMod::Cmd::kDelete;
  del.actions.clear();
  host.backend().apply_batch({del});
  TestFixture::inject_spec(host, TestFixture::http_spec(), 1);
  host.poll();
  EXPECT_EQ(host.drain_and_release_tx(2), 1u);
}

TEST(SwitchHost, InjectToInvalidPortIsCountedAndLeaksNothing) {
  core::SwitchHost<core::Eswitch> host({.n_ports = 2, .port = {}, .pool_capacity = 4});
  host.backend().install(Pipeline{});
  uint8_t frame[128];
  const uint32_t len = proto::build_packet(test::udp_spec(1, 2, 3, 4), frame, sizeof frame);
  EXPECT_FALSE(host.inject(0, frame, len));
  EXPECT_FALSE(host.inject(3, frame, len));
  EXPECT_EQ(host.counters().bad_port, 2u);
  EXPECT_EQ(host.counters().rx_packets, 0u);
  EXPECT_EQ(host.pool().available(), host.pool().capacity());  // no leaked buffer
}

TEST(SwitchHost, PoolExhaustionIsCountedNotFatal) {
  core::SwitchHost<core::Eswitch>::Config cfg;
  cfg.n_ports = 4;
  cfg.pool_capacity = 2;  // flood needs 3 copies: one must fail
  core::SwitchHost<core::Eswitch> host(cfg);
  Pipeline pl;
  pl.table(0).add(parse_rule("priority=1, actions=flood"));
  host.backend().install(pl);

  uint8_t frame[128];
  const uint32_t len = proto::build_packet(test::udp_spec(1, 2, 3, 4), frame, sizeof frame);
  ASSERT_TRUE(host.inject(1, frame, len));
  host.poll();
  EXPECT_GT(host.counters().pool_exhausted, 0u);
  EXPECT_GT(host.counters().flood_copies, 0u);
  host.ports().for_each_except(
      0, [&](uint32_t no, net::Port&) { host.drain_and_release_tx(no); });
  EXPECT_EQ(host.pool().available(), host.pool().capacity());
}

}  // namespace
}  // namespace esw