// Automatic performance-model derivation (§5's future-work item): the
// compiler-composed model must match the paper's hand-derived gateway model
// and track the templates actually chosen.
#include <gtest/gtest.h>

#include "core/model.hpp"
#include "test_util.hpp"
#include "usecases/usecases.hpp"

namespace esw {
namespace {

using core::derive_hot_path;
using core::derive_model;
using core::Eswitch;

TEST(ModelDerive, GatewayPathMatchesHandModel) {
  const auto uc = uc::make_gateway(10, 20, 10000);
  Eswitch sw;
  sw.install(uc.pipeline);

  // The user→network path: table 0 (hash) -> per-CE (hash) -> routing (LPM).
  const auto m = derive_model(sw, {0, 1, uc::kGatewayRoutingTable});
  const auto hand = perf::CostModel::gateway_model();

  // Hand model pins table 0's access at L1 (fixed +4 cycles); the derived
  // model charges it as a variable access, so totals agree at Lx = L1.
  EXPECT_EQ(m.cycles(4), hand.cycles(4));  // 178 at L1
  EXPECT_EQ(m.variable_accesses(), hand.variable_accesses() + 1);
  EXPECT_EQ(m.fixed_cycles() + 4, hand.fixed_cycles());
}

TEST(ModelDerive, HotPathFromProfilingStats) {
  const auto uc = uc::make_gateway(4, 10, 1000);
  Eswitch sw;
  sw.install(uc.pipeline);

  // Upstream-only traffic: the downstream table must not enter the hot path;
  // per-CE tables individually serve ~1/4 of packets each.
  const auto ts = net::TrafficSet::from_flows(uc.traffic(256, 3));
  net::Packet p;
  for (size_t i = 0; i < 4096; ++i) {
    ts.load(i, p);
    sw.process(p);
  }
  const auto hot = derive_hot_path(sw, 0.5);
  ASSERT_GE(hot.size(), 2u);
  EXPECT_EQ(hot.front(), 0);                          // table 0 on every packet
  EXPECT_EQ(hot.back(), uc::kGatewayRoutingTable);    // and the RIB
  for (const uint8_t id : hot) EXPECT_NE(id, uc::kGatewayDownstreamTable);

  const auto m = derive_model(sw, hot);
  EXPECT_GT(m.cycles(4), 0u);
  EXPECT_LT(m.cycles(4), m.cycles(29));
}

TEST(ModelDerive, TracksChosenTemplates) {
  // A linked-list table must be charged per tuple; a direct-code table per
  // entry; templates change => the derived model changes.
  flow::Pipeline small;
  small.table(0).add(flow::parse_rule("priority=5,udp_dst=1,actions=output:1"));
  Eswitch sw;
  sw.install(small);
  const auto direct = derive_model(sw, {0});

  flow::Pipeline mixed;
  for (int i = 0; i < 4; ++i) {
    mixed.table(0).add(
        flow::parse_rule("priority=5,udp_dst=" + std::to_string(i) + ",actions=output:1"));
    mixed.table(0).add(flow::parse_rule("priority=4,ip_src=" + std::to_string(i) +
                                        ".0.0.1,actions=output:2"));
  }
  core::CompilerConfig cfg;
  cfg.direct_code_max_entries = 2;
  Eswitch sw2(cfg);
  sw2.install(mixed);
  ASSERT_EQ(sw2.table_template(0), core::TableTemplate::kLinkedList);
  const auto ll = derive_model(sw2, {0});

  // Two tuples => two probes; strictly more variable accesses than the
  // direct-code model.
  EXPECT_GT(ll.variable_accesses(), direct.variable_accesses());
  EXPECT_THROW(derive_model(sw, {9}), CheckError);
}

}  // namespace
}  // namespace esw
