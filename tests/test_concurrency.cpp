// Concurrent correctness of the multicore runtime: registered workers spin
// process_burst while the control thread streams apply/apply_batch through
// both incremental shapes (in-place LPM, clone-and-swap hash) and the rebuild
// path (direct code).  Asserts verdict conservation (nothing lost or
// duplicated), old-or-new verdict consistency, eventual visibility of
// installed rules, and that retired tables are reclaimed via the epoch grace
// period — while readers are live — rather than via caller quiescence.
//
// Designed to run under ASan and TSan: iteration counts are modest and
// scalable via ESW_CONC_SCALE (CI's TSan job runs with the default).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/eswitch.hpp"
#include "core/switch_runtime.hpp"
#include "test_util.hpp"
#include "testing/seed.hpp"

namespace esw {
namespace {

using namespace esw::core;
using namespace esw::flow;
using test::make_packet;

int conc_scale() {
  const char* s = std::getenv("ESW_CONC_SCALE");
  const int v = s != nullptr ? std::atoi(s) : 1;
  return v > 0 ? v : 1;
}

/// Blocks until the reader has pushed at least one burst: on a single-CPU
/// machine a Release-mode control loop can otherwise finish its whole churn
/// before the reader threads are ever scheduled, voiding the test.
void wait_for_progress(const std::atomic<uint64_t>& processed,
                       uint64_t floor = net::kBurstSize) {
  while (processed.load(std::memory_order_relaxed) < floor)
    std::this_thread::yield();
}

FlowMod add_mod(uint8_t table, const std::string& rule) {
  const FlowEntry e = parse_rule(rule);
  FlowMod fm;
  fm.command = FlowMod::Cmd::kAdd;
  fm.table_id = table;
  fm.priority = e.priority;
  fm.match = e.match;
  fm.actions = e.actions;
  fm.goto_table = e.goto_table;
  return fm;
}

FlowMod del_mod(uint8_t table, const std::string& rule) {
  FlowMod fm = add_mod(table, rule);
  fm.command = FlowMod::Cmd::kDelete;
  fm.actions.clear();
  return fm;
}

/// A worker thread's harness: spins bursts of identical packets through a
/// registered context and tallies the verdicts it saw.
struct BurstReader {
  Eswitch& sw;
  Eswitch::Worker* ctx;
  proto::PacketSpec spec;
  std::atomic<bool>& stop;
  // Read by the control thread mid-run (progress gating), so atomic; the
  // other tallies are only read after join().
  std::atomic<uint64_t> processed{0};
  uint64_t outputs = 0, drops = 0, controllers = 0, floods = 0;
  uint64_t unexpected = 0;  // verdicts outside the allowed set
  Verdict allowed_a = Verdict::drop();
  Verdict allowed_b = Verdict::drop();

  void run() {
    net::Packet proto_pkt = make_packet(spec);
    std::vector<net::Packet> bufs(net::kBurstSize, proto_pkt);
    net::Packet* ptrs[net::kBurstSize];
    Verdict verdicts[net::kBurstSize];
    while (!stop.load(std::memory_order_relaxed)) {
      for (uint32_t i = 0; i < net::kBurstSize; ++i) {
        bufs[i] = proto_pkt;  // actions may have mutated the frame
        ptrs[i] = &bufs[i];
      }
      sw.process_burst(*ctx, ptrs, net::kBurstSize, verdicts);
      processed.fetch_add(net::kBurstSize, std::memory_order_relaxed);
      for (uint32_t i = 0; i < net::kBurstSize; ++i) {
        const Verdict& v = verdicts[i];
        switch (v.kind) {
          case Verdict::Kind::kOutput: ++outputs; break;
          case Verdict::Kind::kDrop: ++drops; break;
          case Verdict::Kind::kController: ++controllers; break;
          case Verdict::Kind::kFlood: ++floods; break;
        }
        if (!(v == allowed_a) && !(v == allowed_b)) ++unexpected;
      }
    }
  }
};

// Workers process a flow that is never touched by the churn; the control
// thread streams adds/deletes of *other* rules through the clone-and-swap
// path (hash template + registered workers).  No verdict may be lost,
// duplicated, or anything but the stable rule's output.
TEST(Concurrency, VerdictConservationUnderHashChurn) {
  Pipeline pl;
  for (int i = 0; i < 20; ++i)
    pl.table(0).add(parse_rule("priority=5,udp_dst=" + std::to_string(i) +
                               ",actions=output:1"));
  Eswitch sw;
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), TableTemplate::kCompoundHash);

  std::atomic<bool> stop{false};
  constexpr int kReaders = 2;
  std::vector<std::unique_ptr<BurstReader>> readers;  // atomic member: pin it
  for (int r = 0; r < kReaders; ++r) {
    Eswitch::Worker* ctx = sw.register_worker();
    ASSERT_NE(ctx, nullptr);
    readers.push_back(
        std::make_unique<BurstReader>(sw, ctx, test::udp_spec(1, 2, 9, 3), stop));
    readers.back()->allowed_a = Verdict::output(1);
    readers.back()->allowed_b = Verdict::output(1);
  }
  std::vector<std::thread> threads;
  for (auto& r : readers) threads.emplace_back([&r] { r->run(); });
  for (auto& r : readers) wait_for_progress(r->processed);

  // Progress-driven churn: at least `churn` rounds, and keep going (bounded)
  // until the epoch layer has reclaimed at least one displaced table while
  // the workers are live — on a loaded 1-core machine a fixed count can end
  // before any worker ticks through a full grace period.
  Rng rng(esw::testing::test_seed(
      0xC0C0, "Concurrency.VerdictConservationUnderHashChurn"));
  const int churn = 300 * conc_scale();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  int i = 0;
  for (; (i < churn || sw.reclaim_stats().reclaimed == 0) &&
         std::chrono::steady_clock::now() < deadline;
       ++i) {
    // Seeded random churn target: the interleaving is scheduler-driven, but
    // the mod stream itself replays from the logged seed.
    const std::string rule =
        "priority=5,udp_dst=" + std::to_string(1000 + rng.below(16)) + ",actions=output:7";
    sw.apply(add_mod(0, rule));
    sw.apply(del_mod(0, rule));
    if (i % 16 == 15) std::this_thread::yield();  // let workers tick
  }
  const int applied = i;
  const auto reclaimed_live = sw.reclaim_stats().reclaimed;
  stop = true;
  for (auto& t : threads) t.join();

  uint64_t total = 0, outputs = 0;
  for (auto& r : readers) {
    EXPECT_EQ(r->unexpected, 0u) << "worker saw a verdict outside {output:1}";
    total += r->processed;
    outputs += r->outputs;
  }
  EXPECT_EQ(outputs, total);  // every packet matched the stable rule

  // Conservation against the datapath's own aggregated counters: exactly the
  // packets the workers pushed, every one counted as an output.
  const DataplaneStats st = sw.stats();
  EXPECT_EQ(st.packets, total);
  EXPECT_EQ(st.outputs, total);
  EXPECT_EQ(st.drops, 0u);

  // The churn ran on the clone-and-swap incremental path and the epoch layer
  // reclaimed displaced tables while both workers were live.
  EXPECT_GT(sw.update_stats().cow_swaps, 0u);
  EXPECT_EQ(sw.update_stats().incremental, static_cast<uint64_t>(2 * applied));
  EXPECT_GT(reclaimed_live, 0u);

  for (auto& r : readers) sw.unregister_worker(r->ctx);
}

// The rebuild path under load: a direct-code table rebuilds on every mod, so
// each apply is a side-by-side rebuild + trampoline swap + epoch retirement.
// At least one rebuilt table must be reclaimed through a grace period while
// workers are registered and spinning (not via caller quiescence), and the
// backlog must drain once the writer reclaims after the workers leave.
TEST(Concurrency, RebuildsReclaimedViaEpochGraceNotQuiescence) {
  Pipeline pl;
  for (int i = 0; i < 10; ++i)
    pl.table(0).add(parse_rule("priority=5,udp_dst=" + std::to_string(i) +
                               ",actions=output:1"));
  CompilerConfig cfg;
  cfg.direct_code_max_entries = 64;
  Eswitch sw(cfg);
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), TableTemplate::kDirectCode);

  std::atomic<bool> stop{false};
  Eswitch::Worker* ctx = sw.register_worker();
  ASSERT_NE(ctx, nullptr);
  BurstReader reader{sw, ctx, test::udp_spec(1, 2, 9, 3), stop};
  reader.allowed_a = Verdict::output(1);
  reader.allowed_b = Verdict::output(1);
  std::thread t([&reader] { reader.run(); });
  wait_for_progress(reader.processed);

  // Progress-driven, as in the hash-churn test: run until at least one
  // rebuilt table was reclaimed with the worker live (bounded).
  const int churn = 200 * conc_scale();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  int applied = 0;
  for (; (applied < churn || sw.reclaim_stats().reclaimed == 0) &&
         std::chrono::steady_clock::now() < deadline;
       ++applied) {
    const std::string rule =
        "priority=9,udp_dst=" + std::to_string(0x4000 + applied % 5) +
        ",actions=output:2";
    sw.apply(add_mod(0, rule));
    sw.apply(del_mod(0, rule));
    if (applied % 16 == 15) std::this_thread::yield();  // let the worker tick
  }
  const auto live = sw.reclaim_stats();
  stop = true;
  t.join();
  sw.unregister_worker(ctx);

  EXPECT_EQ(reader.unexpected, 0u);
  EXPECT_GE(sw.update_stats().table_rebuilds, static_cast<uint64_t>(2 * applied));
  // Reclaimed strictly while the worker was registered and processing.
  EXPECT_GT(live.reclaimed, 0u);
  EXPECT_GT(live.retired, live.pending);

  // With no workers left, the next update's reclaim drains the backlog.
  sw.apply(add_mod(0, "priority=9,udp_dst=0x4abc,actions=output:2"));
  EXPECT_EQ(sw.reclaim_stats().pending, 0u);
}

// An installed rule must become visible to every worker (bounded staleness:
// one trampoline snapshot, i.e. one burst); a deleted rule must stop matching.
TEST(Concurrency, EventualVisibilityOfInstalledRules) {
  Pipeline pl;
  for (int i = 0; i < 20; ++i)
    pl.table(0).add(parse_rule("priority=5,udp_dst=" + std::to_string(i) +
                               ",actions=output:1"));
  Eswitch sw;
  sw.install(pl);

  constexpr int kReaders = 2;
  std::atomic<bool> stop{false};
  std::atomic<int> seen_new{0};   // workers currently observing output:7
  std::atomic<int> seen_gone{0};  // workers back to observing drop
  std::vector<std::thread> threads;
  std::vector<Eswitch::Worker*> ctxs;
  for (int r = 0; r < kReaders; ++r) {
    Eswitch::Worker* ctx = sw.register_worker();
    ASSERT_NE(ctx, nullptr);
    ctxs.push_back(ctx);
    threads.emplace_back([&, ctx] {
      net::Packet proto_pkt = make_packet(test::udp_spec(1, 2, 9, 777));
      std::vector<net::Packet> bufs(net::kBurstSize, proto_pkt);
      net::Packet* ptrs[net::kBurstSize];
      Verdict verdicts[net::kBurstSize];
      bool counted_new = false, counted_gone = false;
      while (!stop.load(std::memory_order_relaxed)) {
        for (uint32_t i = 0; i < net::kBurstSize; ++i) {
          bufs[i] = proto_pkt;
          ptrs[i] = &bufs[i];
        }
        sw.process_burst(*ctx, ptrs, net::kBurstSize, verdicts);
        if (!counted_new && verdicts[0] == Verdict::output(7)) {
          counted_new = true;
          seen_new.fetch_add(1);
        }
        if (counted_new && !counted_gone && verdicts[0] == Verdict::drop()) {
          counted_gone = true;
          seen_gone.fetch_add(1);
        }
      }
    });
  }

  const auto deadline = [] {
    return std::chrono::steady_clock::now() + std::chrono::seconds(30);
  }();
  sw.apply(add_mod(0, "priority=9,udp_dst=777,actions=output:7"));
  while (seen_new.load() < kReaders && std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(seen_new.load(), kReaders) << "installed rule never became visible";

  sw.apply(del_mod(0, "priority=9,udp_dst=777,actions=output:7"));
  while (seen_gone.load() < kReaders && std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(seen_gone.load(), kReaders) << "deleted rule kept matching";

  stop = true;
  for (auto& t : threads) t.join();
  for (auto* ctx : ctxs) sw.unregister_worker(ctx);
}

// LPM stays on the in-place incremental path even with workers registered
// (reader-safe per-cell publication).  Flows under churned /24s must see the
// old or the new route, never anything else; flows under untouched /8s must
// be entirely unaffected; and the churn must not trigger rebuilds or clones.
TEST(Concurrency, LpmInPlaceChurnOldOrNewVerdicts) {
  Pipeline pl;
  for (int i = 0; i < 32; ++i) {
    FlowEntry e;
    e.match.set(FieldId::kIpDst, static_cast<uint32_t>(i) << 24, 0xFF000000);
    e.priority = 8;
    e.actions = {Action::output(1)};
    pl.table(0).add(e);
  }
  for (int i = 0; i < 8; ++i) {
    FlowEntry e;  // mixed lengths: analysis lands on LPM, as in a real RIB
    e.match.set(FieldId::kIpDst, (40u << 24) | (static_cast<uint32_t>(i) << 16),
                0xFFFF0000);
    e.priority = 16;
    e.actions = {Action::output(3)};
    pl.table(0).add(e);
  }
  Eswitch sw;
  sw.install(pl);
  ASSERT_EQ(sw.table_template(0), TableTemplate::kLpm);
  const auto rebuilds_before = sw.update_stats().table_rebuilds;

  std::atomic<bool> stop{false};
  // Reader A: a flow inside the /24 churn range — old (/8 -> output:1) or
  // new (/24 -> output:2) route, nothing else.  Reader B: an untouched /8.
  // Reader C: a flow inside a churned /25 — the tbl8-extension path, whose
  // groups are allocated, folded back and recycled every round (the seqlock
  // re-validation in LpmTable::lookup is what keeps C's verdicts sane).
  Eswitch::Worker* ca = sw.register_worker();
  Eswitch::Worker* cb = sw.register_worker();
  Eswitch::Worker* cc = sw.register_worker();
  ASSERT_NE(ca, nullptr);
  ASSERT_NE(cb, nullptr);
  ASSERT_NE(cc, nullptr);
  BurstReader churned{sw, ca, test::udp_spec(1, (5u << 24) | (7u << 8) | 3, 4, 4),
                      stop};
  churned.allowed_a = Verdict::output(1);
  churned.allowed_b = Verdict::output(2);
  BurstReader stable{sw, cb, test::udp_spec(1, (9u << 24) | 12345, 4, 4), stop};
  stable.allowed_a = Verdict::output(1);
  stable.allowed_b = Verdict::output(1);
  BurstReader deep{sw, cc, test::udp_spec(1, (5u << 24) | (200u << 8) | 5, 4, 4),
                   stop};
  deep.allowed_a = Verdict::output(1);
  deep.allowed_b = Verdict::output(4);
  std::thread ta([&churned] { churned.run(); });
  std::thread tb([&stable] { stable.run(); });
  std::thread tc([&deep] { deep.run(); });
  wait_for_progress(churned.processed);
  wait_for_progress(stable.processed);
  wait_for_progress(deep.processed);

  const auto mod24 = [](int i, FlowMod::Cmd cmd) {
    FlowMod fm;
    fm.command = cmd;
    fm.table_id = 0;
    fm.priority = 24;
    fm.match.set(FieldId::kIpDst, (5u << 24) | (static_cast<uint32_t>(i) << 8),
                 0xFFFFFF00);
    if (cmd == FlowMod::Cmd::kAdd) fm.actions = {Action::output(2)};
    return fm;
  };
  const auto mod25 = [](int i, FlowMod::Cmd cmd) {
    FlowMod fm;
    fm.command = cmd;
    fm.table_id = 0;
    fm.priority = 25;
    fm.match.set(FieldId::kIpDst, (5u << 24) | (static_cast<uint32_t>(200 + i) << 8),
                 0xFFFFFF80);
    if (cmd == FlowMod::Cmd::kAdd) fm.actions = {Action::output(4)};
    return fm;
  };
  const int rounds = 60 * conc_scale();
  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < 16; ++i) sw.apply(mod24(i, FlowMod::Cmd::kAdd));
    for (int i = 0; i < 4; ++i) sw.apply(mod25(i, FlowMod::Cmd::kAdd));
    for (int i = 0; i < 16; ++i) sw.apply(mod24(i, FlowMod::Cmd::kDelete));
    for (int i = 0; i < 4; ++i) sw.apply(mod25(i, FlowMod::Cmd::kDelete));
    std::this_thread::yield();  // let readers interleave on small machines
  }
  stop = true;
  ta.join();
  tb.join();
  tc.join();
  sw.unregister_worker(ca);
  sw.unregister_worker(cb);
  sw.unregister_worker(cc);

  EXPECT_EQ(churned.unexpected, 0u) << "route update leaked a malformed verdict";
  EXPECT_EQ(stable.unexpected, 0u) << "untouched route was disturbed";
  EXPECT_EQ(deep.unexpected, 0u) << "tbl8 fold/recycle leaked a foreign route";
  EXPECT_GT(churned.processed, 0u);
  EXPECT_GT(deep.processed, 0u);
  // In place: incremental throughout, no rebuilds, no clone-swaps.
  EXPECT_EQ(sw.update_stats().table_rebuilds, rebuilds_before);
  EXPECT_EQ(sw.update_stats().cow_swaps, 0u);
  EXPECT_GE(sw.update_stats().incremental, static_cast<uint64_t>(40 * rounds));
}

// apply_batch under concurrency: the transactional path commits through the
// same epoch-published machinery; a failing batch must leave verdicts and
// structures exactly as before.
TEST(Concurrency, TransactionalBatchUnderLoad) {
  Pipeline pl;
  for (int i = 0; i < 20; ++i)
    pl.table(0).add(parse_rule("priority=5,udp_dst=" + std::to_string(i) +
                               ",actions=output:1"));
  Eswitch sw;
  sw.install(pl);

  std::atomic<bool> stop{false};
  Eswitch::Worker* ctx = sw.register_worker();
  ASSERT_NE(ctx, nullptr);
  BurstReader reader{sw, ctx, test::udp_spec(1, 2, 9, 3), stop};
  reader.allowed_a = Verdict::output(1);
  reader.allowed_b = Verdict::output(1);
  std::thread t([&reader] { reader.run(); });
  wait_for_progress(reader.processed);

  const int rounds = 100 * conc_scale();
  for (int i = 0; i < rounds; ++i) {
    std::vector<FlowMod> batch;
    batch.push_back(add_mod(0, "priority=5,udp_dst=2000,actions=output:4"));
    batch.push_back(add_mod(0, "priority=5,udp_dst=2001,actions=output:4"));
    sw.apply_batch(batch);
    // Invalid batch: nothing may land (validated against a scratch pipeline).
    std::vector<FlowMod> bad;
    bad.push_back(add_mod(0, "priority=5,udp_dst=2002,actions=output:4"));
    bad.push_back(add_mod(0, "priority=5,udp_dst=2003,actions=,goto:99"));
    EXPECT_THROW(sw.apply_batch(bad), CheckError);
    std::vector<FlowMod> undo;
    undo.push_back(del_mod(0, "priority=5,udp_dst=2000,actions=output:4"));
    undo.push_back(del_mod(0, "priority=5,udp_dst=2001,actions=output:4"));
    sw.apply_batch(undo);
  }
  stop = true;
  t.join();
  sw.unregister_worker(ctx);

  EXPECT_EQ(reader.unexpected, 0u);
  EXPECT_EQ(sw.pipeline().find_table(0)->size(), 20u);  // every round undone
  auto p = make_packet(test::udp_spec(1, 2, 9, 2002));
  EXPECT_EQ(sw.process(p), Verdict::drop());
}

// The multi-worker runtime end to end: two workers over a shared Eswitch,
// per-worker sources, TX self-sinking, control-thread churn — packet and
// buffer conservation all the way through.
TEST(Concurrency, SwitchRuntimeConservation) {
  SwitchRuntime<Eswitch>::Config cfg;
  cfg.n_workers = 2;
  cfg.n_ports = 4;
  cfg.pool_capacity = 2048;
  SwitchRuntime<Eswitch> rt(cfg);

  Pipeline pl;
  pl.table(0).add(parse_rule("priority=5,udp_dst=5,actions=output:2"));
  pl.table(0).add(parse_rule("priority=5,udp_dst=6,actions=output:3"));
  rt.backend().install(pl);

  // Each worker replays one frame: worker 0's matches (forwarded), worker
  // 1's misses (dropped).
  const net::Packet match_pkt = make_packet(test::udp_spec(1, 2, 9, 5));
  const net::Packet miss_pkt = make_packet(test::udp_spec(1, 2, 9, 4444));
  rt.set_source([&](uint32_t worker, net::Packet** bufs, uint32_t n) {
    const net::Packet& src = worker == 0 ? match_pkt : miss_pkt;
    for (uint32_t i = 0; i < n; ++i) {
      bufs[i]->assign(src.data(), src.len());
      bufs[i]->set_in_port(1 + worker);
    }
    return n;
  });

  rt.start();
  while (rt.counters().processed == 0) std::this_thread::yield();
  const auto t_end =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(100 * conc_scale());
  int mods = 0;
  while (std::chrono::steady_clock::now() < t_end) {
    const std::string rule = "priority=5,udp_dst=" + std::to_string(100 + mods % 8) +
                             ",actions=output:4";
    rt.backend().apply(add_mod(0, rule));
    rt.backend().apply(del_mod(0, rule));
    ++mods;
  }
  rt.stop();

  const auto c = rt.counters();
  EXPECT_GT(c.processed, 0u);
  EXPECT_GT(c.tx_packets, 0u);
  EXPECT_GT(c.drops, 0u);
  EXPECT_GT(mods, 0);
  // Verdict conservation: every processed packet was transmitted, rejected at
  // TX, dropped, or punted.
  EXPECT_EQ(c.processed,
            c.tx_packets + c.tx_rejected + c.drops + c.packet_ins + c.bad_port);
  // The runtime's view agrees with the backend's aggregated worker stats.
  const DataplaneStats st = rt.backend().stats();
  EXPECT_EQ(st.packets, c.processed);

  // Buffer conservation: after draining what stop() left in the rings, every
  // pool buffer is back (nothing leaked, nothing double-freed).
  for (uint32_t no = 1; no <= rt.ports().size(); ++no) {
    net::Packet* out[net::kBurstSize];
    uint32_t n;
    while ((n = rt.ports().port(no).rx_burst(out, net::kBurstSize)) > 0)
      for (uint32_t i = 0; i < n; ++i) rt.pool().free(out[i]);
    while ((n = rt.ports().port(no).drain_tx(out, net::kBurstSize)) > 0)
      for (uint32_t i = 0; i < n; ++i) rt.pool().free(out[i]);
  }
  EXPECT_EQ(rt.pool().available(), rt.pool().capacity());
}

}  // namespace
}  // namespace esw
