#include "proto/build.hpp"

#include <cstring>

#include "common/bits.hpp"
#include "proto/checksum.hpp"
#include "proto/headers.hpp"

namespace esw::proto {

namespace {

uint32_t l3_payload_len(const PacketSpec& s) {
  switch (s.kind) {
    case PacketKind::kTcp:
      return kTcpMinHeaderLen + s.payload_len;
    case PacketKind::kUdp:
      return kUdpHeaderLen + s.payload_len;
    case PacketKind::kIcmp:
      return kIcmpHeaderLen + s.payload_len;
    case PacketKind::kIpv4:
      return s.payload_len;
    default:
      return 0;
  }
}

uint8_t ip_proto_of(const PacketSpec& s) {
  switch (s.kind) {
    case PacketKind::kTcp:
      return kIpProtoTcp;
    case PacketKind::kUdp:
      return kIpProtoUdp;
    case PacketKind::kIcmp:
      return kIpProtoIcmp;
    default:
      return s.ip_proto;
  }
}

}  // namespace

uint32_t build_packet(const PacketSpec& spec, uint8_t* buf, uint32_t cap) {
  const bool is_ip = spec.kind == PacketKind::kIpv4 || spec.kind == PacketKind::kTcp ||
                     spec.kind == PacketKind::kUdp || spec.kind == PacketKind::kIcmp;

  uint32_t len = kEthHeaderLen;
  if (spec.vlan_vid) len += kVlanTagLen;
  if (spec.kind == PacketKind::kArp) len += kArpHeaderLen;
  if (spec.kind == PacketKind::kRawEth) len += spec.payload_len;
  if (is_ip) len += kIpv4MinHeaderLen + l3_payload_len(spec);
  if (len > cap) return 0;

  std::memset(buf, 0, len);

  // Ethernet.
  store_be(buf + kEthDstOff, spec.eth_dst, 6);
  store_be(buf + kEthSrcOff, spec.eth_src, 6);
  uint32_t l3 = kEthHeaderLen;
  uint16_t ethertype = spec.ethertype;
  if (is_ip) ethertype = kEtherTypeIpv4;
  if (spec.kind == PacketKind::kArp) ethertype = kEtherTypeArp;
  if (spec.vlan_vid) {
    store_be16(buf + kEthTypeOff, kEtherTypeVlan);
    const uint16_t tci = static_cast<uint16_t>(
        (static_cast<uint16_t>(spec.vlan_pcp & 0x7) << kVlanPcpShift) |
        (*spec.vlan_vid & kVlanVidMask));
    store_be16(buf + kVlanTciOff, tci);
    store_be16(buf + kVlanTciOff + 2, ethertype);
    l3 = kEthHeaderLen + kVlanTagLen;
  } else {
    store_be16(buf + kEthTypeOff, ethertype);
  }

  if (spec.kind == PacketKind::kArp) {
    uint8_t* arp = buf + l3;
    store_be16(arp + 0, 1);  // htype ethernet
    store_be16(arp + 2, kEtherTypeIpv4);
    arp[4] = 6;  // hlen
    arp[5] = 4;  // plen
    store_be16(arp + kArpOpOff, spec.arp_op);
    store_be(arp + 8, spec.eth_src, 6);
    store_be32(arp + 14, spec.ip_src);
    store_be(arp + 18, spec.eth_dst, 6);
    store_be32(arp + 24, spec.ip_dst);
    return len;
  }
  if (spec.kind == PacketKind::kRawEth) {
    for (uint32_t i = 0; i < spec.payload_len; ++i)
      buf[l3 + i] = static_cast<uint8_t>(i);
    return len;
  }

  // IPv4 header.
  uint8_t* ip = buf + l3;
  const uint32_t ip_total = kIpv4MinHeaderLen + l3_payload_len(spec);
  ip[kIpv4VersionIhlOff] = 0x45;
  ip[kIpv4DscpEcnOff] = static_cast<uint8_t>(spec.ip_dscp << 2);
  store_be16(ip + kIpv4TotalLenOff, static_cast<uint16_t>(ip_total));
  store_be16(ip + kIpv4IdOff, 0);
  store_be16(ip + kIpv4FlagsFragOff, 0x4000);  // don't fragment
  ip[kIpv4TtlOff] = spec.ip_ttl;
  ip[kIpv4ProtoOff] = ip_proto_of(spec);
  store_be32(ip + kIpv4SrcOff, spec.ip_src);
  store_be32(ip + kIpv4DstOff, spec.ip_dst);
  store_be16(ip + kIpv4ChecksumOff, 0);
  store_be16(ip + kIpv4ChecksumOff, ipv4_header_checksum(ip, kIpv4MinHeaderLen));

  uint8_t* l4 = ip + kIpv4MinHeaderLen;
  const uint32_t l4_len = l3_payload_len(spec);
  uint8_t* payload = nullptr;

  switch (spec.kind) {
    case PacketKind::kTcp:
      store_be16(l4 + kTcpSrcOff, spec.sport);
      store_be16(l4 + kTcpDstOff, spec.dport);
      store_be32(l4 + 4, 1);           // seq
      l4[kTcpDataOffOff] = 5 << 4;     // header length 20
      l4[kTcpFlagsOff] = spec.tcp_flags;
      store_be16(l4 + 14, 0xFFFF);     // window
      payload = l4 + kTcpMinHeaderLen;
      break;
    case PacketKind::kUdp:
      store_be16(l4 + kUdpSrcOff, spec.sport);
      store_be16(l4 + kUdpDstOff, spec.dport);
      store_be16(l4 + kUdpLenOff, static_cast<uint16_t>(l4_len));
      payload = l4 + kUdpHeaderLen;
      break;
    case PacketKind::kIcmp:
      l4[kIcmpTypeOff] = spec.icmp_type;
      l4[kIcmpCodeOff] = spec.icmp_code;
      payload = l4 + kIcmpHeaderLen;
      break;
    case PacketKind::kIpv4:
      payload = l4;
      break;
    default:
      break;
  }
  for (uint32_t i = 0; i < spec.payload_len; ++i)
    payload[i] = static_cast<uint8_t>(0xA0 + i);

  // Transport checksums (ICMP has no pseudo header).
  if (spec.kind == PacketKind::kTcp) {
    store_be16(l4 + kTcpChecksumOff, 0);
    store_be16(l4 + kTcpChecksumOff,
               l4_checksum_ipv4(spec.ip_src, spec.ip_dst, kIpProtoTcp, l4, l4_len));
  } else if (spec.kind == PacketKind::kUdp) {
    store_be16(l4 + kUdpChecksumOff, 0);
    uint16_t c = l4_checksum_ipv4(spec.ip_src, spec.ip_dst, kIpProtoUdp, l4, l4_len);
    if (c == 0) c = 0xFFFF;  // RFC 768: transmitted as all ones
    store_be16(l4 + kUdpChecksumOff, c);
  } else if (spec.kind == PacketKind::kIcmp) {
    store_be16(l4 + kIcmpChecksumOff, 0);
    store_be16(l4 + kIcmpChecksumOff, checksum(l4, l4_len));
  }
  return len;
}

}  // namespace esw::proto
