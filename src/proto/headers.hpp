// Wire-format constants for the protocols the switch parses: Ethernet,
// 802.1Q VLAN, IPv4, ARP, TCP, UDP and ICMP.
//
// Offsets are byte offsets from the start of the respective header.  We do not
// overlay packed structs on packet memory (unaligned/strict-aliasing hazards);
// all access goes through the big-endian load/store helpers in common/bits.hpp.
#pragma once

#include <cstdint>

namespace esw::proto {

// --- Ethernet -------------------------------------------------------------
inline constexpr unsigned kEthHeaderLen = 14;
inline constexpr unsigned kEthDstOff = 0;
inline constexpr unsigned kEthSrcOff = 6;
inline constexpr unsigned kEthTypeOff = 12;

inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr uint16_t kEtherTypeArp = 0x0806;
inline constexpr uint16_t kEtherTypeVlan = 0x8100;

// --- 802.1Q VLAN tag (inserted after the src MAC) ---------------------------
inline constexpr unsigned kVlanTagLen = 4;   // TPID (2) + TCI (2)
inline constexpr unsigned kVlanTciOff = 14;  // from frame start, single tag
inline constexpr uint16_t kVlanVidMask = 0x0FFF;
inline constexpr unsigned kVlanPcpShift = 13;

// --- IPv4 -------------------------------------------------------------------
inline constexpr unsigned kIpv4MinHeaderLen = 20;
inline constexpr unsigned kIpv4VersionIhlOff = 0;
inline constexpr unsigned kIpv4DscpEcnOff = 1;
inline constexpr unsigned kIpv4TotalLenOff = 2;
inline constexpr unsigned kIpv4IdOff = 4;
inline constexpr unsigned kIpv4FlagsFragOff = 6;
inline constexpr unsigned kIpv4TtlOff = 8;
inline constexpr unsigned kIpv4ProtoOff = 9;
inline constexpr unsigned kIpv4ChecksumOff = 10;
inline constexpr unsigned kIpv4SrcOff = 12;
inline constexpr unsigned kIpv4DstOff = 16;

inline constexpr uint8_t kIpProtoIcmp = 1;
inline constexpr uint8_t kIpProtoTcp = 6;
inline constexpr uint8_t kIpProtoUdp = 17;

// --- ARP (IPv4 over Ethernet) ------------------------------------------------
inline constexpr unsigned kArpHeaderLen = 28;
inline constexpr unsigned kArpOpOff = 6;

// --- TCP ----------------------------------------------------------------------
inline constexpr unsigned kTcpMinHeaderLen = 20;
inline constexpr unsigned kTcpSrcOff = 0;
inline constexpr unsigned kTcpDstOff = 2;
inline constexpr unsigned kTcpDataOffOff = 12;
inline constexpr unsigned kTcpFlagsOff = 13;
inline constexpr unsigned kTcpChecksumOff = 16;

inline constexpr uint8_t kTcpFlagFin = 0x01;
inline constexpr uint8_t kTcpFlagSyn = 0x02;
inline constexpr uint8_t kTcpFlagRst = 0x04;
inline constexpr uint8_t kTcpFlagAck = 0x10;

// --- UDP -----------------------------------------------------------------------
inline constexpr unsigned kUdpHeaderLen = 8;
inline constexpr unsigned kUdpSrcOff = 0;
inline constexpr unsigned kUdpDstOff = 2;
inline constexpr unsigned kUdpLenOff = 4;
inline constexpr unsigned kUdpChecksumOff = 6;

// --- ICMP ------------------------------------------------------------------------
inline constexpr unsigned kIcmpHeaderLen = 8;
inline constexpr unsigned kIcmpTypeOff = 0;
inline constexpr unsigned kIcmpCodeOff = 1;
inline constexpr unsigned kIcmpChecksumOff = 2;

}  // namespace esw::proto
