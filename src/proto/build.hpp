// Declarative packet construction for traffic generators, examples and tests.
//
// A PacketSpec describes one frame (addresses, VLAN tag, transport tuple);
// build_packet() serializes it with correct lengths and checksums.
#pragma once

#include <cstdint>
#include <optional>

namespace esw::proto {

enum class PacketKind : uint8_t { kRawEth, kArp, kIpv4, kTcp, kUdp, kIcmp };

struct PacketSpec {
  PacketKind kind = PacketKind::kUdp;
  uint64_t eth_dst = 0x02'00'00'00'00'02;  // low 48 bits used
  uint64_t eth_src = 0x02'00'00'00'00'01;
  std::optional<uint16_t> vlan_vid;  // presence adds an 802.1Q tag
  uint8_t vlan_pcp = 0;
  uint16_t ethertype = 0x88B5;  // for kRawEth only (IEEE local experimental)

  uint32_t ip_src = 0x0A000001;  // 10.0.0.1
  uint32_t ip_dst = 0x0A000002;  // 10.0.0.2
  uint8_t ip_ttl = 64;
  uint8_t ip_dscp = 0;
  uint8_t ip_proto = 0;  // for kIpv4 only; derived for TCP/UDP/ICMP

  uint16_t sport = 1024;
  uint16_t dport = 80;
  uint8_t tcp_flags = 0x10;  // ACK; headers.hpp kTcpFlag* for SYN/FIN/RST mixes
  uint8_t icmp_type = 8;  // echo request
  uint8_t icmp_code = 0;
  uint16_t arp_op = 1;  // request

  uint16_t payload_len = 10;  // 10 B payload makes a 64 B TCP frame
};

/// Serializes `spec` into `buf` (capacity `cap`); returns the frame length or
/// 0 if it does not fit.  All checksums (IPv4 header, TCP/UDP/ICMP) are valid;
/// payload bytes are a deterministic pattern so packets are comparable.
uint32_t build_packet(const PacketSpec& spec, uint8_t* buf, uint32_t cap);

}  // namespace esw::proto
