#include "proto/parse.hpp"

#include "common/bits.hpp"
#include "proto/headers.hpp"

namespace esw::proto {

void parse(const uint8_t* data, uint32_t len, const ParserPlan& plan, ParseInfo& pi) {
  pi.proto_mask = 0;
  pi.l2_off = 0;
  pi.l3_off = 0;
  pi.l4_off = 0;
  pi.payload_off = 0;

  // --- L2 template ---------------------------------------------------------
  if (len < kEthHeaderLen) return;
  pi.proto_mask |= kProtoEth;

  uint16_t ethertype = load_be16(data + kEthTypeOff);
  uint32_t l3 = kEthHeaderLen;
  if (ethertype == kEtherTypeVlan) {
    if (len < kEthHeaderLen + kVlanTagLen) return;
    pi.proto_mask |= kProtoVlan;
    ethertype = load_be16(data + kVlanTciOff + 2);
    l3 = kEthHeaderLen + kVlanTagLen;
  }
  pi.l3_off = static_cast<uint16_t>(l3);
  pi.l4_off = pi.l3_off;
  pi.payload_off = pi.l3_off;
  if (!plan.need_l3) return;

  // --- L3 template ---------------------------------------------------------
  if (ethertype == kEtherTypeArp) {
    if (len < l3 + kArpHeaderLen) return;
    pi.proto_mask |= kProtoArp;
    pi.payload_off = static_cast<uint16_t>(l3 + kArpHeaderLen);
    return;
  }
  if (ethertype != kEtherTypeIpv4) return;
  if (len < l3 + kIpv4MinHeaderLen) return;

  const uint8_t version_ihl = data[l3 + kIpv4VersionIhlOff];
  if ((version_ihl >> 4) != 4) return;
  const uint32_t ihl_bytes = static_cast<uint32_t>(version_ihl & 0x0F) * 4;
  if (ihl_bytes < kIpv4MinHeaderLen || len < l3 + ihl_bytes) return;
  pi.proto_mask |= kProtoIpv4;

  const uint32_t l4 = l3 + ihl_bytes;
  pi.l4_off = static_cast<uint16_t>(l4);
  pi.payload_off = pi.l4_off;
  if (!plan.need_l4) return;

  // --- L4 template -----------------------------------------------------------
  // Fragments other than the first carry no L4 header.
  const uint16_t flags_frag = load_be16(data + l3 + kIpv4FlagsFragOff);
  if ((flags_frag & 0x1FFF) != 0) return;

  switch (data[l3 + kIpv4ProtoOff]) {
    case kIpProtoTcp: {
      if (len < l4 + kTcpMinHeaderLen) return;
      const uint32_t tcp_hl = (static_cast<uint32_t>(data[l4 + kTcpDataOffOff]) >> 4) * 4;
      if (tcp_hl < kTcpMinHeaderLen || len < l4 + tcp_hl) return;
      pi.proto_mask |= kProtoTcp;
      pi.payload_off = static_cast<uint16_t>(l4 + tcp_hl);
      break;
    }
    case kIpProtoUdp:
      if (len < l4 + kUdpHeaderLen) return;
      pi.proto_mask |= kProtoUdp;
      pi.payload_off = static_cast<uint16_t>(l4 + kUdpHeaderLen);
      break;
    case kIpProtoIcmp:
      if (len < l4 + kIcmpHeaderLen) return;
      pi.proto_mask |= kProtoIcmp;
      pi.payload_off = static_cast<uint16_t>(l4 + kIcmpHeaderLen);
      break;
    default:
      break;
  }
}

}  // namespace esw::proto
