// Internet checksum (RFC 1071) computation and incremental update (RFC 1624).
//
// Set-field actions that rewrite IP addresses, ports or TTL use the
// incremental form so a single-field rewrite costs O(1) instead of a full
// header sum — the same trick every production datapath uses.
#pragma once

#include <cstdint>

namespace esw::proto {

/// One's-complement sum over `len` bytes starting at `data`, folded to 16 bits
/// but NOT complemented (callers combine partial sums first).
uint32_t checksum_partial(const uint8_t* data, uint32_t len, uint32_t sum = 0);

/// Final fold + complement of a partial sum.
uint16_t checksum_finish(uint32_t sum);

/// Full Internet checksum of a buffer.
uint16_t checksum(const uint8_t* data, uint32_t len);

/// IPv4 header checksum over `ihl_bytes` (checksum field must be zeroed or
/// skipped by the caller writing 0 before computing).
uint16_t ipv4_header_checksum(const uint8_t* ip_header, uint32_t ihl_bytes);

/// RFC 1624 incremental update: returns the new checksum after a 16-bit word
/// at some position changed from `old_word` to `new_word`.
uint16_t checksum_update16(uint16_t old_csum, uint16_t old_word, uint16_t new_word);

/// Incremental update for a 32-bit change (two 16-bit words).
uint16_t checksum_update32(uint16_t old_csum, uint32_t old_word, uint32_t new_word);

/// TCP/UDP checksum over an IPv4 pseudo header plus the transport segment.
/// `l4` points at the transport header, `l4_len` is its length including
/// payload.  The checksum field inside the segment must be zeroed first.
uint16_t l4_checksum_ipv4(uint32_t ip_src, uint32_t ip_dst, uint8_t proto,
                          const uint8_t* l4, uint32_t l4_len);

}  // namespace esw::proto
