// Layered packet parser — the realization of the paper's *packet parser
// templates* (§3.1).
//
// Parsing is incremental per protocol layer: the L3 parser composes the L2
// parser to find the start of the L3 header, and the L4 parser composes both.
// A ParserPlan (derived by the pipeline compiler from the fields the pipeline
// actually matches on) tells the parser which layers to bother with, so a pure
// L2 pipeline never touches L3/L4 bytes.
//
// The ParseInfo layout is frozen (static_asserts below): the JIT backend reads
// it at fixed offsets, mirroring the paper's r12 (L2) / r13 (L3) / r14 (L4) /
// r15 (protocol bitmask) register convention.
#pragma once

#include <cstddef>
#include <cstdint>

namespace esw::proto {

/// Protocol-presence bits, kept in ParseInfo::proto_mask (the paper's r15).
enum ProtoBit : uint32_t {
  kProtoEth = 1u << 0,
  kProtoVlan = 1u << 1,
  kProtoIpv4 = 1u << 2,
  kProtoArp = 1u << 3,
  kProtoTcp = 1u << 4,
  kProtoUdp = 1u << 5,
  kProtoIcmp = 1u << 6,
};

/// Per-packet parse result.  POD with a frozen layout consumed by the JIT.
///
/// l3_off always points just past the (possibly VLAN-tagged) Ethernet header,
/// even for non-IP frames, so that the ethertype is reachable at l3_off - 2
/// in both the tagged and untagged case.  l4_off points at the transport
/// header when one was parsed, and equals l3_off otherwise; loads guarded by
/// the protocol bitmask never dereference an absent layer.
struct ParseInfo {
  uint32_t proto_mask = 0;  // offset 0  — r15 in the paper's templates
  uint16_t l2_off = 0;      // offset 4  — r12
  uint16_t l3_off = 0;      // offset 6  — r13
  uint16_t l4_off = 0;      // offset 8  — r14
  uint16_t payload_off = 0;  // offset 10
  uint32_t in_port = 0;      // offset 12 — pipeline metadata, matchable
  uint64_t metadata = 0;     // offset 16 — OpenFlow metadata register
  uint32_t ct_state = 0;     // offset 24 — conntrack state bits (state/conntrack.hpp)

  bool has(ProtoBit bit) const { return (proto_mask & bit) != 0; }
};

static_assert(offsetof(ParseInfo, proto_mask) == 0, "frozen JIT layout");
static_assert(offsetof(ParseInfo, l2_off) == 4, "frozen JIT layout");
static_assert(offsetof(ParseInfo, l3_off) == 6, "frozen JIT layout");
static_assert(offsetof(ParseInfo, l4_off) == 8, "frozen JIT layout");
static_assert(offsetof(ParseInfo, payload_off) == 10, "frozen JIT layout");
static_assert(offsetof(ParseInfo, in_port) == 12, "frozen JIT layout");
static_assert(offsetof(ParseInfo, metadata) == 16, "frozen JIT layout");
static_assert(offsetof(ParseInfo, ct_state) == 24, "frozen JIT layout");

/// Which layers a compiled pipeline needs parsed.  The compiler derives this
/// from the union of matched fields (§3.1: "for pure L2 MAC forwarding it is
/// completely superfluous to parse L3 and L4 header fields").
struct ParserPlan {
  bool need_l3 = true;
  bool need_l4 = true;

  static ParserPlan l2_only() { return {false, false}; }
  static ParserPlan up_to_l3() { return {true, false}; }
  static ParserPlan full() { return {true, true}; }
};

/// Parses `data[0..len)` according to `plan`, filling `pi` (offsets and
/// protocol bitmask only; in_port/metadata are the caller's responsibility).
/// Truncated packets simply stop setting deeper protocol bits — matching
/// against absent layers then fails via the protocol-bitmask guard.
void parse(const uint8_t* data, uint32_t len, const ParserPlan& plan, ParseInfo& pi);

}  // namespace esw::proto
