#include "proto/checksum.hpp"

#include "common/bits.hpp"

namespace esw::proto {

uint32_t checksum_partial(const uint8_t* data, uint32_t len, uint32_t sum) {
  while (len >= 2) {
    sum += load_be16(data);
    data += 2;
    len -= 2;
  }
  if (len == 1) sum += static_cast<uint32_t>(data[0]) << 8;
  return sum;
}

uint16_t checksum_finish(uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<uint16_t>(~sum & 0xFFFF);
}

uint16_t checksum(const uint8_t* data, uint32_t len) {
  return checksum_finish(checksum_partial(data, len));
}

uint16_t ipv4_header_checksum(const uint8_t* ip_header, uint32_t ihl_bytes) {
  // Sum skipping the checksum field itself (bytes 10-11).
  uint32_t sum = checksum_partial(ip_header, 10);
  sum = checksum_partial(ip_header + 12, ihl_bytes - 12, sum);
  return checksum_finish(sum);
}

uint16_t checksum_update16(uint16_t old_csum, uint16_t old_word, uint16_t new_word) {
  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m').
  uint32_t sum = static_cast<uint16_t>(~old_csum);
  sum += static_cast<uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<uint16_t>(~sum & 0xFFFF);
}

uint16_t checksum_update32(uint16_t old_csum, uint32_t old_word, uint32_t new_word) {
  uint16_t c = checksum_update16(old_csum, static_cast<uint16_t>(old_word >> 16),
                                 static_cast<uint16_t>(new_word >> 16));
  return checksum_update16(c, static_cast<uint16_t>(old_word & 0xFFFF),
                           static_cast<uint16_t>(new_word & 0xFFFF));
}

uint16_t l4_checksum_ipv4(uint32_t ip_src, uint32_t ip_dst, uint8_t proto,
                          const uint8_t* l4, uint32_t l4_len) {
  uint32_t sum = 0;
  sum += ip_src >> 16;
  sum += ip_src & 0xFFFF;
  sum += ip_dst >> 16;
  sum += ip_dst & 0xFFFF;
  sum += proto;
  sum += l4_len;
  sum = checksum_partial(l4, l4_len, sum);
  return checksum_finish(sum);
}

}  // namespace esw::proto
