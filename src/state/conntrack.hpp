// Conntrack — the sharded stateful connection layer (ROADMAP item 4).
//
// A bounded slab of dual-keyed connection entries behind a lock-free-read
// hash table: each entry is linked into the bucket of its `orig` tuple AND
// the bucket of its `reply` tuple, so one lookup on the packet's wire tuple
// finds the connection in either direction, NAT or not.  Buckets are grouped
// into shards; mutation (insert/unlink) takes the affected shard locks in
// index order, lookups walk acquire-published chain pointers with no lock.
//
// Lifetime follows the datapath's QSBR discipline (common/epoch.hpp): an
// unlinked entry is stamped with the current epoch, parked on its home
// shard's retire list, and its slab slot returns to the freelist only once
// every registered worker has ticked past the stamp — so a concurrent
// lookup can keep reading a just-removed entry's fields safely.  Slot reuse
// bumps a generation counter, which lets expiry-wheel items and eviction
// candidates (slot, gen) pairs detect staleness without pinning memory.
//
// Expiry is a per-shard lazy timeout wheel (64 slots x ~1s) drained by
// poll(): the datapath calls poll() once per burst chunk, each call draining
// a bounded amount of one shard's wheel — amortized, never a stop-the-world
// sweep.  Wheel items whose entry saw traffic are re-inserted at the
// refreshed deadline rather than expired.
//
// Degradation policy (docs/STATEFUL.md): commit at capacity force-evicts one
// accounted victim (`evictions_forced`); when no victim can be found the
// commit is dropped (`commit_drops`).  The `ct.insert` failpoint forces the
// at-capacity path on a healthy table — exactly one accounted eviction per
// fire.  Nothing in this layer throws on the packet path and nothing
// crashes at exhaustion.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/epoch.hpp"
#include "state/ct_config.hpp"
#include "state/fivetuple.hpp"

namespace esw::state {

/// ct_state bits stamped into ParseInfo::ct_state by the datapath pre-stage;
/// matchable in the DSL as `ct_state=VALUE/MASK`.
enum CtStateBits : uint32_t {
  kCtTracked = 1u << 0,      // pre-stage ran over a trackable (IPv4) packet
  kCtNew = 1u << 1,          // no committed entry yet / handshake in progress
  kCtEstablished = 1u << 2,  // packet belongs to a committed connection
  kCtReply = 1u << 3,        // reply direction of that connection
  kCtInvalid = 1u << 4,      // e.g. non-SYN TCP with no entry, midstream off
};

/// Compact TCP connection state (UDP/ICMP entries stay kNone).
enum class TcpState : uint8_t {
  kNone = 0,
  kSynSent,      // orig SYN seen (or committed)
  kSynRecv,      // reply SYN(+ACK) seen — simultaneous open lands here too
  kEstablished,  // three-way handshake completed (or midstream pickup)
  kFinWait,      // first FIN seen
  kClosed,       // FIN exchange completed or RST
};

class Conntrack {
 public:
  struct Entry;

  /// Chain node: each entry owns two, one per direction/key.
  struct HashLink {
    std::atomic<HashLink*> next{nullptr};
    Entry* entry = nullptr;
    uint8_t dir = 0;  // 0 = keyed on orig, 1 = keyed on reply
  };

  struct Entry {
    FiveTuple orig;   // committing direction's wire tuple (pre-NAT)
    FiveTuple reply;  // reply direction's wire tuple (post-NAT)
    uint8_t proto = 0;
    bool rw_active = false;  // reply != orig.reversed(): apply NAT rewrites
    uint32_t profile = 0;
    std::atomic<uint8_t> tcp_state{0};
    std::atomic<uint64_t> last_seen_ms{0};
    // Control fields guarded by shard locks (see dead/gen contract below).
    std::atomic<bool> dead{true};      // write under both shard locks; read anywhere
    std::atomic<uint32_t> gen{0};      // bumped when the slot returns to the freelist
    /// (shard0 << 16) | shard1 of the current incarnation, written at insert
    /// under both locks.  Candidate paths (eviction scan, wheel items) read
    /// this — never the plain tuples — to decide which locks to take, then
    /// re-validate gen and the pack after locking.
    std::atomic<uint32_t> shard_pack{0};
    HashLink link[2];
  };

  /// Pre-stage result, threaded to the post-stage by the datapath.
  struct Hit {
    Entry* entry = nullptr;
    uint8_t dir = 0;
    bool tuple_valid = false;
    FiveTuple tuple;
  };

  /// All counters are cumulative and relaxed; stats() snapshots them.
  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t commits = 0;            // entries created
    uint64_t commit_drops = 0;       // commit failed, accounted (degradation)
    uint64_t evictions_forced = 0;   // capacity- or failpoint-forced evictions
    uint64_t expired = 0;            // timeout-wheel removals
    uint64_t nat_port_exhausted = 0; // SNAT allocation gave up (accounted)
    uint64_t live = 0;               // current entry count
    uint64_t retire_pending = 0;     // unlinked, awaiting epoch grace
    uint64_t retired_total = 0;
    uint64_t reclaimed_total = 0;
  };

  Conntrack(const CtConfig& cfg, common::EpochDomain* domain);
  ~Conntrack();

  Conntrack(const Conntrack&) = delete;
  Conntrack& operator=(const Conntrack&) = delete;

  /// Pre-stage: lookup, TCP state transition, ct_state stamp, last-seen
  /// touch.  Lock-free; safe from any worker.  Mutates only pi.ct_state.
  Hit pre(const uint8_t* pkt, proto::ParseInfo& pi, uint64_t now_ms);

  /// Post-stage: commit if requested (or auto_commit) and the pre-stage
  /// missed, then apply the entry's NAT rewrite to the packet (checksums
  /// maintained via flow::store_field).  Safe from any worker.
  void post(const Hit& hit, bool commit_requested, uint32_t profile,
            uint8_t* pkt, proto::ParseInfo& pi, uint64_t now_ms);

  /// Amortized maintenance: drains a bounded slice of one shard's timeout
  /// wheel (round-robin) and reclaims that shard's grace-expired retirees.
  /// The datapath calls this once per burst chunk at a quiescent point.
  void poll(uint64_t now_ms);

  /// Wall clock for the packet path; manual mode reads the test-driven value.
  uint64_t now_ms() const;
  void set_now_ms(uint64_t ms) { manual_now_ms_.store(ms, std::memory_order_relaxed); }

  /// Runtime LB backend churn: atomically enable/disable a backend of an LB
  /// profile.  Existing connections keep their affinity (entry tuples are
  /// immutable); only new commits see the change.
  void set_backend_enabled(uint32_t profile, uint32_t backend, bool enabled);

  Stats stats() const;
  const CtConfig& config() const { return cfg_; }
  uint32_t capacity() const { return capacity_; }

  /// Direct lookup for tests/examples (lock-free, no stamping).
  Entry* find(const FiveTuple& t, uint8_t* dir_out = nullptr);

  /// Drains every shard's wheel and retire list as far as the epoch horizon
  /// allows (control side; used by teardown-order tests).
  void flush_reclaim();

 private:
  struct WheelItem {
    uint32_t slot;
    uint32_t gen;
    uint64_t due_ms;
  };

  static constexpr uint32_t kWheelSlots = 64;
  static constexpr uint32_t kWheelShift = 10;  // ~1s granularity
  static constexpr uint32_t kPollBudget = 128;
  static constexpr uint32_t kEvictProbes = 64;

  struct alignas(64) Shard {
    std::mutex lock;
    std::vector<WheelItem> wheel[kWheelSlots];
    uint64_t wheel_cursor_ms = 0;
    common::RetireList<uint32_t> retired;  // slab slot indices
  };

  uint32_t bucket_of(uint64_t h) const { return static_cast<uint32_t>(h) & bucket_mask_; }
  uint32_t shard_of(uint32_t bucket) const { return bucket >> shard_shift_; }

  uint64_t timeout_ms(const Entry& e) const;
  uint32_t state_bits(const Entry& e, uint8_t dir) const;
  void touch_tcp(Entry& e, uint8_t dir, uint8_t flags);

  Entry* commit(const FiveTuple& t, uint8_t flags, uint32_t profile, uint64_t now_ms);
  bool alloc_slot(uint32_t* slot);
  void free_slot(uint32_t slot);
  /// Unlinks + retires `slot` if its generation still matches and the entry
  /// is alive; `expire_check` additionally requires the idle deadline to
  /// have passed.  Takes both of the entry's shard locks in index order.
  bool remove_entry(uint32_t slot, uint32_t gen, bool expire_check, uint64_t now_ms);
  void unlink_locked(Entry& e);
  void wheel_insert_locked(Shard& s, uint32_t slot, uint32_t gen, uint64_t due_ms,
                           uint64_t now_ms);
  bool evict_one(uint64_t now_ms);
  void reclaim_locked(Shard& s);

  CtConfig cfg_;
  common::EpochDomain* domain_;
  uint32_t capacity_;
  uint32_t bucket_mask_;   // buckets - 1 (power of two)
  uint32_t shard_shift_;   // bucket index -> shard index
  uint32_t n_shards_;

  std::unique_ptr<Entry[]> slab_;
  std::unique_ptr<std::atomic<HashLink*>[]> buckets_;
  std::unique_ptr<Shard[]> shards_;

  std::mutex free_lock_;
  std::vector<uint32_t> free_;

  /// Runtime half of CtProfileConfig (atomic cursors/masks live here).
  struct Profile {
    CtProfileConfig::Kind kind = CtProfileConfig::Kind::kNone;
    uint32_t snat_ip = 0;
    uint16_t snat_port_lo = 0;
    uint16_t snat_port_hi = 0;
    std::atomic<uint32_t> snat_next{0};
    std::vector<std::pair<uint32_t, uint16_t>> backends;
    std::atomic<uint64_t> enabled_mask{0};
  };
  // Fixed slab (atomics are immovable, so no vector).
  std::unique_ptr<Profile[]> profiles_;
  size_t n_profiles_ = 0;

  std::atomic<uint32_t> poll_cursor_{0};
  std::atomic<uint32_t> evict_cursor_{0};
  std::atomic<uint64_t> manual_now_ms_{1};

  struct Counters {
    std::atomic<uint64_t> lookups{0}, hits{0}, misses{0};
    std::atomic<uint64_t> commits{0}, commit_drops{0}, evictions_forced{0};
    std::atomic<uint64_t> expired{0}, nat_port_exhausted{0};
    std::atomic<int64_t> live{0};
  };
  mutable Counters c_;
};

}  // namespace esw::state
