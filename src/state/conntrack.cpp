#include "state/conntrack.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"
#include "common/failpoint.hpp"
#include "flow/fields.hpp"

namespace esw::state {

namespace {

uint32_t round_up_pow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Locks one or two shard mutexes in index order (deadlock-free); unlocks on
/// destruction.
class ShardLocks {
 public:
  ShardLocks(std::mutex& a, std::mutex& b, bool same) : a_(a), b_(b), same_(same) {
    if (same_) {
      a_.lock();
    } else {
      std::lock(a_, b_);
    }
  }
  ~ShardLocks() {
    a_.unlock();
    if (!same_) b_.unlock();
  }
  ShardLocks(const ShardLocks&) = delete;
  ShardLocks& operator=(const ShardLocks&) = delete;

 private:
  std::mutex& a_;
  std::mutex& b_;
  bool same_;
};

uint8_t tcp_flags_of(const uint8_t* pkt, const proto::ParseInfo& pi) {
  return pi.has(proto::kProtoTcp) ? pkt[pi.l4_off + proto::kTcpFlagsOff] : 0;
}

/// Rendezvous (highest-random-weight) score of backend `i` for a flow hash.
uint64_t hrw_score(uint64_t flow_hash, uint32_t i) {
  uint64_t x = flow_hash ^ (0xA24BAED4963EE407ULL * (i + 1));
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

Conntrack::Conntrack(const CtConfig& cfg, common::EpochDomain* domain)
    : cfg_(cfg), domain_(domain) {
  ESW_CHECK(domain_ != nullptr);
  capacity_ = std::max<uint32_t>(cfg.capacity, 2);
  const uint32_t buckets = round_up_pow2(std::max<uint32_t>(capacity_, 64));
  bucket_mask_ = buckets - 1;
  uint32_t shards = round_up_pow2(std::max<uint32_t>(cfg.shards, 1));
  shards = std::min(shards, buckets);
  n_shards_ = shards;
  shard_shift_ = static_cast<uint32_t>(__builtin_ctz(buckets / shards));

  slab_ = std::make_unique<Entry[]>(capacity_);
  buckets_ = std::make_unique<std::atomic<HashLink*>[]>(buckets);
  for (uint32_t i = 0; i < buckets; ++i)
    buckets_[i].store(nullptr, std::memory_order_relaxed);
  shards_ = std::make_unique<Shard[]>(n_shards_);

  const uint64_t now = now_ms();
  for (uint32_t s = 0; s < n_shards_; ++s) shards_[s].wheel_cursor_ms = now;

  free_.reserve(capacity_);
  for (uint32_t i = capacity_; i-- > 0;) {
    // Direction links are per-slot constants; set once, never rewritten, so
    // lock-free chain walks read them race-free.
    slab_[i].link[0].entry = &slab_[i];
    slab_[i].link[0].dir = 0;
    slab_[i].link[1].entry = &slab_[i];
    slab_[i].link[1].dir = 1;
    free_.push_back(i);
  }

  n_profiles_ = std::max<size_t>(cfg.profiles.size(), 1);
  profiles_ = std::make_unique<Profile[]>(n_profiles_);
  for (size_t i = 0; i < cfg.profiles.size(); ++i) {
    const CtProfileConfig& pc = cfg.profiles[i];
    Profile& p = profiles_[i];
    p.kind = pc.kind;
    p.snat_ip = pc.snat_ip;
    p.snat_port_lo = pc.snat_port_lo;
    p.snat_port_hi = std::max(pc.snat_port_hi, pc.snat_port_lo);
    p.backends = pc.backends;
    if (p.backends.size() > 64) p.backends.resize(64);
    p.enabled_mask.store(p.backends.empty()
                             ? 0
                             : (p.backends.size() == 64
                                    ? ~uint64_t{0}
                                    : (uint64_t{1} << p.backends.size()) - 1),
                         std::memory_order_relaxed);
  }
}

Conntrack::~Conntrack() = default;

uint64_t Conntrack::now_ms() const {
  if (cfg_.manual_clock) return manual_now_ms_.load(std::memory_order_relaxed);
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Conntrack::timeout_ms(const Entry& e) const {
  if (e.proto == proto::kIpProtoTcp) {
    switch (static_cast<TcpState>(e.tcp_state.load(std::memory_order_relaxed))) {
      case TcpState::kSynSent:
      case TcpState::kSynRecv:
        return cfg_.tcp_syn_timeout_ms;
      case TcpState::kEstablished:
      case TcpState::kFinWait:
        return cfg_.tcp_est_timeout_ms;
      default:
        return cfg_.tcp_closed_timeout_ms;
    }
  }
  if (e.proto == proto::kIpProtoIcmp) return cfg_.icmp_timeout_ms;
  return cfg_.udp_timeout_ms;
}

uint32_t Conntrack::state_bits(const Entry& e, uint8_t dir) const {
  uint32_t bits = kCtTracked | (dir != 0 ? kCtReply : 0u);
  if (e.proto != proto::kIpProtoTcp) return bits | kCtEstablished;
  switch (static_cast<TcpState>(e.tcp_state.load(std::memory_order_relaxed))) {
    case TcpState::kSynSent:
    case TcpState::kSynRecv:
      // Committed but mid-handshake: established in the iptables sense (the
      // firewall must admit the SYN-ACK), flagged new for rules that care.
      return bits | kCtEstablished | kCtNew;
    case TcpState::kEstablished:
    case TcpState::kFinWait:
      return bits | kCtEstablished;
    default:
      return bits | kCtInvalid;  // closed/reset: late packets
  }
}

void Conntrack::touch_tcp(Entry& e, uint8_t dir, uint8_t flags) {
  if (e.proto != proto::kIpProtoTcp || flags == 0) return;
  uint8_t cur = e.tcp_state.load(std::memory_order_relaxed);
  for (;;) {
    TcpState next = static_cast<TcpState>(cur);
    if ((flags & proto::kTcpFlagRst) != 0) {
      next = TcpState::kClosed;
    } else {
      switch (static_cast<TcpState>(cur)) {
        case TcpState::kSynSent:
          // Reply-side SYN: plain SYN-ACK or a simultaneous-open bare SYN.
          if (dir == 1 && (flags & proto::kTcpFlagSyn) != 0) next = TcpState::kSynRecv;
          break;
        case TcpState::kSynRecv:
          if ((flags & proto::kTcpFlagAck) != 0 && (flags & proto::kTcpFlagSyn) == 0)
            next = TcpState::kEstablished;
          break;
        case TcpState::kEstablished:
          if ((flags & proto::kTcpFlagFin) != 0) next = TcpState::kFinWait;
          break;
        case TcpState::kFinWait:
          if ((flags & proto::kTcpFlagFin) != 0) next = TcpState::kClosed;
          break;
        default:
          break;
      }
    }
    if (next == static_cast<TcpState>(cur)) return;
    if (e.tcp_state.compare_exchange_weak(cur, static_cast<uint8_t>(next),
                                          std::memory_order_relaxed,
                                          std::memory_order_relaxed))
      return;
  }
}

Conntrack::Hit Conntrack::pre(const uint8_t* pkt, proto::ParseInfo& pi,
                              uint64_t now) {
  Hit hit;
  hit.tuple_valid = extract_tuple(pkt, pi, &hit.tuple);
  if (!hit.tuple_valid) {
    pi.ct_state = 0;
    return hit;
  }
  c_.lookups.fetch_add(1, std::memory_order_relaxed);

  const uint64_t h = hash_tuple(hit.tuple);
  for (HashLink* l = buckets_[bucket_of(h)].load(std::memory_order_acquire);
       l != nullptr; l = l->next.load(std::memory_order_acquire)) {
    Entry* e = l->entry;
    const FiveTuple& key = l->dir == 0 ? e->orig : e->reply;
    if (key == hit.tuple && !e->dead.load(std::memory_order_acquire)) {
      hit.entry = e;
      hit.dir = l->dir;
      break;
    }
  }

  if (hit.entry != nullptr) {
    c_.hits.fetch_add(1, std::memory_order_relaxed);
    touch_tcp(*hit.entry, hit.dir, tcp_flags_of(pkt, pi));
    hit.entry->last_seen_ms.store(now, std::memory_order_relaxed);
    pi.ct_state = state_bits(*hit.entry, hit.dir);
    return hit;
  }

  c_.misses.fetch_add(1, std::memory_order_relaxed);
  const uint8_t flags = tcp_flags_of(pkt, pi);
  const bool tcp = hit.tuple.proto == proto::kIpProtoTcp;
  const bool openable = !tcp || (flags & proto::kTcpFlagSyn) != 0 ||
                        cfg_.midstream_pickup;
  if (!openable) {
    pi.ct_state = kCtTracked | kCtInvalid;
    return hit;
  }
  pi.ct_state = kCtTracked | kCtNew;
  if (cfg_.auto_commit) hit.entry = commit(hit.tuple, flags, 0, now);
  return hit;
}

void Conntrack::post(const Hit& hit, bool commit_requested, uint32_t profile,
                     uint8_t* pkt, proto::ParseInfo& pi, uint64_t now) {
  if (!hit.tuple_valid) return;
  Entry* e = hit.entry;
  uint8_t dir = hit.dir;
  if (e == nullptr && commit_requested) {
    // Invalid-state commits (non-SYN TCP, midstream pickup off) were stamped
    // kCtInvalid in the pre-stage; refuse them here the same way.
    const uint8_t flags = tcp_flags_of(pkt, pi);
    const bool tcp = hit.tuple.proto == proto::kIpProtoTcp;
    if (!tcp || (flags & proto::kTcpFlagSyn) != 0 || cfg_.midstream_pickup) {
      e = commit(hit.tuple, flags, profile, now);
      dir = 0;
    }
  }
  if (e == nullptr || !e->rw_active) return;

  // NAT rewrite: make the egress tuple the reverse of the *other* direction's
  // wire tuple.  store_field maintains IP and L4 checksums incrementally and
  // no-ops on unchanged values.
  const FiveTuple want = (dir == 0 ? e->reply : e->orig).reversed();
  flow::store_field(flow::FieldId::kIpSrc, want.src_ip, pkt, pi);
  flow::store_field(flow::FieldId::kIpDst, want.dst_ip, pkt, pi);
  if (pi.has(proto::kProtoTcp)) {
    flow::store_field(flow::FieldId::kTcpSrc, want.src_port, pkt, pi);
    flow::store_field(flow::FieldId::kTcpDst, want.dst_port, pkt, pi);
  } else if (pi.has(proto::kProtoUdp)) {
    flow::store_field(flow::FieldId::kUdpSrc, want.src_port, pkt, pi);
    flow::store_field(flow::FieldId::kUdpDst, want.dst_port, pkt, pi);
  }
}

bool Conntrack::alloc_slot(uint32_t* slot) {
  std::lock_guard<std::mutex> g(free_lock_);
  if (free_.empty()) return false;
  *slot = free_.back();
  free_.pop_back();
  return true;
}

Conntrack::Entry* Conntrack::commit(const FiveTuple& t, uint8_t flags,
                                    uint32_t profile, uint64_t now) {
  Profile* prof = profile < n_profiles_ ? &profiles_[profile] : &profiles_[0];

  // The `ct.insert` failpoint models an at-capacity table on a healthy one:
  // exactly one accounted forced eviction, then the commit proceeds.
  if (ESW_FAILPOINT("ct.insert")) evict_one(now);

  uint32_t slot = 0;
  if (!alloc_slot(&slot)) {
    // Capacity: force-evict an accounted victim.  Its slot only returns to
    // the freelist after the epoch grace period (a concurrent lookup may
    // still be reading it), so this commit is dropped — accounted, never a
    // crash.  Reclaim in poll() refills the freelist.
    evict_one(now);
    c_.commit_drops.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  Entry& e = slab_[slot];
  e.orig = t;
  e.proto = t.proto;
  e.profile = profile;
  e.rw_active = false;
  e.last_seen_ms.store(now, std::memory_order_relaxed);
  if (t.proto == proto::kIpProtoTcp) {
    e.tcp_state.store(static_cast<uint8_t>((flags & proto::kTcpFlagSyn) != 0
                                               ? TcpState::kSynSent
                                               : TcpState::kEstablished),
                      std::memory_order_relaxed);
  } else {
    e.tcp_state.store(static_cast<uint8_t>(TcpState::kNone),
                      std::memory_order_relaxed);
  }

  // Resolve the reply-direction wire tuple from the commit profile; NAT
  // rewrites are derived purely from (orig, reply), no separate state.
  uint32_t port_attempts = 0;
  const uint32_t port_range =
      static_cast<uint32_t>(prof->snat_port_hi - prof->snat_port_lo) + 1;
  for (;;) {
    switch (prof->kind) {
      case CtProfileConfig::Kind::kSnat: {
        const uint32_t off =
            prof->snat_next.fetch_add(1, std::memory_order_relaxed) % port_range;
        const uint16_t nat_port = static_cast<uint16_t>(prof->snat_port_lo + off);
        const FiveTuple post{prof->snat_ip, t.dst_ip, nat_port, t.dst_port, t.proto};
        e.reply = post.reversed();
        e.rw_active = true;
        break;
      }
      case CtProfileConfig::Kind::kLb: {
        const uint64_t mask = prof->enabled_mask.load(std::memory_order_relaxed);
        if (mask == 0 || prof->backends.empty()) {
          free_slot(slot);
          c_.commit_drops.fetch_add(1, std::memory_order_relaxed);
          return nullptr;  // no backend up: accounted refusal
        }
        const uint64_t fh = hash_tuple(t);
        uint32_t best = 0;
        uint64_t best_score = 0;
        for (uint32_t i = 0; i < prof->backends.size(); ++i) {
          if ((mask & (uint64_t{1} << i)) == 0) continue;
          const uint64_t score = hrw_score(fh, i);
          if (score >= best_score) {
            best_score = score;
            best = i;
          }
        }
        const auto [bip, bport] = prof->backends[best];
        const FiveTuple post{t.src_ip, bip, t.src_port, bport, t.proto};
        e.reply = post.reversed();
        e.rw_active = true;
        break;
      }
      default:
        e.reply = t.reversed();
        break;
    }

    // Publish under both direction shards' locks (index order).
    const uint32_t b0 = bucket_of(hash_tuple(e.orig));
    const uint32_t b1 = bucket_of(hash_tuple(e.reply));
    const uint32_t s0 = shard_of(b0);
    const uint32_t s1 = shard_of(b1);
    {
      ShardLocks locks(shards_[std::min(s0, s1)].lock, shards_[std::max(s0, s1)].lock,
                       s0 == s1);
      bool dup_orig = false;
      bool dup_reply = false;
      for (HashLink* l = buckets_[b0].load(std::memory_order_relaxed); l != nullptr;
           l = l->next.load(std::memory_order_relaxed)) {
        const FiveTuple& key = l->dir == 0 ? l->entry->orig : l->entry->reply;
        if (key == e.orig && !l->entry->dead.load(std::memory_order_relaxed))
          dup_orig = true;
      }
      for (HashLink* l = buckets_[b1].load(std::memory_order_relaxed); l != nullptr;
           l = l->next.load(std::memory_order_relaxed)) {
        const FiveTuple& key = l->dir == 0 ? l->entry->orig : l->entry->reply;
        if (key == e.reply && !l->entry->dead.load(std::memory_order_relaxed))
          dup_reply = true;
      }
      if (!dup_orig && !dup_reply) {
        e.shard_pack.store((s0 << 16) | s1, std::memory_order_relaxed);
        e.dead.store(false, std::memory_order_relaxed);
        e.link[0].next.store(buckets_[b0].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
        buckets_[b0].store(&e.link[0], std::memory_order_release);
        e.link[1].next.store(buckets_[b1].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
        buckets_[b1].store(&e.link[1], std::memory_order_release);
        wheel_insert_locked(shards_[s0], slot, e.gen.load(std::memory_order_relaxed),
                            now + timeout_ms(e), now);
        c_.commits.fetch_add(1, std::memory_order_relaxed);
        c_.live.fetch_add(1, std::memory_order_relaxed);
        return &e;
      }
      if (dup_orig) {
        // Another worker committed the same flow first; locate and adopt it.
        Entry* existing = nullptr;
        for (HashLink* l = buckets_[b0].load(std::memory_order_relaxed);
             l != nullptr; l = l->next.load(std::memory_order_relaxed)) {
          const FiveTuple& key = l->dir == 0 ? l->entry->orig : l->entry->reply;
          if (key == e.orig && !l->entry->dead.load(std::memory_order_relaxed)) {
            existing = l->entry;
            break;
          }
        }
        // locks release at scope exit
        free_slot(slot);
        return existing;
      }
      // dup_reply only: SNAT port collision — retry with the next port.
      (void)dup_reply;
    }
    if (prof->kind != CtProfileConfig::Kind::kSnat ||
        ++port_attempts >= std::min<uint32_t>(port_range, 64)) {
      free_slot(slot);
      c_.nat_port_exhausted.fetch_add(1, std::memory_order_relaxed);
      c_.commit_drops.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
  }
}

void Conntrack::free_slot(uint32_t slot) {
  std::lock_guard<std::mutex> g(free_lock_);
  free_.push_back(slot);
}

void Conntrack::unlink_locked(Entry& e) {
  for (int d = 0; d < 2; ++d) {
    const FiveTuple& key = d == 0 ? e.orig : e.reply;
    std::atomic<HashLink*>* pp = &buckets_[bucket_of(hash_tuple(key))];
    for (HashLink* l = pp->load(std::memory_order_relaxed); l != nullptr;
         l = pp->load(std::memory_order_relaxed)) {
      if (l == &e.link[d]) {
        pp->store(l->next.load(std::memory_order_relaxed), std::memory_order_release);
        break;
      }
      pp = &l->next;
    }
  }
}

bool Conntrack::remove_entry(uint32_t slot, uint32_t gen, bool expire_check,
                             uint64_t now) {
  Entry& e = slab_[slot];
  // Candidate paths must not read the (plain) tuples before validating the
  // incarnation: pick locks from the atomic shard pack, lock, re-validate.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint32_t pack = e.shard_pack.load(std::memory_order_acquire);
    const uint32_t s0 = pack >> 16;
    const uint32_t s1 = pack & 0xFFFF;
    if (s0 >= n_shards_ || s1 >= n_shards_) return false;
    ShardLocks locks(shards_[std::min(s0, s1)].lock, shards_[std::max(s0, s1)].lock,
                     s0 == s1);
    if (e.gen.load(std::memory_order_relaxed) != gen ||
        e.dead.load(std::memory_order_relaxed))
      return false;
    if (e.shard_pack.load(std::memory_order_relaxed) != pack) continue;  // re-pick

    if (expire_check) {
      const uint64_t deadline =
          e.last_seen_ms.load(std::memory_order_relaxed) + timeout_ms(e);
      if (deadline > now) {
        // Saw traffic since scheduling: push the wheel item out to the
        // refreshed deadline instead of expiring.
        wheel_insert_locked(shards_[s0], slot, gen, deadline, now);
        return false;
      }
    }

    unlink_locked(e);
    e.dead.store(true, std::memory_order_release);
    const uint64_t stamp = domain_->current_epoch();
    shards_[s0].retired.retire(slot, stamp);
    domain_->advance();
    c_.live.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool Conntrack::evict_one(uint64_t now) {
  for (uint32_t probe = 0; probe < kEvictProbes; ++probe) {
    const uint32_t slot =
        evict_cursor_.fetch_add(1, std::memory_order_relaxed) % capacity_;
    Entry& e = slab_[slot];
    if (e.dead.load(std::memory_order_relaxed)) continue;
    const uint32_t gen = e.gen.load(std::memory_order_relaxed);
    if (remove_entry(slot, gen, /*expire_check=*/false, now)) {
      c_.evictions_forced.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void Conntrack::wheel_insert_locked(Shard& s, uint32_t slot, uint32_t gen,
                                    uint64_t due_ms, uint64_t now) {
  (void)now;
  const uint64_t slot_ms = uint64_t{1} << kWheelShift;
  const uint64_t lo = s.wheel_cursor_ms + slot_ms;
  const uint64_t hi = s.wheel_cursor_ms + (uint64_t{kWheelSlots - 1} << kWheelShift);
  const uint64_t due = std::min(std::max(due_ms, lo), hi);
  s.wheel[(due >> kWheelShift) % kWheelSlots].push_back({slot, gen, due_ms});
}

void Conntrack::reclaim_locked(Shard& s) {
  const uint64_t horizon = domain_->min_observed();
  std::vector<uint32_t> freed;
  s.retired.reclaim_into(horizon, [&](uint32_t slot) {
    // Bump the generation before the slot becomes allocatable: stale wheel
    // items and eviction candidates detect the reuse.
    slab_[slot].gen.fetch_add(1, std::memory_order_release);
    freed.push_back(slot);
  });
  if (!freed.empty()) {
    std::lock_guard<std::mutex> g(free_lock_);
    free_.insert(free_.end(), freed.begin(), freed.end());
  }
}

void Conntrack::poll(uint64_t now) {
  const uint32_t si =
      poll_cursor_.fetch_add(1, std::memory_order_relaxed) % n_shards_;
  Shard& s = shards_[si];
  std::vector<WheelItem> due;
  {
    std::lock_guard<std::mutex> g(s.lock);
    reclaim_locked(s);
    const uint64_t slot_ms = uint64_t{1} << kWheelShift;
    uint32_t advanced = 0;
    while (s.wheel_cursor_ms + slot_ms <= now && advanced < kWheelSlots &&
           due.size() < kPollBudget) {
      s.wheel_cursor_ms += slot_ms;
      auto& v = s.wheel[(s.wheel_cursor_ms >> kWheelShift) % kWheelSlots];
      if (!v.empty()) {
        due.insert(due.end(), v.begin(), v.end());
        v.clear();
      }
      ++advanced;
    }
    // A long idle gap: after one full rotation every slot drained, so the
    // wheel is empty — jump the cursor instead of looping seconds at a time.
    if (advanced == kWheelSlots && s.wheel_cursor_ms + slot_ms <= now)
      s.wheel_cursor_ms = now;
  }
  for (const WheelItem& it : due)
    if (remove_entry(it.slot, it.gen, /*expire_check=*/true, now))
      c_.expired.fetch_add(1, std::memory_order_relaxed);
}

void Conntrack::set_backend_enabled(uint32_t profile, uint32_t backend, bool enabled) {
  if (profile >= n_profiles_) return;
  Profile& p = profiles_[profile];
  if (backend >= p.backends.size()) return;
  const uint64_t bit = uint64_t{1} << backend;
  if (enabled)
    p.enabled_mask.fetch_or(bit, std::memory_order_relaxed);
  else
    p.enabled_mask.fetch_and(~bit, std::memory_order_relaxed);
}

Conntrack::Entry* Conntrack::find(const FiveTuple& t, uint8_t* dir_out) {
  const uint64_t h = hash_tuple(t);
  for (HashLink* l = buckets_[bucket_of(h)].load(std::memory_order_acquire);
       l != nullptr; l = l->next.load(std::memory_order_acquire)) {
    const FiveTuple& key = l->dir == 0 ? l->entry->orig : l->entry->reply;
    if (key == t && !l->entry->dead.load(std::memory_order_acquire)) {
      if (dir_out != nullptr) *dir_out = l->dir;
      return l->entry;
    }
  }
  return nullptr;
}

void Conntrack::flush_reclaim() {
  for (uint32_t i = 0; i < n_shards_; ++i) {
    std::lock_guard<std::mutex> g(shards_[i].lock);
    reclaim_locked(shards_[i]);
  }
}

Conntrack::Stats Conntrack::stats() const {
  Stats s;
  s.lookups = c_.lookups.load(std::memory_order_relaxed);
  s.hits = c_.hits.load(std::memory_order_relaxed);
  s.misses = c_.misses.load(std::memory_order_relaxed);
  s.commits = c_.commits.load(std::memory_order_relaxed);
  s.commit_drops = c_.commit_drops.load(std::memory_order_relaxed);
  s.evictions_forced = c_.evictions_forced.load(std::memory_order_relaxed);
  s.expired = c_.expired.load(std::memory_order_relaxed);
  s.nat_port_exhausted = c_.nat_port_exhausted.load(std::memory_order_relaxed);
  const int64_t live = c_.live.load(std::memory_order_relaxed);
  s.live = live > 0 ? static_cast<uint64_t>(live) : 0;
  for (uint32_t i = 0; i < n_shards_; ++i) {
    std::lock_guard<std::mutex> g(shards_[i].lock);
    s.retire_pending += shards_[i].retired.pending();
    s.retired_total += shards_[i].retired.retired_total();
    s.reclaimed_total += shards_[i].retired.reclaimed_total();
  }
  return s;
}

}  // namespace esw::state
