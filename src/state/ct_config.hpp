// Conntrack configuration — deliberately light so core/analysis.hpp can
// embed it in CompilerConfig without pulling the whole stateful layer into
// every translation unit.  The runtime half lives in state/conntrack.hpp.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace esw::state {

/// Declarative commit-profile description: what a `ct:commit:N` action does
/// to the connection it creates.  Plain data (copyable) — the Conntrack
/// builds its runtime profile table (port-allocation cursors, backend
/// enable masks) from this at construction.
struct CtProfileConfig {
  enum class Kind : uint8_t {
    kNone,  // plain commit, no rewrite
    kSnat,  // source NAT: src -> (snat_ip, allocated port), reversed on replies
    kLb,    // load balancer: dst -> rendezvous-hashed backend, per-conn affinity
  };
  Kind kind = Kind::kNone;

  // kSnat: external address and the port-allocation range (inclusive).
  uint32_t snat_ip = 0;
  uint16_t snat_port_lo = 1024;
  uint16_t snat_port_hi = 65535;

  // kLb: backend pool as (ip, port) pairs; at most 64 (the runtime enable
  // mask is one word so churn is an atomic bit flip, no reclamation).
  std::vector<std::pair<uint32_t, uint16_t>> backends;
};

/// Connection-tracking knobs, carried inside core::CompilerConfig (`cfg.ct`).
/// `enabled` gates everything: a default-constructed config costs nothing on
/// the datapath (one null-pointer load per burst).
struct CtConfig {
  bool enabled = false;

  /// Max concurrent entries (slab-allocated up front).  A commit past this
  /// force-evicts an accounted victim; if none can be found the commit is
  /// dropped (accounted) — never a crash (docs/STATEFUL.md).
  uint32_t capacity = 1u << 20;

  /// Hash shards (rounded up to a power of two, capped at bucket count).
  /// Locks are per shard; lookups are lock-free.
  uint32_t shards = 16;

  /// Admit a non-SYN TCP commit straight to Established (conntrack pickup of
  /// pre-existing flows).  Off: such packets stamp new|inv and a commit on
  /// them is refused.
  bool midstream_pickup = false;

  /// Commit every missing connection automatically (no ct:commit action
  /// needed).  The soak uses this to drive continuous insert/evict churn
  /// through an unmodified pipeline.
  bool auto_commit = false;

  /// Tests drive the clock via Conntrack::set_now_ms() instead of
  /// steady_clock — deterministic expiry.
  bool manual_clock = false;

  // Per-state idle timeouts (ms since last packet in either direction).
  uint32_t tcp_syn_timeout_ms = 30'000;
  uint32_t tcp_est_timeout_ms = 600'000;
  uint32_t tcp_closed_timeout_ms = 5'000;
  uint32_t udp_timeout_ms = 60'000;
  uint32_t icmp_timeout_ms = 10'000;

  /// Commit profiles addressed by `ct:commit:N` (index into this vector);
  /// index 0 should stay kNone so a bare `ct:commit` means "track only".
  std::vector<CtProfileConfig> profiles;
};

}  // namespace esw::state
