// The five-tuple connection key and its extraction from a parsed packet.
//
// A connection is keyed on both directions' wire tuples Linux-style: the
// `orig` tuple is the committing packet's, the `reply` tuple is what reply
// packets carry on the wire (post-NAT when a rewrite profile applies).  Both
// are FiveTuples; reversed() maps between a direction's wire form and the
// egress form of the opposite direction.
#pragma once

#include <cstdint>

#include "common/bits.hpp"
#include "proto/headers.hpp"
#include "proto/parse.hpp"

namespace esw::state {

struct FiveTuple {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t proto = 0;

  bool operator==(const FiveTuple&) const = default;

  FiveTuple reversed() const { return {dst_ip, src_ip, dst_port, src_port, proto}; }
};

/// 64-bit mix of the tuple (splitmix64 finalizer over the packed key).
/// Deliberately NOT direction-symmetric: each direction hashes to its own
/// bucket, which is what the dual-key insert wants.
inline uint64_t hash_tuple(const FiveTuple& t) {
  uint64_t a = (static_cast<uint64_t>(t.src_ip) << 32) | t.dst_ip;
  uint64_t b = (static_cast<uint64_t>(t.src_port) << 24) |
               (static_cast<uint64_t>(t.dst_port) << 8) | t.proto;
  uint64_t x = a ^ (b * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Fills `out` from a parsed IPv4 packet; false when the packet carries no
/// trackable tuple (non-IP).  TCP/UDP use real ports; ICMP and bare IPv4 key
/// on addresses + protocol only, so an echo reply maps onto the request's
/// entry via reversed().
inline bool extract_tuple(const uint8_t* pkt, const proto::ParseInfo& pi,
                          FiveTuple* out) {
  using namespace esw::proto;
  if (!pi.has(kProtoIpv4)) return false;
  const uint8_t* ip = pkt + pi.l3_off;
  out->src_ip = static_cast<uint32_t>(load_be32(ip + kIpv4SrcOff));
  out->dst_ip = static_cast<uint32_t>(load_be32(ip + kIpv4DstOff));
  out->proto = ip[kIpv4ProtoOff];
  if (pi.has(kProtoTcp) || pi.has(kProtoUdp)) {
    const uint8_t* l4 = pkt + pi.l4_off;
    out->src_port = load_be16(l4 + 0);
    out->dst_port = load_be16(l4 + 2);
  } else {
    out->src_port = 0;
    out->dst_port = 0;
  }
  return true;
}

}  // namespace esw::state
