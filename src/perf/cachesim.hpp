// Set-associative LRU cache hierarchy simulator, configured by default to the
// paper's Table 1 testbed (Xeon E5-2620 Sandy Bridge: 32K L1d, 256K L2,
// 15M L3 at 4/12/29-cycle latencies).
//
// Substitutes for the paper's hardware `perf` LLC counters (Fig. 15) and the
// working-set-driven cycle estimates (Figs. 13/16): datapath structures
// report touched addresses through MemTrace and the simulator classifies each
// access by the cache level that served it.
#pragma once

#include <cstdint>
#include <vector>

namespace esw::perf {

struct CacheLevelConfig {
  uint32_t size_bytes;
  uint32_t ways;
  uint32_t latency_cycles;
};

struct CacheHierarchyConfig {
  CacheLevelConfig l1{32 * 1024, 8, 4};
  CacheLevelConfig l2{256 * 1024, 8, 12};
  CacheLevelConfig l3{15 * 1024 * 1024, 20, 29};
  uint32_t mem_latency_cycles = 200;
  uint32_t line_bytes = 64;
};

class CacheSim {
 public:
  CacheSim() : CacheSim(CacheHierarchyConfig{}) {}
  explicit CacheSim(const CacheHierarchyConfig& cfg);

  /// Feeds one line-granular access (MemTrace convention: address >> 6).
  /// Returns the level that served it: 1..3, or 4 for memory.
  int access(uint64_t line);

  struct Counters {
    uint64_t accesses = 0;
    uint64_t l1_hits = 0;
    uint64_t l2_hits = 0;
    uint64_t l3_hits = 0;
    uint64_t mem_accesses = 0;  // LLC misses
    uint64_t total_latency_cycles = 0;
  };
  const Counters& counters() const { return counters_; }
  void clear_counters() { counters_ = Counters{}; }

  /// Latency in cycles of the last classification for a given level.
  uint32_t level_latency(int level) const;

 private:
  struct Level {
    uint32_t sets;
    uint32_t ways;
    // way-ordered per set: lines[set*ways + k]; LRU order via timestamps.
    std::vector<uint64_t> lines;
    std::vector<uint64_t> ts;

    bool touch(uint64_t line, uint64_t now);  // true = hit (and refresh)
    void fill(uint64_t line, uint64_t now);
  };

  Level make_level(const CacheLevelConfig& c) const;

  CacheHierarchyConfig cfg_;
  Level l1_, l2_, l3_;
  uint64_t now_ = 0;
  Counters counters_;
};

}  // namespace esw::perf
