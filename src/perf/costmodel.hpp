// The paper's §4.4 performance model: per-template cycle "atoms" (Fig. 20)
// composed into per-pipeline cost estimates with best/typical/worst-case
// bounds driven by which CPU cache level serves the variable accesses.
//
// With the Table 1 latencies, the gateway pipeline composes to
// 166 + 3·Lx cycles/packet: 178 (all-L1) / 202 (L2) / 253 (all-L3), i.e.
// 11.2 / 9.9 / 7.9 Mpps at 2 GHz — the figures quoted in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace esw::perf {

/// Fixed per-stage cycle costs (Fig. 20).
struct ModelAtoms {
  uint32_t pkt_in = 40;      // DPDK packet receive IO
  uint32_t parser = 28;      // parse header fields
  uint32_t hash_fix = 8;     // hash template, plus one Lx access
  uint32_t lpm_fix = 13;     // LPM template, plus two Lx accesses
  uint32_t direct_per_entry = 3;  // direct code: compare chain per entry
  uint32_t action = 25;      // action set processing
  uint32_t pkt_out = 40;     // DPDK packet transmit IO
};

/// One pipeline stage in the model.
struct StageCost {
  std::string name;
  uint32_t fixed_cycles = 0;
  uint32_t variable_accesses = 0;  // memory touches charged at Lx
};

class CostModel {
 public:
  explicit CostModel(const ModelAtoms& atoms = {}) : atoms_(atoms) {}

  /// Composition helpers for the template kinds.
  void add_pkt_io();  // PKT_IN + PKT_OUT
  void add_parser();
  void add_hash_stage(const std::string& name);
  void add_lpm_stage(const std::string& name);
  void add_direct_stage(const std::string& name, uint32_t entries);
  /// Range template: one Lx access per binary-search step.
  void add_range_stage(const std::string& name, uint32_t search_steps);
  /// Linked list: one hash probe per tuple visited (worst case: all tuples).
  void add_linked_list_stage(const std::string& name, uint32_t tuples);
  void add_action_stage();

  /// Total cycles per packet when every variable access costs `lx_cycles`.
  uint32_t cycles(uint32_t lx_cycles) const;

  /// Packets/second at `ghz` when variable accesses cost `lx_cycles`.
  double pps(double ghz, uint32_t lx_cycles) const;

  uint32_t fixed_cycles() const;
  uint32_t variable_accesses() const;
  const std::vector<StageCost>& stages() const { return stages_; }
  const ModelAtoms& atoms() const { return atoms_; }

  /// The paper's gateway-pipeline model (Fig. 20): IO + parser + two hash
  /// stages + LPM + actions.
  static CostModel gateway_model();

 private:
  ModelAtoms atoms_;
  std::vector<StageCost> stages_;
};

}  // namespace esw::perf
