#include "perf/replay.hpp"

namespace esw::perf {

ReplayStats run_cache_replay(const std::function<void(net::Packet&, MemTrace*)>& fn,
                             const net::TrafficSet& traffic, uint64_t packets,
                             uint64_t warmup, uint32_t fixed_cycles_per_pkt,
                             const CacheHierarchyConfig& cfg) {
  CacheSim sim(cfg);
  net::Packet scratch;
  MemTrace trace;

  for (uint64_t i = 0; i < warmup; ++i) {
    traffic.load(i, scratch);
    trace.clear();
    fn(scratch, &trace);
    for (const uint64_t line : trace.lines()) sim.access(line);
  }
  sim.clear_counters();

  for (uint64_t i = 0; i < packets; ++i) {
    traffic.load(warmup + i, scratch);
    trace.clear();
    fn(scratch, &trace);
    for (const uint64_t line : trace.lines()) sim.access(line);
  }

  const auto& c = sim.counters();
  ReplayStats st;
  st.packets = packets;
  st.llc_misses_per_pkt =
      static_cast<double>(c.mem_accesses) / static_cast<double>(packets);
  st.l1_hit_fraction =
      c.accesses > 0 ? static_cast<double>(c.l1_hits) / static_cast<double>(c.accesses)
                     : 0.0;
  st.est_cycles_per_pkt =
      fixed_cycles_per_pkt +
      static_cast<double>(c.total_latency_cycles) / static_cast<double>(packets);
  return st;
}

}  // namespace esw::perf
