#include "perf/soak.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/failpoint.hpp"
#include "core/eswitch.hpp"
#include "core/switch_runtime.hpp"
#include "netio/pcap.hpp"
#include "netio/trace_source.hpp"
#include "perf/bench_json.hpp"
#include "state/conntrack.hpp"
#include "usecases/usecases.hpp"

namespace esw::perf {

namespace {

using Clock = std::chrono::steady_clock;
using Runtime = core::SwitchRuntime<core::Eswitch>;

std::string u64s(uint64_t v) { return std::to_string(v); }

/// Issues one chunk of paced add/delete pairs across both live-update shapes:
///   * /24 routes in 230.0.0.0/8 into the L3 table (colliding with nothing) —
///     the in-place incremental LPM path (epoch-published cells);
///   * exact-match entries into a side table unreachable from the pipeline
///     start — priority != prefix length keeps it off the LPM template, so
///     with workers registered every mod is a clone-update-swap whose
///     displaced impl retires through the epoch domain.  This is what keeps
///     reclamation itself under sustained load (and what the stuck-worker
///     planted fault stalls).
void churn_chunk(core::Eswitch& sw, uint64_t* mods, int pairs) {
  for (int k = 0; k < pairs; ++k) {
    flow::FlowMod fm;
    fm.table_id = 0;
    fm.priority = 24;
    fm.match.set(flow::FieldId::kIpDst,
                 (230u << 24) | (static_cast<uint32_t>(*mods % 4096) << 8),
                 0xFFFFFF00);
    fm.actions = {flow::Action::output(static_cast<uint32_t>(1 + *mods % 8))};
    sw.apply(fm);
    fm.command = flow::FlowMod::Cmd::kDelete;
    sw.apply(fm);

    flow::FlowMod side;
    side.table_id = 200;  // far above the use case's tables; never a goto target
    side.priority = 1;
    side.match.set(flow::FieldId::kIpDst,
                   (231u << 24) | static_cast<uint32_t>(*mods % 4096), 0xFFFFFFFF);
    side.actions = {flow::Action::output(1)};
    sw.apply(side);
    side.command = flow::FlowMod::Cmd::kDelete;
    sw.apply(side);
    *mods += 4;
  }
}

/// The chaos rotation: one failpoint armed per window, each chosen so the
/// soak's own traffic + churn is guaranteed to hit the site, and each mapped
/// (in close_chaos_window) to the degradation counter that must absorb it.
/// runtime.worker_stall is deliberately absent — a one-shot 20ms stall is
/// shorter than the checkpoint cadence, so the watchdog test drives it
/// directly instead (test_robustness).
struct ChaosSlot {
  const char* name;
  const char* spec;
};
constexpr ChaosSlot kChaosSchedule[] = {
    {"mbuf.alloc", "prob:0.2:101"},     // pool exhaustion -> backpressure
    {"ring.enqueue_mp", "prob:0.01:102"},  // TX ring refusals -> tx_rejected
    {"jit.exec_map", "always"},         // JIT mapping dead -> interpreter
    {"lpm.tbl8", "prob:0.5:103"},       // tbl8 exhaustion -> rebuild/fallback
    {"hash.insert", "prob:0.5:104"},    // incremental refusal -> rebuild
    {"epoch.reclaim", "prob:0.5:105"},  // deferred reclamation -> pending
    {"ct.insert", "prob:0.5:106"},      // conntrack slot pressure -> eviction
};
constexpr size_t kChaosSlots = sizeof(kChaosSchedule) / sizeof(kChaosSchedule[0]);

/// Counter snapshot bracketing one chaos window, for the delta accounting.
struct ChaosWindowBase {
  uint64_t pool_exhausted = 0;
  uint64_t backpressure_events = 0;
  uint64_t alloc_failures = 0;
  uint64_t tx_rejected = 0;
  uint64_t jit_fallbacks = 0;
  uint64_t fusion_fallbacks = 0;
  uint64_t template_fallbacks = 0;
  uint64_t table_rebuilds = 0;
  uint64_t ct_absorbed = 0;  // conntrack forced evictions + commit drops
  uint64_t fires = 0;
  uint64_t pending_seen = 0;  // max reclaim-pending observed inside the window
};

ChaosWindowBase chaos_snapshot(core::SwitchRuntime<core::Eswitch>& rt,
                               const char* point) {
  const auto c = rt.counters();
  const auto& deg = rt.backend().degradation_stats();
  ChaosWindowBase b;
  b.pool_exhausted = c.pool_exhausted;
  b.backpressure_events = c.backpressure_events;
  b.alloc_failures = rt.pool().alloc_failures();
  b.tx_rejected = c.tx_rejected;
  b.jit_fallbacks = deg.jit_fallbacks;
  b.fusion_fallbacks = deg.fusion_fallbacks;
  b.template_fallbacks = deg.template_fallbacks;
  b.table_rebuilds = rt.backend().update_stats().table_rebuilds;
  if (const state::Conntrack* ct = rt.backend().conntrack()) {
    const state::Conntrack::Stats cs = ct->stats();
    b.ct_absorbed = cs.evictions_forced + cs.commit_drops;
  }
  b.fires = common::FailpointRegistry::instance().fires(point);
  return b;
}

/// Audits one closed window: if the armed point fired at all, the mapped
/// degradation counter must have moved — an unaccounted fault is a policy
/// hole, and the check fails loudly instead of the process dying quietly.
SoakCheck close_chaos_window(core::SwitchRuntime<core::Eswitch>& rt,
                             const ChaosSlot& slot, const ChaosWindowBase& base,
                             uint64_t window_no) {
  const ChaosWindowBase now = chaos_snapshot(rt, slot.name);
  const uint64_t fires = now.fires - base.fires;
  const std::string name = slot.name;
  uint64_t delta = 0;
  if (name == "mbuf.alloc")
    delta = (now.pool_exhausted - base.pool_exhausted) +
            (now.backpressure_events - base.backpressure_events) +
            (now.alloc_failures - base.alloc_failures);
  else if (name == "ring.enqueue_mp")
    delta = now.tx_rejected - base.tx_rejected;
  else if (name == "jit.exec_map")
    // The exec mapper serves both the per-table JIT and the whole-pipeline
    // fusion compiler; a fire lands in whichever ledger owned the mapping.
    delta = (now.jit_fallbacks - base.jit_fallbacks) +
            (now.fusion_fallbacks - base.fusion_fallbacks);
  else if (name == "lpm.tbl8")
    delta = (now.table_rebuilds - base.table_rebuilds) +
            (now.template_fallbacks - base.template_fallbacks);
  else if (name == "hash.insert")
    delta = (now.table_rebuilds - base.table_rebuilds) +
            (now.template_fallbacks - base.template_fallbacks);
  else if (name == "epoch.reclaim")
    delta = base.pending_seen;  // deferred work observed; final reclaim drains it
  else if (name == "ct.insert")
    delta = now.ct_absorbed - base.ct_absorbed;
  SoakCheck c;
  c.name = "chaos-" + name;
  c.ok = fires == 0 || delta > 0;
  c.detail = "window=" + u64s(window_no) + " fires=" + u64s(fires) +
             " absorbed_delta=" + u64s(delta);
  return c;
}

/// Chaos-mode churn riding alongside churn_chunk: shapes chosen so every
/// scheduled failpoint's site is on a hot path.
///   * /30 routes in 232.0.0.0/8 — each add extends a tbl8 group (lpm.tbl8),
///     each refusal forces a side-by-side rebuild;
///   * a tiny exact-match table 210 (<= direct_code_max_entries) — every mod
///     rebuilds through the JIT (jit.exec_map), and the first clean rebuild
///     after a degraded window is the re-JIT recovery.
/// Table 200's hash churn comes from churn_chunk itself once
/// seed_hash_table() has pushed it past the direct-code threshold.
void chaos_churn_chunk(core::Eswitch& sw, uint64_t* mods, int pairs) {
  for (int k = 0; k < pairs; ++k) {
    flow::FlowMod fm;
    fm.table_id = 0;
    fm.priority = 30;
    fm.match.set(flow::FieldId::kIpDst,
                 (232u << 24) | (static_cast<uint32_t>(*mods % 4096) << 2),
                 0xFFFFFFFC);
    fm.actions = {flow::Action::output(static_cast<uint32_t>(1 + *mods % 8))};
    sw.apply(fm);
    fm.command = flow::FlowMod::Cmd::kDelete;
    sw.apply(fm);

    flow::FlowMod tiny;
    tiny.table_id = 210;  // never a goto target; pure update-plane load
    tiny.priority = 1;
    tiny.match.set(flow::FieldId::kIpDst,
                   (233u << 24) | static_cast<uint32_t>(*mods % 3), 0xFFFFFFFF);
    tiny.actions = {flow::Action::output(1)};
    sw.apply(tiny);
    tiny.command = flow::FlowMod::Cmd::kDelete;
    sw.apply(tiny);
    *mods += 4;
  }
}

/// Seeds table 200 with enough persistent exact-match entries that analysis
/// picks the compound-hash template (past direct_code_max_entries) — churn's
/// add/delete on the table then rides HashTemplateTable::try_add, where the
/// hash.insert failpoint lives.  Keys sit above the churned range (bit 16).
void seed_hash_table(core::Eswitch& sw) {
  for (uint32_t i = 0; i < 8; ++i) {
    flow::FlowMod fm;
    fm.table_id = 200;
    fm.priority = 1;
    fm.match.set(flow::FieldId::kIpDst, (231u << 24) | 0x10000u | i, 0xFFFFFFFF);
    fm.actions = {flow::Action::output(1)};
    sw.apply(fm);
  }
}

/// Reads and applies the percentile-ceiling file: a flat JSON object mapping
/// any of p50/p90/p99/p999/max to a maximum allowed nanosecond value.
SoakCheck check_latency_floor(const std::string& path,
                              const LatencyPercentiles& ns) {
  SoakCheck c{"latency-floor", false, ""};
  std::ifstream in(path);
  if (!in) {
    c.detail = "cannot read floor file " + path;
    return c;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = Json::parse(buf.str());
  if (!doc || doc->kind() != Json::Kind::kObject) {
    c.detail = "floor file " + path + " is not a JSON object";
    return c;
  }
  const std::pair<const char*, double> measured[] = {
      {"p50", ns.p50}, {"p90", ns.p90},   {"p99", ns.p99},
      {"p999", ns.p999}, {"max", ns.max},
  };
  c.ok = true;
  for (const auto& [key, value] : measured) {
    const Json* ceil = doc->find(key);
    if (ceil == nullptr || ceil->kind() != Json::Kind::kNumber) continue;
    if (value > ceil->as_number()) {
      c.ok = false;
      c.detail += std::string(c.detail.empty() ? "" : "; ") + key + " " +
                  std::to_string(value) + "ns > ceiling " +
                  std::to_string(ceil->as_number()) + "ns";
    }
  }
  if (c.ok) c.detail = "all measured percentiles under " + path;
  return c;
}

}  // namespace

std::optional<SoakOptions::Fault> soak_fault_from_name(std::string_view name) {
  if (name == "none" || name.empty()) return SoakOptions::Fault::kNone;
  if (name == "leak-buffer") return SoakOptions::Fault::kLeakBuffer;
  if (name == "stuck-worker") return SoakOptions::Fault::kStuckWorker;
  if (name == "counter-drift") return SoakOptions::Fault::kCounterDrift;
  return std::nullopt;
}

SoakReport run_soak(const SoakOptions& opts) {
  ESW_CHECK_MSG(opts.target_packets > 0 || opts.max_seconds > 0,
                "soak needs a packet or time bound");
  ESW_CHECK(opts.workers >= 1);

  const uc::UseCase uc = uc::make_l3(opts.n_prefixes, opts.seed);

  Runtime::Config rcfg;
  rcfg.measure_latency = true;  // the percentile block is part of the report
  rcfg.n_workers = opts.workers;
  rcfg.n_ports = std::max<uint32_t>(opts.workers, 8);  // L3 outputs to 1-8
  rcfg.pool_capacity = 4096 * opts.workers;
  // Chaos always runs the stateful layer (the ct.insert slot needs a site),
  // undersized so eviction pressure is the steady state, not a corner case.
  const uint32_t ct_capacity =
      opts.ct_capacity > 0
          ? opts.ct_capacity
          : (opts.chaos ? static_cast<uint32_t>(opts.n_flows / 2) : 0);
  core::CompilerConfig ccfg;
  if (ct_capacity > 0) {
    ccfg.ct.enabled = true;
    ccfg.ct.capacity = ct_capacity;
    ccfg.ct.auto_commit = true;
    ccfg.ct.midstream_pickup = true;
  }
  Runtime rt(rcfg, ccfg);
  rt.backend().install(uc.pipeline);
  if (opts.chaos) seed_hash_table(rt.backend());

  // Traffic: either the capture's frames (shared arena, per-worker cursors)
  // or per-worker generated shards — the Fig. 19 source-hook shape either way.
  struct alignas(64) Cursor {
    size_t v = 0;
  };
  std::vector<Cursor> cursors(opts.workers);
  std::vector<net::TrafficSet> shards;
  net::TrafficSet trace_ts;
  if (!opts.trace_pcap.empty()) {
    const net::PcapReader r = net::PcapReader::from_file(opts.trace_pcap);
    ESW_CHECK_MSG(r.ok(), "soak: unreadable trace pcap");
    trace_ts = net::TraceSource(r, {}).to_traffic_set();
  } else {
    const size_t shard =
        std::max<size_t>(1, opts.n_flows / static_cast<size_t>(opts.workers));
    shards.reserve(opts.workers);
    for (uint32_t w = 0; w < opts.workers; ++w)
      shards.push_back(net::TrafficSet::from_flows(uc.traffic(shard, opts.seed + w)));
  }
  const bool trace = !opts.trace_pcap.empty();
  rt.set_source([&](uint32_t w, net::Packet** bufs, uint32_t n) {
    size_t& cur = cursors[w].v;
    const net::TrafficSet& ts = trace ? trace_ts : shards[w];
    for (uint32_t i = 0; i < n; ++i) {
      ts.load_next(cur, *bufs[i]);
      bufs[i]->set_in_port(1 + w);
    }
    return n;
  });

  // Fault plants (see SoakOptions::Fault).  The phantom worker registers
  // before start and never ticks, so no grace period can ever end.
  core::Eswitch::Worker* phantom = nullptr;
  if (opts.fault == SoakOptions::Fault::kStuckWorker)
    phantom = rt.backend().register_worker();

  rt.start();
  net::Packet* leaked = nullptr;
  if (opts.fault == SoakOptions::Fault::kLeakBuffer) leaked = rt.pool().alloc();

  // Control loop: paced churn + periodic checkpoints until a bound hits.
  const auto t0 = Clock::now();
  const auto cp_interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(opts.checkpoint_every_ms));
  auto next_cp = t0 + cp_interval;
  SoakReport rep;
  uint64_t mods = 0;
  uint64_t max_pending = 0;
  bool drift_planted = false;
  // Chaos rotation state: one schedule slot armed at a time, counter deltas
  // bracketing each window.
  auto& fpr = common::FailpointRegistry::instance();
  const auto chaos_interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(opts.chaos_period_ms));
  size_t chaos_idx = 0;
  ChaosWindowBase chaos_base;
  auto chaos_window_end = t0 + chaos_interval;
  std::vector<net::Packet*> chaos_leaked;
  uint64_t leak_pending = 0;
  if (opts.chaos) {
    ESW_CHECK(opts.chaos_period_ms > 0);
    fpr.arm(kChaosSchedule[0].name, kChaosSchedule[0].spec);
    chaos_base = chaos_snapshot(rt, kChaosSchedule[0].name);
  }
  for (;;) {
    const auto now = Clock::now();
    const double elapsed = std::chrono::duration<double>(now - t0).count();
    const uint64_t processed = rt.counters().processed;
    // Plant the drift at mid-run, before the stop checks — the workers can
    // blow through half and full budget within one control-loop pass on a
    // seconds-scale ctest run, and the fault must land before the run ends.
    if (opts.fault == SoakOptions::Fault::kCounterDrift && !drift_planted &&
        ((opts.target_packets > 0 && processed >= opts.target_packets / 2) ||
         (opts.max_seconds > 0 && elapsed >= opts.max_seconds / 2))) {
      rt.backend().datapath().clear_stats();
      drift_planted = true;
    }
    if (opts.target_packets > 0 && processed >= opts.target_packets) break;
    if (opts.max_seconds > 0 && elapsed >= opts.max_seconds) break;
    if (now >= next_cp) {
      ++rep.checkpoints;
      max_pending = std::max(max_pending, rt.backend().reclaim_stats().pending);
      rt.watchdog_scan();  // liveness sweep; recovers parked workers' epochs
      next_cp += cp_interval;
    }
    if (opts.chaos) {
      // Deliberately UNhandled fault: steals a pool buffer when armed.  No
      // degradation counter absorbs it, so the buffer-pool check must trip —
      // the planted-fault test proves the chaos soak can actually fail.
      if (ESW_FAILPOINT("soak.leak_buffer")) ++leak_pending;
      while (leak_pending > 0) {
        // The steal itself rides through the pool's (possibly armed) alloc
        // path; keep trying on later passes until a buffer actually leaks.
        net::Packet* p = rt.pool().alloc();
        if (p == nullptr) break;
        chaos_leaked.push_back(p);
        --leak_pending;
      }
      chaos_base.pending_seen =
          std::max(chaos_base.pending_seen, rt.backend().reclaim_stats().pending);
      if (now >= chaos_window_end) {
        const ChaosSlot& slot = kChaosSchedule[chaos_idx % kChaosSlots];
        fpr.disarm(slot.name);
        rep.checks.push_back(
            close_chaos_window(rt, slot, chaos_base, rep.chaos_windows));
        ++rep.chaos_windows;
        ++chaos_idx;
        const ChaosSlot& nxt = kChaosSchedule[chaos_idx % kChaosSlots];
        fpr.arm(nxt.name, nxt.spec);
        chaos_base = chaos_snapshot(rt, nxt.name);
        chaos_window_end += chaos_interval;
        // A stalled control-loop pass must not burn phantom windows.
        while (chaos_window_end <= now) chaos_window_end += chaos_interval;
      }
    }
    if (opts.churn_rate > 0) {
      churn_chunk(rt.backend(), &mods, 16);
      if (opts.chaos) chaos_churn_chunk(rt.backend(), &mods, 4);
      // Pace to the target mods/s (a controller session, not a control-thread
      // spin that starves the workers), but wake for the next checkpoint.
      const auto paced = t0 + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(
                                      static_cast<double>(mods) / opts.churn_rate));
      std::this_thread::sleep_until(std::min(paced, next_cp));
    } else {
      std::this_thread::sleep_until(
          std::min(next_cp, now + std::chrono::milliseconds(1)));
    }
  }
  if (opts.chaos) {
    // Close the window the run ended inside, then run the final audits with
    // everything disarmed — the faults stop, the drains must still balance.
    const ChaosSlot& slot = kChaosSchedule[chaos_idx % kChaosSlots];
    chaos_base.pending_seen =
        std::max(chaos_base.pending_seen, rt.backend().reclaim_stats().pending);
    fpr.disarm(slot.name);
    rep.checks.push_back(close_chaos_window(rt, slot, chaos_base, rep.chaos_windows));
    ++rep.chaos_windows;
    fpr.disarm_all();
  }
  rep.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  rt.stop();

  // Drain what the stopped workers left queued: un-polled RX and un-sunk TX.
  // Every drained buffer goes back to the pool — anything still missing
  // afterwards was leaked.
  uint64_t leftover_rx = 0, leftover_rx_bytes = 0;
  for (uint32_t no = net::PortSet::kFirstPort;
       no < net::PortSet::kFirstPort + rt.ports().size(); ++no) {
    net::Packet* out[net::kBurstSize];
    uint32_t n;
    while ((n = rt.ports().port(no).rx_burst(out, net::kBurstSize)) > 0)
      for (uint32_t i = 0; i < n; ++i) {
        leftover_rx += 1;
        leftover_rx_bytes += out[i]->len();
        rt.pool().free(out[i]);
      }
    while ((n = rt.ports().port(no).drain_tx(out, net::kBurstSize)) > 0)
      for (uint32_t i = 0; i < n; ++i) rt.pool().free(out[i]);
  }

  const Runtime::Counters c = rt.counters();
  const core::DataplaneStats bs = rt.backend().stats();
  const net::PortCounters pc = rt.ports().totals();
  rt.backend().datapath().reclaim();  // post-run: everything must free now
  const auto rs = rt.backend().reclaim_stats();

  rep.packets = c.processed;
  rep.pps = rep.seconds > 0 ? static_cast<double>(c.processed) / rep.seconds : 0;
  rep.churn_mods = mods;
  rep.latency_ns = rt.latency_histogram().percentiles_ns();
  rep.chaos = opts.chaos;
  const core::Eswitch::DegradationStats& deg = rt.backend().degradation_stats();
  rep.degradation.pool_exhausted = c.pool_exhausted;
  rep.degradation.backpressure_events = c.backpressure_events;
  rep.degradation.alloc_failures = rt.pool().alloc_failures();
  rep.degradation.tx_rejected = c.tx_rejected;
  rep.degradation.jit_fallbacks = deg.jit_fallbacks;
  rep.degradation.jit_retries = deg.jit_retries;
  rep.degradation.jit_recoveries = deg.jit_recoveries;
  rep.degradation.fusion_fallbacks = deg.fusion_fallbacks;
  rep.degradation.fusion_retries = deg.fusion_retries;
  rep.degradation.fusion_recoveries = deg.fusion_recoveries;
  rep.degradation.template_fallbacks = deg.template_fallbacks;
  rep.degradation.mods_refused_table_full = deg.mods_refused_table_full;
  rep.degradation.watchdog_stalled = rt.watchdog_stalled_total();
  rep.degradation.watchdog_recovered = rt.watchdog_recovered_total();
  rep.degradation.ct_commit_drops = bs.ct_commit_drops;
  rep.degradation.ct_evictions_forced = bs.ct_evictions_forced;
  rep.degradation.ct_expired = bs.ct_expired;
  for (const auto& s : fpr.snapshot())
    rep.failpoints.push_back({s.name, s.hits, s.fires});

  const auto add = [&rep](const std::string& name, bool ok, std::string detail) {
    rep.checks.push_back({name, ok, std::move(detail)});
  };

  // Packet conservation: every accepted injection was processed or drained.
  add("packet-conservation",
      c.source_packets == c.processed + leftover_rx,
      "source=" + u64s(c.source_packets) + " processed=" + u64s(c.processed) +
          " leftover_rx=" + u64s(leftover_rx));

  // Verdict conservation: every processed packet took exactly one exit.
  // Flood duplicates frames, so the strict identity only holds flood-free
  // (the L3 soak pipeline never floods; a flood here is itself suspicious
  // but not a conservation violation).
  const uint64_t exits =
      c.tx_packets + c.tx_rejected + c.bad_port + c.drops + c.packet_ins;
  if (c.flood_copies == 0)
    add("verdict-conservation", c.processed == exits,
        "processed=" + u64s(c.processed) + " exits=" + u64s(exits) + " (tx=" +
            u64s(c.tx_packets) + " rej=" + u64s(c.tx_rejected) + " badport=" +
            u64s(c.bad_port) + " drop=" + u64s(c.drops) + " pin=" +
            u64s(c.packet_ins) + ")");
  else
    add("verdict-conservation", true,
        "skipped: flood_copies=" + u64s(c.flood_copies));

  // Byte conservation: only meaningful when no verdict consumed or copied a
  // frame (L3 rewrites headers in place, lengths unchanged).
  if (c.flood_copies == 0 && c.drops == 0 && c.tx_rejected == 0 &&
      c.bad_port == 0 && c.packet_ins == 0)
    add("byte-conservation",
        pc.rx_bytes == pc.tx_bytes + leftover_rx_bytes,
        "rx_bytes=" + u64s(pc.rx_bytes) + " tx_bytes=" + u64s(pc.tx_bytes) +
            " leftover=" + u64s(leftover_rx_bytes));
  else
    add("byte-conservation", true,
        "skipped: lossy verdict mix (drop=" + u64s(c.drops) + " rej=" +
            u64s(c.tx_rejected) + " badport=" + u64s(c.bad_port) + " pin=" +
            u64s(c.packet_ins) + " flood=" + u64s(c.flood_copies) + ")");

  // Buffer leak: with rings drained and worker caches flushed, the pool must
  // be whole again.  One missing buffer is one lost pointer.
  add("buffer-pool",
      rt.pool().available() == rt.pool().capacity(),
      "available=" + u64s(rt.pool().available()) + " capacity=" +
          u64s(rt.pool().capacity()));

  // Reclamation leak: after the run and a final reclaim() nothing may stay
  // pending — a grace period that never ends is a leak in motion.
  add("reclaim",
      rs.pending == 0,
      "retired=" + u64s(rs.retired) + " reclaimed=" + u64s(rs.reclaimed) +
          " pending=" + u64s(rs.pending) + " max_pending_seen=" +
          u64s(max_pending));

  // Verdict drift: the backend's own counters must agree with the runtime's
  // and be internally consistent — a torn counter path miscounts forever.
  add("counter-drift",
      bs.packets == c.processed &&
          bs.outputs + bs.drops + bs.to_controller == bs.packets,
      "backend packets=" + u64s(bs.packets) + " (outputs=" + u64s(bs.outputs) +
          " drops=" + u64s(bs.drops) + " pins=" + u64s(bs.to_controller) +
          ") runtime processed=" + u64s(c.processed));

  // Conntrack conservation: every connection the stateful layer ever
  // committed is still live, aged out, or was evicted for room — and after a
  // final flush nothing may stay on the retire lists.  A connection the
  // counters cannot place is state the table lost track of.
  if (state::Conntrack* ct = rt.backend().conntrack()) {
    ct->flush_reclaim();
    const state::Conntrack::Stats cs = ct->stats();
    add("ct-conservation",
        cs.commits == cs.live + cs.expired + cs.evictions_forced,
        "commits=" + u64s(cs.commits) + " live=" + u64s(cs.live) + " expired=" +
            u64s(cs.expired) + " evicted=" + u64s(cs.evictions_forced));
    add("ct-reclaim",
        cs.retire_pending == 0 &&
            cs.retired_total == cs.reclaimed_total,
        "retired=" + u64s(cs.retired_total) + " reclaimed=" +
            u64s(cs.reclaimed_total) + " pending=" + u64s(cs.retire_pending));
  }

  // Chaos coverage: the run must have cycled through the whole schedule at
  // least once, or the distinct-failpoints promise silently shrinks.
  if (opts.chaos)
    add("chaos-coverage", rep.chaos_windows >= kChaosSlots,
        "windows=" + u64s(rep.chaos_windows) + " schedule=" + u64s(kChaosSlots));

  if (!opts.floor_file.empty())
    rep.checks.push_back(check_latency_floor(opts.floor_file, rep.latency_ns));

  // Un-plant the faults so destructors run over clean state.
  if (leaked != nullptr) rt.pool().free(leaked);
  for (net::Packet* p : chaos_leaked) rt.pool().free(p);
  if (phantom != nullptr) {
    rt.backend().unregister_worker(phantom);
    rt.backend().datapath().reclaim();
  }
  return rep;
}

std::string SoakReport::to_json() const {
  Json doc = Json::object();
  doc.set("schema", Json::string(kSoakSchemaId));
  doc.set("packets", Json::number(static_cast<double>(packets)));
  doc.set("seconds", Json::number(seconds));
  doc.set("pps", Json::number(pps));
  doc.set("churn_mods", Json::number(static_cast<double>(churn_mods)));
  doc.set("checkpoints", Json::number(static_cast<double>(checkpoints)));
  Json lat = Json::object();
  lat.set("p50", Json::number(latency_ns.p50));
  lat.set("p90", Json::number(latency_ns.p90));
  lat.set("p99", Json::number(latency_ns.p99));
  lat.set("p999", Json::number(latency_ns.p999));
  lat.set("max", Json::number(latency_ns.max));
  lat.set("samples", Json::number(static_cast<double>(latency_ns.samples)));
  doc.set("latency_ns", std::move(lat));
  doc.set("chaos", Json::boolean(chaos));
  doc.set("chaos_windows", Json::number(static_cast<double>(chaos_windows)));
  Json deg = Json::object();
  deg.set("pool_exhausted", Json::number(static_cast<double>(degradation.pool_exhausted)));
  deg.set("backpressure_events",
          Json::number(static_cast<double>(degradation.backpressure_events)));
  deg.set("alloc_failures", Json::number(static_cast<double>(degradation.alloc_failures)));
  deg.set("tx_rejected", Json::number(static_cast<double>(degradation.tx_rejected)));
  deg.set("jit_fallbacks", Json::number(static_cast<double>(degradation.jit_fallbacks)));
  deg.set("jit_retries", Json::number(static_cast<double>(degradation.jit_retries)));
  deg.set("jit_recoveries", Json::number(static_cast<double>(degradation.jit_recoveries)));
  deg.set("fusion_fallbacks",
          Json::number(static_cast<double>(degradation.fusion_fallbacks)));
  deg.set("fusion_retries", Json::number(static_cast<double>(degradation.fusion_retries)));
  deg.set("fusion_recoveries",
          Json::number(static_cast<double>(degradation.fusion_recoveries)));
  deg.set("template_fallbacks",
          Json::number(static_cast<double>(degradation.template_fallbacks)));
  deg.set("mods_refused_table_full",
          Json::number(static_cast<double>(degradation.mods_refused_table_full)));
  deg.set("watchdog_stalled",
          Json::number(static_cast<double>(degradation.watchdog_stalled)));
  deg.set("watchdog_recovered",
          Json::number(static_cast<double>(degradation.watchdog_recovered)));
  deg.set("ct_commit_drops",
          Json::number(static_cast<double>(degradation.ct_commit_drops)));
  deg.set("ct_evictions_forced",
          Json::number(static_cast<double>(degradation.ct_evictions_forced)));
  deg.set("ct_expired", Json::number(static_cast<double>(degradation.ct_expired)));
  doc.set("degradation", std::move(deg));
  Json fps = Json::array();
  for (const FailpointStat& f : failpoints) {
    Json jf = Json::object();
    jf.set("name", Json::string(f.name));
    jf.set("hits", Json::number(static_cast<double>(f.hits)));
    jf.set("fires", Json::number(static_cast<double>(f.fires)));
    fps.push_back(std::move(jf));
  }
  doc.set("failpoints", std::move(fps));
  Json arr = Json::array();
  for (const SoakCheck& c : checks) {
    Json jc = Json::object();
    jc.set("name", Json::string(c.name));
    jc.set("ok", Json::boolean(c.ok));
    jc.set("detail", Json::string(c.detail));
    arr.push_back(std::move(jc));
  }
  doc.set("checks", std::move(arr));
  doc.set("ok", Json::boolean(ok()));
  return doc.dump();
}

}  // namespace esw::perf
