#include "perf/cachesim.hpp"

#include "common/check.hpp"

namespace esw::perf {

CacheSim::Level CacheSim::make_level(const CacheLevelConfig& c) const {
  Level lv;
  lv.ways = c.ways;
  lv.sets = c.size_bytes / cfg_.line_bytes / c.ways;
  ESW_CHECK(lv.sets > 0);
  lv.lines.assign(size_t{lv.sets} * lv.ways, ~uint64_t{0});
  lv.ts.assign(size_t{lv.sets} * lv.ways, 0);
  return lv;
}

CacheSim::CacheSim(const CacheHierarchyConfig& cfg) : cfg_(cfg) {
  l1_ = make_level(cfg.l1);
  l2_ = make_level(cfg.l2);
  l3_ = make_level(cfg.l3);
}

bool CacheSim::Level::touch(uint64_t line, uint64_t now) {
  const uint32_t set = static_cast<uint32_t>(line % sets);
  const size_t base = size_t{set} * ways;
  for (uint32_t k = 0; k < ways; ++k) {
    if (lines[base + k] == line) {
      ts[base + k] = now;
      return true;
    }
  }
  return false;
}

void CacheSim::Level::fill(uint64_t line, uint64_t now) {
  const uint32_t set = static_cast<uint32_t>(line % sets);
  const size_t base = size_t{set} * ways;
  uint32_t victim = 0;
  uint64_t oldest = ~uint64_t{0};
  for (uint32_t k = 0; k < ways; ++k) {
    if (lines[base + k] == ~uint64_t{0}) {
      victim = k;
      break;
    }
    if (ts[base + k] < oldest) {
      oldest = ts[base + k];
      victim = k;
    }
  }
  lines[base + victim] = line;
  ts[base + victim] = now;
}

uint32_t CacheSim::level_latency(int level) const {
  switch (level) {
    case 1:
      return cfg_.l1.latency_cycles;
    case 2:
      return cfg_.l2.latency_cycles;
    case 3:
      return cfg_.l3.latency_cycles;
    default:
      return cfg_.mem_latency_cycles;
  }
}

int CacheSim::access(uint64_t line) {
  ++now_;
  ++counters_.accesses;
  int level;
  if (l1_.touch(line, now_)) {
    ++counters_.l1_hits;
    level = 1;
  } else if (l2_.touch(line, now_)) {
    ++counters_.l2_hits;
    level = 2;
    l1_.fill(line, now_);
  } else if (l3_.touch(line, now_)) {
    ++counters_.l3_hits;
    level = 3;
    l1_.fill(line, now_);
    l2_.fill(line, now_);
  } else {
    ++counters_.mem_accesses;
    level = 4;
    l1_.fill(line, now_);
    l2_.fill(line, now_);
    l3_.fill(line, now_);
  }
  counters_.total_latency_cycles += level_latency(level);
  return level;
}

}  // namespace esw::perf
