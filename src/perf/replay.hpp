// Cache replay harness for Figs. 15–16: runs a packet-processing function
// with memory tracing enabled and classifies every touched line through the
// simulated cache hierarchy, yielding LLC misses/packet (the paper's `perf`
// measurement) and a latency estimate (fixed atoms + simulated access
// latencies).
#pragma once

#include <functional>

#include "common/memtrace.hpp"
#include "netio/pktgen.hpp"
#include "perf/cachesim.hpp"

namespace esw::perf {

struct ReplayStats {
  uint64_t packets = 0;
  double llc_misses_per_pkt = 0;
  double l1_hit_fraction = 0;
  double est_cycles_per_pkt = 0;  // fixed cost + simulated access latencies
};

/// Replays `packets` frames of `traffic` (round robin, after a warmup pass of
/// `warmup` frames) through `fn`, feeding traced accesses into a CacheSim.
/// `fixed_cycles_per_pkt` is the composed fixed cost of the pipeline's atoms.
ReplayStats run_cache_replay(const std::function<void(net::Packet&, MemTrace*)>& fn,
                             const net::TrafficSet& traffic, uint64_t packets,
                             uint64_t warmup, uint32_t fixed_cycles_per_pkt,
                             const CacheHierarchyConfig& cfg = {});

}  // namespace esw::perf
