// Stable machine-readable schema for the figure-reproduction benchmarks.
//
// Every `bench/bench_fig*` run is distilled into one `BENCH_<figure>.json`
// file ("esw-bench-v1" schema): figure id, git sha, and per-series points
// carrying pps and cycles/packet plus all raw google-benchmark counters.
// The perf trajectory across PRs diffs these files, so the schema must stay
// backward compatible — add fields, never rename or remove them.
//
// A minimal JSON value type (parser + writer) lives here too: the bench
// driver uses it to digest google-benchmark's --benchmark_format=json output,
// and tests use it to round-trip reports.  It covers the full JSON grammar
// (objects, arrays, strings with escapes, numbers, bools, null) but is tuned
// for trusted tool output, not adversarial input: nesting depth is capped and
// numbers are doubles.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace esw::perf {

// ---------------------------------------------------------------------------
// Generic JSON value
// ---------------------------------------------------------------------------

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  // Typed accessors; CHECK-fail on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;                    // array
  const std::map<std::string, Json>& members() const;        // object

  // Object/array builders.
  void push_back(Json v);                 // array
  void set(const std::string& key, Json v);  // object

  /// Object member by key, or nullptr.  Null for non-objects.
  const Json* find(const std::string& key) const;
  /// Convenience: member's number/string if present and of that kind.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key, const std::string& fallback) const;

  /// Parses a complete JSON document (trailing whitespace allowed, trailing
  /// garbage rejected).  nullopt on any syntax error.
  static std::optional<Json> parse(std::string_view text);

  /// Serializes with stable member order (std::map) and 2-space indent.
  std::string dump() const;

 private:
  void dump_to(std::string& out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

// ---------------------------------------------------------------------------
// Bench report schema ("esw-bench-v1")
// ---------------------------------------------------------------------------

inline constexpr char kBenchSchemaId[] = "esw-bench-v1";

/// One measured point of a series, e.g. L2 throughput at flows=1000.
struct BenchPoint {
  std::string label;        // run suffix, e.g. "size:1000/flows:100/es:1"
  double x = 0;             // primary sweep value (last numeric arg), 0 if none
  double pps = 0;           // packets/second counter (0 when not reported)
  double cycles_per_pkt = 0;  // cycles/packet counter (0 when not reported)
  std::map<std::string, double> counters;  // all raw benchmark counters
  /// Optional latency-percentile block (additive schema extension): when a
  /// bench captures latency it emits flat `latency_ns_p50`.. counters and the
  /// digest lifts them here as {"p50","p90","p99","p999","max"} (+"samples").
  /// Empty when the point carries no latency capture.
  std::map<std::string, double> latency_ns;
};

/// All points of one benchmark function, e.g. BM_Fig10_L2.
struct BenchSeries {
  std::string name;
  std::vector<BenchPoint> points;
};

/// One figure's worth of measurements -> one BENCH_<figure>.json file.
struct BenchReport {
  std::string figure;   // "fig10", "tab01", ...
  std::string title;    // human hint, e.g. "l2"
  std::string git_sha;  // commit the numbers were taken at ("unknown" if n/a)
  std::vector<BenchSeries> series;
};

/// Serializes a report into the esw-bench-v1 JSON document.
std::string report_to_json(const BenchReport& report);

/// Parses an esw-bench-v1 document; nullopt on syntax/schema mismatch.
std::optional<BenchReport> report_from_json(std::string_view text);

/// Converts one google-benchmark --benchmark_format=json document into a
/// report: groups runs by benchmark function, extracts pps/cycles_per_pkt
/// and every numeric counter (lifting `latency_ns_*` counters into the
/// point's latency_ns block).  nullopt if `text` is not benchmark output.
std::optional<BenchReport> report_from_google_benchmark(std::string_view text,
                                                        const std::string& figure,
                                                        const std::string& title,
                                                        const std::string& git_sha);

/// Flat-counter prefix benches use for the latency block ("latency_ns_p50").
inline constexpr char kLatencyCounterPrefix[] = "latency_ns_";

/// Point-shape contracts beyond bare schema syntax, shared by `run_all
/// --check` and the unit tests.  Returns one message per violation (empty =
/// valid):
///   * any point with a latency_ns block (or flat latency_ns_* counters)
///     must carry the complete non-decreasing p50/p90/p99/p999/max quintet;
///   * fig19 points must carry `threads` and per-worker `pps_w<i>` summing
///     to the aggregate, and its churn:1 points must carry the latency
///     block (p99/p99.9 under update load is the point of that variant);
///   * fig10/fig11 points must carry the 0/1 `trace` input marker.
std::vector<std::string> validate_report(const BenchReport& report);

}  // namespace esw::perf
