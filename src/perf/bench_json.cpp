#include "perf/bench_json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"

namespace esw::perf {

// ---------------------------------------------------------------------------
// Json: constructors and accessors
// ---------------------------------------------------------------------------

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool() const {
  ESW_CHECK(kind_ == Kind::kBool);
  return bool_;
}

double Json::as_number() const {
  ESW_CHECK(kind_ == Kind::kNumber);
  return num_;
}

const std::string& Json::as_string() const {
  ESW_CHECK(kind_ == Kind::kString);
  return str_;
}

const std::vector<Json>& Json::items() const {
  ESW_CHECK(kind_ == Kind::kArray);
  return arr_;
}

const std::map<std::string, Json>& Json::members() const {
  ESW_CHECK(kind_ == Kind::kObject);
  return obj_;
}

void Json::push_back(Json v) {
  ESW_CHECK(kind_ == Kind::kArray);
  arr_.push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
  ESW_CHECK(kind_ == Kind::kObject);
  obj_[key] = std::move(v);
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* j = find(key);
  return (j != nullptr && j->kind_ == Kind::kNumber) ? j->num_ : fallback;
}

std::string Json::string_or(const std::string& key, const std::string& fallback) const {
  const Json* j = find(key);
  return (j != nullptr && j->kind_ == Kind::kString) ? j->str_ : fallback;
}

// ---------------------------------------------------------------------------
// Json: recursive-descent parser
// ---------------------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  size_t pos = 0;
  bool failed = false;

  void fail() { failed = true; }
  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (at_end() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool consume_lit(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  static void append_utf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  uint32_t parse_hex4() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) {
        fail();
        return 0;
      }
      const char c = text[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<uint32_t>(c - 'A' + 10);
      else
        fail();
    }
    return v;
  }

  std::string parse_string_body() {
    std::string out;
    while (true) {
      if (at_end()) {
        fail();
        return out;
      }
      char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (at_end()) {
          fail();
          return out;
        }
        const char esc = text[pos++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            uint32_t cp = parse_hex4();
            if (cp >= 0xD800 && cp <= 0xDBFF && consume_lit("\\u")) {
              const uint32_t lo = parse_hex4();
              if (lo >= 0xDC00 && lo <= 0xDFFF)
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              else
                fail();
            }
            append_utf8(out, cp);
            break;
          }
          default: fail(); return out;
        }
      } else {
        out.push_back(c);
      }
    }
  }

  Json parse_number() {
    const size_t start = pos;
    if (!at_end() && (peek() == '-' || peek() == '+')) ++pos;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' ||
                         peek() == '+' || peek() == '-'))
      ++pos;
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) fail();
    return Json::number(v);
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail();
      return Json();
    }
    skip_ws();
    if (at_end()) {
      fail();
      return Json();
    }
    const char c = peek();
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (consume('}')) return obj;
      while (!failed) {
        skip_ws();
        if (at_end() || peek() != '"') {
          fail();
          break;
        }
        ++pos;
        std::string key = parse_string_body();
        if (!consume(':')) {
          fail();
          break;
        }
        obj.set(key, parse_value(depth + 1));
        if (consume(',')) continue;
        if (!consume('}')) fail();
        break;
      }
      return obj;
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (consume(']')) return arr;
      while (!failed) {
        arr.push_back(parse_value(depth + 1));
        if (consume(',')) continue;
        if (!consume(']')) fail();
        break;
      }
      return arr;
    }
    if (c == '"') {
      ++pos;
      return Json::string(parse_string_body());
    }
    if (c == 't') {
      if (!consume_lit("true")) fail();
      return Json::boolean(true);
    }
    if (c == 'f') {
      if (!consume_lit("false")) fail();
      return Json::boolean(false);
    }
    if (c == 'n') {
      if (!consume_lit("null")) fail();
      return Json();
    }
    return parse_number();
  }
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out += "0";
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  }
}

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  Parser p{text};
  Json v = p.parse_value(0);
  p.skip_ws();
  if (p.failed || !p.at_end()) return std::nullopt;
  return v;
}

void Json::dump_to(std::string& out, int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, num_); break;
    case Kind::kString: append_escaped(out, str_); break;
    case Kind::kArray:
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (size_t i = 0; i < arr_.size(); ++i) {
        out += pad_in;
        arr_[i].dump_to(out, indent + 1);
        if (i + 1 < arr_.size()) out.push_back(',');
        out.push_back('\n');
      }
      out += pad + "]";
      break;
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      size_t i = 0;
      for (const auto& [key, val] : obj_) {
        out += pad_in;
        append_escaped(out, key);
        out += ": ";
        val.dump_to(out, indent + 1);
        if (++i < obj_.size()) out.push_back(',');
        out.push_back('\n');
      }
      out += pad + "}";
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  out.push_back('\n');
  return out;
}

// ---------------------------------------------------------------------------
// Bench report <-> JSON
// ---------------------------------------------------------------------------

std::string report_to_json(const BenchReport& report) {
  Json doc = Json::object();
  doc.set("schema", Json::string(kBenchSchemaId));
  doc.set("figure", Json::string(report.figure));
  doc.set("title", Json::string(report.title));
  doc.set("git_sha", Json::string(report.git_sha));
  Json series = Json::array();
  for (const BenchSeries& s : report.series) {
    Json js = Json::object();
    js.set("name", Json::string(s.name));
    Json points = Json::array();
    for (const BenchPoint& p : s.points) {
      Json jp = Json::object();
      jp.set("label", Json::string(p.label));
      jp.set("x", Json::number(p.x));
      jp.set("pps", Json::number(p.pps));
      jp.set("cycles_per_pkt", Json::number(p.cycles_per_pkt));
      Json counters = Json::object();
      for (const auto& [name, value] : p.counters)
        counters.set(name, Json::number(value));
      jp.set("counters", std::move(counters));
      if (!p.latency_ns.empty()) {
        Json lat = Json::object();
        for (const auto& [name, value] : p.latency_ns)
          lat.set(name, Json::number(value));
        jp.set("latency_ns", std::move(lat));
      }
      points.push_back(std::move(jp));
    }
    js.set("points", std::move(points));
    series.push_back(std::move(js));
  }
  doc.set("series", std::move(series));
  return doc.dump();
}

std::optional<BenchReport> report_from_json(std::string_view text) {
  const std::optional<Json> doc = Json::parse(text);
  if (!doc || doc->kind() != Json::Kind::kObject) return std::nullopt;
  if (doc->string_or("schema", "") != kBenchSchemaId) return std::nullopt;
  const Json* series = doc->find("series");
  if (series == nullptr || series->kind() != Json::Kind::kArray) return std::nullopt;

  BenchReport report;
  report.figure = doc->string_or("figure", "");
  report.title = doc->string_or("title", "");
  report.git_sha = doc->string_or("git_sha", "unknown");
  for (const Json& js : series->items()) {
    if (js.kind() != Json::Kind::kObject) return std::nullopt;
    BenchSeries s;
    s.name = js.string_or("name", "");
    const Json* points = js.find("points");
    if (points == nullptr || points->kind() != Json::Kind::kArray) return std::nullopt;
    for (const Json& jp : points->items()) {
      if (jp.kind() != Json::Kind::kObject) return std::nullopt;
      BenchPoint p;
      p.label = jp.string_or("label", "");
      p.x = jp.number_or("x", 0);
      p.pps = jp.number_or("pps", 0);
      p.cycles_per_pkt = jp.number_or("cycles_per_pkt", 0);
      if (const Json* counters = jp.find("counters");
          counters != nullptr && counters->kind() == Json::Kind::kObject) {
        for (const auto& [name, value] : counters->members())
          if (value.kind() == Json::Kind::kNumber) p.counters[name] = value.as_number();
      }
      if (const Json* lat = jp.find("latency_ns");
          lat != nullptr && lat->kind() == Json::Kind::kObject) {
        for (const auto& [name, value] : lat->members())
          if (value.kind() == Json::Kind::kNumber) p.latency_ns[name] = value.as_number();
      }
      s.points.push_back(std::move(p));
    }
    report.series.push_back(std::move(s));
  }
  return report;
}

namespace {

/// google-benchmark run-name components that are execution modifiers, not
/// sweep arguments.
bool is_run_modifier(const std::string& key) {
  return key == "iterations" || key == "repeats" || key == "threads" ||
         key == "manual_time" || key == "real_time" || key == "process_time" ||
         key == "min_time" || key == "min_warmup_time";
}

/// Last numeric sweep component of a run suffix like "size:1000/flows:100" or
/// "2" — the natural x axis.  Modifier components (iterations:1, threads:4)
/// are skipped.  0 when nothing parses.
double sweep_value(const std::string& label) {
  double x = 0;
  size_t start = 0;
  while (start <= label.size()) {
    size_t end = label.find('/', start);
    if (end == std::string::npos) end = label.size();
    std::string part = label.substr(start, end - start);
    start = end + 1;
    if (const size_t colon = part.rfind(':'); colon != std::string::npos) {
      if (is_run_modifier(part.substr(0, colon))) continue;
      part = part.substr(colon + 1);
    }
    char* endp = nullptr;
    const double v = std::strtod(part.c_str(), &endp);
    if (endp == part.c_str() + part.size() && !part.empty()) x = v;
  }
  return x;
}

}  // namespace

std::optional<BenchReport> report_from_google_benchmark(std::string_view text,
                                                        const std::string& figure,
                                                        const std::string& title,
                                                        const std::string& git_sha) {
  const std::optional<Json> doc = Json::parse(text);
  if (!doc || doc->kind() != Json::Kind::kObject) return std::nullopt;
  const Json* benchmarks = doc->find("benchmarks");
  if (benchmarks == nullptr || benchmarks->kind() != Json::Kind::kArray)
    return std::nullopt;

  BenchReport report;
  report.figure = figure;
  report.title = title;
  report.git_sha = git_sha;
  for (const Json& run : benchmarks->items()) {
    if (run.kind() != Json::Kind::kObject) continue;
    // Skip aggregate rows (mean/median/stddev) — raw iterations only.
    if (!run.string_or("aggregate_name", "").empty()) continue;
    const std::string name = run.string_or("name", "");
    if (name.empty()) continue;

    const size_t slash = name.find('/');
    const std::string series_name = name.substr(0, slash);
    BenchPoint p;
    p.label = slash == std::string::npos ? "" : name.substr(slash + 1);
    p.x = sweep_value(p.label);

    // google-benchmark flattens user counters into the run object next to
    // its own fields; collect every numeric member as a counter.  Latency
    // counters additionally lift into the structured latency_ns block
    // ("latency_ns_p50" -> latency_ns["p50"]) — google-benchmark can only
    // carry flat doubles, the stable schema carries the block.
    for (const auto& [key, value] : run.members()) {
      if (value.kind() != Json::Kind::kNumber) continue;
      p.counters[key] = value.as_number();
      if (key.rfind(kLatencyCounterPrefix, 0) == 0)
        p.latency_ns[key.substr(sizeof(kLatencyCounterPrefix) - 1)] =
            value.as_number();
    }
    p.pps = run.number_or("pps", 0);
    p.cycles_per_pkt = run.number_or("cycles_per_pkt", 0);

    BenchSeries* series = nullptr;
    for (BenchSeries& s : report.series)
      if (s.name == series_name) series = &s;
    if (series == nullptr) {
      report.series.push_back(BenchSeries{series_name, {}});
      series = &report.series.back();
    }
    series->points.push_back(std::move(p));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Point-shape validation (the `run_all --check` contracts)
// ---------------------------------------------------------------------------

namespace {

std::string point_id(const BenchReport& r, const BenchSeries& s, const BenchPoint& p) {
  return r.figure + " " + s.name + "/" + p.label;
}

/// The latency_ns block, when present, must be the complete quintet with
/// non-decreasing, non-negative percentiles — a partial or disordered block
/// means the bench or the digester dropped/mangled a counter.
void check_latency_block(const BenchReport& r, const BenchSeries& s,
                         const BenchPoint& p, std::vector<std::string>* errors) {
  bool has_flat = false;
  for (const auto& [key, value] : p.counters) {
    (void)value;
    if (key.rfind(kLatencyCounterPrefix, 0) == 0) has_flat = true;
  }
  if (p.latency_ns.empty()) {
    if (has_flat)
      errors->push_back(point_id(r, s, p) +
                        ": latency_ns_* counters present but latency_ns block missing");
    return;
  }
  static constexpr const char* kKeys[] = {"p50", "p90", "p99", "p999", "max"};
  double prev = -1;
  for (const char* key : kKeys) {
    const auto it = p.latency_ns.find(key);
    if (it == p.latency_ns.end()) {
      errors->push_back(point_id(r, s, p) + ": latency_ns block missing \"" +
                        key + "\"");
      return;
    }
    if (it->second < 0) {
      errors->push_back(point_id(r, s, p) + ": latency_ns." + key + " negative");
      return;
    }
    if (it->second < prev) {
      errors->push_back(point_id(r, s, p) + ": latency_ns." + key +
                        " below a lower percentile (non-monotone block)");
      return;
    }
    prev = it->second;
  }
}

/// fig19 point-shape contract: every point carries `threads`, one
/// `pps_w<i>` per worker, and the per-worker rates sum to the aggregate
/// `pps` (the true-thread measurement is per-worker and summed, so a
/// mismatch means the bench or the distiller dropped a counter).  Churn
/// points must additionally carry the latency block — p99/p99.9 under
/// sustained update load is what that variant exists to measure.
void check_fig19_point(const BenchReport& r, const BenchSeries& s,
                       const BenchPoint& p, std::vector<std::string>* errors) {
  const auto threads_it = p.counters.find("threads");
  if (threads_it == p.counters.end() || threads_it->second < 1) {
    errors->push_back(point_id(r, s, p) + ": missing threads counter");
    return;
  }
  const int threads = static_cast<int>(threads_it->second);
  double sum = 0;
  for (int w = 0; w < threads; ++w) {
    const auto it = p.counters.find("pps_w" + std::to_string(w));
    if (it == p.counters.end()) {
      errors->push_back(point_id(r, s, p) + ": missing pps_w" + std::to_string(w));
      return;
    }
    sum += it->second;
  }
  if (p.pps > 0 && (sum < p.pps * 0.98 || sum > p.pps * 1.02))
    errors->push_back(point_id(r, s, p) + ": per-worker pps sum " +
                      std::to_string(sum) + " != aggregate " + std::to_string(p.pps));
  if (p.label.find("churn:1") != std::string::npos && p.latency_ns.empty())
    errors->push_back(point_id(r, s, p) +
                      ": churn point carries no latency_ns percentile block");
}

/// Trace-capable figures' point-shape contract: every throughput point must
/// carry the `trace` counter (1 = replayed from a pcap via --trace, 0 =
/// generated traffic), so a results directory is self-describing about what
/// fed each measurement — the esw-bench-v1 schema stays stable either way.
void check_trace_point(const BenchReport& r, const BenchSeries& s,
                       const BenchPoint& p, std::vector<std::string>* errors) {
  const auto it = p.counters.find("trace");
  if (it == p.counters.end())
    errors->push_back(point_id(r, s, p) + ": missing trace counter");
  else if (it->second != 0 && it->second != 1)
    errors->push_back(point_id(r, s, p) + ": trace counter must be 0 or 1");
}

/// Chaos point-shape contract: a point measured with failpoints armed
/// (counter chaos == 1) must carry the full degradation-counter quartet, so
/// a chaos leg's results always say where the injected faults went — a
/// chaos point without the block is indistinguishable from a clean run.
void check_chaos_point(const BenchReport& r, const BenchSeries& s,
                       const BenchPoint& p, std::vector<std::string>* errors) {
  const auto it = p.counters.find("chaos");
  if (it == p.counters.end() || it->second != 1) return;
  static const char* kRequired[] = {"pool_exhausted", "jit_fallbacks",
                                    "mods_refused_table_full",
                                    "backpressure_events"};
  for (const char* key : kRequired)
    if (p.counters.find(key) == p.counters.end())
      errors->push_back(point_id(r, s, p) + ": chaos point missing " +
                        std::string(key) + " counter");
}

/// Conntrack ("ct") point-shape contract: every point carries the full
/// conntrack counter block, and the counters satisfy the conservation
/// identity `commits == live + expired + evicted` — degradation under attack
/// must be accounted, so a point whose table churn doesn't add up means the
/// stateful layer lost track of a connection.
void check_ct_point(const BenchReport& r, const BenchSeries& s,
                    const BenchPoint& p, std::vector<std::string>* errors) {
  static const char* kRequired[] = {"ct_entries", "ct_commits",
                                    "ct_commit_drops", "ct_evictions_forced",
                                    "ct_expired"};
  for (const char* key : kRequired) {
    if (p.counters.find(key) == p.counters.end()) {
      errors->push_back(point_id(r, s, p) + ": ct point missing " +
                        std::string(key) + " counter");
      return;
    }
  }
  const double commits = p.counters.at("ct_commits");
  const double accounted = p.counters.at("ct_entries") +
                           p.counters.at("ct_expired") +
                           p.counters.at("ct_evictions_forced");
  if (commits != accounted)
    errors->push_back(point_id(r, s, p) + ": ct conservation violated (" +
                      std::to_string(commits) + " commits != " +
                      std::to_string(accounted) + " live+expired+evicted)");
  if (p.pps <= 0)
    errors->push_back(point_id(r, s, p) + ": ct point has no throughput");
}

/// Fusion ("fusion") point-shape contract: every point is tagged with a
/// boolean `fused` counter (1 = the backend actually published a fused
/// whole-pipeline plan for the measurement, 0 = staged walk or interpreter)
/// and carries throughput — the fused/staged speedup gate in CI divides two
/// points and must be able to trust which leg is which.
void check_fusion_point(const BenchReport& r, const BenchSeries& s,
                        const BenchPoint& p, std::vector<std::string>* errors) {
  const auto it = p.counters.find("fused");
  if (it == p.counters.end())
    errors->push_back(point_id(r, s, p) + ": missing fused counter");
  else if (it->second != 0 && it->second != 1)
    errors->push_back(point_id(r, s, p) + ": fused counter must be 0 or 1");
  if (p.pps <= 0)
    errors->push_back(point_id(r, s, p) + ": fusion point has no throughput");
}

/// Million-flow scale ("scale") point-shape contract: every point carries
/// the full build/probe block — `entries`, `build_seconds`, `lookups_per_s`,
/// `lines_per_lookup`, `memory_bytes`, `grows` — with a positive entry count
/// and probe rate, and reports zero `lookup_misses` (every probe key was
/// inserted, so a miss means the table lost an entry while growing).  The
/// CI gate compares lines_per_lookup and lookups_per_s across the 100K/1M
/// points; a point missing either (or one that silently dropped probes to
/// misses) would make those ratios lie.
void check_scale_point(const BenchReport& r, const BenchSeries& s,
                       const BenchPoint& p, std::vector<std::string>* errors) {
  static const char* kRequired[] = {"entries",          "build_seconds",
                                    "lookups_per_s",    "lines_per_lookup",
                                    "memory_bytes",     "grows"};
  for (const char* key : kRequired) {
    if (p.counters.find(key) == p.counters.end()) {
      errors->push_back(point_id(r, s, p) + ": scale point missing " +
                        std::string(key) + " counter");
      return;
    }
  }
  if (p.counters.at("entries") <= 0)
    errors->push_back(point_id(r, s, p) + ": scale point has no entries");
  if (p.counters.at("lookups_per_s") <= 0)
    errors->push_back(point_id(r, s, p) + ": scale point has no probe rate");
  const auto miss = p.counters.find("lookup_misses");
  if (miss != p.counters.end() && miss->second != 0)
    errors->push_back(point_id(r, s, p) + ": scale point lost entries (" +
                      std::to_string(miss->second) + " probe misses)");
}

/// Batched flow-mod churn ("churn") point-shape contract: the fig19 worker
/// discipline (a `threads` counter and one `pps_w<i>` per worker summing to
/// the aggregate) plus the churn pair — `churn_target` and achieved
/// `churn_mods_per_s`, the latter positive whenever the target is — and the
/// latency percentile block on every point, since tail-under-batched-update
/// load is the figure's claim.  The CI gate divides the 100k-target point's
/// pps by the 0-target baseline's.
void check_churn_point(const BenchReport& r, const BenchSeries& s,
                       const BenchPoint& p, std::vector<std::string>* errors) {
  const auto threads_it = p.counters.find("threads");
  if (threads_it == p.counters.end() || threads_it->second < 1) {
    errors->push_back(point_id(r, s, p) + ": missing threads counter");
    return;
  }
  const int threads = static_cast<int>(threads_it->second);
  double sum = 0;
  for (int w = 0; w < threads; ++w) {
    const auto it = p.counters.find("pps_w" + std::to_string(w));
    if (it == p.counters.end()) {
      errors->push_back(point_id(r, s, p) + ": missing pps_w" + std::to_string(w));
      return;
    }
    sum += it->second;
  }
  if (p.pps > 0 && (sum < p.pps * 0.98 || sum > p.pps * 1.02))
    errors->push_back(point_id(r, s, p) + ": per-worker pps sum " +
                      std::to_string(sum) + " != aggregate " + std::to_string(p.pps));
  const auto target_it = p.counters.find("churn_target");
  const auto rate_it = p.counters.find("churn_mods_per_s");
  if (target_it == p.counters.end() || rate_it == p.counters.end()) {
    errors->push_back(point_id(r, s, p) +
                      ": churn point missing churn_target/churn_mods_per_s");
    return;
  }
  if (target_it->second > 0 && rate_it->second <= 0)
    errors->push_back(point_id(r, s, p) +
                      ": churn target set but no mods were applied");
  if (p.latency_ns.empty())
    errors->push_back(point_id(r, s, p) +
                      ": churn point carries no latency_ns percentile block");
}

}  // namespace

std::vector<std::string> validate_report(const BenchReport& report) {
  std::vector<std::string> errors;
  for (const BenchSeries& s : report.series) {
    for (const BenchPoint& p : s.points) {
      check_latency_block(report, s, p, &errors);
      check_chaos_point(report, s, p, &errors);
      if (report.figure == "fig19") check_fig19_point(report, s, p, &errors);
      if (report.figure == "fig10" || report.figure == "fig11")
        check_trace_point(report, s, p, &errors);
      if (report.figure == "ct") check_ct_point(report, s, p, &errors);
      if (report.figure == "fusion") check_fusion_point(report, s, p, &errors);
      if (report.figure == "scale") check_scale_point(report, s, p, &errors);
      if (report.figure == "churn") check_churn_point(report, s, p, &errors);
    }
  }
  return errors;
}

}  // namespace esw::perf
