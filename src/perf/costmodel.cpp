#include "perf/costmodel.hpp"

namespace esw::perf {

void CostModel::add_pkt_io() {
  stages_.push_back({"PKT_IN", atoms_.pkt_in, 0});
  stages_.push_back({"PKT_OUT", atoms_.pkt_out, 0});
}

void CostModel::add_parser() { stages_.push_back({"parser template", atoms_.parser, 0}); }

void CostModel::add_hash_stage(const std::string& name) {
  stages_.push_back({name, atoms_.hash_fix, 1});
}

void CostModel::add_lpm_stage(const std::string& name) {
  stages_.push_back({name, atoms_.lpm_fix, 2});
}

void CostModel::add_direct_stage(const std::string& name, uint32_t entries) {
  // Keys are folded into the instruction stream: cost is the compare chain,
  // no data-cache accesses charged.
  stages_.push_back({name, atoms_.direct_per_entry * entries, 0});
}

void CostModel::add_range_stage(const std::string& name, uint32_t search_steps) {
  stages_.push_back({name, atoms_.hash_fix, search_steps});
}

void CostModel::add_linked_list_stage(const std::string& name, uint32_t tuples) {
  stages_.push_back({name, atoms_.hash_fix * tuples, tuples});
}

void CostModel::add_action_stage() {
  stages_.push_back({"action templates", atoms_.action, 0});
}

uint32_t CostModel::fixed_cycles() const {
  uint32_t c = 0;
  for (const StageCost& s : stages_) c += s.fixed_cycles;
  return c;
}

uint32_t CostModel::variable_accesses() const {
  uint32_t n = 0;
  for (const StageCost& s : stages_) n += s.variable_accesses;
  return n;
}

uint32_t CostModel::cycles(uint32_t lx_cycles) const {
  return fixed_cycles() + variable_accesses() * lx_cycles;
}

double CostModel::pps(double ghz, uint32_t lx_cycles) const {
  return ghz * 1e9 / static_cast<double>(cycles(lx_cycles));
}

CostModel CostModel::gateway_model() {
  // Fig. 20, user→network direction.  Table 0 is pinned at L1 in the paper's
  // accounting (166 + 3·Lx total with L1 = 4); we charge its access as fixed.
  CostModel m;
  m.stages_.push_back({"PKT_IN", m.atoms_.pkt_in, 0});
  m.add_parser();
  m.stages_.push_back(
      {"hash template 1 (Table 0)", m.atoms_.hash_fix + 4 /*L1*/, 0});
  m.add_hash_stage("hash template 2 (per-CE)");
  m.add_lpm_stage("LPM template (routing)");
  m.add_action_stage();
  m.stages_.push_back({"PKT_OUT", m.atoms_.pkt_out, 0});
  return m;
}

}  // namespace esw::perf
