// Long-haul soak harness: the multicore runtime (core::SwitchRuntime over an
// Eswitch) replayed for N packets / T seconds under continuous control-plane
// churn, with conservation and drift checks that only sustained operation can
// violate.
//
// A throughput bench answers "how fast"; the soak answers "does it stay
// correct and leak-free while fast".  After the run every invariant the
// architecture promises is audited:
//   * packet conservation  — every injected packet is processed or still
//     queued, and every processed packet got exactly one verdict;
//   * byte conservation    — RX bytes = TX bytes + queued bytes (when no
//     verdict consumed or copied frames);
//   * buffer leaks         — the mbuf pool refills to capacity once the
//     rings are drained (a lost buffer is a lost pointer);
//   * reclamation leaks    — the epoch domain's pending count returns to
//     zero after the run (a stuck grace period is a memory leak in motion);
//   * verdict drift        — the backend's own packet/verdict counters agree
//     with the runtime's (a torn counter path miscounts forever);
//   * latency floors       — measured percentiles stay under a per-centile
//     ceiling file (tail regressions fail the nightly, not a human reader).
//
// Faults can be planted (SoakOptions::fault) so the harness's own tests can
// prove each check actually fires — a soak that cannot fail is a no-op.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "perf/latency.hpp"

namespace esw::perf {

inline constexpr char kSoakSchemaId[] = "esw-soak-v1";

struct SoakOptions {
  /// Stop once this many packets were processed (0 = unbounded; then
  /// max_seconds must be set).  Nightly runs 100M+; ctest runs ~100k.
  uint64_t target_packets = 100'000'000;
  double max_seconds = 0;       // wall-clock bound, 0 = none
  uint32_t workers = 2;
  size_t n_prefixes = 2000;     // L3 use case FIB size (the Fig. 19 pipeline)
  size_t n_flows = 10000;       // active flows replayed round-robin
  /// Control-plane churn: paced LPM route add/delete pairs per second in
  /// 230.0.0.0/8 (collision-free with the use case's own prefixes), riding
  /// the in-place update path + epoch reclamation.  0 = no churn.
  double churn_rate = 1000;
  double checkpoint_every_ms = 100;  // drift-audit cadence
  std::string trace_pcap;       // non-empty: replay this capture's frames
  std::string floor_file;       // non-empty: JSON percentile ceilings (ns)
  uint64_t seed = 42;

  /// Planted faults, one per check family, so tests can prove the checks
  /// fire: kLeakBuffer steals a pool buffer; kStuckWorker registers a
  /// backend worker that never ticks (grace period never ends, reclamation
  /// pends forever); kCounterDrift zeroes the backend's stats mid-run.
  enum class Fault { kNone, kLeakBuffer, kStuckWorker, kCounterDrift };
  Fault fault = Fault::kNone;

  /// Chaos mode: rotate through a fixed failpoint schedule (one point armed
  /// per window of chaos_period_ms), with per-window accounting that every
  /// injected fault landed in the degradation counter its policy names —
  /// while all the standard conservation/leak/drift checks stay on.  The
  /// chaos churn additionally exercises tbl8-extending /30 routes, a hash
  /// side table and a tiny direct-code table (re-JIT per mod).
  bool chaos = false;
  double chaos_period_ms = 200;

  /// Stateful layer: a conntrack (auto-commit, midstream pickup) attached to
  /// the datapath, sized to this many entries.  Sizing it below n_flows makes
  /// sustained accounted eviction the steady state — the degradation policy
  /// under permanent table pressure, audited by the ct-conservation check.
  /// 0 = no conntrack; chaos mode defaults it to n_flows / 2 so the
  /// ct.insert schedule slot always has a live site to hit.
  uint32_t ct_capacity = 0;
};

/// Maps a CLI/env fault name ("leak-buffer", "stuck-worker", "counter-drift",
/// "none") to the enum; nullopt for anything else.
std::optional<SoakOptions::Fault> soak_fault_from_name(std::string_view name);

struct SoakCheck {
  std::string name;
  bool ok = false;
  std::string detail;  // expected-vs-actual, or why the check was skipped
};

/// Where every absorbed fault went: the graceful-degradation counters the
/// chaos accounting audits, snapshotted at the end of the run.
struct DegradationSummary {
  uint64_t pool_exhausted = 0;
  uint64_t backpressure_events = 0;
  uint64_t alloc_failures = 0;
  uint64_t tx_rejected = 0;
  uint64_t jit_fallbacks = 0;
  uint64_t jit_retries = 0;
  uint64_t jit_recoveries = 0;
  uint64_t fusion_fallbacks = 0;   // fused whole-pipeline compiles degraded
  uint64_t fusion_retries = 0;     // elapsed re-fusion retry windows
  uint64_t fusion_recoveries = 0;  // pipelines that re-fused after degrading
  uint64_t template_fallbacks = 0;
  uint64_t mods_refused_table_full = 0;
  uint64_t watchdog_stalled = 0;
  uint64_t watchdog_recovered = 0;
  uint64_t ct_commit_drops = 0;      // conntrack at capacity, commit refused
  uint64_t ct_evictions_forced = 0;  // conntrack evicted to make room
  uint64_t ct_expired = 0;           // conntrack timeout-wheel removals
};

struct FailpointStat {
  std::string name;
  uint64_t hits = 0;
  uint64_t fires = 0;
};

struct SoakReport {
  uint64_t packets = 0;      // processed through the datapath
  double seconds = 0;
  double pps = 0;
  uint64_t churn_mods = 0;   // flow-mods applied during the run
  uint64_t checkpoints = 0;
  bool chaos = false;
  uint64_t chaos_windows = 0;  // completed failpoint windows
  DegradationSummary degradation;
  std::vector<FailpointStat> failpoints;
  LatencyPercentiles latency_ns{};
  std::vector<SoakCheck> checks;

  bool ok() const {
    for (const SoakCheck& c : checks)
      if (!c.ok) return false;
    return true;
  }
  /// Serializes as an esw-soak-v1 JSON document (the nightly artifact).
  std::string to_json() const;
};

/// Runs the soak to completion and audits every invariant.  Aborts (CHECK)
/// only on harness misuse — invariant violations come back as failed checks.
SoakReport run_soak(const SoakOptions& opts);

}  // namespace esw::perf
