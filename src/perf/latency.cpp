#include "perf/latency.hpp"

#include <cmath>

namespace esw::perf {

size_t LatencyHistogram::bucket_index(uint64_t value) {
  if (value < kSubCount) return static_cast<size_t>(value);  // exact region
  const uint32_t e = 63u - static_cast<uint32_t>(__builtin_clzll(value));
  if (e > kMaxExp) return kOverflowBucket;
  // value is in [2^e, 2^(e+1)); its top kSubBits+1 bits select the octave
  // block and the linear sub-bucket within it.
  const uint64_t sub = (value >> (e - kSubBits)) & (kSubCount - 1);
  return (static_cast<size_t>(e - kSubBits) + 1) * kSubCount +
         static_cast<size_t>(sub);
}

uint64_t LatencyHistogram::bucket_value(size_t index) {
  if (index < kSubCount) return index;  // exact region: the value itself
  if (index >= kOverflowBucket) return kMaxTrackable;
  const size_t block = index / kSubCount;  // 1..(kMaxExp - kSubBits + 1)
  const uint64_t sub = index % kSubCount;
  const uint32_t shift = static_cast<uint32_t>(block) - 1;  // e - kSubBits
  const uint64_t lower = (kSubCount + sub) << shift;
  return lower + ((uint64_t{1} << shift) >> 1);  // midpoint of the bucket
}

uint64_t LatencyHistogram::value_at_percentile(double pct) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (pct < 0) pct = 0;
  if (pct > 100) pct = 100;
  // Rank of the reported sample: ceil(pct% * n), the "at least pct% of
  // samples are <= reported" convention (matches the header contract).
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(pct / 100.0 * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cum += counts_[i].load(std::memory_order_relaxed);
    if (cum >= rank) {
      uint64_t v = bucket_value(i);
      // The midpoint can stick out past the true extremes; the exact
      // recorded min/max are tighter bounds on any sample.
      const uint64_t lo = min(), hi = max();
      if (v < lo) v = lo;
      if (v > hi) v = hi;
      return v;
    }
  }
  return max();  // unreachable when counts are consistent
}

LatencyPercentiles LatencyHistogram::percentiles() const {
  LatencyPercentiles p;
  p.samples = count();
  if (p.samples == 0) return p;
  p.p50 = static_cast<double>(value_at_percentile(50));
  p.p90 = static_cast<double>(value_at_percentile(90));
  p.p99 = static_cast<double>(value_at_percentile(99));
  p.p999 = static_cast<double>(value_at_percentile(99.9));
  p.max = static_cast<double>(max());
  return p;
}

LatencyPercentiles LatencyHistogram::percentiles_ns() const {
  LatencyPercentiles p = percentiles();
  p.p50 = cycles_to_ns(p.p50);
  p.p90 = cycles_to_ns(p.p90);
  p.p99 = cycles_to_ns(p.p99);
  p.p999 = cycles_to_ns(p.p999);
  p.max = cycles_to_ns(p.max);
  return p;
}

}  // namespace esw::perf
