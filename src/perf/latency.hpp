// HDR-style log-bucketed latency histogram.
//
// Production operators buy p99.9, not means: the benchmarking-methodology
// literature for software switches (Zhang et al., Niu et al.) makes latency
// *distribution* one of the three comparison axes next to throughput and
// robustness under update load.  This is the repo's one histogram type for
// that axis — the measurement loops (netio/nfpa), the threaded runtime
// (core/SwitchRuntime) and the soak harness (perf/soak) all record into it.
//
// Design, borrowed from HdrHistogram / DPDK latencystats:
//   * values are bucketed on a log2 scale with kSubCount linear subdivisions
//     per octave, so the bucket width is always <= value/128 — reporting the
//     bucket midpoint bounds the relative quantization error by 1/256
//     (~0.4%, comfortably inside the ~1% budget);
//   * values below kSubCount are stored exactly (one bucket per value);
//   * the bucket array is fixed at construction — the record path is a bit
//     scan, one array increment and three scalar updates, with no allocation
//     and no branches that depend on history;
//   * values above kMaxTrackable saturate into a dedicated overflow bucket
//     (the true maximum is still tracked exactly in max());
//   * counts are relaxed atomics with a single-writer discipline, exactly
//     like every per-worker stats block in this repo (common/counters.hpp):
//     one recorder owns the histogram, concurrent readers (mid-run soak
//     checkpoints) see approximate snapshots that become exact once the
//     writer stops, and merge() makes per-worker histograms foldable into
//     one distribution at end of run.
//
// Units are whatever the recorder measured — the hot paths record TSC cycles
// (common/tsc.hpp) and convert to nanoseconds only at extraction time via the
// calibrated tsc_ghz() (cycles_to_ns below), so the record path never touches
// floating point.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "common/tsc.hpp"

namespace esw::perf {

/// Calibrated cycles -> nanoseconds conversion (tsc_ghz() is measured once,
/// ~10 ms, on first use; on non-x86 the "cycle" source is already
/// steady_clock nanoseconds and the ratio is ~1).
inline double cycles_to_ns(double cycles) { return cycles / tsc_ghz(); }

/// Extracted percentile block, in the histogram's recorded units (or in
/// nanoseconds when produced by percentiles_ns()).
struct LatencyPercentiles {
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double p999 = 0;
  double max = 0;
  uint64_t samples = 0;
};

class LatencyHistogram {
 public:
  /// log2 of the linear subdivisions per octave.  128 sub-buckets bound the
  /// bucket width by value/128; midpoints halve that again.
  static constexpr uint32_t kSubBits = 7;
  static constexpr uint64_t kSubCount = uint64_t{1} << kSubBits;
  /// Highest exponent tracked at full resolution: values up to 2^42-1 cycles
  /// (~20 minutes at 3.5 GHz) bucket normally, anything above saturates.
  static constexpr uint32_t kMaxExp = 41;
  static constexpr uint64_t kMaxTrackable = (uint64_t{1} << (kMaxExp + 1)) - 1;
  /// Linear region + one kSubCount block per octave 2^7..2^41 + overflow.
  static constexpr size_t kOverflowBucket =
      (kMaxExp - kSubBits + 1) * kSubCount + kSubCount;
  static constexpr size_t kNumBuckets = kOverflowBucket + 1;

  LatencyHistogram() = default;

  // Relaxed-atomic cells are not copyable by default; snapshot semantics
  // (relaxed loads, like every counter aggregator here) are what callers
  // want when a RunStats or a merged end-of-run histogram is passed around.
  LatencyHistogram(const LatencyHistogram& o) { copy_from(o); }
  LatencyHistogram& operator=(const LatencyHistogram& o) {
    if (this != &o) copy_from(o);
    return *this;
  }

  /// Records one sample.  Single writer; allocation-free.
  void record(uint64_t value) { record_n(value, 1); }

  /// Records `n` samples of the same value — the per-burst shape: a burst's
  /// amortized per-packet latency (burst cycles / burst size) recorded once
  /// with the burst's packet count as weight.
  void record_n(uint64_t value, uint64_t n) {
    if (n == 0) return;
    bump(counts_[bucket_index(value)], n);
    bump(count_, n);
    bump(sum_, value * n);
    if (value > max_.load(std::memory_order_relaxed))
      max_.store(value, std::memory_order_relaxed);
    if (value < min_.load(std::memory_order_relaxed))
      min_.store(value, std::memory_order_relaxed);
  }

  /// Folds another histogram's counts into this one (per-worker histograms
  /// -> one end-of-run distribution).  Associative and commutative; exact
  /// when neither side has a concurrent writer.
  void merge(const LatencyHistogram& o) {
    for (size_t i = 0; i < kNumBuckets; ++i)
      bump(counts_[i], o.counts_[i].load(std::memory_order_relaxed));
    bump(count_, o.count_.load(std::memory_order_relaxed));
    bump(sum_, o.sum_.load(std::memory_order_relaxed));
    const uint64_t omax = o.max_.load(std::memory_order_relaxed);
    if (omax > max_.load(std::memory_order_relaxed))
      max_.store(omax, std::memory_order_relaxed);
    const uint64_t omin = o.min_.load(std::memory_order_relaxed);
    if (omin < min_.load(std::memory_order_relaxed))
      min_.store(omin, std::memory_order_relaxed);
  }

  /// Zeroes everything.  Control-side; a concurrent recorder may re-add its
  /// in-flight samples, so clear while recording is paused for exactness
  /// (same contract as CompiledDatapath::clear_stats).
  void clear() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  bool empty() const { return count() == 0; }
  /// Exact extremes of everything recorded (min() is 0 when empty).
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t min() const {
    const uint64_t m = min_.load(std::memory_order_relaxed);
    return m == UINT64_MAX ? 0 : m;
  }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0
                  : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// Value at percentile `pct` in [0,100]: the representative (midpoint) of
  /// the bucket holding the sample of rank ceil(pct/100 * count), clamped to
  /// the exact recorded [min, max].  0 when empty.
  uint64_t value_at_percentile(double pct) const;

  /// The standard block in recorded units; 0s when empty.
  LatencyPercentiles percentiles() const;
  /// The standard block converted to nanoseconds via the calibrated TSC
  /// frequency — what the esw-bench-v1 `latency_ns` counters report.
  LatencyPercentiles percentiles_ns() const;

  /// Raw bucket access for tests (count at index, representative value).
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  static size_t bucket_index(uint64_t value);
  static uint64_t bucket_value(size_t index);

 private:
  static void bump(std::atomic<uint64_t>& c, uint64_t d) {
    // Single writer: load+store, not an RMW (common/counters.hpp idiom).
    c.store(c.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
  }
  void copy_from(const LatencyHistogram& o) {
    for (size_t i = 0; i < kNumBuckets; ++i)
      counts_[i].store(o.counts_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    count_.store(o.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sum_.store(o.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    max_.store(o.max_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    min_.store(o.min_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }

  std::array<std::atomic<uint64_t>, kNumBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
};

}  // namespace esw::perf
