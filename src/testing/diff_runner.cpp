#include "testing/diff_runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "core/eswitch.hpp"
#include "flow/dsl.hpp"
#include "netio/pcap.hpp"
#include "proto/build.hpp"

namespace esw::testing {

namespace {

using core::DataplaneStats;
using flow::Verdict;

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t fnv(uint64_t h, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

bool stats_equal(const DataplaneStats& a, const DataplaneStats& b) {
  return a.packets == b.packets && a.outputs == b.outputs && a.drops == b.drops &&
         a.to_controller == b.to_controller;
}

std::string stats_str(const DataplaneStats& s) {
  std::ostringstream os;
  os << "pkts=" << s.packets << " out=" << s.outputs << " drop=" << s.drops
     << " ctrl=" << s.to_controller;
  return os.str();
}

std::string verdict_str(const Verdict& v) {
  switch (v.kind) {
    case Verdict::Kind::kOutput:
      return "output:" + std::to_string(v.port);
    case Verdict::Kind::kDrop:
      return "drop";
    case Verdict::Kind::kController:
      return "controller";
    case Verdict::Kind::kFlood:
      return "flood";
  }
  return "?";
}

const char* kPathNames[4] = {"es-fused", "es-jit", "es-interp", "ovs"};

/// The three Eswitch leg configurations: fused (JIT + whole-pipeline
/// fusion), staged (JIT only) and interpreted.  The planted-fault hook rides
/// the fused leg — the newest path is the one under the most suspicion.
void make_es_cfgs(const core::CompilerConfig& cfg, core::CompilerConfig out[3]) {
  out[0] = out[1] = out[2] = cfg;
  out[0].enable_jit = true;
  out[0].enable_fusion = true;
  out[1].enable_jit = true;
  out[1].enable_fusion = false;
  out[2].enable_jit = false;
  out[2].enable_fusion = false;
}

/// Replays `trace[0..prefix)` through `sw` in kBurstSize bursts, folding
/// (verdict, mutated bytes) into a behavior hash.  `fault` (nullable) rewrites
/// the observed verdict stream — the planted-bug hook.
template <typename Sw>
uint64_t replay_hash(Sw& sw, const DiffTrace& trace, size_t prefix,
                     const std::function<Verdict(size_t, Verdict)>* fault) {
  std::vector<net::Packet> scratch(net::kBurstSize);
  net::Packet* pkts[net::kBurstSize];
  Verdict verdicts[net::kBurstSize];
  for (uint32_t i = 0; i < net::kBurstSize; ++i) pkts[i] = &scratch[i];

  uint64_t h = kFnvOffset;
  size_t done = 0;
  while (done < prefix) {
    const uint32_t n =
        static_cast<uint32_t>(std::min<size_t>(net::kBurstSize, prefix - done));
    for (uint32_t i = 0; i < n; ++i) {
      const DiffTrace::Item& it = trace.items[done + i];
      scratch[i].assign(it.frame.data(), static_cast<uint32_t>(it.frame.size()));
      scratch[i].set_in_port(it.in_port);
    }
    sw.process_burst(pkts, n, verdicts);
    for (uint32_t i = 0; i < n; ++i) {
      Verdict v = verdicts[i];
      if (fault != nullptr && *fault) v = (*fault)(done + i, v);
      const uint32_t vk = static_cast<uint32_t>(v.kind);
      h = fnv(h, &vk, sizeof vk);
      h = fnv(h, &v.port, sizeof v.port);
      const uint32_t len = scratch[i].len();
      h = fnv(h, &len, sizeof len);
      h = fnv(h, scratch[i].data(), len);
    }
    done += n;
  }
  return h;
}

/// One packet through `sw` after replaying the preceding prefix: used to
/// produce the human-readable classification of a minimized divergence.
template <typename Sw>
Verdict step_last(Sw& sw, const DiffTrace& trace, size_t prefix,
                  const std::function<Verdict(size_t, Verdict)>* fault,
                  net::Packet& out_pkt) {
  if (prefix > 1) replay_hash(sw, trace, prefix - 1, fault);
  const DiffTrace::Item& it = trace.items[prefix - 1];
  out_pkt.assign(it.frame.data(), static_cast<uint32_t>(it.frame.size()));
  out_pkt.set_in_port(it.in_port);
  net::Packet* p = &out_pkt;
  Verdict v;
  sw.process_burst(&p, 1, &v);
  if (fault != nullptr && *fault) v = (*fault)(prefix - 1, v);
  return v;
}

std::string cfg_line(const core::CompilerConfig& cfg) {
  std::ostringstream os;
  os << "# cfg direct_code_max_entries=" << cfg.direct_code_max_entries
     << " enable_decomposition=" << (cfg.enable_decomposition ? 1 : 0)
     << " decompose_max_tables=" << cfg.decompose_max_tables
     << " specialize_parser=" << (cfg.specialize_parser ? 1 : 0)
     << " lpm_max_tbl8_groups=" << cfg.lpm_max_tbl8_groups
     << " enable_range_template=" << (cfg.enable_range_template ? 1 : 0)
     << " enable_fusion=" << (cfg.enable_fusion ? 1 : 0)
     << " cuckoo_min_entries=" << cfg.cuckoo_min_entries
     << " force_template=";
  if (cfg.force_template.has_value())
    os << static_cast<int>(*cfg.force_template);
  else
    os << "-";
  return os.str();
}

}  // namespace

DiffTrace DiffTrace::from_flows(const std::vector<net::FlowSpec>& flows) {
  DiffTrace t;
  t.items.reserve(flows.size());
  uint8_t buf[net::Packet::kMaxFrame];
  for (const net::FlowSpec& fs : flows) {
    const uint32_t len = proto::build_packet(fs.pkt, buf, sizeof buf);
    ESW_CHECK_MSG(len > 0, "generated packet spec failed to serialize");
    t.items.push_back({{buf, buf + len}, fs.in_port});
  }
  return t;
}

bool DiffRunner::diverged(const flow::Pipeline& pl, const core::CompilerConfig& cfg,
                          const DiffTrace& trace, size_t prefix,
                          std::string* kind) {
  core::CompilerConfig es_cfgs[3];
  make_es_cfgs(cfg, es_cfgs);

  PathSummary s[4];
  for (int i = 0; i < 3; ++i) {
    core::Eswitch sw(es_cfgs[i]);
    sw.install(pl);
    s[i].behavior_hash =
        replay_hash(sw, trace, prefix, i == 0 ? &opts_.fault : nullptr);
    s[i].stats = sw.stats();
  }
  {
    ovs::OvsSwitch sw(opts_.ovs);
    sw.install(pl);
    s[3].behavior_hash = replay_hash(sw, trace, prefix, nullptr);
    s[3].stats = sw.stats();
  }

  bool hash_diff = false, stats_diff = false;
  for (int i = 1; i < 4; ++i) {
    hash_diff |= s[i - 1].behavior_hash != s[i].behavior_hash;
    stats_diff |= !stats_equal(s[i - 1].stats, s[i].stats);
  }
  if (kind != nullptr && (hash_diff || stats_diff))
    *kind = hash_diff ? "behavior" : "stats";
  return hash_diff || stats_diff;
}

std::string DiffRunner::classify(const flow::Pipeline& pl,
                                 const core::CompilerConfig& cfg,
                                 const DiffTrace& trace, size_t prefix,
                                 std::string* kind) {
  core::CompilerConfig es_cfgs[3];
  make_es_cfgs(cfg, es_cfgs);

  Verdict v[4];
  net::Packet pkt[4];
  DataplaneStats st[4];
  for (int i = 0; i < 3; ++i) {
    core::Eswitch sw(es_cfgs[i]);
    sw.install(pl);
    v[i] = step_last(sw, trace, prefix, i == 0 ? &opts_.fault : nullptr, pkt[i]);
    st[i] = sw.stats();
  }
  {
    ovs::OvsSwitch sw(opts_.ovs);
    sw.install(pl);
    v[3] = step_last(sw, trace, prefix, nullptr, pkt[3]);
    st[3] = sw.stats();
  }

  std::ostringstream os;
  bool verdict_diff = false, bytes_diff = false;
  for (int i = 1; i < 4; ++i) {
    verdict_diff |= !(v[i - 1] == v[i]);
    bytes_diff |= pkt[i - 1].len() != pkt[i].len();
  }
  if (!bytes_diff)
    for (int i = 1; i < 4; ++i)
      bytes_diff |=
          std::memcmp(pkt[i - 1].data(), pkt[i].data(), pkt[0].len()) != 0;
  if (kind != nullptr)
    *kind = verdict_diff ? "verdict" : bytes_diff ? "bytes" : "stats";

  os << "packet " << prefix - 1 << ": ";
  for (int i = 0; i < 4; ++i)
    os << kPathNames[i] << "={" << verdict_str(v[i]) << " len=" << pkt[i].len()
       << "} ";
  if (bytes_diff) {
    uint32_t n = pkt[0].len();
    for (int i = 1; i < 4; ++i) n = std::min(n, pkt[i].len());
    for (uint32_t off = 0; off < n; ++off) {
      bool diff = false;
      for (int i = 1; i < 4; ++i)
        diff |= pkt[i - 1].data()[off] != pkt[i].data()[off];
      if (diff) {
        os << "first byte diff at +" << off << " (";
        for (int i = 0; i < 4; ++i) os << (i ? "/" : "") << +pkt[i].data()[off];
        os << ") ";
        break;
      }
    }
  }
  os << "| stats ";
  for (int i = 0; i < 4; ++i) os << kPathNames[i] << "={" << stats_str(st[i]) << "} ";
  return os.str();
}

std::optional<Divergence> DiffRunner::run(const flow::Pipeline& pl,
                                          const core::CompilerConfig& cfg,
                                          const DiffTrace& trace,
                                          const std::string& tag) {
  if (trace.items.empty()) return std::nullopt;
  if (!diverged(pl, cfg, trace, trace.size(), nullptr)) return std::nullopt;

  // Binary search the shortest failing prefix.  The predicate is monotone:
  // processing is sequential and deterministic, so a prefix containing the
  // first bad packet diverges no matter how much tail is cut.
  size_t lo = 1, hi = trace.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (diverged(pl, cfg, trace, mid, nullptr))
      hi = mid;
    else
      lo = mid + 1;
  }

  Divergence d;
  d.prefix_len = lo;
  d.detail = classify(pl, cfg, trace, lo, &d.kind);

  if (!opts_.artifact_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts_.artifact_dir, ec);
    d.pcap_path = opts_.artifact_dir + "/" + tag + ".pcap";
    d.rules_path = opts_.artifact_dir + "/" + tag + ".rules";
    if (!write_repro(d.pcap_path, d.rules_path, pl, cfg, trace, lo,
                     "divergence kind=" + d.kind + " prefix=" +
                         std::to_string(lo) + " :: " + d.detail)) {
      d.pcap_path.clear();
      d.rules_path.clear();
    }
  }
  return d;
}

std::optional<Divergence> DiffRunner::campaign(uint64_t seed, uint32_t n_pipelines,
                                               uint32_t packets_per_pipeline,
                                               const GenOptions& gen_opts,
                                               CampaignStats* stats_out) {
  PipelineGen gen(seed, gen_opts);
  CampaignStats cs;
  for (uint32_t i = 0; i < n_pipelines; ++i) {
    const GeneratedWorkload wl = gen.next_pipeline();
    // Flow-count distribution sweep: sometimes a handful of flows (cache-hit
    // heavy), usually a broad mix (megaflow/microflow pressure).
    const size_t n_flows =
        gen.rng().chance(1, 4)
            ? 1 + gen.rng().below(8)
            : 8 + gen.rng().below(std::max<uint64_t>(1, packets_per_pipeline / 4));
    const DiffTrace trace =
        DiffTrace::from_flows(gen.traffic(wl, packets_per_pipeline, n_flows));
    cs.pipelines += 1;
    cs.packets += trace.size();
    auto d = run(wl.pipeline, wl.cfg, trace,
                 "seed" + std::to_string(seed) + "_p" + std::to_string(i));
    if (d.has_value()) {
      d->description = wl.description;
      if (stats_out != nullptr) *stats_out = cs;
      return d;
    }
  }
  if (stats_out != nullptr) *stats_out = cs;
  return std::nullopt;
}

bool write_repro(const std::string& pcap_path, const std::string& rules_path,
                 const flow::Pipeline& pl, const core::CompilerConfig& cfg,
                 const DiffTrace& trace, size_t prefix_len,
                 const std::string& header_comment) {
  prefix_len = std::min(prefix_len, trace.items.size());

  net::PcapWriter pcap;
  for (size_t i = 0; i < prefix_len; ++i)
    pcap.add(trace.items[i].frame.data(),
             static_cast<uint32_t>(trace.items[i].frame.size()),
             /*ts_ns=*/i * 1000);
  if (!pcap.save(pcap_path)) return false;

  std::ofstream rf(rules_path);
  if (!rf) return false;
  rf << "# esw-diff-repro v1\n";
  rf << "# " << header_comment << "\n";
  rf << cfg_line(cfg) << "\n";
  for (const flow::FlowTable& t : pl.tables()) {
    rf << "table " << static_cast<int>(t.id()) << " miss="
       << (t.miss_policy() == flow::FlowTable::MissPolicy::kController
               ? "controller"
               : "drop")
       << "\n";
    for (const flow::FlowEntry& e : t.entries()) rf << flow::format_rule(e) << "\n";
  }
  rf << "# in_ports:";
  for (size_t i = 0; i < prefix_len; ++i) rf << ' ' << trace.items[i].in_port;
  rf << "\n";
  return rf.good();
}

std::optional<ReproArtifact> load_repro(const std::string& rules_path,
                                        const std::string& pcap_path,
                                        std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<ReproArtifact> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  std::ifstream rf(rules_path);
  if (!rf) return fail("cannot open " + rules_path);

  ReproArtifact art;
  std::vector<uint32_t> in_ports;
  int current_table = -1;
  std::string line;
  while (std::getline(rf, line)) {
    if (line.empty()) continue;
    if (line.rfind("# cfg ", 0) == 0) {
      std::istringstream is(line.substr(6));
      std::string kv;
      while (is >> kv) {
        const size_t eq = kv.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = kv.substr(0, eq), val = kv.substr(eq + 1);
        auto num = [&] { return std::strtoul(val.c_str(), nullptr, 0); };
        if (key == "direct_code_max_entries")
          art.cfg.direct_code_max_entries = static_cast<uint32_t>(num());
        else if (key == "enable_decomposition")
          art.cfg.enable_decomposition = num() != 0;
        else if (key == "decompose_max_tables")
          art.cfg.decompose_max_tables = static_cast<uint32_t>(num());
        else if (key == "specialize_parser")
          art.cfg.specialize_parser = num() != 0;
        else if (key == "lpm_max_tbl8_groups")
          art.cfg.lpm_max_tbl8_groups = static_cast<uint32_t>(num());
        else if (key == "enable_range_template")
          art.cfg.enable_range_template = num() != 0;
        else if (key == "enable_fusion")
          art.cfg.enable_fusion = num() != 0;
        else if (key == "cuckoo_min_entries")
          art.cfg.cuckoo_min_entries = static_cast<uint32_t>(num());
        else if (key == "force_template" && val != "-")
          art.cfg.force_template = static_cast<core::TableTemplate>(num());
      }
      continue;
    }
    if (line.rfind("# in_ports:", 0) == 0) {
      std::istringstream is(line.substr(11));
      uint32_t p;
      while (is >> p) in_ports.push_back(p);
      continue;
    }
    if (line[0] == '#') continue;
    if (line.rfind("table ", 0) == 0) {
      std::istringstream is(line.substr(6));
      int id = -1;
      std::string miss;
      is >> id >> miss;
      if (id < 0 || id > 255) return fail("bad table header: " + line);
      current_table = id;
      art.pipeline.table(static_cast<uint8_t>(id))
          .set_miss_policy(miss == "miss=controller"
                               ? flow::FlowTable::MissPolicy::kController
                               : flow::FlowTable::MissPolicy::kDrop);
      continue;
    }
    if (current_table < 0) return fail("rule before any table header: " + line);
    try {
      art.pipeline.table(static_cast<uint8_t>(current_table))
          .add(flow::parse_rule(line));
    } catch (const std::exception& e) {
      return fail("bad rule '" + line + "': " + e.what());
    }
  }

  net::PcapReader pcap = net::PcapReader::from_file(pcap_path);
  if (!pcap.ok()) return fail("bad pcap: " + pcap.error());
  for (size_t i = 0; i < pcap.size(); ++i) {
    const net::PcapPacket p = pcap.packet(i);
    if (p.len != p.orig_len)
      return fail("pcap record " + std::to_string(i) + " is snaplen-truncated");
    if (p.len == 0 || p.len > net::Packet::kMaxFrame)
      return fail("pcap record " + std::to_string(i) + " length " +
                  std::to_string(p.len) + " is outside the replayable range");
    art.trace.items.push_back(
        {{p.data, p.data + p.len}, i < in_ports.size() ? in_ports[i] : 1});
  }
  return art;
}

}  // namespace esw::testing
