// The differential oracle: prove that the specialized datapath is
// behavior-identical to the general-purpose one it replaces.
//
// One trace is replayed through four execution paths —
//
//   1. core::Eswitch with whole-pipeline fusion on (bursts run the fused
//      goto-graph function where the plan allows),
//   2. core::Eswitch with the JIT on but fusion off (the staged per-table
//      machine-code walk),
//   3. core::Eswitch with the JIT off (the same lowered IR, interpreted),
//   4. ovs::OvsSwitch (microflow/megaflow caches over the slow path),
//
// comparing per-packet verdicts, mutated frame bytes and end-of-run
// DataplaneStats.  Detection is cheap: each path folds its behavior into a
// running hash over (verdict, frame bytes) while processing in bursts (the
// production shape), so agreement costs no per-packet bookkeeping.  On
// disagreement the runner binary-searches the shortest failing trace prefix
// (replaying fresh backends per probe — processing is deterministic, so a
// divergence at packet i reproduces under any prefix that includes it),
// single-steps the last packet for a human-readable detail, and writes a
// repro artifact: the minimized pcap plus a DSL dump of the pipeline and
// compiler knobs that load_repro() reads back for replay.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "flow/pipeline.hpp"
#include "netio/pktgen.hpp"
#include "ovs/ovs_switch.hpp"
#include "testing/pipeline_gen.hpp"

namespace esw::testing {

/// A replayable trace: raw frames plus per-frame ingress ports (pcap carries
/// no port metadata, so the artifact stores ports in the rules dump).
struct DiffTrace {
  struct Item {
    std::vector<uint8_t> frame;
    uint32_t in_port = 1;
  };
  std::vector<Item> items;

  static DiffTrace from_flows(const std::vector<net::FlowSpec>& flows);
  size_t size() const { return items.size(); }
};

struct DiffOptions {
  /// Where repro artifacts land on divergence; empty = don't write.
  std::string artifact_dir;
  /// The baseline's configuration.  Union-mode megaflows only: the minimal
  /// (Shelly-style) masks are deliberately unsound (Fig. 3) and would report
  /// false divergences.
  ovs::OvsSwitch::Config ovs{};
  /// Test-only fault injection: applied to the ES-fused path's verdict stream
  /// (packet index, real verdict) -> observed verdict.  Lets tests prove the
  /// minimizer finds a planted divergence and produces a working artifact.
  std::function<flow::Verdict(size_t, flow::Verdict)> fault;
};

struct Divergence {
  size_t prefix_len = 0;  // shortest failing prefix, in packets
  std::string kind;       // "verdict" | "bytes" | "stats"
  std::string detail;
  std::string description;  // generator's pipeline summary (campaigns)
  std::string pcap_path;    // written artifacts (empty when not writing)
  std::string rules_path;
};

class DiffRunner {
 public:
  explicit DiffRunner(const DiffOptions& opts = {}) : opts_(opts) {}

  /// Replays `trace` through all four paths; nullopt = behaviorally equal.
  /// On divergence, minimizes and (artifact_dir set) writes `<tag>.pcap` +
  /// `<tag>.rules`.
  std::optional<Divergence> run(const flow::Pipeline& pl,
                                const core::CompilerConfig& cfg,
                                const DiffTrace& trace,
                                const std::string& tag = "repro");

  struct CampaignStats {
    uint64_t pipelines = 0;
    uint64_t packets = 0;
  };

  /// Seeded campaign: `n_pipelines` generated workloads of
  /// `packets_per_pipeline` packets each (flow counts drawn per pipeline to
  /// sweep cache pressure), stopping at the first divergence.
  std::optional<Divergence> campaign(uint64_t seed, uint32_t n_pipelines,
                                     uint32_t packets_per_pipeline,
                                     const GenOptions& gen_opts = {},
                                     CampaignStats* stats_out = nullptr);

 private:
  struct PathSummary {
    uint64_t behavior_hash = 0;
    core::DataplaneStats stats;
  };

  bool diverged(const flow::Pipeline& pl, const core::CompilerConfig& cfg,
                const DiffTrace& trace, size_t prefix, std::string* kind);
  std::string classify(const flow::Pipeline& pl, const core::CompilerConfig& cfg,
                       const DiffTrace& trace, size_t prefix, std::string* kind);

  DiffOptions opts_;
};

/// Serializes the repro artifact pair.  Returns false on I/O failure.
bool write_repro(const std::string& pcap_path, const std::string& rules_path,
                 const flow::Pipeline& pl, const core::CompilerConfig& cfg,
                 const DiffTrace& trace, size_t prefix_len,
                 const std::string& header_comment);

struct ReproArtifact {
  flow::Pipeline pipeline;
  core::CompilerConfig cfg;
  DiffTrace trace;
};

/// Reads a `.rules` + `.pcap` artifact pair back; nullopt (with `error` set)
/// on malformed input.
std::optional<ReproArtifact> load_repro(const std::string& rules_path,
                                        const std::string& pcap_path,
                                        std::string* error);

}  // namespace esw::testing
