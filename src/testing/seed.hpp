// Seed hygiene for every randomized test and campaign in the tree.
//
// Rule: a randomized test logs its seed on start and honors the ESW_TEST_SEED
// environment override, so any CI failure is reproducible with one command:
//
//   ESW_TEST_SEED=0x1234 ctest -R test_diff_oracle
//
// test_seed() centralizes both halves; call it once per randomized test (or
// campaign) instead of hardcoding `Rng rng(0x...)`.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace esw::testing {

/// The seed to use: ESW_TEST_SEED (decimal or 0x-hex) when set, else
/// `default_seed`.  Logs "[seed] <context> seed=0x..." to stdout either way.
inline uint64_t test_seed(uint64_t default_seed, const char* context) {
  uint64_t seed = default_seed;
  if (const char* env = std::getenv("ESW_TEST_SEED"); env != nullptr && *env != '\0')
    seed = std::strtoull(env, nullptr, 0);
  std::printf("[seed] %s seed=0x%" PRIx64 " (override with ESW_TEST_SEED)\n",
              context, seed);
  std::fflush(stdout);
  return seed;
}

}  // namespace esw::testing
