// Randomized-but-valid workload generation for the differential oracle.
//
// PipelineGen emits multi-table OpenFlow pipelines that deliberately sweep the
// compiler's whole template space — exact/compound-hash, LPM, range, direct-
// code-eligible small tables, tuple-space/linked-list mask mixes and the
// snort-like ACL shapes that trigger Fig. 6 decomposition — with goto chains,
// per-table miss policies and randomized compiler knobs.  The matched traffic
// generator then aims a controllable fraction of packets at installed entries
// (synthesizing frames from the entries' own matches) and fills the rest with
// random-but-parseable frames, over a controllable number of distinct flows.
//
// Everything is a pure function of the seed: a campaign that diverges in CI
// replays bit-for-bit from its logged seed (see testing/seed.hpp).
//
// Generated pipelines avoid the one OpenFlow behavior the spec leaves
// undefined and the backends could legitimately disagree on: two overlapping
// entries with equal priority in one table.  Within a table, either
// priorities are distinct or equal-priority entries are disjoint by
// construction (distinct exact keys, distinct prefixes of one length).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/analysis.hpp"
#include "flow/pipeline.hpp"
#include "netio/pktgen.hpp"

namespace esw::testing {

struct GenOptions {
  uint32_t min_tables = 1;
  uint32_t max_tables = 4;
  uint32_t max_entries_per_table = 48;
  /// Fraction (num/den) of generated packets synthesized from an installed
  /// entry's match; the rest are random-but-parseable frames.
  uint32_t hit_num = 3, hit_den = 4;
  bool allow_decomposition = true;
};

struct GeneratedWorkload {
  flow::Pipeline pipeline;
  core::CompilerConfig cfg;  // knobs drawn for this pipeline
  std::string description;   // compact shape summary for logs/artifacts
};

/// Best-effort packet spec matching `m`: constrained fields take the match
/// value (masked bits randomized via `rng`), the packet kind is derived from
/// protocol prerequisites.  Matches no single frame can satisfy (conflicting
/// transport constraints, metadata) come back unsatisfied in those fields —
/// harmless for the oracle, which compares backends, not hit rates.
net::FlowSpec spec_for_match(const flow::Match& m, Rng& rng);

class PipelineGen {
 public:
  explicit PipelineGen(uint64_t seed, const GenOptions& opts = {});

  /// One fresh randomized pipeline + compiler config.
  GeneratedWorkload next_pipeline();

  /// A matched traffic mix for `wl`: `n_flows` distinct flow specs (per the
  /// hit/miss split), replayed in random order until `n_packets` are emitted.
  std::vector<net::FlowSpec> traffic(const GeneratedWorkload& wl, size_t n_packets,
                                     size_t n_flows);

  Rng& rng() { return rng_; }

 private:
  void gen_exact_hash(flow::FlowTable& t, const std::vector<uint8_t>& later);
  void gen_lpm(flow::FlowTable& t, const std::vector<uint8_t>& later);
  void gen_range(flow::FlowTable& t, const std::vector<uint8_t>& later);
  void gen_direct_small(flow::FlowTable& t, const std::vector<uint8_t>& later);
  void gen_tuple_space(flow::FlowTable& t, const std::vector<uint8_t>& later);
  void gen_acl(flow::FlowTable& t);

  flow::ActionList random_actions(const std::vector<uint8_t>& later,
                                  int16_t* goto_out);

  GenOptions opts_;
  Rng rng_;
  uint64_t n_generated_ = 0;
};

}  // namespace esw::testing
