#include "testing/pipeline_gen.hpp"

#include <algorithm>
#include <set>

#include "usecases/usecases.hpp"

namespace esw::testing {

using flow::Action;
using flow::ActionList;
using flow::FieldId;
using flow::FlowEntry;
using flow::FlowTable;
using flow::Match;

namespace {

/// Fields set_field may target in generated actions (writable, checksum-safe
/// through store_field, and visible in the output frame for byte comparison).
constexpr FieldId kMutableFields[] = {
    FieldId::kEthDst, FieldId::kEthSrc,  FieldId::kIpSrc,   FieldId::kIpDst,
    FieldId::kIpDscp, FieldId::kIpTtl,   FieldId::kTcpSrc,  FieldId::kTcpDst,
    FieldId::kUdpSrc, FieldId::kUdpDst,  FieldId::kVlanVid, FieldId::kVlanPcp,
    FieldId::kMetadata,
};

uint16_t prefix_mask16(unsigned len) {
  return static_cast<uint16_t>(len == 0 ? 0 : 0xFFFFu << (16 - len));
}

}  // namespace

net::FlowSpec spec_for_match(const Match& m, Rng& rng) {
  using proto::PacketKind;
  net::FlowSpec fs;
  proto::PacketSpec& s = fs.pkt;

  auto field = [&](FieldId f) {
    // Constrained bits from the match, unconstrained bits randomized.
    const uint64_t full = flow::field_full_mask(f);
    return (m.value(f) | (rng.next() & ~m.mask(f))) & full;
  };

  // Kind first: transport fields beat ip_proto beat eth_type beat "anything".
  if (m.has(FieldId::kArpOp)) {
    s.kind = PacketKind::kArp;
    s.arp_op = static_cast<uint16_t>(field(FieldId::kArpOp));
  } else if (m.has(FieldId::kTcpSrc) || m.has(FieldId::kTcpDst)) {
    s.kind = PacketKind::kTcp;
  } else if (m.has(FieldId::kUdpSrc) || m.has(FieldId::kUdpDst)) {
    s.kind = PacketKind::kUdp;
  } else if (m.has(FieldId::kIcmpType) || m.has(FieldId::kIcmpCode)) {
    s.kind = PacketKind::kIcmp;
  } else if (m.has(FieldId::kIpProto)) {
    const uint8_t p = static_cast<uint8_t>(m.value(FieldId::kIpProto));
    s.kind = p == 6    ? PacketKind::kTcp
             : p == 17 ? PacketKind::kUdp
             : p == 1  ? PacketKind::kIcmp
                       : PacketKind::kIpv4;
    if (s.kind == PacketKind::kIpv4) s.ip_proto = p;
  } else if (m.has(FieldId::kEthType)) {
    const uint16_t et = static_cast<uint16_t>(m.value(FieldId::kEthType));
    if (et == 0x0800) {
      s.kind = rng.chance(1, 2) ? PacketKind::kUdp : PacketKind::kTcp;
    } else if (et == 0x0806) {
      s.kind = PacketKind::kArp;
    } else {
      s.kind = PacketKind::kRawEth;
      s.ethertype = et;
    }
  } else if (m.has(FieldId::kIpSrc) || m.has(FieldId::kIpDst) ||
             m.has(FieldId::kIpDscp) || m.has(FieldId::kIpTtl)) {
    switch (rng.below(3)) {
      case 0: s.kind = PacketKind::kTcp; break;
      case 1: s.kind = PacketKind::kUdp; break;
      default: s.kind = PacketKind::kIcmp; break;
    }
  } else {
    switch (rng.below(5)) {
      case 0: s.kind = PacketKind::kTcp; break;
      case 1: s.kind = PacketKind::kUdp; break;
      case 2: s.kind = PacketKind::kIcmp; break;
      case 3: s.kind = PacketKind::kArp; break;
      default: s.kind = PacketKind::kRawEth; break;
    }
  }

  s.eth_dst = m.has(FieldId::kEthDst) ? field(FieldId::kEthDst)
                                      : (rng.next() & 0xFFFFFFFFFFFF) | 0x020000000000;
  s.eth_src = m.has(FieldId::kEthSrc) ? field(FieldId::kEthSrc)
                                      : (rng.next() & 0xFFFFFFFFFFFF) | 0x020000000000;
  if (m.has(FieldId::kVlanVid))
    s.vlan_vid = static_cast<uint16_t>(field(FieldId::kVlanVid));
  else if (m.has(FieldId::kVlanPcp) || rng.chance(1, 8))
    s.vlan_vid = static_cast<uint16_t>(rng.below(0x1000));
  if (m.has(FieldId::kVlanPcp))
    s.vlan_pcp = static_cast<uint8_t>(field(FieldId::kVlanPcp));

  s.ip_src = m.has(FieldId::kIpSrc) ? static_cast<uint32_t>(field(FieldId::kIpSrc))
                                    : static_cast<uint32_t>(rng.next());
  s.ip_dst = m.has(FieldId::kIpDst) ? static_cast<uint32_t>(field(FieldId::kIpDst))
                                    : static_cast<uint32_t>(rng.next());
  if (m.has(FieldId::kIpTtl)) s.ip_ttl = static_cast<uint8_t>(field(FieldId::kIpTtl));
  if (m.has(FieldId::kIpDscp)) s.ip_dscp = static_cast<uint8_t>(field(FieldId::kIpDscp));

  s.sport = static_cast<uint16_t>(rng.range(1, 0xFFFF));
  s.dport = static_cast<uint16_t>(rng.range(1, 0xFFFF));
  if (m.has(FieldId::kTcpSrc)) s.sport = static_cast<uint16_t>(field(FieldId::kTcpSrc));
  if (m.has(FieldId::kTcpDst)) s.dport = static_cast<uint16_t>(field(FieldId::kTcpDst));
  if (m.has(FieldId::kUdpSrc)) s.sport = static_cast<uint16_t>(field(FieldId::kUdpSrc));
  if (m.has(FieldId::kUdpDst)) s.dport = static_cast<uint16_t>(field(FieldId::kUdpDst));
  if (m.has(FieldId::kIcmpType))
    s.icmp_type = static_cast<uint8_t>(field(FieldId::kIcmpType));
  if (m.has(FieldId::kIcmpCode))
    s.icmp_code = static_cast<uint8_t>(field(FieldId::kIcmpCode));

  s.payload_len = static_cast<uint16_t>(rng.range(0, 64));
  fs.in_port = m.has(FieldId::kInPort)
                   ? static_cast<uint32_t>(field(FieldId::kInPort)) & 0xFF
                   : static_cast<uint32_t>(rng.range(1, 4));
  if (fs.in_port == 0) fs.in_port = 1;
  return fs;
}

PipelineGen::PipelineGen(uint64_t seed, const GenOptions& opts)
    : opts_(opts), rng_(seed) {
  // The shape generators divide this knob (range uses /2, tuple-space draws
  // range(2, /2)); floor it so tiny configurations can't produce an empty
  // Rng::range and a modulo-by-zero.
  if (opts_.max_entries_per_table < 8) opts_.max_entries_per_table = 8;
  if (opts_.max_tables < opts_.min_tables) opts_.max_tables = opts_.min_tables;
}

ActionList PipelineGen::random_actions(const std::vector<uint8_t>& later,
                                       int16_t* goto_out) {
  ActionList al;
  // Mutations first (write-action sets are order-insensitive anyway).
  if (rng_.chance(1, 4)) {
    const FieldId f = kMutableFields[rng_.below(std::size(kMutableFields))];
    al.push_back(Action::set_field(f, rng_.next() & flow::field_full_mask(f)));
  }
  if (rng_.chance(1, 8)) al.push_back(Action::dec_ttl());
  if (rng_.chance(1, 10)) {
    if (rng_.chance(1, 2))
      al.push_back(Action::push_vlan(static_cast<uint16_t>(rng_.below(0x1000))));
    else
      al.push_back(Action::pop_vlan());
  }
  // Terminal.
  switch (rng_.below(10)) {
    case 0: al.push_back(Action::drop()); break;
    case 1: al.push_back(Action::to_controller()); break;
    case 2: al.push_back(Action::flood()); break;
    case 3: break;  // no output: empty action set drops (unless a later table adds one)
    default:
      al.push_back(Action::output(static_cast<uint32_t>(rng_.range(1, 4))));
      break;
  }
  *goto_out = flow::kNoGoto;
  if (!later.empty() && rng_.chance(1, 3))
    *goto_out = static_cast<int16_t>(later[rng_.below(later.size())]);
  return al;
}

void PipelineGen::gen_exact_hash(FlowTable& t, const std::vector<uint8_t>& later) {
  // One shared mask set over a compatible field group; distinct keys.
  struct Group {
    std::vector<FieldId> fields;
  };
  static const Group kGroups[] = {
      {{FieldId::kEthDst}},
      {{FieldId::kEthSrc, FieldId::kEthDst}},
      {{FieldId::kInPort, FieldId::kEthDst}},
      {{FieldId::kIpSrc, FieldId::kIpDst}},
      {{FieldId::kIpDst, FieldId::kUdpDst}},
      {{FieldId::kIpSrc, FieldId::kIpDst, FieldId::kIpProto, FieldId::kTcpSrc,
        FieldId::kTcpDst}},
  };
  const Group& g = kGroups[rng_.below(std::size(kGroups))];
  // Identical per-field masks across entries (the hash prerequisite); mostly
  // exact, sometimes a prefix-style mask on one field.
  std::vector<uint64_t> masks;
  for (const FieldId f : g.fields) masks.push_back(flow::field_full_mask(f));
  if (rng_.chance(1, 4)) {
    const size_t i = rng_.below(g.fields.size());
    const unsigned width = flow::field_info(g.fields[i]).width_bits;
    const unsigned len = static_cast<unsigned>(rng_.range(1, width));
    masks[i] = (masks[i] >> (width - len)) << (width - len);
  }

  const size_t n = rng_.range(1, opts_.max_entries_per_table);
  std::set<std::vector<uint64_t>> seen;
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint64_t> key;
    Match m;
    for (size_t j = 0; j < g.fields.size(); ++j) {
      const uint64_t v = rng_.next() & masks[j];
      m.set(g.fields[j], v, masks[j]);
      key.push_back(v);
    }
    if (!seen.insert(key).second) continue;  // duplicate key: skip
    FlowEntry e;
    e.match = m;
    e.priority = 100;  // equal priority is safe: keys are pairwise disjoint
    e.actions = random_actions(later, &e.goto_table);
    t.add(e);
  }
  if (rng_.chance(1, 2)) {
    FlowEntry def;  // catch-all default, strictly lowest priority
    def.priority = 1;
    def.actions = random_actions(later, &def.goto_table);
    t.add(def);
  }
}

void PipelineGen::gen_lpm(FlowTable& t, const std::vector<uint8_t>& later) {
  const FieldId f = rng_.chance(1, 4) ? FieldId::kIpSrc : FieldId::kIpDst;
  const size_t n = rng_.range(1, opts_.max_entries_per_table);
  std::set<std::pair<uint32_t, unsigned>> seen;
  for (size_t i = 0; i < n; ++i) {
    const unsigned len = static_cast<unsigned>(rng_.range(1, 32));
    const uint32_t mask = static_cast<uint32_t>((0xFFFFFFFFull << (32 - len)));
    const uint32_t prefix = static_cast<uint32_t>(rng_.next()) & mask;
    if (!seen.insert({prefix, len}).second) continue;
    FlowEntry e;
    e.match.set(f, prefix, mask);
    // Priority = prefix length: more specific strictly higher, equal-length
    // prefixes are disjoint, so equal priority is unambiguous.
    e.priority = static_cast<uint16_t>(100 + len);
    e.actions = random_actions(later, &e.goto_table);
    t.add(e);
  }
  if (rng_.chance(1, 2)) {
    FlowEntry def;  // the /0 default
    def.priority = 50;
    def.actions = random_actions(later, &def.goto_table);
    t.add(def);
  }
}

void PipelineGen::gen_range(FlowTable& t, const std::vector<uint8_t>& later) {
  // Single non-IPv4 16-bit field with prefix-style masks and *random*
  // priorities — the shape LPM must reject (wrong field / inverted
  // priorities) but the range template takes.
  static const FieldId kFields[] = {FieldId::kTcpDst, FieldId::kTcpSrc,
                                    FieldId::kUdpDst, FieldId::kUdpSrc};
  const FieldId f = kFields[rng_.below(std::size(kFields))];
  const size_t n = rng_.range(1, opts_.max_entries_per_table / 2);
  std::set<std::pair<uint16_t, unsigned>> seen;
  std::vector<uint16_t> prios;
  for (uint16_t p = 10; p < 10 + n; ++p) prios.push_back(p);
  for (size_t i = prios.size(); i > 1; --i)
    std::swap(prios[i - 1], prios[rng_.below(i)]);
  for (size_t i = 0; i < n; ++i) {
    const unsigned len = static_cast<unsigned>(rng_.range(1, 16));
    const uint16_t mask = prefix_mask16(len);
    const uint16_t value = static_cast<uint16_t>(rng_.next()) & mask;
    if (!seen.insert({value, len}).second) continue;
    FlowEntry e;
    e.match.set(f, value, mask);
    e.priority = prios[i];  // distinct, deliberately not length-ordered
    e.actions = random_actions(later, &e.goto_table);
    t.add(e);
  }
  if (rng_.chance(1, 2)) {
    FlowEntry def;
    def.priority = 1;
    def.actions = random_actions(later, &def.goto_table);
    t.add(def);
  }
}

void PipelineGen::gen_direct_small(FlowTable& t, const std::vector<uint8_t>& later) {
  // Up to direct_code_max_entries arbitrary-mask entries with distinct
  // priorities: the shape the JIT inlines into straight-line code.
  const size_t n = rng_.range(1, 4);
  for (size_t i = 0; i < n; ++i) {
    FlowEntry e;
    const size_t n_fields = rng_.range(0, 3);
    for (size_t j = 0; j < n_fields; ++j) {
      const FieldId f = static_cast<FieldId>(rng_.below(flow::kNumFields));
      if (f == FieldId::kMetadata) continue;  // unreachable at ingress
      const uint64_t full = flow::field_full_mask(f);
      uint64_t mask = full;
      if (rng_.chance(1, 3)) {
        mask = rng_.next() & full;  // arbitrary sparse mask
        if (mask == 0) mask = full;
      }
      e.match.set(f, rng_.next() & full, mask);
    }
    e.priority = static_cast<uint16_t>(200 - i * 10);  // distinct
    e.actions = random_actions(later, &e.goto_table);
    t.add(e);
  }
}

void PipelineGen::gen_tuple_space(FlowTable& t, const std::vector<uint8_t>& later) {
  // Mixed mask sets, overlapping matches, distinct priorities: the
  // linked-list / tuple-space fallback shape.
  const size_t n = rng_.range(2, opts_.max_entries_per_table / 2);
  static const FieldId kPool[] = {FieldId::kInPort, FieldId::kEthDst,
                                  FieldId::kEthSrc, FieldId::kEthType,
                                  FieldId::kIpSrc,  FieldId::kIpDst,
                                  FieldId::kIpProto, FieldId::kTcpDst,
                                  FieldId::kUdpDst, FieldId::kVlanVid};
  for (size_t i = 0; i < n; ++i) {
    FlowEntry e;
    const size_t n_fields = rng_.range(0, 4);
    for (size_t j = 0; j < n_fields; ++j) {
      const FieldId f = kPool[rng_.below(std::size(kPool))];
      const uint64_t full = flow::field_full_mask(f);
      uint64_t mask = full;
      switch (rng_.below(3)) {
        case 0: break;
        case 1: {
          const unsigned width = flow::field_info(f).width_bits;
          const unsigned len = static_cast<unsigned>(rng_.range(1, width));
          mask = (full >> (width - len)) << (width - len);
          break;
        }
        default:
          mask = rng_.next() & full;
          if (mask == 0) mask = full;
          break;
      }
      e.match.set(f, rng_.next() & full, mask);
    }
    e.priority = static_cast<uint16_t>(1000 + i);  // distinct
    e.actions = random_actions(later, &e.goto_table);
    t.add(e);
  }
}

void PipelineGen::gen_acl(FlowTable& t) {
  // Snort-like 5-tuple ACLs: the decomposition trigger (Fig. 6 shapes).
  const size_t n = rng_.range(8, opts_.max_entries_per_table);
  const flow::FlowTable acls = uc::make_snort_like_acls(n, rng_.next());
  for (const FlowEntry& e : acls.entries()) t.add(e);
}

GeneratedWorkload PipelineGen::next_pipeline() {
  GeneratedWorkload wl;
  const uint32_t n_tables =
      static_cast<uint32_t>(rng_.range(opts_.min_tables, opts_.max_tables));

  wl.cfg.enable_jit = true;  // the oracle flips this knob itself
  wl.cfg.specialize_parser = rng_.chance(3, 4);
  wl.cfg.enable_decomposition = opts_.allow_decomposition && rng_.chance(1, 2);
  wl.cfg.enable_range_template = rng_.chance(7, 8);
  if (rng_.chance(1, 8)) wl.cfg.force_template = core::TableTemplate::kLinkedList;
  // Drop the cuckoo threshold well below the generated table sizes on some
  // pipelines so campaigns exercise the resizable cuckoo template (default
  // 32768 would never trigger at fuzz scale) — including growth, reseed and
  // incremental-rehash paths under the differential oracle.
  if (!wl.cfg.force_template.has_value() && rng_.chance(1, 4))
    wl.cfg.cuckoo_min_entries = 16;

  wl.description = "pipeline#" + std::to_string(n_generated_++) + " [";
  for (uint32_t id = 0; id < n_tables; ++id) {
    std::vector<uint8_t> later;
    for (uint32_t j = id + 1; j < n_tables; ++j)
      later.push_back(static_cast<uint8_t>(j));
    FlowTable& t = wl.pipeline.table(static_cast<uint8_t>(id));
    t.set_miss_policy(rng_.chance(1, 4) ? FlowTable::MissPolicy::kController
                                        : FlowTable::MissPolicy::kDrop);
    const char* shape = "";
    switch (rng_.below(6)) {
      case 0: gen_exact_hash(t, later); shape = "hash"; break;
      case 1: gen_lpm(t, later); shape = "lpm"; break;
      case 2: gen_range(t, later); shape = "range"; break;
      case 3: gen_direct_small(t, later); shape = "direct"; break;
      case 4: gen_tuple_space(t, later); shape = "tuple"; break;
      default: gen_acl(t); shape = "acl"; break;
    }
    wl.description += std::string(id ? "," : "") + shape + ":" +
                      std::to_string(t.size());
  }
  wl.description += "]";
  if (wl.cfg.enable_decomposition) wl.description += " decompose";
  if (!wl.cfg.specialize_parser) wl.description += " full-parser";
  if (wl.cfg.force_template.has_value()) wl.description += " force-ll";
  if (wl.cfg.cuckoo_min_entries == 16) wl.description += " cuckoo";
  return wl;
}

std::vector<net::FlowSpec> PipelineGen::traffic(const GeneratedWorkload& wl,
                                                size_t n_packets, size_t n_flows) {
  // Flow pool: hit_fraction of the flows synthesized from installed entries
  // (any table — deep-table shapes exercise goto re-classification), the rest
  // random frames.  Packets then sample the pool uniformly.
  std::vector<const FlowEntry*> all_entries;
  for (const FlowTable& t : wl.pipeline.tables())
    for (const FlowEntry& e : t.entries()) all_entries.push_back(&e);

  if (n_flows == 0) n_flows = 1;
  std::vector<net::FlowSpec> pool;
  pool.reserve(n_flows);
  for (size_t i = 0; i < n_flows; ++i) {
    if (!all_entries.empty() && rng_.chance(opts_.hit_num, opts_.hit_den)) {
      const FlowEntry* e = all_entries[rng_.below(all_entries.size())];
      pool.push_back(spec_for_match(e->match, rng_));
    } else {
      pool.push_back(spec_for_match(Match{}, rng_));  // random parseable frame
    }
  }

  std::vector<net::FlowSpec> out;
  out.reserve(n_packets);
  for (size_t i = 0; i < n_packets; ++i) out.push_back(pool[rng_.below(pool.size())]);
  return out;
}

}  // namespace esw::testing
