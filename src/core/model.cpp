#include "core/model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace esw::core {

perf::CostModel derive_model(const Eswitch& sw, const std::vector<uint8_t>& path) {
  perf::CostModel m;
  m.add_pkt_io();
  m.add_parser();
  for (const uint8_t id : path) {
    const int32_t slot = sw.root_slot(id);
    ESW_CHECK_MSG(slot >= 0, "table not compiled");
    const CompiledTable* impl = sw.datapath().impl(slot);
    ESW_CHECK_MSG(impl != nullptr, "table has no implementation");
    const std::string name = "table " + std::to_string(id);
    switch (impl->kind()) {
      case TableTemplate::kDirectCode:
        m.add_direct_stage(name + " (direct)", static_cast<uint32_t>(impl->size()));
        break;
      case TableTemplate::kCompoundHash:
        m.add_hash_stage(name + " (hash)");
        break;
      case TableTemplate::kCuckooHash:
        // Same probe shape as the compound hash: key hash + bucket walk.
        m.add_hash_stage(name + " (cuckoo)");
        break;
      case TableTemplate::kLpm:
        m.add_lpm_stage(name + " (lpm)");
        break;
      case TableTemplate::kRange: {
        const auto* rt = static_cast<const RangeTemplateTable*>(impl);
        const uint32_t steps = rt->num_intervals() <= 1
                                   ? 1
                                   : static_cast<uint32_t>(std::ceil(
                                         std::log2(rt->num_intervals())));
        m.add_range_stage(name + " (range)", steps);
        break;
      }
      case TableTemplate::kLinkedList: {
        const auto* ll = static_cast<const LinkedListTable*>(impl);
        m.add_linked_list_stage(name + " (linked-list)",
                                static_cast<uint32_t>(ll->num_tuples()));
        break;
      }
    }
  }
  m.add_action_stage();
  return m;
}

std::vector<uint8_t> derive_hot_path(const Eswitch& sw, double min_fraction) {
  std::vector<uint8_t> path;
  const auto& dp = sw.datapath();
  const double packets = static_cast<double>(dp.stats().packets);
  if (packets <= 0) return path;
  for (const auto& t : sw.pipeline().tables()) {
    const int32_t slot = sw.root_slot(t.id());
    if (slot < 0) continue;
    const double lookups = static_cast<double>(dp.table_stats(slot).lookups);
    if (lookups / packets >= min_fraction) path.push_back(t.id());
  }
  return path;
}

}  // namespace esw::core
