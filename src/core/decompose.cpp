#include "core/decompose.hpp"

#include <map>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "flow/actions.hpp"

namespace esw::core {

using flow::FieldId;
using flow::Match;

namespace {

using Entry = DecomposedPipeline::Entry;
using Table = DecomposedPipeline::Table;

class Decomposer {
 public:
  explicit Decomposer(uint32_t max_tables) : max_tables_(max_tables) {}

  // Returns the root index, or -1 when the budget was exceeded.
  int32_t run(std::vector<Entry> work, DecomposedPipeline& out) {
    out_ = &out;
    overflow_ = false;
    const int32_t root = emit(std::move(work));
    return overflow_ ? -1 : root;
  }

 private:
  // Serialize a working table for sub-table sharing (identical residual
  // tables collapse into one node, keeping the output a DAG).
  static std::string fingerprint(const std::vector<Entry>& entries) {
    std::ostringstream os;
    for (const Entry& e : entries) {
      os << e.match.to_string() << '#' << e.priority << '#' << to_string(e.actions)
         << '#' << e.logical_goto << ';';
    }
    return os.str();
  }

  // Pivot eligibility: a field is a pivot candidate when every entry that
  // matches on it does so exactly (full mask).  Returns kCount if none.
  static FieldId pick_pivot(const std::vector<Entry>& entries) {
    uint32_t used = 0;
    for (const Entry& e : entries) used |= e.match.present_bits();
    if (__builtin_popcount(used) <= 1) return FieldId::kCount;  // already a leaf

    FieldId best = FieldId::kCount;
    size_t best_diversity = SIZE_MAX;
    for (uint32_t bits = used; bits != 0; bits &= bits - 1) {
      const FieldId f = static_cast<FieldId>(__builtin_ctz(bits));
      const uint64_t full = flow::field_full_mask(f);
      bool exact_only = true;
      std::map<uint64_t, int> keys;  // Sp
      for (const Entry& e : entries) {
        if (!e.match.has(f)) continue;
        if (e.match.mask(f) != full) {
          exact_only = false;
          break;
        }
        keys.emplace(e.match.value(f), 0);
      }
      if (!exact_only || keys.empty()) continue;
      if (keys.size() < best_diversity) {
        best_diversity = keys.size();
        best = f;
      }
    }
    return best;
  }

  int32_t emit(std::vector<Entry> entries) {
    if (overflow_) return -1;
    const std::string fp = fingerprint(entries);
    if (const auto it = memo_.find(fp); it != memo_.end()) return it->second;

    const FieldId pivot = pick_pivot(entries);
    if (pivot == FieldId::kCount) {
      // Leaf: emit verbatim (single-field or irreducible).
      const int32_t idx = alloc_table();
      if (idx < 0) return -1;
      out_->tables[idx].entries = std::move(entries);
      memo_.emplace(fp, idx);
      return idx;
    }

    // Step (1)-(2): distinct keys of the pivot column, in first-appearance
    // order to keep output deterministic.
    std::vector<uint64_t> keys;
    for (const Entry& e : entries)
      if (e.match.has(pivot)) {
        const uint64_t v = e.match.value(pivot);
        bool seen = false;
        for (uint64_t k : keys) seen |= (k == v);
        if (!seen) keys.push_back(v);
      }

    // Reserve the router table slot first so the root is table 0.
    const int32_t router = alloc_table();
    if (router < 0) return -1;
    memo_.emplace(fp, router);

    // Step (4): per-key residual tables; wildcard-in-pivot rules are
    // replicated into every branch (set-pruning), preserving priority order.
    std::vector<Entry> wildcards;
    for (const Entry& e : entries)
      if (!e.match.has(pivot)) wildcards.push_back(e);

    std::vector<std::pair<uint64_t, int32_t>> branches;
    for (const uint64_t key : keys) {
      std::vector<Entry> sub;
      for (const Entry& e : entries) {
        if (e.match.has(pivot)) {
          if (e.match.value(pivot) != key) continue;
          Entry stripped = e;
          stripped.match.clear(pivot);
          sub.push_back(std::move(stripped));
        } else {
          sub.push_back(e);
        }
      }
      const int32_t sub_idx = emit(std::move(sub));
      if (sub_idx < 0) return -1;
      branches.emplace_back(key, sub_idx);
    }
    int32_t miss_idx = -1;
    if (!wildcards.empty()) {
      miss_idx = emit(std::move(wildcards));
      if (miss_idx < 0) return -1;
    }

    // Router: exact entries on the pivot (disjoint), catch-all last.
    Table& rt = out_->tables[router];
    for (const auto& [key, sub_idx] : branches) {
      Entry e;
      e.match.set(pivot, key);
      e.priority = 2;
      e.internal_next = sub_idx;
      rt.entries.push_back(std::move(e));
    }
    if (miss_idx >= 0) {
      Entry e;
      e.priority = 1;
      e.internal_next = miss_idx;
      rt.entries.push_back(std::move(e));
    }
    return router;
  }

  int32_t alloc_table() {
    if (out_->tables.size() >= max_tables_) {
      overflow_ = true;
      return -1;
    }
    out_->tables.emplace_back();
    return static_cast<int32_t>(out_->tables.size() - 1);
  }

  uint32_t max_tables_;
  DecomposedPipeline* out_ = nullptr;
  std::map<std::string, int32_t> memo_;
  bool overflow_ = false;
};

DecomposedPipeline passthrough(const flow::FlowTable& input) {
  DecomposedPipeline out;
  out.tables.emplace_back();
  for (const flow::FlowEntry& fe : input.entries())
    out.tables[0].entries.push_back(
        {fe.match, fe.priority, fe.actions, fe.goto_table, -1});
  return out;
}

}  // namespace

DecomposedPipeline decompose(const flow::FlowTable& input, uint32_t max_tables) {
  std::vector<Entry> work;
  work.reserve(input.size());
  for (const flow::FlowEntry& fe : input.entries())
    work.push_back({fe.match, fe.priority, fe.actions, fe.goto_table, -1});

  DecomposedPipeline out;
  Decomposer d(max_tables);
  const int32_t root = d.run(std::move(work), out);
  if (root < 0) return passthrough(input);
  ESW_CHECK(root == 0);  // router/leaf allocated first
  return out;
}

}  // namespace esw::core
