// The four flow-table templates of the paper's Fig. 4 and their fallback
// chain: direct code → compound hash → LPM → linked list.
#pragma once

#include <cstdint>

namespace esw::core {

enum class TableTemplate : uint8_t {
  kDirectCode,    // machine code assembled on-the-fly; any match; few entries
  kCompoundHash,  // perfect-hash exact match under a global mask
  kCuckooHash,    // resizable reader-safe cuckoo exact match (million-flow
                  // variant of the compound hash; same prerequisite)
  kLpm,           // DIR-24-8 longest prefix match
  kRange,         // flattened interval search (the paper's proposed "range
                  // search for port matches" extension template)
  kLinkedList,    // tuple space search; universal fallback
};

inline const char* to_string(TableTemplate t) {
  switch (t) {
    case TableTemplate::kDirectCode:
      return "direct-code";
    case TableTemplate::kCompoundHash:
      return "compound-hash";
    case TableTemplate::kCuckooHash:
      return "cuckoo-hash";
    case TableTemplate::kLpm:
      return "lpm";
    case TableTemplate::kRange:
      return "range";
    case TableTemplate::kLinkedList:
      return "linked-list";
  }
  return "?";
}

/// Fig. 4's fallback order, extended with the range template between LPM and
/// the linked list.  The cuckoo variant shares the compound hash's
/// prerequisite, so it degrades to the fixed-capacity hash first.
inline TableTemplate fallback_of(TableTemplate t) {
  switch (t) {
    case TableTemplate::kDirectCode:
      return TableTemplate::kCompoundHash;
    case TableTemplate::kCuckooHash:
      return TableTemplate::kCompoundHash;
    case TableTemplate::kCompoundHash:
      return TableTemplate::kLpm;
    case TableTemplate::kLpm:
      return TableTemplate::kRange;
    default:
      return TableTemplate::kLinkedList;
  }
}

}  // namespace esw::core
