// Pipeline compilation helpers: template selection + construction for one
// (sub)table, parser-plan derivation for the whole pipeline, and the
// whole-pipeline fusion planner (ROADMAP item 3).
#pragma once

#include <array>
#include <memory>
#include <string>

#include "core/analysis.hpp"
#include "core/compiled_table.hpp"
#include "core/datapath.hpp"
#include "flow/pipeline.hpp"

namespace esw::core {

/// Builds the implementation for one table's entries according to analysis
/// (honoring cfg.force_template when its prerequisite holds).  Reports the
/// chosen template via `chosen_out` when non-null.  A specialized build that
/// exhausts its resource budget (tbl8 groups, LPM result slots) degrades to
/// the linked-list template — the infallible bottom of Fig. 4's fallback
/// chain — and sets *fell_back; only a linked-list build failure propagates.
std::unique_ptr<CompiledTable> build_table_impl(const std::vector<BuildEntry>& entries,
                                                const CompilerConfig& cfg, BuildCtx& ctx,
                                                TableTemplate* chosen_out = nullptr,
                                                bool* fell_back = nullptr);

/// The minimal parser plan covering every matched field and every packet-
/// mutating action in the pipeline — the parser-template specialization of
/// §3.1.  With cfg.specialize_parser == false, returns the full L2–L4 plan.
proto::ParserPlan compute_parser_plan(const flow::Pipeline& pl, const CompilerConfig& cfg);

/// Plan needed for a given ProtoBit requirement set.
proto::ParserPlan plan_for_requirements(uint32_t required);

/// ProtoBits an action list needs parsed (set-field targets, checksum-fixup
/// dependencies, dec-TTL).
uint32_t action_proto_requirements(const flow::ActionList& actions);

/// Outcome of one fusion-planning pass over the steady-state pipeline.
struct FusionResult {
  /// The plan to publish, or nullptr: either the pipeline is not fusable
  /// (why_not says why) or the machine compile failed (machine_failed) —
  /// both degrade to the staged walk.
  std::unique_ptr<FusedPipeline> fused;
  /// The currently published plan is already exact (same fingerprint):
  /// skip the republish entirely.
  bool unchanged = false;
  /// Machine code was wanted but ExecBuffer refused the mapping (the
  /// jit.exec_map edge) — eligible for the bounded re-fusion retry.
  bool machine_failed = false;
  std::string why_not;
};

/// Decides fusability and builds the fused plan for the pipeline's current
/// compiled state.  Fusability rules: fusion enabled, non-empty pipeline, no
/// decomposed logical tables (their goto graph lives in private sub-slots),
/// every table's root slot published with a live impl, and the datapath
/// start pointing at the first table.  Conntrack hooks and controller miss
/// policies ARE fusable — they ride the chunk's pre/post stages.
///
/// When `prev` (the currently published plan) is passed: an identical
/// fingerprint short-circuits to `unchanged`, and an identical direct-code
/// member set (program_key) reuses the previous machine program instead of
/// re-emitting — churn that only touched non-direct-code tables (hash
/// clone-swaps, in-place LPM) republishes the plan without running the JIT.
FusionResult fuse_pipeline(const flow::Pipeline& pl, const CompiledDatapath& dp,
                           const GotoMap& goto_map,
                           const std::array<bool, 256>& decomposed,
                           const CompilerConfig& cfg, const FusedPipeline* prev);

}  // namespace esw::core
