// Pipeline compilation helpers: template selection + construction for one
// (sub)table, and parser-plan derivation for the whole pipeline.
#pragma once

#include <memory>

#include "core/analysis.hpp"
#include "core/compiled_table.hpp"
#include "flow/pipeline.hpp"

namespace esw::core {

/// Builds the implementation for one table's entries according to analysis
/// (honoring cfg.force_template when its prerequisite holds).  Reports the
/// chosen template via `chosen_out` when non-null.  A specialized build that
/// exhausts its resource budget (tbl8 groups, LPM result slots) degrades to
/// the linked-list template — the infallible bottom of Fig. 4's fallback
/// chain — and sets *fell_back; only a linked-list build failure propagates.
std::unique_ptr<CompiledTable> build_table_impl(const std::vector<BuildEntry>& entries,
                                                const CompilerConfig& cfg, BuildCtx& ctx,
                                                TableTemplate* chosen_out = nullptr,
                                                bool* fell_back = nullptr);

/// The minimal parser plan covering every matched field and every packet-
/// mutating action in the pipeline — the parser-template specialization of
/// §3.1.  With cfg.specialize_parser == false, returns the full L2–L4 plan.
proto::ParserPlan compute_parser_plan(const flow::Pipeline& pl, const CompilerConfig& cfg);

/// Plan needed for a given ProtoBit requirement set.
proto::ParserPlan plan_for_requirements(uint32_t required);

/// ProtoBits an action list needs parsed (set-field targets, checksum-fixup
/// dependencies, dec-TTL).
uint32_t action_proto_requirements(const flow::ActionList& actions);

}  // namespace esw::core
