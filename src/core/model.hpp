// Automatic performance-model derivation — the §5 future-work item realized:
// "ESWITCH could be easily taught to derive such models automatically, by
// programmatically composing template model atoms".
//
// Given a compiled switch and a pipeline path (sequence of logical table
// ids), composes the Fig. 20 atoms according to the templates the compiler
// actually chose, yielding the same best/worst-case throughput bounds the
// paper derives by hand for the gateway (§4.4).  derive_hot_path() extracts
// the dominant path from runtime per-table statistics after a profiling run.
#pragma once

#include <vector>

#include "core/eswitch.hpp"
#include "perf/costmodel.hpp"

namespace esw::core {

/// Composes a model for packets traversing `path` (logical table ids, in
/// order).  Tables must exist and be compiled.
perf::CostModel derive_model(const Eswitch& sw, const std::vector<uint8_t>& path);

/// The logical tables that served at least `min_fraction` of processed
/// packets (per datapath statistics), in id order — the "hot path" to model.
std::vector<uint8_t> derive_hot_path(const Eswitch& sw, double min_fraction = 0.5);

}  // namespace esw::core
