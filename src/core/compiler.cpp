#include "core/compiler.hpp"

#include "proto/headers.hpp"

namespace esw::core {

using flow::FieldId;

std::unique_ptr<CompiledTable> build_table_impl(const std::vector<BuildEntry>& entries,
                                                const CompilerConfig& cfg, BuildCtx& ctx,
                                                TableTemplate* chosen_out,
                                                bool* fell_back) {
  AnalysisResult ar = analyze_entries(entries, cfg);

  // A forced template only sticks when its prerequisite actually holds.
  flow::Match mask_template;
  bool has_catch_all = false;
  FieldId lpm_field = FieldId::kCount;
  FieldId range_field = FieldId::kCount;
  switch (ar.chosen) {
    case TableTemplate::kCompoundHash:
      if (!hash_prerequisite(entries, &mask_template, &has_catch_all))
        ar.chosen = TableTemplate::kLinkedList;
      break;
    case TableTemplate::kLpm:
      if (!lpm_prerequisite(entries, &lpm_field))
        ar.chosen = TableTemplate::kLinkedList;
      break;
    case TableTemplate::kRange:
      if (!range_prerequisite(entries, &range_field))
        ar.chosen = TableTemplate::kLinkedList;
      break;
    default:
      break;
  }

  std::unique_ptr<CompiledTable> impl;
  try {
    switch (ar.chosen) {
      case TableTemplate::kDirectCode:
        impl = DirectCodeTable::build(entries, ctx, cfg.enable_jit);
        break;
      case TableTemplate::kCompoundHash:
        impl = HashTemplateTable::build(entries, mask_template, ctx);
        break;
      case TableTemplate::kLpm:
        impl = LpmTemplateTable::build(entries, lpm_field, ctx, cfg.lpm_max_tbl8_groups);
        break;
      case TableTemplate::kRange:
        impl = RangeTemplateTable::build(entries, range_field, ctx);
        break;
      case TableTemplate::kLinkedList:
        impl = LinkedListTable::build(entries, ctx);
        break;
    }
  } catch (const CheckError&) {
    // A specialized build ran out of its resource (tbl8 budget, result-table
    // overflow).  The linked-list template has no such budgets — take the
    // bottom of Fig. 4's chain instead of aborting the update.  A genuine
    // linked-list build failure is a programming error and propagates.
    if (ar.chosen == TableTemplate::kLinkedList) throw;
    ar.chosen = TableTemplate::kLinkedList;
    impl = LinkedListTable::build(entries, ctx);
    if (fell_back != nullptr) *fell_back = true;
  }
  if (chosen_out != nullptr) *chosen_out = ar.chosen;
  return impl;
}

proto::ParserPlan plan_for_requirements(uint32_t required) {
  using namespace esw::proto;
  constexpr uint32_t kL3Bits = kProtoIpv4 | kProtoArp | kProtoTcp | kProtoUdp | kProtoIcmp;
  constexpr uint32_t kL4Bits = kProtoTcp | kProtoUdp | kProtoIcmp;
  proto::ParserPlan plan;
  plan.need_l4 = (required & kL4Bits) != 0;
  plan.need_l3 = plan.need_l4 || (required & kL3Bits) != 0;
  return plan;
}

uint32_t action_proto_requirements(const flow::ActionList& actions) {
  using namespace esw::proto;
  uint32_t required = 0;
  for (const flow::Action& a : actions) {
    if (a.type == flow::ActionType::kSetField) {
      required |= flow::field_info(a.field).proto_required;
      // Rewriting IP addresses perturbs the TCP/UDP pseudo-header checksum:
      // the datapath must parse L4 to fix it up, even if nothing matches L4.
      if (a.field == flow::FieldId::kIpSrc || a.field == flow::FieldId::kIpDst)
        required |= kProtoTcp;
    }
    if (a.type == flow::ActionType::kDecTtl) required |= kProtoIpv4;
    // Conntrack commits key on the full five-tuple; the datapath must parse
    // L4 even when no rule matches transport fields.
    if (a.type == flow::ActionType::kCtCommit) required |= kProtoIpv4 | kProtoTcp;
  }
  return required;
}

proto::ParserPlan compute_parser_plan(const flow::Pipeline& pl,
                                      const CompilerConfig& cfg) {
  // A conntrack-enabled switch keys every packet on the five-tuple in the
  // pre-stage, so parser specialization below L4 is off the table.
  if (!cfg.specialize_parser || cfg.ct.enabled) return proto::ParserPlan::full();

  uint32_t required = 0;
  for (const flow::FlowTable& t : pl.tables()) {
    for (const flow::FlowEntry& e : t.entries()) {
      required |= e.match.proto_required();
      required |= action_proto_requirements(e.actions);
    }
  }
  return plan_for_requirements(required);
}

}  // namespace esw::core
