#include "core/compiler.hpp"

#include "proto/headers.hpp"

namespace esw::core {

using flow::FieldId;

std::unique_ptr<CompiledTable> build_table_impl(const std::vector<BuildEntry>& entries,
                                                const CompilerConfig& cfg, BuildCtx& ctx,
                                                TableTemplate* chosen_out,
                                                bool* fell_back) {
  AnalysisResult ar = analyze_entries(entries, cfg);

  // A forced template only sticks when its prerequisite actually holds.
  flow::Match mask_template;
  bool has_catch_all = false;
  FieldId lpm_field = FieldId::kCount;
  FieldId range_field = FieldId::kCount;
  switch (ar.chosen) {
    case TableTemplate::kCompoundHash:
    case TableTemplate::kCuckooHash:  // same prerequisite as the compound hash
      if (!hash_prerequisite(entries, &mask_template, &has_catch_all))
        ar.chosen = TableTemplate::kLinkedList;
      break;
    case TableTemplate::kLpm:
      if (!lpm_prerequisite(entries, &lpm_field))
        ar.chosen = TableTemplate::kLinkedList;
      break;
    case TableTemplate::kRange:
      if (!range_prerequisite(entries, &range_field))
        ar.chosen = TableTemplate::kLinkedList;
      break;
    default:
      break;
  }

  std::unique_ptr<CompiledTable> impl;
  try {
    switch (ar.chosen) {
      case TableTemplate::kDirectCode:
        impl = DirectCodeTable::build(entries, ctx, cfg.enable_jit);
        break;
      case TableTemplate::kCompoundHash:
        impl = HashTemplateTable::build(entries, mask_template, ctx);
        break;
      case TableTemplate::kCuckooHash:
        impl = CuckooTemplateTable::build(entries, mask_template, ctx);
        break;
      case TableTemplate::kLpm:
        impl = LpmTemplateTable::build(entries, lpm_field, ctx, cfg.lpm_max_tbl8_groups);
        break;
      case TableTemplate::kRange:
        impl = RangeTemplateTable::build(entries, range_field, ctx);
        break;
      case TableTemplate::kLinkedList:
        impl = LinkedListTable::build(entries, ctx);
        break;
    }
  } catch (const CheckError&) {
    // A specialized build ran out of its resource (tbl8 budget, result-table
    // overflow).  The linked-list template has no such budgets — take the
    // bottom of Fig. 4's chain instead of aborting the update.  A genuine
    // linked-list build failure is a programming error and propagates.
    if (ar.chosen == TableTemplate::kLinkedList) throw;
    ar.chosen = TableTemplate::kLinkedList;
    impl = LinkedListTable::build(entries, ctx);
    if (fell_back != nullptr) *fell_back = true;
  }
  if (chosen_out != nullptr) *chosen_out = ar.chosen;
  return impl;
}

proto::ParserPlan plan_for_requirements(uint32_t required) {
  using namespace esw::proto;
  constexpr uint32_t kL3Bits = kProtoIpv4 | kProtoArp | kProtoTcp | kProtoUdp | kProtoIcmp;
  constexpr uint32_t kL4Bits = kProtoTcp | kProtoUdp | kProtoIcmp;
  proto::ParserPlan plan;
  plan.need_l4 = (required & kL4Bits) != 0;
  plan.need_l3 = plan.need_l4 || (required & kL3Bits) != 0;
  return plan;
}

uint32_t action_proto_requirements(const flow::ActionList& actions) {
  using namespace esw::proto;
  uint32_t required = 0;
  for (const flow::Action& a : actions) {
    if (a.type == flow::ActionType::kSetField) {
      required |= flow::field_info(a.field).proto_required;
      // Rewriting IP addresses perturbs the TCP/UDP pseudo-header checksum:
      // the datapath must parse L4 to fix it up, even if nothing matches L4.
      if (a.field == flow::FieldId::kIpSrc || a.field == flow::FieldId::kIpDst)
        required |= kProtoTcp;
    }
    if (a.type == flow::ActionType::kDecTtl) required |= kProtoIpv4;
    // Conntrack commits key on the full five-tuple; the datapath must parse
    // L4 even when no rule matches transport fields.
    if (a.type == flow::ActionType::kCtCommit) required |= kProtoIpv4 | kProtoTcp;
  }
  return required;
}

namespace {

// FNV-1a over a 64-bit word — the plan fingerprints below only need cheap,
// deterministic identity, not cryptographic strength.
uint64_t fnv1a64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}
constexpr uint64_t kFnvBasis = 14695981039346656037ull;

}  // namespace

FusionResult fuse_pipeline(const flow::Pipeline& pl, const CompiledDatapath& dp,
                           const GotoMap& goto_map,
                           const std::array<bool, 256>& decomposed,
                           const CompilerConfig& cfg, const FusedPipeline* prev) {
  FusionResult res;
  if (!cfg.enable_fusion) {
    res.why_not = "fusion disabled";
    return res;
  }
  if (pl.tables().empty()) {
    res.why_not = "empty pipeline";
    return res;
  }

  auto fused = std::make_unique<FusedPipeline>();
  fused->stage_of_slot.assign(static_cast<size_t>(dp.num_slots()), -1);
  fused->stages.reserve(pl.tables().size());
  uint64_t fingerprint = kFnvBasis;
  uint64_t program_key = kFnvBasis;

  // Stages in pipeline order (tables are sorted by id, and the control plane
  // validates goto_table > table_id, so the walk order is a forward DAG).
  for (const flow::FlowTable& t : pl.tables()) {
    const uint8_t id = t.id();
    if (decomposed[id]) {
      res.why_not = "decomposed logical table";
      return res;
    }
    const int32_t slot = goto_map[id];
    if (slot < 0 || slot >= dp.num_slots()) {
      res.why_not = "table without a trampoline slot";
      return res;
    }
    const CompiledTable* impl = dp.impl(slot);
    if (impl == nullptr) {
      res.why_not = "table without a compiled impl";
      return res;
    }
    FusedPipeline::Stage st;
    st.slot = slot;
    st.impl = impl;
    st.miss = t.miss_policy();
    st.want_prefetch =
        impl->memory_bytes() >= CompiledDatapath::kPrefetchMinBytes;
    fused->stage_of_slot[static_cast<size_t>(slot)] =
        static_cast<int32_t>(fused->stages.size());
    const bool is_dc = impl->kind() == TableTemplate::kDirectCode;
    fingerprint = fnv1a64(fingerprint, static_cast<uint64_t>(slot));
    fingerprint = fnv1a64(fingerprint, reinterpret_cast<uint64_t>(impl));
    fingerprint = fnv1a64(fingerprint, static_cast<uint64_t>(st.miss));
    // The program key tracks only what the emitted code depends on: the
    // slot->stage topology and the direct-code members' entry chains.
    program_key = fnv1a64(program_key, static_cast<uint64_t>(slot));
    program_key = fnv1a64(program_key,
                          is_dc ? reinterpret_cast<uint64_t>(impl) : 0);
    fused->stages.push_back(st);
  }
  if (dp.start() < 0 ||
      static_cast<size_t>(dp.start()) >= fused->stage_of_slot.size() ||
      fused->stage_of_slot[static_cast<size_t>(dp.start())] != 0) {
    res.why_not = "start slot is not the first table";
    return res;
  }
  fused->start_stage = 0;
  fingerprint = fnv1a64(fingerprint, static_cast<uint64_t>(fused->stages.size()));
  program_key = fnv1a64(program_key, static_cast<uint64_t>(fused->stages.size()));
  fused->fingerprint = fingerprint;
  fused->program_key = program_key;

  if (prev != nullptr && prev->fingerprint == fingerprint) {
    // The published plan still references exactly these impls (retired impls
    // cannot have been freed before the republish decision), so it is exact.
    res.unchanged = true;
    return res;
  }

  // Machine members: every direct-code stage, degraded-to-interpreter ones
  // included — the fused emit is a fresh exec-map attempt of its own.
  if (cfg.enable_jit && jit::ExecBuffer::supported()) {
    std::vector<jit::FusedProgram::Member> members;
    for (size_t i = 0; i < fused->stages.size(); ++i) {
      const CompiledTable* impl = fused->stages[i].impl;
      if (impl->kind() != TableTemplate::kDirectCode) continue;
      members.push_back({static_cast<uint32_t>(i),
                         &static_cast<const DirectCodeTable*>(impl)->lowered()});
    }
    if (!members.empty()) {
      if (prev != nullptr && prev->program != nullptr &&
          prev->program_key == program_key) {
        fused->program = prev->program;  // churn left the members intact
      } else {
        fused->program = jit::FusedProgram::compile(
            members, fused->stage_of_slot,
            static_cast<uint32_t>(fused->stages.size()));
        if (fused->program == nullptr) {
          res.machine_failed = true;  // exec map refused — staged walk + retry
          res.why_not = "fused machine compile failed";
          return res;
        }
      }
      for (const jit::FusedProgram::Member& m : members)
        fused->stages[m.stage].entry = fused->program->entry(m.stage);
    }
  }

  res.fused = std::move(fused);
  return res;
}

proto::ParserPlan compute_parser_plan(const flow::Pipeline& pl,
                                      const CompilerConfig& cfg) {
  // A conntrack-enabled switch keys every packet on the five-tuple in the
  // pre-stage, so parser specialization below L4 is off the table.
  if (!cfg.specialize_parser || cfg.ct.enabled) return proto::ParserPlan::full();

  uint32_t required = 0;
  for (const flow::FlowTable& t : pl.tables()) {
    for (const flow::FlowEntry& e : t.entries()) {
      required |= e.match.proto_required();
      required |= action_proto_requirements(e.actions);
    }
  }
  return plan_for_requirements(required);
}

}  // namespace esw::core
