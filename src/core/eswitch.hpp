// ESWITCH — the public switch facade.
//
// Owns the control-plane pipeline (the declarative program) and the compiled
// datapath (the specialized machine-code realization), and keeps the two in
// sync the way §3.4 prescribes:
//   * templates supporting it are updated incrementally and non-destructively
//     (compound hash, LPM, linked list);
//   * the direct-code template rebuilds unconditionally;
//   * prerequisite violations rebuild the table under the next template in
//     Fig. 4's fallback chain (via re-analysis);
//   * rebuilds happen side by side and are published with one atomic
//     trampoline swap, giving per-flow-table update granularity;
//   * batches are transactional — validated against a scratch pipeline first,
//     so a bad mod in the middle leaves no partial state behind.
//
// Concurrency: apply()/apply_batch() run on one control thread while any
// number of registered packet workers process bursts.  While workers are
// registered, incremental updates take one of two reader-safe shapes —
// in place for templates that publish per-cell (LPM), or clone-update-swap
// for the rest — and every displaced object is retired through the datapath's
// epoch domain (freed only after all workers tick past the retirement; see
// common/epoch.hpp).  install() is stop-the-world: no workers registered.
//
// Decomposed logical tables occupy a fixed root slot; a rebuild appends fresh
// sub-table slots and swaps the root, so cross-table gotos stay valid.  The
// previous sub-table chain is retired behind the swap and its slots are
// recycled after the grace period.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/compiler.hpp"
#include "core/dataplane.hpp"
#include "core/datapath.hpp"
#include "flow/wire.hpp"

namespace esw::core {

class Eswitch {
 public:
  /// Packet-worker execution context (see CompiledDatapath::Worker).
  using Worker = CompiledDatapath::Worker;

  explicit Eswitch(const CompilerConfig& cfg = CompilerConfig{});
  ~Eswitch();  // out of line: ct_ holds an incomplete type here

  /// Replaces the whole configuration and recompiles from scratch.
  /// Stop-the-world: requires no registered workers.
  void install(const flow::Pipeline& pl);

  /// Applies one flow-mod (add / modify / delete), updating the datapath
  /// incrementally where the template allows.  Throws CheckError on invalid
  /// mods, leaving all state untouched.  Safe concurrently with registered
  /// workers' process_burst.
  void apply(const flow::FlowMod& fm);

  /// Transactional batch: every mod validated against a scratch pipeline
  /// before anything is applied; dirty tables are rebuilt once and swapped
  /// atomically ("partial updates automatically rolled back").  Exactly one
  /// fusion re-plan and one epoch reclaim pass per batch, however many mods
  /// it carries.
  void apply_batch(const std::vector<flow::FlowMod>& fms);

  /// Best-effort batch for controller ingestion (the OfAgent path): applies
  /// every mod it can and reports a per-mod outcome instead of aborting the
  /// remainder — a mid-batch TABLE_FULL refuses *that* mod (one error on the
  /// wire) while the rest land.  Same once-per-batch recompile/fusion/reclaim
  /// schedule as apply_batch; never throws for per-mod failures.
  std::vector<ModStatus> apply_batch_partial(const std::vector<flow::FlowMod>& fms);

  /// Datapath fast path (scalar reference implementation, owner context).
  flow::Verdict process(net::Packet& pkt, MemTrace* trace = nullptr) {
    return dp_.process(pkt, trace);
  }
  /// Worker-context scalar path (per-hop trampoline reload, per-packet tick).
  flow::Verdict process(Worker& w, net::Packet& pkt, MemTrace* trace = nullptr) {
    return dp_.process(w, pkt, trace);
  }

  /// Datapath burst fast path: `n` packets run to completion, one verdict per
  /// packet.  Observably identical to n process() calls but amortizes parse,
  /// trampoline-load and stats overhead over the burst (see
  /// CompiledDatapath::process_burst).  Owner context — single-threaded use.
  void process_burst(net::Packet* const* pkts, uint32_t n, flow::Verdict* out) {
    dp_.process_burst(pkts, n, out);
  }
  /// Worker-context burst path — the entry concurrent packet threads use.
  void process_burst(Worker& w, net::Packet* const* pkts, uint32_t n,
                     flow::Verdict* out) {
    dp_.process_burst(w, pkts, n, out);
  }

  /// Registers a packet-worker context (control thread only; nullptr when the
  /// datapath's kMaxWorkers are active).
  Worker* register_worker() { return dp_.register_worker(); }
  /// Unregisters a worker whose thread has finished (joined).
  void unregister_worker(Worker* w) { dp_.unregister_worker(w); }
  bool has_workers() const { return dp_.has_workers(); }
  /// Forces a quiescent epoch tick for a worker that provably holds no
  /// datapath pointers (parked in backpressure) — the runtime watchdog's
  /// recovery lever against a stuck worker pinning the epoch horizon.
  void quiesce(Worker& w) { dp_.quiesce(w); }

  /// Verdict-level counters in the unified Dataplane shape, degradation and
  /// conntrack counters included.
  DataplaneStats stats() const;

  /// The connection-tracking layer, or nullptr when cfg.ct.enabled is false.
  /// Created at construction and owned for the switch's lifetime.
  state::Conntrack* conntrack() { return ct_.get(); }
  const state::Conntrack* conntrack() const { return ct_.get(); }

  const flow::Pipeline& pipeline() const { return pipeline_; }
  CompiledDatapath& datapath() { return dp_; }
  const CompiledDatapath& datapath() const { return dp_; }
  const CompilerConfig& config() const { return cfg_; }

  /// Template of a logical table's root (kLinkedList default if absent).
  TableTemplate table_template(uint8_t logical) const { return root_template_[logical]; }
  bool is_decomposed(uint8_t logical) const { return decomposed_[logical]; }
  int32_t root_slot(uint8_t logical) const { return goto_map_[logical]; }
  /// Number of decomposition-internal tables behind a logical table (0 when
  /// not decomposed).
  uint32_t decomposed_table_count(uint8_t logical) const {
    return static_cast<uint32_t>(sub_slots_[logical].size()) + decomposed_[logical];
  }

  struct UpdateStats {
    uint64_t incremental = 0;     // served by try_add/try_remove (either shape)
    uint64_t cow_swaps = 0;       // of which: clone-update-swap publications
    uint64_t table_rebuilds = 0;  // side-by-side rebuild + trampoline swap
    // Rebuilds whose re-analysis picked a *different* template than the one
    // the table ran on — the table grew (or shrank) past its shape's sweet
    // spot: exact-match hash → cuckoo at cuckoo_min_entries, small
    // direct-code → hash past direct_code_max_entries, and every fallback
    // demotion.  Wholesale install() recompiles are not re-selections.
    uint64_t template_reselections = 0;
    // Fused whole-pipeline plans actually republished (set_fused with a new
    // plan).  A batch republishes at most once however many mods it carried;
    // the PR 9 fingerprint skip keeps no-op refreshes out of this count.
    uint64_t fusion_republishes = 0;
  };
  const UpdateStats& update_stats() const { return update_stats_; }

  /// Graceful-degradation ledger: every absorbed fault is accounted here
  /// (the chaos soak audits these against the failpoint fire counts).
  struct DegradationStats {
    uint64_t jit_fallbacks = 0;    // direct-code builds landing on the interpreter
    uint64_t jit_retries = 0;      // scheduled re-JIT rebuild attempts
    uint64_t jit_recoveries = 0;   // degraded tables that regained machine code
    uint64_t template_fallbacks = 0;  // exhausted builds demoted to linked list
    uint64_t mods_refused_table_full = 0;  // adds refused at table_capacity
    // Whole-pipeline fusion (jit/fusion.hpp): a fused machine compile the
    // exec mapper refused degrades bursts to the staged walk, with the same
    // bounded-backoff retry/recovery ledger as the per-table JIT.
    uint64_t fusion_fallbacks = 0;   // fused compiles degraded to the staged walk
    uint64_t fusion_retries = 0;     // elapsed re-fusion retry windows
    uint64_t fusion_recoveries = 0;  // degraded pipelines that re-fused
  };
  const DegradationStats& degradation_stats() const { return degradation_; }
  /// Logical tables currently degraded to the interpreter and awaiting a
  /// re-JIT retry window.
  size_t degraded_jit_tables() const { return degraded_jit_.size(); }
  /// True while a fused whole-pipeline plan is published (bursts take the
  /// fused fast path; the scalar process() stays the staged reference).
  bool fused_active() const { return dp_.fused() != nullptr; }

  /// Retire/reclaim counters of the epoch-based reclamation path (the only
  /// reclamation path; the old caller-coordinated collect() is gone).
  CompiledDatapath::ReclaimStats reclaim_stats() const { return dp_.reclaim_stats(); }

 private:
  /// Pending clone-and-swap copies during a batch: each touched table is
  /// cloned once, mutated across the whole batch and published with a single
  /// trampoline swap at commit — not K clones for K mods.
  using CowMap = std::map<uint8_t, std::unique_ptr<CompiledTable>>;

  /// Logical tables whose datapath rebuild is deferred to the batch commit:
  /// each is rebuilt exactly once per batch from the final pipeline state,
  /// however many of the batch's mods touched it.  The mapped flag records
  /// whether the table was *created* by this batch (a fresh table's first
  /// build is not a template re-selection).
  using DirtySet = std::map<uint8_t, bool>;

  void compile_all();
  void rebuild_logical(uint8_t id, bool fresh_table = false);
  void refresh_start_and_plan();
  void maybe_widen_plan(const flow::FlowEntry& e);
  void apply_one(const flow::FlowMod& fm, CowMap* cow, DirtySet* dirty = nullptr);
  bool try_incremental(uint8_t table, const flow::FlowMod& fm, CowMap* cow);
  bool wants_reselection(uint8_t table) const;
  void commit_batch(CowMap& cow, const DirtySet& dirty);
  void apply_to_pipeline(flow::Pipeline& pl, const flow::FlowMod& fm) const;
  void check_capacity(const flow::Pipeline& pl, const flow::FlowMod& fm) const;
  void note_jit_state(uint8_t id, bool degraded);
  void maybe_retry_jit();
  void refresh_fusion();

  CompilerConfig cfg_;
  flow::Pipeline pipeline_;
  CompiledDatapath dp_;
  std::unique_ptr<state::Conntrack> ct_;  // attached to dp_ when cfg_.ct.enabled
  GotoMap goto_map_ = GotoMap(256, -1);
  std::array<TableTemplate, 256> root_template_{};
  std::array<bool, 256> decomposed_{};
  // Decomposition-internal (non-root) slots behind each logical table,
  // retired wholesale when the logical table rebuilds.
  std::array<std::vector<int32_t>, 256> sub_slots_{};
  UpdateStats update_stats_;
  DegradationStats degradation_;
  /// Re-JIT retry schedule per degraded logical table, in update counts
  /// (exponential backoff capped at cfg_.jit_retry_max_updates).
  struct JitRetry {
    uint64_t next_at = 0;
    uint64_t backoff = 0;
  };
  std::map<uint8_t, JitRetry> degraded_jit_;
  /// Re-fusion retry schedule after a fused machine-compile failure (same
  /// pacing knobs as the per-table schedule).  Invariant: while this is set,
  /// no fused plan is published — the early-out in refresh_fusion() is only
  /// safe because there is no stale plan whose impls churn could free.
  std::optional<JitRetry> fusion_retry_;
  uint64_t update_seq_ = 0;  // apply()/apply_batch() calls, for retry pacing
  bool installing_ = false;  // inside compile_all(): rebuilds are not re-selections
};

static_assert(Dataplane<Eswitch>, "Eswitch must satisfy the unified interface");

}  // namespace esw::core
