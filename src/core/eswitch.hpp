// ESWITCH — the public switch facade.
//
// Owns the control-plane pipeline (the declarative program) and the compiled
// datapath (the specialized machine-code realization), and keeps the two in
// sync the way §3.4 prescribes:
//   * templates supporting it are updated incrementally and non-destructively
//     (compound hash, LPM, linked list);
//   * the direct-code template rebuilds unconditionally;
//   * prerequisite violations rebuild the table under the next template in
//     Fig. 4's fallback chain (via re-analysis);
//   * rebuilds happen side by side and are published with one atomic
//     trampoline swap, giving per-flow-table update granularity;
//   * batches are transactional — validated against a scratch pipeline first,
//     so a bad mod in the middle leaves no partial state behind.
//
// Decomposed logical tables occupy a fixed root slot; a rebuild appends fresh
// sub-table slots and swaps the root, so cross-table gotos stay valid.  Stale
// sub-slots are reclaimed on the next full install().
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "core/compiler.hpp"
#include "core/dataplane.hpp"
#include "core/datapath.hpp"
#include "flow/wire.hpp"

namespace esw::core {

class Eswitch {
 public:
  explicit Eswitch(const CompilerConfig& cfg = CompilerConfig{});

  /// Replaces the whole configuration and recompiles from scratch.
  void install(const flow::Pipeline& pl);

  /// Applies one flow-mod (add / modify / delete), updating the datapath
  /// incrementally where the template allows.  Throws CheckError on invalid
  /// mods, leaving all state untouched.
  void apply(const flow::FlowMod& fm);

  /// Transactional batch: every mod validated against a scratch pipeline
  /// before anything is applied; dirty tables are rebuilt once and swapped
  /// atomically ("partial updates automatically rolled back").
  void apply_batch(const std::vector<flow::FlowMod>& fms);

  /// Datapath fast path (scalar reference implementation).
  flow::Verdict process(net::Packet& pkt, MemTrace* trace = nullptr) {
    return dp_.process(pkt, trace);
  }

  /// Datapath burst fast path: `n` packets run to completion, one verdict per
  /// packet.  Observably identical to n process() calls but amortizes parse,
  /// trampoline-load and stats overhead over the burst (see
  /// CompiledDatapath::process_burst).
  void process_burst(net::Packet* const* pkts, uint32_t n, flow::Verdict* out) {
    dp_.process_burst(pkts, n, out);
  }

  /// Verdict-level counters in the unified Dataplane shape.
  DataplaneStats stats() const {
    const CompiledDatapath::Stats& s = dp_.stats();
    return {s.packets, s.outputs, s.drops, s.to_controller};
  }

  const flow::Pipeline& pipeline() const { return pipeline_; }
  CompiledDatapath& datapath() { return dp_; }
  const CompiledDatapath& datapath() const { return dp_; }
  const CompilerConfig& config() const { return cfg_; }

  /// Template of a logical table's root (kLinkedList default if absent).
  TableTemplate table_template(uint8_t logical) const { return root_template_[logical]; }
  bool is_decomposed(uint8_t logical) const { return decomposed_[logical]; }
  int32_t root_slot(uint8_t logical) const { return goto_map_[logical]; }
  /// Number of decomposition-internal tables behind a logical table (0 when
  /// not decomposed).
  uint32_t decomposed_table_count(uint8_t logical) const {
    return decomposed_count_[logical];
  }

  struct UpdateStats {
    uint64_t incremental = 0;     // served by try_add/try_remove
    uint64_t table_rebuilds = 0;  // side-by-side rebuild + trampoline swap
  };
  const UpdateStats& update_stats() const { return update_stats_; }

  /// Frees retired compiled tables (call from the datapath owner when no
  /// process() call is in flight).
  void collect() { dp_.collect(); }

 private:
  void compile_all();
  void rebuild_logical(uint8_t id);
  void refresh_start_and_plan();
  void maybe_widen_plan(const flow::FlowEntry& e);
  static void apply_to_pipeline(flow::Pipeline& pl, const flow::FlowMod& fm);

  CompilerConfig cfg_;
  flow::Pipeline pipeline_;
  CompiledDatapath dp_;
  GotoMap goto_map_ = GotoMap(256, -1);
  std::array<TableTemplate, 256> root_template_{};
  std::array<bool, 256> decomposed_{};
  std::array<uint32_t, 256> decomposed_count_{};
  UpdateStats update_stats_;
};

static_assert(Dataplane<Eswitch>, "Eswitch must satisfy the unified interface");

}  // namespace esw::core
