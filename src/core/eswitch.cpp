#include "core/eswitch.hpp"

#include <algorithm>
#include <set>

#include "common/check.hpp"
#include "state/conntrack.hpp"

namespace esw::core {

using flow::FlowEntry;
using flow::FlowMod;
using flow::FlowTable;

Eswitch::Eswitch(const CompilerConfig& cfg) : cfg_(cfg) {
  root_template_.fill(TableTemplate::kLinkedList);
  if (cfg_.ct.enabled) {
    // The conntrack shares the datapath's epoch domain: the per-burst worker
    // tick that lets table retirements reclaim also ages out ct entries.
    ct_ = std::make_unique<state::Conntrack>(cfg_.ct, &dp_.domain());
    dp_.set_conntrack(ct_.get());
  }
}

Eswitch::~Eswitch() {
  dp_.set_conntrack(nullptr);
}

DataplaneStats Eswitch::stats() const {
  const CompiledDatapath::Stats s = dp_.stats();
  DataplaneStats out{s.packets, s.outputs, s.drops, s.to_controller};
  out.jit_fallbacks = degradation_.jit_fallbacks;
  out.mods_refused_table_full = degradation_.mods_refused_table_full;
  if (ct_ != nullptr) {
    const state::Conntrack::Stats cs = ct_->stats();
    out.ct_entries = cs.live;
    out.ct_commit_drops = cs.commit_drops;
    out.ct_evictions_forced = cs.evictions_forced;
    out.ct_expired = cs.expired;
  }
  return out;
}

void Eswitch::install(const flow::Pipeline& pl) {
  const auto err = pl.validate();
  ESW_CHECK_MSG(!err.has_value(), err.value_or(""));
  pipeline_ = pl;
  compile_all();
}

void Eswitch::compile_all() {
  installing_ = true;
  dp_.reset();
  goto_map_.assign(256, -1);
  decomposed_.fill(false);
  for (auto& v : sub_slots_) v.clear();
  degraded_jit_.clear();  // a wholesale reprogram owes the old program nothing

  // Root slots first so any goto resolves, then table bodies.
  for (const FlowTable& t : pipeline_.tables())
    goto_map_[t.id()] = dp_.add_slot(t.miss_policy());
  for (const FlowTable& t : pipeline_.tables()) rebuild_logical(t.id());
  refresh_start_and_plan();
  fusion_retry_.reset();  // the old program's degradation owes us nothing
  refresh_fusion();
  installing_ = false;
}

/// Re-plans the fused whole-pipeline fast path against the freshly published
/// compiled state.  Must run after every control-plane mutation and *before*
/// dp_.reclaim(): a published plan pins impl pointers, so any update that
/// retired one has to republish (or clear) the plan while the retiree is
/// still in its grace period.
void Eswitch::refresh_fusion() {
  if (!cfg_.enable_fusion) return;  // never published
  // Retry pacing after a fused machine-compile failure: stay staged until
  // the window elapses (no plan is published then — see fusion_retry_'s
  // invariant — so skipping the re-plan cannot strand stale pointers).
  if (fusion_retry_.has_value() && update_seq_ < fusion_retry_->next_at) return;
  const bool retrying = fusion_retry_.has_value();
  if (retrying) ++degradation_.fusion_retries;

  FusionResult r =
      fuse_pipeline(pipeline_, dp_, goto_map_, decomposed_, cfg_, dp_.fused());
  if (r.unchanged) return;
  if (r.fused == nullptr) {
    if (r.machine_failed) {
      // The exec-map edge: degrade bursts to the staged walk and schedule a
      // bounded-backoff re-fusion attempt (the PR 7 retry policy, one knob).
      ++degradation_.fusion_fallbacks;
      if (!retrying && cfg_.jit_retry_base_updates > 0) {
        fusion_retry_ = JitRetry{update_seq_ + cfg_.jit_retry_base_updates,
                                 cfg_.jit_retry_base_updates};
      } else if (retrying) {
        fusion_retry_->backoff =
            std::min<uint64_t>(fusion_retry_->backoff * 2,
                               std::max(cfg_.jit_retry_max_updates,
                                        cfg_.jit_retry_base_updates));
        fusion_retry_->next_at = update_seq_ + fusion_retry_->backoff;
      }
    } else {
      fusion_retry_.reset();  // genuinely non-fusable: nothing to retry
    }
    if (dp_.fused() != nullptr) dp_.set_fused(nullptr);
    return;
  }
  if (retrying) {
    ++degradation_.fusion_recoveries;
    fusion_retry_.reset();
  }
  ++update_stats_.fusion_republishes;
  dp_.set_fused(std::move(r.fused));
}

void Eswitch::rebuild_logical(uint8_t id, bool fresh_table) {
  const FlowTable* t = pipeline_.find_table(id);
  ESW_CHECK(t != nullptr);
  const int32_t root = goto_map_[id];
  ESW_CHECK(root >= 0);
  BuildCtx ctx{dp_.actions(), goto_map_};
  dp_.set_miss_policy(root, t->miss_policy());

  ++update_stats_.table_rebuilds;
  // Template re-selection accounting: a churn-path rebuild whose re-analysis
  // lands on a different template than the table ran on means the table
  // crossed a shape's sweet spot (or broke a prerequisite).  Wholesale
  // install() and first builds of fresh tables don't count.
  const TableTemplate prev_kind = root_template_[id];
  const auto note_reselection = [&](TableTemplate kind) {
    if (!installing_ && !fresh_table && kind != prev_kind)
      ++update_stats_.template_reselections;
  };
  // The outgoing sub-table chain (if any) becomes unreachable once the root
  // swaps below; retire it behind the swap so its slots recycle after the
  // grace period instead of leaking until the next install().
  std::vector<int32_t> stale_subs = std::move(sub_slots_[id]);
  sub_slots_[id].clear();
  decomposed_[id] = false;
  bool fell_back = false;
  bool jit_degraded = false;
  const auto note_impl = [&](const CompiledTable* impl, TableTemplate kind) {
    if (kind == TableTemplate::kDirectCode && cfg_.enable_jit &&
        !static_cast<const DirectCodeTable*>(impl)->jitted())
      jit_degraded = true;
  };

  if (cfg_.enable_decomposition &&
      analyze_table(*t, cfg_).chosen == TableTemplate::kLinkedList) {
    DecomposedPipeline d = decompose(*t, cfg_.decompose_max_tables);
    if (!d.unchanged()) {
      // Fresh slots for the sub-tables; the logical root keeps its slot so
      // cross-table gotos stay valid across the swap.
      std::vector<int32_t> slot_of(d.tables.size(), -1);
      slot_of[0] = root;
      for (size_t i = 1; i < d.tables.size(); ++i)
        slot_of[i] = dp_.add_slot(t->miss_policy());

      // Children first, root last: readers that enter through the old root
      // never see a half-published chain.
      for (size_t i = d.tables.size(); i-- > 0;) {
        std::vector<BuildEntry> entries = d.tables[i].entries;
        for (BuildEntry& e : entries)
          if (e.internal_next >= 0) e.internal_next = slot_of[e.internal_next];
        TableTemplate kind{};
        auto impl = build_table_impl(entries, cfg_, ctx, &kind, &fell_back);
        note_impl(impl.get(), kind);
        dp_.set_impl(slot_of[i], std::move(impl));
        if (i == 0) {
          note_reselection(kind);
          root_template_[id] = kind;
        }
      }
      decomposed_[id] = true;
      sub_slots_[id].assign(slot_of.begin() + 1, slot_of.end());
      for (const int32_t s : stale_subs) dp_.retire_slot(s);
      if (fell_back) ++degradation_.template_fallbacks;
      note_jit_state(id, jit_degraded);
      return;
    }
  }

  TableTemplate kind{};
  auto impl = build_table_impl(to_build_entries(*t), cfg_, ctx, &kind, &fell_back);
  note_impl(impl.get(), kind);
  dp_.set_impl(root, std::move(impl));
  note_reselection(kind);
  root_template_[id] = kind;
  for (const int32_t s : stale_subs) dp_.retire_slot(s);
  if (fell_back) ++degradation_.template_fallbacks;
  note_jit_state(id, jit_degraded);
}

/// Records whether a rebuild left the logical table on the interpreter when
/// machine code was wanted, and keeps the re-JIT retry schedule in sync: a
/// freshly degraded table gets its first retry window; a table that came back
/// (via retry or ordinary churn) leaves the schedule as a recovery.
void Eswitch::note_jit_state(uint8_t id, bool degraded) {
  const auto it = degraded_jit_.find(id);
  if (degraded) {
    ++degradation_.jit_fallbacks;
    if (it == degraded_jit_.end() && cfg_.jit_retry_base_updates > 0)
      degraded_jit_[id] = {update_seq_ + cfg_.jit_retry_base_updates,
                          cfg_.jit_retry_base_updates};
  } else if (it != degraded_jit_.end()) {
    degraded_jit_.erase(it);
    ++degradation_.jit_recoveries;
  }
}

/// Retries at most one degraded table whose backoff window has elapsed —
/// bounded work per update, no rebuild storms.  The rebuild itself updates
/// the schedule through note_jit_state (erases the entry on success).
void Eswitch::maybe_retry_jit() {
  if (degraded_jit_.empty()) return;
  int pick = -1;
  for (const auto& [id, r] : degraded_jit_) {
    if (update_seq_ >= r.next_at) {
      pick = id;
      break;
    }
  }
  if (pick < 0) return;
  if (pipeline_.find_table(static_cast<uint8_t>(pick)) == nullptr) {
    degraded_jit_.erase(static_cast<uint8_t>(pick));
    return;
  }
  ++degradation_.jit_retries;
  JitRetry& r = degraded_jit_[static_cast<uint8_t>(pick)];
  r.backoff = std::min<uint64_t>(r.backoff * 2,
                                 std::max(cfg_.jit_retry_max_updates,
                                          cfg_.jit_retry_base_updates));
  r.next_at = update_seq_ + r.backoff;
  rebuild_logical(static_cast<uint8_t>(pick));
  refresh_start_and_plan();
}

void Eswitch::refresh_start_and_plan() {
  const FlowTable* first = pipeline_.first_table();
  dp_.set_start(first != nullptr ? goto_map_[first->id()] : -1);
  dp_.set_plan(compute_parser_plan(pipeline_, cfg_));
}

void Eswitch::maybe_widen_plan(const FlowEntry& e) {
  // O(1) plan widening on the incremental path — a full recompute per update
  // would dominate at high flow-mod rates.
  const uint32_t req = e.match.proto_required() | action_proto_requirements(e.actions);
  const proto::ParserPlan needed = plan_for_requirements(req);
  proto::ParserPlan plan = dp_.plan();
  if ((needed.need_l3 && !plan.need_l3) || (needed.need_l4 && !plan.need_l4)) {
    plan.need_l3 |= needed.need_l3;
    plan.need_l4 |= needed.need_l4;
    dp_.set_plan(plan);
  }
}

/// Table-capacity admission control (cfg_.table_capacity, 0 = unbounded):
/// an add that would grow the table past the cap throws TableFullError
/// *before* any state mutates — the OpenFlow TABLE_FULL refusal shape.
/// Replacing an existing (match, priority) entry never grows the table and
/// is always admitted.
void Eswitch::check_capacity(const flow::Pipeline& pl, const FlowMod& fm) const {
  if (cfg_.table_capacity == 0 || fm.command == FlowMod::Cmd::kDelete) return;
  const FlowTable* t = pl.find_table(fm.table_id);
  if (t == nullptr || t->size() < cfg_.table_capacity) return;
  for (const FlowEntry& e : t->entries())
    if (e.priority == fm.priority && e.match == fm.match) return;
  throw TableFullError("table " + std::to_string(fm.table_id) +
                       " at capacity (" + std::to_string(cfg_.table_capacity) +
                       " entries)");
}

void Eswitch::apply_to_pipeline(flow::Pipeline& pl, const FlowMod& fm) const {
  switch (fm.command) {
    case FlowMod::Cmd::kAdd:
    case FlowMod::Cmd::kModify: {
      if (fm.goto_table != flow::kNoGoto) {
        ESW_CHECK_MSG(fm.goto_table > fm.table_id, "goto_table must go forward");
        ESW_CHECK_MSG(pl.find_table(static_cast<uint8_t>(fm.goto_table)) != nullptr,
                      "goto_table target does not exist");
      }
      check_capacity(pl, fm);
      pl.table(fm.table_id).add(flow::entry_from(fm));
      break;
    }
    case FlowMod::Cmd::kDelete: {
      if (pl.find_table(fm.table_id) != nullptr)
        pl.table(fm.table_id).remove(fm.match, fm.priority);
      break;
    }
  }
}

/// §3.4's non-destructive incremental update, in the shape the concurrency
/// mode allows:
///   * no registered workers — mutate the published impl in place (the
///     single-threaded fast path; the caller is the only thread inside the
///     datapath between its own calls);
///   * workers registered + template is reader-safe in place (LPM) — same;
///   * workers registered otherwise — clone, update the private copy, and
///     publish it with a trampoline swap; the displaced impl retires through
///     the epoch domain.  Inside a batch (`cow` non-null) the clone is made
///     once per table, accumulates every mod of the batch, and is published
///     by apply_batch with one swap.
bool Eswitch::try_incremental(uint8_t table, const FlowMod& fm, CowMap* cow) {
  const int32_t root = goto_map_[table];
  CompiledTable* published = root >= 0 ? dp_.impl_mut(root) : nullptr;
  if (published == nullptr || decomposed_[table]) return false;
  const bool is_add = fm.command == FlowMod::Cmd::kAdd;
  if (!is_add && fm.command != FlowMod::Cmd::kDelete) return false;
  BuildCtx ctx{dp_.actions(), goto_map_};

  // Resolve the mutation target: the published impl (in place), the batch's
  // pending clone, or a fresh clone.
  CompiledTable* target = published;
  std::unique_ptr<CompiledTable> fresh;
  const bool in_place = !dp_.has_workers() || published->concurrent_update_safe();
  if (!in_place) {
    const auto it = cow != nullptr ? cow->find(table) : CowMap::iterator{};
    if (cow != nullptr && it != cow->end()) {
      target = it->second.get();
    } else {
      fresh = published->clone_for_update();
      if (fresh == nullptr) return false;
      target = fresh.get();
    }
  }

  // A failed try_* leaves its target untouched, so a pending batch clone
  // stays valid and the caller falls back to a rebuild.
  if (is_add) {
    const FlowEntry e = flow::entry_from(fm);
    if (!target->try_add(e, ctx)) return false;
    maybe_widen_plan(e);
  } else {
    if (!target->try_remove(fm.match, fm.priority)) return false;
  }
  ++update_stats_.incremental;

  if (fresh != nullptr) {
    if (cow != nullptr) {
      cow->emplace(table, std::move(fresh));  // published at batch commit
    } else {
      dp_.set_impl(root, std::move(fresh));
      ++update_stats_.cow_swaps;
    }
  }
  return true;
}

/// True when an incremental update just pushed a table past its template's
/// sweet spot and a rebuild would re-select a better shape: today's one
/// trigger is a fixed-capacity compound hash crossing cuckoo_min_entries
/// (small direct-code tables crossing direct_code_max_entries re-select for
/// free — their try_add refuses, forcing the rebuild anyway).
bool Eswitch::wants_reselection(uint8_t table) const {
  if (decomposed_[table] || cfg_.force_template.has_value()) return false;
  if (root_template_[table] != TableTemplate::kCompoundHash) return false;
  if (cfg_.cuckoo_min_entries == 0) return false;
  const FlowTable* t = pipeline_.find_table(table);
  return t != nullptr && t->size() >= cfg_.cuckoo_min_entries;
}

void Eswitch::apply_one(const FlowMod& fm, CowMap* cow, DirtySet* dirty) {
  const bool new_table =
      fm.command != FlowMod::Cmd::kDelete && pipeline_.find_table(fm.table_id) == nullptr;

  // Control plane first; throws leave no trace.
  apply_to_pipeline(pipeline_, fm);

  if (fm.command == FlowMod::Cmd::kDelete && pipeline_.find_table(fm.table_id) == nullptr)
    return;  // delete on a never-created table: no-op

  if (new_table) {
    goto_map_[fm.table_id] = dp_.add_slot(pipeline_.table(fm.table_id).miss_policy());
    if (dirty != nullptr) {
      // Batch path: the slot exists (gotos resolve; readers miss on its null
      // impl until commit), the one build runs at commit from the batch's
      // final state.
      (*dirty)[fm.table_id] = true;  // created by this batch
      return;
    }
    rebuild_logical(fm.table_id, /*fresh_table=*/true);
    refresh_start_and_plan();
    return;
  }

  // A table already scheduled for a commit-time rebuild takes further batch
  // mods in the pipeline only — one rebuild per table per batch, not one per
  // failing mod.
  if (dirty != nullptr && dirty->count(fm.table_id) != 0) return;

  if (!try_incremental(fm.table_id, fm, cow)) {
    // Rebuilding from the pipeline (which already carries this batch's mods
    // for the table) obsoletes any pending clone.
    if (cow != nullptr) cow->erase(fm.table_id);
    if (dirty != nullptr) {
      dirty->emplace(fm.table_id, false);
      return;
    }
    rebuild_logical(fm.table_id);
    refresh_start_and_plan();
    return;
  }

  // The add landed incrementally but pushed the table past its template's
  // sweet spot: schedule the re-selecting rebuild (deferred to commit inside
  // a batch, so a churn burst re-selects once).
  if (fm.command == FlowMod::Cmd::kAdd && wants_reselection(fm.table_id)) {
    if (cow != nullptr) cow->erase(fm.table_id);
    if (dirty != nullptr) {
      dirty->emplace(fm.table_id, false);
      return;
    }
    rebuild_logical(fm.table_id);
    refresh_start_and_plan();
  }
}

/// Batch commit: one rebuild per dirty table (from the final pipeline state),
/// one trampoline swap per pending clone, one start/plan refresh.
void Eswitch::commit_batch(CowMap& cow, const DirtySet& dirty) {
  for (const auto& [id, fresh] : dirty) {
    cow.erase(id);  // a rebuild supersedes any pending clone
    rebuild_logical(id, fresh);
  }
  for (auto& [table, impl] : cow) {
    dp_.set_impl(goto_map_[table], std::move(impl));
    ++update_stats_.cow_swaps;
  }
  if (!dirty.empty()) refresh_start_and_plan();
}

void Eswitch::apply(const FlowMod& fm) {
  ++update_seq_;
  try {
    apply_one(fm, nullptr);
  } catch (const TableFullError&) {
    ++degradation_.mods_refused_table_full;
    throw;
  }
  maybe_retry_jit();
  refresh_fusion();
  dp_.reclaim();
}

void Eswitch::apply_batch(const std::vector<FlowMod>& fms) {
  ++update_seq_;
  // Validate every mod against a scratch copy: all-or-nothing semantics.
  flow::Pipeline scratch = pipeline_;
  try {
    for (const FlowMod& fm : fms) apply_to_pipeline(scratch, fm);
  } catch (const TableFullError&) {
    ++degradation_.mods_refused_table_full;
    throw;
  }
  const auto err = scratch.validate();
  ESW_CHECK_MSG(!err.has_value(), err.value_or(""));

  // Commit through the regular path: validated mods cannot throw, and each
  // lands incrementally where its table's template allows, so a batch of
  // route adds does not force wholesale LPM rebuilds.  Tables that do need a
  // rebuild collect in the dirty set and rebuild once at commit; under
  // concurrent workers, clone-and-swap tables are cloned once for the whole
  // batch and published with a single trampoline swap each.
  CowMap cow;
  DirtySet dirty;
  for (const FlowMod& fm : fms) apply_one(fm, &cow, &dirty);
  commit_batch(cow, dirty);
  maybe_retry_jit();
  refresh_fusion();
  dp_.reclaim();
}

std::vector<ModStatus> Eswitch::apply_batch_partial(const std::vector<FlowMod>& fms) {
  ++update_seq_;
  std::vector<ModStatus> out;
  out.reserve(fms.size());
  CowMap cow;
  DirtySet dirty;
  for (const FlowMod& fm : fms) {
    try {
      apply_one(fm, &cow, &dirty);
      out.push_back(ModStatus::kApplied);
    } catch (const TableFullError&) {
      // apply_one throws before mutating anything, so refusing this mod
      // leaves the batch's accumulated state intact and the rest still lands.
      ++degradation_.mods_refused_table_full;
      out.push_back(ModStatus::kRefusedTableFull);
    } catch (const CheckError&) {
      out.push_back(ModStatus::kRefusedInvalid);
    }
  }
  commit_batch(cow, dirty);
  maybe_retry_jit();
  refresh_fusion();
  dp_.reclaim();
  return out;
}

}  // namespace esw::core
