#include "core/eswitch.hpp"

#include <set>

#include "common/check.hpp"

namespace esw::core {

using flow::FlowEntry;
using flow::FlowMod;
using flow::FlowTable;

Eswitch::Eswitch(const CompilerConfig& cfg) : cfg_(cfg) {
  root_template_.fill(TableTemplate::kLinkedList);
}

void Eswitch::install(const flow::Pipeline& pl) {
  const auto err = pl.validate();
  ESW_CHECK_MSG(!err.has_value(), err.value_or(""));
  pipeline_ = pl;
  compile_all();
}

void Eswitch::compile_all() {
  dp_.reset();
  goto_map_.assign(256, -1);
  decomposed_.fill(false);
  decomposed_count_.fill(0);

  // Root slots first so any goto resolves, then table bodies.
  for (const FlowTable& t : pipeline_.tables())
    goto_map_[t.id()] = dp_.add_slot(t.miss_policy());
  for (const FlowTable& t : pipeline_.tables()) rebuild_logical(t.id());
  refresh_start_and_plan();
}

void Eswitch::rebuild_logical(uint8_t id) {
  const FlowTable* t = pipeline_.find_table(id);
  ESW_CHECK(t != nullptr);
  const int32_t root = goto_map_[id];
  ESW_CHECK(root >= 0);
  BuildCtx ctx{dp_.actions(), goto_map_};
  dp_.set_miss_policy(root, t->miss_policy());

  ++update_stats_.table_rebuilds;
  decomposed_[id] = false;
  decomposed_count_[id] = 0;

  if (cfg_.enable_decomposition &&
      analyze_table(*t, cfg_).chosen == TableTemplate::kLinkedList) {
    DecomposedPipeline d = decompose(*t, cfg_.decompose_max_tables);
    if (!d.unchanged()) {
      // Fresh slots for the sub-tables; the logical root keeps its slot so
      // cross-table gotos stay valid across the swap.
      std::vector<int32_t> slot_of(d.tables.size(), -1);
      slot_of[0] = root;
      for (size_t i = 1; i < d.tables.size(); ++i)
        slot_of[i] = dp_.add_slot(t->miss_policy());

      // Children first, root last: readers that enter through the old root
      // never see a half-published chain.
      for (size_t i = d.tables.size(); i-- > 0;) {
        std::vector<BuildEntry> entries = d.tables[i].entries;
        for (BuildEntry& e : entries)
          if (e.internal_next >= 0) e.internal_next = slot_of[e.internal_next];
        TableTemplate kind{};
        auto impl = build_table_impl(entries, cfg_, ctx, &kind);
        dp_.set_impl(slot_of[i], std::move(impl));
        if (i == 0) root_template_[id] = kind;
      }
      decomposed_[id] = true;
      decomposed_count_[id] = static_cast<uint32_t>(d.tables.size());
      return;
    }
  }

  TableTemplate kind{};
  auto impl = build_table_impl(to_build_entries(*t), cfg_, ctx, &kind);
  dp_.set_impl(root, std::move(impl));
  root_template_[id] = kind;
}

void Eswitch::refresh_start_and_plan() {
  const FlowTable* first = pipeline_.first_table();
  dp_.set_start(first != nullptr ? goto_map_[first->id()] : -1);
  dp_.set_plan(compute_parser_plan(pipeline_, cfg_));
}

void Eswitch::maybe_widen_plan(const FlowEntry& e) {
  // O(1) plan widening on the incremental path — a full recompute per update
  // would dominate at high flow-mod rates.
  const uint32_t req = e.match.proto_required() | action_proto_requirements(e.actions);
  const proto::ParserPlan needed = plan_for_requirements(req);
  proto::ParserPlan plan = dp_.plan();
  if ((needed.need_l3 && !plan.need_l3) || (needed.need_l4 && !plan.need_l4)) {
    plan.need_l3 |= needed.need_l3;
    plan.need_l4 |= needed.need_l4;
    dp_.set_plan(plan);
  }
}

void Eswitch::apply_to_pipeline(flow::Pipeline& pl, const FlowMod& fm) {
  switch (fm.command) {
    case FlowMod::Cmd::kAdd:
    case FlowMod::Cmd::kModify: {
      if (fm.goto_table != flow::kNoGoto) {
        ESW_CHECK_MSG(fm.goto_table > fm.table_id, "goto_table must go forward");
        ESW_CHECK_MSG(pl.find_table(static_cast<uint8_t>(fm.goto_table)) != nullptr,
                      "goto_table target does not exist");
      }
      pl.table(fm.table_id).add(flow::entry_from(fm));
      break;
    }
    case FlowMod::Cmd::kDelete: {
      if (pl.find_table(fm.table_id) != nullptr)
        pl.table(fm.table_id).remove(fm.match, fm.priority);
      break;
    }
  }
}

void Eswitch::apply(const FlowMod& fm) {
  const bool new_table =
      fm.command != FlowMod::Cmd::kDelete && pipeline_.find_table(fm.table_id) == nullptr;

  // Control plane first; throws leave no trace.
  apply_to_pipeline(pipeline_, fm);

  if (fm.command == FlowMod::Cmd::kDelete && pipeline_.find_table(fm.table_id) == nullptr)
    return;  // delete on a never-created table: no-op

  if (new_table) {
    goto_map_[fm.table_id] = dp_.add_slot(pipeline_.table(fm.table_id).miss_policy());
    rebuild_logical(fm.table_id);
    refresh_start_and_plan();
    return;
  }

  const int32_t root = goto_map_[fm.table_id];
  CompiledTable* impl = root >= 0 ? dp_.impl_mut(root) : nullptr;
  BuildCtx ctx{dp_.actions(), goto_map_};

  // §3.4: non-destructive incremental update when the template supports it
  // and the prerequisite still holds; otherwise rebuild (with fallback).
  if (impl != nullptr && !decomposed_[fm.table_id]) {
    if (fm.command == FlowMod::Cmd::kAdd) {
      const FlowEntry e = flow::entry_from(fm);
      if (impl->try_add(e, ctx)) {
        ++update_stats_.incremental;
        maybe_widen_plan(e);
        return;
      }
    } else if (fm.command == FlowMod::Cmd::kDelete) {
      if (impl->try_remove(fm.match, fm.priority)) {
        ++update_stats_.incremental;
        return;
      }
    }
  }
  rebuild_logical(fm.table_id);
  refresh_start_and_plan();
}

void Eswitch::apply_batch(const std::vector<FlowMod>& fms) {
  // Validate every mod against a scratch copy: all-or-nothing semantics.
  flow::Pipeline scratch = pipeline_;
  for (const FlowMod& fm : fms) apply_to_pipeline(scratch, fm);
  const auto err = scratch.validate();
  ESW_CHECK_MSG(!err.has_value(), err.value_or(""));

  // Commit through the regular path: validated mods cannot throw, and each
  // lands incrementally where its table's template allows, so a batch of
  // route adds does not force wholesale LPM rebuilds.
  for (const FlowMod& fm : fms) apply(fm);
}

}  // namespace esw::core
