// Lowering from the OpenFlow model to the matcher IR: the compiler's
// *template specialization* step (§3.3) — field metadata from the catalog is
// combined with concrete keys/masks, pre-swizzled into the little-endian
// constants the generated loads compare against.
#pragma once

#include <vector>

#include "flow/actions.hpp"
#include "flow/table.hpp"
#include "jit/ir.hpp"

namespace esw::core {

/// Maps a logical goto target to the internal table id of its compiled root
/// (the trampoline slot).  Index = logical id; -1 = absent.
using GotoMap = std::vector<int32_t>;

/// One specialized matcher for (field, value, mask).
jit::FieldTest lower_field_test(flow::FieldId f, uint64_t value, uint64_t mask);

/// Lowers a whole match into protocol guard + matcher chain.
void lower_match(const flow::Match& m, jit::LoweredEntry& out);

/// Lowers a flow entry; actions are interned in `registry`, the goto target
/// resolved through `goto_map`.  `internal_next` overrides the goto target for
/// decomposition-internal links (pass kNoInternal to use the entry's own).
inline constexpr int32_t kNoInternal = -2;
jit::LoweredEntry lower_entry(const flow::FlowEntry& e, flow::ActionSetRegistry& registry,
                              const GotoMap& goto_map, int32_t internal_next = kNoInternal);

}  // namespace esw::core
