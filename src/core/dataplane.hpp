// The unified switch-backend interface.
//
// Both datapath implementations — the compiling `core::Eswitch` and the
// flow-caching baseline `ovs::OvsSwitch` — satisfy the `Dataplane` concept,
// so the runtime (`core::SwitchHost`), the agent session (`uc::OfAgent`
// bridges), the measurement harness and every figure bench drive either
// backend through one non-virtual surface: no per-backend adapter code, no
// virtual dispatch on the per-packet path (the NFV dataplane-benchmarking
// prescription: compare switches through the same harness).
#pragma once

#include <concepts>
#include <cstdint>
#include <vector>

#include "flow/pipeline.hpp"
#include "flow/wire.hpp"
#include "netio/packet.hpp"

namespace esw::core {

/// Per-mod outcome of a best-effort batch (apply_batch_partial): the agent
/// maps each refused mod to one OpenFlow ERROR while the rest of the batch
/// lands.
enum class ModStatus : uint8_t {
  kApplied = 0,
  kRefusedTableFull,  // table_capacity admission refusal (OFPFMFC_TABLE_FULL)
  kRefusedInvalid,    // malformed mod (bad goto, unknown shape, ...)
};

/// Verdict-level counters every backend reports in the same shape.
/// Flood fan-outs count under `outputs` (one per processed packet — the
/// per-copy accounting lives with the runtime's ports).
struct DataplaneStats {
  uint64_t packets = 0;
  uint64_t outputs = 0;
  uint64_t drops = 0;
  uint64_t to_controller = 0;
  // Degradation counters (additive; zero on backends without the edge).
  // Every gracefully absorbed fault lands in exactly one of these — the
  // chaos soak's accounting audits that (docs/ROBUSTNESS.md).
  uint64_t pool_exhausted = 0;           // buffer alloc failed at the backend
  uint64_t jit_fallbacks = 0;            // direct-code slots on the interpreter
  uint64_t mods_refused_table_full = 0;  // adds refused at table_capacity
  uint64_t backpressure_events = 0;      // RX pauses under pool exhaustion
  // Connection-tracking counters (src/state/; zero when ct is disabled or on
  // backends without the subsystem).  ct_evictions_forced and
  // ct_commit_drops are the stateful layer's degradation edges.
  uint64_t ct_entries = 0;               // live connections right now
  uint64_t ct_commit_drops = 0;          // commits refused at capacity
  uint64_t ct_evictions_forced = 0;      // capacity/failpoint-forced evictions
  uint64_t ct_expired = 0;               // idle-timeout removals
};

/// What a switch backend must provide: bulk install, single and transactional
/// batched flow-mods, scalar and burst processing, verdict-level stats and
/// the authoritative rule store.  Compile-time (template/CRTP-style)
/// polymorphism only — the per-packet calls inline into the harness loops.
template <typename T>
concept Dataplane = requires(T sw, const T csw, const flow::Pipeline& pl,
                             const flow::FlowMod& fm,
                             const std::vector<flow::FlowMod>& fms, net::Packet& pkt,
                             net::Packet* const* pkts, uint32_t n,
                             flow::Verdict* out) {
  { sw.install(pl) };
  { sw.apply(fm) };
  { sw.apply_batch(fms) };
  { sw.process(pkt) } -> std::same_as<flow::Verdict>;
  { sw.process_burst(pkts, n, out) };
  { csw.stats() } -> std::convertible_to<DataplaneStats>;
  { csw.pipeline() } -> std::convertible_to<const flow::Pipeline&>;
};

}  // namespace esw::core
