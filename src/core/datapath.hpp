// The compiled datapath: an array of trampoline slots (one per compiled
// table), the shared action-set registry, a parser plan and the per-packet
// processing loop.
//
// Trampolines realize §3.3/§3.4: a goto_table jump resolves through an atomic
// slot, so a table can be rebuilt side by side and inserted "by atomically
// redirecting all referring goto_table jumps to the address of the new code".
//
// Concurrency model (one writer, N packet workers):
//   * the control thread is the only mutator — it swaps trampolines
//     (release) and retires the displaced objects into an epoch domain
//     (`common/epoch.hpp`);
//   * each packet worker runs inside a registered `Worker` context: its own
//     burst scratch (trampoline snapshots), its own cacheline-padded verdict
//     counters, and an epoch slot it ticks once per burst, at which point it
//     provably holds no datapath pointers;
//   * retired tables and recycled trampoline slots are freed by `reclaim()`
//     once every registered worker has ticked past the retirement epoch —
//     the old caller-coordinated `collect()` contract ("call when no
//     process() is in flight") is gone;
//   * the legacy `process()`/`process_burst()` entry points run in an
//     implicit owner context: they are for single-threaded use (the control
//     thread itself, or a thread that is the only one touching the object),
//     which is trivially quiescent at every writer step.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/epoch.hpp"
#include "core/compiled_table.hpp"
#include "flow/pipeline.hpp"
#include "jit/fusion.hpp"
#include "netio/packet.hpp"

namespace esw::state {
class Conntrack;
}

namespace esw::core {

/// The whole-pipeline fusion plan (ROADMAP item 3): an immutable snapshot of
/// the steady-state goto graph, with the direct-code members compiled into
/// one machine function (jit::FusedProgram) and every other stage pinned to
/// its impl pointer so the burst walk never touches the trampoline slots.
/// Published/retired through the epoch domain exactly like a table impl —
/// the writer builds a fresh plan on churn (core::fuse_pipeline) and swaps
/// it in with set_fused(); a worker loads it once per chunk (acquire) and
/// runs the whole chunk against that consistent graph.
struct FusedPipeline {
  struct Stage {
    int32_t slot = -1;                 // owning trampoline slot (stat flush)
    const CompiledTable* impl = nullptr;
    flow::FlowTable::MissPolicy miss = flow::FlowTable::MissPolicy::kDrop;
    bool want_prefetch = false;
    jit::FusedProgram::Fn entry = nullptr;  // machine entry; null = staged stage
  };
  std::vector<Stage> stages;           // pipeline walk order (ascending table id)
  std::vector<int32_t> stage_of_slot;  // slot id -> stage index, -1 = not in plan
  uint32_t start_stage = 0;
  std::shared_ptr<const jit::FusedProgram> program;  // null = no machine members
  /// Identity of (start, slot, impl, miss) — an unchanged fingerprint means
  /// the published plan is still exact and republish can be skipped.
  uint64_t fingerprint = 0;
  /// Identity of the direct-code member set only: when churn touched other
  /// tables (e.g. a hash clone-swap) the previous plan's machine program is
  /// reused instead of re-emitted.
  uint64_t program_key = 0;
};

class CompiledDatapath {
 public:
  /// Concurrent packet workers supported (excluding the owner context).
  static constexpr uint32_t kMaxWorkers = common::EpochDomain::kMaxWorkers;
  /// Trampoline slot capacity.  Fixed so workers never race a reallocating
  /// slot container; retired slots are recycled through the epoch domain, so
  /// this bounds *live* tables plus those still in their grace period.
  static constexpr int32_t kMaxSlots = 4096;

  struct TableStats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  struct Stats {
    uint64_t packets = 0;
    uint64_t outputs = 0;
    uint64_t drops = 0;
    uint64_t to_controller = 0;
  };
  struct ReclaimStats {
    uint64_t retired = 0;    // objects handed to the epoch domain
    uint64_t reclaimed = 0;  // freed after their grace period
    uint64_t pending = 0;    // retired, grace period not yet over
  };

  /// One loop-bound policy for every walk flavor: a packet that has not
  /// reached a verdict after this many table hops is dropped.  The staged
  /// paths count hops directly; the fused walk's round bound (DAG depth,
  /// forward-only gotos) is strictly tighter and ends in the same drop.
  static constexpr int kMaxHops = 8192;
  /// Tables whose resident bytes fit in the private caches are skipped by
  /// the prefetch hints: the hint recomputes the lookup key (hash templates
  /// pay the key hash twice), which only amortizes when the lookup would
  /// otherwise stall on LLC/DRAM.  Structures below this bound (L2-sized)
  /// serve lookups from warm lines anyway.  Shared by the staged snapshots
  /// and the fusion planner (core::fuse_pipeline).
  static constexpr size_t kPrefetchMinBytes = 1024 * 1024;

 private:
  /// Per-burst view of a slot: impl/miss hoisted out of the hot loop, local
  /// stat deltas flushed when the burst ends.  `gen` stamps which burst the
  /// snapshot belongs to so untouched slots cost nothing per burst.
  struct SlotSnapshot {
    const CompiledTable* impl = nullptr;
    flow::FlowTable::MissPolicy miss = flow::FlowTable::MissPolicy::kDrop;
    bool want_prefetch = false;
    uint64_t gen = 0;
    TableStats delta;
  };

 public:
  /// A packet worker's execution context: burst scratch, padded verdict
  /// counters and the epoch registration.  Obtain via register_worker(); one
  /// thread drives a Worker at a time.
  class Worker {
   public:
    uint32_t id() const { return id_; }

   private:
    friend class CompiledDatapath;
    // Verdict-level counters: own cache line, single-writer (the worker),
    // relaxed-atomic so aggregating readers are race-free.
    struct alignas(64) StatBlock {
      std::atomic<uint64_t> packets{0};
      std::atomic<uint64_t> outputs{0};
      std::atomic<uint64_t> drops{0};
      std::atomic<uint64_t> to_controller{0};
    };

    StatBlock stats_;
    std::vector<SlotSnapshot> snap_;
    std::vector<int32_t> snap_touched_;
    // Fused-walk scratch: the per-stage lookup/hit/miss delta block the
    // machine code increments (stage * 3 + field, jit/fusion.hpp layout) and
    // the per-call action-id spill array.
    std::vector<uint64_t> fused_delta_;
    std::vector<int32_t> fused_actions_;
    uint64_t snap_gen_ = 0;
    common::EpochDomain::WorkerSlot* epoch_ = nullptr;  // null for the owner ctx
    uint32_t id_ = 0;
    bool in_use_ = false;  // control-thread bookkeeping
  };

  CompiledDatapath();

  // --- control plane (single writer) ---------------------------------------

  /// Allocates (or recycles) a trampoline slot; returns its internal id.
  int32_t add_slot(flow::FlowTable::MissPolicy miss);

  /// Swaps the slot's implementation (release order); the displaced one is
  /// retired into the epoch domain and freed by a later reclaim().
  void set_impl(int32_t slot, std::unique_ptr<CompiledTable> impl);

  /// Retires a slot stranded by a root swap (a decomposed table's previous
  /// sub-table chain).  Its impl stays published until the grace period ends
  /// — pre-swap bursts may still jump into it and must see the old table —
  /// then impl and slot id are reclaimed together for reuse.
  void retire_slot(int32_t slot);

  /// Frees every retirement whose grace period has elapsed (advances the
  /// epoch first).  With no registered workers this reclaims everything
  /// immediately.  Returns the number of objects freed.
  uint64_t reclaim();

  void set_miss_policy(int32_t slot, flow::FlowTable::MissPolicy miss);
  void set_start(int32_t slot) { start_.store(slot, std::memory_order_release); }

  /// Publishes a fused whole-pipeline plan (release), or clears the fast
  /// path (nullptr) so bursts fall back to the staged walk.  The displaced
  /// plan is retired into the epoch domain — a worker mid-chunk keeps
  /// running the old graph until its next tick, like any impl swap.  The
  /// writer must republish (or clear) *before* reclaim() whenever an impl
  /// referenced by the published plan was retired.
  void set_fused(std::unique_ptr<FusedPipeline> fused);
  const FusedPipeline* fused() const {
    return fused_.load(std::memory_order_acquire);
  }
  void set_plan(const proto::ParserPlan& plan) {
    plan_.store(plan, std::memory_order_release);
  }

  /// Drops all slots and state (full recompile path).  Requires no
  /// registered workers: install() is a stop-the-world operation.
  void reset();

  // --- worker management ----------------------------------------------------

  /// Registers a packet-worker context (control thread only; nullptr when
  /// kMaxWorkers are active).  While any worker is registered, reader-visible
  /// structures may only be updated via copy-and-swap or in-place algorithms
  /// that are explicitly reader-safe (CompiledTable::concurrent_update_safe).
  Worker* register_worker();
  /// Unregisters (control thread only; the worker's thread must have
  /// finished — joined or provably past its last burst).
  void unregister_worker(Worker* w);
  bool has_workers() const { return domain_.has_workers(); }

  /// Forces a quiescent tick on a worker's epoch slot from outside its
  /// thread.  Only legal while the worker provably holds no datapath
  /// pointers — parked in backpressure, or stalled before its burst snapshot
  /// — where the worst a racing overwrite can do is re-publish a slightly
  /// stale epoch, which merely delays reclamation.  This is the watchdog's
  /// recovery lever for a stuck worker pinning the epoch horizon.
  void quiesce(Worker& w) {
    if (w.epoch_ != nullptr) domain_.quiescent(*w.epoch_);
  }

  // --- datapath (readers) ---------------------------------------------------

  /// One packet through the compiled pipeline in the owner context.  This is
  /// the reference implementation: process_burst() must be observably
  /// identical to n calls of process() (verdicts, packet mutations,
  /// per-table and global stats).
  flow::Verdict process(net::Packet& pkt, MemTrace* trace = nullptr) {
    return process(workers_[0], pkt, trace);
  }
  /// Worker-context scalar path: per-hop acquire trampoline loads, one epoch
  /// tick per packet.  Each Worker is single-threaded; concurrency comes
  /// from running *different* workers on different threads (run-to-completion
  /// sharding), never from sharing one context.
  flow::Verdict process(Worker& w, net::Packet& pkt, MemTrace* trace = nullptr);

  /// Burst fast path in the owner context; see the Worker overload.
  void process_burst(net::Packet* const* pkts, uint32_t n, flow::Verdict* out) {
    process_burst(workers_[0], pkts, n, out);
  }
  /// Burst fast path: `n` packets run to completion, one verdict per packet
  /// written to `out[0..n)`.  Amortizes per-packet overhead the way a
  /// DPDK-style loop does: the worker ticks its epoch slot, snapshots each
  /// slot's impl pointer (acquire) and miss policy once per burst, runs the
  /// parse stage across the burst with next-frame prefetch, walks packets
  /// with one-ahead lookup prefetch, and flushes per-table and global stats
  /// once per burst.  A snapshot taken at burst start stays valid for the
  /// whole burst because a displaced impl survives at least until every
  /// worker's next tick (epoch grace period).  `n` may exceed kBurstSize;
  /// the loop chunks internally.
  void process_burst(Worker& w, net::Packet* const* pkts, uint32_t n,
                     flow::Verdict* out);

  // --- introspection --------------------------------------------------------

  const CompiledTable* impl(int32_t slot) const {
    return slots_[slot].impl.load(std::memory_order_acquire);
  }
  CompiledTable* impl_mut(int32_t slot) {
    return slots_[slot].impl.load(std::memory_order_acquire);
  }
  int32_t num_slots() const { return n_slots_.load(std::memory_order_acquire); }
  int32_t start() const { return start_.load(std::memory_order_acquire); }
  proto::ParserPlan plan() const { return plan_.load(std::memory_order_acquire); }

  flow::ActionSetRegistry& actions() { return actions_; }
  const flow::ActionSetRegistry& actions() const { return actions_; }

  /// Attaches (or detaches, nullptr) the connection-tracking layer.  The
  /// packet path loads this once per packet/chunk (acquire); disabled costs
  /// one predictable branch.  The Conntrack must outlive its attachment and
  /// shares this datapath's epoch domain (see domain()).
  void set_conntrack(state::Conntrack* ct) {
    ct_.store(ct, std::memory_order_release);
  }
  state::Conntrack* conntrack() const {
    return ct_.load(std::memory_order_acquire);
  }
  /// The epoch domain workers tick; the Conntrack's retire/reclaim cycle
  /// rides the same quiescence signal as table retirement.
  common::EpochDomain& domain() { return domain_; }

  /// Per-slot counter snapshot (sums of all workers' flushed deltas).
  TableStats table_stats(int32_t slot) const;
  /// Verdict-level counters aggregated over the owner context and every
  /// worker block (the per-worker blocks are only ever read here).
  Stats stats() const;
  /// Zeroes all counters.  Control-side; concurrent bursts may re-add their
  /// in-flight deltas, so call it while processing is paused for exactness.
  void clear_stats();

  ReclaimStats reclaim_stats() const;

  /// Total resident bytes of all live compiled tables (working-set model).
  /// Control-side (walks the live-table list the writer owns).
  size_t memory_bytes() const;

 private:
  struct Slot {
    std::atomic<CompiledTable*> impl{nullptr};
    std::atomic<flow::FlowTable::MissPolicy> miss{flow::FlowTable::MissPolicy::kDrop};
    // Shared per-slot counters: workers flush burst-local deltas with relaxed
    // fetch_add (a handful per burst), readers aggregate with relaxed loads.
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
  };

  SlotSnapshot& snapshot(Worker& w, int32_t slot);
  void process_chunk(Worker& w, net::Packet* const* pkts, uint32_t n,
                     flow::Verdict* out);
  struct BurstCtx;  // cpp-internal: parse results + conntrack pre-stage state
  void process_chunk_fused(Worker& w, const FusedPipeline& fp,
                           net::Packet* const* pkts, uint32_t n, flow::Verdict* out,
                           const BurstCtx& ctx);
  std::unique_ptr<CompiledTable> take_live(CompiledTable* old);
  void retire_impl(CompiledTable* old);
  void recycle_slot(int32_t slot);

  std::unique_ptr<Slot[]> slots_;  // kMaxSlots, fixed — stable for readers
  std::atomic<int32_t> n_slots_{0};
  std::vector<int32_t> free_slots_;  // recycled ids (writer-side)
  std::vector<std::unique_ptr<CompiledTable>> live_;
  flow::ActionSetRegistry actions_;
  std::atomic<proto::ParserPlan> plan_{proto::ParserPlan::full()};
  std::atomic<int32_t> start_{-1};

  common::EpochDomain domain_;
  common::RetireList<std::unique_ptr<CompiledTable>> retired_impls_;
  common::RetireList<int32_t> retired_slots_;
  common::RetireList<std::unique_ptr<FusedPipeline>> retired_fused_;
  std::atomic<state::Conntrack*> ct_{nullptr};
  // Published fused plan (readers, acquire) + writer-side ownership of it.
  std::atomic<const FusedPipeline*> fused_{nullptr};
  std::unique_ptr<FusedPipeline> fused_live_;

  // workers_[0] is the implicit owner context; 1..kMaxWorkers are
  // registerable packet workers.
  std::unique_ptr<Worker[]> workers_;
};

static_assert(std::atomic<proto::ParserPlan>::is_always_lock_free,
              "parser plan must publish without a lock");

}  // namespace esw::core
