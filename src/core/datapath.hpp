// The compiled datapath: an array of trampoline slots (one per compiled
// table), the shared action-set registry, a parser plan and the per-packet
// processing loop.
//
// Trampolines realize §3.3/§3.4: a goto_table jump resolves through an atomic
// slot, so a table can be rebuilt side by side and inserted "by atomically
// redirecting all referring goto_table jumps to the address of the new code".
// Retired table objects are kept until collect() — quiescent-state
// reclamation; the single owner calls it when no reader is inside process().
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/compiled_table.hpp"
#include "flow/pipeline.hpp"
#include "netio/packet.hpp"

namespace esw::core {

class CompiledDatapath {
 public:
  struct TableStats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  struct Stats {
    uint64_t packets = 0;
    uint64_t outputs = 0;
    uint64_t drops = 0;
    uint64_t to_controller = 0;
  };

  /// Allocates a trampoline slot; returns its internal id.
  int32_t add_slot(flow::FlowTable::MissPolicy miss);

  /// Swaps the slot's implementation (release order); the old one is retired,
  /// not destroyed, until collect().
  void set_impl(int32_t slot, std::unique_ptr<CompiledTable> impl);

  void set_miss_policy(int32_t slot, flow::FlowTable::MissPolicy miss);
  void set_start(int32_t slot) { start_ = slot; }
  void set_plan(const proto::ParserPlan& plan) { plan_ = plan; }

  const CompiledTable* impl(int32_t slot) const {
    return slots_[slot].impl.load(std::memory_order_acquire);
  }
  CompiledTable* impl_mut(int32_t slot) {
    return slots_[slot].impl.load(std::memory_order_acquire);
  }
  int32_t num_slots() const { return static_cast<int32_t>(slots_.size()); }
  int32_t start() const { return start_; }
  const proto::ParserPlan& plan() const { return plan_; }

  flow::ActionSetRegistry& actions() { return actions_; }
  const flow::ActionSetRegistry& actions() const { return actions_; }

  /// One packet through the compiled pipeline.
  flow::Verdict process(net::Packet& pkt, MemTrace* trace = nullptr);

  /// Frees retired table objects.  Caller guarantees quiescence.
  void collect();

  /// Drops all slots and state (full recompile path).
  void reset();

  const TableStats& table_stats(int32_t slot) const { return slots_[slot].stats; }
  const Stats& stats() const { return stats_; }
  void clear_stats();

  /// Total resident bytes of all live compiled tables (working-set model).
  size_t memory_bytes() const;

 private:
  struct Slot {
    std::atomic<CompiledTable*> impl{nullptr};
    flow::FlowTable::MissPolicy miss = flow::FlowTable::MissPolicy::kDrop;
    TableStats stats;
  };

  static constexpr int kMaxHops = 8192;

  std::deque<Slot> slots_;  // stable addresses for concurrent readers
  std::vector<std::unique_ptr<CompiledTable>> live_;
  std::vector<std::unique_ptr<CompiledTable>> retired_;
  flow::ActionSetRegistry actions_;
  proto::ParserPlan plan_ = proto::ParserPlan::full();
  int32_t start_ = -1;
  Stats stats_;
};

}  // namespace esw::core
