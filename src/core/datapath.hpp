// The compiled datapath: an array of trampoline slots (one per compiled
// table), the shared action-set registry, a parser plan and the per-packet
// processing loop.
//
// Trampolines realize §3.3/§3.4: a goto_table jump resolves through an atomic
// slot, so a table can be rebuilt side by side and inserted "by atomically
// redirecting all referring goto_table jumps to the address of the new code".
// Retired table objects are kept until collect() — quiescent-state
// reclamation; the single owner calls it when no reader is inside process().
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/compiled_table.hpp"
#include "flow/pipeline.hpp"
#include "netio/packet.hpp"

namespace esw::core {

class CompiledDatapath {
 public:
  struct TableStats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  struct Stats {
    uint64_t packets = 0;
    uint64_t outputs = 0;
    uint64_t drops = 0;
    uint64_t to_controller = 0;
  };

  /// Allocates a trampoline slot; returns its internal id.
  int32_t add_slot(flow::FlowTable::MissPolicy miss);

  /// Swaps the slot's implementation (release order); the old one is retired,
  /// not destroyed, until collect().
  void set_impl(int32_t slot, std::unique_ptr<CompiledTable> impl);

  void set_miss_policy(int32_t slot, flow::FlowTable::MissPolicy miss);
  void set_start(int32_t slot) { start_ = slot; }
  void set_plan(const proto::ParserPlan& plan) { plan_ = plan; }

  const CompiledTable* impl(int32_t slot) const {
    return slots_[slot].impl.load(std::memory_order_acquire);
  }
  CompiledTable* impl_mut(int32_t slot) {
    return slots_[slot].impl.load(std::memory_order_acquire);
  }
  int32_t num_slots() const { return static_cast<int32_t>(slots_.size()); }
  int32_t start() const { return start_; }
  const proto::ParserPlan& plan() const { return plan_; }

  flow::ActionSetRegistry& actions() { return actions_; }
  const flow::ActionSetRegistry& actions() const { return actions_; }

  /// One packet through the compiled pipeline.  This is the reference
  /// implementation: process_burst() must be observably identical to n calls
  /// of process() (verdicts, packet mutations, per-table and global stats).
  flow::Verdict process(net::Packet& pkt, MemTrace* trace = nullptr);

  /// Burst fast path: `n` packets run to completion, one verdict per packet
  /// written to `out[0..n)`.  Amortizes per-packet overhead the way a
  /// DPDK-style loop does: the parse stage runs across the whole burst with
  /// the next frame's header line prefetched, the per-slot atomic impl load
  /// and miss-policy read are hoisted to once per burst (safe under the
  /// single-writer quiescent-publication model — the writer never swaps a
  /// trampoline while a reader is inside the datapath), per-table and global
  /// stats accumulate in locals flushed once per burst, and each table's
  /// prefetch() hint is issued for packet i+1 while packet i walks the
  /// pipeline.  `n` may exceed kBurstSize; the loop chunks internally.
  void process_burst(net::Packet* const* pkts, uint32_t n, flow::Verdict* out);

  /// Frees retired table objects.  Caller guarantees quiescence.
  void collect();

  /// Drops all slots and state (full recompile path).
  void reset();

  const TableStats& table_stats(int32_t slot) const { return slots_[slot].stats; }
  const Stats& stats() const { return stats_; }
  void clear_stats();

  /// Total resident bytes of all live compiled tables (working-set model).
  size_t memory_bytes() const;

 private:
  struct Slot {
    std::atomic<CompiledTable*> impl{nullptr};
    flow::FlowTable::MissPolicy miss = flow::FlowTable::MissPolicy::kDrop;
    TableStats stats;
  };

  /// Per-burst view of a slot: impl/miss hoisted out of the hot loop, local
  /// stat deltas flushed when the burst ends.  `gen` stamps which burst the
  /// snapshot belongs to so untouched slots cost nothing per burst.
  struct SlotSnapshot {
    const CompiledTable* impl = nullptr;
    flow::FlowTable::MissPolicy miss = flow::FlowTable::MissPolicy::kDrop;
    bool want_prefetch = false;
    uint64_t gen = 0;
    TableStats delta;
  };

  static constexpr int kMaxHops = 8192;
  /// Tables whose resident bytes fit in the private caches are skipped by the
  /// prefetch hints: the hint recomputes the lookup key (hash templates pay
  /// the key hash twice), which only amortizes when the lookup would
  /// otherwise stall on LLC/DRAM.  Structures below this bound (L2-sized)
  /// serve lookups from warm lines anyway.
  static constexpr size_t kPrefetchMinBytes = 1024 * 1024;

  SlotSnapshot& snapshot(int32_t slot);
  void process_chunk(net::Packet* const* pkts, uint32_t n, flow::Verdict* out);

  std::deque<Slot> slots_;  // stable addresses for concurrent readers
  std::vector<std::unique_ptr<CompiledTable>> live_;
  std::vector<std::unique_ptr<CompiledTable>> retired_;
  flow::ActionSetRegistry actions_;
  proto::ParserPlan plan_ = proto::ParserPlan::full();
  int32_t start_ = -1;
  Stats stats_;

  // Burst scratch.  The datapath has a single reader (stats increments are
  // plain stores already), so keeping this state in the object is safe and
  // avoids a per-burst allocation.
  std::vector<SlotSnapshot> snap_;
  std::vector<int32_t> snap_touched_;
  uint64_t snap_gen_ = 0;
};

}  // namespace esw::core
