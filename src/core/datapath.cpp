#include "core/datapath.hpp"

#include "common/check.hpp"

namespace esw::core {

int32_t CompiledDatapath::add_slot(flow::FlowTable::MissPolicy miss) {
  slots_.emplace_back();
  slots_.back().miss = miss;
  return static_cast<int32_t>(slots_.size() - 1);
}

void CompiledDatapath::set_impl(int32_t slot, std::unique_ptr<CompiledTable> impl) {
  CompiledTable* fresh = impl.get();
  live_.push_back(std::move(impl));
  CompiledTable* old = slots_[slot].impl.exchange(fresh, std::memory_order_release);
  if (old != nullptr) {
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (it->get() == old) {
        retired_.push_back(std::move(*it));
        live_.erase(it);
        break;
      }
    }
  }
}

void CompiledDatapath::set_miss_policy(int32_t slot, flow::FlowTable::MissPolicy miss) {
  slots_[slot].miss = miss;
}

flow::Verdict CompiledDatapath::process(net::Packet& pkt, MemTrace* trace) {
  ++stats_.packets;
  if (start_ < 0) {
    ++stats_.drops;
    return flow::Verdict::drop();
  }

  proto::ParseInfo pi;
  proto::parse(pkt.data(), pkt.len(), plan_, pi);
  pi.in_port = pkt.in_port();
  if (trace != nullptr) trace->touch(pkt.data(), 64);  // header cache line(s)

  flow::ActionSetBuilder action_set;
  int32_t slot = start_;
  for (int hops = 0; hops < kMaxHops; ++hops) {
    Slot& s = slots_[slot];
    const CompiledTable* impl = s.impl.load(std::memory_order_acquire);
    ++s.stats.lookups;
    const uint64_t r =
        impl != nullptr ? impl->lookup(pkt.data(), pi, trace) : jit::kMissResult;
    if (r == jit::kMissResult) {
      ++s.stats.misses;
      if (s.miss == flow::FlowTable::MissPolicy::kController) {
        ++stats_.to_controller;
        return flow::Verdict::controller();
      }
      ++stats_.drops;
      return flow::Verdict::drop();
    }
    ++s.stats.hits;
    int32_t action = -1, next = -1;
    jit::unpack_result(r, action, next);
    if (action >= 0) action_set.merge(actions_.get(static_cast<uint32_t>(action)));
    if (next < 0) {
      const flow::Verdict v = action_set.execute(pkt, pi);
      switch (v.kind) {
        case flow::Verdict::Kind::kOutput:
        case flow::Verdict::Kind::kFlood:
          ++stats_.outputs;
          break;
        case flow::Verdict::Kind::kController:
          ++stats_.to_controller;
          break;
        case flow::Verdict::Kind::kDrop:
          ++stats_.drops;
          break;
      }
      return v;
    }
    ESW_DCHECK(next < num_slots());
    slot = next;
  }
  ++stats_.drops;  // pathological loop guard
  return flow::Verdict::drop();
}

void CompiledDatapath::collect() { retired_.clear(); }

void CompiledDatapath::reset() {
  slots_.clear();
  live_.clear();
  retired_.clear();
  start_ = -1;
  stats_ = Stats{};
}

void CompiledDatapath::clear_stats() {
  stats_ = Stats{};
  for (Slot& s : slots_) s.stats = TableStats{};
}

size_t CompiledDatapath::memory_bytes() const {
  size_t n = 0;
  for (const auto& t : live_) n += t->memory_bytes();
  return n;
}

}  // namespace esw::core
