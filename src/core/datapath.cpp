#include "core/datapath.hpp"

#include <algorithm>
#include <iterator>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/counters.hpp"
#include "common/failpoint.hpp"
#include "state/conntrack.hpp"

namespace esw::core {

namespace {

using common::counter_add;   // multi-writer per-slot stats, once per burst
using common::counter_bump;  // single-writer worker stat blocks

/// Global-stat outcome of a verdict.  A controller verdict covers both the
/// miss-policy punt and an explicit controller action; flood counts as
/// output.  Folding the bookkeeping over the verdict keeps every exit path
/// (miss, action set, loop guard, empty datapath) on one counting rule.
void count_verdict(const flow::Verdict& v, CompiledDatapath::Stats& st) {
  switch (v.kind) {
    case flow::Verdict::Kind::kOutput:
    case flow::Verdict::Kind::kFlood:
      ++st.outputs;
      break;
    case flow::Verdict::Kind::kController:
      ++st.to_controller;
      break;
    case flow::Verdict::Kind::kDrop:
      ++st.drops;
      break;
  }
}

}  // namespace

CompiledDatapath::CompiledDatapath()
    : slots_(new Slot[kMaxSlots]), workers_(new Worker[kMaxWorkers + 1]) {
  for (uint32_t i = 0; i <= kMaxWorkers; ++i) workers_[i].id_ = i;
}

// --- control plane -----------------------------------------------------------

int32_t CompiledDatapath::add_slot(flow::FlowTable::MissPolicy miss) {
  int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = n_slots_.load(std::memory_order_relaxed);
    ESW_CHECK_MSG(slot < kMaxSlots, "out of trampoline slots");
    n_slots_.store(slot + 1, std::memory_order_release);
  }
  slots_[slot].miss.store(miss, std::memory_order_relaxed);
  return slot;
}

std::unique_ptr<CompiledTable> CompiledDatapath::take_live(CompiledTable* old) {
  for (auto it = live_.begin(); it != live_.end(); ++it) {
    if (it->get() == old) {
      std::unique_ptr<CompiledTable> taken = std::move(*it);
      live_.erase(it);
      return taken;
    }
  }
  ESW_CHECK_MSG(false, "retiring an implementation the datapath does not own");
  return nullptr;
}

void CompiledDatapath::retire_impl(CompiledTable* old) {
  retired_impls_.retire(take_live(old), domain_.current_epoch());
}

void CompiledDatapath::set_impl(int32_t slot, std::unique_ptr<CompiledTable> impl) {
  CompiledTable* fresh = impl.get();
  // Templates that retire internal memory (cuckoo) ride this domain from the
  // moment they are published under readers.
  fresh->attach_epoch_domain(&domain_);
  live_.push_back(std::move(impl));
  CompiledTable* old = slots_[slot].impl.exchange(fresh, std::memory_order_acq_rel);
  if (old != nullptr) retire_impl(old);
}

void CompiledDatapath::retire_slot(int32_t slot) {
  // The impl stays *published*: a reader mid-burst on the pre-swap root may
  // still jump here and must find the old table, not a nullptr miss (the
  // old-or-new verdict guarantee).  The slot only becomes unreachable for
  // bursts that start after the swap, so pointer, object and slot id are all
  // reclaimed together once the grace period ends (recycle_slot).
  retired_slots_.retire(slot, domain_.current_epoch());
}

void CompiledDatapath::recycle_slot(int32_t slot) {
  // Grace period over: no worker can reach this slot anymore (every burst
  // started after the root swap), so unpublishing, destroying the impl and
  // zeroing the counters cannot race anything.
  CompiledTable* old = slots_[slot].impl.exchange(nullptr, std::memory_order_relaxed);
  if (old != nullptr) take_live(old);  // destroyed here — grace already served
  slots_[slot].lookups.store(0, std::memory_order_relaxed);
  slots_[slot].hits.store(0, std::memory_order_relaxed);
  slots_[slot].misses.store(0, std::memory_order_relaxed);
  free_slots_.push_back(slot);
}

uint64_t CompiledDatapath::reclaim() {
  // Injectable stall: skip this pass as if no grace period had elapsed.
  // Retirements stay pending (bounded growth, audited by the soak's reclaim
  // check) until a later pass runs with the point disarmed.
  if (ESW_FAILPOINT("epoch.reclaim")) return 0;
  size_t internal_pending = 0;
  for (const auto& t : live_) internal_pending += t->retired_pending();
  if (retired_impls_.pending() == 0 && retired_slots_.pending() == 0 &&
      retired_fused_.pending() == 0 && internal_pending == 0)
    return 0;
  const uint64_t horizon = domain_.advance_and_horizon();
  uint64_t n = retired_impls_.reclaim(horizon);
  n += retired_slots_.reclaim_into(horizon,
                                   [this](int32_t slot) { recycle_slot(slot); });
  n += retired_fused_.reclaim(horizon);
  // Drain template-internal retire lists (cuckoo entries/views) on the same
  // horizon.
  for (const auto& t : live_) n += t->epoch_reclaim(horizon);
  return n;
}

void CompiledDatapath::set_fused(std::unique_ptr<FusedPipeline> fused) {
  fused_.store(fused.get(), std::memory_order_release);
  if (fused_live_ != nullptr)
    retired_fused_.retire(std::move(fused_live_), domain_.current_epoch());
  fused_live_ = std::move(fused);
}

void CompiledDatapath::set_miss_policy(int32_t slot, flow::FlowTable::MissPolicy miss) {
  slots_[slot].miss.store(miss, std::memory_order_relaxed);
}

void CompiledDatapath::reset() {
  ESW_CHECK_MSG(!domain_.has_workers(),
                "reset()/install() is stop-the-world: unregister workers first");
  const int32_t n = n_slots_.load(std::memory_order_relaxed);
  for (int32_t i = 0; i < n; ++i) {
    slots_[i].impl.store(nullptr, std::memory_order_relaxed);
    slots_[i].miss.store(flow::FlowTable::MissPolicy::kDrop, std::memory_order_relaxed);
    slots_[i].lookups.store(0, std::memory_order_relaxed);
    slots_[i].hits.store(0, std::memory_order_relaxed);
    slots_[i].misses.store(0, std::memory_order_relaxed);
  }
  n_slots_.store(0, std::memory_order_release);
  free_slots_.clear();
  live_.clear();
  fused_.store(nullptr, std::memory_order_release);
  fused_live_.reset();
  retired_impls_.clear();   // no workers: immediate free is safe
  retired_slots_.clear();
  retired_fused_.clear();
  start_.store(-1, std::memory_order_release);
  clear_stats();
}

// --- worker management -------------------------------------------------------

CompiledDatapath::Worker* CompiledDatapath::register_worker() {
  for (uint32_t i = 1; i <= kMaxWorkers; ++i) {
    Worker& w = workers_[i];
    if (w.in_use_) continue;
    w.epoch_ = domain_.register_worker();
    ESW_CHECK(w.epoch_ != nullptr);
    w.snap_gen_ = 0;
    w.snap_.clear();
    w.snap_touched_.clear();
    w.in_use_ = true;
    return &w;
  }
  return nullptr;
}

void CompiledDatapath::unregister_worker(Worker* w) {
  ESW_CHECK(w != nullptr && w->in_use_ && w->epoch_ != nullptr);
  domain_.unregister_worker(w->epoch_);
  w->epoch_ = nullptr;
  w->in_use_ = false;
}

// --- datapath ----------------------------------------------------------------

flow::Verdict CompiledDatapath::process(Worker& w, net::Packet& pkt, MemTrace* trace) {
  // Entry is a quiescent point: nothing from a previous packet survives here.
  if (w.epoch_ != nullptr) domain_.quiescent(*w.epoch_);

  Stats local;
  local.packets = 1;
  const int32_t start = start_.load(std::memory_order_acquire);
  if (ESW_UNLIKELY(start < 0)) {
    counter_bump(w.stats_.packets, 1);
    counter_bump(w.stats_.drops, 1);
    return flow::Verdict::drop();
  }

  proto::ParseInfo pi;
  proto::parse(pkt.data(), pkt.len(), plan_.load(std::memory_order_acquire), pi);
  pi.in_port = pkt.in_port();
  if (trace != nullptr) trace->touch(pkt.data(), 64);  // header cache line(s)

  // Conntrack pre-stage: stamp pi.ct_state before any table can match it.
  state::Conntrack* const ct = ct_.load(std::memory_order_acquire);
  state::Conntrack::Hit ct_hit;
  uint64_t ct_now = 0;
  if (ESW_UNLIKELY(ct != nullptr)) {
    ct_now = ct->now_ms();
    ct_hit = ct->pre(pkt.data(), pi, ct_now);
  }

  // Hot-loop discipline: per-table counters accumulate in a local window and
  // flush on return instead of read-modify-writing the shared slot counters
  // two or three times per hop.  The window-full check lives at the outer
  // loop seam, not inside the per-hop walk — real pipelines finish within
  // one window and never pay the guard branch; only pathological goto
  // chains (bounded by kMaxHops, the policy every walk flavor shares) take
  // another lap.
  struct Visit {
    int32_t slot;
    bool hit;
  };
  Visit visited[16];
  uint32_t nv = 0;
  const auto flush_visits = [&] {
    for (uint32_t i = 0; i < nv; ++i) {
      Slot& s = slots_[visited[i].slot];
      counter_add(s.lookups, 1);
      counter_add(visited[i].hit ? s.hits : s.misses, 1);
    }
    nv = 0;
  };
  const auto finish = [&](flow::Verdict v) {
    flush_visits();
    count_verdict(v, local);
    counter_bump(w.stats_.packets, local.packets);
    counter_bump(w.stats_.outputs, local.outputs);
    counter_bump(w.stats_.drops, local.drops);
    counter_bump(w.stats_.to_controller, local.to_controller);
    return v;
  };

  flow::ActionSetBuilder action_set;
  int32_t slot = start;
  for (int hops = 0; hops < kMaxHops;) {
    // One stats window per lap; the flush sits between laps.
    const int lap_end =
        std::min(hops + static_cast<int>(std::size(visited)), kMaxHops);
    for (; hops < lap_end; ++hops) {
      Slot& s = slots_[slot];
      const CompiledTable* impl = s.impl.load(std::memory_order_acquire);
      const uint64_t r =
          impl != nullptr ? impl->lookup(pkt.data(), pi, trace) : jit::kMissResult;
      if (ESW_UNLIKELY(r == jit::kMissResult)) {
        visited[nv++] = {slot, false};
        return finish(s.miss.load(std::memory_order_relaxed) ==
                              flow::FlowTable::MissPolicy::kController
                          ? flow::Verdict::controller()
                          : flow::Verdict::drop());
      }
      visited[nv++] = {slot, true};
      int32_t action = -1, next = -1;
      jit::unpack_result(r, action, next);
      if (action >= 0) action_set.merge(actions_.get(static_cast<uint32_t>(action)));
      if (next < 0) {
        // Conntrack post-stage: commit + NAT rewrite before the action set
        // runs, so set-fields and output see the translated packet.
        if (ESW_UNLIKELY(ct != nullptr))
          ct->post(ct_hit, action_set.ct_commit(), action_set.ct_profile(),
                   pkt.data(), pi, ct_now);
        return finish(action_set.execute(pkt, pi));
      }
      ESW_DCHECK(next < num_slots());
      slot = next;
    }
    flush_visits();
  }
  return finish(flow::Verdict::drop());  // pathological loop guard
}

CompiledDatapath::SlotSnapshot& CompiledDatapath::snapshot(Worker& w, int32_t slot) {
  // The scratch is sized at chunk start, but a swap landing *mid-chunk* can
  // publish an impl whose goto targets are slots allocated after that — grow
  // on demand (worker-private, so the resize races nothing).
  if (ESW_UNLIKELY(static_cast<size_t>(slot) >= w.snap_.size()))
    w.snap_.resize(static_cast<size_t>(slot) + 1);
  SlotSnapshot& s = w.snap_[slot];
  if (s.gen != w.snap_gen_) {
    s.gen = w.snap_gen_;
    s.impl = slots_[slot].impl.load(std::memory_order_acquire);
    s.miss = slots_[slot].miss.load(std::memory_order_relaxed);
    s.want_prefetch =
        s.impl != nullptr && s.impl->memory_bytes() >= kPrefetchMinBytes;
    s.delta = TableStats{};
    w.snap_touched_.push_back(slot);
  }
  return s;
}

/// Burst-shared state threaded from process_chunk into the fused walk: the
/// parse results and the conntrack pre-stage outputs (both stamped in stage 1
/// for every packet, identically in the fused and staged flavors).
struct CompiledDatapath::BurstCtx {
  proto::ParseInfo* pis;
  state::Conntrack* ct;
  state::Conntrack::Hit* ct_hits;
  uint64_t ct_now;
};

void CompiledDatapath::process_burst(Worker& w, net::Packet* const* pkts, uint32_t n,
                                     flow::Verdict* out) {
  while (n > net::kBurstSize) {
    process_chunk(w, pkts, net::kBurstSize, out);
    pkts += net::kBurstSize;
    out += net::kBurstSize;
    n -= net::kBurstSize;
  }
  if (n > 0) process_chunk(w, pkts, n, out);
}

void CompiledDatapath::process_chunk(Worker& w, net::Packet* const* pkts, uint32_t n,
                                     flow::Verdict* out) {
  // Chunk entry is the worker's quiescent point: every pointer from the
  // previous chunk's snapshots is dead, and the fresh snapshots below
  // re-read the trampolines (acquire) — so anything retired before the
  // writer observed this tick can never be loaded again.
  if (w.epoch_ != nullptr) domain_.quiescent(*w.epoch_);

  Stats local;
  local.packets = n;
  // The fused plan is loaded once per chunk: the whole chunk runs against
  // that consistent graph (its impl pointers, not the trampolines), so a
  // concurrent republish only lands at the next chunk — the same staleness
  // bound as the staged snapshots.
  const FusedPipeline* const fp = fused_.load(std::memory_order_acquire);
  const int32_t start = start_.load(std::memory_order_acquire);
  if (ESW_UNLIKELY(start < 0 && fp == nullptr)) {
    local.drops = n;
    for (uint32_t i = 0; i < n; ++i) out[i] = flow::Verdict::drop();
    counter_bump(w.stats_.packets, local.packets);
    counter_bump(w.stats_.drops, local.drops);
    return;
  }

  // Conntrack maintenance rides the chunk boundary: this is a quiescent
  // point, so no Hit pointer from a previous chunk can survive into the
  // expiry/reclaim work poll() does.
  state::Conntrack* const ct = ct_.load(std::memory_order_acquire);
  state::Conntrack::Hit ct_hits[net::kBurstSize];
  uint64_t ct_now = 0;
  if (ESW_UNLIKELY(ct != nullptr)) {
    ct_now = ct->now_ms();
    ct->poll(ct_now);
  }

  // Stage 1: parse the whole burst, the next frame's header line in flight
  // while the current one parses.  The conntrack pre-stage runs here too —
  // ct_state must be stamped before any lookup can match it.
  const proto::ParserPlan plan = plan_.load(std::memory_order_acquire);
  proto::ParseInfo pis[net::kBurstSize];
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) esw_prefetch(pkts[i + 1]->data());
    proto::parse(pkts[i]->data(), pkts[i]->len(), plan, pis[i]);
    pis[i].in_port = pkts[i]->in_port();
    if (ESW_UNLIKELY(ct != nullptr))
      ct_hits[i] = ct->pre(pkts[i]->data(), pis[i], ct_now);
  }

  // Fused fast path: the whole goto graph as one plan (machine code where
  // members are direct-code, pinned impls elsewhere).  Falls back to the
  // staged walk below whenever no plan is published.
  if (fp != nullptr) {
    const BurstCtx ctx{pis, ct, ct_hits, ct_now};
    process_chunk_fused(w, *fp, pkts, n, out, ctx);
    return;
  }

  // Stage 2: hoist the per-slot acquire loads and miss policies to once per
  // burst.  Safe under epoch reclamation: a snapshot taken here stays valid
  // for the whole chunk because the writer frees a displaced impl only after
  // this worker's *next* tick.
  ++w.snap_gen_;
  const size_t n_slots = static_cast<size_t>(n_slots_.load(std::memory_order_acquire));
  if (w.snap_.size() < n_slots) w.snap_.resize(n_slots);
  // By value: a mid-chunk goto into a just-allocated slot can grow w.snap_
  // (see snapshot()), which would invalidate a reference held across the loop.
  const SlotSnapshot start_snap = snapshot(w, start);

  // Stage 3: walk each packet with packet i+1's first table lookup lines in
  // flight (software pipelining within the burst), stats in locals.
  if (start_snap.want_prefetch)
    start_snap.impl->prefetch(pkts[0]->data(), pis[0]);
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n && start_snap.want_prefetch)
      start_snap.impl->prefetch(pkts[i + 1]->data(), pis[i + 1]);

    net::Packet& pkt = *pkts[i];
    proto::ParseInfo& pi = pis[i];
    flow::ActionSetBuilder action_set;
    flow::Verdict v = flow::Verdict::drop();
    int32_t slot = start;
    for (int hops = 0; hops < kMaxHops; ++hops) {
      SlotSnapshot& s = snapshot(w, slot);
      ++s.delta.lookups;
      const uint64_t r =
          s.impl != nullptr ? s.impl->lookup(pkt.data(), pi) : jit::kMissResult;
      if (ESW_UNLIKELY(r == jit::kMissResult)) {
        ++s.delta.misses;
        v = s.miss == flow::FlowTable::MissPolicy::kController
                ? flow::Verdict::controller()
                : flow::Verdict::drop();
        break;
      }
      ++s.delta.hits;
      int32_t action = -1, next = -1;
      jit::unpack_result(r, action, next);
      if (action >= 0) action_set.merge(actions_.get(static_cast<uint32_t>(action)));
      if (next < 0) {
        if (ESW_UNLIKELY(ct != nullptr))
          ct->post(ct_hits[i], action_set.ct_commit(), action_set.ct_profile(),
                   pkt.data(), pi, ct_now);
        v = action_set.execute(pkt, pi);
        break;
      }
      ESW_DCHECK(next < num_slots());
      slot = next;
    }
    count_verdict(v, local);  // the loop-guard fallthrough drop counts too
    out[i] = v;
  }

  // Stage 4: flush the burst's stat deltas in one pass.
  for (const int32_t slot : w.snap_touched_) {
    Slot& s = slots_[slot];
    const TableStats& d = w.snap_[slot].delta;
    counter_add(s.lookups, d.lookups);
    counter_add(s.hits, d.hits);
    counter_add(s.misses, d.misses);
  }
  w.snap_touched_.clear();
  counter_bump(w.stats_.packets, local.packets);
  counter_bump(w.stats_.outputs, local.outputs);
  counter_bump(w.stats_.drops, local.drops);
  counter_bump(w.stats_.to_controller, local.to_controller);
}

void CompiledDatapath::process_chunk_fused(Worker& w, const FusedPipeline& fp,
                                           net::Packet* const* pkts, uint32_t n,
                                           flow::Verdict* out, const BurstCtx& ctx) {
  Stats local;
  local.packets = n;
  const uint32_t n_stages = static_cast<uint32_t>(fp.stages.size());
  if (ESW_UNLIKELY(n_stages == 0)) {  // defensive: never published empty
    local.drops = n;
    for (uint32_t i = 0; i < n; ++i) out[i] = flow::Verdict::drop();
    counter_bump(w.stats_.packets, local.packets);
    counter_bump(w.stats_.drops, local.drops);
    return;
  }
  ESW_DCHECK(fp.start_stage < n_stages);

  // The per-stage stat delta block the machine code increments directly
  // (jit/fusion.hpp layout) and the staged stages share.
  const size_t n_counters = static_cast<size_t>(n_stages) * jit::kFusedStatStride;
  if (w.fused_delta_.size() < n_counters) w.fused_delta_.resize(n_counters);
  std::fill_n(w.fused_delta_.begin(), n_counters, uint64_t{0});
  if (w.fused_actions_.size() < n_stages) w.fused_actions_.resize(n_stages);
  uint64_t* const delta = w.fused_delta_.data();

  // Walk state: cur >= 0 is the packet's stage; -1 = path end reached
  // (finalized in packet order below); -2 = verdict already in vd.
  flow::ActionSetBuilder asb[net::kBurstSize];
  int32_t cur[net::kBurstSize];
  flow::Verdict vd[net::kBurstSize];
  uint32_t live = n;
  for (uint32_t i = 0; i < n; ++i) cur[i] = static_cast<int32_t>(fp.start_stage);

  // Round 0 keeps the staged walk's one-ahead start-stage prefetch.
  const FusedPipeline::Stage& ss = fp.stages[fp.start_stage];
  if (ss.want_prefetch) ss.impl->prefetch(pkts[0]->data(), ctx.pis[0]);

  // Round-based walk: every live packet advances at least one stage per
  // round (gotos are forward-only in a fused plan), so n_stages rounds
  // finish every packet; anything still live after the clamp takes the
  // same drop the kMaxHops guard applies on the staged paths.
  for (uint32_t round = 0; round <= n_stages && live > 0; ++round) {
    for (uint32_t i = 0; i < n; ++i) {
      const int32_t cs = cur[i];
      if (cs < 0) continue;
      if (round == 0 && i + 1 < n && ss.want_prefetch)
        ss.impl->prefetch(pkts[i + 1]->data(), ctx.pis[i + 1]);
      net::Packet& pkt = *pkts[i];
      proto::ParseInfo& pi = ctx.pis[i];
      const FusedPipeline::Stage& s = fp.stages[cs];
      int32_t ts;  // next stage
      if (s.entry != nullptr) {
        // Machine subgraph: runs fused members until the walk completes,
        // misses, or exits toward a staged stage.  Per-stage counters are
        // bumped by the generated code itself.
        const uint64_t word =
            s.entry(pkt.data(), &pi, w.fused_actions_.data(), delta);
        const uint32_t nact = jit::fused_exit_actions(word);
        for (uint32_t k = 0; k < nact; ++k)
          asb[i].merge(actions_.get(static_cast<uint32_t>(w.fused_actions_[k])));
        if (word & jit::kFusedCompleted) {
          cur[i] = -1;
          --live;
          continue;
        }
        if (word & jit::kFusedMiss) {
          const uint32_t ms = jit::fused_exit_stage(word);
          vd[i] = fp.stages[ms].miss == flow::FlowTable::MissPolicy::kController
                      ? flow::Verdict::controller()
                      : flow::Verdict::drop();
          cur[i] = -2;
          --live;
          continue;
        }
        ts = static_cast<int32_t>(jit::fused_exit_stage(word));
      } else {
        // Staged stage inside the plan: pinned impl, same decode as the
        // slot walk, stats into the shared delta block.
        ++delta[cs * jit::kFusedStatStride + jit::kFusedStatLookups];
        const uint64_t r = s.impl->lookup(pkt.data(), pi);
        if (ESW_UNLIKELY(r == jit::kMissResult)) {
          ++delta[cs * jit::kFusedStatStride + jit::kFusedStatMisses];
          vd[i] = s.miss == flow::FlowTable::MissPolicy::kController
                      ? flow::Verdict::controller()
                      : flow::Verdict::drop();
          cur[i] = -2;
          --live;
          continue;
        }
        ++delta[cs * jit::kFusedStatStride + jit::kFusedStatHits];
        int32_t action = -1, next = -1;
        jit::unpack_result(r, action, next);
        if (action >= 0) asb[i].merge(actions_.get(static_cast<uint32_t>(action)));
        if (next < 0) {
          cur[i] = -1;
          --live;
          continue;
        }
        ts = static_cast<size_t>(next) < fp.stage_of_slot.size()
                 ? fp.stage_of_slot[next]
                 : -1;
      }
      if (ESW_UNLIKELY(ts <= cs || static_cast<uint32_t>(ts) >= n_stages)) {
        vd[i] = flow::Verdict::drop();  // unresolvable/backward: guard drop
        cur[i] = -2;
        --live;
        continue;
      }
      // Transition: issue the next stage's lookup prefetch now, consume it
      // next round — the cross-table extension of the one-ahead pipelining.
      const FusedPipeline::Stage& nx = fp.stages[ts];
      if (nx.want_prefetch) nx.impl->prefetch(pkt.data(), pi);
      cur[i] = ts;
    }
  }

  // Finalize in packet order: conntrack post-stage + action execution for
  // completed packets — identical ordering and side effects to the staged
  // walk, which finishes packet i before touching packet i+1.
  for (uint32_t i = 0; i < n; ++i) {
    flow::Verdict v = flow::Verdict::drop();
    if (cur[i] == -1) {
      if (ESW_UNLIKELY(ctx.ct != nullptr))
        ctx.ct->post(ctx.ct_hits[i], asb[i].ct_commit(), asb[i].ct_profile(),
                     pkts[i]->data(), ctx.pis[i], ctx.ct_now);
      v = asb[i].execute(*pkts[i], ctx.pis[i]);
    } else if (cur[i] == -2) {
      v = vd[i];
    }
    count_verdict(v, local);
    out[i] = v;
  }

  // Flush the chunk's stat deltas into the owning slots' shared counters.
  for (uint32_t cs = 0; cs < n_stages; ++cs) {
    Slot& s = slots_[fp.stages[cs].slot];
    const uint64_t* d = delta + cs * jit::kFusedStatStride;
    if (d[jit::kFusedStatLookups] != 0)
      counter_add(s.lookups, d[jit::kFusedStatLookups]);
    if (d[jit::kFusedStatHits] != 0) counter_add(s.hits, d[jit::kFusedStatHits]);
    if (d[jit::kFusedStatMisses] != 0)
      counter_add(s.misses, d[jit::kFusedStatMisses]);
  }
  counter_bump(w.stats_.packets, local.packets);
  counter_bump(w.stats_.outputs, local.outputs);
  counter_bump(w.stats_.drops, local.drops);
  counter_bump(w.stats_.to_controller, local.to_controller);
}

// --- introspection -----------------------------------------------------------

CompiledDatapath::TableStats CompiledDatapath::table_stats(int32_t slot) const {
  const Slot& s = slots_[slot];
  return {s.lookups.load(std::memory_order_relaxed),
          s.hits.load(std::memory_order_relaxed),
          s.misses.load(std::memory_order_relaxed)};
}

CompiledDatapath::Stats CompiledDatapath::stats() const {
  Stats out;
  for (uint32_t i = 0; i <= kMaxWorkers; ++i) {
    const Worker::StatBlock& b = workers_[i].stats_;
    out.packets += b.packets.load(std::memory_order_relaxed);
    out.outputs += b.outputs.load(std::memory_order_relaxed);
    out.drops += b.drops.load(std::memory_order_relaxed);
    out.to_controller += b.to_controller.load(std::memory_order_relaxed);
  }
  return out;
}

void CompiledDatapath::clear_stats() {
  for (uint32_t i = 0; i <= kMaxWorkers; ++i) {
    Worker::StatBlock& b = workers_[i].stats_;
    b.packets.store(0, std::memory_order_relaxed);
    b.outputs.store(0, std::memory_order_relaxed);
    b.drops.store(0, std::memory_order_relaxed);
    b.to_controller.store(0, std::memory_order_relaxed);
  }
  const int32_t n = n_slots_.load(std::memory_order_relaxed);
  for (int32_t i = 0; i < n; ++i) {
    slots_[i].lookups.store(0, std::memory_order_relaxed);
    slots_[i].hits.store(0, std::memory_order_relaxed);
    slots_[i].misses.store(0, std::memory_order_relaxed);
  }
}

CompiledDatapath::ReclaimStats CompiledDatapath::reclaim_stats() const {
  return {retired_impls_.retired_total() + retired_slots_.retired_total() +
              retired_fused_.retired_total(),
          retired_impls_.reclaimed_total() + retired_slots_.reclaimed_total() +
              retired_fused_.reclaimed_total(),
          retired_impls_.pending() + retired_slots_.pending() +
              retired_fused_.pending()};
}

size_t CompiledDatapath::memory_bytes() const {
  size_t n = 0;
  for (const auto& t : live_) n += t->memory_bytes();
  return n;
}

}  // namespace esw::core
