#include "core/datapath.hpp"

#include <iterator>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace esw::core {

int32_t CompiledDatapath::add_slot(flow::FlowTable::MissPolicy miss) {
  slots_.emplace_back();
  slots_.back().miss = miss;
  return static_cast<int32_t>(slots_.size() - 1);
}

void CompiledDatapath::set_impl(int32_t slot, std::unique_ptr<CompiledTable> impl) {
  CompiledTable* fresh = impl.get();
  live_.push_back(std::move(impl));
  CompiledTable* old = slots_[slot].impl.exchange(fresh, std::memory_order_release);
  if (old != nullptr) {
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (it->get() == old) {
        retired_.push_back(std::move(*it));
        live_.erase(it);
        break;
      }
    }
  }
}

void CompiledDatapath::set_miss_policy(int32_t slot, flow::FlowTable::MissPolicy miss) {
  slots_[slot].miss = miss;
}

namespace {

/// Global-stat outcome of a verdict.  A controller verdict covers both the
/// miss-policy punt and an explicit controller action; flood counts as
/// output.  Folding the bookkeeping over the verdict keeps every exit path
/// (miss, action set, loop guard, empty datapath) on one counting rule.
void count_verdict(const flow::Verdict& v, CompiledDatapath::Stats& st) {
  switch (v.kind) {
    case flow::Verdict::Kind::kOutput:
    case flow::Verdict::Kind::kFlood:
      ++st.outputs;
      break;
    case flow::Verdict::Kind::kController:
      ++st.to_controller;
      break;
    case flow::Verdict::Kind::kDrop:
      ++st.drops;
      break;
  }
}

}  // namespace

flow::Verdict CompiledDatapath::process(net::Packet& pkt, MemTrace* trace) {
  ++stats_.packets;
  if (ESW_UNLIKELY(start_ < 0)) {
    ++stats_.drops;
    return flow::Verdict::drop();
  }

  proto::ParseInfo pi;
  proto::parse(pkt.data(), pkt.len(), plan_, pi);
  pi.in_port = pkt.in_port();
  if (trace != nullptr) trace->touch(pkt.data(), 64);  // header cache line(s)

  // Hot-loop discipline: per-table counters accumulate in a local window and
  // flush on return instead of read-modify-writing slots_[slot].stats two or
  // three times per hop.  Real pipelines are a handful of hops deep; the
  // window flushes mid-walk only on pathological goto chains.
  struct Visit {
    int32_t slot;
    bool hit;
  };
  Visit visited[16];
  uint32_t nv = 0;
  const auto flush_visits = [&] {
    for (uint32_t i = 0; i < nv; ++i) {
      TableStats& ts = slots_[visited[i].slot].stats;
      ++ts.lookups;
      if (visited[i].hit)
        ++ts.hits;
      else
        ++ts.misses;
    }
    nv = 0;
  };
  const auto finish = [&](flow::Verdict v) {
    flush_visits();
    count_verdict(v, stats_);
    return v;
  };

  flow::ActionSetBuilder action_set;
  int32_t slot = start_;
  for (int hops = 0; hops < kMaxHops; ++hops) {
    const Slot& s = slots_[slot];
    const CompiledTable* impl = s.impl.load(std::memory_order_acquire);
    if (ESW_UNLIKELY(nv == std::size(visited))) flush_visits();
    const uint64_t r =
        impl != nullptr ? impl->lookup(pkt.data(), pi, trace) : jit::kMissResult;
    if (ESW_UNLIKELY(r == jit::kMissResult)) {
      visited[nv++] = {slot, false};
      return finish(s.miss == flow::FlowTable::MissPolicy::kController
                        ? flow::Verdict::controller()
                        : flow::Verdict::drop());
    }
    visited[nv++] = {slot, true};
    int32_t action = -1, next = -1;
    jit::unpack_result(r, action, next);
    if (action >= 0) action_set.merge(actions_.get(static_cast<uint32_t>(action)));
    if (next < 0) return finish(action_set.execute(pkt, pi));
    ESW_DCHECK(next < num_slots());
    slot = next;
  }
  return finish(flow::Verdict::drop());  // pathological loop guard
}

CompiledDatapath::SlotSnapshot& CompiledDatapath::snapshot(int32_t slot) {
  SlotSnapshot& s = snap_[slot];
  if (s.gen != snap_gen_) {
    s.gen = snap_gen_;
    s.impl = slots_[slot].impl.load(std::memory_order_acquire);
    s.miss = slots_[slot].miss;
    s.want_prefetch =
        s.impl != nullptr && s.impl->memory_bytes() >= kPrefetchMinBytes;
    s.delta = TableStats{};
    snap_touched_.push_back(slot);
  }
  return s;
}

void CompiledDatapath::process_burst(net::Packet* const* pkts, uint32_t n,
                                     flow::Verdict* out) {
  while (n > net::kBurstSize) {
    process_chunk(pkts, net::kBurstSize, out);
    pkts += net::kBurstSize;
    out += net::kBurstSize;
    n -= net::kBurstSize;
  }
  if (n > 0) process_chunk(pkts, n, out);
}

void CompiledDatapath::process_chunk(net::Packet* const* pkts, uint32_t n,
                                     flow::Verdict* out) {
  Stats local;
  local.packets = n;
  if (ESW_UNLIKELY(start_ < 0)) {
    local.drops = n;
    for (uint32_t i = 0; i < n; ++i) out[i] = flow::Verdict::drop();
    stats_.packets += local.packets;
    stats_.drops += local.drops;
    return;
  }

  // Stage 1: parse the whole burst, the next frame's header line in flight
  // while the current one parses.
  proto::ParseInfo pis[net::kBurstSize];
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) esw_prefetch(pkts[i + 1]->data());
    proto::parse(pkts[i]->data(), pkts[i]->len(), plan_, pis[i]);
    pis[i].in_port = pkts[i]->in_port();
  }

  // Stage 2: hoist the per-slot acquire loads and miss policies to once per
  // burst.  Safe under the single-writer quiescent-publication model: the
  // writer only swaps trampolines while no reader is inside the datapath, so
  // a snapshot taken at burst start stays valid for the whole burst.
  ++snap_gen_;
  if (snap_.size() != slots_.size()) snap_.assign(slots_.size(), SlotSnapshot{});
  const SlotSnapshot& start_snap = snapshot(start_);

  // Stage 3: walk each packet with packet i+1's first table lookup lines in
  // flight (software pipelining within the burst), stats in locals.
  if (start_snap.want_prefetch)
    start_snap.impl->prefetch(pkts[0]->data(), pis[0]);
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n && start_snap.want_prefetch)
      start_snap.impl->prefetch(pkts[i + 1]->data(), pis[i + 1]);

    net::Packet& pkt = *pkts[i];
    proto::ParseInfo& pi = pis[i];
    flow::ActionSetBuilder action_set;
    flow::Verdict v = flow::Verdict::drop();
    int32_t slot = start_;
    for (int hops = 0; hops < kMaxHops; ++hops) {
      SlotSnapshot& s = snapshot(slot);
      ++s.delta.lookups;
      const uint64_t r =
          s.impl != nullptr ? s.impl->lookup(pkt.data(), pi) : jit::kMissResult;
      if (ESW_UNLIKELY(r == jit::kMissResult)) {
        ++s.delta.misses;
        v = s.miss == flow::FlowTable::MissPolicy::kController
                ? flow::Verdict::controller()
                : flow::Verdict::drop();
        break;
      }
      ++s.delta.hits;
      int32_t action = -1, next = -1;
      jit::unpack_result(r, action, next);
      if (action >= 0) action_set.merge(actions_.get(static_cast<uint32_t>(action)));
      if (next < 0) {
        v = action_set.execute(pkt, pi);
        break;
      }
      ESW_DCHECK(next < num_slots());
      slot = next;
    }
    count_verdict(v, local);  // the loop-guard fallthrough drop counts too
    out[i] = v;
  }

  // Stage 4: flush the burst's stat deltas in one pass.
  for (const int32_t slot : snap_touched_) {
    TableStats& ts = slots_[slot].stats;
    const TableStats& d = snap_[slot].delta;
    ts.lookups += d.lookups;
    ts.hits += d.hits;
    ts.misses += d.misses;
  }
  snap_touched_.clear();
  stats_.packets += local.packets;
  stats_.outputs += local.outputs;
  stats_.drops += local.drops;
  stats_.to_controller += local.to_controller;
}

void CompiledDatapath::collect() { retired_.clear(); }

void CompiledDatapath::reset() {
  slots_.clear();
  live_.clear();
  retired_.clear();
  snap_.clear();
  snap_touched_.clear();
  start_ = -1;
  stats_ = Stats{};
}

void CompiledDatapath::clear_stats() {
  stats_ = Stats{};
  for (Slot& s : slots_) s.stats = TableStats{};
}

size_t CompiledDatapath::memory_bytes() const {
  size_t n = 0;
  for (const auto& t : live_) n += t->memory_bytes();
  return n;
}

}  // namespace esw::core
