#include "core/datapath.hpp"

#include <iterator>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/counters.hpp"
#include "common/failpoint.hpp"
#include "state/conntrack.hpp"

namespace esw::core {

namespace {

using common::counter_add;   // multi-writer per-slot stats, once per burst
using common::counter_bump;  // single-writer worker stat blocks

/// Global-stat outcome of a verdict.  A controller verdict covers both the
/// miss-policy punt and an explicit controller action; flood counts as
/// output.  Folding the bookkeeping over the verdict keeps every exit path
/// (miss, action set, loop guard, empty datapath) on one counting rule.
void count_verdict(const flow::Verdict& v, CompiledDatapath::Stats& st) {
  switch (v.kind) {
    case flow::Verdict::Kind::kOutput:
    case flow::Verdict::Kind::kFlood:
      ++st.outputs;
      break;
    case flow::Verdict::Kind::kController:
      ++st.to_controller;
      break;
    case flow::Verdict::Kind::kDrop:
      ++st.drops;
      break;
  }
}

}  // namespace

CompiledDatapath::CompiledDatapath()
    : slots_(new Slot[kMaxSlots]), workers_(new Worker[kMaxWorkers + 1]) {
  for (uint32_t i = 0; i <= kMaxWorkers; ++i) workers_[i].id_ = i;
}

// --- control plane -----------------------------------------------------------

int32_t CompiledDatapath::add_slot(flow::FlowTable::MissPolicy miss) {
  int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = n_slots_.load(std::memory_order_relaxed);
    ESW_CHECK_MSG(slot < kMaxSlots, "out of trampoline slots");
    n_slots_.store(slot + 1, std::memory_order_release);
  }
  slots_[slot].miss.store(miss, std::memory_order_relaxed);
  return slot;
}

std::unique_ptr<CompiledTable> CompiledDatapath::take_live(CompiledTable* old) {
  for (auto it = live_.begin(); it != live_.end(); ++it) {
    if (it->get() == old) {
      std::unique_ptr<CompiledTable> taken = std::move(*it);
      live_.erase(it);
      return taken;
    }
  }
  ESW_CHECK_MSG(false, "retiring an implementation the datapath does not own");
  return nullptr;
}

void CompiledDatapath::retire_impl(CompiledTable* old) {
  retired_impls_.retire(take_live(old), domain_.current_epoch());
}

void CompiledDatapath::set_impl(int32_t slot, std::unique_ptr<CompiledTable> impl) {
  CompiledTable* fresh = impl.get();
  live_.push_back(std::move(impl));
  CompiledTable* old = slots_[slot].impl.exchange(fresh, std::memory_order_acq_rel);
  if (old != nullptr) retire_impl(old);
}

void CompiledDatapath::retire_slot(int32_t slot) {
  // The impl stays *published*: a reader mid-burst on the pre-swap root may
  // still jump here and must find the old table, not a nullptr miss (the
  // old-or-new verdict guarantee).  The slot only becomes unreachable for
  // bursts that start after the swap, so pointer, object and slot id are all
  // reclaimed together once the grace period ends (recycle_slot).
  retired_slots_.retire(slot, domain_.current_epoch());
}

void CompiledDatapath::recycle_slot(int32_t slot) {
  // Grace period over: no worker can reach this slot anymore (every burst
  // started after the root swap), so unpublishing, destroying the impl and
  // zeroing the counters cannot race anything.
  CompiledTable* old = slots_[slot].impl.exchange(nullptr, std::memory_order_relaxed);
  if (old != nullptr) take_live(old);  // destroyed here — grace already served
  slots_[slot].lookups.store(0, std::memory_order_relaxed);
  slots_[slot].hits.store(0, std::memory_order_relaxed);
  slots_[slot].misses.store(0, std::memory_order_relaxed);
  free_slots_.push_back(slot);
}

uint64_t CompiledDatapath::reclaim() {
  // Injectable stall: skip this pass as if no grace period had elapsed.
  // Retirements stay pending (bounded growth, audited by the soak's reclaim
  // check) until a later pass runs with the point disarmed.
  if (ESW_FAILPOINT("epoch.reclaim")) return 0;
  if (retired_impls_.pending() == 0 && retired_slots_.pending() == 0) return 0;
  const uint64_t horizon = domain_.advance_and_horizon();
  uint64_t n = retired_impls_.reclaim(horizon);
  n += retired_slots_.reclaim_into(horizon,
                                   [this](int32_t slot) { recycle_slot(slot); });
  return n;
}

void CompiledDatapath::set_miss_policy(int32_t slot, flow::FlowTable::MissPolicy miss) {
  slots_[slot].miss.store(miss, std::memory_order_relaxed);
}

void CompiledDatapath::reset() {
  ESW_CHECK_MSG(!domain_.has_workers(),
                "reset()/install() is stop-the-world: unregister workers first");
  const int32_t n = n_slots_.load(std::memory_order_relaxed);
  for (int32_t i = 0; i < n; ++i) {
    slots_[i].impl.store(nullptr, std::memory_order_relaxed);
    slots_[i].miss.store(flow::FlowTable::MissPolicy::kDrop, std::memory_order_relaxed);
    slots_[i].lookups.store(0, std::memory_order_relaxed);
    slots_[i].hits.store(0, std::memory_order_relaxed);
    slots_[i].misses.store(0, std::memory_order_relaxed);
  }
  n_slots_.store(0, std::memory_order_release);
  free_slots_.clear();
  live_.clear();
  retired_impls_.clear();   // no workers: immediate free is safe
  retired_slots_.clear();
  start_.store(-1, std::memory_order_release);
  clear_stats();
}

// --- worker management -------------------------------------------------------

CompiledDatapath::Worker* CompiledDatapath::register_worker() {
  for (uint32_t i = 1; i <= kMaxWorkers; ++i) {
    Worker& w = workers_[i];
    if (w.in_use_) continue;
    w.epoch_ = domain_.register_worker();
    ESW_CHECK(w.epoch_ != nullptr);
    w.snap_gen_ = 0;
    w.snap_.clear();
    w.snap_touched_.clear();
    w.in_use_ = true;
    return &w;
  }
  return nullptr;
}

void CompiledDatapath::unregister_worker(Worker* w) {
  ESW_CHECK(w != nullptr && w->in_use_ && w->epoch_ != nullptr);
  domain_.unregister_worker(w->epoch_);
  w->epoch_ = nullptr;
  w->in_use_ = false;
}

// --- datapath ----------------------------------------------------------------

flow::Verdict CompiledDatapath::process(Worker& w, net::Packet& pkt, MemTrace* trace) {
  // Entry is a quiescent point: nothing from a previous packet survives here.
  if (w.epoch_ != nullptr) domain_.quiescent(*w.epoch_);

  Stats local;
  local.packets = 1;
  const int32_t start = start_.load(std::memory_order_acquire);
  if (ESW_UNLIKELY(start < 0)) {
    counter_bump(w.stats_.packets, 1);
    counter_bump(w.stats_.drops, 1);
    return flow::Verdict::drop();
  }

  proto::ParseInfo pi;
  proto::parse(pkt.data(), pkt.len(), plan_.load(std::memory_order_acquire), pi);
  pi.in_port = pkt.in_port();
  if (trace != nullptr) trace->touch(pkt.data(), 64);  // header cache line(s)

  // Conntrack pre-stage: stamp pi.ct_state before any table can match it.
  state::Conntrack* const ct = ct_.load(std::memory_order_acquire);
  state::Conntrack::Hit ct_hit;
  uint64_t ct_now = 0;
  if (ESW_UNLIKELY(ct != nullptr)) {
    ct_now = ct->now_ms();
    ct_hit = ct->pre(pkt.data(), pi, ct_now);
  }

  // Hot-loop discipline: per-table counters accumulate in a local window and
  // flush on return instead of read-modify-writing the shared slot counters
  // two or three times per hop.  Real pipelines are a handful of hops deep;
  // the window flushes mid-walk only on pathological goto chains.
  struct Visit {
    int32_t slot;
    bool hit;
  };
  Visit visited[16];
  uint32_t nv = 0;
  const auto flush_visits = [&] {
    for (uint32_t i = 0; i < nv; ++i) {
      Slot& s = slots_[visited[i].slot];
      counter_add(s.lookups, 1);
      counter_add(visited[i].hit ? s.hits : s.misses, 1);
    }
    nv = 0;
  };
  const auto finish = [&](flow::Verdict v) {
    flush_visits();
    count_verdict(v, local);
    counter_bump(w.stats_.packets, local.packets);
    counter_bump(w.stats_.outputs, local.outputs);
    counter_bump(w.stats_.drops, local.drops);
    counter_bump(w.stats_.to_controller, local.to_controller);
    return v;
  };

  flow::ActionSetBuilder action_set;
  int32_t slot = start;
  for (int hops = 0; hops < kMaxHops; ++hops) {
    Slot& s = slots_[slot];
    const CompiledTable* impl = s.impl.load(std::memory_order_acquire);
    if (ESW_UNLIKELY(nv == std::size(visited))) flush_visits();
    const uint64_t r =
        impl != nullptr ? impl->lookup(pkt.data(), pi, trace) : jit::kMissResult;
    if (ESW_UNLIKELY(r == jit::kMissResult)) {
      visited[nv++] = {slot, false};
      return finish(s.miss.load(std::memory_order_relaxed) ==
                            flow::FlowTable::MissPolicy::kController
                        ? flow::Verdict::controller()
                        : flow::Verdict::drop());
    }
    visited[nv++] = {slot, true};
    int32_t action = -1, next = -1;
    jit::unpack_result(r, action, next);
    if (action >= 0) action_set.merge(actions_.get(static_cast<uint32_t>(action)));
    if (next < 0) {
      // Conntrack post-stage: commit + NAT rewrite before the action set
      // runs, so set-fields and output see the translated packet.
      if (ESW_UNLIKELY(ct != nullptr))
        ct->post(ct_hit, action_set.ct_commit(), action_set.ct_profile(),
                 pkt.data(), pi, ct_now);
      return finish(action_set.execute(pkt, pi));
    }
    ESW_DCHECK(next < num_slots());
    slot = next;
  }
  return finish(flow::Verdict::drop());  // pathological loop guard
}

CompiledDatapath::SlotSnapshot& CompiledDatapath::snapshot(Worker& w, int32_t slot) {
  // The scratch is sized at chunk start, but a swap landing *mid-chunk* can
  // publish an impl whose goto targets are slots allocated after that — grow
  // on demand (worker-private, so the resize races nothing).
  if (ESW_UNLIKELY(static_cast<size_t>(slot) >= w.snap_.size()))
    w.snap_.resize(static_cast<size_t>(slot) + 1);
  SlotSnapshot& s = w.snap_[slot];
  if (s.gen != w.snap_gen_) {
    s.gen = w.snap_gen_;
    s.impl = slots_[slot].impl.load(std::memory_order_acquire);
    s.miss = slots_[slot].miss.load(std::memory_order_relaxed);
    s.want_prefetch =
        s.impl != nullptr && s.impl->memory_bytes() >= kPrefetchMinBytes;
    s.delta = TableStats{};
    w.snap_touched_.push_back(slot);
  }
  return s;
}

void CompiledDatapath::process_burst(Worker& w, net::Packet* const* pkts, uint32_t n,
                                     flow::Verdict* out) {
  while (n > net::kBurstSize) {
    process_chunk(w, pkts, net::kBurstSize, out);
    pkts += net::kBurstSize;
    out += net::kBurstSize;
    n -= net::kBurstSize;
  }
  if (n > 0) process_chunk(w, pkts, n, out);
}

void CompiledDatapath::process_chunk(Worker& w, net::Packet* const* pkts, uint32_t n,
                                     flow::Verdict* out) {
  // Chunk entry is the worker's quiescent point: every pointer from the
  // previous chunk's snapshots is dead, and the fresh snapshots below
  // re-read the trampolines (acquire) — so anything retired before the
  // writer observed this tick can never be loaded again.
  if (w.epoch_ != nullptr) domain_.quiescent(*w.epoch_);

  Stats local;
  local.packets = n;
  const int32_t start = start_.load(std::memory_order_acquire);
  if (ESW_UNLIKELY(start < 0)) {
    local.drops = n;
    for (uint32_t i = 0; i < n; ++i) out[i] = flow::Verdict::drop();
    counter_bump(w.stats_.packets, local.packets);
    counter_bump(w.stats_.drops, local.drops);
    return;
  }

  // Conntrack maintenance rides the chunk boundary: this is a quiescent
  // point, so no Hit pointer from a previous chunk can survive into the
  // expiry/reclaim work poll() does.
  state::Conntrack* const ct = ct_.load(std::memory_order_acquire);
  state::Conntrack::Hit ct_hits[net::kBurstSize];
  uint64_t ct_now = 0;
  if (ESW_UNLIKELY(ct != nullptr)) {
    ct_now = ct->now_ms();
    ct->poll(ct_now);
  }

  // Stage 1: parse the whole burst, the next frame's header line in flight
  // while the current one parses.  The conntrack pre-stage runs here too —
  // ct_state must be stamped before any lookup can match it.
  const proto::ParserPlan plan = plan_.load(std::memory_order_acquire);
  proto::ParseInfo pis[net::kBurstSize];
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) esw_prefetch(pkts[i + 1]->data());
    proto::parse(pkts[i]->data(), pkts[i]->len(), plan, pis[i]);
    pis[i].in_port = pkts[i]->in_port();
    if (ESW_UNLIKELY(ct != nullptr))
      ct_hits[i] = ct->pre(pkts[i]->data(), pis[i], ct_now);
  }

  // Stage 2: hoist the per-slot acquire loads and miss policies to once per
  // burst.  Safe under epoch reclamation: a snapshot taken here stays valid
  // for the whole chunk because the writer frees a displaced impl only after
  // this worker's *next* tick.
  ++w.snap_gen_;
  const size_t n_slots = static_cast<size_t>(n_slots_.load(std::memory_order_acquire));
  if (w.snap_.size() < n_slots) w.snap_.resize(n_slots);
  // By value: a mid-chunk goto into a just-allocated slot can grow w.snap_
  // (see snapshot()), which would invalidate a reference held across the loop.
  const SlotSnapshot start_snap = snapshot(w, start);

  // Stage 3: walk each packet with packet i+1's first table lookup lines in
  // flight (software pipelining within the burst), stats in locals.
  if (start_snap.want_prefetch)
    start_snap.impl->prefetch(pkts[0]->data(), pis[0]);
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n && start_snap.want_prefetch)
      start_snap.impl->prefetch(pkts[i + 1]->data(), pis[i + 1]);

    net::Packet& pkt = *pkts[i];
    proto::ParseInfo& pi = pis[i];
    flow::ActionSetBuilder action_set;
    flow::Verdict v = flow::Verdict::drop();
    int32_t slot = start;
    for (int hops = 0; hops < kMaxHops; ++hops) {
      SlotSnapshot& s = snapshot(w, slot);
      ++s.delta.lookups;
      const uint64_t r =
          s.impl != nullptr ? s.impl->lookup(pkt.data(), pi) : jit::kMissResult;
      if (ESW_UNLIKELY(r == jit::kMissResult)) {
        ++s.delta.misses;
        v = s.miss == flow::FlowTable::MissPolicy::kController
                ? flow::Verdict::controller()
                : flow::Verdict::drop();
        break;
      }
      ++s.delta.hits;
      int32_t action = -1, next = -1;
      jit::unpack_result(r, action, next);
      if (action >= 0) action_set.merge(actions_.get(static_cast<uint32_t>(action)));
      if (next < 0) {
        if (ESW_UNLIKELY(ct != nullptr))
          ct->post(ct_hits[i], action_set.ct_commit(), action_set.ct_profile(),
                   pkt.data(), pi, ct_now);
        v = action_set.execute(pkt, pi);
        break;
      }
      ESW_DCHECK(next < num_slots());
      slot = next;
    }
    count_verdict(v, local);  // the loop-guard fallthrough drop counts too
    out[i] = v;
  }

  // Stage 4: flush the burst's stat deltas in one pass.
  for (const int32_t slot : w.snap_touched_) {
    Slot& s = slots_[slot];
    const TableStats& d = w.snap_[slot].delta;
    counter_add(s.lookups, d.lookups);
    counter_add(s.hits, d.hits);
    counter_add(s.misses, d.misses);
  }
  w.snap_touched_.clear();
  counter_bump(w.stats_.packets, local.packets);
  counter_bump(w.stats_.outputs, local.outputs);
  counter_bump(w.stats_.drops, local.drops);
  counter_bump(w.stats_.to_controller, local.to_controller);
}

// --- introspection -----------------------------------------------------------

CompiledDatapath::TableStats CompiledDatapath::table_stats(int32_t slot) const {
  const Slot& s = slots_[slot];
  return {s.lookups.load(std::memory_order_relaxed),
          s.hits.load(std::memory_order_relaxed),
          s.misses.load(std::memory_order_relaxed)};
}

CompiledDatapath::Stats CompiledDatapath::stats() const {
  Stats out;
  for (uint32_t i = 0; i <= kMaxWorkers; ++i) {
    const Worker::StatBlock& b = workers_[i].stats_;
    out.packets += b.packets.load(std::memory_order_relaxed);
    out.outputs += b.outputs.load(std::memory_order_relaxed);
    out.drops += b.drops.load(std::memory_order_relaxed);
    out.to_controller += b.to_controller.load(std::memory_order_relaxed);
  }
  return out;
}

void CompiledDatapath::clear_stats() {
  for (uint32_t i = 0; i <= kMaxWorkers; ++i) {
    Worker::StatBlock& b = workers_[i].stats_;
    b.packets.store(0, std::memory_order_relaxed);
    b.outputs.store(0, std::memory_order_relaxed);
    b.drops.store(0, std::memory_order_relaxed);
    b.to_controller.store(0, std::memory_order_relaxed);
  }
  const int32_t n = n_slots_.load(std::memory_order_relaxed);
  for (int32_t i = 0; i < n; ++i) {
    slots_[i].lookups.store(0, std::memory_order_relaxed);
    slots_[i].hits.store(0, std::memory_order_relaxed);
    slots_[i].misses.store(0, std::memory_order_relaxed);
  }
}

CompiledDatapath::ReclaimStats CompiledDatapath::reclaim_stats() const {
  return {retired_impls_.retired_total() + retired_slots_.retired_total(),
          retired_impls_.reclaimed_total() + retired_slots_.reclaimed_total(),
          retired_impls_.pending() + retired_slots_.pending()};
}

size_t CompiledDatapath::memory_bytes() const {
  size_t n = 0;
  for (const auto& t : live_) n += t->memory_bytes();
  return n;
}

}  // namespace esw::core
