#include "core/compiled_table.hpp"

#include <cstring>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/failpoint.hpp"

namespace esw::core {

using flow::FieldId;
using flow::FlowEntry;
using flow::Match;

std::vector<BuildEntry> to_build_entries(const flow::FlowTable& t) {
  std::vector<BuildEntry> out;
  out.reserve(t.size());
  for (const FlowEntry& e : t.entries())
    out.push_back({e.match, e.priority, e.actions, e.goto_table, -1});
  return out;
}

uint64_t resolve_result(const BuildEntry& e, BuildCtx& ctx) {
  const int32_t action =
      e.actions.empty() ? -1 : static_cast<int32_t>(ctx.registry.intern(e.actions));
  int32_t next = -1;
  if (e.internal_next >= 0) {
    next = e.internal_next;
  } else if (e.logical_goto != flow::kNoGoto) {
    ESW_CHECK_MSG(static_cast<size_t>(e.logical_goto) < ctx.goto_map.size() &&
                      ctx.goto_map[e.logical_goto] >= 0,
                  "goto target not compiled");
    next = ctx.goto_map[e.logical_goto];
  }
  return jit::pack_result(action, next);
}

// --- direct code -----------------------------------------------------------

std::unique_ptr<DirectCodeTable> DirectCodeTable::build(
    const std::vector<BuildEntry>& entries, BuildCtx& ctx, bool use_jit) {
  auto t = std::make_unique<DirectCodeTable>();
  t->lowered_.reserve(entries.size());
  for (const BuildEntry& e : entries) {
    jit::LoweredEntry le;
    lower_match(e.match, le);
    le.result = resolve_result(e, ctx);
    t->lowered_.push_back(std::move(le));
  }
  if (use_jit) t->jit_ = jit::DirectCodeFn::compile(t->lowered_);
  return t;
}

uint64_t DirectCodeTable::lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
                                 MemTrace* trace) const {
  if (trace != nullptr) {
    // Model the instruction-stream working set: the keys live *in the code*
    // (§3.3 — "compiling match keys right into the code directs some of this
    // load to the CPU instruction caches"), entry after entry until the hit.
    for (const jit::LoweredEntry& e : lowered_) {
      trace->touch(&e, 16 + e.tests.size() * sizeof(jit::FieldTest));
      const uint64_t r = jit::interpret(&e, 1, pkt, pi);
      if (r != jit::kMissResult) return r;
    }
    return jit::kMissResult;
  }
  if (jit_) return (*jit_)(pkt, pi);
  return jit::interpret(lowered_.data(), lowered_.size(), pkt, pi);
}

size_t DirectCodeTable::memory_bytes() const {
  size_t n = jit_ ? jit_->code_size() : 0;
  for (const auto& e : lowered_) n += sizeof(e) + e.tests.size() * sizeof(jit::FieldTest);
  return n;
}

// --- compound hash -----------------------------------------------------------

std::unique_ptr<HashTemplateTable> HashTemplateTable::build(
    const std::vector<BuildEntry>& entries, const Match& mask_template, BuildCtx& ctx) {
  auto t = std::unique_ptr<HashTemplateTable>(new HashTemplateTable());
  for (FieldId f : flow::MatchFields(mask_template)) {
    t->fields_.push_back(f);
    t->field_masks_.push_back(mask_template.mask(f));
  }
  t->proto_required_ = mask_template.proto_required();

  // Entries arrive priority-descending: on duplicate keys the first (highest
  // priority) wins, preserving flow-table semantics.
  uint8_t key[8 * flow::kNumFields];
  for (const BuildEntry& e : entries) {
    if (e.match.is_catch_all()) {
      if (!t->has_catch_all_) {
        t->has_catch_all_ = true;
        t->catch_all_priority_ = e.priority;
        t->catch_all_result_ = resolve_result(e, ctx);
        ++t->count_;
      }
      continue;
    }
    const uint32_t key_len = t->key_from_match(e.match, key);
    if (t->index_.lookup(key, key_len).has_value()) continue;  // shadowed
    t->stored_.push_back({resolve_result(e, ctx), e.priority});
    t->index_.insert(key, key_len, static_cast<uint32_t>(t->stored_.size() - 1));
    t->min_specific_priority_ = std::min(t->min_specific_priority_, e.priority);
    ++t->count_;
  }
  return t;
}

uint32_t HashTemplateTable::key_from_match(const Match& m, uint8_t* out) const {
  uint32_t n = 0;
  for (size_t i = 0; i < fields_.size(); ++i) {
    const uint64_t v = m.value(fields_[i]) & field_masks_[i];
    std::memcpy(out + n, &v, 8);
    n += 8;
  }
  return n;
}

uint32_t HashTemplateTable::key_from_packet(const uint8_t* pkt,
                                            const proto::ParseInfo& pi,
                                            uint8_t* out) const {
  uint32_t n = 0;
  for (size_t i = 0; i < fields_.size(); ++i) {
    const uint64_t v = flow::extract_field(fields_[i], pkt, pi) & field_masks_[i];
    std::memcpy(out + n, &v, 8);
    n += 8;
  }
  return n;
}

uint64_t HashTemplateTable::lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
                                   MemTrace* trace) const {
  if ((pi.proto_mask & proto_required_) == proto_required_) {
    uint8_t key[8 * flow::kNumFields];
    const uint32_t key_len = key_from_packet(pkt, pi, key);
    if (const auto idx = index_.lookup(key, key_len, trace)) {
      if (trace != nullptr) trace->touch(&stored_[*idx], sizeof(Stored));
      return stored_[*idx].result;
    }
  }
  return catch_all_result_;  // kMissResult when no default is configured
}

void HashTemplateTable::prefetch(const uint8_t* pkt, const proto::ParseInfo& pi) const {
  if ((pi.proto_mask & proto_required_) != proto_required_) return;
  uint8_t key[8 * flow::kNumFields];
  const uint32_t key_len = key_from_packet(pkt, pi, key);
  index_.prefetch(key, key_len);
}

size_t HashTemplateTable::memory_bytes() const {
  return index_.capacity() * 24 + stored_.size() * sizeof(Stored);
}

bool HashTemplateTable::try_add(const FlowEntry& e, BuildCtx& ctx) {
  // Injectable insert refusal: false is the template's normal "I cannot take
  // this incrementally" answer, so the caller rebuilds — never crashes.
  if (ESW_FAILPOINT("hash.insert")) return false;
  if (e.match.is_catch_all()) {
    if (e.priority >= min_specific_priority_) return false;
    const BuildEntry be{e.match, e.priority, e.actions, e.goto_table, -1};
    if (!has_catch_all_) ++count_;
    has_catch_all_ = true;
    catch_all_priority_ = e.priority;
    catch_all_result_ = resolve_result(be, ctx);
    return true;
  }
  // Must share the template's exact mask set and outrank the default.
  if (static_cast<unsigned>(__builtin_popcount(e.match.present_bits())) !=
      fields_.size())
    return false;
  for (size_t i = 0; i < fields_.size(); ++i)
    if (!e.match.has(fields_[i]) || e.match.mask(fields_[i]) != field_masks_[i])
      return false;
  if (has_catch_all_ && e.priority <= catch_all_priority_) return false;

  uint8_t key[8 * flow::kNumFields];
  const uint32_t key_len = key_from_match(e.match, key);
  const BuildEntry be{e.match, e.priority, e.actions, e.goto_table, -1};
  if (const auto idx = index_.lookup(key, key_len)) {
    // Same key at another priority: keep whichever outranks (flow-table
    // semantics); replacing same-priority entries updates in place.
    if (stored_[*idx].priority > e.priority) return false;  // shadowed: rebuild-free no-op would lose the entry
    stored_[*idx] = {resolve_result(be, ctx), e.priority};
    return true;
  }
  stored_.push_back({resolve_result(be, ctx), e.priority});
  index_.insert(key, key_len, static_cast<uint32_t>(stored_.size() - 1));
  min_specific_priority_ = std::min(min_specific_priority_, e.priority);
  ++count_;
  return true;
}

bool HashTemplateTable::try_remove(const Match& m, uint16_t priority) {
  if (m.is_catch_all()) {
    if (!has_catch_all_ || catch_all_priority_ != priority) return false;
    has_catch_all_ = false;
    catch_all_result_ = jit::kMissResult;
    --count_;
    return true;
  }
  uint8_t key[8 * flow::kNumFields];
  // Shape check (cheap) before the hash probe.
  if (static_cast<unsigned>(__builtin_popcount(m.present_bits())) != fields_.size())
    return false;
  for (size_t i = 0; i < fields_.size(); ++i)
    if (!m.has(fields_[i]) || m.mask(fields_[i]) != field_masks_[i]) return false;
  const uint32_t key_len = key_from_match(m, key);
  const auto idx = index_.lookup(key, key_len);
  if (!idx || stored_[*idx].priority != priority) return false;
  index_.erase(key, key_len);
  --count_;
  // stored_ slot leaks until the next rebuild; acceptable for update churn.
  return true;
}

// --- cuckoo hash -------------------------------------------------------------

std::unique_ptr<CuckooTemplateTable> CuckooTemplateTable::build(
    const std::vector<BuildEntry>& entries, const Match& mask_template, BuildCtx& ctx) {
  auto t = std::unique_ptr<CuckooTemplateTable>(new CuckooTemplateTable());
  for (FieldId f : flow::MatchFields(mask_template)) {
    t->fields_.push_back(f);
    t->field_masks_.push_back(mask_template.mask(f));
  }
  t->proto_required_ = mask_template.proto_required();

  // Entries arrive priority-descending: on duplicate keys the first (highest
  // priority) wins, preserving flow-table semantics.
  uint8_t key[8 * flow::kNumFields];
  for (const BuildEntry& e : entries) {
    if (e.match.is_catch_all()) {
      if (!t->has_catch_all_) {
        t->has_catch_all_ = true;
        t->catch_all_priority_ = e.priority;
        t->catch_all_result_.store(resolve_result(e, ctx), std::memory_order_relaxed);
        ++t->count_;
      }
      continue;
    }
    const uint32_t key_len = t->key_from_match(e.match, key);
    if (t->index_.lookup(key, key_len).has_value()) continue;  // shadowed
    t->index_.insert(key, key_len, resolve_result(e, ctx), e.priority);
    t->min_specific_priority_ = std::min(t->min_specific_priority_, e.priority);
    ++t->count_;
  }
  return t;
}

uint32_t CuckooTemplateTable::key_from_match(const Match& m, uint8_t* out) const {
  uint32_t n = 0;
  for (size_t i = 0; i < fields_.size(); ++i) {
    const uint64_t v = m.value(fields_[i]) & field_masks_[i];
    std::memcpy(out + n, &v, 8);
    n += 8;
  }
  return n;
}

uint32_t CuckooTemplateTable::key_from_packet(const uint8_t* pkt,
                                              const proto::ParseInfo& pi,
                                              uint8_t* out) const {
  uint32_t n = 0;
  for (size_t i = 0; i < fields_.size(); ++i) {
    const uint64_t v = flow::extract_field(fields_[i], pkt, pi) & field_masks_[i];
    std::memcpy(out + n, &v, 8);
    n += 8;
  }
  return n;
}

uint64_t CuckooTemplateTable::lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
                                     MemTrace* trace) const {
  if ((pi.proto_mask & proto_required_) == proto_required_) {
    uint8_t key[8 * flow::kNumFields];
    const uint32_t key_len = key_from_packet(pkt, pi, key);
    if (const auto v = index_.lookup(key, key_len, trace)) return v->value;
  }
  return catch_all_result_.load(std::memory_order_acquire);
}

void CuckooTemplateTable::prefetch(const uint8_t* pkt, const proto::ParseInfo& pi) const {
  if ((pi.proto_mask & proto_required_) != proto_required_) return;
  uint8_t key[8 * flow::kNumFields];
  const uint32_t key_len = key_from_packet(pkt, pi, key);
  index_.prefetch(key, key_len);
}

size_t CuckooTemplateTable::memory_bytes() const { return index_.memory_bytes(); }

bool CuckooTemplateTable::try_add(const FlowEntry& e, BuildCtx& ctx) {
  // Injectable insert refusal, mirroring the compound hash's edge: false is
  // "I cannot take this incrementally", so the caller rebuilds — never crashes.
  if (ESW_FAILPOINT("cuckoo.insert")) return false;
  if (e.match.is_catch_all()) {
    if (e.priority >= min_specific_priority_) return false;
    const BuildEntry be{e.match, e.priority, e.actions, e.goto_table, -1};
    if (!has_catch_all_) ++count_;
    has_catch_all_ = true;
    catch_all_priority_ = e.priority;
    catch_all_result_.store(resolve_result(be, ctx), std::memory_order_release);
    return true;
  }
  // Must share the template's exact mask set and outrank the default.
  if (static_cast<unsigned>(__builtin_popcount(e.match.present_bits())) !=
      fields_.size())
    return false;
  for (size_t i = 0; i < fields_.size(); ++i)
    if (!e.match.has(fields_[i]) || e.match.mask(fields_[i]) != field_masks_[i])
      return false;
  if (has_catch_all_ && e.priority <= catch_all_priority_) return false;

  uint8_t key[8 * flow::kNumFields];
  const uint32_t key_len = key_from_match(e.match, key);
  const BuildEntry be{e.match, e.priority, e.actions, e.goto_table, -1};
  if (const auto v = index_.lookup(key, key_len)) {
    // Same key at another priority: keep whichever outranks (flow-table
    // semantics); replacing same-priority entries updates in place.
    if (v->aux > e.priority) return false;  // shadowed: a no-op would lose the entry
    index_.insert(key, key_len, resolve_result(be, ctx), e.priority);
    return true;
  }
  index_.insert(key, key_len, resolve_result(be, ctx), e.priority);
  min_specific_priority_ = std::min(min_specific_priority_, e.priority);
  ++count_;
  return true;
}

bool CuckooTemplateTable::try_remove(const Match& m, uint16_t priority) {
  if (m.is_catch_all()) {
    if (!has_catch_all_ || catch_all_priority_ != priority) return false;
    has_catch_all_ = false;
    catch_all_result_.store(jit::kMissResult, std::memory_order_release);
    --count_;
    return true;
  }
  uint8_t key[8 * flow::kNumFields];
  // Shape check (cheap) before the hash probe.
  if (static_cast<unsigned>(__builtin_popcount(m.present_bits())) != fields_.size())
    return false;
  for (size_t i = 0; i < fields_.size(); ++i)
    if (!m.has(fields_[i]) || m.mask(fields_[i]) != field_masks_[i]) return false;
  const uint32_t key_len = key_from_match(m, key);
  const auto v = index_.lookup(key, key_len);
  if (!v || v->aux != priority) return false;
  index_.erase(key, key_len);
  --count_;
  return true;
}

// --- LPM --------------------------------------------------------------------------

namespace {
uint32_t pmask32(uint8_t len) {
  return len == 0 ? 0 : static_cast<uint32_t>(low_bits(len) << (32 - len));
}
}  // namespace

std::unique_ptr<LpmTemplateTable> LpmTemplateTable::build(
    const std::vector<BuildEntry>& entries, FieldId field, BuildCtx& ctx,
    uint32_t max_tbl8_groups) {
  // Distinct results ≤ entries; the extra headroom absorbs incremental adds
  // before an overflow forces a (rare) rebuild at double the size.
  const uint32_t results_cap = static_cast<uint32_t>(entries.size()) + 256;
  auto t = std::unique_ptr<LpmTemplateTable>(
      new LpmTemplateTable(max_tbl8_groups, results_cap));
  t->field_ = field;
  for (const BuildEntry& e : entries) {
    uint32_t prefix = 0;
    uint8_t len = 0;
    if (!e.match.is_catch_all()) {
      prefix = static_cast<uint32_t>(e.match.value(field));
      len = static_cast<uint8_t>(prefix_len(e.match.mask(field), 32));
    }
    const uint64_t packed = resolve_result(e, ctx);
    const uint32_t idx = t->intern_result(packed);
    t->lpm_.add(prefix, len, idx);
    t->prefix_prio_[{prefix, len}] = e.priority;
    if (e.match.is_catch_all())
      t->proto_absent_result_.store(packed, std::memory_order_relaxed);
  }
  return t;
}

uint32_t LpmTemplateTable::intern_result(uint64_t packed) {
  const auto [it, inserted] = result_index_.try_emplace(packed, results_size_);
  if (inserted) {
    // Overflow throws like tbl8 exhaustion does: try_add turns it into a
    // rebuild (which sizes a fresh, larger array).
    if (results_size_ == results_cap_) {
      result_index_.erase(it);
      ESW_CHECK_MSG(false, "LPM result table full");
    }
    results_[results_size_++] = packed;
  }
  return it->second;
}

uint64_t LpmTemplateTable::lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
                                  MemTrace* trace) const {
  // Non-IPv4 frames can still match the catch-all default (an empty match
  // has no protocol prerequisite) — only the prefixed entries need the field.
  if (!pi.has(proto::kProtoIpv4))
    return proto_absent_result_.load(std::memory_order_acquire);
  const uint32_t addr =
      static_cast<uint32_t>(flow::extract_field(field_, pkt, pi));
  const auto v = lpm_.lookup(addr, trace);
  if (!v) return jit::kMissResult;
  return results_[*v];
}

void LpmTemplateTable::prefetch(const uint8_t* pkt, const proto::ParseInfo& pi) const {
  if (!pi.has(proto::kProtoIpv4)) return;
  lpm_.prefetch(static_cast<uint32_t>(flow::extract_field(field_, pkt, pi)));
}

bool LpmTemplateTable::try_add(const FlowEntry& e, BuildCtx& ctx) {
  uint32_t prefix = 0;
  uint8_t len = 0;
  if (!e.match.is_catch_all()) {
    if (e.match.num_fields() != 1 || !e.match.has(field_)) return false;
    const uint64_t mask = e.match.mask(field_);
    if (!is_prefix_mask(mask, 32)) return false;
    len = static_cast<uint8_t>(prefix_len(mask, 32));
    prefix = static_cast<uint32_t>(e.match.value(field_));
  }
  if (prefix_prio_.count({prefix, len})) return false;  // replace needs rebuild

  // Priority consistency against ancestors and descendants (the latter form a
  // contiguous range in prefix order).
  for (int alen = len - 1; alen >= 0; --alen) {
    const auto it = prefix_prio_.find({prefix & pmask32(static_cast<uint8_t>(alen)),
                                       static_cast<uint8_t>(alen)});
    if (it != prefix_prio_.end() && it->second >= e.priority) return false;
  }
  if (len < 32) {
    const uint32_t hi = prefix | ~pmask32(len);
    for (auto it = prefix_prio_.lower_bound({prefix, 0});
         it != prefix_prio_.end() && it->first.first <= hi; ++it) {
      if (it->first.second > len && it->second <= e.priority) return false;
    }
  }

  const BuildEntry be{e.match, e.priority, e.actions, e.goto_table, -1};
  uint64_t packed;
  try {
    packed = resolve_result(be, ctx);
    lpm_.add(prefix, len, intern_result(packed));
  } catch (const CheckError&) {
    return false;  // e.g. out of tbl8 groups: rebuild with a bigger budget
  }
  prefix_prio_[{prefix, len}] = e.priority;
  if (e.match.is_catch_all())
    proto_absent_result_.store(packed, std::memory_order_release);
  return true;
}

bool LpmTemplateTable::try_remove(const Match& m, uint16_t priority) {
  uint32_t prefix = 0;
  uint8_t len = 0;
  if (!m.is_catch_all()) {
    if (m.num_fields() != 1 || !m.has(field_)) return false;
    if (!is_prefix_mask(m.mask(field_), 32)) return false;
    len = static_cast<uint8_t>(prefix_len(m.mask(field_), 32));
    prefix = static_cast<uint32_t>(m.value(field_));
  }
  const auto it = prefix_prio_.find({prefix, len});
  if (it == prefix_prio_.end() || it->second != priority) return false;
  lpm_.remove(prefix, len);
  prefix_prio_.erase(it);
  if (m.is_catch_all())
    proto_absent_result_.store(jit::kMissResult, std::memory_order_release);
  return true;
}

// --- range (extension template) ----------------------------------------------------

std::unique_ptr<RangeTemplateTable> RangeTemplateTable::build(
    const std::vector<BuildEntry>& entries, FieldId field, BuildCtx& ctx) {
  auto t = std::unique_ptr<RangeTemplateTable>(new RangeTemplateTable());
  t->field_ = field;
  t->proto_required_ = flow::field_info(field).proto_required;

  const unsigned width = flow::field_info(field).width_bits;
  std::vector<cls::RangeTree::Rule> rules;
  rules.reserve(entries.size());
  // Entries arrive priority-descending: the index is the rank.
  for (uint32_t rank = 0; rank < entries.size(); ++rank) {
    const BuildEntry& e = entries[rank];
    cls::RangeTree::Rule r;
    if (e.match.is_catch_all()) {
      r.lo = 0;
      r.hi = low_bits(width);
      // First catch-all in priority order: what packets missing the field's
      // protocol layers (which no prefixed entry can match) fall through to.
      if (t->proto_absent_result_ == jit::kMissResult)
        t->proto_absent_result_ = resolve_result(e, ctx);
    } else {
      const uint64_t mask = e.match.mask(field);
      r.lo = e.match.value(field);
      r.hi = r.lo | (~mask & low_bits(width));
    }
    r.rank = rank;
    r.value = static_cast<uint32_t>(t->results_.size());
    t->results_.push_back(resolve_result(e, ctx));
    rules.push_back(r);
  }
  t->tree_.build(std::move(rules));
  return t;
}

uint64_t RangeTemplateTable::lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
                                    MemTrace* trace) const {
  if ((pi.proto_mask & proto_required_) != proto_required_)
    return proto_absent_result_;
  const uint64_t key = flow::extract_field(field_, pkt, pi);
  const auto v = tree_.lookup(key, trace);
  if (!v) return jit::kMissResult;
  return results_[*v];
}

// --- linked list -----------------------------------------------------------------------

std::unique_ptr<LinkedListTable> LinkedListTable::build(
    const std::vector<BuildEntry>& entries, BuildCtx& ctx) {
  auto t = std::unique_ptr<LinkedListTable>(new LinkedListTable());
  for (const BuildEntry& e : entries) {
    const uint32_t rank = t->rank_of(e.priority);
    t->ts_.add(e.match, rank, resolve_result(e, ctx));
    t->mirror_.push_back({e.match, e.priority, rank});
  }
  return t;
}

uint64_t LinkedListTable::lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
                                 MemTrace* trace) const {
  const auto* e = ts_.lookup(pkt, pi, nullptr, trace);
  return e != nullptr ? e->value : jit::kMissResult;
}

void LinkedListTable::prefetch(const uint8_t* pkt, const proto::ParseInfo& pi) const {
  ts_.prefetch(pkt, pi);
}

size_t LinkedListTable::memory_bytes() const {
  // Tuple index slots + entries; coarse but monotone in table size.
  return ts_.size() * 96 + ts_.num_tuples() * 64;
}

bool LinkedListTable::try_add(const FlowEntry& e, BuildCtx& ctx) {
  // Injectable refusal (tuple-space shape); deliberately absent from build(),
  // which must stay the infallible last resort of the fallback chain.
  if (ESW_FAILPOINT("tuple.insert")) return false;
  // Flow-mod replace semantics: an identical (match, priority) entry is
  // superseded, not duplicated.
  try_remove(e.match, e.priority);
  const BuildEntry be{e.match, e.priority, e.actions, e.goto_table, -1};
  const uint32_t rank = rank_of(e.priority);
  ts_.add(e.match, rank, resolve_result(be, ctx));
  mirror_.push_back({e.match, e.priority, rank});
  return true;
}

bool LinkedListTable::try_remove(const Match& m, uint16_t priority) {
  for (size_t i = 0; i < mirror_.size(); ++i) {
    if (mirror_[i].priority == priority && mirror_[i].match == m) {
      ts_.remove(m, mirror_[i].rank);
      mirror_[i] = mirror_.back();
      mirror_.pop_back();
      return true;
    }
  }
  return false;
}

}  // namespace esw::core
