// Compiled flow tables — the runtime realization of the four templates.
//
// Every implementation answers lookups with the packed-result convention of
// the matcher IR (0 = table miss) so the datapath walk is one indirect call
// plus integer decode per stage.  Templates that support it implement
// incremental, non-destructive updates (§3.4: "whenever the controller
// modifies a flow, ESWITCH simply updates the data structure underlying the
// template"); the direct-code template always rebuilds, per the paper.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cls/cuckoo.hpp"
#include "cls/exact_match.hpp"
#include "cls/lpm.hpp"
#include "cls/range_tree.hpp"
#include "cls/tuple_space.hpp"
#include "core/decompose.hpp"
#include "core/lowering.hpp"
#include "core/template_kind.hpp"
#include "jit/direct_code.hpp"

namespace esw::core {

/// Build-time context: where actions intern and how logical gotos resolve.
struct BuildCtx {
  flow::ActionSetRegistry& registry;
  const GotoMap& goto_map;
};

/// Neutral per-entry build input (covers plain flow tables and
/// decomposition-internal tables alike).
using BuildEntry = DecomposedPipeline::Entry;

/// Converts a control-plane table to build entries.
std::vector<BuildEntry> to_build_entries(const flow::FlowTable& t);

/// Resolves one entry's packed lookup result.
uint64_t resolve_result(const BuildEntry& e, BuildCtx& ctx);

class CompiledTable {
 public:
  virtual ~CompiledTable() = default;

  /// Packed lookup result (jit::pack_result) or jit::kMissResult.
  virtual uint64_t lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
                          MemTrace* trace = nullptr) const = 0;

  /// Burst-mode hint: start the cache lines lookup(pkt, pi) will touch toward
  /// the core.  Must have no observable effect besides memory timing — the
  /// burst walker issues it for packet i+1 while packet i is processed.
  /// Templates whose working set is the instruction stream (direct code) or a
  /// flattened array walk (range) have nothing useful to prime and keep the
  /// default no-op.
  virtual void prefetch(const uint8_t* pkt, const proto::ParseInfo& pi) const {
    (void)pkt;
    (void)pi;
  }

  virtual TableTemplate kind() const = 0;
  virtual size_t size() const = 0;
  virtual size_t memory_bytes() const = 0;

  /// Incremental update hooks; false = prerequisite broken or unsupported,
  /// caller must rebuild (possibly falling back along Fig. 4's chain).
  virtual bool try_add(const flow::FlowEntry&, BuildCtx&) { return false; }
  virtual bool try_remove(const flow::Match&, uint16_t) { return false; }

  /// True when try_add/try_remove may mutate this table *in place* while
  /// other threads are inside lookup() (single writer).  Only the LPM
  /// template qualifies: its cells are self-contained words published with
  /// release/acquire, the rte_lpm-under-RCU model.
  virtual bool concurrent_update_safe() const { return false; }

  /// Deep copy for the copy-on-write update path: with concurrent readers,
  /// templates whose incremental update mutates reader-visible structure
  /// (hash rebuilds, tuple-space chains) are cloned, updated privately and
  /// republished via trampoline swap — same incremental data-structure work
  /// as in place, plus an O(table) copy.  nullptr = not clonable (direct
  /// code and range rebuild from scratch anyway).
  virtual std::unique_ptr<CompiledTable> clone_for_update() const { return nullptr; }

  /// Epoch-reclamation hooks for templates that retire *internal* memory
  /// (cuckoo entries/views) rather than being swapped wholesale.  The
  /// datapath attaches its domain at publication and drains the template's
  /// retire lists during its reclaim pass; defaults are no-ops.
  virtual void attach_epoch_domain(common::EpochDomain*) {}
  virtual uint64_t epoch_reclaim(uint64_t horizon) {
    (void)horizon;
    return 0;
  }
  virtual size_t retired_pending() const { return 0; }
};

// --- direct code -------------------------------------------------------------

class DirectCodeTable final : public CompiledTable {
 public:
  static std::unique_ptr<DirectCodeTable> build(const std::vector<BuildEntry>& entries,
                                                BuildCtx& ctx, bool use_jit);

  uint64_t lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
                  MemTrace* trace) const override;
  TableTemplate kind() const override { return TableTemplate::kDirectCode; }
  size_t size() const override { return lowered_.size(); }
  size_t memory_bytes() const override;

  bool jitted() const { return jit_.has_value(); }
  size_t code_size() const { return jit_ ? jit_->code_size() : 0; }

  /// The lowered entry chain — the fusion stage (jit/fusion.hpp) re-emits it
  /// into the whole-pipeline function.  Immutable (direct code rebuilds).
  const std::vector<jit::LoweredEntry>& lowered() const { return lowered_; }

 private:
  std::vector<jit::LoweredEntry> lowered_;
  std::optional<jit::DirectCodeFn> jit_;
};

// --- compound hash -------------------------------------------------------------

class HashTemplateTable final : public CompiledTable {
 public:
  /// `mask_template` is the shared mask set (values zeroed).  Entries must
  /// satisfy the hash prerequisite (checked by analysis; re-verified here).
  static std::unique_ptr<HashTemplateTable> build(const std::vector<BuildEntry>& entries,
                                                  const flow::Match& mask_template,
                                                  BuildCtx& ctx);

  uint64_t lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
                  MemTrace* trace) const override;
  void prefetch(const uint8_t* pkt, const proto::ParseInfo& pi) const override;
  TableTemplate kind() const override { return TableTemplate::kCompoundHash; }
  size_t size() const override { return count_; }
  size_t memory_bytes() const override;

  bool try_add(const flow::FlowEntry& e, BuildCtx& ctx) override;
  bool try_remove(const flow::Match& m, uint16_t priority) override;
  std::unique_ptr<CompiledTable> clone_for_update() const override {
    return std::unique_ptr<CompiledTable>(new HashTemplateTable(*this));
  }

  uint64_t hash_rebuilds() const { return index_.rebuilds(); }

 private:
  HashTemplateTable() = default;
  HashTemplateTable(const HashTemplateTable&) = default;

  uint32_t key_from_match(const flow::Match& m, uint8_t* out) const;
  uint32_t key_from_packet(const uint8_t* pkt, const proto::ParseInfo& pi,
                           uint8_t* out) const;

  std::vector<flow::FieldId> fields_;
  std::vector<uint64_t> field_masks_;
  uint32_t proto_required_ = 0;
  cls::ExactMatchTable index_;
  struct Stored {
    uint64_t result;
    uint16_t priority;
  };
  std::vector<Stored> stored_;
  uint64_t catch_all_result_ = jit::kMissResult;
  uint16_t catch_all_priority_ = 0;
  bool has_catch_all_ = false;
  uint16_t min_specific_priority_ = 0xFFFF;
  size_t count_ = 0;
};

// --- cuckoo hash (million-flow exact match) ----------------------------------------

/// Same matching semantics and prerequisite as the compound hash, backed by
/// the resizable reader-safe cls::CuckooTable: one control-plane writer
/// mutates in place under live readers (epoch-retired entries, seqlock-guarded
/// displacement), so updates at million-flow scale never clone the table.
class CuckooTemplateTable final : public CompiledTable {
 public:
  static std::unique_ptr<CuckooTemplateTable> build(
      const std::vector<BuildEntry>& entries, const flow::Match& mask_template,
      BuildCtx& ctx);

  uint64_t lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
                  MemTrace* trace) const override;
  void prefetch(const uint8_t* pkt, const proto::ParseInfo& pi) const override;
  TableTemplate kind() const override { return TableTemplate::kCuckooHash; }
  size_t size() const override { return count_; }
  size_t memory_bytes() const override;

  bool try_add(const flow::FlowEntry& e, BuildCtx& ctx) override;
  bool try_remove(const flow::Match& m, uint16_t priority) override;
  /// In-place incremental updates are reader-safe: slot words are atomic,
  /// entries immutable and epoch-retired, multi-slot moves seqlock-guarded.
  bool concurrent_update_safe() const override { return true; }

  void attach_epoch_domain(common::EpochDomain* d) override { index_.set_domain(d); }
  uint64_t epoch_reclaim(uint64_t horizon) override {
    return index_.epoch_reclaim(horizon);
  }
  size_t retired_pending() const override { return index_.retired_pending(); }

  uint64_t grows() const { return index_.grows(); }
  uint64_t reseeds() const { return index_.reseeds(); }
  const cls::CuckooTable& index() const { return index_; }

 private:
  CuckooTemplateTable() = default;

  uint32_t key_from_match(const flow::Match& m, uint8_t* out) const;
  uint32_t key_from_packet(const uint8_t* pkt, const proto::ParseInfo& pi,
                           uint8_t* out) const;

  std::vector<flow::FieldId> fields_;
  std::vector<uint64_t> field_masks_;
  uint32_t proto_required_ = 0;
  // value = packed result, aux = priority — no side array to keep coherent
  // with the index under concurrent readers.
  cls::CuckooTable index_;
  std::atomic<uint64_t> catch_all_result_{jit::kMissResult};
  uint16_t catch_all_priority_ = 0;
  bool has_catch_all_ = false;
  uint16_t min_specific_priority_ = 0xFFFF;
  size_t count_ = 0;
};

// --- LPM ---------------------------------------------------------------------------

class LpmTemplateTable final : public CompiledTable {
 public:
  static std::unique_ptr<LpmTemplateTable> build(const std::vector<BuildEntry>& entries,
                                                 flow::FieldId field, BuildCtx& ctx,
                                                 uint32_t max_tbl8_groups);

  uint64_t lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
                  MemTrace* trace) const override;
  void prefetch(const uint8_t* pkt, const proto::ParseInfo& pi) const override;
  TableTemplate kind() const override { return TableTemplate::kLpm; }
  size_t size() const override { return prefix_prio_.size(); }
  size_t memory_bytes() const override { return lpm_.memory_bytes(); }

  bool try_add(const flow::FlowEntry& e, BuildCtx& ctx) override;
  bool try_remove(const flow::Match& m, uint16_t priority) override;
  /// In-place incremental updates are reader-safe: LpmTable cells are
  /// single-word acquire/release atomics and the results array below is
  /// fixed-capacity (overflow falls back to a rebuild), so nothing a reader
  /// dereferences ever moves.
  bool concurrent_update_safe() const override { return true; }

 private:
  uint32_t intern_result(uint64_t packed);

  flow::FieldId field_ = flow::FieldId::kIpDst;
  // The catch-all default's result for packets that do not carry IPv4 at all:
  // an empty match still matches them (reference semantics), even though the
  // /0 cell it occupies inside the LPM is only reachable for IPv4 packets.
  // Atomic because the catch-all may be added/removed by in-place incremental
  // updates while readers are live.
  std::atomic<uint64_t> proto_absent_result_{jit::kMissResult};
  cls::LpmTable lpm_;
  // Interned packed results, indexed by LPM cell value.  Fixed capacity so a
  // concurrent reader's results_[v] never races a reallocation; a slot is
  // written before the cell referencing it is released.
  std::unique_ptr<uint64_t[]> results_;
  uint32_t results_cap_ = 0;
  uint32_t results_size_ = 0;
  std::map<uint64_t, uint32_t> result_index_;
  // (prefix, len) -> priority mirror for incremental prerequisite checks,
  // ordered by prefix so descendants form a contiguous range.
  std::map<std::pair<uint32_t, uint8_t>, uint16_t> prefix_prio_;

  LpmTemplateTable(uint32_t max_tbl8, uint32_t results_cap)
      : lpm_(max_tbl8),
        results_(new uint64_t[results_cap]),
        results_cap_(results_cap) {}
};

// --- range (extension template) ---------------------------------------------------

class RangeTemplateTable final : public CompiledTable {
 public:
  static std::unique_ptr<RangeTemplateTable> build(const std::vector<BuildEntry>& entries,
                                                   flow::FieldId field, BuildCtx& ctx);

  uint64_t lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
                  MemTrace* trace) const override;
  TableTemplate kind() const override { return TableTemplate::kRange; }
  size_t size() const override { return tree_.num_rules(); }
  size_t memory_bytes() const override { return tree_.memory_bytes(); }
  size_t num_intervals() const { return tree_.num_intervals(); }

  // No incremental updates: the flattening is rebuilt on change, like the
  // direct-code template.

 private:
  flow::FieldId field_ = flow::FieldId::kTcpDst;
  uint32_t proto_required_ = 0;
  // Highest-priority catch-all's result: packets missing the field's
  // protocol layers can match nothing else (reference semantics).
  uint64_t proto_absent_result_ = jit::kMissResult;
  cls::RangeTree tree_;
  std::vector<uint64_t> results_;
};

// --- linked list ----------------------------------------------------------------------

class LinkedListTable final : public CompiledTable {
 public:
  static std::unique_ptr<LinkedListTable> build(const std::vector<BuildEntry>& entries,
                                                BuildCtx& ctx);

  uint64_t lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
                  MemTrace* trace) const override;
  void prefetch(const uint8_t* pkt, const proto::ParseInfo& pi) const override;
  TableTemplate kind() const override { return TableTemplate::kLinkedList; }
  size_t size() const override { return ts_.size(); }
  size_t memory_bytes() const override;

  bool try_add(const flow::FlowEntry& e, BuildCtx& ctx) override;
  bool try_remove(const flow::Match& m, uint16_t priority) override;
  std::unique_ptr<CompiledTable> clone_for_update() const override {
    return std::unique_ptr<CompiledTable>(new LinkedListTable(*this));
  }

  size_t num_tuples() const { return ts_.num_tuples(); }

 private:
  LinkedListTable() = default;
  LinkedListTable(const LinkedListTable&) = default;

  uint32_t rank_of(uint16_t priority) {
    return (static_cast<uint32_t>(0xFFFF - priority) << 16) | seq_++;
  }

  cls::TupleSpace<uint64_t> ts_;
  struct Mirror {
    flow::Match match;
    uint16_t priority;
    uint32_t rank;
  };
  std::vector<Mirror> mirror_;
  uint16_t seq_ = 0;
};

}  // namespace esw::core
