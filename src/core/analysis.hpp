// Flow table analysis (§3.2): decide which template a table compiles into.
//
// The compiler "always attempts to compile into the most efficient table
// template available" and falls back along Fig. 4's chain when a prerequisite
// fails: direct code (#flows ≤ CONST) → compound hash (global mask, exact
// match) → LPM (single-field prefix rules, priorities consistent) → linked
// list (no prerequisite).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/decompose.hpp"
#include "core/template_kind.hpp"
#include "flow/table.hpp"
#include "state/ct_config.hpp"

namespace esw::core {

struct CompilerConfig {
  /// Fig. 9's calibrated constant: tables up to this size compile directly.
  uint32_t direct_code_max_entries = 4;
  /// Emit x86-64 machine code for direct-code tables (else the portable
  /// specialized interpreter over the same lowered IR).
  bool enable_jit = true;
  /// Run the Fig. 6 table decomposition pass on linked-list-bound tables.
  bool enable_decomposition = false;
  /// Upper bound on tables one decomposition may produce.
  uint32_t decompose_max_tables = 4096;
  /// Derive a minimal parser plan from the matched fields (parser templates);
  /// false = always parse L2–L4 (the paper prototype's combined parser).
  bool specialize_parser = true;
  /// Force one template for every table (calibration benches / ablation).
  std::optional<TableTemplate> force_template;
  /// tbl8 budget for LPM tables.
  uint32_t lpm_max_tbl8_groups = 1024;
  /// Hash-shaped tables at or above this entry count compile into the
  /// resizable reader-safe cuckoo template instead of the fixed-capacity
  /// compound hash (and a compound-hash table growing past it re-selects on
  /// its next rebuild).  0 disables the cuckoo template.  The default sits
  /// above every figure-scale table so the calibrated benches keep the
  /// paper's compound hash; the million-flow scale/churn benches cross it.
  uint32_t cuckoo_min_entries = 32768;
  /// Enable the range extension template (binary search over flattened
  /// intervals) for single-field tables LPM cannot take.
  bool enable_range_template = true;
  /// Per-logical-table entry cap on the flow-mod path (0 = unbounded).  An
  /// add that would grow a table past this refuses with TableFullError —
  /// surfaced over OpenFlow as OFPFMFC_TABLE_FULL — instead of growing
  /// without bound.  Replacing an existing (match, priority) entry is always
  /// allowed; install() is not subject to the cap (it is the operator's
  /// wholesale program load, not controller churn).
  uint32_t table_capacity = 0;
  /// Whole-pipeline fusion (jit/fusion.hpp): compile the steady-state goto
  /// graph's direct-code members into one function and run bursts through it.
  /// Non-fusable features (decomposed sub-slots, missing impls) and fused
  /// compile failures degrade to the staged per-table walk.
  bool enable_fusion = true;
  /// Re-JIT retry pacing after a direct-code table degrades to the
  /// interpreter (exec mapping refused): first retry after this many
  /// flow-mod updates, doubling per failed attempt up to the max.  0
  /// disables retries.
  uint32_t jit_retry_base_updates = 64;
  uint32_t jit_retry_max_updates = 4096;
  /// Connection tracking (src/state/): `ct.enabled` attaches a Conntrack to
  /// the compiled datapath; `ct:commit` actions and `ct_state` matches are
  /// parse/compile-valid either way but inert while disabled.
  state::CtConfig ct;
};

/// Analysis input: (match, priority) pairs in priority-descending order —
/// either a control-plane table or a decomposition-internal one.
using AnalysisEntries = std::vector<DecomposedPipeline::Entry>;

struct AnalysisResult {
  TableTemplate chosen = TableTemplate::kLinkedList;
  std::string reason;
};

/// Compound-hash prerequisite: all entries share one field set and identical
/// per-field masks ("every field is matched by exactly the same mask in each
/// entry"), plus at most one catch-all default with strictly lowest priority.
/// On success reports the shared mask template via `mask_out` and whether a
/// catch-all exists.
bool hash_prerequisite(const AnalysisEntries& entries, flow::Match* mask_out,
                       bool* has_catch_all);

/// LPM prerequisite: single IPv4 field, prefix masks only, overlapping
/// prefixes ordered so the more specific has strictly higher priority; at most
/// one catch-all (the /0 default) with strictly lowest priority.
bool lpm_prerequisite(const AnalysisEntries& entries, flow::FieldId* field_out);

/// Range prerequisite (extension template): every non-catch-all entry matches
/// exactly one shared field with a prefix-style mask (each rule = one aligned
/// value range).  No ordering constraint — the interval flattening bakes
/// priorities in — so it catches e.g. priority-inverted prefix tables that
/// LPM must reject.
bool range_prerequisite(const AnalysisEntries& entries, flow::FieldId* field_out);

/// Template choice under `cfg`.
AnalysisResult analyze_entries(const AnalysisEntries& entries, const CompilerConfig& cfg);
AnalysisResult analyze_table(const flow::FlowTable& t, const CompilerConfig& cfg);

}  // namespace esw::core
