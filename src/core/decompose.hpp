// Flow table decomposition (§3.2, Fig. 6): rewrite one "difficult" flow table
// into a semantically equivalent multi-stage pipeline whose stages fit the
// fast templates — greedily pivoting on the column of minimal key diversity.
//
// The underlying decision problem is coNP-hard (paper's appendix), so this is
// the paper's heuristic: DECOMPOSE(T) picks the field with the fewest distinct
// keys, emits a router table over those keys, distributes the stripped rules
// (wildcards replicated into every branch, set-pruning style), and recurses.
//
// Implemented for exact-or-wildcard pivot columns, matching the paper's
// simplified exposition; masked fields can participate in residual tables but
// never as a pivot, and a table with no eligible pivot is returned unchanged
// — which is also the paper's observation for production pipelines ("in
// essentially all cases our decomposer simply returned its input intact").
#pragma once

#include <cstdint>
#include <vector>

#include "flow/table.hpp"

namespace esw::core {

/// A decomposition-internal pipeline.  Table 0 is the root; `internal_next`
/// links within the decomposition; leaves carry the original entry's actions
/// and logical goto target.
struct DecomposedPipeline {
  struct Entry {
    flow::Match match;
    uint16_t priority = 0;
    flow::ActionList actions;           // empty for pure routing entries
    int16_t logical_goto = flow::kNoGoto;  // original goto (leaves only)
    int32_t internal_next = -1;            // next decomposition table, or -1
  };
  struct Table {
    std::vector<Entry> entries;  // priority-descending, stable
  };
  std::vector<Table> tables;

  /// True when the input was already in (or could not leave) its given shape:
  /// a single table identical to the input.
  bool unchanged() const { return tables.size() == 1; }
};

/// Runs DECOMPOSE(T).  `max_tables` bounds the output; on overflow the input
/// is returned unchanged (the compiler then falls back to the linked list).
DecomposedPipeline decompose(const flow::FlowTable& input, uint32_t max_tables = 4096);

}  // namespace esw::core
