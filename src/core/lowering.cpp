#include "core/lowering.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"

namespace esw::core {

using flow::FieldBase;
using flow::FieldId;
using flow::FieldInfo;

jit::FieldTest lower_field_test(FieldId f, uint64_t value, uint64_t mask) {
  const FieldInfo& fi = flow::field_info(f);
  jit::FieldTest t;
  t.rel_off = fi.offset;

  if (fi.base == FieldBase::kMeta) {
    // ParseInfo fields live in host byte order; compare directly.
    t.base = jit::LoadBase::kParseInfo;
    t.load_width = fi.load_width;
    t.cmp_const = value & mask;
    t.cmp_mask = mask;
    return t;
  }

  switch (fi.base) {
    case FieldBase::kL2:
      t.base = jit::LoadBase::kL2;
      break;
    case FieldBase::kL3:
      t.base = jit::LoadBase::kL3;
      break;
    case FieldBase::kL4:
      t.base = jit::LoadBase::kL4;
      break;
    default:
      break;
  }

  // Position the value within its wire chunk (sub-byte fields like vlan_pcp),
  // then swizzle to the constant a little-endian load would produce.
  const uint64_t wire_value = (value & mask) << fi.shift;
  const uint64_t wire_mask = (mask & low_bits(fi.width_bits)) << fi.shift;
  // 6-byte fields (MACs) load 8 bytes; the mask's two zero upper bytes
  // neutralize the over-read.
  t.load_width = fi.load_width == 6 ? 8 : fi.load_width;
  t.cmp_const = host_to_wire_le(wire_value, fi.load_width);
  t.cmp_mask = host_to_wire_le(wire_mask, fi.load_width);
  return t;
}

void lower_match(const flow::Match& m, jit::LoweredEntry& out) {
  out.proto_required = m.proto_required();
  for (FieldId f : flow::MatchFields(m))
    out.tests.push_back(lower_field_test(f, m.value(f), m.mask(f)));
}

jit::LoweredEntry lower_entry(const flow::FlowEntry& e, flow::ActionSetRegistry& registry,
                              const GotoMap& goto_map, int32_t internal_next) {
  jit::LoweredEntry out;
  lower_match(e.match, out);

  const int32_t action_set =
      e.actions.empty() ? -1 : static_cast<int32_t>(registry.intern(e.actions));

  int32_t next = -1;
  if (internal_next != kNoInternal) {
    next = internal_next;
  } else if (e.goto_table != flow::kNoGoto) {
    ESW_CHECK_MSG(static_cast<size_t>(e.goto_table) < goto_map.size() &&
                      goto_map[e.goto_table] >= 0,
                  "goto target not compiled");
    next = goto_map[e.goto_table];
  }
  out.result = jit::pack_result(action_set, next);
  return out;
}

}  // namespace esw::core
