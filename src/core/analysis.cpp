#include "core/analysis.hpp"

#include <algorithm>
#include <map>

#include "common/bits.hpp"

namespace esw::core {

using flow::FieldId;
using flow::Match;

bool hash_prerequisite(const AnalysisEntries& entries, Match* mask_out,
                       bool* has_catch_all) {
  const Match* shape = nullptr;
  bool catch_all_seen = false;
  uint16_t catch_all_prio = 0;
  uint16_t min_specific_prio = 0xFFFF;
  bool have_specific = false;

  for (const auto& e : entries) {
    if (e.match.is_catch_all()) {
      if (catch_all_seen) return false;  // at most one default
      catch_all_seen = true;
      catch_all_prio = e.priority;
      continue;
    }
    if (shape == nullptr) {
      shape = &e.match;
    } else if (!shape->same_mask_set(e.match)) {
      return false;
    }
    have_specific = true;
    min_specific_prio = std::min(min_specific_prio, e.priority);
  }
  if (!have_specific) return false;  // pure-default tables stay direct code
  if (catch_all_seen && catch_all_prio >= min_specific_prio) return false;

  if (mask_out != nullptr) {
    Match m;
    for (FieldId f : flow::MatchFields(*shape)) m.set(f, 0, shape->mask(f));
    *mask_out = m;
  }
  if (has_catch_all != nullptr) *has_catch_all = catch_all_seen;
  return true;
}

bool lpm_prerequisite(const AnalysisEntries& entries, FieldId* field_out) {
  FieldId field = FieldId::kCount;
  bool catch_all_seen = false;
  uint16_t catch_all_prio = 0;
  uint16_t min_specific_prio = 0xFFFF;
  bool have_specific = false;

  // (prefix_len, prefix) -> priority, for ancestor ordering checks.
  std::map<std::pair<uint8_t, uint32_t>, uint16_t> prefixes;

  for (const auto& e : entries) {
    if (e.match.is_catch_all()) {
      if (catch_all_seen) return false;
      catch_all_seen = true;
      catch_all_prio = e.priority;
      continue;
    }
    if (e.match.num_fields() != 1) return false;
    const FieldId f = *flow::MatchFields(e.match).begin();
    if (f != FieldId::kIpSrc && f != FieldId::kIpDst) return false;
    if (field == FieldId::kCount)
      field = f;
    else if (field != f)
      return false;

    const uint64_t mask = e.match.mask(f);
    if (!is_prefix_mask(mask, 32)) return false;
    const uint8_t len = static_cast<uint8_t>(prefix_len(mask, 32));
    const uint32_t prefix = static_cast<uint32_t>(e.match.value(f));
    if (!prefixes.emplace(std::make_pair(len, prefix), e.priority).second)
      return false;  // duplicate prefix at different priority: ambiguous
    have_specific = true;
    min_specific_prio = std::min(min_specific_prio, e.priority);
  }
  if (!have_specific) return false;
  if (catch_all_seen && catch_all_prio >= min_specific_prio) return false;

  // "whenever rules overlap the more specific one has higher priority".
  for (const auto& [key, prio] : prefixes) {
    const auto [len, prefix] = key;
    for (int alen = len - 1; alen >= 1; --alen) {
      const uint32_t ap =
          prefix & static_cast<uint32_t>(low_bits(alen) << (32 - alen));
      const auto it = prefixes.find({static_cast<uint8_t>(alen), ap});
      if (it != prefixes.end() && it->second >= prio) return false;
    }
  }
  if (field_out != nullptr) *field_out = field;
  return true;
}

bool range_prerequisite(const AnalysisEntries& entries, flow::FieldId* field_out) {
  FieldId field = FieldId::kCount;
  bool catch_all_seen = false;
  bool have_specific = false;
  for (const auto& e : entries) {
    if (e.match.is_catch_all()) {
      if (catch_all_seen) return false;
      catch_all_seen = true;
      continue;
    }
    if (e.match.num_fields() != 1) return false;
    const FieldId f = *flow::MatchFields(e.match).begin();
    if (field == FieldId::kCount)
      field = f;
    else if (field != f)
      return false;
    const auto width = flow::field_info(f).width_bits;
    if (width > 32) return false;  // interval keys kept in 32 bits of headroom
    if (!is_prefix_mask(e.match.mask(f), width)) return false;
    have_specific = true;
  }
  if (!have_specific) return false;
  if (field_out != nullptr) *field_out = field;
  return true;
}

AnalysisResult analyze_entries(const AnalysisEntries& entries,
                               const CompilerConfig& cfg) {
  if (cfg.force_template.has_value()) return {*cfg.force_template, "forced by config"};

  if (entries.size() <= cfg.direct_code_max_entries)
    return {TableTemplate::kDirectCode,
            "table small enough to compile rules straight to code"};
  if (hash_prerequisite(entries, nullptr, nullptr)) {
    if (cfg.cuckoo_min_entries != 0 && entries.size() >= cfg.cuckoo_min_entries)
      return {TableTemplate::kCuckooHash,
              "global mask at million-flow scale: resizable cuckoo exact match"};
    return {TableTemplate::kCompoundHash, "global mask, exact match under mask"};
  }
  if (lpm_prerequisite(entries, nullptr))
    return {TableTemplate::kLpm, "single-field prefix rules, priority-consistent"};
  if (cfg.enable_range_template && range_prerequisite(entries, nullptr))
    return {TableTemplate::kRange, "single-field aligned ranges, any priorities"};
  return {TableTemplate::kLinkedList, "no faster template applies"};
}

AnalysisResult analyze_table(const flow::FlowTable& t, const CompilerConfig& cfg) {
  AnalysisEntries entries;
  entries.reserve(t.size());
  for (const flow::FlowEntry& e : t.entries())
    entries.push_back({e.match, e.priority, {}, e.goto_table, -1});
  return analyze_entries(entries, cfg);
}

}  // namespace esw::core
