// The switch runtime: a port panel plus a Dataplane backend, run the way a
// production switch runs — packets flow rx_burst → process_burst → tx_burst
// and verdicts are *executed*, not returned to the caller:
//
//   * kOutput  — enqueued on the egress port (tail-dropped if the port's ring
//     or rate cap rejects it);
//   * kFlood   — fanned out to every port except ingress, one pool-allocated
//     copy per egress port;
//   * kController — the frame is buffered as a PacketInEvent (or handed to a
//     sink, e.g. an OfAgent session that turns it into a PACKET_IN);
//   * kDrop    — counted, buffer recycled.
//
// Buffer ownership is pool-based end to end: inject() allocates from the
// host's MbufPool, verdict execution either passes ownership to a TX ring or
// frees, and whoever drains a TX ring returns the buffers via release().
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/dataplane.hpp"
#include "netio/mbuf_pool.hpp"
#include "netio/portset.hpp"
#include "proto/parse.hpp"

namespace esw::core {

/// A controller-bound frame (the runtime-level precursor of a PACKET_IN).
/// The datapath does not distinguish an explicit controller action from a
/// kController table-miss policy, so no reason travels here; the agent layer
/// defaults to "no match", the reactive case.
struct PacketInEvent {
  std::vector<uint8_t> frame;
  uint32_t in_port = 0;
};

template <Dataplane Backend>
class SwitchHost {
 public:
  struct Config {
    uint32_t n_ports = 4;
    net::Port::Config port{};
    uint32_t pool_capacity = 4096;
  };

  struct Counters {
    uint64_t rx_packets = 0;      // accepted by inject()
    uint64_t tx_packets = 0;      // accepted by an egress port
    uint64_t flood_copies = 0;    // per-egress-port flood copies transmitted
    uint64_t drops = 0;           // kDrop verdicts
    uint64_t packet_ins = 0;      // kController verdicts
    uint64_t tx_rejected = 0;     // egress ring/rate-cap rejections
    uint64_t rx_rejected = 0;     // inject() lost to a full RX ring
    uint64_t bad_port = 0;        // kOutput/inject to a port that does not exist
    uint64_t pool_exhausted = 0;  // flood/inject copies lost to an empty pool
  };

  using PacketInSink = std::function<void(const PacketInEvent&)>;

  /// Constructs the backend in place from `args` (its config, typically) —
  /// backends own atomics and are deliberately not movable.
  template <typename... Args>
  explicit SwitchHost(const Config& cfg = {}, Args&&... args)
      : backend_(std::forward<Args>(args)...),
        ports_(cfg.n_ports, cfg.port),
        pool_(cfg.pool_capacity) {}

  Backend& backend() { return backend_; }
  const Backend& backend() const { return backend_; }
  net::PortSet& ports() { return ports_; }
  const net::PortSet& ports() const { return ports_; }
  net::MbufPool& pool() { return pool_; }
  const Counters& counters() const { return counters_; }

  /// Copies a frame into a pool buffer and queues it on the port's RX ring
  /// (what a NIC DMA would do).  False when the port does not exist or the
  /// pool or the ring is full.
  bool inject(uint32_t port_no, const uint8_t* frame, uint32_t len) {
    if (!ports_.valid(port_no)) {
      ++counters_.bad_port;
      return false;
    }
    net::Packet* pkt = pool_.alloc();
    if (pkt == nullptr) {
      ++counters_.pool_exhausted;
      return false;
    }
    pkt->assign(frame, len);
    pkt->set_in_port(port_no);
    if (ports_.port(port_no).inject_rx(&pkt, 1) != 1) {
      ++counters_.rx_rejected;
      pool_.free(pkt);
      return false;
    }
    ++counters_.rx_packets;
    return true;
  }

  /// One scheduling round: every port's RX ring is drained in kBurstSize
  /// bursts through the backend and the verdicts are executed.  Returns the
  /// number of packets processed.
  uint32_t poll(uint64_t now_ns = 0) {
    uint32_t processed = 0;
    ports_.for_each_except(0, [&](uint32_t, net::Port& p) {
      net::Packet* burst[net::kBurstSize];
      flow::Verdict verdicts[net::kBurstSize];
      uint32_t n;
      while ((n = p.rx_burst(burst, net::kBurstSize)) > 0) {
        backend_.process_burst(burst, n, verdicts);
        for (uint32_t i = 0; i < n; ++i) execute(burst[i], verdicts[i], now_ns);
        processed += n;
      }
    });
    return processed;
  }

  /// Executes a controller-originated PACKET_OUT: the frame runs through the
  /// action list (set-fields and all) and the resulting verdict is executed
  /// as if the datapath had produced it.  False when no buffer is available.
  bool packet_out(const uint8_t* frame, uint32_t len, uint32_t in_port,
                  const flow::ActionList& actions, uint64_t now_ns = 0) {
    net::Packet* pkt = pool_.alloc();
    if (pkt == nullptr) {
      ++counters_.pool_exhausted;
      return false;
    }
    pkt->assign(frame, len);
    pkt->set_in_port(in_port);
    proto::ParseInfo pi;
    proto::parse(pkt->data(), pkt->len(), proto::ParserPlan::full(), pi);
    pi.in_port = in_port;
    flow::ActionSetBuilder as;
    as.merge(actions);
    execute(pkt, as.execute(*pkt, pi), now_ns);
    return true;
  }

  /// Drains up to `n` transmitted packets from a port.  The caller owns the
  /// buffers and must hand each back via release().
  uint32_t drain_tx(uint32_t port_no, net::Packet** out, uint32_t n) {
    return ports_.port(port_no).drain_tx(out, n);
  }

  /// Returns a drained buffer to the pool.
  void release(net::Packet* pkt) { pool_.free(pkt); }

  /// Drains a port's whole TX ring back into the pool; returns the count
  /// (a sink for benches and soak loops that don't inspect frames).
  uint32_t drain_and_release_tx(uint32_t port_no) {
    net::Packet* out[net::kBurstSize];
    uint32_t total = 0, n;
    while ((n = ports_.port(port_no).drain_tx(out, net::kBurstSize)) > 0) {
      for (uint32_t i = 0; i < n; ++i) pool_.free(out[i]);
      total += n;
    }
    return total;
  }

  /// Routes kController frames to `sink` as they happen instead of buffering
  /// (pass nullptr to go back to buffering).
  void set_packet_in_sink(PacketInSink sink) { sink_ = std::move(sink); }

  /// Takes the buffered controller-bound frames.
  std::vector<PacketInEvent> drain_packet_ins() { return std::exchange(pending_, {}); }

 private:
  void execute(net::Packet* pkt, const flow::Verdict& v, uint64_t now_ns) {
    switch (v.kind) {
      case flow::Verdict::Kind::kOutput:
        tx_one(v.port, pkt, now_ns);
        break;
      case flow::Verdict::Kind::kFlood: {
        const uint32_t ingress = pkt->in_port();
        ports_.for_each_except(ingress, [&](uint32_t no, net::Port&) {
          net::Packet* copy = pool_.alloc();
          if (copy == nullptr) {
            ++counters_.pool_exhausted;
            return;
          }
          copy->assign(pkt->data(), pkt->len());
          copy->set_in_port(ingress);
          if (tx_one(no, copy, now_ns)) ++counters_.flood_copies;
        });
        pool_.free(pkt);
        break;
      }
      case flow::Verdict::Kind::kController: {
        ++counters_.packet_ins;
        PacketInEvent ev{{pkt->data(), pkt->data() + pkt->len()}, pkt->in_port()};
        pool_.free(pkt);
        if (sink_)
          sink_(ev);
        else
          pending_.push_back(std::move(ev));
        break;
      }
      case flow::Verdict::Kind::kDrop:
        ++counters_.drops;
        pool_.free(pkt);
        break;
    }
  }

  /// Hands `pkt` to a TX ring (ownership moves) or recycles it on rejection.
  bool tx_one(uint32_t port_no, net::Packet* pkt, uint64_t now_ns) {
    if (!ports_.valid(port_no)) {
      ++counters_.bad_port;
      pool_.free(pkt);
      return false;
    }
    if (ports_.port(port_no).tx_burst(&pkt, 1, now_ns) == 1) {
      ++counters_.tx_packets;
      return true;
    }
    ++counters_.tx_rejected;
    pool_.free(pkt);
    return false;
  }

  Backend backend_;
  net::PortSet ports_;
  net::MbufPool pool_;
  Counters counters_;
  PacketInSink sink_;
  std::vector<PacketInEvent> pending_;
};

}  // namespace esw::core
