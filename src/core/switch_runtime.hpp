// The multicore switch runtime: N run-to-completion packet workers over one
// shared backend — the paper's Fig. 19 execution model, for real this time.
//
// `SwitchHost` (switch_host.hpp) is the single-threaded runtime: one thread
// polls every port.  `SwitchRuntime` shards the port panel's RX rings across
// std::thread workers, each running the DPDK-style loop
//
//   rx_burst -> Backend::process_burst(worker ctx) -> execute verdicts
//
// while the control thread keeps exclusive ownership of the update plane
// (`apply`/`apply_batch`, or a `uc::OfAgent` session bridged to the backend)
// and of table-memory reclamation, which rides the backend's epoch domain —
// workers tick once per burst inside process_burst.
//
// Shared-state discipline, piece by piece:
//   * RX rings — single-producer/single-consumer: each port belongs to
//     exactly one worker (round-robin sharding), and that worker is also the
//     only injector when a traffic source is configured;
//   * TX rings — any worker may output to any port: multi-producer enqueue
//     (Ring::enqueue_burst_mp); the owning worker drains its ports' TX back
//     into the pool when `sink_tx` is on (the wire carrying frames away);
//   * buffers — one shared MbufPool, accessed only through per-worker
//     MbufCaches (bulk refill/spill, lock-free per packet);
//   * counters — per-worker cacheline-padded blocks of single-writer relaxed
//     atomics, aggregated only in counters() readers;
//   * packet-ins — bounded, mutex-protected handoff to the control thread
//     (the slow path by definition).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/counters.hpp"
#include "common/failpoint.hpp"
#include "common/tsc.hpp"
#include "core/dataplane.hpp"
#include "netio/mbuf_pool.hpp"
#include "netio/portset.hpp"
#include "perf/latency.hpp"

namespace esw::core {

/// A controller-bound frame captured by a worker (mirrors
/// SwitchHost::PacketInEvent without requiring that header).
struct RuntimePacketIn {
  std::vector<uint8_t> frame;
  uint32_t in_port = 0;
};

/// A backend the multi-worker runtime can drive: the unified Dataplane
/// surface plus per-worker execution contexts wired to epoch reclamation
/// (quiesce() lets the runtime tick a parked worker's epoch slot — the
/// backpressure and watchdog paths).
template <typename T>
concept ConcurrentDataplane =
    Dataplane<T> && requires(T sw, typename T::Worker* w, net::Packet* const* pkts,
                             uint32_t n, flow::Verdict* out) {
      { sw.register_worker() } -> std::same_as<typename T::Worker*>;
      sw.unregister_worker(w);
      sw.process_burst(*w, pkts, n, out);
      sw.quiesce(*w);
    };

template <ConcurrentDataplane Backend>
class SwitchRuntime {
 public:
  struct Config {
    uint32_t n_workers = 2;
    uint32_t n_ports = 4;  // sharded round-robin: port p -> worker (p-1) % n
    net::Port::Config port{};
    uint32_t pool_capacity = 8192;
    uint32_t worker_cache = 128;  // per-worker mbuf cache size
    bool sink_tx = true;          // workers drain their ports' TX back to pool
    uint32_t max_pending_packet_ins = 1024;
    /// Per-worker latency histograms: each worker times its bursts
    /// (serialized TSC reads around process_burst + verdict execution) and
    /// records the amortized per-packet cycles.  Off by default — the
    /// serialized reads cost ~2-3x a plain rdtsc per burst, which the pure
    /// throughput benches must not pay.
    bool measure_latency = false;
    /// Bounded RX backpressure pause when the buffer pool is exhausted: the
    /// worker ticks its epoch slot, raises its parked flag and sleeps this
    /// long instead of spinning the source loop into a drop storm.  0 keeps
    /// the old spin behavior.
    uint32_t backpressure_pause_us = 50;
  };

  /// Verdict-execution counters; one padded block per worker, aggregated on
  /// read.  `processed` is the throughput counter Fig. 19 reports.
  struct Counters {
    uint64_t polls = 0;          // worker loop iterations
    uint64_t processed = 0;      // packets through process_burst
    uint64_t source_packets = 0; // injected by the traffic source hook
    uint64_t tx_packets = 0;
    uint64_t flood_copies = 0;
    uint64_t drops = 0;
    uint64_t packet_ins = 0;
    uint64_t tx_rejected = 0;
    uint64_t bad_port = 0;
    uint64_t pool_exhausted = 0;
    uint64_t backpressure_events = 0;  // bounded pauses under pool exhaustion
  };

  /// One watchdog_scan() pass's findings (cumulative totals in
  /// watchdog_stalled_total() / watchdog_recovered_total()).
  struct WatchdogReport {
    uint32_t stalled = 0;    // workers whose poll counter froze since last scan
    uint32_t recovered = 0;  // parked workers epoch-ticked on their behalf
  };

  /// Per-worker traffic source (bench/generator mode), called on the worker
  /// thread with `n` pool buffers to fill (frame + in_port); returns how many
  /// were filled.  Unfilled buffers go back to the cache.  The filled ones
  /// are injected into the worker's first port and processed by the normal
  /// rx path — the measurement loop pays the same ring costs production
  /// traffic would.
  using SourceFn = std::function<uint32_t(uint32_t worker, net::Packet** bufs,
                                          uint32_t n)>;

  /// Constructs the backend in place from `args` (its config, typically).
  template <typename... Args>
  explicit SwitchRuntime(const Config& cfg = {}, Args&&... args)
      : cfg_(cfg),
        backend_(std::forward<Args>(args)...),
        ports_(cfg.n_ports, cfg.port),
        pool_(cfg.pool_capacity) {
    ESW_CHECK(cfg_.n_workers >= 1);
  }

  ~SwitchRuntime() { stop(); }
  SwitchRuntime(const SwitchRuntime&) = delete;
  SwitchRuntime& operator=(const SwitchRuntime&) = delete;

  Backend& backend() { return backend_; }
  const Backend& backend() const { return backend_; }
  net::PortSet& ports() { return ports_; }
  net::MbufPool& pool() { return pool_; }
  uint32_t n_workers() const { return cfg_.n_workers; }
  bool running() const { return !workers_.empty(); }

  /// Installs the per-worker traffic source.  Set before start().
  void set_source(SourceFn source) {
    ESW_CHECK_MSG(!running(), "set_source before start()");
    source_ = std::move(source);
  }

  /// Registers the worker contexts and launches the worker threads.  The
  /// control plane (install) must be loaded first; apply/apply_batch remain
  /// legal — that is the point — on this thread while workers run.
  void start() {
    ESW_CHECK_MSG(!running(), "already started");
    for (uint32_t no = net::PortSet::kFirstPort;
         no < net::PortSet::kFirstPort + ports_.size(); ++no)
      ESW_CHECK_MSG(!ports_.port(no).rate_capped(),
                    "multi-worker TX requires uncapped ports");
    stop_.store(false, std::memory_order_release);
    workers_.reserve(cfg_.n_workers);
    for (uint32_t i = 0; i < cfg_.n_workers; ++i) {
      auto ws = std::make_unique<WorkerState>(pool_, cfg_.worker_cache);
      ws->id = i;
      ws->ctx = backend_.register_worker();
      ESW_CHECK_MSG(ws->ctx != nullptr, "backend worker limit exceeded");
      for (uint32_t no = net::PortSet::kFirstPort;
           no < net::PortSet::kFirstPort + ports_.size(); ++no)
        if ((no - net::PortSet::kFirstPort) % cfg_.n_workers == i)
          ws->owned_ports.push_back(no);
      workers_.push_back(std::move(ws));
    }
    for (auto& ws : workers_)
      ws->thread = std::thread([this, w = ws.get()] { worker_main(*w); });
  }

  /// Stops and joins the workers, unregisters their contexts.  Their counters
  /// fold into the retired aggregate so counters() stays monotone across
  /// start/stop cycles.  Idempotent.
  void stop() {
    if (!running()) return;
    stop_.store(true, std::memory_order_release);
    for (auto& ws : workers_) ws->thread.join();
    final_worker_counters_.assign(workers_.size(), Counters{});
    final_worker_latency_.assign(workers_.size(), perf::LatencyHistogram{});
    for (auto& ws : workers_) {
      backend_.unregister_worker(ws->ctx);
      add_block(retired_counters_, ws->stats);
      add_block(final_worker_counters_[ws->id], ws->stats);
      retired_latency_.merge(ws->latency);
      final_worker_latency_[ws->id] = ws->latency;
    }
    workers_.clear();
  }

  /// Aggregated over all workers (past and, while running, live blocks).
  Counters counters() const {
    Counters sum = retired_counters_;
    for (const auto& ws : workers_) add_block(sum, ws->stats);
    return sum;
  }
  /// One worker's counter snapshot; worker ids are 0..n_workers-1.  Live
  /// while running; after stop() returns that run's final per-worker totals
  /// (until the next start()).
  Counters worker_counters(uint32_t worker) const {
    Counters out;
    if (running()) {
      ESW_CHECK(worker < workers_.size());
      add_block(out, workers_[worker]->stats);
    } else {
      ESW_CHECK(worker < final_worker_counters_.size());
      out = final_worker_counters_[worker];
    }
    return out;
  }

  /// Merged latency distribution over all workers, past runs included
  /// (cycles; convert with percentiles_ns()).  Exact after stop(); while
  /// running it is a live snapshot, approximate like counters().  Empty
  /// unless Config::measure_latency was on.
  perf::LatencyHistogram latency_histogram() const {
    perf::LatencyHistogram h = retired_latency_;
    for (const auto& ws : workers_) h.merge(ws->latency);
    return h;
  }
  /// One worker's latency histogram (live while running; after stop() the
  /// final per-worker distribution of the last run).
  perf::LatencyHistogram worker_latency(uint32_t worker) const {
    if (running()) {
      ESW_CHECK(worker < workers_.size());
      return workers_[worker]->latency;
    }
    ESW_CHECK(worker < final_worker_latency_.size());
    return final_worker_latency_[worker];
  }
  /// Zeroes every latency histogram — the warmup/measure boundary.  Workers
  /// keep recording; in-flight bursts may re-add a sample, so the cut is
  /// approximate by one burst per worker (clear_stats() semantics).
  void clear_latency() {
    retired_latency_.clear();
    for (auto& ws : workers_) ws->latency.clear();
    for (auto& h : final_worker_latency_) h.clear();
  }

  /// Copies a frame into a pool buffer and queues it on the port's RX ring.
  /// Control-thread injection: only for ports whose worker has no source
  /// configured (one RX producer at a time).
  bool inject(uint32_t port_no, const uint8_t* frame, uint32_t len) {
    if (!ports_.valid(port_no)) return false;
    net::Packet* pkt = pool_.alloc();
    if (pkt == nullptr) return false;
    pkt->assign(frame, len);
    pkt->set_in_port(port_no);
    if (ports_.port(port_no).inject_rx(&pkt, 1) != 1) {
      pool_.free(pkt);
      return false;
    }
    return true;
  }

  /// Takes the buffered controller-bound frames (control thread).
  std::vector<RuntimePacketIn> drain_packet_ins() {
    std::lock_guard<std::mutex> lock(pin_mu_);
    return std::exchange(pending_pins_, {});
  }

  /// Control-thread liveness sweep.  A worker whose poll counter has not
  /// moved since the previous scan is stalled — blocked in a syscall, wedged
  /// on a failpoint, or descheduled long enough to matter.  A stalled-but-
  /// parked worker declared itself pointer-free (backpressure pause), so the
  /// watchdog can safely tick its epoch slot on its behalf and unpin the
  /// reclamation horizon; that is counted as a recovery.  Call periodically
  /// (the soak harness does, each checkpoint); the first scan after start()
  /// only baselines and reports nothing.
  WatchdogReport watchdog_scan() {
    WatchdogReport rep;
    if (!running()) {
      last_polls_.clear();
      return rep;
    }
    const bool baselined = last_polls_.size() == workers_.size();
    if (!baselined) last_polls_.assign(workers_.size(), 0);
    for (size_t i = 0; i < workers_.size(); ++i) {
      WorkerState& ws = *workers_[i];
      const uint64_t polls = ws.stats.polls.load(std::memory_order_relaxed);
      const bool frozen = baselined && polls == last_polls_[i];
      last_polls_[i] = polls;
      if (!frozen) continue;
      ++rep.stalled;
      if (ws.parked.load(std::memory_order_acquire)) {
        backend_.quiesce(*ws.ctx);
        ++rep.recovered;
      }
    }
    watchdog_stalled_ += rep.stalled;
    watchdog_recovered_ += rep.recovered;
    return rep;
  }
  /// Cumulative watchdog findings across all scans.
  uint64_t watchdog_stalled_total() const { return watchdog_stalled_; }
  uint64_t watchdog_recovered_total() const { return watchdog_recovered_; }

 private:
  /// Single-writer relaxed counter cell (aggregators read concurrently).
  struct alignas(64) StatBlock {
    std::atomic<uint64_t> polls{0}, processed{0}, source_packets{0}, tx_packets{0},
        flood_copies{0}, drops{0}, packet_ins{0}, tx_rejected{0}, bad_port{0},
        pool_exhausted{0}, backpressure_events{0};
  };

  struct WorkerState {
    WorkerState(net::MbufPool& pool, uint32_t cache_size) : cache(pool, cache_size) {}
    uint32_t id = 0;
    typename Backend::Worker* ctx = nullptr;
    std::vector<uint32_t> owned_ports;
    net::MbufCache cache;
    StatBlock stats;
    // Raised while the worker provably holds no datapath pointers (bounded
    // backpressure sleep, or the worker_stall failpoint).  The watchdog may
    // tick a parked worker's epoch slot on its behalf.
    std::atomic<bool> parked{false};
    // Single-writer (this worker); merged/read by the control thread.
    perf::LatencyHistogram latency;
    std::thread thread;
  };

  static void bump(std::atomic<uint64_t>& c, uint64_t d) {
    common::counter_bump(c, d);  // single writer: the owning worker
  }
  static void add_block(Counters& sum, const StatBlock& b) {
    sum.polls += b.polls.load(std::memory_order_relaxed);
    sum.processed += b.processed.load(std::memory_order_relaxed);
    sum.source_packets += b.source_packets.load(std::memory_order_relaxed);
    sum.tx_packets += b.tx_packets.load(std::memory_order_relaxed);
    sum.flood_copies += b.flood_copies.load(std::memory_order_relaxed);
    sum.drops += b.drops.load(std::memory_order_relaxed);
    sum.packet_ins += b.packet_ins.load(std::memory_order_relaxed);
    sum.tx_rejected += b.tx_rejected.load(std::memory_order_relaxed);
    sum.bad_port += b.bad_port.load(std::memory_order_relaxed);
    sum.pool_exhausted += b.pool_exhausted.load(std::memory_order_relaxed);
    sum.backpressure_events += b.backpressure_events.load(std::memory_order_relaxed);
  }

  void worker_main(WorkerState& ws) {
    net::Packet* burst[net::kBurstSize];
    flow::Verdict verdicts[net::kBurstSize];
    while (!stop_.load(std::memory_order_acquire)) {
      if (ESW_FAILPOINT("runtime.worker_stall")) {
        // A worker wedged mid-loop (blocked syscall, livelock): it parks —
        // it holds no datapath pointers here — but deliberately does NOT
        // tick its epoch slot, so only the watchdog's quiesce-on-parked
        // recovery unpins the reclamation horizon.
        ws.parked.store(true, std::memory_order_release);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ws.parked.store(false, std::memory_order_release);
      }
      bump(ws.stats.polls, 1);
      uint32_t did = 0;
      if (source_ && !ws.owned_ports.empty()) did += pull_source(ws);
      for (const uint32_t no : ws.owned_ports) {
        net::Port& p = ports_.port(no);
        const uint32_t n = p.rx_burst(burst, net::kBurstSize);
        if (n == 0) continue;
        if (cfg_.measure_latency) {
          // Time the full switch residency of the burst — classification
          // plus verdict execution (TX enqueue / flood / handoff) — and
          // record the amortized per-packet cycles, weighted by the burst.
          const uint64_t t0 = rdtsc_serialized();
          backend_.process_burst(*ws.ctx, burst, n, verdicts);
          for (uint32_t i = 0; i < n; ++i) execute(ws, burst[i], verdicts[i]);
          const uint64_t dt = rdtsc_serialized() - t0;
          ws.latency.record_n(dt / n, n);
        } else {
          backend_.process_burst(*ws.ctx, burst, n, verdicts);
          for (uint32_t i = 0; i < n; ++i) execute(ws, burst[i], verdicts[i]);
        }
        bump(ws.stats.processed, n);
        did += n;
      }
      if (cfg_.sink_tx) {
        for (const uint32_t no : ws.owned_ports) {
          net::Packet* out[net::kBurstSize];
          uint32_t n;
          while ((n = ports_.port(no).drain_tx(out, net::kBurstSize)) > 0)
            for (uint32_t i = 0; i < n; ++i) ws.cache.free(out[i]);
        }
      }
      if (did == 0) std::this_thread::yield();
    }
    ws.cache.flush();
  }

  /// Generator mode: hand the source up to a burst of buffers, inject the
  /// filled ones into this worker's first port (we are its only RX producer).
  uint32_t pull_source(WorkerState& ws) {
    net::Packet* bufs[net::kBurstSize];
    uint32_t got = 0;
    while (got < net::kBurstSize) {
      net::Packet* p = ws.cache.alloc();
      if (p == nullptr) break;
      bufs[got++] = p;
    }
    if (got == 0) {
      bump(ws.stats.pool_exhausted, 1);
      backpressure_pause(ws);
      return 0;
    }
    const uint32_t filled = source_(ws.id, bufs, got);
    net::Port& p = ports_.port(ws.owned_ports.front());
    const uint32_t accepted = filled > 0 ? p.inject_rx(bufs, filled) : 0;
    for (uint32_t i = accepted; i < got; ++i) ws.cache.free(bufs[i]);
    bump(ws.stats.source_packets, accepted);
    return accepted;
  }

  /// Bounded RX backpressure: the pool is dry, so spinning the source only
  /// burns cycles and drops.  Tick the epoch slot first (downstream frees —
  /// TX sinks, reclamation — are what refill the pool), declare the worker
  /// parked and sleep briefly.  Parked means "holds no datapath pointers":
  /// the watchdog may quiesce on our behalf if we wedge here.
  void backpressure_pause(WorkerState& ws) {
    if (cfg_.backpressure_pause_us == 0) return;
    bump(ws.stats.backpressure_events, 1);
    backend_.quiesce(*ws.ctx);
    ws.parked.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::microseconds(cfg_.backpressure_pause_us));
    ws.parked.store(false, std::memory_order_release);
  }

  void execute(WorkerState& ws, net::Packet* pkt, const flow::Verdict& v) {
    switch (v.kind) {
      case flow::Verdict::Kind::kOutput:
        tx_one(ws, v.port, pkt);
        break;
      case flow::Verdict::Kind::kFlood: {
        const uint32_t ingress = pkt->in_port();
        for (uint32_t no = net::PortSet::kFirstPort;
             no < net::PortSet::kFirstPort + ports_.size(); ++no) {
          if (no == ingress) continue;
          net::Packet* copy = ws.cache.alloc();
          if (copy == nullptr) {
            bump(ws.stats.pool_exhausted, 1);
            continue;
          }
          copy->assign(pkt->data(), pkt->len());
          copy->set_in_port(ingress);
          if (tx_one(ws, no, copy)) bump(ws.stats.flood_copies, 1);
        }
        ws.cache.free(pkt);
        break;
      }
      case flow::Verdict::Kind::kController: {
        bump(ws.stats.packet_ins, 1);
        {
          std::lock_guard<std::mutex> lock(pin_mu_);
          if (pending_pins_.size() < cfg_.max_pending_packet_ins)
            pending_pins_.push_back(
                {{pkt->data(), pkt->data() + pkt->len()}, pkt->in_port()});
        }
        ws.cache.free(pkt);
        break;
      }
      case flow::Verdict::Kind::kDrop:
        bump(ws.stats.drops, 1);
        ws.cache.free(pkt);
        break;
    }
  }

  bool tx_one(WorkerState& ws, uint32_t port_no, net::Packet* pkt) {
    if (!ports_.valid(port_no)) {
      bump(ws.stats.bad_port, 1);
      ws.cache.free(pkt);
      return false;
    }
    if (ports_.port(port_no).tx_burst_mp(&pkt, 1) == 1) {
      bump(ws.stats.tx_packets, 1);
      return true;
    }
    bump(ws.stats.tx_rejected, 1);
    ws.cache.free(pkt);
    return false;
  }

  Config cfg_;
  Backend backend_;
  net::PortSet ports_;
  net::MbufPool pool_;
  SourceFn source_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  Counters retired_counters_;  // folded-in blocks of stopped workers
  std::vector<Counters> final_worker_counters_;  // last run's per-worker totals
  perf::LatencyHistogram retired_latency_;       // merged at stop()
  std::vector<perf::LatencyHistogram> final_worker_latency_;
  std::atomic<bool> stop_{false};
  std::mutex pin_mu_;
  std::vector<RuntimePacketIn> pending_pins_;
  std::vector<uint64_t> last_polls_;  // watchdog baseline (control thread only)
  uint64_t watchdog_stalled_ = 0;
  uint64_t watchdog_recovered_ = 0;
};

}  // namespace esw::core
