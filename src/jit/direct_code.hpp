// The *direct code* flow-table template (§3.1): a faithful machine-code
// rendering of a flow table's classification rules, with keys patched into
// the instruction stream and per-entry fall-through chains
// ("FLOW_1: … jne ADDR_NEXT_FLOW … FLOW_2: …").
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "jit/exec_mem.hpp"
#include "jit/ir.hpp"

namespace esw::jit {

/// A compiled direct-code classifier.  Immutable once built (the paper
/// rebuilds direct-code tables unconditionally on update).
class DirectCodeFn {
 public:
  using Fn = uint64_t (*)(const uint8_t* pkt, const proto::ParseInfo* pi);

  /// Compiles the entries; returns nullopt when executable memory is
  /// unavailable or linking fails (caller falls back to the interpreter).
  static std::optional<DirectCodeFn> compile(const std::vector<LoweredEntry>& entries);

  uint64_t operator()(const uint8_t* pkt, const proto::ParseInfo& pi) const {
    return fn_(pkt, &pi);
  }

  size_t code_size() const { return buf_->code_size(); }

 private:
  DirectCodeFn(std::unique_ptr<ExecBuffer> buf, Fn fn) : buf_(std::move(buf)), fn_(fn) {}

  std::unique_ptr<ExecBuffer> buf_;  // stable address across moves
  Fn fn_;
};

}  // namespace esw::jit
