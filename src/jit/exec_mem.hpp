// Executable memory management for the template JIT: code is assembled into a
// writable mapping, then flipped to read+execute (W^X discipline) before use.
#pragma once

#include <cstddef>
#include <cstdint>

namespace esw::jit {

/// One mmap'ed code region.  Move-only; unmapped on destruction.
class ExecBuffer {
 public:
  ExecBuffer() = default;
  ExecBuffer(ExecBuffer&& other) noexcept { swap(other); }
  ExecBuffer& operator=(ExecBuffer&& other) noexcept {
    swap(other);
    return *this;
  }
  ExecBuffer(const ExecBuffer&) = delete;
  ExecBuffer& operator=(const ExecBuffer&) = delete;
  ~ExecBuffer();

  /// Copies `code` into fresh executable memory.  Returns false when the
  /// platform refuses executable mappings (hardened kernels); callers then
  /// fall back to the interpreter backend.
  bool load(const uint8_t* code, size_t size);

  const void* entry() const { return mem_; }
  size_t code_size() const { return size_; }
  bool valid() const { return mem_ != nullptr; }

  /// True when this process can create executable memory at all (probed once).
  static bool supported();

  /// Test hook: arms/disarms the "jit.exec_map" failpoint in always mode, so
  /// every load() fails as if the platform refused the mapping and the
  /// interpreter-fallback path is exercisable on machines where executable
  /// memory works.  Not for production use.
  static void force_failure_for_testing(bool fail);

 private:
  /// The real mapping path, not subject to the failpoint (supported()'s probe
  /// must answer the genuine platform capability).
  bool load_raw(const uint8_t* code, size_t size);

  void swap(ExecBuffer& other) {
    void* m = mem_;
    mem_ = other.mem_;
    other.mem_ = m;
    size_t s = size_;
    size_ = other.size_;
    other.size_ = s;
    s = mapped_;
    mapped_ = other.mapped_;
    other.mapped_ = s;
  }

  void* mem_ = nullptr;
  size_t size_ = 0;
  size_t mapped_ = 0;
};

}  // namespace esw::jit
