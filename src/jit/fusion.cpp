#include "jit/fusion.hpp"

#include "jit/assembler.hpp"

namespace esw::jit {

std::shared_ptr<const FusedProgram> FusedProgram::compile(
    const std::vector<Member>& members, const std::vector<int32_t>& stage_of_slot,
    uint32_t n_stages) {
  if (members.empty() || !ExecBuffer::supported()) return nullptr;

  Assembler as;
  const Assembler::Label epilogue = as.new_label();

  // Body labels, keyed by stage, so hits can jump straight into a later
  // member's entry chain (the fused inter-table dispatch).
  std::vector<Assembler::Label> body(n_stages, 0);
  std::vector<bool> is_member(n_stages, false);
  for (const Member& m : members) {
    if (m.stage >= n_stages || m.entries == nullptr) return nullptr;
    body[m.stage] = as.new_label();
    is_member[m.stage] = true;
  }

  // Entry stubs first: one per member, so the staged walk can re-enter the
  // fused subgraph at any member after an external (non-fused) hop.  The
  // stub loads the register convention, then falls into the member's chain.
  std::vector<Assembler::Label> stub(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    stub[i] = as.new_label();
    as.bind(stub[i]);
    as.emit_fused_prologue();
    as.emit_jmp(body[members[i].stage]);
  }

  // Member bodies in walk order.  Gotos between members are forward-only
  // (the control plane validates goto_table > table_id), so every internal
  // transfer is a forward jmp into an already-planned label.
  for (const Member& m : members) {
    const uint32_t s = m.stage;
    as.bind(body[s]);
    as.emit_stat_inc(s * kFusedStatStride + kFusedStatLookups);
    for (const LoweredEntry& e : *m.entries) {
      const Assembler::Label next_flow = as.new_label();
      as.emit_proto_check(e.proto_required, next_flow);
      for (const FieldTest& t : e.tests) as.emit_field_test(t, next_flow);
      // Hit: the action id and the goto target are compile-time constants —
      // sink both into the instruction stream.
      as.emit_stat_inc(s * kFusedStatStride + kFusedStatHits);
      int32_t action_set = -1;
      int32_t next_slot = -1;
      unpack_result(e.result, action_set, next_slot);
      if (action_set >= 0) as.emit_action_push(static_cast<uint32_t>(action_set));
      if (next_slot < 0) {
        as.emit_fused_exit(63, s, epilogue);  // path end: completed
      } else {
        if (static_cast<size_t>(next_slot) >= stage_of_slot.size()) return nullptr;
        const int32_t ts = stage_of_slot[static_cast<size_t>(next_slot)];
        if (ts < 0 || static_cast<uint32_t>(ts) >= n_stages ||
            static_cast<uint32_t>(ts) <= s)
          return nullptr;  // unresolvable or non-forward goto — don't fuse
        if (is_member[static_cast<uint32_t>(ts)]) {
          as.emit_jmp(body[static_cast<uint32_t>(ts)]);  // fused dispatch
        } else {
          // Leaves the fused subgraph: hand the stage back to the C++ walk.
          as.emit_fused_exit(0, static_cast<uint32_t>(ts), epilogue);
        }
      }
      as.bind(next_flow);
    }
    // Fall-through: table miss at this stage.
    as.emit_stat_inc(s * kFusedStatStride + kFusedStatMisses);
    as.emit_fused_exit(62, s, epilogue);
  }

  as.bind(epilogue);
  as.emit_epilogue();
  if (!as.link()) return nullptr;

  auto buf = std::make_unique<ExecBuffer>();
  if (!buf->load(as.code().data(), as.size())) return nullptr;

  auto prog = std::shared_ptr<FusedProgram>(new FusedProgram());
  prog->entries_.assign(n_stages, nullptr);
  const auto* base = static_cast<const uint8_t*>(buf->entry());
  for (size_t i = 0; i < members.size(); ++i) {
    const int32_t off = as.label_offset(stub[i]);
    prog->entries_[members[i].stage] =
        reinterpret_cast<Fn>(const_cast<uint8_t*>(base + off));
  }
  prog->n_members_ = static_cast<uint32_t>(members.size());
  prog->buf_ = std::move(buf);
  return prog;
}

}  // namespace esw::jit
