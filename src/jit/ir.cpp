#include "jit/ir.hpp"

#include <cstring>

namespace esw::jit {

namespace {

inline const uint8_t* base_ptr(LoadBase base, const uint8_t* pkt,
                               const proto::ParseInfo& pi) {
  switch (base) {
    case LoadBase::kL2:
      return pkt + pi.l2_off;
    case LoadBase::kL3:
      return pkt + pi.l3_off;
    case LoadBase::kL4:
      return pkt + pi.l4_off;
    case LoadBase::kParseInfo:
      return reinterpret_cast<const uint8_t*>(&pi);
  }
  return pkt;
}

}  // namespace

uint64_t interpret(const LoweredEntry* entries, size_t count, const uint8_t* pkt,
                   const proto::ParseInfo& pi) {
  for (size_t i = 0; i < count; ++i) {
    const LoweredEntry& e = entries[i];
    if ((pi.proto_mask & e.proto_required) != e.proto_required) continue;
    bool hit = true;
    for (const FieldTest& t : e.tests) {
      uint64_t v = 0;
      std::memcpy(&v, base_ptr(t.base, pkt, pi) + t.rel_off, t.load_width);
      if (((v ^ t.cmp_const) & t.cmp_mask) != 0) {
        hit = false;
        break;
      }
    }
    if (hit) return e.result;
  }
  return kMissResult;
}

}  // namespace esw::jit
