#include "jit/assembler.hpp"

#include "common/check.hpp"

namespace esw::jit {

namespace {
// SIB index encodings for the layer-offset registers (all need REX.X).
uint8_t index_bits(LoadBase base) {
  switch (base) {
    case LoadBase::kL2:
      return 0b100;  // r12
    case LoadBase::kL3:
      return 0b101;  // r13
    case LoadBase::kL4:
      return 0b110;  // r14
    default:
      return 0;
  }
}
}  // namespace

void Assembler::u32le(uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<uint8_t>(v >> (8 * i)));
}

void Assembler::u64le(uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<uint8_t>(v >> (8 * i)));
}

void Assembler::bind(Label l) {
  ESW_CHECK(labels_[l] == kUnbound);
  labels_[l] = static_cast<int32_t>(code_.size());
}

void Assembler::jcc32(uint8_t cc, Label target) {
  u8(0x0F);
  u8(cc);
  fixups_.push_back({code_.size(), target});
  u32le(0);
}

void Assembler::jmp32(Label target) {
  u8(0xE9);
  fixups_.push_back({code_.size(), target});
  u32le(0);
}

void Assembler::emit_prologue() {
  // push r12; push r13; push r14; push r15
  u8(0x41); u8(0x54);
  u8(0x41); u8(0x55);
  u8(0x41); u8(0x56);
  u8(0x41); u8(0x57);
  // L2_PARSER: movzx r12d, word [rsi+4]
  u8(0x44); u8(0x0F); u8(0xB7); u8(0x66); u8(0x04);
  // L3_PARSER: movzx r13d, word [rsi+6]
  u8(0x44); u8(0x0F); u8(0xB7); u8(0x6E); u8(0x06);
  // L4_PARSER: movzx r14d, word [rsi+8]
  u8(0x44); u8(0x0F); u8(0xB7); u8(0x76); u8(0x08);
  // PROTOCOL_PARSER bitmask: mov r15d, [rsi]
  u8(0x44); u8(0x8B); u8(0x3E);
}

void Assembler::emit_epilogue() {
  // pop r15; pop r14; pop r13; pop r12; ret
  u8(0x41); u8(0x5F);
  u8(0x41); u8(0x5E);
  u8(0x41); u8(0x5D);
  u8(0x41); u8(0x5C);
  u8(0xC3);
}

void Assembler::emit_proto_check(uint32_t required, Label fail) {
  if (required == 0) return;
  if ((required & (required - 1)) == 0) {
    // Single protocol bit — the paper's "bt r15d, BIT; jae NEXT_FLOW".
    const uint8_t bit = static_cast<uint8_t>(__builtin_ctz(required));
    u8(0x41); u8(0x0F); u8(0xBA); u8(0xE7); u8(bit);  // bt r15d, imm8
    jcc32(0x83, fail);                                 // jae (CF == 0)
    return;
  }
  // mov eax, r15d; and eax, req; cmp eax, req; jne fail
  u8(0x44); u8(0x89); u8(0xF8);
  u8(0x25); u32le(required);
  u8(0x3D); u32le(required);
  jcc32(0x85, fail);
}

void Assembler::emit_field_test(const FieldTest& t, Label fail) {
  const uint8_t disp = static_cast<uint8_t>(t.rel_off);

  if (t.base == LoadBase::kParseInfo) {
    // Loads from the ParseInfo block: [rsi + disp8].
    switch (t.load_width) {
      case 1:
        u8(0x0F); u8(0xB6); u8(0x46); u8(disp);  // movzx eax, byte [rsi+d]
        break;
      case 2:
        u8(0x0F); u8(0xB7); u8(0x46); u8(disp);  // movzx eax, word [rsi+d]
        break;
      case 4:
        u8(0x8B); u8(0x46); u8(disp);  // mov eax, [rsi+d]
        break;
      case 8:
        u8(0x48); u8(0x8B); u8(0x46); u8(disp);  // mov rax, [rsi+d]
        break;
      default:
        ESW_CHECK_MSG(false, "bad load width");
    }
  } else {
    // Loads from the packet: [rdi + r12/13/14 + disp8] via SIB.
    const uint8_t sib = static_cast<uint8_t>((index_bits(t.base) << 3) | 0b111);
    switch (t.load_width) {
      case 1:
        u8(0x42); u8(0x0F); u8(0xB6); u8(0x44); u8(sib); u8(disp);
        break;
      case 2:
        u8(0x42); u8(0x0F); u8(0xB7); u8(0x44); u8(sib); u8(disp);
        break;
      case 4:
        u8(0x42); u8(0x8B); u8(0x44); u8(sib); u8(disp);
        break;
      case 8:
        u8(0x4A); u8(0x8B); u8(0x44); u8(sib); u8(disp);
        break;
      default:
        ESW_CHECK_MSG(false, "bad load width");
    }
  }

  // Key and mask are immediates: the template-specialization constant folding.
  if (t.load_width == 8) {
    u8(0x48); u8(0xB9); u64le(t.cmp_const);  // mov rcx, key
    u8(0x48); u8(0x31); u8(0xC8);            // xor rax, rcx
    u8(0x48); u8(0xBA); u64le(t.cmp_mask);   // mov rdx, mask
    u8(0x48); u8(0x85); u8(0xD0);            // test rax, rdx
  } else {
    if (t.cmp_const != 0) {
      u8(0x35); u32le(static_cast<uint32_t>(t.cmp_const));  // xor eax, key
    }
    u8(0xA9); u32le(static_cast<uint32_t>(t.cmp_mask));  // test eax, mask
  }
  jcc32(0x85, fail);  // jnz -> no match
}

void Assembler::emit_return(uint64_t packed, Label epilogue) {
  if (packed <= 0xFFFFFFFFu) {
    u8(0xB8); u32le(static_cast<uint32_t>(packed));  // mov eax, imm32
  } else {
    u8(0x48); u8(0xB8); u64le(packed);  // mov rax, imm64
  }
  jmp32(epilogue);
}

void Assembler::emit_jmp(Label target) { jmp32(target); }

void Assembler::emit_fused_prologue() {
  // Park the extra arguments before anything can clobber rcx/rdx (the 8-byte
  // field test uses both as scratch).
  u8(0x49); u8(0x89); u8(0xD0);  // mov r8, rdx   (actions cursor)
  u8(0x49); u8(0x89); u8(0xC9);  // mov r9, rcx   (stats base)
  u8(0x45); u8(0x31); u8(0xD2);  // xor r10d, r10d (action count)
  emit_prologue();
}

void Assembler::emit_action_push(uint32_t action_set) {
  u8(0x41); u8(0xC7); u8(0x00); u32le(action_set);  // mov dword [r8], imm32
  u8(0x49); u8(0x83); u8(0xC0); u8(0x04);           // add r8, 4
  u8(0x41); u8(0xFF); u8(0xC2);                     // inc r10d
}

void Assembler::emit_stat_inc(uint32_t index) {
  const uint32_t disp = index * 8;
  if (disp < 128) {
    // inc qword [r9 + disp8]
    u8(0x49); u8(0xFF); u8(0x41); u8(static_cast<uint8_t>(disp));
  } else {
    // inc qword [r9 + disp32]
    u8(0x49); u8(0xFF); u8(0x81); u32le(disp);
  }
}

void Assembler::emit_fused_exit(uint8_t marker_bit, uint32_t stage,
                                Label epilogue) {
  u8(0x4C); u8(0x89); u8(0xD0);            // mov rax, r10
  u8(0x48); u8(0xC1); u8(0xE0); u8(0x20);  // shl rax, 32
  if (stage != 0) {
    u8(0x48); u8(0x0D); u32le(stage);      // or rax, imm32 (stage id)
  }
  if (marker_bit != 0) {
    // bts rax, 62/63 — the completed / miss marker.
    u8(0x48); u8(0x0F); u8(0xBA); u8(0xE8); u8(marker_bit);
  }
  jmp32(epilogue);
}

bool Assembler::link() {
  for (const Fixup& f : fixups_) {
    const int32_t at_label = labels_[f.label];
    if (at_label == kUnbound) return false;
    const int32_t rel = at_label - static_cast<int32_t>(f.at + 4);
    for (int i = 0; i < 4; ++i)
      code_[f.at + i] = static_cast<uint8_t>(static_cast<uint32_t>(rel) >> (8 * i));
  }
  fixups_.clear();
  return true;
}

}  // namespace esw::jit
