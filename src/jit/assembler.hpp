// Minimal x86-64 assembler for the matcher templates.
//
// Emits exactly the instruction shapes the paper's hand-written templates use
// (§3.1): the prologue mirrors its register convention — r12 = L2 header
// pointer/offset, r13 = L3, r14 = L4, r15 = protocol bitmask — protocol
// presence is tested with `bt`/`jae` for single bits, and match keys/masks are
// immediates folded into the instruction stream.  Jump targets are Labels
// resolved in a final linking pass (§3.3), rel32 throughout.
//
// Generated function signature (SysV AMD64):
//   uint64_t fn(const uint8_t* pkt /*rdi*/, const proto::ParseInfo* pi /*rsi*/);
// returning jit::pack_result / kMissResult.
#pragma once

#include <cstdint>
#include <vector>

#include "jit/ir.hpp"

namespace esw::jit {

class Assembler {
 public:
  using Label = uint32_t;

  Label new_label() {
    labels_.push_back(kUnbound);
    return static_cast<Label>(labels_.size() - 1);
  }
  void bind(Label l);

  // --- template building blocks -----------------------------------------

  /// push r12..r15; load l2/l3/l4 offsets and the protocol bitmask from the
  /// ParseInfo (the paper's PROTOCOL_PARSER / Lx_PARSER register loads).
  void emit_prologue();

  /// Bind-point for all exits: pop r15..r12; ret.
  void emit_epilogue();

  /// Jump to `fail` unless (proto_mask & required) == required.
  /// Single-bit masks compile to the paper's `bt r15d, bit; jae fail`.
  void emit_proto_check(uint32_t required, Label fail);

  /// One matcher template instance: load, xor key, test mask, jnz fail.
  void emit_field_test(const FieldTest& test, Label fail);

  /// mov rax, packed; jmp epilogue.
  void emit_return(uint64_t packed, Label epilogue);

  /// Unconditional jump (used for the final fall-through miss).
  void emit_jmp(Label target);

  // --- whole-pipeline fusion building blocks (jit/fusion.hpp) --------------
  //
  // Fused functions use a wider signature:
  //   uint64_t fn(const uint8_t* pkt /*rdi*/, const proto::ParseInfo* pi /*rsi*/,
  //               int32_t* actions /*rdx*/, uint64_t* stats /*rcx*/);
  // The 8-byte field test clobbers rcx/rdx, so the fused prologue parks the
  // out-pointers in r8 (actions cursor) / r9 (stats base) and zeroes the
  // pushed-action count in r10d before the shared register loads.

  /// mov r8, rdx; mov r9, rcx; xor r10d, r10d; then the standard prologue.
  void emit_fused_prologue();

  /// Appends one action-set id to the actions array:
  /// mov dword [r8], id; add r8, 4; inc r10d.
  void emit_action_push(uint32_t action_set);

  /// inc qword [r9 + 8*index] — bumps one per-stage stat counter in the
  /// caller-provided delta block.
  void emit_stat_inc(uint32_t index);

  /// Terminates a fused walk: rax = (r10 << 32) | marker_bits | stage,
  /// jmp epilogue.  `marker` is OR-ed in via bts (bit 63 = completed,
  /// bit 62 = miss); stage occupies the low 32 bits.
  void emit_fused_exit(uint8_t marker_bit, uint32_t stage, Label epilogue);

  /// Offset a bound label resolved to (for entry-stub tables). kUnbound if
  /// the label was never bound.
  int32_t label_offset(Label l) const { return labels_[l]; }

  // --- linking -------------------------------------------------------------

  /// Resolves all fixups; returns false if any label stayed unbound.
  bool link();

  const std::vector<uint8_t>& code() const { return code_; }
  size_t size() const { return code_.size(); }

 private:
  static constexpr int32_t kUnbound = -1;

  void u8(uint8_t b) { code_.push_back(b); }
  void u32le(uint32_t v);
  void u64le(uint64_t v);
  void jcc32(uint8_t cc, Label target);  // 0F 8x rel32
  void jmp32(Label target);              // E9 rel32

  std::vector<uint8_t> code_;
  std::vector<int32_t> labels_;  // offset or kUnbound
  struct Fixup {
    size_t at;  // position of the rel32 field
    Label label;
  };
  std::vector<Fixup> fixups_;
};

}  // namespace esw::jit
