// Minimal x86-64 assembler for the matcher templates.
//
// Emits exactly the instruction shapes the paper's hand-written templates use
// (§3.1): the prologue mirrors its register convention — r12 = L2 header
// pointer/offset, r13 = L3, r14 = L4, r15 = protocol bitmask — protocol
// presence is tested with `bt`/`jae` for single bits, and match keys/masks are
// immediates folded into the instruction stream.  Jump targets are Labels
// resolved in a final linking pass (§3.3), rel32 throughout.
//
// Generated function signature (SysV AMD64):
//   uint64_t fn(const uint8_t* pkt /*rdi*/, const proto::ParseInfo* pi /*rsi*/);
// returning jit::pack_result / kMissResult.
#pragma once

#include <cstdint>
#include <vector>

#include "jit/ir.hpp"

namespace esw::jit {

class Assembler {
 public:
  using Label = uint32_t;

  Label new_label() {
    labels_.push_back(kUnbound);
    return static_cast<Label>(labels_.size() - 1);
  }
  void bind(Label l);

  // --- template building blocks -----------------------------------------

  /// push r12..r15; load l2/l3/l4 offsets and the protocol bitmask from the
  /// ParseInfo (the paper's PROTOCOL_PARSER / Lx_PARSER register loads).
  void emit_prologue();

  /// Bind-point for all exits: pop r15..r12; ret.
  void emit_epilogue();

  /// Jump to `fail` unless (proto_mask & required) == required.
  /// Single-bit masks compile to the paper's `bt r15d, bit; jae fail`.
  void emit_proto_check(uint32_t required, Label fail);

  /// One matcher template instance: load, xor key, test mask, jnz fail.
  void emit_field_test(const FieldTest& test, Label fail);

  /// mov rax, packed; jmp epilogue.
  void emit_return(uint64_t packed, Label epilogue);

  /// Unconditional jump (used for the final fall-through miss).
  void emit_jmp(Label target);

  // --- linking -------------------------------------------------------------

  /// Resolves all fixups; returns false if any label stayed unbound.
  bool link();

  const std::vector<uint8_t>& code() const { return code_; }
  size_t size() const { return code_.size(); }

 private:
  static constexpr int32_t kUnbound = -1;

  void u8(uint8_t b) { code_.push_back(b); }
  void u32le(uint32_t v);
  void u64le(uint64_t v);
  void jcc32(uint8_t cc, Label target);  // 0F 8x rel32
  void jmp32(Label target);              // E9 rel32

  std::vector<uint8_t> code_;
  std::vector<int32_t> labels_;  // offset or kUnbound
  struct Fixup {
    size_t at;  // position of the rel32 field
    Label label;
  };
  std::vector<Fixup> fixups_;
};

}  // namespace esw::jit
