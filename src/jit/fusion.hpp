// Whole-pipeline fusion (ROADMAP item 3): the goto graph's direct-code
// members compiled into ONE function, with inter-table dispatch resolved at
// compile time.
//
// The per-table JIT (direct_code.hpp) renders a single table; between tables
// the datapath still walks interpreted glue — unpack the packed result, map
// the goto target to a slot, reload the next impl, dispatch again.  A
// FusedProgram inlines that glue: each direct-code stage's entry chain is
// emitted into one code buffer, and a hit whose goto targets another fused
// stage becomes a plain `jmp` to that stage's first entry — no packed-result
// round trip, no slot lookup, no indirect call.  Action-set ids are *sunk
// into the match code* (the hit site appends the constant id to a caller
// array), and per-stage lookup/hit/miss counters are bumped directly in
// machine code so the fused path keeps table-stats parity with the staged
// walk.
//
// Fused functions use a wider SysV signature than the per-table templates:
//
//   uint64_t fn(const uint8_t* pkt,            // rdi
//               const proto::ParseInfo* pi,    // rsi
//               int32_t* actions,              // rdx -> parked in r8
//               uint64_t* stats);              // rcx -> parked in r9
//
// `actions` receives the action-set ids of every hit on the walk (append
// order = table order); `stats` is a per-worker delta block laid out as
// stats[stage * 3 + {lookups,hits,misses}].  The return value encodes where
// the walk left the fused subgraph:
//
//   bit 63          walk completed (last hit had no goto) — verdict is the
//                   accumulated action set
//   bit 62          table miss at stage = low 32 bits — caller applies that
//                   stage's miss policy
//   neither         external goto: the walk must continue *staged* at
//                   stage = low 32 bits (a non-direct-code member)
//   bits 32..61     number of action ids appended to `actions`
//
// Non-direct-code stages (hash / LPM / range / linked-list) stay in the
// staged C++ walk; the fused program exposes one entry point per member so
// the walk can re-enter machine code whenever control returns to a fused
// stage.  Everything here is immutable after compile — churn publishes a new
// FusedProgram through the epoch domain exactly like a table impl.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "jit/exec_mem.hpp"
#include "jit/ir.hpp"

namespace esw::jit {

/// Exit-word markers (see the file comment for the full encoding).
inline constexpr uint64_t kFusedCompleted = uint64_t{1} << 63;
inline constexpr uint64_t kFusedMiss = uint64_t{1} << 62;

/// Stage index the exit word points at (miss stage or external-goto target).
inline uint32_t fused_exit_stage(uint64_t w) {
  return static_cast<uint32_t>(w & 0xFFFFFFFFu);
}

/// How many action-set ids the walk appended to the `actions` array.
inline uint32_t fused_exit_actions(uint64_t w) {
  return static_cast<uint32_t>((w >> 32) & 0x3FFFFFFFu);
}

/// Per-stage stat layout inside the caller's delta block.
inline constexpr uint32_t kFusedStatStride = 3;
inline constexpr uint32_t kFusedStatLookups = 0;
inline constexpr uint32_t kFusedStatHits = 1;
inline constexpr uint32_t kFusedStatMisses = 2;

/// One compiled function covering every direct-code member of a pipeline.
class FusedProgram {
 public:
  using Fn = uint64_t (*)(const uint8_t* pkt, const proto::ParseInfo* pi,
                          int32_t* actions, uint64_t* stats);

  /// One fusable stage: its position in the pipeline walk order and its
  /// lowered entry chain (borrowed only for the duration of compile()).
  struct Member {
    uint32_t stage = 0;
    const std::vector<LoweredEntry>* entries = nullptr;
  };

  /// Compiles the members (sorted ascending by stage) into one buffer.
  /// `stage_of_slot[slot]` maps a packed-result goto slot to its stage index
  /// (-1 = unknown); `n_stages` bounds both maps.  Returns nullptr when
  /// executable memory is unavailable, linking fails, or a goto target
  /// cannot be resolved to a forward stage — the caller degrades to the
  /// staged walk (and may retry per the jit fallback policy).
  static std::shared_ptr<const FusedProgram> compile(
      const std::vector<Member>& members, const std::vector<int32_t>& stage_of_slot,
      uint32_t n_stages);

  /// Entry point for a member stage; nullptr for non-member stages.
  Fn entry(uint32_t stage) const {
    return stage < entries_.size() ? entries_[stage] : nullptr;
  }

  size_t code_size() const { return buf_->code_size(); }
  uint32_t n_members() const { return n_members_; }

 private:
  FusedProgram() = default;

  std::unique_ptr<ExecBuffer> buf_;
  std::vector<Fn> entries_;  // indexed by stage, nullptr = not fused
  uint32_t n_members_ = 0;
};

}  // namespace esw::jit
