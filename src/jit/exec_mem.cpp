#include "jit/exec_mem.hpp"

#include <sys/mman.h>

#include <cstring>

#include "common/failpoint.hpp"

namespace esw::jit {

void ExecBuffer::force_failure_for_testing(bool fail) {
  // Run the real capability probe before lying: supported() caches its first
  // answer, and a probe under the forced failure would pin it to false for
  // the rest of the process.
  if (fail) {
    (void)supported();
    common::FailpointRegistry::instance().arm("jit.exec_map", "always");
  } else {
    common::FailpointRegistry::instance().disarm("jit.exec_map");
  }
}

ExecBuffer::~ExecBuffer() {
  if (mem_ != nullptr) ::munmap(mem_, mapped_);
}

bool ExecBuffer::load(const uint8_t* code, size_t size) {
  // Injectable mapping refusal (the hardened-kernel shape): callers fall back
  // to the interpreter.  supported()'s probe bypasses this via load_raw so an
  // armed point cannot pin the capability answer to false.
  if (ESW_FAILPOINT("jit.exec_map")) return false;
  return load_raw(code, size);
}

bool ExecBuffer::load_raw(const uint8_t* code, size_t size) {
  if (mem_ != nullptr) {
    ::munmap(mem_, mapped_);
    mem_ = nullptr;
  }
  const size_t page = 4096;
  mapped_ = (size + page - 1) & ~(page - 1);
  void* m = ::mmap(nullptr, mapped_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (m == MAP_FAILED) return false;
  std::memcpy(m, code, size);
  if (::mprotect(m, mapped_, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(m, mapped_);
    return false;
  }
  mem_ = m;
  size_ = size;
  return true;
}

bool ExecBuffer::supported() {
  static const bool ok = [] {
    // ret-only probe.
    const uint8_t ret = 0xC3;
    ExecBuffer probe;
    if (!probe.load_raw(&ret, 1)) return false;
    reinterpret_cast<void (*)()>(const_cast<void*>(probe.entry()))();
    return true;
  }();
  return ok;
}

}  // namespace esw::jit
