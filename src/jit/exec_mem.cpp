#include "jit/exec_mem.hpp"

#include <sys/mman.h>

#include <atomic>
#include <cstring>

namespace esw::jit {

namespace {
std::atomic<bool> g_force_failure{false};
}  // namespace

void ExecBuffer::force_failure_for_testing(bool fail) {
  // Run the real capability probe before lying: supported() caches its first
  // answer, and a probe under the forced failure would pin it to false for
  // the rest of the process.
  if (fail) (void)supported();
  g_force_failure.store(fail, std::memory_order_relaxed);
}

ExecBuffer::~ExecBuffer() {
  if (mem_ != nullptr) ::munmap(mem_, mapped_);
}

bool ExecBuffer::load(const uint8_t* code, size_t size) {
  if (g_force_failure.load(std::memory_order_relaxed)) return false;
  if (mem_ != nullptr) {
    ::munmap(mem_, mapped_);
    mem_ = nullptr;
  }
  const size_t page = 4096;
  mapped_ = (size + page - 1) & ~(page - 1);
  void* m = ::mmap(nullptr, mapped_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (m == MAP_FAILED) return false;
  std::memcpy(m, code, size);
  if (::mprotect(m, mapped_, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(m, mapped_);
    return false;
  }
  mem_ = m;
  size_ = size;
  return true;
}

bool ExecBuffer::supported() {
  static const bool ok = [] {
    // ret-only probe.
    const uint8_t ret = 0xC3;
    ExecBuffer probe;
    if (!probe.load(&ret, 1)) return false;
    reinterpret_cast<void (*)()>(const_cast<void*>(probe.entry()))();
    return true;
  }();
  return ok;
}

}  // namespace esw::jit
