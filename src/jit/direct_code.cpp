#include "jit/direct_code.hpp"

#include "jit/assembler.hpp"

namespace esw::jit {

std::optional<DirectCodeFn> DirectCodeFn::compile(
    const std::vector<LoweredEntry>& entries) {
  if (!ExecBuffer::supported()) return std::nullopt;

  Assembler as;
  const Assembler::Label epilogue = as.new_label();

  as.emit_prologue();
  for (const LoweredEntry& e : entries) {
    // ADDR_NEXT_FLOW for this entry.
    const Assembler::Label next_flow = as.new_label();
    as.emit_proto_check(e.proto_required, next_flow);
    for (const FieldTest& t : e.tests) as.emit_field_test(t, next_flow);
    as.emit_return(e.result, epilogue);
    as.bind(next_flow);
  }
  as.emit_return(kMissResult, epilogue);
  as.bind(epilogue);
  as.emit_epilogue();

  if (!as.link()) return std::nullopt;

  auto buf = std::make_unique<ExecBuffer>();
  if (!buf->load(as.code().data(), as.size())) return std::nullopt;
  const Fn fn = reinterpret_cast<Fn>(const_cast<void*>(buf->entry()));
  return DirectCodeFn(std::move(buf), fn);
}

}  // namespace esw::jit
