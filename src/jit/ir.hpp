// The lowered matcher IR — the meeting point of the paper's *matcher
// templates* and *template specialization* (§3.1, §3.3).
//
// A FieldTest is one specialized matcher: a raw little-endian load of 1/2/4/8
// bytes at a layer-relative offset, xor'ed against an inlined key constant and
// masked ("actual flow keys will be patched into the templates in the template
// specialization step").  A LoweredEntry is one flow entry: a protocol-bitmask
// guard plus a chain of matchers plus a packed result.
//
// Two executors share this IR byte-for-byte: the x86-64 JIT backend
// (direct_code.hpp) and the portable interpreter below — which is both the
// non-x86 fallback and the differential-testing oracle for the JIT.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/parse.hpp"

namespace esw::jit {

/// Which parsed offset anchors a load (the paper's r12/r13/r14 registers),
/// or the ParseInfo block itself for pipeline metadata (in_port, metadata).
enum class LoadBase : uint8_t { kL2, kL3, kL4, kParseInfo };

struct FieldTest {
  LoadBase base = LoadBase::kL2;
  int8_t rel_off = 0;      // byte offset relative to the base (may be negative)
  uint8_t load_width = 1;  // 1, 2, 4 or 8 bytes, loaded little-endian
  uint64_t cmp_const = 0;  // pre-swizzled key (constant-folded into the code)
  uint64_t cmp_mask = 0;   // pre-swizzled mask
};

struct LoweredEntry {
  uint32_t proto_required = 0;  // all bits must be present in pi.proto_mask
  std::vector<FieldTest> tests;
  uint64_t result = 0;  // pack_result(action_set, next_table)
};

/// Result packing: 0 is the table-miss sentinel.  Bit 63 marks a valid hit
/// (so a hit with neither actions nor goto — a legal OpenFlow entry meaning
/// "drop via empty action set" — stays distinguishable from a miss); both
/// halves are stored off-by-one so that "-1 = none" is representable.
inline constexpr uint64_t kMissResult = 0;
inline constexpr uint64_t kHitBit = uint64_t{1} << 63;

inline uint64_t pack_result(int32_t action_set, int32_t next_table) {
  return kHitBit |
         (static_cast<uint64_t>(static_cast<uint32_t>(action_set + 1)) << 32) |
         static_cast<uint32_t>(next_table + 1);
}

inline void unpack_result(uint64_t packed, int32_t& action_set, int32_t& next_table) {
  action_set = static_cast<int32_t>((packed >> 32) & 0x7FFFFFFF) - 1;
  next_table = static_cast<int32_t>(packed & 0xFFFFFFFF) - 1;
}

/// Portable executor over the lowered IR; bit-identical to the JIT output.
uint64_t interpret(const LoweredEntry* entries, size_t count, const uint8_t* pkt,
                   const proto::ParseInfo& pi);

}  // namespace esw::jit
