#include "usecases/of_agent.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "common/failpoint.hpp"

namespace esw::uc {

namespace {

/// Blocking full write for the controller helper: loops across partial
/// writes and EINTR (signals land mid-send in real deployments; a one-shot
/// send() that asserts on n <= 0 tears the whole session down for a retryable
/// condition).  MSG_NOSIGNAL: the agent end may be closed mid-reconnect.
void ctrl_send_all(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    ESW_CHECK_MSG(n > 0, "OpenFlow channel write failed");
    off += static_cast<size_t>(n);
  }
}

/// Appends whatever is queued on the fd to `buf` without blocking, retrying
/// through EINTR.  Returns bytes read.
size_t drain_fd(int fd, std::vector<uint8_t>& buf) {
  size_t total = 0;
  uint8_t tmp[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, tmp, sizeof tmp, MSG_DONTWAIT);
    if (n > 0) {
      buf.insert(buf.end(), tmp, tmp + n);
      total += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    ESW_CHECK_MSG(n >= 0, "OpenFlow channel read failed");
    break;  // n == 0: peer closed; stop reading
  }
  return total;
}

/// Splits complete frames off the front of `buf`; invokes fn(frame, len).
/// A frame is consumed *before* fn runs, so a throwing handler never causes
/// already-dispatched frames (or the offending one) to be replayed on the
/// next poll.  A header length below 8 is unrecoverable (no way to resync the
/// stream): the buffer is dropped and the error propagates.
template <typename Fn>
uint32_t for_each_frame(std::vector<uint8_t>& buf, Fn&& fn) {
  uint32_t count = 0;
  size_t off = 0;
  while (buf.size() - off >= 8) {
    const size_t frame_len = flow::openflow_frame_len(buf.data() + off, buf.size() - off);
    if (frame_len < 8) {
      buf.clear();
      ESW_CHECK_MSG(false, "bad OpenFlow frame length");
    }
    if (buf.size() - off < frame_len) break;  // wait for the rest
    const size_t frame_off = off;
    off += frame_len;  // committed regardless of what fn does
    ++count;
    try {
      fn(buf.data() + frame_off, frame_len);
    } catch (...) {
      buf.erase(buf.begin(), buf.begin() + static_cast<ptrdiff_t>(off));
      throw;
    }
  }
  buf.erase(buf.begin(), buf.begin() + static_cast<ptrdiff_t>(off));
  return count;
}

}  // namespace

// ---------------------------------------------------------------------------
// OfAgent
// ---------------------------------------------------------------------------

OfAgent::OfAgent(Callbacks cbs, uint64_t datapath_id)
    : cbs_(std::move(cbs)), datapath_id_(datapath_id) {
  ESW_CHECK_MSG(cbs_.on_flow_mod != nullptr, "OfAgent needs an on_flow_mod callback");
  open_channel();
}

OfAgent::~OfAgent() {
  if (switch_fd_ >= 0) ::close(switch_fd_);
  if (ctrl_fd_ >= 0) ::close(ctrl_fd_);
}

void OfAgent::open_channel() {
  int fds[2];
  ESW_CHECK_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0, "socketpair failed");
  switch_fd_ = fds[0];
  ctrl_fd_ = fds[1];
  send(flow::encode_hello({next_xid()}));  // both sides HELLO at connect
}

void OfAgent::mark_channel_down() {
  if (channel_down_) return;
  channel_down_ = true;
  reconnect_wait_ = reconnect_backoff_;
  // Next loss waits longer before re-opening — don't hammer a flapping peer.
  reconnect_backoff_ = std::min<uint32_t>(reconnect_backoff_ * 2, 64);
}

void OfAgent::reconnect() {
  if (switch_fd_ >= 0) ::close(switch_fd_);
  if (ctrl_fd_ >= 0) ::close(ctrl_fd_);
  switch_fd_ = ctrl_fd_ = -1;
  rxbuf_.clear();           // a torn partial frame must not desync the stream
  peer_hello_seen_ = false; // the new session gates on a fresh controller HELLO
  channel_down_ = false;
  ++stats_.reconnects;
  open_channel();
}

/// Full blocking write on the switch fd, looping across partial writes and
/// EINTR.  Returns false on a hard error (peer gone) — the caller marks the
/// channel down; nothing here asserts, because losing the controller must
/// never take the dataplane with it.  The `ofagent.write` failpoint injects
/// EINTR-equivalent retries and `ofagent.write_short` forces 1-byte writes
/// (both bounded so an `always` arming cannot spin forever).
bool OfAgent::send_all(const uint8_t* data, size_t len) {
  size_t off = 0;
  uint32_t injected = 0;
  while (off < len) {
    if (injected < 64 && ESW_FAILPOINT("ofagent.write")) {
      ++injected;
      ++stats_.io_retries;
      continue;  // as if send() had returned -1/EINTR
    }
    const size_t chunk =
        ESW_FAILPOINT("ofagent.write_short") ? 1 : len - off;
    const ssize_t n = ::send(switch_fd_, data + off, chunk, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      ++stats_.io_retries;
      continue;
    }
    if (n <= 0) return false;  // EPIPE/ECONNRESET: controller is gone
    if (static_cast<size_t>(n) < len - off) ++stats_.io_retries;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Drains the switch fd into rxbuf_ without blocking, retrying through EINTR
/// (real or injected via `ofagent.read`).  Peer close / hard errors mark the
/// channel down instead of throwing.
size_t OfAgent::drain_rx() {
  size_t total = 0;
  uint8_t tmp[4096];
  uint32_t injected = 0;
  for (;;) {
    if (injected < 64 && ESW_FAILPOINT("ofagent.read")) {
      ++injected;
      ++stats_.io_retries;
      continue;
    }
    const ssize_t n = ::recv(switch_fd_, tmp, sizeof tmp, MSG_DONTWAIT);
    if (n > 0) {
      rxbuf_.insert(rxbuf_.end(), tmp, tmp + n);
      total += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      ++stats_.io_retries;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    mark_channel_down();  // n == 0 (peer closed) or a hard error
    break;
  }
  return total;
}

void OfAgent::send(const std::vector<uint8_t>& bytes) {
  if (channel_down_) {
    ++stats_.tx_dropped;
    return;
  }
  if (!send_all(bytes.data(), bytes.size())) {
    mark_channel_down();
    ++stats_.tx_dropped;
    return;
  }
  ++stats_.messages_tx;
  stats_.bytes_tx += bytes.size();
}

bool OfAgent::try_send(const std::vector<uint8_t>& bytes) {
  // Async events (PACKET_IN, FLOW_REMOVED) must never block the datapath
  // loop: when the channel is full they are dropped and counted — lossy by
  // design, like a real switch's punt path.  A *partially* accepted frame is
  // completed blocking (bounded by one frame) so the stream never desyncs.
  if (channel_down_) {
    ++stats_.tx_dropped;
    return false;
  }
  const ssize_t n =
      ::send(switch_fd_, bytes.data(), bytes.size(), MSG_DONTWAIT | MSG_NOSIGNAL);
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
    ++stats_.tx_dropped;
    return false;
  }
  if (n < 0 && errno != EINTR) {
    mark_channel_down();
    ++stats_.tx_dropped;
    return false;
  }
  const size_t accepted = n > 0 ? static_cast<size_t>(n) : 0;
  if (accepted < bytes.size() &&
      !send_all(bytes.data() + accepted, bytes.size() - accepted)) {
    mark_channel_down();
    ++stats_.tx_dropped;
    return false;
  }
  ++stats_.messages_tx;
  stats_.bytes_tx += bytes.size();
  return true;
}

void OfAgent::send_error(uint32_t xid, uint16_t type, uint16_t code,
                         const uint8_t* frame, size_t len) {
  flow::Error err;
  err.xid = xid;
  err.type = type;
  err.code = code;
  err.data.assign(frame, frame + std::min<size_t>(len, 64));  // per spec: ≥64 bytes
  send(flow::encode_error(err));
  ++stats_.errors_sent;
}

uint32_t OfAgent::poll() {
  if (channel_down_) {
    // Capped exponential backoff, paced in poll() calls: sit out the window,
    // then re-open (fresh socketpair + HELLO) and let the controller redo the
    // handshake on the new controller_fd().
    if (reconnect_wait_ > 0) {
      --reconnect_wait_;
      return 0;
    }
    reconnect();
    return 0;
  }
  stats_.bytes_rx += drain_rx();
  const uint32_t n = for_each_frame(
      rxbuf_, [this](const uint8_t* frame, size_t len) { dispatch(frame, len); });
  stats_.messages_rx += n;
  // A run of FLOW_MODs ending the drain lands now — batches never straddle
  // polls, so between polls the datapath always reflects every received mod.
  flush_flow_mods();
  return n;
}

void OfAgent::dispatch(const uint8_t* frame, size_t len) {
  flow::OfMsg msg;
  try {
    msg = flow::decode_message(frame, len);
  } catch (const CheckError&) {
    // Frame-level garbage: answer BAD_REQUEST; the header length already
    // advanced the stream past it, so the session survives.  Pending mods
    // flush first so the error keeps its wire position after the run.
    flush_flow_mods();
    const flow::OfHeader h = flow::peek_header(frame, len);
    send_error(h.xid, flow::kErrTypeBadRequest, flow::kErrCodeBadType, frame, len);
    return;
  }
  handle(msg, frame, len);
}

void OfAgent::handle(const flow::OfMsg& msg, const uint8_t* frame, size_t len) {
  // Batched ingestion keeps barrier semantics: any non-FLOW_MOD message ends
  // the current run — the whole batch (and its per-mod errors/FLOW_REMOVEDs)
  // lands before this message is acted on or answered, so a BARRIER_REPLY
  // still certifies every earlier mod took effect.
  if (!pending_mods_.empty() && !std::holds_alternative<flow::FlowMod>(msg))
    flush_flow_mods();

  // Session gate: before the controller's HELLO only HELLO and ECHO pass.
  if (!peer_hello_seen_ && !std::holds_alternative<flow::Hello>(msg) &&
      !std::holds_alternative<flow::EchoRequest>(msg)) {
    send_error(flow::peek_header(frame, len).xid, flow::kErrTypeBadRequest,
               flow::kErrCodeBadType, frame, len);
    return;
  }

  if (std::holds_alternative<flow::Hello>(msg)) {
    peer_hello_seen_ = true;
    reconnect_backoff_ = 1;  // a completed (re)handshake resets the backoff
  } else if (const auto* m = std::get_if<flow::EchoRequest>(&msg)) {
    ++stats_.echoes;
    send(flow::encode_echo_reply({m->xid, m->payload}));
  } else if (const auto* m = std::get_if<flow::FeaturesRequest>(&msg)) {
    flow::FeaturesReply fr;
    fr.xid = m->xid;  // replies echo the request xid
    fr.datapath_id = datapath_id_;
    fr.n_tables = 255;
    fr.capabilities = 0x1 | 0x2;  // OFPC_FLOW_STATS | OFPC_TABLE_STATS
    send(flow::encode_features_reply(fr));
  } else if (const auto* m = std::get_if<flow::BarrierRequest>(&msg)) {
    // All earlier messages were dispatched synchronously in order, so the
    // barrier guarantee already holds; acknowledge with the same xid.
    ++stats_.barriers;
    send(flow::encode_barrier_reply({m->xid}));
  } else if (const auto* m = std::get_if<flow::FlowMod>(&msg)) {
    ++stats_.flow_mods;
    std::vector<flow::FlowRemoved> removed;
    try {
      if (m->command == flow::FlowMod::Cmd::kDelete &&
          (m->flags & flow::FlowMod::kFlagSendFlowRem) != 0 && cbs_.on_collect_removed)
        removed = cbs_.on_collect_removed(*m);
      if (cbs_.on_flow_mod_batch) {
        // Batch mode: park the mod for the run's single flush.  The error
        // frame prefix and FLOW_REMOVED set are captured now; whether they go
        // out is decided by the mod's status at flush time.
        PendingMod p;
        p.fm = *m;
        p.frame_head.assign(frame, frame + std::min<size_t>(len, 64));
        p.removed = std::move(removed);
        pending_mods_.push_back(std::move(p));
        return;
      }
      cbs_.on_flow_mod(*m);
    } catch (const TableFullError&) {
      // The table is at its configured capacity: refuse with the specific
      // OFPFMFC_TABLE_FULL code so the controller can tell "out of room"
      // from "malformed" — session stays up, dataplane keeps forwarding.
      send_error(m->xid, flow::kErrTypeFlowModFailed, flow::kErrCodeTableFull, frame,
                 len);
      return;
    } catch (const CheckError&) {
      // Wire-valid but semantically invalid (backwards goto, bad target…):
      // the mod is refused with an Error, the session stays up.
      send_error(m->xid, flow::kErrTypeFlowModFailed, flow::kErrCodeFlowModUnknown,
                 frame, len);
      return;
    }
    for (flow::FlowRemoved& r : removed) {
      r.xid = next_xid();
      if (try_send(flow::encode_flow_removed(r))) ++stats_.flow_removed_sent;
    }
  } else if (const auto* m = std::get_if<flow::PacketOut>(&msg)) {
    ++stats_.packet_outs;
    try {
      if (cbs_.on_packet_out) cbs_.on_packet_out(*m);
    } catch (const CheckError&) {
      send_error(m->xid, flow::kErrTypeBadRequest, flow::kErrCodeBadType, frame, len);
    }
  } else if (const auto* m = std::get_if<flow::FlowStatsRequest>(&msg)) {
    flow::FlowStatsReply reply;
    reply.xid = m->xid;
    if (cbs_.on_flow_stats) reply.entries = cbs_.on_flow_stats(*m);
    send(flow::encode_flow_stats_reply(reply));
  } else if (const auto* m = std::get_if<flow::TableStatsRequest>(&msg)) {
    flow::TableStatsReply reply;
    reply.xid = m->xid;
    if (cbs_.on_table_stats) reply.entries = cbs_.on_table_stats();
    send(flow::encode_table_stats_reply(reply));
  } else if (std::holds_alternative<flow::EchoReply>(msg) ||
             std::holds_alternative<flow::Error>(msg)) {
    // Tolerated quietly: our own echoes' replies and controller error notes.
  } else {
    // Controller-bound message types arriving at the switch (PACKET_IN,
    // FLOW_REMOVED, replies): protocol misuse.
    send_error(flow::peek_header(frame, len).xid, flow::kErrTypeBadRequest,
               flow::kErrCodeBadType, frame, len);
  }
}

/// Hands the accumulated FLOW_MOD run to the batch callback and settles each
/// mod's wire effects in order: an applied delete emits its buffered
/// FLOW_REMOVEDs, a refused mod gets exactly one ERROR (TABLE_FULL for a
/// capacity refusal, FLOW_MOD_FAILED/unknown otherwise) while the rest of the
/// run stands.
void OfAgent::flush_flow_mods() {
  if (pending_mods_.empty()) return;
  std::vector<PendingMod> pending = std::exchange(pending_mods_, {});
  std::vector<flow::FlowMod> fms;
  fms.reserve(pending.size());
  for (const PendingMod& p : pending) fms.push_back(p.fm);
  const std::vector<core::ModStatus> statuses = cbs_.on_flow_mod_batch(fms);
  ESW_CHECK_MSG(statuses.size() == pending.size(),
                "batch callback must report one status per mod");
  for (size_t i = 0; i < pending.size(); ++i) {
    PendingMod& p = pending[i];
    switch (statuses[i]) {
      case core::ModStatus::kApplied:
        for (flow::FlowRemoved& r : p.removed) {
          r.xid = next_xid();
          if (try_send(flow::encode_flow_removed(r))) ++stats_.flow_removed_sent;
        }
        break;
      case core::ModStatus::kRefusedTableFull:
        send_error(p.fm.xid, flow::kErrTypeFlowModFailed, flow::kErrCodeTableFull,
                   p.frame_head.data(), p.frame_head.size());
        break;
      case core::ModStatus::kRefusedInvalid:
        send_error(p.fm.xid, flow::kErrTypeFlowModFailed, flow::kErrCodeFlowModUnknown,
                   p.frame_head.data(), p.frame_head.size());
        break;
    }
  }
}

void OfAgent::send_packet_in(const uint8_t* frame, size_t len, uint32_t in_port,
                             uint8_t table_id, flow::PacketIn::Reason reason) {
  flow::PacketIn pin;
  pin.xid = next_xid();
  pin.reason = reason;
  pin.table_id = table_id;
  pin.in_port = in_port;
  pin.frame.assign(frame, frame + len);
  if (try_send(flow::encode_packet_in(pin))) ++stats_.packet_ins_sent;
}

// ---------------------------------------------------------------------------
// OfController
// ---------------------------------------------------------------------------

uint32_t OfController::send_tracked(std::vector<uint8_t> bytes, uint32_t xid,
                                    bool expect_reply) {
  ctrl_send_all(fd_, bytes.data(), bytes.size());
  ++messages_;
  bytes_ += bytes.size();
  if (expect_reply) outstanding_.push_back(xid);
  return xid;
}

void OfController::settle(uint32_t xid) {
  for (size_t i = 0; i < outstanding_.size(); ++i) {
    if (outstanding_[i] == xid) {
      outstanding_[i] = outstanding_.back();
      outstanding_.pop_back();
      return;
    }
  }
  ESW_CHECK_MSG(false, "reply with unknown xid");
}

uint32_t OfController::send_hello() {
  const uint32_t xid = next_xid_++;
  return send_tracked(flow::encode_hello({xid}), xid, false);
}

uint32_t OfController::send_echo(std::vector<uint8_t> payload) {
  const uint32_t xid = next_xid_++;
  return send_tracked(flow::encode_echo_request({xid, std::move(payload)}), xid, true);
}

uint32_t OfController::send_features_request() {
  const uint32_t xid = next_xid_++;
  return send_tracked(flow::encode_features_request({xid}), xid, true);
}

uint32_t OfController::send_barrier() {
  const uint32_t xid = next_xid_++;
  return send_tracked(flow::encode_barrier_request({xid}), xid, true);
}

uint32_t OfController::send_flow_mod(flow::FlowMod fm) {
  fm.xid = next_xid_++;
  return send_tracked(flow::encode_flow_mod(fm), fm.xid, false);
}

uint32_t OfController::send_packet_out(flow::PacketOut po) {
  po.xid = next_xid_++;
  return send_tracked(flow::encode_packet_out(po), po.xid, false);
}

uint32_t OfController::send_flow_stats_request(flow::FlowStatsRequest req) {
  req.xid = next_xid_++;
  return send_tracked(flow::encode_flow_stats_request(req), req.xid, true);
}

uint32_t OfController::send_table_stats_request() {
  const uint32_t xid = next_xid_++;
  return send_tracked(flow::encode_table_stats_request({xid}), xid, true);
}

uint32_t OfController::poll() {
  drain_fd(fd_, rxbuf_);
  return for_each_frame(rxbuf_, [this](const uint8_t* frame, size_t len) {
    const flow::OfMsg msg = flow::decode_message(frame, len);
    if (std::holds_alternative<flow::Hello>(msg)) {
      hello_seen_ = true;
    } else if (const auto* m = std::get_if<flow::EchoReply>(&msg)) {
      settle(m->xid);
    } else if (const auto* m = std::get_if<flow::FeaturesReply>(&msg)) {
      settle(m->xid);
      features_ = *m;
    } else if (const auto* m = std::get_if<flow::BarrierReply>(&msg)) {
      settle(m->xid);
      barrier_replies_.push_back(m->xid);
    } else if (const auto* m = std::get_if<flow::FlowStatsReply>(&msg)) {
      settle(m->xid);
      flow_stats_.push_back(*m);
    } else if (const auto* m = std::get_if<flow::TableStatsReply>(&msg)) {
      settle(m->xid);
      table_stats_.push_back(*m);
    } else if (const auto* m = std::get_if<flow::PacketIn>(&msg)) {
      packet_ins_.push_back(*m);
    } else if (const auto* m = std::get_if<flow::FlowRemoved>(&msg)) {
      flow_removed_.push_back(*m);
    } else if (const auto* m = std::get_if<flow::Error>(&msg)) {
      errors_.push_back(*m);
    } else if (const auto* m = std::get_if<flow::EchoRequest>(&msg)) {
      // Keepalive from the agent: answer it.
      send_tracked(flow::encode_echo_reply({m->xid, m->payload}), m->xid, false);
    }
  });
}

std::vector<flow::PacketIn> OfController::take_packet_ins() {
  return std::exchange(packet_ins_, {});
}
std::vector<flow::FlowRemoved> OfController::take_flow_removed() {
  return std::exchange(flow_removed_, {});
}
std::vector<flow::FlowStatsReply> OfController::take_flow_stats() {
  return std::exchange(flow_stats_, {});
}
std::vector<flow::TableStatsReply> OfController::take_table_stats() {
  return std::exchange(table_stats_, {});
}
std::vector<flow::Error> OfController::take_errors() {
  return std::exchange(errors_, {});
}
std::vector<uint32_t> OfController::take_barrier_replies() {
  return std::exchange(barrier_replies_, {});
}

void run_handshake(OfAgent& agent, OfController& ctrl) {
  ctrl.send_hello();
  agent.poll();   // agent sees the controller HELLO; its own is already queued
  ctrl.poll();    // controller sees the agent HELLO
  ctrl.send_features_request();
  agent.poll();
  ctrl.poll();
  ESW_CHECK_MSG(agent.session_open() && ctrl.features().has_value(),
                "OpenFlow handshake failed");
}

}  // namespace esw::uc
