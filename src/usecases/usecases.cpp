#include "usecases/usecases.hpp"

#include <set>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "flow/dsl.hpp"
#include "proto/headers.hpp"
#include "state/conntrack.hpp"

namespace esw::uc {

using flow::Action;
using flow::FieldId;
using flow::FlowEntry;
using flow::FlowTable;
using flow::Match;
using flow::Pipeline;
using net::FlowSpec;

namespace {
uint64_t nth_mac(uint64_t i) { return 0x02'00'00'00'00'00ULL | (i & 0xFFFFFF); }
}  // namespace

UseCase make_l2(size_t table_size, uint64_t seed) {
  UseCase uc;
  std::vector<FlowEntry> entries;
  entries.reserve(table_size);
  for (size_t i = 0; i < table_size; ++i) {
    FlowEntry e;
    e.match.set(FieldId::kEthDst, nth_mac(i));
    e.priority = 10;
    e.actions = {Action::output(static_cast<uint32_t>(1 + i % 4))};
    entries.push_back(std::move(e));
  }
  uc.pipeline.table(0).replace_all(std::move(entries));

  uc.traffic = [table_size, seed](size_t n_flows, uint64_t run_seed) {
    Rng rng(seed ^ run_seed);
    std::vector<FlowSpec> flows;
    flows.reserve(n_flows);
    for (size_t i = 0; i < n_flows; ++i) {
      FlowSpec fs;
      fs.pkt = proto::PacketSpec{};
      fs.pkt.kind = proto::PacketKind::kUdp;
      fs.pkt.eth_dst = nth_mac(i % table_size);  // aligned: no table misses
      fs.pkt.eth_src = nth_mac(0x800000 | rng.below(1 << 22));
      fs.pkt.ip_src = static_cast<uint32_t>(rng.next());
      fs.pkt.sport = static_cast<uint16_t>(rng.below(0xFFFF));
      fs.pkt.dport = static_cast<uint16_t>(rng.below(0xFFFF));
      fs.in_port = static_cast<uint32_t>(rng.below(4));
      flows.push_back(std::move(fs));
    }
    return flows;
  };
  return uc;
}

UseCase make_l3(size_t n_prefixes, uint64_t seed) {
  // Realistic-ish RIB length histogram, dominated by /24s.
  static const uint8_t kLens[] = {8,  12, 16, 16, 18, 19, 20, 21, 22, 22,
                                  23, 23, 24, 24, 24, 24, 24, 24, 24, 24};
  Rng rng(seed);
  std::vector<std::pair<uint32_t, uint8_t>> prefixes;
  prefixes.reserve(n_prefixes);
  std::set<std::pair<uint32_t, uint8_t>> seen;
  std::vector<FlowEntry> entries;
  entries.reserve(n_prefixes + 1);
  while (prefixes.size() < n_prefixes) {
    const uint8_t len = kLens[rng.below(std::size(kLens))];
    const uint32_t mask = static_cast<uint32_t>(low_bits(len) << (32 - len));
    // Stay within 1.0.0.0–223.255.255.255 for plausibility.
    const uint32_t p = (static_cast<uint32_t>(1 + rng.below(222)) << 24 |
                        static_cast<uint32_t>(rng.next() & 0xFFFFFF)) &
                       mask;
    if (!seen.insert({p, len}).second) continue;  // unique rules only
    FlowEntry e;
    e.match.set(FieldId::kIpDst, p, mask);
    e.priority = len;  // priority == specificity: LPM-compliant
    e.actions = {Action::output(static_cast<uint32_t>(1 + rng.below(8)))};
    entries.push_back(std::move(e));
    prefixes.emplace_back(p, len);
  }
  {
    FlowEntry def;  // default route (the paper's traces avoid misses)
    def.priority = 0;
    def.actions = {Action::output(1)};
    entries.push_back(std::move(def));
  }
  UseCase uc;
  uc.pipeline.table(0).replace_all(std::move(entries));

  uc.traffic = [prefixes = std::move(prefixes), seed](size_t n_flows,
                                                      uint64_t run_seed) {
    Rng rng(seed ^ (run_seed * 0x9E37));
    std::vector<FlowSpec> flows;
    flows.reserve(n_flows);
    for (size_t i = 0; i < n_flows; ++i) {
      const auto& [p, len] = prefixes[rng.below(prefixes.size())];
      FlowSpec fs;
      fs.pkt.kind = proto::PacketKind::kUdp;
      fs.pkt.ip_dst = p | static_cast<uint32_t>(rng.next() & low_bits(32 - len));
      fs.pkt.ip_src = static_cast<uint32_t>(rng.next());
      fs.pkt.sport = static_cast<uint16_t>(rng.below(0xFFFF));
      fs.pkt.dport = static_cast<uint16_t>(rng.below(0xFFFF));
      fs.in_port = 1;
      flows.push_back(std::move(fs));
    }
    return flows;
  };
  return uc;
}

UseCase make_load_balancer(size_t n_services, uint64_t seed) {
  // Fig. 7a: port 1 faces the Internet; per-service backends A_i / B_i sit on
  // ports 10+2i / 11+2i; internal ports forward out unconditionally.
  std::vector<FlowEntry> entries;
  for (size_t i = 0; i < n_services; ++i) {
    const uint32_t vip = 0x0A010000u | static_cast<uint32_t>(i);  // 10.1.x.x
    FlowEntry a;
    a.match.set(FieldId::kInPort, 1);
    a.match.set(FieldId::kIpDst, vip);
    a.match.set(FieldId::kTcpDst, 80);
    a.match.set(FieldId::kIpSrc, 0, 0x80000000);  // first src bit = 0
    a.priority = 20;
    a.actions = {Action::output(static_cast<uint32_t>(10 + 2 * i))};
    entries.push_back(a);
    FlowEntry b = a;
    b.match.set(FieldId::kIpSrc, 0x80000000, 0x80000000);  // first bit = 1
    b.actions = {Action::output(static_cast<uint32_t>(11 + 2 * i))};
    entries.push_back(b);
  }
  for (size_t i = 0; i < n_services; ++i) {
    // Reverse direction: backend ports forward to the Internet port.
    for (uint32_t off : {0u, 1u}) {
      FlowEntry r;
      r.match.set(FieldId::kInPort, 10 + 2 * i + off);
      r.priority = 10;
      r.actions = {Action::output(1)};
      entries.push_back(std::move(r));
    }
  }
  {
    FlowEntry drop;
    drop.priority = 1;
    drop.actions = {Action::drop()};
    entries.push_back(std::move(drop));
  }
  UseCase uc;
  uc.pipeline.table(0).replace_all(std::move(entries));

  uc.traffic = [n_services, seed](size_t n_flows, uint64_t run_seed) {
    Rng rng(seed ^ (run_seed * 77));
    std::vector<FlowSpec> flows;
    flows.reserve(n_flows);
    for (size_t i = 0; i < n_flows; ++i) {
      FlowSpec fs;
      fs.pkt.kind = proto::PacketKind::kTcp;
      fs.in_port = 1;
      fs.pkt.ip_src = static_cast<uint32_t>(rng.next());
      fs.pkt.sport = static_cast<uint16_t>(1024 + rng.below(60000));
      if (rng.chance(1, 2)) {
        // Half the packets go to a random web service…
        fs.pkt.ip_dst = 0x0A010000u | static_cast<uint32_t>(rng.below(n_services));
        fs.pkt.dport = 80;
      } else {
        // …and the rest of the traffic is dropped.
        fs.pkt.ip_dst = static_cast<uint32_t>(rng.next()) | 0x20000000;
        fs.pkt.dport = static_cast<uint16_t>(81 + rng.below(1000));
      }
      flows.push_back(std::move(fs));
    }
    return flows;
  };
  return uc;
}

UseCase make_gateway(size_t n_ce, size_t users_per_ce, size_t n_prefixes,
                     uint64_t seed) {
  UseCase uc;
  Pipeline& pl = uc.pipeline;

  // Table 0: separate user→network traffic per CE (VLAN tag) from
  // network→user traffic (untagged, from the net-facing port) — the latter
  // via the table default so the stage keeps a single global mask and
  // compiles into the hash template.
  {
    std::vector<FlowEntry> t0;
    for (size_t c = 0; c < n_ce; ++c) {
      FlowEntry e;
      e.match.set(FieldId::kVlanVid, 100 + c);
      e.priority = 10;
      e.goto_table = static_cast<int16_t>(1 + c);
      t0.push_back(std::move(e));
    }
    FlowEntry down;  // catch-all: untagged network→user traffic
    down.priority = 5;
    down.goto_table = kGatewayDownstreamTable;
    t0.push_back(std::move(down));
    pl.table(0).replace_all(std::move(t0));
  }

  // Per-CE tables: identify users by private source IP, NAT to the public
  // address, strip the tag and route.  Misses go to the controller, which
  // does admission control (§4.1).
  for (size_t c = 0; c < n_ce; ++c) {
    std::vector<FlowEntry> tc;
    for (size_t u = 0; u < users_per_ce; ++u) {
      FlowEntry e;
      e.match.set(FieldId::kIpSrc, 0x0A000002u + static_cast<uint32_t>(u));
      e.priority = 10;
      e.actions = {Action::pop_vlan(),
                   Action::set_field(FieldId::kIpSrc,
                                     0x64400000u | static_cast<uint32_t>(c << 8) |
                                         static_cast<uint32_t>(u))};
      e.goto_table = kGatewayRoutingTable;
      tc.push_back(std::move(e));
    }
    auto& table = pl.table(static_cast<uint8_t>(1 + c));
    table.replace_all(std::move(tc));
    table.set_miss_policy(FlowTable::MissPolicy::kController);
  }

  // Routing table (LPM over the RIB) — reuse the L3 generator's table.
  UseCase l3 = make_l3(n_prefixes, seed * 31);
  pl.table(kGatewayRoutingTable)
      .replace_all(std::vector<FlowEntry>(l3.pipeline.table(0).entries()));

  // Downstream: public IP → restore private address + CE tag, out the CE port.
  {
    std::vector<FlowEntry> td;
    for (size_t c = 0; c < n_ce; ++c) {
      for (size_t u = 0; u < users_per_ce; ++u) {
        FlowEntry e;
        e.match.set(FieldId::kIpDst, 0x64400000u | static_cast<uint32_t>(c << 8) |
                                         static_cast<uint32_t>(u));
        e.priority = 10;
        e.actions = {Action::set_field(FieldId::kIpDst,
                                       0x0A000002u + static_cast<uint32_t>(u)),
                     Action::push_vlan(static_cast<uint16_t>(100 + c)),
                     Action::output(static_cast<uint32_t>(1 + c))};
        td.push_back(std::move(e));
      }
    }
    pl.table(kGatewayDownstreamTable).replace_all(std::move(td));
  }

  uc.traffic = [n_ce, users_per_ce, seed](size_t n_flows, uint64_t run_seed) {
    Rng rng(seed ^ (run_seed * 131));
    std::vector<FlowSpec> flows;
    flows.reserve(n_flows);
    for (size_t i = 0; i < n_flows; ++i) {
      // User→network: flows spread across users by varying L4 ports.
      const uint32_t ce = static_cast<uint32_t>(i % n_ce);
      const uint32_t user = static_cast<uint32_t>((i / n_ce) % users_per_ce);
      FlowSpec fs;
      fs.pkt.kind = proto::PacketKind::kUdp;
      fs.pkt.vlan_vid = static_cast<uint16_t>(100 + ce);
      fs.pkt.ip_src = 0x0A000002u + user;
      fs.pkt.ip_dst = static_cast<uint32_t>((1 + rng.below(222)) << 24 |
                                            (rng.next() & 0xFFFFFF));
      fs.pkt.sport = static_cast<uint16_t>(1024 + rng.below(60000));
      fs.pkt.dport = static_cast<uint16_t>(rng.below(0xFFFF));
      fs.in_port = 1 + ce;
      flows.push_back(std::move(fs));
    }
    return flows;
  };
  return uc;
}

Pipeline make_firewall_fig1a() {
  Pipeline pl;
  auto& t = pl.table(0);
  t.add(flow::parse_rule("priority=30,in_port=1,actions=output:2"));
  t.add(flow::parse_rule(
      "priority=20,in_port=2,ip_dst=192.0.2.1,tcp_dst=80,actions=output:1"));
  t.add(flow::parse_rule("priority=10,actions=drop"));
  return pl;
}

Pipeline make_firewall_fig1b() {
  Pipeline pl;
  auto& t0 = pl.table(0);
  t0.add(flow::parse_rule("priority=30,in_port=1,actions=output:2"));
  t0.add(flow::parse_rule("priority=20,in_port=2,actions=,goto:1"));
  auto& t1 = pl.table(1);
  t1.add(flow::parse_rule("priority=20,ip_dst=192.0.2.1,tcp_dst=80,actions=output:1"));
  t1.add(flow::parse_rule("priority=10,actions=drop"));
  return pl;
}

namespace {
// Fig. 3's port set: 191 = 10111111, and 191 with one extra zero bit at
// positions 3..8 (MSB numbering).
constexpr uint16_t kFig3Ports[] = {190, 189, 187, 183, 175, 159, 191};

FlowSpec fig3_flow(uint16_t port) {
  FlowSpec fs;
  fs.pkt.kind = proto::PacketKind::kUdp;
  fs.pkt.dport = port;
  fs.in_port = 1;
  return fs;
}
}  // namespace

Pipeline make_fig3_pipeline() {
  // Priority-ordered rules, each keyed by one zero bit of the 8-bit port
  // value: rule k matches "bit (9-k) from MSB is zero" (suffix-style single
  // bit masks), all with the same action.
  Pipeline pl;
  std::vector<FlowEntry> entries;
  for (unsigned k = 0; k < 7; ++k) {
    const uint16_t bit = static_cast<uint16_t>(1u << k);  // LSB upward
    FlowEntry e;
    e.match.set(FieldId::kUdpDst, 0, bit);  // that bit must be 0
    e.priority = static_cast<uint16_t>(100 - k);
    e.actions = {Action::output(1)};
    entries.push_back(std::move(e));
  }
  pl.table(0).replace_all(std::move(entries));
  return pl;
}

std::vector<FlowSpec> fig3_sequence_1() {
  std::vector<FlowSpec> fs;
  for (const uint16_t p : kFig3Ports) fs.push_back(fig3_flow(p));
  return fs;
}

std::vector<FlowSpec> fig3_sequence_2() {
  std::vector<FlowSpec> fs;
  fs.push_back(fig3_flow(191));
  for (const uint16_t p : kFig3Ports)
    if (p != 191) fs.push_back(fig3_flow(p));
  return fs;
}

FlowTable make_snort_like_acls(size_t n_rules, uint64_t seed) {
  // Snort community structure: overwhelmingly TCP toward a small HOME_NET,
  // classified by a modest set of service ports, with occasional source
  // qualifiers and a few obsolete/duplicate-ish variants.
  static const uint16_t kPorts[] = {80,  21,   25,   53,   110, 143,
                                    443, 445,  1433, 3306, 139, 8080};
  Rng rng(seed);
  FlowTable t(0);
  std::vector<FlowEntry> entries;
  for (size_t i = 0; i < n_rules; ++i) {
    Match m;
    m.set(FieldId::kIpProto, rng.chance(9, 10) ? 6 : 17);
    m.set(FieldId::kIpDst,
          rng.chance(4, 5) ? 0xC0A80001u : 0xC0A80000u + static_cast<uint32_t>(rng.below(4)));
    if (rng.chance(9, 10)) m.set(FieldId::kTcpDst, kPorts[rng.below(std::size(kPorts))]);
    if (rng.chance(1, 8)) m.set(FieldId::kTcpSrc, 1024 + rng.below(8));
    if (rng.chance(1, 8)) m.set(FieldId::kIpSrc, rng.below(4), 0xFFFFFFFF);
    FlowEntry e;
    e.match = m;
    e.priority = static_cast<uint16_t>(n_rules - i);
    e.actions = {rng.chance(1, 3) ? Action::drop() : Action::output(1)};
    entries.push_back(std::move(e));
  }
  t.replace_all(std::move(entries));
  return t;
}

// --- stateful use cases ------------------------------------------------------

namespace {

/// The shared stateful shape: inside traffic commits (with `profile`) and
/// forwards out; outside traffic needs the established bit to get in.
Pipeline ct_gate_pipeline(uint32_t profile) {
  std::vector<FlowEntry> entries;
  {
    FlowEntry fwd;
    fwd.match.set(FieldId::kInPort, kCtInsidePort);
    fwd.priority = 300;
    fwd.actions = {Action::ct_commit(profile), Action::output(kCtOutsidePort)};
    entries.push_back(std::move(fwd));
  }
  {
    FlowEntry est;
    est.match.set(FieldId::kInPort, kCtOutsidePort);
    est.match.set(FieldId::kCtState, state::kCtEstablished, state::kCtEstablished);
    est.priority = 200;
    est.actions = {Action::output(kCtInsidePort)};
    entries.push_back(std::move(est));
  }
  {
    FlowEntry drop;
    drop.priority = 100;
    drop.actions = {Action::drop()};
    entries.push_back(std::move(drop));
  }
  Pipeline pl;
  pl.table(0).replace_all(std::move(entries));
  return pl;
}

/// A deterministic inside-client TCP connection: (10.0.x.x, sport) toward a
/// 203.0.113.0/24 server on port 443.
FlowSpec ct_inside_flow(Rng& rng) {
  FlowSpec fs;
  fs.pkt.kind = proto::PacketKind::kTcp;
  fs.in_port = kCtInsidePort;
  fs.pkt.ip_src = 0x0A000000u | static_cast<uint32_t>(rng.below(1 << 16));
  fs.pkt.ip_dst = 0xCB007100u | static_cast<uint32_t>(rng.below(250));
  fs.pkt.sport = static_cast<uint16_t>(1024 + rng.below(60000));
  fs.pkt.dport = 443;
  fs.pkt.tcp_flags = proto::kTcpFlagSyn;
  return fs;
}

}  // namespace

CtUseCase make_ct_firewall(uint32_t capacity, uint64_t seed) {
  CtUseCase uc;
  uc.pipeline = ct_gate_pipeline(0);
  uc.ct.enabled = true;
  uc.ct.capacity = capacity;

  uc.traffic = [seed](size_t n_flows, uint64_t run_seed) {
    Rng rng(seed ^ (run_seed * 0x5DEECE66DULL));
    std::vector<FlowSpec> flows;
    flows.reserve(n_flows);
    for (size_t i = 0; i < n_flows; ++i) {
      FlowSpec fwd = ct_inside_flow(rng);
      if (rng.chance(1, 10)) {
        // Unsolicited outside probe: no entry will ever exist, must drop.
        fwd.in_port = kCtOutsidePort;
        fwd.pkt.tcp_flags = proto::kTcpFlagAck;
        flows.push_back(std::move(fwd));
      } else if (rng.chance(1, 4)) {
        // Reply of an inside flow generated in the same batch: round-robin
        // replay commits the forward packet before this one arrives, so the
        // firewall admits it as established.
        FlowSpec rep = fwd;
        rep.in_port = kCtOutsidePort;
        std::swap(rep.pkt.ip_src, rep.pkt.ip_dst);
        std::swap(rep.pkt.sport, rep.pkt.dport);
        rep.pkt.tcp_flags =
            static_cast<uint8_t>(proto::kTcpFlagSyn | proto::kTcpFlagAck);
        flows.push_back(std::move(fwd));
        if (flows.size() < n_flows) flows.push_back(std::move(rep));
        continue;
      } else {
        flows.push_back(std::move(fwd));
      }
    }
    return flows;
  };
  return uc;
}

CtUseCase make_ct_nat(uint32_t snat_ip, uint32_t capacity, uint64_t seed) {
  CtUseCase uc;
  uc.pipeline = ct_gate_pipeline(1);
  uc.ct.enabled = true;
  uc.ct.capacity = capacity;
  uc.ct.profiles.resize(2);
  uc.ct.profiles[1].kind = state::CtProfileConfig::Kind::kSnat;
  uc.ct.profiles[1].snat_ip = snat_ip;

  // Forward direction only: a reply's wire destination is the dynamically
  // allocated (snat_ip, port), which a pregenerated trace cannot know.
  // tests/test_conntrack.cpp covers the reply path via the live table.
  uc.traffic = [seed](size_t n_flows, uint64_t run_seed) {
    Rng rng(seed ^ (run_seed * 0x2545F4914F6CDD1DULL));
    std::vector<FlowSpec> flows;
    flows.reserve(n_flows);
    for (size_t i = 0; i < n_flows; ++i) flows.push_back(ct_inside_flow(rng));
    return flows;
  };
  return uc;
}

CtUseCase make_ct_lb(size_t n_backends, uint32_t capacity, uint64_t seed) {
  CtUseCase uc;
  uc.ct.enabled = true;
  uc.ct.capacity = capacity;
  uc.ct.profiles.resize(2);
  uc.ct.profiles[1].kind = state::CtProfileConfig::Kind::kLb;
  for (size_t i = 0; i < n_backends; ++i)
    uc.ct.profiles[1].backends.emplace_back(
        kCtLbBackendBase + static_cast<uint32_t>(i), kCtLbBackendPort);

  std::vector<FlowEntry> entries;
  {
    FlowEntry vip;  // client SYNs and all later forward packets (wire dst=VIP)
    vip.match.set(FieldId::kInPort, kCtInsidePort);
    vip.match.set(FieldId::kIpDst, kCtLbVip);
    vip.match.set(FieldId::kTcpDst, kCtLbVipPort);
    vip.priority = 300;
    vip.actions = {Action::ct_commit(1), Action::output(kCtOutsidePort)};
    entries.push_back(std::move(vip));
  }
  {
    FlowEntry est;  // backend replies, un-NATed to the VIP by the post-stage
    est.match.set(FieldId::kInPort, kCtOutsidePort);
    est.match.set(FieldId::kCtState, state::kCtEstablished, state::kCtEstablished);
    est.priority = 200;
    est.actions = {Action::output(kCtInsidePort)};
    entries.push_back(std::move(est));
  }
  {
    FlowEntry drop;
    drop.priority = 100;
    drop.actions = {Action::drop()};
    entries.push_back(std::move(drop));
  }
  uc.pipeline.table(0).replace_all(std::move(entries));

  uc.traffic = [seed](size_t n_flows, uint64_t run_seed) {
    Rng rng(seed ^ (run_seed * 0x9E3779B9ULL));
    std::vector<FlowSpec> flows;
    flows.reserve(n_flows);
    for (size_t i = 0; i < n_flows; ++i) {
      FlowSpec fs;
      fs.pkt.kind = proto::PacketKind::kTcp;
      fs.in_port = kCtInsidePort;
      fs.pkt.ip_src = static_cast<uint32_t>(rng.next());
      fs.pkt.ip_dst = kCtLbVip;
      fs.pkt.sport = static_cast<uint16_t>(1024 + rng.below(60000));
      fs.pkt.dport = kCtLbVipPort;
      fs.pkt.tcp_flags = proto::kTcpFlagSyn;
      flows.push_back(std::move(fs));
    }
    return flows;
  };
  return uc;
}

}  // namespace esw::uc
