#include "usecases/controller.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include "common/check.hpp"

namespace esw::uc {

ControllerChannel::ControllerChannel(ApplyFn apply) : apply_(std::move(apply)) {
  int fds[2];
  ESW_CHECK_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0, "socketpair failed");
  ctrl_fd_ = fds[0];
  switch_fd_ = fds[1];
  rxbuf_.resize(1 << 16);
}

ControllerChannel::~ControllerChannel() {
  if (ctrl_fd_ >= 0) ::close(ctrl_fd_);
  if (switch_fd_ >= 0) ::close(switch_fd_);
}

void ControllerChannel::send(const flow::FlowMod& fm) {
  const std::vector<uint8_t> wire = flow::encode_flow_mod(fm);

  // Controller side: write the framed message.
  size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::write(ctrl_fd_, wire.data() + off, wire.size() - off);
    ESW_CHECK_MSG(n > 0, "controller channel write failed");
    off += static_cast<size_t>(n);
  }

  // Switch side: read the full OpenFlow frame, decode, apply.
  size_t got = 0;
  size_t need = 8;
  while (got < need) {
    const ssize_t n = ::read(switch_fd_, rxbuf_.data() + got, rxbuf_.size() - got);
    ESW_CHECK_MSG(n > 0, "controller channel read failed");
    got += static_cast<size_t>(n);
    if (got >= 8) need = flow::openflow_frame_len(rxbuf_.data(), got);
  }
  const flow::FlowMod decoded = flow::decode_flow_mod(rxbuf_.data(), got);
  apply_(decoded);
  ++messages_;
  bytes_ += wire.size();
}

}  // namespace esw::uc
