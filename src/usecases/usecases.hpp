// The paper's evaluation workloads (§4.1): L2 switching, L3 routing, the
// load balancer (Fig. 7) and the vPE access gateway (Fig. 8), plus the Fig. 1
// firewall, the Fig. 3 megaflow example and a snort-like ACL generator for
// the §3.2 decomposition experiment.
//
// Each use case bundles the OpenFlow pipeline with a traffic generator whose
// `n_flows` parameter sweeps the "number of active flows" axis of the
// evaluation; generators are seeded and deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/dataplane.hpp"
#include "flow/pipeline.hpp"
#include "netio/nfpa.hpp"
#include "netio/pktgen.hpp"
#include "state/ct_config.hpp"

namespace esw::uc {

/// Adapts any `core::Dataplane` backend into a net::BurstFn for
/// run_loop_burst, which never passes bursts larger than kBurstSize.  Shared
/// by the figure benches and the examples so the adapter tracks the
/// process_burst contract in one place.
template <core::Dataplane Switch>
net::BurstFn burst_fn(Switch& sw) {
  return [&sw](net::Packet* const* pkts, uint32_t n) {
    flow::Verdict verdicts[net::kBurstSize];
    sw.process_burst(pkts, n, verdicts);
  };
}

struct UseCase {
  flow::Pipeline pipeline;
  /// Generates `n_flows` distinct flows replayed round-robin by the harness.
  std::function<std::vector<net::FlowSpec>(size_t n_flows, uint64_t seed)> traffic;
};

/// L2 switching: one MAC table of `table_size` entries; traffic destinations
/// are aligned to the table ("adequately aligned to avoid frequent table
/// misses"); flow diversity beyond the table size comes from varying source
/// addresses and ports.
UseCase make_l2(size_t table_size, uint64_t seed = 1);

/// L3 routing: `n_prefixes` sampled with a realistic RIB length mix (priority
/// = prefix length, so the table is LPM-compliant); traffic destinations fall
/// under random prefixes.
UseCase make_l3(size_t n_prefixes, uint64_t seed = 2);

/// Load balancer (Fig. 7a, single stage): `n_services` HTTP VIPs; ingress web
/// traffic splits on the first bit of ip_src between two backends per
/// service; reverse direction forwards unconditionally; the rest drops.
/// Half of the generated traffic targets random services, half is junk that
/// the pipeline drops (the paper's mix).
UseCase make_load_balancer(size_t n_services, uint64_t seed = 3);

/// Access gateway (Fig. 8): `n_ce` customer endpoints (VLAN per CE),
/// `users_per_ce` users each (per-CE NAT tables), `n_prefixes` routing
/// entries.  Traffic is the user→network direction (the paper's dominating
/// path), n_flows spread across users by varying L4 ports.
UseCase make_gateway(size_t n_ce, size_t users_per_ce, size_t n_prefixes,
                     uint64_t seed = 4);

/// Gateway constants exposed for benches/examples.
inline constexpr uint32_t kGatewayNetPort = 0;
inline constexpr uint8_t kGatewayRoutingTable = 110;
inline constexpr uint8_t kGatewayDownstreamTable = 120;

/// Fig. 1 firewall, single-stage (a) and two-stage (b) variants.
flow::Pipeline make_firewall_fig1a();
flow::Pipeline make_firewall_fig1b();

/// Fig. 3: the 8-bit-port flow table whose megaflow cache contents depend on
/// packet arrival order, plus the two arrival sequences (as udp_dst ports).
flow::Pipeline make_fig3_pipeline();
std::vector<net::FlowSpec> fig3_sequence_1();  // 190,189,187,183,175,159,191
std::vector<net::FlowSpec> fig3_sequence_2();  // 191 first

/// Snort-community-like 5-tuple ACLs for the §3.2 decomposition experiment.
flow::FlowTable make_snort_like_acls(size_t n_rules, uint64_t seed = 5);

// --- stateful use cases (src/state/ connection tracking) ---------------------

/// A use case whose pipeline needs the conntrack layer: the CtConfig it must
/// be constructed with rides along (assign to CompilerConfig::ct).
struct CtUseCase {
  flow::Pipeline pipeline;
  state::CtConfig ct;
  std::function<std::vector<net::FlowSpec>(size_t n_flows, uint64_t seed)> traffic;
};

/// Port conventions shared by all three stateful use cases.
inline constexpr uint32_t kCtInsidePort = 1;   // protected / client side
inline constexpr uint32_t kCtOutsidePort = 2;  // untrusted / backend side

/// Stateful firewall: inside traffic commits and forwards out; outside
/// traffic forwards in only when it belongs to an established connection
/// (`ct_state` established bit), everything else drops.  Traffic mixes
/// inside flows, their replies, and unsolicited outside packets the firewall
/// must drop.
CtUseCase make_ct_firewall(uint32_t capacity = 1u << 16, uint64_t seed = 6);

/// SNAT gateway: the firewall shape with commit profile 1 rewriting inside
/// sources to `snat_ip` and an allocated port; replies un-NAT on the way in.
/// Traffic is the inside->out direction (reply tuples depend on the dynamic
/// port allocation, so tests derive them from the live table instead).
CtUseCase make_ct_nat(uint32_t snat_ip, uint32_t capacity = 1u << 16,
                      uint64_t seed = 7);
/// The SNAT use case's VIP-side address constants for tests/examples.
inline constexpr uint32_t kCtNatDefaultIp = 0xC6336401;  // 198.51.100.1

/// Consistent-hashing load balancer: TCP flows to the VIP commit with an LB
/// profile that rendezvous-hashes them onto one of `n_backends` backends and
/// keeps per-connection affinity in the entry (backend churn never remaps a
/// committed connection).  Backend i listens on kCtLbBackendBase + i : 8080.
CtUseCase make_ct_lb(size_t n_backends, uint32_t capacity = 1u << 16,
                     uint64_t seed = 8);
inline constexpr uint32_t kCtLbVip = 0x0A630001;         // 10.99.0.1
inline constexpr uint16_t kCtLbVipPort = 80;
inline constexpr uint32_t kCtLbBackendBase = 0x0AC80001; // 10.200.0.1 + i
inline constexpr uint16_t kCtLbBackendPort = 8080;

}  // namespace esw::uc
