// Controller-channel model for the Fig. 17 update experiments.
//
// The CLI path (ovs-ofctl-style) is a direct API call into the switch; the
// controller path (Ryu/ODL-style) serializes each flow-mod with the OpenFlow
// 1.3 wire codec, ships it through a real AF_UNIX socketpair (syscalls,
// copies, framing) and decodes it on the switch side — reproducing the two
// cost regimes the paper contrasts.
#pragma once

#include <functional>
#include <vector>

#include "flow/wire.hpp"

namespace esw::uc {

class ControllerChannel {
 public:
  using ApplyFn = std::function<void(const flow::FlowMod&)>;

  /// Opens the socketpair; `apply` runs on the "switch side" per message.
  explicit ControllerChannel(ApplyFn apply);
  ~ControllerChannel();
  ControllerChannel(const ControllerChannel&) = delete;
  ControllerChannel& operator=(const ControllerChannel&) = delete;

  /// Encodes, sends, receives, decodes and applies one flow-mod.
  void send(const flow::FlowMod& fm);

  uint64_t messages() const { return messages_; }
  uint64_t bytes() const { return bytes_; }

 private:
  ApplyFn apply_;
  int ctrl_fd_ = -1;    // controller side
  int switch_fd_ = -1;  // switch side
  std::vector<uint8_t> rxbuf_;
  uint64_t messages_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace esw::uc
