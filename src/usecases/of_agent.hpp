// The OpenFlow 1.3 agent session — the control-channel half of a user-space
// switch (the shape BOFUSS standardizes): a framed message stream over an
// AF_UNIX socketpair with a session state machine on the switch side.
//
//   * handshake: the agent sends HELLO at connect; the session opens when the
//     controller's HELLO arrives.  Before that, anything but HELLO/ECHO is
//     answered with OFPET_BAD_REQUEST and dropped.
//   * xid tracking: replies echo the request's xid; the agent stamps its
//     async events (PACKET_IN, FLOW_REMOVED) from its own xid counter.  The
//     controller helper keeps the outstanding-request set and rejects replies
//     with unknown xids.
//   * barrier semantics: messages are dispatched strictly in arrival order
//     and applied synchronously, so by the time BARRIER_REQUEST is answered
//     every earlier flow-mod has taken effect in the datapath.  With a batch
//     callback, consecutive FLOW_MODs coalesce into one best-effort datapath
//     batch per run — flushed before any other message type is acted on, so
//     the barrier guarantee is unchanged while a churn burst costs one
//     recompile instead of one per mod.
//
// The agent is backend-agnostic: it talks to the switch through callbacks.
// `make_dataplane_callbacks()` wires those callbacks to any `core::Dataplane`
// backend (flow-mods apply, multipart stats walk the rule store, deletes
// carrying OFPFF_SEND_FLOW_REM collect FLOW_REMOVED notifications).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/dataplane.hpp"
#include "flow/wire.hpp"

namespace esw::uc {

class OfAgent {
 public:
  struct Callbacks {
    /// Applies one flow-mod to the datapath (required).
    std::function<void(const flow::FlowMod&)> on_flow_mod;
    /// Best-effort batch apply (optional).  When present, the agent
    /// accumulates consecutive FLOW_MODs within a poll and hands each run
    /// over in one call — one datapath recompile/fusion/reclaim pass per run
    /// instead of per mod.  Must return one ModStatus per mod, in order; the
    /// agent answers each refused mod with its own ERROR while the rest of
    /// the batch stands.
    std::function<std::vector<core::ModStatus>(const std::vector<flow::FlowMod>&)>
        on_flow_mod_batch;
    /// Executes a controller-originated packet (optional).
    std::function<void(const flow::PacketOut&)> on_packet_out;
    /// Serves OFPMP_FLOW (optional; empty reply when absent).
    std::function<std::vector<flow::FlowStatsEntry>(const flow::FlowStatsRequest&)>
        on_flow_stats;
    /// Serves OFPMP_TABLE (optional; empty reply when absent).
    std::function<std::vector<flow::TableStatsEntry>()> on_table_stats;
    /// Called for a delete carrying OFPFF_SEND_FLOW_REM *before* it is
    /// applied; returns the to-be-removed flows so the agent can emit
    /// FLOW_REMOVED for each (optional).
    std::function<std::vector<flow::FlowRemoved>(const flow::FlowMod&)>
        on_collect_removed;
  };

  struct SessionStats {
    uint64_t messages_rx = 0;
    uint64_t messages_tx = 0;
    uint64_t bytes_rx = 0;
    uint64_t bytes_tx = 0;
    uint64_t flow_mods = 0;
    uint64_t packet_outs = 0;
    uint64_t barriers = 0;
    uint64_t echoes = 0;
    uint64_t packet_ins_sent = 0;
    uint64_t flow_removed_sent = 0;
    uint64_t errors_sent = 0;
    uint64_t tx_dropped = 0;   // async events dropped on a full channel
    uint64_t io_retries = 0;   // EINTR/partial-write continuations absorbed
    uint64_t reconnects = 0;   // channel re-opens after a peer loss
  };

  /// Opens the socketpair and sends the agent's HELLO.
  explicit OfAgent(Callbacks cbs, uint64_t datapath_id = 0xE5'0000'0001ULL);
  ~OfAgent();
  OfAgent(const OfAgent&) = delete;
  OfAgent& operator=(const OfAgent&) = delete;

  /// The controller end of the channel (drive it with OfController).  A
  /// reconnect replaces the socketpair, so re-fetch this (and rebuild any
  /// OfController around it) after stats().reconnects changes.
  int controller_fd() const { return ctrl_fd_; }

  /// True once the controller's HELLO has arrived.
  bool session_open() const { return peer_hello_seen_; }
  /// True while the channel is severed and a reconnect is pending backoff.
  bool channel_down() const { return channel_down_; }

  /// Drains the channel and dispatches every complete frame, in order.
  /// Returns the number of messages handled.
  uint32_t poll();

  /// Emits a PACKET_IN for a controller-bound frame (reactive path).  Never
  /// blocks: if the channel is full the event is dropped and counted in
  /// stats().tx_dropped — the punt path is lossy by design.
  void send_packet_in(const uint8_t* frame, size_t len, uint32_t in_port,
                      uint8_t table_id = 0,
                      flow::PacketIn::Reason reason = flow::PacketIn::Reason::kNoMatch);

  const SessionStats& stats() const { return stats_; }
  uint64_t datapath_id() const { return datapath_id_; }

 private:
  /// A FLOW_MOD parked for the next batch flush: the decoded mod, the frame
  /// prefix an ERROR must echo (spec: first ≤64 bytes), and the FLOW_REMOVED
  /// notifications collected at enqueue time (sent only if the mod lands).
  struct PendingMod {
    flow::FlowMod fm;
    std::vector<uint8_t> frame_head;
    std::vector<flow::FlowRemoved> removed;
  };

  void dispatch(const uint8_t* frame, size_t len);
  void handle(const flow::OfMsg& msg, const uint8_t* frame, size_t len);
  void flush_flow_mods();
  void send(const std::vector<uint8_t>& bytes);
  bool try_send(const std::vector<uint8_t>& bytes);
  void send_error(uint32_t xid, uint16_t type, uint16_t code, const uint8_t* frame,
                  size_t len);
  uint32_t next_xid() { return xid_++; }
  void open_channel();
  void mark_channel_down();
  void reconnect();
  bool send_all(const uint8_t* data, size_t len);
  size_t drain_rx();

  Callbacks cbs_;
  uint64_t datapath_id_;
  int switch_fd_ = -1;
  int ctrl_fd_ = -1;
  bool peer_hello_seen_ = false;
  bool channel_down_ = false;
  uint32_t reconnect_backoff_ = 1;  // polls to wait before the next re-open
  uint32_t reconnect_wait_ = 0;     // countdown while channel_down_
  uint32_t xid_ = 1;
  std::vector<uint8_t> rxbuf_;
  std::vector<PendingMod> pending_mods_;  // current FLOW_MOD run, batch mode only
  SessionStats stats_;
};

/// The controller end of an agent channel (tests, examples, benches — the
/// Ryu/ODL stand-in).  Owns nothing; borrows the fd from the agent.
class OfController {
 public:
  explicit OfController(int fd) : fd_(fd) {}

  // --- senders (each stamps and returns a tracked xid) ---
  uint32_t send_hello();
  uint32_t send_echo(std::vector<uint8_t> payload = {});
  uint32_t send_features_request();
  uint32_t send_barrier();
  uint32_t send_flow_mod(flow::FlowMod fm);
  uint32_t send_packet_out(flow::PacketOut po);
  uint32_t send_flow_stats_request(flow::FlowStatsRequest req = {});
  uint32_t send_table_stats_request();

  /// Drains the channel; replies must carry an outstanding xid (CheckError
  /// otherwise — the session's xid discipline).  Async events (PACKET_IN,
  /// FLOW_REMOVED) queue up for the caller.  Returns messages received.
  uint32_t poll();

  // --- received state ---
  bool hello_seen() const { return hello_seen_; }
  const std::optional<flow::FeaturesReply>& features() const { return features_; }
  std::vector<flow::PacketIn> take_packet_ins();
  std::vector<flow::FlowRemoved> take_flow_removed();
  std::vector<flow::FlowStatsReply> take_flow_stats();
  std::vector<flow::TableStatsReply> take_table_stats();
  std::vector<flow::Error> take_errors();
  /// Xids of barrier replies since the last take.
  std::vector<uint32_t> take_barrier_replies();

  uint64_t messages() const { return messages_; }
  uint64_t bytes() const { return bytes_; }
  size_t outstanding() const { return outstanding_.size(); }

 private:
  uint32_t send_tracked(std::vector<uint8_t> bytes, uint32_t xid, bool expect_reply);
  void settle(uint32_t xid);

  int fd_;
  uint32_t next_xid_ = 0x1000;
  std::vector<uint32_t> outstanding_;  // request xids awaiting a reply
  std::vector<uint8_t> rxbuf_;
  bool hello_seen_ = false;
  std::optional<flow::FeaturesReply> features_;
  std::vector<flow::PacketIn> packet_ins_;
  std::vector<flow::FlowRemoved> flow_removed_;
  std::vector<flow::FlowStatsReply> flow_stats_;
  std::vector<flow::TableStatsReply> table_stats_;
  std::vector<flow::Error> errors_;
  std::vector<uint32_t> barrier_replies_;
  uint64_t messages_ = 0;
  uint64_t bytes_ = 0;
};

/// HELLO + FEATURES exchange, pumped to completion (in-process convenience).
void run_handshake(OfAgent& agent, OfController& ctrl);

/// Wires an agent's callbacks to a Dataplane backend: flow-mods apply
/// directly, flow/table stats walk the backend's rule store, and deletes
/// with OFPFF_SEND_FLOW_REM collect per-entry FLOW_REMOVED data.
///
/// Packet/byte counts come from the rule store's per-entry counters, which
/// the reference interpreter maintains; the compiled fast path counts at
/// table granularity (CompiledDatapath::table_stats), so reactive flows
/// served entirely by compiled templates report zero per-entry packets.
template <core::Dataplane Backend>
OfAgent::Callbacks make_dataplane_callbacks(Backend& sw) {
  OfAgent::Callbacks cbs;
  cbs.on_flow_mod = [&sw](const flow::FlowMod& fm) { sw.apply(fm); };
  // Backends exposing a best-effort batch path (Eswitch::apply_batch_partial)
  // get batched ingestion — one recompile/fusion/reclaim pass per FLOW_MOD
  // run; the rest fall back to the per-mod path above.
  if constexpr (requires(const std::vector<flow::FlowMod>& fms) {
                  {
                    sw.apply_batch_partial(fms)
                  } -> std::same_as<std::vector<core::ModStatus>>;
                }) {
    cbs.on_flow_mod_batch = [&sw](const std::vector<flow::FlowMod>& fms) {
      return sw.apply_batch_partial(fms);
    };
  }
  cbs.on_flow_stats = [&sw](const flow::FlowStatsRequest& req) {
    std::vector<flow::FlowStatsEntry> out;
    for (const flow::FlowTable& t : sw.pipeline().tables()) {
      if (req.table_id != flow::kAllTables && t.id() != req.table_id) continue;
      for (const flow::FlowEntry& e : t.entries()) {
        if (!req.match.is_catch_all() && !e.match.subsumed_by(req.match)) continue;
        flow::FlowStatsEntry fs;
        fs.table_id = t.id();
        fs.priority = e.priority;
        fs.cookie = e.cookie;
        fs.packet_count = e.n_packets;
        fs.byte_count = e.n_bytes;
        fs.match = e.match;
        fs.actions = e.actions;
        fs.goto_table = e.goto_table;
        out.push_back(std::move(fs));
      }
    }
    return out;
  };
  cbs.on_table_stats = [&sw]() {
    std::vector<flow::TableStatsEntry> out;
    for (const flow::FlowTable& t : sw.pipeline().tables()) {
      flow::TableStatsEntry ts;
      ts.table_id = t.id();
      ts.active_count = static_cast<uint32_t>(t.size());
      for (const flow::FlowEntry& e : t.entries()) ts.matched_count += e.n_packets;
      // The rule store does not see per-table miss counts; report the matched
      // total as the lookup floor.
      ts.lookup_count = ts.matched_count;
      out.push_back(ts);
    }
    return out;
  };
  cbs.on_collect_removed = [&sw](const flow::FlowMod& fm) {
    std::vector<flow::FlowRemoved> out;
    if (const flow::FlowTable* t = sw.pipeline().find_table(fm.table_id)) {
      for (const flow::FlowEntry& e : t->entries()) {
        if (e.priority != fm.priority || !(e.match == fm.match)) continue;
        flow::FlowRemoved r;
        r.cookie = e.cookie;
        r.priority = e.priority;
        r.reason = flow::FlowRemoved::Reason::kDelete;
        r.table_id = fm.table_id;
        r.packet_count = e.n_packets;
        r.byte_count = e.n_bytes;
        r.match = e.match;
        out.push_back(std::move(r));
      }
    }
    return out;
  };
  return cbs;
}

}  // namespace esw::uc
