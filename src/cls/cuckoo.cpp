#include "cls/cuckoo.hpp"

#include <algorithm>
#include <cstring>
#include <new>

#include "common/check.hpp"

namespace esw::cls {

namespace {
uint32_t round_pow2(uint32_t v) {
  uint32_t p = 4;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

CuckooTable::CuckooTable(const Config& cfg) : cfg_(cfg), salt_(cfg.salt) {
  cfg_.initial_buckets = round_pow2(cfg_.initial_buckets == 0 ? 4 : cfg_.initial_buckets);
  if (cfg_.max_kicks == 0) cfg_.max_kicks = 1;
  kick_undo_.reserve(cfg_.max_kicks);
  front_.store(new View(cfg_.initial_buckets, next_salt()), std::memory_order_release);
}

CuckooTable::~CuckooTable() {
  // Destruction implies no live readers: free entries from the live views
  // (each live entry sits in exactly one slot of one view at API boundaries;
  // retired views share entries and free only their slot arrays).
  View* views[2] = {front_.load(std::memory_order_relaxed),
                    back_.load(std::memory_order_relaxed)};
  for (View* v : views) {
    if (v == nullptr) continue;
    for (auto& s : v->slots) {
      Entry* e = word_ptr(s.load(std::memory_order_relaxed));
      if (e != nullptr) free_entry(e);
    }
    delete v;
  }
  retired_entries_.reclaim_into(UINT64_MAX, [](Entry* e) { free_entry(e); });
  retired_views_.reclaim_into(UINT64_MAX, [](View* v) { delete v; });
}

uint64_t CuckooTable::pack_word(const Entry* e) {
  const uint64_t p = reinterpret_cast<uint64_t>(e);
  ESW_CHECK_MSG((p >> 48) == 0, "entry pointer exceeds 48 bits");
  return p | (e->hash >> 48 << 48);
}

void CuckooTable::free_entry(Entry* e) {
  e->~Entry();
  ::operator delete(e);
}

CuckooTable::Entry* CuckooTable::make_entry(const uint8_t* key, uint32_t key_len,
                                            uint64_t value, uint16_t aux, uint64_t h) {
  void* mem = ::operator new(sizeof(Entry) + key_len);
  Entry* e = new (mem) Entry{h, value, key_len, aux};
  std::memcpy(e->key_mut(), key, key_len);
  entry_bytes_ += sizeof(Entry) + key_len;
  return e;
}

void CuckooTable::retire_entry(Entry* e) {
  entry_bytes_ -= sizeof(Entry) + e->key_len;
  if (domain_ == nullptr || !domain_->has_workers()) {
    free_entry(e);
    return;
  }
  retired_entries_.retire(e, domain_->current_epoch());
}

void CuckooTable::retire_view(View* v) {
  if (domain_ == nullptr || !domain_->has_workers()) {
    delete v;
    return;
  }
  retired_views_.retire(v, domain_->current_epoch());
}

uint64_t CuckooTable::epoch_reclaim(uint64_t horizon) {
  uint64_t n = retired_entries_.reclaim_into(horizon, [](Entry* e) { free_entry(e); });
  n += retired_views_.reclaim_into(horizon, [](View* v) { delete v; });
  return n;
}

size_t CuckooTable::memory_bytes() const {
  const View* f = front_.load(std::memory_order_relaxed);
  const View* b = back_.load(std::memory_order_relaxed);
  size_t n = sizeof(*this) + entry_bytes_;
  n += sizeof(View) + f->slots.size() * sizeof(uint64_t);
  if (b != nullptr) n += sizeof(View) + b->slots.size() * sizeof(uint64_t);
  return n;
}

std::atomic<uint64_t>* CuckooTable::find_slot(View* v, uint64_t h, const uint8_t* key,
                                              uint32_t key_len) {
  const uint16_t tag = static_cast<uint16_t>(h >> 48);
  const uint32_t buckets[2] = {bucket1(v, h), bucket2(v, h)};
  for (uint32_t b : buckets) {
    for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
      std::atomic<uint64_t>& w = v->slots[b * kSlotsPerBucket + s];
      const uint64_t word = w.load(std::memory_order_relaxed);
      const Entry* e = word_ptr(word);
      if (e == nullptr || word_tag(word) != tag) continue;
      if (e->hash == h && e->key_len == key_len &&
          std::memcmp(e->key(), key, key_len) == 0)
        return &w;
    }
  }
  return nullptr;
}

bool CuckooTable::place_empty(View* v, uint32_t bucket, uint64_t word) {
  for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
    std::atomic<uint64_t>& w = v->slots[bucket * kSlotsPerBucket + s];
    if (w.load(std::memory_order_relaxed) == 0) {
      w.store(word, std::memory_order_release);
      return true;
    }
  }
  return false;
}

bool CuckooTable::try_place_empty(View* v, Entry* e) {
  const uint64_t word = pack_word(e);
  return place_empty(v, bucket1(v, e->hash), word) ||
         place_empty(v, bucket2(v, e->hash), word);
}

// Displacement chain with an undo log: each step overwrites one victim slot
// (a release store — the victim is transiently homeless, which is why the
// caller holds the seq guard) and carries the victim to its alternate bucket.
// On exhaustion every overwritten slot is restored, so failure leaves the
// table exactly as it was.
bool CuckooTable::kick_place(View* v, Entry* e) {
  kick_undo_.clear();
  uint64_t cur_word = pack_word(e);
  uint64_t cur_hash = e->hash;
  uint32_t bucket = bucket1(v, cur_hash);
  for (uint32_t i = 0; i < cfg_.max_kicks; ++i) {
    const uint32_t slot = (kick_rr_++) & (kSlotsPerBucket - 1);
    const uint32_t idx = bucket * kSlotsPerBucket + slot;
    const uint64_t vic = v->slots[idx].load(std::memory_order_relaxed);
    if (vic == 0) {  // raced nothing — single writer — but cheap to honor
      v->slots[idx].store(cur_word, std::memory_order_release);
      return true;
    }
    kick_undo_.push_back({idx, vic});
    v->slots[idx].store(cur_word, std::memory_order_release);
    ++kicks_;
    cur_word = vic;
    cur_hash = word_ptr(vic)->hash;
    const uint32_t b1 = bucket1(v, cur_hash);
    const uint32_t b2 = bucket2(v, cur_hash);
    bucket = (bucket == b1) ? b2 : b1;
    if (place_empty(v, bucket, cur_word)) return true;
  }
  for (auto it = kick_undo_.rbegin(); it != kick_undo_.rend(); ++it)
    v->slots[it->idx].store(it->word, std::memory_order_release);
  return false;
}

void CuckooTable::migrate_step(uint32_t max_buckets) {
  View* b = back_.load(std::memory_order_relaxed);
  if (b == nullptr) return;
  View* f = front_.load(std::memory_order_relaxed);
  uint32_t done = 0;
  while (b->migrate_pos < b->n_buckets && done < max_buckets) {
    const uint32_t base = b->migrate_pos * kSlotsPerBucket;
    bool fail = false;
    seq_begin();
    for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
      const uint64_t w = b->slots[base + s].load(std::memory_order_relaxed);
      Entry* e = word_ptr(w);
      if (e == nullptr) continue;
      if (!place(f, e)) {
        fail = true;
        break;
      }
      b->slots[base + s].store(0, std::memory_order_release);
      ++migrated_;
    }
    seq_end();
    if (fail) {
      // Front cannot absorb the drain: collapse both views into one doubled
      // rebuild (rare — the incremental path normally finishes long before
      // the front refills).
      rebuild_collapse(f->n_buckets * 2);
      return;
    }
    ++b->migrate_pos;
    ++done;
  }
  if (b->migrate_pos >= b->n_buckets) {
    back_.store(nullptr, std::memory_order_release);
    retire_view(b);
  }
}

void CuckooTable::force_drain() {
  while (back_.load(std::memory_order_relaxed) != nullptr)
    migrate_step(cfg_.migrate_per_mutation);
}

void CuckooTable::grow_incremental() {
  ESW_CHECK(back_.load(std::memory_order_relaxed) == nullptr);
  View* f = front_.load(std::memory_order_relaxed);
  View* nf = new View(f->n_buckets * 2, f->salt);
  // Publish back before front: a reader that observes the new (empty) front
  // is guaranteed to observe the old view as back, so the union it probes is
  // always the complete key set.
  back_.store(f, std::memory_order_release);
  front_.store(nf, std::memory_order_release);
  ++grows_;
}

// Private rebuild of the whole key set into one fresh view (reseed when
// same-sized, grow when larger), published with a single front/back swap
// under the seq guard.  Entries are shared — old views retire slot arrays
// only.  Escalates salt, then size, until the scatter fits.
void CuckooTable::rebuild_collapse(uint32_t min_buckets) {
  View* of = front_.load(std::memory_order_relaxed);
  View* ob = back_.load(std::memory_order_relaxed);
  std::vector<Entry*> all;
  all.reserve(size_);
  const View* views[2] = {of, ob};
  for (const View* v : views) {
    if (v == nullptr) continue;
    for (const auto& s : v->slots) {
      Entry* e = word_ptr(s.load(std::memory_order_relaxed));
      if (e != nullptr) all.push_back(e);
    }
  }
  uint32_t buckets = round_pow2(min_buckets);
  uint32_t attempts = 0;
  for (;;) {
    View* nv = new View(buckets, next_salt());
    bool ok = true;
    for (Entry* e : all) {
      if (!place(nv, e)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      seq_begin();
      front_.store(nv, std::memory_order_release);
      back_.store(nullptr, std::memory_order_release);
      seq_end();
      retire_view(of);
      if (ob != nullptr) retire_view(ob);
      return;
    }
    delete nv;
    if (++attempts % 2 == 0) buckets <<= 1;  // every other salt failure, grow
  }
}

void CuckooTable::insert(const uint8_t* key, uint32_t key_len, uint64_t value,
                         uint16_t aux) {
  const uint64_t h = hash_bytes(key, key_len, kHashSeed);
  migrate_step(cfg_.migrate_per_mutation);

  View* f = front_.load(std::memory_order_relaxed);
  View* b = back_.load(std::memory_order_relaxed);

  // Same-key replace: a single slot-word swap, old or new both valid.
  if (std::atomic<uint64_t>* s = find_slot(f, h, key, key_len)) {
    Entry* old = word_ptr(s->load(std::memory_order_relaxed));
    Entry* ne = make_entry(key, key_len, value, aux, h);
    s->store(pack_word(ne), std::memory_order_release);
    retire_entry(old);
    return;
  }
  if (b != nullptr) {
    if (std::atomic<uint64_t>* s = find_slot(b, h, key, key_len)) {
      // Replace of a key still in the draining view: publish the new version
      // in front, then unlink the old — one seq section so a reader probing
      // between the two views re-probes instead of missing.
      Entry* ne = make_entry(key, key_len, value, aux, h);
      seq_begin();
      const bool ok = place(f, ne);
      if (ok) {
        Entry* old = word_ptr(s->load(std::memory_order_relaxed));
        s->store(0, std::memory_order_release);
        seq_end();
        retire_entry(old);
        return;
      }
      seq_end();
      // No room in front even with kicks: collapse, then retry as a plain
      // replace (the collapsed view contains the old version).
      entry_bytes_ -= sizeof(Entry) + ne->key_len;
      free_entry(ne);
      rebuild_collapse(f->n_buckets * 2);
      insert(key, key_len, value, aux);
      return;
    }
  }

  // Fresh key.
  if (static_cast<double>(size_ + 1) >=
      cfg_.grow_load * static_cast<double>(capacity())) {
    force_drain();
    grow_incremental();
  }
  Entry* ne = make_entry(key, key_len, value, aux, h);
  uint32_t attempts = 0;
  for (;;) {
    f = front_.load(std::memory_order_relaxed);
    if (try_place_empty(f, ne)) break;
    seq_begin();
    const bool ok = kick_place(f, ne);
    seq_end();
    if (ok) break;
    // Kicks exhausted: at real load pressure, grow; at low load this is a
    // pathological salt — reseed first, grow if that did not help.
    force_drain();
    const double load = static_cast<double>(size_) / static_cast<double>(capacity());
    if (load >= 0.5 || attempts > 0) {
      grow_incremental();
    } else {
      ++reseeds_;
      rebuild_collapse(f->n_buckets);
    }
    ++attempts;
  }
  ++size_;
}

bool CuckooTable::erase(const uint8_t* key, uint32_t key_len) {
  const uint64_t h = hash_bytes(key, key_len, kHashSeed);
  migrate_step(cfg_.migrate_per_mutation);
  View* f = front_.load(std::memory_order_relaxed);
  std::atomic<uint64_t>* s = find_slot(f, h, key, key_len);
  if (s == nullptr) {
    View* b = back_.load(std::memory_order_relaxed);
    if (b != nullptr) s = find_slot(b, h, key, key_len);
  }
  if (s == nullptr) return false;
  Entry* e = word_ptr(s->load(std::memory_order_relaxed));
  s->store(0, std::memory_order_release);
  retire_entry(e);
  --size_;
  return true;
}

std::optional<CuckooTable::Value> CuckooTable::lookup(const uint8_t* key,
                                                      uint32_t key_len,
                                                      MemTrace* trace) const {
  const uint64_t h = hash_bytes(key, key_len, kHashSeed);
  const uint16_t tag = static_cast<uint16_t>(h >> 48);
  for (;;) {
    const uint64_t s0 = seq_.load(std::memory_order_acquire);
    if (s0 & 1) continue;  // move in flight; writer sections are short
    const View* views[2] = {front_.load(std::memory_order_acquire),
                            back_.load(std::memory_order_acquire)};
    for (const View* v : views) {
      if (v == nullptr) continue;
      const uint32_t buckets[2] = {bucket1(v, h), bucket2(v, h)};
      for (uint32_t b : buckets) {
        const size_t base = static_cast<size_t>(b) * kSlotsPerBucket;
        if (trace != nullptr)
          trace->touch(&v->slots[base], kSlotsPerBucket * sizeof(uint64_t));
        for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
          const uint64_t word = v->slots[base + s].load(std::memory_order_acquire);
          const Entry* e = word_ptr(word);
          if (e == nullptr || word_tag(word) != tag) continue;
          if (trace != nullptr) trace->touch(e, sizeof(Entry) + e->key_len);
          if (e->hash == h && e->key_len == key_len &&
              std::memcmp(e->key(), key, key_len) == 0)
            return Value{e->value, e->aux};  // hits are self-validating
        }
      }
    }
    // A miss is only believable if no displacement overlapped the probe.
    if (seq_.load(std::memory_order_acquire) == s0) return std::nullopt;
  }
}

uint32_t CuckooTable::lookup_burst(const uint8_t* const* keys, const uint32_t* lens,
                                   uint32_t n, Value* out, bool* hit) const {
  constexpr uint32_t kLane = 16;
  // Rolling pipeline state: three chunks in flight, so every prefetch gets a
  // full chunk's worth of compute (hashing the next chunk, verifying the
  // previous) before its line is consumed — not just the tail of its own
  // chunk's loop.  Per-key cost stays compute-bound even when the table is
  // orders of magnitude past cache.
  struct Chunk {
    uint32_t base = 0, m = 0;
    uint64_t h[kLane];
    uint32_t b1[kLane], b2[kLane];
    const Entry* cand[kLane];
  };
  Chunk ring[3];
  // One view snapshot per burst: every optimistic probe below is against
  // this front; anything it can't prove present goes to the scalar path.
  const View* v = front_.load(std::memory_order_acquire);
  uint32_t hits = 0;

  // Stage 1: hash the chunk and start both candidate buckets' lines.
  const auto stage_hash = [&](Chunk& c, uint32_t base) {
    c.base = base;
    c.m = std::min(kLane, n - base);
    for (uint32_t i = 0; i < c.m; ++i) {
      c.h[i] = hash_bytes(keys[base + i], lens[base + i], kHashSeed);
      const uint64_t hs = mix64(c.h[i] ^ v->salt);
      c.b1[i] = static_cast<uint32_t>(hs) & v->mask;
      c.b2[i] = static_cast<uint32_t>(hs >> 32) & v->mask;
      esw_prefetch(&v->slots[static_cast<size_t>(c.b1[i]) * kSlotsPerBucket]);
      esw_prefetch(&v->slots[static_cast<size_t>(c.b2[i]) * kSlotsPerBucket]);
    }
  };
  // Stage 2: scan the (now-resident) buckets by tag, start the entry blobs.
  const auto stage_scan = [&](Chunk& c) {
    for (uint32_t i = 0; i < c.m; ++i) {
      const uint16_t tag = static_cast<uint16_t>(c.h[i] >> 48);
      c.cand[i] = nullptr;
      for (const uint32_t b : {c.b1[i], c.b2[i]}) {
        const size_t slot0 = static_cast<size_t>(b) * kSlotsPerBucket;
        for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
          const uint64_t word = v->slots[slot0 + s].load(std::memory_order_acquire);
          const Entry* e = word_ptr(word);
          if (e != nullptr && word_tag(word) == tag) {
            c.cand[i] = e;
            break;
          }
        }
        if (c.cand[i] != nullptr) break;
      }
      if (c.cand[i] != nullptr) esw_prefetch(c.cand[i]);
    }
  };
  // Stage 3: verify the (now-resident) entries; unresolved lanes take the
  // scalar path — the optimistic probe can't distinguish "absent" from
  // "moved under me" (or a first-slot tag collision shadowing the real
  // entry), so the seq-checked lookup() is the authority on misses.
  const auto stage_verify = [&](Chunk& c) {
    for (uint32_t i = 0; i < c.m; ++i) {
      const Entry* e = c.cand[i];
      if (e != nullptr && e->hash == c.h[i] && e->key_len == lens[c.base + i] &&
          std::memcmp(e->key(), keys[c.base + i], lens[c.base + i]) == 0) {
        out[c.base + i] = Value{e->value, e->aux};
        hit[c.base + i] = true;
        ++hits;
        continue;
      }
      const std::optional<Value> r = lookup(keys[c.base + i], lens[c.base + i]);
      hit[c.base + i] = r.has_value();
      if (r.has_value()) {
        out[c.base + i] = *r;
        ++hits;
      }
    }
  };

  const uint32_t n_chunks = (n + kLane - 1) / kLane;
  for (uint32_t k = 0; k < n_chunks + 2; ++k) {
    if (k < n_chunks) stage_hash(ring[k % 3], k * kLane);
    if (k >= 1 && k - 1 < n_chunks) stage_scan(ring[(k - 1) % 3]);
    if (k >= 2) stage_verify(ring[(k - 2) % 3]);
  }
  return hits;
}

}  // namespace esw::cls
