// Longest-prefix-match table for IPv4 — a reimplementation of DPDK's
// rte_lpm DIR-24-8 layout, which the paper's LPM template wraps (§3.1,
// "Our prototype uses the Intel DPDK built-in rte_lpm library").
//
// tbl24 resolves the top 24 bits in one access; prefixes longer than /24
// extend into per-/24 tbl8 groups, giving at most two memory accesses per
// lookup (the 13 + 2·Lx cycles atom of the paper's Fig. 20 model).
// Incremental add/delete follow the rte_lpm algorithm: a deleted rule's range
// is re-covered by its longest covering ancestor.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/bits.hpp"
#include "common/memtrace.hpp"

namespace esw::cls {

class LpmTable {
 public:
  static constexpr uint32_t kMaxValue = (1u << 24) - 1;

  explicit LpmTable(uint32_t max_tbl8_groups = 256);

  /// Adds/overwrites a route; `len` in [0, 32], `prefix` in host order.
  /// A /0 entry acts as the default route.  Throws when tbl8 groups run out.
  void add(uint32_t prefix, uint8_t len, uint32_t value);

  /// Removes a route; true if it existed.  The freed range falls back to the
  /// longest covering ancestor (or to a miss).
  bool remove(uint32_t prefix, uint8_t len);

  /// Longest-prefix lookup; nullopt on miss.
  std::optional<uint32_t> lookup(uint32_t addr, MemTrace* trace = nullptr) const;

  /// Starts the tbl24 line for `addr` toward the core ahead of lookup()
  /// (burst-mode software pipelining).  The tbl8 extension, if any, still
  /// costs a demand miss; >24-bit prefixes are the rare case.
  void prefetch(uint32_t addr) const { esw_prefetch(&tbl24_[addr >> 8]); }

  size_t num_rules() const { return rules_.size(); }
  uint32_t tbl8_groups_used() const { return tbl8_used_; }

  /// Approximate resident bytes of the lookup structure (for working-set and
  /// cache-model accounting).
  size_t memory_bytes() const {
    return tbl24_.size() * 4 + tbl8_.size() * 4;
  }

 private:
  // Entry encoding (host integer): bit31 valid, bit30 ext (tbl24 only),
  // bits 29..24 depth, bits 23..0 value or tbl8 group index.
  static constexpr uint32_t kValid = 1u << 31;
  static constexpr uint32_t kExt = 1u << 30;
  static uint32_t make(uint32_t value, uint8_t depth, bool ext) {
    return kValid | (ext ? kExt : 0) | (uint32_t{depth} << 24) | (value & kMaxValue);
  }
  static bool valid(uint32_t e) { return (e & kValid) != 0; }
  static bool ext(uint32_t e) { return (e & kExt) != 0; }
  static uint8_t depth(uint32_t e) { return static_cast<uint8_t>((e >> 24) & 0x3F); }
  static uint32_t value(uint32_t e) { return e & kMaxValue; }

  uint32_t alloc_tbl8(uint32_t fill_entry);
  void write_range24(uint32_t first, uint32_t last, uint32_t entry, uint8_t at_depth);
  void write_tbl8_range(uint32_t group, uint32_t first, uint32_t last, uint32_t entry,
                        uint8_t at_depth);

  std::vector<uint32_t> tbl24_;  // 2^24 entries
  std::vector<uint32_t> tbl8_;   // groups of 256
  uint32_t max_tbl8_groups_;
  uint32_t tbl8_used_ = 0;
  std::vector<uint32_t> free_tbl8_;

  // Rule store for ancestor recovery on delete: key = (len, prefix).
  std::map<std::pair<uint8_t, uint32_t>, uint32_t> rules_;
};

}  // namespace esw::cls
