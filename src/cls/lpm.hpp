// Longest-prefix-match table for IPv4 — a reimplementation of DPDK's
// rte_lpm DIR-24-8 layout, which the paper's LPM template wraps (§3.1,
// "Our prototype uses the Intel DPDK built-in rte_lpm library").
//
// tbl24 resolves the top 24 bits in one access; prefixes longer than /24
// extend into per-/24 tbl8 groups, giving at most two memory accesses per
// lookup (the 13 + 2·Lx cycles atom of the paper's Fig. 20 model).
// Incremental add/delete follow the rte_lpm algorithm: a deleted rule's range
// is re-covered by its longest covering ancestor.
//
// Concurrency: like rte_lpm under RCU, the table supports one writer
// mutating *in place* while readers look up concurrently.  Every table cell
// is a single self-contained 32-bit word (valid/ext/depth/value packed
// together), stored releases / loaded acquires, so a reader always sees a
// well-formed entry — during a multi-cell range write it may see a mix of
// pre- and post-update cells, i.e. either the old or the new route per
// address, never garbage.  tbl8 storage is preallocated to its group budget
// at construction so no reader-visible array ever reallocates.  Freed tbl8
// groups are recycled without a grace period; the lookup therefore brackets
// its two-level read with a generation counter that every group (re)allocation
// bumps (seqlock-style) and retries when ownership changed underneath it —
// a value-compare of the tbl24 cell alone would be ABA-unsafe, since the
// LIFO freelist readily hands the same group back to the same /24.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/bits.hpp"
#include "common/memtrace.hpp"

namespace esw::cls {

class LpmTable {
 public:
  static constexpr uint32_t kMaxValue = (1u << 24) - 1;

  explicit LpmTable(uint32_t max_tbl8_groups = 256);

  /// Adds/overwrites a route; `len` in [0, 32], `prefix` in host order.
  /// A /0 entry acts as the default route.  Throws when tbl8 groups run out.
  void add(uint32_t prefix, uint8_t len, uint32_t value);

  /// Removes a route; true if it existed.  The freed range falls back to the
  /// longest covering ancestor (or to a miss).
  bool remove(uint32_t prefix, uint8_t len);

  /// Longest-prefix lookup; nullopt on miss.  Safe concurrently with one
  /// writer in add()/remove() (see the header comment for the guarantee).
  std::optional<uint32_t> lookup(uint32_t addr, MemTrace* trace = nullptr) const;

  /// Starts the tbl24 line for `addr` toward the core ahead of lookup()
  /// (burst-mode software pipelining).  The tbl8 extension, if any, still
  /// costs a demand miss; >24-bit prefixes are the rare case.
  void prefetch(uint32_t addr) const { esw_prefetch(&tbl24_[addr >> 8]); }

  size_t num_rules() const { return rules_.size(); }
  uint32_t tbl8_groups_used() const {
    return tbl8_used_.load(std::memory_order_relaxed);
  }

  /// Approximate resident bytes of the lookup structure (for working-set and
  /// cache-model accounting).  Counts the tbl8 high-water mark, matching the
  /// previous grow-on-demand accounting.  Readers call this concurrently with
  /// the writer's group allocation (the burst walker's prefetch gate), hence
  /// the relaxed atomic.
  size_t memory_bytes() const {
    return size_t{1 << 24} * 4 + size_t{tbl8_groups_used()} * 256 * 4;
  }

 private:
  // Entry encoding (host integer): bit31 valid, bit30 ext (tbl24 only),
  // bits 29..24 depth, bits 23..0 value or tbl8 group index.
  static constexpr uint32_t kValid = 1u << 31;
  static constexpr uint32_t kExt = 1u << 30;
  static uint32_t make(uint32_t value, uint8_t depth, bool ext) {
    return kValid | (ext ? kExt : 0) | (uint32_t{depth} << 24) | (value & kMaxValue);
  }
  static bool valid(uint32_t e) { return (e & kValid) != 0; }
  static bool ext(uint32_t e) { return (e & kExt) != 0; }
  static uint8_t depth(uint32_t e) { return static_cast<uint8_t>((e >> 24) & 0x3F); }
  static uint32_t value(uint32_t e) { return e & kMaxValue; }

  uint32_t alloc_tbl8(uint32_t fill_entry);
  void write_range24(uint32_t first, uint32_t last, uint32_t entry, uint8_t at_depth);
  void write_tbl8_range(uint32_t group, uint32_t first, uint32_t last, uint32_t entry,
                        uint8_t at_depth);

  // Cell accessors: the writer's read-modify-write cycles are not atomic as a
  // whole (single-writer contract); atomics only order cell *publication*
  // against concurrent readers.
  uint32_t cell24(uint32_t i) const { return tbl24_[i].load(std::memory_order_acquire); }
  void set_cell24(uint32_t i, uint32_t e) { tbl24_[i].store(e, std::memory_order_release); }
  uint32_t cell8(size_t i) const { return tbl8_[i].load(std::memory_order_acquire); }
  void set_cell8(size_t i, uint32_t e) { tbl8_[i].store(e, std::memory_order_release); }

  std::unique_ptr<std::atomic<uint32_t>[]> tbl24_;  // 2^24 entries
  std::unique_ptr<std::atomic<uint32_t>[]> tbl8_;   // groups of 256, preallocated
  uint32_t max_tbl8_groups_;
  std::atomic<uint32_t> tbl8_used_{0};  // high-water mark; single writer
  // Bumped (release) before a freed or fresh group is refilled: the lookup's
  // ownership-stability check.  64-bit: never wraps.
  std::atomic<uint64_t> tbl8_gen_{0};
  std::vector<uint32_t> free_tbl8_;

  // Rule store for ancestor recovery on delete: key = (len, prefix).
  std::map<std::pair<uint8_t, uint32_t>, uint32_t> rules_;
};

}  // namespace esw::cls
