// Resizable, reader-safe bucketized cuckoo hash over byte-string keys — the
// engine behind the million-flow *cuckoo hash* template.
//
// The fixed-capacity ExactMatchTable rebuilds (and, under workers, is cloned
// and republished wholesale) whenever it grows; at 1M+ entries that clone
// dominates update cost.  This table instead follows the shared-memory cuckoo
// map design (tasvir's CuckooMap, SNIPPETS.md Snippet 1): 4-way buckets whose
// slots are single atomic words packing a 48-bit entry pointer with a 16-bit
// tag, so one control-plane writer mutates *in place* while packet workers
// read concurrently.
//
// Reader safety rests on three rules:
//   * entries are immutable heap blobs published/retired through the owning
//     datapath's EpochDomain — a reader that loaded a slot word can always
//     dereference it, even if the writer just unlinked it;
//   * single-slot writes (fresh insert into an empty slot, erase, same-key
//     replace) need no further protection: a reader sees the old or the new
//     word, both valid states;
//   * multi-slot moves (displacement chains, bucket migration during grow,
//     the reseed/collapse view swap) run inside one global even/odd seqlock
//     section.  Positive hits are self-validating (immutable entries) and
//     return immediately; only a *miss* that overlapped a move re-probes, so
//     a present key is never reported absent.
//
// Growth is incremental: a doubled empty view is published as the new front
// and the old view drains behind it, a few buckets per subsequent mutation —
// no stop-the-world rehash.  Lookups probe front then back; a key is always
// in exactly one of them.  Failed displacement chains at low load reseed
// (new bucket-derivation salt, entries shared, private rebuild + view swap)
// before escalating to a grow.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/bits.hpp"
#include "common/epoch.hpp"
#include "common/memtrace.hpp"

namespace esw::cls {

class CuckooTable {
 public:
  static constexpr uint32_t kSlotsPerBucket = 4;

  struct Config {
    uint32_t initial_buckets = 1024;   // rounded up to a power of two
    uint32_t max_kicks = 96;           // displacement bound before reseed/grow
    double grow_load = 0.8;            // proactive incremental-grow threshold
    uint32_t migrate_per_mutation = 8; // back-view buckets drained per write
    uint64_t salt = 0x9E3779B97F4A7C15ULL;  // bucket-derivation salt seed
  };

  struct Value {
    uint64_t value;
    uint16_t aux;
  };

  CuckooTable() : CuckooTable(Config{}) {}
  explicit CuckooTable(const Config& cfg);
  ~CuckooTable();

  CuckooTable(const CuckooTable&) = delete;
  CuckooTable& operator=(const CuckooTable&) = delete;

  /// Wires retirement to the datapath's epoch domain.  Null (the default)
  /// reclaims immediately — the single-threaded build/bench path.
  void set_domain(common::EpochDomain* d) { domain_ = d; }

  /// Inserts or replaces (single control-plane writer).
  void insert(const uint8_t* key, uint32_t key_len, uint64_t value, uint16_t aux = 0);

  /// Removes a key; true if it was present.
  bool erase(const uint8_t* key, uint32_t key_len);

  /// Wait-free-on-hit concurrent lookup (any thread).
  std::optional<Value> lookup(const uint8_t* key, uint32_t key_len,
                              MemTrace* trace = nullptr) const;

  /// Prefetch-pipelined bulk lookup (any thread): probes `n` keys through a
  /// three-stage software pipeline — hash + both-bucket prefetch for the
  /// whole lane, then slot scan + entry-blob prefetch, then key verify — so
  /// up to a lane's worth of cache misses are in flight at once instead of
  /// one dependent miss per key.  That memory-level parallelism is what
  /// keeps the probe rate flat from 100K to millions of entries (the scale
  /// bench's CI gate).  Lanes whose optimistic front-view probe misses (a
  /// grow draining behind the front, a tag collision, a concurrent
  /// displacement) fall back to the seq-checked scalar lookup(), so the
  /// result is element-wise identical to n lookup() calls.  Fills out[i]
  /// and hit[i]; returns the hit count.
  uint32_t lookup_burst(const uint8_t* const* keys, const uint32_t* lens,
                        uint32_t n, Value* out, bool* hit) const;

  /// Starts both candidate buckets' cache lines toward the core ahead of
  /// lookup() (a present key is in either with equal odds).  The bucket
  /// indexes are derived from the same acquire-loaded view snapshot the
  /// lookup would use, so a concurrent grow can never make it prefetch
  /// (or index) past the live slot array.
  void prefetch(const uint8_t* key, uint32_t key_len) const {
    const View* v = front_.load(std::memory_order_acquire);
    const uint64_t hs = mix64(hash_bytes(key, key_len, kHashSeed) ^ v->salt);
    esw_prefetch(&v->slots[static_cast<size_t>(static_cast<uint32_t>(hs) & v->mask) *
                           kSlotsPerBucket]);
    esw_prefetch(&v->slots[static_cast<size_t>(static_cast<uint32_t>(hs >> 32) & v->mask) *
                           kSlotsPerBucket]);
  }

  size_t size() const { return size_; }
  uint32_t capacity() const {
    return front_.load(std::memory_order_relaxed)->n_buckets * kSlotsPerBucket;
  }
  size_t memory_bytes() const;

  uint64_t grows() const { return grows_; }
  uint64_t reseeds() const { return reseeds_; }
  uint64_t kicks() const { return kicks_; }
  uint64_t migrated() const { return migrated_; }

  /// Frees retired entries/views stamped strictly below `horizon`
  /// (control thread; rides the datapath's reclaim pass).
  uint64_t epoch_reclaim(uint64_t horizon);
  size_t retired_pending() const {
    return retired_entries_.pending() + retired_views_.pending();
  }

 private:
  // Immutable once published: a reader holding the pointer never re-checks.
  struct Entry {
    uint64_t hash;  // salt-independent key hash (valid across reseeds)
    uint64_t value;
    uint32_t key_len;
    uint16_t aux;
    const uint8_t* key() const {
      return reinterpret_cast<const uint8_t*>(this) + sizeof(Entry);
    }
    uint8_t* key_mut() { return reinterpret_cast<uint8_t*>(this) + sizeof(Entry); }
  };

  struct View {
    uint32_t n_buckets;
    uint32_t mask;
    uint64_t salt;
    uint32_t migrate_pos = 0;  // next bucket to drain when this is the back
    std::vector<std::atomic<uint64_t>> slots;  // n_buckets * kSlotsPerBucket

    View(uint32_t buckets, uint64_t s)
        : n_buckets(buckets),
          mask(buckets - 1),
          salt(s),
          slots(static_cast<size_t>(buckets) * kSlotsPerBucket) {}
  };

  static constexpr uint64_t kHashSeed = 0xC6A4A7935BD1E995ULL;
  static constexpr uint64_t kPtrMask = (uint64_t{1} << 48) - 1;

  static Entry* word_ptr(uint64_t w) { return reinterpret_cast<Entry*>(w & kPtrMask); }
  static uint16_t word_tag(uint64_t w) { return static_cast<uint16_t>(w >> 48); }
  static uint64_t pack_word(const Entry* e);
  static void free_entry(Entry* e);

  static uint32_t bucket1(const View* v, uint64_t h) {
    return static_cast<uint32_t>(mix64(h ^ v->salt)) & v->mask;
  }
  static uint32_t bucket2(const View* v, uint64_t h) {
    return static_cast<uint32_t>(mix64(h ^ v->salt) >> 32) & v->mask;
  }

  Entry* make_entry(const uint8_t* key, uint32_t key_len, uint64_t value,
                    uint16_t aux, uint64_t h);
  void retire_entry(Entry* e);
  void retire_view(View* v);

  std::atomic<uint64_t>* find_slot(View* v, uint64_t h, const uint8_t* key,
                                   uint32_t key_len);
  bool place_empty(View* v, uint32_t bucket, uint64_t word);
  bool try_place_empty(View* v, Entry* e);
  bool kick_place(View* v, Entry* e);  // caller holds the seq guard
  bool place(View* v, Entry* e) { return try_place_empty(v, e) || kick_place(v, e); }

  void seq_begin() {
    seq_.store(seq_.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }
  void seq_end() {
    seq_.store(seq_.load(std::memory_order_relaxed) + 1, std::memory_order_release);
  }

  void migrate_step(uint32_t max_buckets);
  void force_drain();
  void grow_incremental();
  void rebuild_collapse(uint32_t min_buckets);
  uint64_t next_salt() { return salt_ = mix64(salt_ + kHashSeed); }

  Config cfg_;
  uint64_t salt_;
  std::atomic<View*> front_;
  std::atomic<View*> back_{nullptr};
  // Global displacement/migration guard: odd while a multi-slot move is in
  // flight; readers re-probe on a miss whose window saw a change.
  std::atomic<uint64_t> seq_{0};

  common::EpochDomain* domain_ = nullptr;
  common::RetireList<Entry*> retired_entries_;
  common::RetireList<View*> retired_views_;

  size_t size_ = 0;
  size_t entry_bytes_ = 0;  // live heap bytes in Entry blobs
  uint32_t kick_rr_ = 0;    // round-robin victim-slot cursor
  uint64_t grows_ = 0;
  uint64_t reseeds_ = 0;
  uint64_t kicks_ = 0;
  uint64_t migrated_ = 0;
  struct Undo {
    uint32_t idx;
    uint64_t word;
  };
  std::vector<Undo> kick_undo_;  // scratch, reused across kick chains
};

}  // namespace esw::cls
