#include "cls/range_tree.hpp"

#include <algorithm>

namespace esw::cls {

void RangeTree::build(std::vector<Rule> rules) {
  n_rules_ = rules.size();
  starts_.clear();
  values_.clear();

  // Boundary sweep: every lo and every hi+1 opens an elementary interval.
  std::vector<uint64_t> bounds;
  bounds.reserve(rules.size() * 2 + 1);
  bounds.push_back(0);
  for (const Rule& r : rules) {
    bounds.push_back(r.lo);
    if (r.hi != ~uint64_t{0}) bounds.push_back(r.hi + 1);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  // Rank-sort so the first covering rule wins each interval.
  std::sort(rules.begin(), rules.end(),
            [](const Rule& a, const Rule& b) { return a.rank < b.rank; });

  starts_.reserve(bounds.size());
  values_.reserve(bounds.size());
  for (const uint64_t b : bounds) {
    int64_t winner = -1;
    for (const Rule& r : rules) {
      if (r.lo <= b && b <= r.hi) {
        winner = static_cast<int64_t>(r.value);
        break;
      }
    }
    // Merge with the previous interval when the winner is unchanged.
    if (!values_.empty() && values_.back() == winner) continue;
    starts_.push_back(b);
    values_.push_back(winner);
  }
}

std::optional<uint32_t> RangeTree::lookup(uint64_t key, MemTrace* trace) const {
  if (starts_.empty()) return std::nullopt;
  // Last interval with start <= key.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), key);
  const size_t idx = static_cast<size_t>(it - starts_.begin()) - 1;
  if (trace != nullptr) {
    trace->touch(&starts_[idx], sizeof(uint64_t));
    trace->touch(&values_[idx], sizeof(int64_t));
  }
  const int64_t v = values_[idx];
  if (v < 0) return std::nullopt;
  return static_cast<uint32_t>(v);
}

}  // namespace esw::cls
