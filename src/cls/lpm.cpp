#include "cls/lpm.hpp"

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/failpoint.hpp"

namespace esw::cls {

namespace {
uint32_t prefix_mask32(uint8_t len) {
  return len == 0 ? 0 : static_cast<uint32_t>(low_bits(len) << (32 - len));
}
}  // namespace

LpmTable::LpmTable(uint32_t max_tbl8_groups)
    : tbl24_(new std::atomic<uint32_t>[size_t{1} << 24]),
      tbl8_(new std::atomic<uint32_t>[size_t{max_tbl8_groups} * 256]),
      max_tbl8_groups_(max_tbl8_groups) {
  // Relaxed init: the table is published to readers only after construction.
  for (size_t i = 0; i < (size_t{1} << 24); ++i)
    tbl24_[i].store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < size_t{max_tbl8_groups} * 256; ++i)
    tbl8_[i].store(0, std::memory_order_relaxed);
}

uint32_t LpmTable::alloc_tbl8(uint32_t fill_entry) {
  // Injectable exhaustion: same throw as a genuinely spent budget, so the
  // try_add -> rebuild and build -> template-fallback paths are reachable.
  ESW_CHECK_MSG(!ESW_FAILPOINT("lpm.tbl8"), "out of tbl8 groups");
  uint32_t group;
  if (!free_tbl8_.empty()) {
    group = free_tbl8_.back();
    free_tbl8_.pop_back();
  } else {
    group = tbl8_used_.load(std::memory_order_relaxed);
    ESW_CHECK_MSG(group < max_tbl8_groups_, "out of tbl8 groups");
    tbl8_used_.store(group + 1, std::memory_order_relaxed);
  }
  // Ownership of `group` changes now: bump the generation *before* refilling
  // so a reader whose tbl8 load observes any refill store also observes the
  // bump (release sequence) and retries.  Fill before any tbl24 cell can
  // point here: a reader that acquires the ext entry must find initialized
  // cells.
  tbl8_gen_.fetch_add(1, std::memory_order_release);
  for (uint32_t j = 0; j < 256; ++j) set_cell8(size_t{group} * 256 + j, fill_entry);
  return group;
}

void LpmTable::write_range24(uint32_t first, uint32_t last, uint32_t entry,
                             uint8_t at_depth) {
  for (uint32_t i = first; i <= last; ++i) {
    const uint32_t e = cell24(i);
    if (ext(e)) {
      // Overwrite only the shallower cells of the extension group.
      const uint32_t g = value(e);
      for (uint32_t j = 0; j < 256; ++j) {
        const size_t idx = size_t{g} * 256 + j;
        const uint32_t cell = cell8(idx);
        if (!valid(cell) || depth(cell) <= at_depth) set_cell8(idx, entry);
      }
    } else if (!valid(e) || depth(e) <= at_depth) {
      set_cell24(i, entry);
    }
  }
}

void LpmTable::write_tbl8_range(uint32_t group, uint32_t first, uint32_t last,
                                uint32_t entry, uint8_t at_depth) {
  for (uint32_t j = first; j <= last; ++j) {
    const size_t idx = size_t{group} * 256 + j;
    const uint32_t cell = cell8(idx);
    if (!valid(cell) || depth(cell) <= at_depth) set_cell8(idx, entry);
  }
}

void LpmTable::add(uint32_t prefix, uint8_t len, uint32_t value_in) {
  ESW_CHECK(len <= 32);
  ESW_CHECK_MSG(value_in <= kMaxValue, "LPM value exceeds 24 bits");
  prefix &= prefix_mask32(len);
  rules_[{len, prefix}] = value_in;

  if (len <= 24) {
    const uint32_t first = prefix >> 8;
    const uint32_t last = first + (1u << (24 - len)) - 1;
    write_range24(first, last, make(value_in, len, false), len);
    return;
  }

  const uint32_t i = prefix >> 8;
  uint32_t e = cell24(i);
  uint32_t group;
  if (ext(e)) {
    group = value(e);
  } else {
    // Seed a fresh group with whatever covered this /24 before, then publish
    // the extension pointer (release) so readers find the filled group.
    const uint32_t fill = valid(e) ? e : 0;
    group = alloc_tbl8(fill);
    set_cell24(i, make(group, 0, true));
  }
  const uint32_t lo = prefix & 0xFF;
  const uint32_t hi = lo + (1u << (32 - len)) - 1;
  write_tbl8_range(group, lo, hi, make(value_in, len, false), len);
}

bool LpmTable::remove(uint32_t prefix, uint8_t len) {
  ESW_CHECK(len <= 32);
  prefix &= prefix_mask32(len);
  if (rules_.erase({len, prefix}) == 0) return false;

  // Longest covering ancestor takes over the freed range (rte_lpm's delete).
  uint32_t repl = 0;
  for (int alen = len - 1; alen >= 0; --alen) {
    const uint32_t ap = prefix & prefix_mask32(static_cast<uint8_t>(alen));
    const auto it = rules_.find({static_cast<uint8_t>(alen), ap});
    if (it != rules_.end()) {
      repl = make(it->second, static_cast<uint8_t>(alen), false);
      break;
    }
  }

  if (len <= 24) {
    const uint32_t first = prefix >> 8;
    const uint32_t last = first + (1u << (24 - len)) - 1;
    for (uint32_t i = first; i <= last; ++i) {
      const uint32_t e = cell24(i);
      if (ext(e)) {
        const uint32_t g = value(e);
        for (uint32_t j = 0; j < 256; ++j) {
          const size_t idx = size_t{g} * 256 + j;
          const uint32_t cell = cell8(idx);
          if (valid(cell) && !ext(cell) && depth(cell) == len) set_cell8(idx, repl);
        }
      } else if (valid(e) && depth(e) == len) {
        set_cell24(i, repl);
      }
    }
    return true;
  }

  const uint32_t i = prefix >> 8;
  const uint32_t e = cell24(i);
  if (!ext(e)) return true;  // nothing materialized (shouldn't happen)
  const uint32_t g = value(e);
  const uint32_t lo = prefix & 0xFF;
  const uint32_t hi = lo + (1u << (32 - len)) - 1;
  for (uint32_t j = lo; j <= hi; ++j) {
    const size_t idx = size_t{g} * 256 + j;
    const uint32_t cell = cell8(idx);
    if (valid(cell) && depth(cell) == len) set_cell8(idx, repl);
  }

  // Fold the group back into tbl24 when no >24-depth cell remains.  All
  // remaining cells are then identical (a ≤ /24 rule always covers the whole
  // group range).  The tbl24 cell is republished first, so a reader can only
  // chase the group pointer before the fold — the group's cells stay intact
  // until a later alloc_tbl8 refills them, which republishes tbl24 again.
  bool has_deep = false;
  for (uint32_t j = 0; j < 256; ++j) {
    const uint32_t cell = cell8(size_t{g} * 256 + j);
    if (valid(cell) && depth(cell) > 24) {
      has_deep = true;
      break;
    }
  }
  if (!has_deep) {
    set_cell24(i, cell8(size_t{g} * 256));
    free_tbl8_.push_back(g);
  }
  return true;
}

std::optional<uint32_t> LpmTable::lookup(uint32_t addr, MemTrace* trace) const {
  for (;;) {
    // Generation first, tbl24 second: if a group was recycled before this
    // read, either `gen` already reflects it (and an equal re-read below
    // proves no *further* recycle raced the cell loads), or the tbl24 load
    // happens-after the bump via the acquire chain and sees the fold.
    const uint64_t gen = tbl8_gen_.load(std::memory_order_acquire);
    const uint32_t e = cell24(addr >> 8);
    if (trace) trace->touch(&tbl24_[addr >> 8], 4);
    if (!valid(e)) return std::nullopt;
    if (!ext(e)) return value(e);
    const size_t idx = size_t{value(e)} * 256 + (addr & 0xFF);
    const uint32_t cell = cell8(idx);
    if (trace) trace->touch(&tbl8_[idx], 4);
    // Freed tbl8 groups are recycled without a grace period, so the group
    // behind `e` may have been folded away and refilled for another /24
    // between our loads.  Any such ownership change bumps tbl8_gen_ before
    // the refill, and the refill stores are what the stale read would have
    // observed — so an unchanged generation proves the cell belonged to this
    // /24.  (A value-compare of the tbl24 entry would be ABA-unsafe: the
    // LIFO freelist hands the same group back to the same /24.)
    if (ESW_LIKELY(tbl8_gen_.load(std::memory_order_acquire) == gen)) {
      if (!valid(cell)) return std::nullopt;
      return value(cell);
    }
  }
}

}  // namespace esw::cls
