#include "cls/exact_match.hpp"

#include <algorithm>
#include <cstring>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace esw::cls {

ExactMatchTable::ExactMatchTable(const Config& cfg) : cfg_(cfg) {
  auto t = std::make_unique<Table>();
  t->slots.resize(16);
  t->mask = 15;
  publish(std::move(t));
}

ExactMatchTable::ExactMatchTable(const ExactMatchTable& o)
    : cfg_(o.cfg_),
      arena_(o.arena_),
      items_(o.items_),
      size_(o.size_),
      rebuilds_(o.rebuilds_) {
  publish(std::make_unique<Table>(*o.own_));
}

ExactMatchTable& ExactMatchTable::operator=(const ExactMatchTable& o) {
  if (this == &o) return *this;
  cfg_ = o.cfg_;
  arena_ = o.arena_;
  items_ = o.items_;
  size_ = o.size_;
  rebuilds_ = o.rebuilds_;
  publish(std::make_unique<Table>(*o.own_));
  return *this;
}

const ExactMatchTable::Slot* ExactMatchTable::find_slot(const uint8_t* key,
                                                        uint32_t key_len,
                                                        MemTrace* trace) const {
  const Table* t = tbl_.load(std::memory_order_acquire);
  const uint64_t h = hash_bytes(key, key_len, t->seed);
  const uint32_t mask = t->mask;
  for (uint32_t i = 0; i <= mask; ++i) {
    const Slot& s = t->slots[(h + i) & mask];
    if (trace) trace->touch(&s, sizeof(Slot));
    if (s.key_pos == Slot::kEmpty) return nullptr;
    if (s.key_pos == Slot::kTomb) continue;
    if (s.hash == h && s.key_len == key_len &&
        std::memcmp(arena_.data() + s.key_pos, key, key_len) == 0) {
      if (trace) trace->touch(arena_.data() + s.key_pos, key_len);
      return &s;
    }
  }
  return nullptr;
}

std::optional<uint32_t> ExactMatchTable::lookup(const uint8_t* key, uint32_t key_len,
                                                MemTrace* trace) const {
  const Slot* s = find_slot(key, key_len, trace);
  if (s == nullptr) return std::nullopt;
  return s->value;
}

void ExactMatchTable::insert(const uint8_t* key, uint32_t key_len, uint32_t value) {
  ESW_CHECK(key_len > 0 && key_len <= 0xFFFF);
  // Overwrite in place when present.
  if (const Slot* s = find_slot(key, key_len, nullptr)) {
    const_cast<Slot*>(s)->value = value;
    for (Item& it : items_)
      if (it.key_pos == s->key_pos) it.value = value;
    return;
  }

  const uint32_t key_pos = static_cast<uint32_t>(arena_.size());
  arena_.insert(arena_.end(), key, key + key_len);
  items_.push_back({key_pos, static_cast<uint16_t>(key_len), value});
  ++size_;

  if (static_cast<double>(size_) > cfg_.max_load * capacity()) {
    rebuild(capacity() * 2);
    return;
  }

  // Probe for a free slot; rebuild with a fresh seed if the chain gets long
  // (the "perfect hash" construction from the paper).
  Table* t = own_.get();
  const uint64_t h = hash_bytes(key, key_len, t->seed);
  const uint32_t mask = t->mask;
  for (uint32_t i = 0; i <= mask; ++i) {
    Slot& s = t->slots[(h + i) & mask];
    if (s.key_pos == Slot::kEmpty || s.key_pos == Slot::kTomb) {
      if (i >= cfg_.max_probe) break;  // chain too long: rebuild below
      s = {key_pos, static_cast<uint16_t>(key_len), value, h};
      return;
    }
  }
  rebuild(capacity());
}

bool ExactMatchTable::erase(const uint8_t* key, uint32_t key_len) {
  const Slot* s = find_slot(key, key_len, nullptr);
  if (s == nullptr) return false;
  const uint32_t pos = s->key_pos;
  const_cast<Slot*>(s)->key_pos = Slot::kTomb;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].key_pos == pos) {
      items_[i] = items_.back();
      items_.pop_back();
      break;
    }
  }
  --size_;
  return true;
}

bool ExactMatchTable::try_insert_all(uint32_t cap, uint64_t seed) {
  auto fresh = std::make_unique<Table>();
  fresh->seed = seed;
  fresh->mask = cap - 1;
  fresh->slots.resize(cap);
  for (const Item& it : items_) {
    const uint64_t h = hash_bytes(arena_.data() + it.key_pos, it.key_len, seed);
    bool placed = false;
    for (uint32_t i = 0; i <= cfg_.max_probe; ++i) {
      Slot& s = fresh->slots[(h + i) & fresh->mask];
      if (s.key_pos == Slot::kEmpty) {
        s = {it.key_pos, it.key_len, it.value, h};
        placed = true;
        break;
      }
    }
    if (!placed) return false;
  }
  publish(std::move(fresh));
  return true;
}

void ExactMatchTable::rebuild(uint32_t min_cap) {
  ++rebuilds_;
  uint32_t cap = min_cap < 16 ? 16 : min_cap;
  while (static_cast<double>(size_) > cfg_.max_load * cap) cap *= 2;
  uint64_t seed = own_->seed;
  for (;;) {
    for (uint32_t attempt = 0; attempt < cfg_.seed_attempts; ++attempt) {
      seed = mix64(seed + attempt + cap);
      if (try_insert_all(cap, seed)) return;
    }
    cap *= 2;  // couldn't make it collision-light at this size
  }
}

uint32_t ExactMatchTable::longest_probe() const {
  const Table* t = tbl_.load(std::memory_order_acquire);
  uint32_t longest = 0;
  const uint32_t mask = t->mask;
  for (const Slot& s : t->slots) {
    if (s.key_pos >= Slot::kTomb) continue;
    const uint32_t home = static_cast<uint32_t>(s.hash) & mask;
    const uint32_t at = static_cast<uint32_t>(&s - t->slots.data());
    longest = std::max(longest, (at - home) & mask);
  }
  return longest;
}

}  // namespace esw::cls
