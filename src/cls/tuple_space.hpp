// Tuple space search (Srinivasan et al., SIGCOMM '99) — the classifier behind
// the paper's *linked list* template and the OVS-model megaflow cache.
//
// Entries are grouped into tuples by their exact mask signature; each tuple
// indexes its entries with an exact-match hash over the masked key.  Lookup
// scans tuples best-rank-first with early exit (OVS's "tuple priority
// sorting") and can report which tuples were visited — the information a
// flow-caching switch turns into megaflow wildcards (§2.2: fields "that
// caused a match as well as those higher priority ones that did not, need to
// be taken into consideration").
//
// `Value` is the per-entry payload (compiled lookup results, megaflow
// entries, …).  Rank is the total match order: lower rank wins; callers build
// it from (priority, insertion order) so results are deterministic and equal
// to the reference interpreter's.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "cls/exact_match.hpp"
#include "common/check.hpp"
#include "common/memtrace.hpp"
#include "flow/match.hpp"

namespace esw::cls {

struct TupleVisitStats {
  uint32_t tuples_visited = 0;
  uint32_t fields_union = 0;                              // present-bit union
  std::array<uint64_t, flow::kNumFields> mask_union{};    // per-field mask bits
};

template <typename Value>
class TupleSpace {
 public:
  struct Entry {
    flow::Match match;
    uint32_t rank;  // lower wins
    Value value;
  };

  TupleSpace() = default;
  /// Deep copy — the copy-on-write update path clones the classifier, mutates
  /// the clone and publishes it, leaving the source (still visible to
  /// concurrent readers) untouched.
  TupleSpace(const TupleSpace& other) : size_(other.size_) {
    tuples_.reserve(other.tuples_.size());
    for (const auto& tp : other.tuples_) tuples_.push_back(std::make_unique<Tuple>(*tp));
  }
  TupleSpace& operator=(const TupleSpace& other) {
    if (this != &other) *this = TupleSpace(other);
    return *this;
  }
  TupleSpace(TupleSpace&&) noexcept = default;
  TupleSpace& operator=(TupleSpace&&) noexcept = default;

  /// Adds an entry.  (match, rank) pairs must be unique.
  void add(const flow::Match& match, uint32_t rank, Value value) {
    Tuple* t = find_tuple(match);
    if (t == nullptr) {
      auto fresh = std::make_unique<Tuple>();
      fresh->present = match.present_bits();
      for (flow::FieldId f : flow::MatchFields(match))
        fresh->masks[static_cast<unsigned>(f)] = match.mask(f);
      fresh->proto_required = match.proto_required();
      t = fresh.get();
      tuples_.push_back(std::move(fresh));
    }
    uint8_t key[kMaxKeyBytes];
    const uint32_t key_len = key_from_match(*t, match, key);

    const int32_t slot = t->alloc_slot();
    t->entries[slot] = {match, rank, std::move(value)};

    // Insert into the per-key chain, kept sorted by rank ascending.
    int32_t head = -1;
    if (auto found = t->index.lookup(key, key_len)) head = static_cast<int32_t>(*found);
    if (head < 0 || t->entries[head].rank > rank) {
      t->next[slot] = head;
      t->index.insert(key, key_len, static_cast<uint32_t>(slot));
    } else {
      int32_t prev = head;
      while (t->next[prev] >= 0 && t->entries[t->next[prev]].rank < rank)
        prev = t->next[prev];
      t->next[slot] = t->next[prev];
      t->next[prev] = slot;
    }
    ++t->live;
    ++size_;
    if (rank < t->min_rank) t->min_rank = rank;
    resort();
  }

  /// Removes the entry with this (match, rank); true if found.
  bool remove(const flow::Match& match, uint32_t rank) {
    Tuple* t = find_tuple(match);
    if (t == nullptr) return false;
    uint8_t key[kMaxKeyBytes];
    const uint32_t key_len = key_from_match(*t, match, key);
    auto found = t->index.lookup(key, key_len);
    if (!found) return false;

    int32_t cur = static_cast<int32_t>(*found);
    int32_t prev = -1;
    while (cur >= 0 && t->entries[cur].rank != rank) {
      prev = cur;
      cur = t->next[cur];
    }
    if (cur < 0) return false;
    if (prev < 0) {
      if (t->next[cur] >= 0)
        t->index.insert(key, key_len, static_cast<uint32_t>(t->next[cur]));
      else
        t->index.erase(key, key_len);
    } else {
      t->next[prev] = t->next[cur];
    }
    t->free_slot(cur);
    --t->live;
    --size_;
    if (t->live == 0) {
      tuples_.erase(std::find_if(tuples_.begin(), tuples_.end(),
                                 [&](const auto& p) { return p.get() == t; }));
    } else {
      t->recompute_min_rank();
      resort();
    }
    return true;
  }

  /// Best (lowest-rank) matching entry, or nullptr.
  const Entry* lookup(const uint8_t* pkt, const proto::ParseInfo& pi,
                      TupleVisitStats* visit = nullptr, MemTrace* trace = nullptr) const {
    const Entry* best = nullptr;
    for (const auto& tp : tuples_) {
      const Tuple& t = *tp;
      if (best != nullptr && best->rank <= t.min_rank) break;  // early exit
      if (visit) {
        ++visit->tuples_visited;
        visit->fields_union |= t.present;
        for (uint32_t bits = t.present; bits != 0; bits &= bits - 1) {
          const unsigned i = static_cast<unsigned>(__builtin_ctz(bits));
          visit->mask_union[i] |= t.masks[i];
        }
      }
      if ((pi.proto_mask & t.proto_required) != t.proto_required) continue;
      uint8_t key[kMaxKeyBytes];
      const uint32_t key_len = key_from_packet(t, pkt, pi, key);
      const auto found = t.index.lookup(key, key_len, trace);
      if (!found) continue;
      const Entry& e = t.entries[*found];  // chain head = lowest rank
      if (trace) trace->touch(&e, sizeof(Entry));
      if (best == nullptr || e.rank < best->rank) best = &e;
    }
    return best;
  }

  /// Starts the best-ranked tuple's index bucket toward the core ahead of
  /// lookup() (burst-mode software pipelining).  Only the first tuple is
  /// primed: it is where lookup() probes first, and with tuple priority
  /// sorting it terminates most scans.
  void prefetch(const uint8_t* pkt, const proto::ParseInfo& pi) const {
    if (tuples_.empty()) return;
    const Tuple& t = *tuples_.front();
    if ((pi.proto_mask & t.proto_required) != t.proto_required) return;
    uint8_t key[kMaxKeyBytes];
    const uint32_t key_len = key_from_packet(t, pkt, pi, key);
    t.index.prefetch(key, key_len);
  }

  size_t size() const { return size_; }
  size_t num_tuples() const { return tuples_.size(); }

  void clear() {
    tuples_.clear();
    size_ = 0;
  }

  /// Visits every live entry (eviction, invalidation, debugging).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& tp : tuples_)
      for (size_t i = 0; i < tp->entries.size(); ++i)
        if (tp->slot_live[i]) fn(tp->entries[i]);
  }

 private:
  static constexpr uint32_t kMaxKeyBytes = 8 * flow::kNumFields;

  struct Tuple {
    uint32_t present = 0;
    std::array<uint64_t, flow::kNumFields> masks{};
    uint32_t proto_required = 0;
    uint32_t min_rank = 0xFFFFFFFF;
    ExactMatchTable index;
    std::vector<Entry> entries;
    std::vector<int32_t> next;
    std::vector<bool> slot_live;
    std::vector<int32_t> free_list;
    size_t live = 0;

    int32_t alloc_slot() {
      if (!free_list.empty()) {
        const int32_t s = free_list.back();
        free_list.pop_back();
        slot_live[s] = true;
        return s;
      }
      entries.push_back({});
      next.push_back(-1);
      slot_live.push_back(true);
      return static_cast<int32_t>(entries.size() - 1);
    }
    void free_slot(int32_t s) {
      slot_live[s] = false;
      free_list.push_back(s);
    }
    void recompute_min_rank() {
      min_rank = 0xFFFFFFFF;
      for (size_t i = 0; i < entries.size(); ++i)
        if (slot_live[i] && entries[i].rank < min_rank) min_rank = entries[i].rank;
    }
  };

  Tuple* find_tuple(const flow::Match& match) {
    for (auto& tp : tuples_) {
      if (tp->present != match.present_bits()) continue;
      bool same = true;
      for (flow::FieldId f : flow::MatchFields(match))
        if (tp->masks[static_cast<unsigned>(f)] != match.mask(f)) {
          same = false;
          break;
        }
      if (same) return tp.get();
    }
    return nullptr;
  }

  static uint32_t key_from_match(const Tuple& t, const flow::Match& m, uint8_t* out) {
    uint32_t n = 0;
    for (uint32_t bits = t.present; bits != 0; bits &= bits - 1) {
      const unsigned i = static_cast<unsigned>(__builtin_ctz(bits));
      const uint64_t v = m.value(static_cast<flow::FieldId>(i));  // already masked
      std::memcpy(out + n, &v, 8);
      n += 8;
    }
    if (n == 0) out[n++] = 0;  // catch-all tuple: single sentinel key
    return n;
  }

  static uint32_t key_from_packet(const Tuple& t, const uint8_t* pkt,
                                  const proto::ParseInfo& pi, uint8_t* out) {
    uint32_t n = 0;
    for (uint32_t bits = t.present; bits != 0; bits &= bits - 1) {
      const unsigned i = static_cast<unsigned>(__builtin_ctz(bits));
      const uint64_t v =
          flow::extract_field(static_cast<flow::FieldId>(i), pkt, pi) & t.masks[i];
      std::memcpy(out + n, &v, 8);
      n += 8;
    }
    if (n == 0) out[n++] = 0;  // catch-all tuple: single sentinel key
    return n;
  }

  void resort() {
    std::sort(tuples_.begin(), tuples_.end(),
              [](const auto& a, const auto& b) { return a->min_rank < b->min_rank; });
  }

  std::vector<std::unique_ptr<Tuple>> tuples_;
  size_t size_ = 0;
};

}  // namespace esw::cls
