#include "cls/tuple_space.hpp"

// TupleSpace is a header-only template; this TU type-checks a common
// instantiation at library build time.
namespace esw::cls {
template class TupleSpace<uint64_t>;
}  // namespace esw::cls
