// Flattened interval classifier — the engine behind the *range* table
// template (§3.1 names "range search for port matches" as the natural next
// template; this is that extension).
//
// Input: possibly-overlapping value ranges with ranks (lower rank wins —
// priority order).  Build flattens them into disjoint elementary intervals by
// boundary sweep; lookup is one binary search, O(log n), independent of rule
// overlap structure.  Unlike the LPM template this imposes *no* ordering
// prerequisite between overlapping rules: the sweep bakes the winner in.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/memtrace.hpp"

namespace esw::cls {

class RangeTree {
 public:
  struct Rule {
    uint64_t lo;
    uint64_t hi;  // inclusive
    uint32_t rank;
    uint32_t value;
  };

  /// Builds from `rules`; on overlap the lowest rank wins everywhere.
  void build(std::vector<Rule> rules);

  /// Value of the winning rule covering `key`, or nullopt.
  std::optional<uint32_t> lookup(uint64_t key, MemTrace* trace = nullptr) const;

  size_t num_intervals() const { return starts_.size(); }
  size_t num_rules() const { return n_rules_; }
  size_t memory_bytes() const {
    return starts_.size() * (sizeof(uint64_t) + sizeof(int64_t));
  }

 private:
  // Parallel arrays: interval i covers [starts_[i], starts_[i+1]) (last one
  // up to UINT64_MAX); values_[i] < 0 means no rule covers it.
  std::vector<uint64_t> starts_;
  std::vector<int64_t> values_;
  size_t n_rules_ = 0;
};

}  // namespace esw::cls
