// Open-addressing exact-match table over byte-string keys — the engine behind
// the paper's *compound hash* template (§3.1).
//
// Mirrors the paper's "collision free hash": inserts trigger seed/size
// rebuilds until the longest probe chain is short, trading build time and
// memory for near-constant lookups ("it requires more memory and more time to
// build, [but] it supports fast constant time lookups").  Incremental add and
// remove are supported; rebuilds are internal.
//
// Seed, mask and slot array live together in one heap `Table` blob published
// through an atomic pointer: lookup() and prefetch() acquire-load the blob
// once and derive everything from that snapshot, so a rebuild can never pair
// a fresh capacity mask with a stale slot base (or vice versa) inside one
// probe.  Rebuilds swap the pointer and free the old blob immediately —
// writer-private mutation, same lifetime contract as the old move-assign.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bits.hpp"
#include "common/memtrace.hpp"

namespace esw::cls {

class ExactMatchTable {
 public:
  struct Config {
    uint32_t max_probe = 4;       // rebuild when a chain would exceed this
    uint32_t seed_attempts = 8;   // reseed tries before growing instead
    double max_load = 0.7;
  };

  ExactMatchTable() : ExactMatchTable(Config{}) {}
  explicit ExactMatchTable(const Config& cfg);

  ExactMatchTable(const ExactMatchTable& o);
  ExactMatchTable& operator=(const ExactMatchTable& o);

  /// Inserts or overwrites; may rebuild internally.
  void insert(const uint8_t* key, uint32_t key_len, uint32_t value);

  /// Removes a key; true if it was present.
  bool erase(const uint8_t* key, uint32_t key_len);

  /// Constant-time lookup.
  std::optional<uint32_t> lookup(const uint8_t* key, uint32_t key_len,
                                 MemTrace* trace = nullptr) const;

  /// Starts the home bucket's cache line toward the core ahead of lookup()
  /// (burst-mode software pipelining).  Pays the key hash twice; worth it only
  /// when the slot array does not sit in L1.  Seed, mask and slot base come
  /// from the same acquire-loaded snapshot lookup() probes, so the computed
  /// index is always in bounds of the array it touches.
  void prefetch(const uint8_t* key, uint32_t key_len) const {
    const Table* t = tbl_.load(std::memory_order_acquire);
    const uint64_t h = hash_bytes(key, key_len, t->seed);
    esw_prefetch(&t->slots[static_cast<uint32_t>(h) & t->mask]);
  }

  size_t size() const { return size_; }
  uint32_t capacity() const {
    return static_cast<uint32_t>(tbl_.load(std::memory_order_acquire)->slots.size());
  }
  uint64_t rebuilds() const { return rebuilds_; }
  uint32_t longest_probe() const;

 private:
  struct Slot {
    static constexpr uint32_t kEmpty = 0xFFFFFFFF;
    static constexpr uint32_t kTomb = 0xFFFFFFFE;
    uint32_t key_pos = kEmpty;  // offset into arena_, or sentinel
    uint16_t key_len = 0;
    uint32_t value = 0;
    uint64_t hash = 0;
  };

  // One coherent generation of the index: everything a probe dereferences.
  struct Table {
    uint64_t seed = 0x9E3779B97F4A7C15ULL;
    uint32_t mask = 0;
    std::vector<Slot> slots;
  };

  void publish(std::unique_ptr<Table> t) {
    own_ = std::move(t);
    tbl_.store(own_.get(), std::memory_order_release);
  }

  bool try_insert_all(uint32_t cap, uint64_t seed);
  void rebuild(uint32_t min_cap);
  const Slot* find_slot(const uint8_t* key, uint32_t key_len, MemTrace* trace) const;

  Config cfg_;
  std::unique_ptr<Table> own_;      // current generation (writer-owned)
  std::atomic<const Table*> tbl_;   // published snapshot (== own_.get())
  std::vector<uint8_t> arena_;
  // Live (key_pos,key_len,value) mirror used for rebuilds.
  struct Item {
    uint32_t key_pos;
    uint16_t key_len;
    uint32_t value;
  };
  std::vector<Item> items_;
  size_t size_ = 0;
  uint64_t rebuilds_ = 0;
};

}  // namespace esw::cls
