#include "common/failpoint.hpp"

#include <cstdio>
#include <cstdlib>

namespace esw::common {

namespace {

// kProb thresholds live in a 53-bit space so the double -> integer mapping is
// exact for every probability a spec can express.
constexpr uint64_t kProbOne = uint64_t{1} << 53;

uint64_t xorshift_next(std::atomic<uint64_t>& state) {
  uint64_t x = state.load(std::memory_order_relaxed);
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state.store(x, std::memory_order_relaxed);
  return x * 0x2545F4914F6CDD1DULL;
}

}  // namespace

std::atomic<int> FailpointRegistry::armed_count_{0};

bool Failpoint::should_fire() {
  const Mode m = static_cast<Mode>(mode_.load(std::memory_order_acquire));
  if (m == Mode::kOff) return false;
  const uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  switch (m) {
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kNth:
      fire = hit == arg_.load(std::memory_order_relaxed);
      break;
    case Mode::kProb:
      fire = (xorshift_next(rng_) >> 11) < arg_.load(std::memory_order_relaxed);
      break;
    case Mode::kOff:
      break;
  }
  if (fire) fires_.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

FailpointRegistry& FailpointRegistry::instance() {
  static FailpointRegistry reg;
  return reg;
}

FailpointRegistry::FailpointRegistry() { arm_from_env(); }

Failpoint& FailpointRegistry::point(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return point_locked(name);
}

Failpoint& FailpointRegistry::point_locked(const std::string& name) {
  auto it = points_.find(name);
  if (it == points_.end())
    it = points_.emplace(name, std::unique_ptr<Failpoint>(new Failpoint(name))).first;
  return *it->second;
}

bool FailpointRegistry::arm(const std::string& name, const std::string& spec) {
  Failpoint::Mode mode;
  uint64_t arg = 0;
  uint64_t seed = 0x9E3779B97F4A7C15ULL;
  if (spec == "always") {
    mode = Failpoint::Mode::kAlways;
  } else if (spec.rfind("nth:", 0) == 0) {
    mode = Failpoint::Mode::kNth;
    arg = std::strtoull(spec.c_str() + 4, nullptr, 0);
    if (arg == 0) return false;
  } else if (spec.rfind("prob:", 0) == 0) {
    mode = Failpoint::Mode::kProb;
    char* end = nullptr;
    const double p = std::strtod(spec.c_str() + 5, &end);
    if (!(p > 0.0) || p > 1.0) return false;
    arg = static_cast<uint64_t>(p * static_cast<double>(kProbOne));
    if (end != nullptr && *end == ':') seed ^= std::strtoull(end + 1, nullptr, 0);
  } else {
    return false;
  }

  std::lock_guard<std::mutex> lock(mu_);
  Failpoint& fp = point_locked(name);
  const bool was_armed = fp.armed();
  fp.arg_.store(arg, std::memory_order_relaxed);
  fp.rng_.store(seed | 1, std::memory_order_relaxed);  // xorshift must not be 0
  fp.hits_.store(0, std::memory_order_relaxed);
  fp.mode_.store(static_cast<uint8_t>(mode), std::memory_order_release);
  if (!was_armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FailpointRegistry::disarm_locked(Failpoint& fp) {
  if (!fp.armed()) return;
  fp.mode_.store(static_cast<uint8_t>(Failpoint::Mode::kOff),
                 std::memory_order_release);
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FailpointRegistry::disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  if (it != points_.end()) disarm_locked(*it->second);
}

void FailpointRegistry::disarm_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, fp] : points_) disarm_locked(*fp);
}

size_t FailpointRegistry::arm_from_env() {
  const char* env = std::getenv("ESW_FAILPOINTS");
  if (env == nullptr || *env == '\0') return 0;
  size_t armed = 0;
  const std::string all(env);
  size_t pos = 0;
  while (pos < all.size()) {
    size_t comma = all.find(',', pos);
    if (comma == std::string::npos) comma = all.size();
    const std::string entry = all.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 ||
        !arm(entry.substr(0, eq), entry.substr(eq + 1))) {
      std::fprintf(stderr, "[failpoint] bad ESW_FAILPOINTS entry \"%s\"\n",
                   entry.c_str());
      continue;
    }
    ++armed;
  }
  return armed;
}

std::vector<FailpointRegistry::Snapshot> FailpointRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Snapshot> out;
  out.reserve(points_.size());
  for (const auto& [name, fp] : points_)
    out.push_back({name, fp->armed(), fp->hits(), fp->fires()});
  return out;
}

uint64_t FailpointRegistry::fires(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  return it != points_.end() ? it->second->fires() : 0;
}

}  // namespace esw::common
