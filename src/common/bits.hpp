// Byte-order and bit-manipulation helpers shared by the packet parser, the
// matcher lowering and the classifier substrates.
//
// All packet fields are big-endian on the wire.  The lowered matcher IR and
// the JIT compare raw little-endian loads against pre-swizzled constants, so
// the helpers here are the single place where the two conventions meet.
#pragma once

#include <cstdint>
#include <cstring>

// Branch-layout and software-prefetch hints used by the burst-mode datapath.
// No-ops on compilers without the GNU builtins so the tree stays portable.
#if defined(__GNUC__) || defined(__clang__)
#define ESW_LIKELY(x) __builtin_expect(!!(x), 1)
#define ESW_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define ESW_LIKELY(x) (x)
#define ESW_UNLIKELY(x) (x)
#endif

namespace esw {

/// Software prefetch into all cache levels (read intent).  `p` may be any
/// address, valid or not — prefetches never fault.
inline void esw_prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Loads a big-endian 16-bit value.
inline uint16_t load_be16(const uint8_t* p) {
  return static_cast<uint16_t>((uint16_t{p[0]} << 8) | uint16_t{p[1]});
}

/// Loads a big-endian 32-bit value.
inline uint32_t load_be32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) | (uint32_t{p[2]} << 8) |
         uint32_t{p[3]};
}

/// Loads a big-endian value of `width` bytes (1..8) into the low bits.
inline uint64_t load_be(const uint8_t* p, unsigned width) {
  uint64_t v = 0;
  for (unsigned i = 0; i < width; ++i) v = (v << 8) | p[i];
  return v;
}

inline void store_be16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}

inline void store_be32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

/// Stores the low `width` bytes of `v` big-endian.
inline void store_be(uint8_t* p, uint64_t v, unsigned width) {
  for (unsigned i = 0; i < width; ++i)
    p[i] = static_cast<uint8_t>(v >> (8 * (width - 1 - i)));
}

/// Unaligned little-endian load of `width` (1, 2, 4 or 8) bytes — the load the
/// generated matcher code performs on x86.
inline uint64_t load_le(const uint8_t* p, unsigned width) {
  uint64_t v = 0;
  std::memcpy(&v, p, width);
  return v;
}

/// Converts a host-order field value of `width` bytes into the constant a
/// little-endian raw load of those bytes would produce.  Used to pre-swizzle
/// match keys into the lowered IR ("template specialization" in the paper).
inline uint64_t host_to_wire_le(uint64_t value, unsigned width) {
  uint8_t buf[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  store_be(buf, value, width);
  uint64_t v = 0;
  std::memcpy(&v, buf, sizeof buf);
  return v;
}

/// All-ones mask covering `bits` low bits (bits in [0, 64]).
inline uint64_t low_bits(unsigned bits) {
  return bits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
}

/// True when `mask` is a prefix mask within a `width_bits` field: some number
/// of leading ones followed only by zeros (e.g. 0xFFFFFF00 for /24 in 32 bits).
inline bool is_prefix_mask(uint64_t mask, unsigned width_bits) {
  const uint64_t full = low_bits(width_bits);
  if ((mask & ~full) != 0) return false;
  const uint64_t inv = (~mask) & full;  // trailing zeros of the mask
  return (inv & (inv + 1)) == 0;        // inv must be of the form 0…01…1
}

/// Number of leading one-bits of a prefix mask within `width_bits`.
inline unsigned prefix_len(uint64_t mask, unsigned width_bits) {
  unsigned len = 0;
  for (unsigned i = 0; i < width_bits; ++i)
    if (mask & (uint64_t{1} << (width_bits - 1 - i)))
      ++len;
    else
      break;
  return len;
}

/// 64-bit mix function (splitmix64 finalizer); used as the hash for all
/// open-addressing tables.  Good avalanche, cheap, seedable.
inline uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hashes an arbitrary byte string with a seed (FNV-ish accumulate + mix).
inline uint64_t hash_bytes(const uint8_t* p, size_t n, uint64_t seed) {
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    h = mix64(h ^ w);
    p += 8;
    n -= 8;
  }
  uint64_t tail = 0;
  if (n > 0) std::memcpy(&tail, p, n);
  return mix64(h ^ tail ^ (uint64_t{n} << 56));
}

}  // namespace esw
