// Lightweight invariant checking used on control-plane paths.
//
// ESW_CHECK throws on violation (control plane may recover / report);
// ESW_DCHECK compiles away in release builds and is meant for datapath-adjacent
// code where a failed invariant is a programming error.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace esw {

/// Error thrown when a control-plane invariant is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

/// A flow-mod refused because the target table is at its configured capacity
/// (CompilerConfig::table_capacity).  Derives from CheckError so generic
/// refusal handling keeps working; the OpenFlow agent maps it specifically to
/// OFPET_FLOW_MOD_FAILED / OFPFMFC_TABLE_FULL with the session left open.
class TableFullError : public CheckError {
 public:
  using CheckError::CheckError;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "ESW_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace esw

#define ESW_CHECK(expr)                                               \
  do {                                                                \
    if (!(expr)) ::esw::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define ESW_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) ::esw::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define ESW_DCHECK(expr) ((void)0)
#else
#define ESW_DCHECK(expr) ESW_CHECK(expr)
#endif
