// Memory-access tracing hook for the cache-simulation experiments
// (Figs. 15–16): datapath structures optionally report the addresses they
// touch per lookup; the perf::CacheSim replays them through a modeled
// L1/L2/L3 hierarchy.  Passing nullptr disables tracing at a single
// well-predicted branch per access.
#pragma once

#include <cstdint>
#include <vector>

namespace esw {

class MemTrace {
 public:
  /// Records the cache line(s) covering [p, p+bytes).
  void touch(const void* p, size_t bytes = 8) {
    const uintptr_t first = reinterpret_cast<uintptr_t>(p) >> 6;
    const uintptr_t last = (reinterpret_cast<uintptr_t>(p) + bytes - 1) >> 6;
    for (uintptr_t line = first; line <= last; ++line) lines_.push_back(line);
  }

  const std::vector<uintptr_t>& lines() const { return lines_; }
  void clear() { lines_.clear(); }

 private:
  std::vector<uintptr_t> lines_;
};

}  // namespace esw
