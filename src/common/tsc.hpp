// Cycle counting (rdtsc on x86-64, steady_clock fallback) with one-time
// calibration of the TSC frequency so results can be reported both in cycles
// and in wall-clock packet rates.
#pragma once

#include <chrono>
#include <cstdint>

namespace esw {

#if defined(__x86_64__)
inline uint64_t rdtsc() {
  uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (uint64_t{hi} << 32) | lo;
}
#else
inline uint64_t rdtsc() {
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}
#endif

/// Measured TSC ticks per nanosecond (calibrated once, ~10 ms).
inline double tsc_ghz() {
  static const double ghz = [] {
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t c0 = rdtsc();
    // Busy-wait ~10ms for a stable estimate.
    while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(10)) {
    }
    const uint64_t c1 = rdtsc();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    return static_cast<double>(c1 - c0) / ns;
  }();
  return ghz;
}

}  // namespace esw
