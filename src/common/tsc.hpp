// Cycle counting (rdtsc on x86-64, steady_clock fallback) with one-time
// calibration of the TSC frequency so results can be reported both in cycles
// and in wall-clock packet rates.
#pragma once

#include <chrono>
#include <cstdint>

namespace esw {

#if defined(__x86_64__)
inline uint64_t rdtsc() {
  uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (uint64_t{hi} << 32) | lo;
}

/// Serialized TSC read for latency measurement.  Plain `rdtsc` may execute
/// before earlier instructions retire (it is not a serializing read), so two
/// back-to-back reads around a short region can under- or over-attribute
/// cycles.  `rdtscp` waits for every prior instruction to retire before
/// sampling the counter, and the trailing `lfence` keeps later instructions
/// from starting before the sample is taken — the Intel-documented fencing
/// for timing a region from both ends.  Costs ~2-3x a plain rdtsc; use it on
/// the (sampled) latency path, not around whole measurement windows.
inline uint64_t rdtsc_serialized() {
  uint32_t lo, hi;
  asm volatile("rdtscp\n\tlfence" : "=a"(lo), "=d"(hi)::"rcx", "memory");
  return (uint64_t{hi} << 32) | lo;
}
#else
inline uint64_t rdtsc() {
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

/// steady_clock is already ordered by its definition; same reading.
inline uint64_t rdtsc_serialized() { return rdtsc(); }
#endif

/// Measured TSC ticks per nanosecond (calibrated once, ~10 ms).
inline double tsc_ghz() {
  static const double ghz = [] {
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t c0 = rdtsc();
    // Busy-wait ~10ms for a stable estimate.
    while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(10)) {
    }
    const uint64_t c1 = rdtsc();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    return static_cast<double>(c1 - c0) / ns;
  }();
  return ghz;
}

}  // namespace esw
