// Epoch-based reclamation (quiescent-state flavor, QSBR) — the memory
// lifetime contract between one control-plane writer and N packet workers.
//
// The datapath publishes rebuilt tables with an atomic trampoline swap; the
// *old* table object may still be referenced by workers that snapshotted it
// at the start of their current burst.  Instead of the previous
// caller-coordinated `collect()` ("free when you know nobody is inside
// process()"), retirement now rides a global epoch counter:
//
//   * every packet worker registers a WorkerSlot and ticks `quiescent()`
//     once per burst, at a point where it holds no datapath pointers;
//   * the writer stamps each retired object with the epoch current at
//     retirement, then advances the epoch;
//   * an object is reclaimable once every registered worker has ticked in a
//     *later* epoch than the object's stamp (`min_observed()` > stamp): the
//     tick's acquire of the epoch counter synchronizes with the writer's
//     release advance, so the worker's next burst re-reads the trampoline
//     and cannot resurrect the retired pointer.
//
// Single-writer by contract: retire/advance/min_observed/registration all
// happen on the control thread.  Workers only touch their own slot.  With no
// registered workers the grace period is trivially satisfied and retirement
// degenerates to immediate reclamation (the writer itself is quiescent
// between its own calls) — the single-threaded benches keep their old cost.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <utility>

#include "common/check.hpp"

namespace esw::common {

class EpochDomain {
 public:
  /// Concurrent packet workers supported per domain (control thread excluded).
  static constexpr uint32_t kMaxWorkers = 8;

  /// One registered worker's quiescence record.  Own cache line: the owner
  /// thread stores `seen` every burst; the writer only reads it.
  struct alignas(64) WorkerSlot {
    std::atomic<uint64_t> seen{0};
    bool active = false;  // control-thread-only bookkeeping
  };

  /// Registers a worker (control thread only).  The slot starts quiescent at
  /// the current epoch.  Returns nullptr when kMaxWorkers are registered.
  WorkerSlot* register_worker() {
    for (WorkerSlot& s : slots_) {
      if (s.active) continue;
      s.seen.store(epoch_.load(std::memory_order_relaxed), std::memory_order_relaxed);
      s.active = true;
      n_active_.fetch_add(1, std::memory_order_release);
      return &s;
    }
    return nullptr;
  }

  /// Unregisters (control thread only; the worker's thread must have stopped
  /// — joined or provably past its last tick).
  void unregister_worker(WorkerSlot* s) {
    ESW_CHECK(s != nullptr && s->active);
    s->active = false;
    n_active_.fetch_sub(1, std::memory_order_release);
  }

  /// Worker-side per-burst tick.  Must be called when the worker holds no
  /// pointers obtained from epoch-protected structures (i.e. between bursts).
  /// The acquire/release pair is what orders a later trampoline re-read after
  /// the writer's swap.
  void quiescent(WorkerSlot& s) {
    s.seen.store(epoch_.load(std::memory_order_acquire), std::memory_order_release);
  }

  /// True when at least one packet worker is registered — the signal the
  /// update path uses to choose copy-on-write publication over in-place
  /// mutation of reader-visible structures.
  bool has_workers() const { return n_active_.load(std::memory_order_acquire) > 0; }

  /// Epoch to stamp a retiring object with (writer side).
  uint64_t current_epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Advances the global epoch (writer side); returns the new epoch.  The
  /// release ordering makes everything the writer did before the advance —
  /// in particular the trampoline swap that unpublished a retiring object —
  /// visible to any worker whose tick observes the new epoch.
  uint64_t advance() { return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1; }

  /// Smallest epoch any registered worker has ticked in; UINT64_MAX when no
  /// workers are registered (grace trivially satisfied).  Objects stamped
  /// strictly below this are reclaimable.
  uint64_t min_observed() const {
    uint64_t min = UINT64_MAX;
    for (const WorkerSlot& s : slots_) {
      if (!s.active) continue;
      const uint64_t seen = s.seen.load(std::memory_order_acquire);
      if (seen < min) min = seen;
    }
    return min;
  }

  /// Writer-side convenience: advance, then report the reclamation horizon.
  uint64_t advance_and_horizon() {
    advance();
    return min_observed();
  }

 private:
  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint32_t> n_active_{0};
  WorkerSlot slots_[kMaxWorkers];
};

/// Writer-side list of retired objects awaiting their grace period.  Not
/// thread-safe — lives with the single control-plane writer, like the domain's
/// retire protocol itself.
template <typename T>
class RetireList {
 public:
  void retire(T obj, uint64_t epoch) {
    q_.push_back({std::move(obj), epoch});
    ++retired_total_;
  }

  /// Destroys (or hands to `out`, see below) every entry stamped strictly
  /// below `horizon`; returns how many were reclaimed.  Entries are stamped
  /// in nondecreasing order, so the queue front is always the oldest.
  uint64_t reclaim(uint64_t horizon) {
    uint64_t n = 0;
    while (!q_.empty() && q_.front().epoch < horizon) {
      q_.pop_front();
      ++n;
    }
    reclaimed_total_ += n;
    return n;
  }

  /// Variant that moves each reclaimable object out (e.g. to recycle a slot
  /// index rather than destroy it).
  template <typename Fn>
  uint64_t reclaim_into(uint64_t horizon, Fn&& fn) {
    uint64_t n = 0;
    while (!q_.empty() && q_.front().epoch < horizon) {
      fn(std::move(q_.front().obj));
      q_.pop_front();
      ++n;
    }
    reclaimed_total_ += n;
    return n;
  }

  void clear() {
    reclaimed_total_ += q_.size();
    q_.clear();
  }

  size_t pending() const { return q_.size(); }
  uint64_t retired_total() const { return retired_total_; }
  uint64_t reclaimed_total() const { return reclaimed_total_; }

 private:
  struct Entry {
    T obj;
    uint64_t epoch;
  };
  std::deque<Entry> q_;
  uint64_t retired_total_ = 0;
  uint64_t reclaimed_total_ = 0;
};

}  // namespace esw::common
