// Deterministic, seedable PRNG (xoshiro256**) used by traffic generators and
// property tests so every experiment is reproducible from a seed.
#pragma once

#include <cstdint>

#include "common/bits.hpp"

namespace esw {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = mix64(x);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound); bound must be nonzero.
  uint64_t below(uint64_t bound) { return next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  uint64_t range(uint64_t lo, uint64_t hi) { return lo + below(hi - lo + 1); }

  /// Bernoulli trial with probability num/den.
  bool chance(uint64_t num, uint64_t den) { return below(den) < num; }

  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace esw
