// Deterministic fault injection for every resource edge in the switch.
//
// A failpoint is a named site in production code where a fault can be forced:
//
//   if (ESW_FAILPOINT("mbuf.alloc")) return nullptr;   // as-if exhausted
//
// Disarmed (the normal state) the macro costs one relaxed atomic load and a
// predicted-not-taken branch — cheap enough for per-packet paths.  Armed, the
// site resolves its registry entry once (a function-local static) and asks it
// whether to fire under the configured mode:
//
//   always        every evaluation fires
//   nth:N         exactly the Nth evaluation since arming fires (one-shot)
//   prob:P[:S]    each evaluation fires with probability P (xorshift, seed S)
//
// Arming is programmatic (FailpointRegistry::arm) or environmental: the
// ESW_FAILPOINTS variable is parsed once at first registry use, e.g.
//
//   ESW_FAILPOINTS="jit.exec_map=always,mbuf.alloc=prob:0.01:7" ./soak ...
//
// Per-point hit/fire counters make injected faults auditable: the chaos soak
// maps every fired point to the degradation counter that must have absorbed
// it (docs/ROBUSTNESS.md has the full catalog and policy table).
//
// Thread-safety: arming/disarming takes the registry mutex; evaluation is
// lock-free (mode/counters are atomics, so packet workers may race through an
// armed point — any interleaving of the probability stream is a valid one).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bits.hpp"

namespace esw::common {

class FailpointRegistry;

/// One named injection site's state.  Created and owned by the registry;
/// sites cache the reference, so the address is stable for process lifetime.
class Failpoint {
 public:
  enum class Mode : uint8_t { kOff = 0, kAlways, kNth, kProb };

  /// Hot-path evaluation: counts the hit and decides whether to fire.
  bool should_fire();

  const std::string& name() const { return name_; }
  /// Evaluations since the point was last armed.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Total faults injected (cumulative across re-arms).
  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }
  bool armed() const {
    return static_cast<Mode>(mode_.load(std::memory_order_relaxed)) != Mode::kOff;
  }

 private:
  friend class FailpointRegistry;
  explicit Failpoint(std::string name) : name_(std::move(name)) {}

  const std::string name_;
  std::atomic<uint8_t> mode_{static_cast<uint8_t>(Mode::kOff)};
  std::atomic<uint64_t> arg_{0};  // kNth: N; kProb: threshold in [0, 2^53]
  std::atomic<uint64_t> rng_{0};  // kProb xorshift64* state (shared; racy is fine)
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> fires_{0};
};

/// Process-wide name -> Failpoint map plus the global armed fast-path gate.
class FailpointRegistry {
 public:
  /// The singleton; parses ESW_FAILPOINTS on first construction.
  static FailpointRegistry& instance();

  /// One relaxed load: false means no failpoint anywhere is armed and every
  /// ESW_FAILPOINT site short-circuits without touching the registry.
  static bool any_armed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Find-or-create by name (sites call this once through the macro's static).
  Failpoint& point(const std::string& name);

  /// Arms `name` with a spec — "always", "nth:N" (N >= 1) or "prob:P[:SEED]"
  /// (0 < P <= 1).  Re-arming resets the hit counter (nth counts evaluations
  /// since arming); fire totals accumulate.  Returns false on a bad spec.
  bool arm(const std::string& name, const std::string& spec);
  void disarm(const std::string& name);
  void disarm_all();

  /// Parses `ESW_FAILPOINTS` ("name=spec,name=spec") and arms each entry;
  /// returns how many armed.  Bad entries are skipped (stderr note).
  size_t arm_from_env();

  struct Snapshot {
    std::string name;
    bool armed = false;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };
  /// Every known point's counters (armed or not), sorted by name.
  std::vector<Snapshot> snapshot() const;
  /// Fire total for one point (0 when the point was never referenced).
  uint64_t fires(const std::string& name) const;

 private:
  FailpointRegistry();
  Failpoint& point_locked(const std::string& name);
  void disarm_locked(Failpoint& fp);

  static std::atomic<int> armed_count_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Failpoint>> points_;
};

}  // namespace esw::common

/// True when the named failpoint is armed and elects to fire this evaluation.
/// Zero registry traffic while nothing is armed anywhere.
#define ESW_FAILPOINT(name)                                                 \
  (ESW_UNLIKELY(::esw::common::FailpointRegistry::any_armed()) && [] {      \
    static ::esw::common::Failpoint& esw_fp_ =                              \
        ::esw::common::FailpointRegistry::instance().point(name);           \
    return esw_fp_.should_fire();                                           \
  }())
