// Relaxed atomic counter idioms shared by every per-worker stats block
// (datapath worker contexts, runtime worker blocks, port counters).
//
// Two disciplines, one header, so the single-writer reasoning is stated once:
//   * counter_bump — the cell has exactly ONE writer (its owning worker), so
//     load+store (not an RMW) is exact and costs plain moves on x86; the
//     atomic type exists so aggregating readers are race-free.
//   * counter_add — the cell is shared across writers (per-slot table stats,
//     multi-producer TX counters): one relaxed fetch_add, amortized to once
//     per burst by the callers.
#pragma once

#include <atomic>
#include <cstdint>

namespace esw::common {

inline void counter_bump(std::atomic<uint64_t>& c, uint64_t d) {
  if (d != 0) c.store(c.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
}

inline void counter_add(std::atomic<uint64_t>& c, uint64_t d) {
  if (d != 0) c.fetch_add(d, std::memory_order_relaxed);
}

}  // namespace esw::common
