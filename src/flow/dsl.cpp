#include "flow/dsl.hpp"

#include <charconv>
#include <sstream>
#include <vector>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace esw::flow {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\n'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\n'))
    s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

uint64_t parse_u64(std::string_view s) {
  ESW_CHECK_MSG(!s.empty(), "empty number");
  uint64_t v = 0;
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
    base = 16;
  }
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v, base);
  ESW_CHECK_MSG(ec == std::errc() && p == s.data() + s.size(),
                "bad number: " + std::string(s));
  return v;
}

uint64_t parse_mac(std::string_view s) {
  const auto parts = split(s, ':');
  ESW_CHECK_MSG(parts.size() == 6, "bad MAC: " + std::string(s));
  uint64_t v = 0;
  for (auto part : parts) {
    ESW_CHECK_MSG(!part.empty() && part.size() <= 2, "bad MAC octet");
    uint64_t o = 0;
    const auto [p, ec] = std::from_chars(part.data(), part.data() + part.size(), o, 16);
    ESW_CHECK_MSG(ec == std::errc() && p == part.data() + part.size(), "bad MAC octet");
    v = (v << 8) | o;
  }
  return v;
}

/// Parses a field value with an optional "/mask" or "/prefix-len" suffix.
void parse_field_value(FieldId f, std::string_view s, uint64_t& value, uint64_t& mask) {
  mask = field_full_mask(f);
  std::string_view val = s;
  std::string_view mask_part;
  if (const size_t slash = s.find('/'); slash != std::string_view::npos) {
    val = trim(s.substr(0, slash));
    mask_part = trim(s.substr(slash + 1));
  }

  const bool dotted = val.find('.') != std::string_view::npos;
  const bool mac = val.find(':') != std::string_view::npos;
  value = dotted ? parse_ipv4(val) : mac ? parse_mac(val) : parse_u64(val);

  if (!mask_part.empty()) {
    const bool hex_mask = mask_part.size() > 2 && mask_part[0] == '0' &&
                          (mask_part[1] == 'x' || mask_part[1] == 'X');
    if (dotted && mask_part.find('.') != std::string_view::npos) {
      mask = parse_ipv4(mask_part);
    } else if (hex_mask) {
      // An explicit 0x mask is always literal (the format_rule round-trip
      // shape), even for IP fields where a bare number means a prefix length.
      mask = parse_u64(mask_part);
    } else if (dotted || (f == FieldId::kIpSrc || f == FieldId::kIpDst)) {
      const uint64_t len = parse_u64(mask_part);  // prefix length
      ESW_CHECK_MSG(len <= 32, "bad prefix length");
      mask = len == 0 ? 0 : (low_bits(len) << (32 - len));
    } else {
      mask = parse_u64(mask_part);
    }
    ESW_CHECK_MSG(mask != 0, "zero mask: omit the field instead");
  }
}

Action parse_action(std::string_view s) {
  if (s == "drop") return Action::drop();
  if (s == "controller") return Action::to_controller();
  if (s == "flood") return Action::flood();
  if (s == "pop_vlan") return Action::pop_vlan();
  if (s == "dec_ttl") return Action::dec_ttl();
  const size_t colon = s.find(':');
  ESW_CHECK_MSG(colon != std::string_view::npos, "bad action: " + std::string(s));
  const std::string_view name = s.substr(0, colon);
  const std::string_view arg = s.substr(colon + 1);
  if (name == "output") return Action::output(static_cast<uint32_t>(parse_u64(arg)));
  if (name == "ct") {
    // ct:commit or ct:commit:PROFILE (to_string round-trip shape).
    ESW_CHECK_MSG(arg.substr(0, 6) == "commit", "unknown ct action: " + std::string(s));
    uint32_t profile = 0;
    if (arg.size() > 6) {
      ESW_CHECK_MSG(arg[6] == ':', "bad ct action: " + std::string(s));
      profile = static_cast<uint32_t>(parse_u64(arg.substr(7)));
    }
    return Action::ct_commit(profile);
  }
  if (name == "push_vlan") return Action::push_vlan(static_cast<uint16_t>(parse_u64(arg)));
  if (name == "set_field") {
    const size_t eq = arg.find('=');
    ESW_CHECK_MSG(eq != std::string_view::npos, "set_field needs name=value");
    const FieldId f = field_from_name(trim(arg.substr(0, eq)));
    ESW_CHECK_MSG(f != FieldId::kCount, "unknown field in set_field");
    uint64_t value = 0, mask = 0;
    parse_field_value(f, trim(arg.substr(eq + 1)), value, mask);
    return Action::set_field(f, value);
  }
  ESW_CHECK_MSG(false, "unknown action: " + std::string(s));
  return Action::drop();
}

}  // namespace

uint32_t parse_ipv4(std::string_view text) {
  const auto parts = split(text, '.');
  ESW_CHECK_MSG(parts.size() == 4, "bad IPv4: " + std::string(text));
  uint32_t v = 0;
  for (auto part : parts) {
    const uint64_t o = parse_u64(part);
    ESW_CHECK_MSG(o <= 255, "bad IPv4 octet");
    v = (v << 8) | static_cast<uint32_t>(o);
  }
  return v;
}

std::string format_ipv4(uint32_t addr) {
  std::ostringstream os;
  os << (addr >> 24) << '.' << ((addr >> 16) & 255) << '.' << ((addr >> 8) & 255) << '.'
     << (addr & 255);
  return os.str();
}

FlowEntry parse_rule(std::string_view text) {
  FlowEntry e;
  std::string_view match_part = text;

  if (const size_t apos = text.find("actions="); apos != std::string_view::npos) {
    match_part = text.substr(0, apos);
    std::string_view actions = trim(text.substr(apos + 8));
    for (std::string_view tok : split(actions, ',')) {
      if (tok.empty()) continue;
      if (tok.substr(0, 5) == "goto:") {
        e.goto_table = static_cast<int16_t>(parse_u64(tok.substr(5)));
      } else {
        e.actions.push_back(parse_action(tok));
      }
    }
  }

  for (std::string_view tok : split(match_part, ',')) {
    if (tok.empty()) continue;
    const size_t eq = tok.find('=');
    ESW_CHECK_MSG(eq != std::string_view::npos, "bad match token: " + std::string(tok));
    const std::string_view key = trim(tok.substr(0, eq));
    const std::string_view val = trim(tok.substr(eq + 1));
    if (key == "priority") {
      e.priority = static_cast<uint16_t>(parse_u64(val));
      continue;
    }
    if (key == "cookie") {
      e.cookie = parse_u64(val);
      continue;
    }
    const FieldId f = field_from_name(key);
    ESW_CHECK_MSG(f != FieldId::kCount, "unknown field: " + std::string(key));
    uint64_t value = 0, mask = 0;
    parse_field_value(f, val, value, mask);
    e.match.set(f, value, mask);
  }
  return e;
}

std::string format_rule(const FlowEntry& e) {
  std::ostringstream os;
  os << "priority=" << e.priority;
  if (e.cookie != 0) os << ",cookie=0x" << std::hex << e.cookie << std::dec;
  if (!e.match.is_catch_all()) os << ',' << e.match.to_string();
  os << ",actions=" << to_string(e.actions);
  if (e.goto_table != kNoGoto) os << ",goto:" << e.goto_table;
  return os.str();
}

}  // namespace esw::flow
