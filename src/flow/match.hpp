// OpenFlow match: a (value, mask) pair per participating field.
//
// Stored as fixed arrays plus a present-bitmask — O(popcount) iteration, no
// allocation, cheap equality/hash — so the control plane can shuffle entries
// around during decomposition and analysis without heap churn.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "flow/fields.hpp"
#include "proto/parse.hpp"

namespace esw::flow {

class Match {
 public:
  Match() = default;

  /// Adds (or tightens) a field constraint.  The mask defaults to exact; the
  /// value is canonicalized (value &= mask &= full field width).
  Match& set(FieldId f, uint64_t value, uint64_t mask);
  Match& set(FieldId f, uint64_t value) { return set(f, value, field_full_mask(f)); }

  /// Removes a field constraint (used by table decomposition).
  Match& clear(FieldId f);

  bool has(FieldId f) const { return (present_ & bit(f)) != 0; }
  uint64_t value(FieldId f) const { return value_[idx(f)]; }
  uint64_t mask(FieldId f) const { return mask_[idx(f)]; }
  uint32_t present_bits() const { return present_; }
  unsigned num_fields() const { return static_cast<unsigned>(__builtin_popcount(present_)); }
  bool is_catch_all() const { return present_ == 0; }

  /// Union of protocol prerequisites of all participating fields.
  uint32_t proto_required() const;

  /// True when the parsed packet satisfies every field constraint.
  bool matches_packet(const uint8_t* pkt, const proto::ParseInfo& pi) const;

  /// True when every packet matching *this* also matches `other`
  /// (other is equal or more general).
  bool subsumed_by(const Match& other) const;

  /// True when some packet could match both (field-wise intersection test;
  /// exact for mask-style matches).
  bool overlaps(const Match& other) const;

  /// Same field set and same masks — the prerequisite grouping used by the
  /// tuple-space classifier and the compound-hash template.
  bool same_mask_set(const Match& other) const;

  bool operator==(const Match& other) const;
  uint64_t hash() const;

  std::string to_string() const;

 private:
  static uint32_t bit(FieldId f) { return 1u << static_cast<unsigned>(f); }
  static unsigned idx(FieldId f) { return static_cast<unsigned>(f); }

  uint32_t present_ = 0;
  std::array<uint64_t, kNumFields> value_{};
  std::array<uint64_t, kNumFields> mask_{};
};

/// Iterates the fields present in a match: for (FieldId f : MatchFields(m)) …
class MatchFields {
 public:
  explicit MatchFields(const Match& m) : bits_(m.present_bits()) {}
  class Iter {
   public:
    explicit Iter(uint32_t bits) : bits_(bits) {}
    FieldId operator*() const { return static_cast<FieldId>(__builtin_ctz(bits_)); }
    Iter& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    bool operator!=(const Iter& o) const { return bits_ != o.bits_; }

   private:
    uint32_t bits_;
  };
  Iter begin() const { return Iter(bits_); }
  Iter end() const { return Iter(0); }

 private:
  uint32_t bits_;
};

}  // namespace esw::flow
